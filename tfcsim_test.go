package tfcsim

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tfcsim/internal/telemetry"
)

func TestFacadeQuickstart(t *testing.T) {
	// The README/package-doc example must actually work.
	s := NewSimulator(1)
	net := NewNetwork(s)
	a, b := net.NewHost("a"), net.NewHost("b")
	sw := net.NewSwitch("sw")
	net.Connect(a, sw, LinkConfig{Rate: Gbps, Delay: 5 * Microsecond})
	net.Connect(sw, b, LinkConfig{Rate: Gbps, Delay: 5 * Microsecond, BufA: 256 << 10})
	net.ComputeRoutes()
	AttachTFC(s, sw, TFCConfig{})
	d := &Dialer{Sim: s, Proto: TFC}
	conn := d.Dial(a, b, nil, nil)
	conn.Sender.Open()
	conn.Sender.Send(1 << 20)
	s.RunUntil(100 * Millisecond)
	if conn.Received() != 1<<20 {
		t.Fatalf("received %d, want 1MB", conn.Received())
	}
}

func TestFacadeAllProtocols(t *testing.T) {
	// Every registered transport — including out-of-tree ones — must
	// complete a transfer through the one generic construction path:
	// AttachTransport for the switch side, Dialer for the hosts.
	for _, name := range Protocols() {
		s := NewSimulator(2)
		net := NewNetwork(s)
		a, b := net.NewHost("a"), net.NewHost("b")
		sw := net.NewSwitch("sw")
		net.Connect(a, sw, LinkConfig{Rate: Gbps, Delay: 5 * Microsecond})
		net.Connect(sw, b, LinkConfig{Rate: Gbps, Delay: 5 * Microsecond, BufA: 256 << 10})
		net.ComputeRoutes()
		if _, err := AttachTransport(s, name, []*Switch{sw}, Gbps); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d := &Dialer{Sim: s, Proto: Proto(name)}
		conn := d.Dial(a, b, nil, nil)
		conn.Sender.Open()
		conn.Sender.Send(100 * MSS)
		conn.Sender.Close()
		s.RunUntil(Second)
		if conn.Received() != 100*MSS {
			t.Fatalf("%s: received %d", name, conn.Received())
		}
	}
}

func TestDCTCPThreshold(t *testing.T) {
	if DCTCPThreshold(Gbps) != 32<<10 {
		t.Fatalf("K@1G = %d", DCTCPThreshold(Gbps))
	}
	if DCTCPThreshold(10*Gbps) <= 32<<10 {
		t.Fatal("K@10G should exceed K@1G")
	}
}

func TestExperimentRegistry(t *testing.T) {
	es := Experiments()
	if len(es) < 11 {
		t.Fatalf("registry has %d experiments, want >= 11 (9 figures + 2 ablations)", len(es))
	}
	seen := map[string]bool{}
	for _, e := range es {
		if e.Name == "" || e.Desc == "" || e.Figure == "" || e.run == nil {
			t.Fatalf("incomplete registry entry: %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"fig06", "fig07", "fig08-10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "ablation-delay", "ablation-decouple",
		"fattree", "churn", "credit-baseline"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestRunExperimentErrors(t *testing.T) {
	if _, err := RunExperiment("nope", Quick); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if _, err := RunExperiment("fig06", Scale("huge")); err == nil {
		t.Fatal("unknown scale should error")
	}
}

func TestRunExperimentQuick(t *testing.T) {
	// Run the two fastest registry entries end to end.
	out, err := RunExperiment("fig14", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rho0") || !strings.Contains(out, "0.90") {
		t.Fatalf("fig14 output unexpected:\n%s", out)
	}
	out, err = RunExperiment("fig06", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "measured rtt_b") {
		t.Fatalf("fig06 output unexpected:\n%s", out)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	// Identical seeds must produce identical experiment output.
	a, err := RunExperiment("fig06", Quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment("fig06", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("experiment output not deterministic")
	}
}

func TestRunOptionsValidation(t *testing.T) {
	e, ok := Find("fig06")
	if !ok {
		t.Fatal("fig06 not in registry")
	}
	if _, err := e.Run(context.Background(), RunOptions{Scale: Scale("huge")}); err == nil {
		t.Fatal("unknown scale should error")
	}
	// Zero-value options resolve to quick / seed 1 / GOMAXPROCS.
	res, err := e.Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scale != Quick || res.Seed != 1 {
		t.Fatalf("defaults: scale=%s seed=%d, want quick/1", res.Scale, res.Seed)
	}
	if res.Name != "fig06" || res.Figure == "" || res.Text == "" || res.Data == nil {
		t.Fatalf("result incomplete: %+v", res)
	}
	if len(res.Trials) == 0 || res.Events == 0 || res.Wall <= 0 {
		t.Fatalf("metrics missing: trials=%d events=%d wall=%v",
			len(res.Trials), res.Events, res.Wall)
	}
}

func TestParallelismEquivalence(t *testing.T) {
	// The acceptance bar for the runner: a sweep's output is byte-identical
	// whether its trials run serially or fanned across 8 workers, because
	// seeds and result slots depend only on the trial index.
	e, ok := Find("fig12")
	if !ok {
		t.Fatal("fig12 not in registry")
	}
	r1, err := e.Run(context.Background(), RunOptions{Scale: Quick, Seed: 7, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := e.Run(context.Background(), RunOptions{Scale: Quick, Seed: 7, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text != r8.Text {
		t.Fatalf("fig12 output differs between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s",
			r1.Text, r8.Text)
	}
	if r1.Events != r8.Events {
		t.Fatalf("event totals differ: j=1 %d vs j=8 %d", r1.Events, r8.Events)
	}
	// Trial metrics are ordered by index with index-derived seeds.
	for i, m := range r8.Trials {
		if m.Index != i {
			t.Fatalf("trial %d has index %d; metrics not sorted", i, m.Index)
		}
	}
}

func TestCSVExportByteIdentical(t *testing.T) {
	// CSV export is part of the deterministic output surface: the same
	// (experiment, scale, seed) must yield byte-identical CSV files
	// regardless of parallelism. This is the regression test behind the
	// mapiter analyzer — an unsorted map iteration feeding a CSV writer
	// shows up here as flapping bytes.
	e, ok := Find("fig06")
	if !ok {
		t.Fatal("fig06 not in registry")
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, err := e.Run(context.Background(), RunOptions{Scale: Quick, Seed: 7, Parallelism: 1, CSVDir: dirA}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), RunOptions{Scale: Quick, Seed: 7, Parallelism: 8, CSVDir: dirB}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("fig06 exported no CSV files")
	}
	for _, ent := range entries {
		a, err := os.ReadFile(filepath.Join(dirA, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, ent.Name()))
		if err != nil {
			t.Fatalf("second run missing %s: %v", ent.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between identical-seed runs (parallelism 1 vs 8)", ent.Name())
		}
	}
}

func TestTelemetryExportByteIdentical(t *testing.T) {
	// The telemetry trace and metrics files are part of the deterministic
	// output surface: trials are merged in key order, so the same
	// (experiment, scale, seed) must yield byte-identical files at any
	// parallelism. fig12 is the multi-trial grid sweep, the case where
	// trial completion order actually varies with -j.
	e, ok := Find("fig12")
	if !ok {
		t.Fatal("fig12 not in registry")
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	run := func(dir string, par int) {
		t.Helper()
		opts := RunOptions{Scale: Quick, Seed: 7, Parallelism: par, Telemetry: &telemetry.Options{
			TracePath:   filepath.Join(dir, "trace.json"),
			MetricsPath: filepath.Join(dir, "metrics.json"),
		}}
		if _, err := e.Run(context.Background(), opts); err != nil {
			t.Fatal(err)
		}
	}
	run(dirA, 1)
	run(dirB, 8)
	for _, name := range []string{"trace.json", "metrics.json"} {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between identical-seed runs (parallelism 1 vs 8)", name)
		}
	}
	f, err := os.Open(filepath.Join(dirA, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := telemetry.ValidateTrace(f); err != nil {
		t.Errorf("exported trace fails schema validation: %v", err)
	}
}

func TestTelemetryResultsNeutral(t *testing.T) {
	// Attaching telemetry must not perturb any experiment result: probes
	// are read-only observers and never touch the simulation's Rand.
	e, ok := Find("fig08-10")
	if !ok {
		t.Fatal("fig08-10 not in registry")
	}
	plain, err := e.Run(context.Background(), RunOptions{Scale: Quick, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	traced, err := e.Run(context.Background(), RunOptions{Scale: Quick, Seed: 7, Telemetry: &telemetry.Options{
		TracePath: filepath.Join(dir, "trace.json"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Text is the full results table; Events is excluded because the gauge
	// sampling cadence adds (result-neutral) timer events of its own.
	if plain.Text != traced.Text {
		t.Error("experiment output changed when telemetry was attached")
	}
}

func TestExperimentRunCancelled(t *testing.T) {
	e, ok := Find("fig12")
	if !ok {
		t.Fatal("fig12 not in registry")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment at quick scale")
	}
	rs, err := RunAll(context.Background(), RunOptions{Scale: Quick})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(Experiments()) {
		t.Fatalf("RunAll returned %d results, want %d", len(rs), len(Experiments()))
	}
	for i, r := range rs {
		if r.Name != Experiments()[i].Name {
			t.Fatalf("result %d is %q, want registry order (%q)", i, r.Name, Experiments()[i].Name)
		}
		if r.Text == "" || r.Events == 0 {
			t.Fatalf("%s: empty result (%d events)", r.Name, r.Events)
		}
	}
}

func TestVerifyAllClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims run full quick-scale experiments")
	}
	report, ok := VerifyAll()
	if !ok {
		t.Fatalf("claims failed:\n%s", report)
	}
}

func TestProtosOverrideUnknownName(t *testing.T) {
	// A typo'd -proto must fail up front with the registry's sorted name
	// list, not start running trials.
	e, ok := Find("fig08-10")
	if !ok {
		t.Fatal("fig08-10 not in registry")
	}
	_, err := e.Run(context.Background(), RunOptions{Protos: []Proto{"newreno"}})
	if err == nil {
		t.Fatal("unknown protocol name should error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"newreno"`) {
		t.Errorf("error %q does not quote the unknown name", msg)
	}
	for _, name := range Protocols() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list registered protocol %q", msg, name)
		}
	}
}

func TestNewProtocolParallelismEquivalence(t *testing.T) {
	// The registry satellite of the byte-identity contract: the two new
	// baselines, selected via the Protos override, must produce identical
	// text and CSV output at -j1 and -j8 on both a CSV-exporting figure
	// sweep and the fault-schedule robustness experiment. (fig06 is pinned
	// to TFC; its byte identity is covered by TestCSVExportByteIdentical.)
	for _, proto := range []Proto{BFC, TINYTCP} {
		for _, name := range []string{"fig08-10", "robustness"} {
			e, ok := Find(name)
			if !ok {
				t.Fatalf("%s not in registry", name)
			}
			dirA, dirB := t.TempDir(), t.TempDir()
			run := func(dir string, par int) *Result {
				t.Helper()
				res, err := e.Run(context.Background(), RunOptions{
					Scale: Quick, Seed: 7, Parallelism: par,
					Protos: []Proto{proto}, CSVDir: dir,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			r1 := run(dirA, 1)
			r8 := run(dirB, 8)
			if r1.Text != r8.Text {
				t.Errorf("%s/%s output differs between -j1 and -j8:\n--- j=1 ---\n%s--- j=8 ---\n%s",
					name, proto, r1.Text, r8.Text)
			}
			if r1.Events != r8.Events {
				t.Errorf("%s/%s event totals differ: %d vs %d", name, proto, r1.Events, r8.Events)
			}
			if !strings.Contains(r1.Text, string(proto)) {
				t.Errorf("%s output does not mention the selected protocol %q", name, proto)
			}
			entries, err := os.ReadDir(dirA)
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range entries {
				a, err := os.ReadFile(filepath.Join(dirA, ent.Name()))
				if err != nil {
					t.Fatal(err)
				}
				b, err := os.ReadFile(filepath.Join(dirB, ent.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Errorf("%s/%s: %s differs between -j1 and -j8", name, proto, ent.Name())
				}
			}
		}
	}
}
