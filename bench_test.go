package tfcsim

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md
// §4 for the experiment index). Each benchmark runs a reduced-scale but
// structurally faithful version of the figure's scenario and reports the
// figure's headline quantity via b.ReportMetric, so `go test -bench=.`
// regenerates the whole evaluation in miniature. Run
// `go run ./cmd/tfcsim all -scale paper` for the full-scale tables.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"tfcsim/internal/exp"
	"tfcsim/internal/netsim"
	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
	"tfcsim/internal/telemetry"
)

// benchPool runs a benchmark's protocol trials serially (benchmarks time
// the work) with the pre-pool seed schedule, keeping reported metrics
// comparable across the API change.
func benchPool() *runner.Pool { return runner.Serial(1).Paired() }

func BenchmarkFig06RTTB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.RTTAccuracy(exp.RTTAccuracyConfig{
			Duration: 300 * sim.Millisecond, Window: 50 * sim.Millisecond,
		})
		b.ReportMetric(r.MeasuredRTTB.Percentile(50), "rttb_p50_us")
		b.ReportMetric(r.Reference.Percentile(50), "refRTT_p50_us")
	}
}

func BenchmarkFig07Ne(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NeAccuracy(exp.NeAccuracyConfig{Interval: 25 * sim.Millisecond})
		b.ReportMetric(r.MeanAbsErr, "ne_abs_err_flows")
	}
}

func BenchmarkFig08Queue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QueueFairnessConfig{StartInterval: 30 * sim.Millisecond}
		cfg.Proto = exp.TFC
		r := exp.QueueFairness(cfg)
		b.ReportMetric(r.AvgQueue/1024, "tfc_avg_queue_KB")
		b.ReportMetric(float64(r.MaxQueue)/1024, "tfc_max_queue_KB")
	}
}

func BenchmarkFig09GoodputFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QueueFairnessConfig{StartInterval: 30 * sim.Millisecond}
		cfg.Proto = exp.TFC
		r := exp.QueueFairness(cfg)
		b.ReportMetric(r.AggGoodput/1e6, "tfc_agg_Mbps")
		b.ReportMetric(r.JainIndex, "tfc_jain")
	}
}

func BenchmarkFig10Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QueueFairnessConfig{StartInterval: 30 * sim.Millisecond}
		cfg.Proto = exp.TFC
		r := exp.QueueFairness(cfg)
		if r.ConvergeIn > 0 {
			b.ReportMetric(r.ConvergeIn.Micros(), "tfc_flow3_converge_us")
		}
	}
}

func BenchmarkFig11WorkConserving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.WorkConserving(exp.WorkConservingConfig{Duration: 300 * sim.Millisecond})
		b.ReportMetric(r.UplinkGoodput/1e6, "uplink_Mbps")
		b.ReportMetric(r.DownlinkGoodput/1e6, "downlink_Mbps")
	}
}

func BenchmarkFig12Incast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.IncastConfig{Rounds: 3}
		cfg.Proto = exp.TFC
		cfg.Senders = 60
		tfc := exp.Incast(cfg)
		cfg.Proto = exp.TCP
		tcp := exp.Incast(cfg)
		b.ReportMetric(tfc.Goodput/1e6, "tfc@60_Mbps")
		b.ReportMetric(tcp.Goodput/1e6, "tcp@60_Mbps")
		b.ReportMetric(float64(tfc.Drops), "tfc_drops")
	}
}

func BenchmarkFig13FCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.BenchmarkConfig{
			Duration: 150 * sim.Millisecond, QueryRate: 150, BgFlowRate: 250,
		}
		rs, err := exp.BenchmarkAll(context.Background(), benchPool(), cfg, []exp.Proto{exp.TFC, exp.TCP})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[0].QueryFCT.Mean(), "tfc_query_mean_us")
		b.ReportMetric(rs[1].QueryFCT.Mean(), "tcp_query_mean_us")
		b.ReportMetric(rs[0].QueryFCT.Percentile(99.9), "tfc_query_p999_us")
		b.ReportMetric(rs[1].QueryFCT.Percentile(99.9), "tcp_query_p999_us")
	}
}

func BenchmarkFig14Rho0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := exp.Rho0Sweep(exp.Rho0SweepConfig{
			Rho0s: []float64{0.90, 1.00}, Duration: 250 * sim.Millisecond,
		})
		b.ReportMetric(pts[0].Goodput/1e6, "rho0.90_Mbps")
		b.ReportMetric(pts[1].Goodput/1e6, "rho1.00_Mbps")
		b.ReportMetric(pts[1].AvgQ/1024, "rho1.00_avgQ_KB")
	}
}

func BenchmarkFig15IncastLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.IncastConfig{
			Rate: 10 * netsim.Gbps, BufBytes: 512 << 10,
			BlockBytes: 64 << 10, Rounds: 3,
		}
		cfg.Senders = 100
		cfg.Proto = exp.TFC
		tfc := exp.Incast(cfg)
		cfg.Proto = exp.TCP
		tcp := exp.Incast(cfg)
		b.ReportMetric(tfc.Goodput/1e9, "tfc@100_Gbps")
		b.ReportMetric(tcp.Goodput/1e9, "tcp@100_Gbps")
		b.ReportMetric(tcp.MaxTOBlock, "tcp_maxTO_per_block")
	}
}

func BenchmarkFig16FCTLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.BenchmarkConfig{
			Racks: 6, PerRack: 6, BufBytes: 48 << 10,
			Duration: 80 * sim.Millisecond, QueryRate: 100, BgFlowRate: 200,
		}
		rs, err := exp.BenchmarkAll(context.Background(), benchPool(), cfg, []exp.Proto{exp.TFC, exp.TCP})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[0].QueryFCT.Percentile(95), "tfc_query_p95_us")
		b.ReportMetric(rs[1].QueryFCT.Percentile(95), "tcp_query_p95_us")
	}
}

func BenchmarkAblationNoAdjust(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.WorkConserving(exp.WorkConservingConfig{
			Duration: 300 * sim.Millisecond, DisableAdjust: true,
		})
		b.ReportMetric(r.DownlinkGoodput/1e6, "ablated_downlink_Mbps")
	}
}

func BenchmarkAblationNoDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.IncastConfig{Rounds: 2, BufBytes: 64 << 10}
		cfg.Proto = exp.TFC
		cfg.Senders = 80
		cfg.TFC.DisableDelay = true
		r := exp.Incast(cfg)
		b.ReportMetric(float64(r.Drops), "ablated_drops")
	}
}

func BenchmarkAblationNoDecouple(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QueueFairnessConfig{StartInterval: 30 * sim.Millisecond}
		cfg.Proto = exp.TFC
		cfg.TFC.DisableDecouple = true
		r := exp.QueueFairness(cfg)
		b.ReportMetric(r.AvgQueue/1024, "coupled_avg_queue_KB")
	}
}

func BenchmarkExtensionFatTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.PermutationConfig{Duration: 100 * sim.Millisecond}
		cfg.Proto = exp.TFC
		r := exp.Permutation(cfg)
		b.ReportMetric(r.AggGoodput/1e9, "tfc_perm_Gbps")
		b.ReportMetric(float64(r.MaxQueue)/1024, "tfc_fabric_maxQ_KB")
	}
}

func BenchmarkExtensionChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.ChurnConfig{Duration: 200 * sim.Millisecond}
		cfg.Proto = exp.TFC
		r := exp.Churn(cfg)
		b.ReportMetric(r.Utilization, "tfc_util_of_active")
		b.ReportMetric(r.AvgQ/1024, "tfc_avgQ_KB")
	}
}

func BenchmarkExtensionCreditIncast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.IncastConfig{Rounds: 3, BufBytes: 64 << 10}
		cfg.Proto = exp.CREDIT
		cfg.Senders = 60
		r := exp.Incast(cfg)
		b.ReportMetric(r.Goodput/1e6, "credit@60_Mbps")
		b.ReportMetric(float64(r.Drops), "credit_data_drops")
	}
}

// benchDumbbell builds the saturated 10G dumbbell the engine benchmarks
// share: h1 — sw — h2 with a 1 MB bottleneck buffer and one greedy TCP
// flow.
func benchDumbbell(s *Simulator) (*Network, *Host, *Host) {
	net := NewNetwork(s)
	net.PoolPackets = true
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	link := LinkConfig{Rate: 10 * Gbps, Delay: 5 * Microsecond}
	net.Connect(h1, sw, link)
	net.Connect(sw, h2, LinkConfig{Rate: 10 * Gbps, Delay: 5 * Microsecond, BufA: 1 << 20})
	net.ComputeRoutes()
	return net, h1, h2
}

// benchHops sums transmitted packets over every port (the pkt-hop count).
func benchHops(net *Network) int64 {
	var hops int64
	for _, n := range net.Nodes() {
		for _, p := range n.Ports() {
			hops += p.TxPackets
		}
	}
	return hops
}

// Engine-benchmark measurement windows. The scenario runs from 0 to
// benchEnd; the timed/memory-measured window starts at benchSettle, after
// an untimed pre-roll that reaches steady state (lanes created, pools and
// rings at their working-set sizes, slow start over). The determinism
// canary Mevents/simsec still uses the full 0→benchEnd run, so its value
// is comparable across engine generations.
const (
	benchSettle = 5 * sim.Millisecond
	benchEnd    = 50 * sim.Millisecond
)

// BenchmarkEngineThroughput measures raw simulator event throughput with a
// saturated 10G dumbbell — the substrate cost every experiment pays.
// Mevents/simsec is scenario-determined (a determinism canary: it must not
// move across engine changes); Mevents/wallsec and allocs/pkt-hop are the
// performance figures tracked by BENCH_*.json. Setup, warm-up and pre-roll
// are untimed: ns/op, B/op, allocs/op and the reported metrics all cover
// exactly the steady-state window, where the engine must not allocate.
func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	var events, winEvents uint64
	var winHops int64
	var allocs uint64
	var ms0, ms1 runtime.MemStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewSimulator(1)
		net, h1, h2 := benchDumbbell(s)
		d := &Dialer{Sim: s, Proto: TCP}
		conn := d.Dial(h1, h2, nil, nil)
		conn.Sender.Open()
		conn.Sender.Send(1 << 30)
		s.RunUntil(benchSettle)
		s.Warm(4096, 1<<12)
		net.Warm(1<<16, 1<<16)
		ev0, hops0 := s.Executed(), benchHops(net)
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		b.StartTimer()
		s.RunUntil(benchEnd)
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		allocs += ms1.Mallocs - ms0.Mallocs
		events += s.Executed()
		winEvents += s.Executed() - ev0
		winHops += benchHops(net) - hops0
		b.StartTimer()
	}
	b.StopTimer()
	simsec := benchEnd.Seconds() * float64(b.N)
	b.ReportMetric(float64(events)/simsec/1e6, "Mevents/simsec")
	b.ReportMetric(float64(winEvents)/b.Elapsed().Seconds()/1e6, "Mevents/wallsec")
	b.ReportMetric(float64(allocs)/float64(winHops), "allocs/pkt-hop")
}

// BenchmarkEngineThroughputTelemetry runs the same saturated dumbbell
// with a live telemetry trial attached (forwarding-path probe, transport
// probe, queue gauges, event recorder), so the delta against
// BenchmarkEngineThroughput is the telemetry layer's enabled-path cost.
// The disabled path is covered by BenchmarkEngineThroughput itself:
// after the instrumentation refactor every probe field there is nil, so
// its figures also prove the nil-check fast path costs nothing.
func BenchmarkEngineThroughputTelemetry(b *testing.B) {
	b.ReportAllocs()
	col := telemetry.NewCollector(telemetry.Options{})
	var events, winEvents uint64
	var winHops int64
	var allocs uint64
	var ms0, ms1 runtime.MemStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tel := col.Trial(fmt.Sprintf("iter%06d", i))
		s := NewSimulator(1)
		tel.Bind(s)
		net, h1, h2 := benchDumbbell(s)
		telemetry.InstrumentNetwork(tel, net)
		d := &Dialer{Sim: s, Proto: TCP, Probe: tel.DialProbe}
		conn := d.Dial(h1, h2, nil, nil)
		conn.Sender.Open()
		conn.Sender.Send(1 << 30)
		s.RunUntil(benchSettle)
		s.Warm(4096, 1<<12)
		net.Warm(1<<16, 1<<16)
		ev0, hops0 := s.Executed(), benchHops(net)
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		b.StartTimer()
		s.RunUntil(benchEnd)
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		allocs += ms1.Mallocs - ms0.Mallocs
		events += s.Executed()
		winEvents += s.Executed() - ev0
		winHops += benchHops(net) - hops0
		b.StartTimer()
	}
	b.StopTimer()
	simsec := benchEnd.Seconds() * float64(b.N)
	b.ReportMetric(float64(events)/simsec/1e6, "Mevents/simsec")
	b.ReportMetric(float64(winEvents)/b.Elapsed().Seconds()/1e6, "Mevents/wallsec")
	b.ReportMetric(float64(allocs)/float64(winHops), "allocs/pkt-hop")
}

// BenchmarkEngineThroughputObs runs the telemetry scenario with the full
// runtime observatory attached on top: every flow span-traced
// (SpanEvery=1), invariant watchdogs armed, and the flight recorder
// ring live (dumps disabled). The delta against
// BenchmarkEngineThroughputTelemetry is the observatory's enabled-path
// cost; scripts/bench.sh gates its allocs/pkt-hop at the telemetry-on
// baseline (zero): spans write into the recorder's preallocated heap,
// the flight ring is a fixed array, and watchdogs keep no per-event
// state, so observation must not add a single steady-state allocation.
// The HTTP endpoint is off, as in production runs without -http.
func BenchmarkEngineThroughputObs(b *testing.B) {
	b.ReportAllocs()
	o := NewObservatory(ObsOptions{SpanEvery: 1, SpanSeed: 1, Watchdogs: true, FlightDir: "-"})
	col := telemetry.NewCollector(telemetry.Options{})
	o.Attach("bench", col)
	var events, winEvents uint64
	var winHops int64
	var allocs uint64
	var ms0, ms1 runtime.MemStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tel := col.Trial(fmt.Sprintf("iter%06d", i))
		s := NewSimulator(1)
		tel.Bind(s)
		net, h1, h2 := benchDumbbell(s)
		telemetry.InstrumentNetwork(tel, net)
		d := &Dialer{Sim: s, Proto: TCP, Probe: tel.DialProbe}
		conn := d.Dial(h1, h2, nil, nil)
		conn.Sender.Open()
		conn.Sender.Send(1 << 30)
		s.RunUntil(benchSettle)
		s.Warm(4096, 1<<12)
		net.Warm(1<<16, 1<<16)
		o.Warm(1 << 16)
		ev0, hops0 := s.Executed(), benchHops(net)
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		b.StartTimer()
		s.RunUntil(benchEnd)
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		allocs += ms1.Mallocs - ms0.Mallocs
		events += s.Executed()
		winEvents += s.Executed() - ev0
		winHops += benchHops(net) - hops0
		b.StartTimer()
	}
	b.StopTimer()
	simsec := benchEnd.Seconds() * float64(b.N)
	b.ReportMetric(float64(events)/simsec/1e6, "Mevents/simsec")
	b.ReportMetric(float64(winEvents)/b.Elapsed().Seconds()/1e6, "Mevents/wallsec")
	b.ReportMetric(float64(allocs)/float64(winHops), "allocs/pkt-hop")
}

// BenchmarkShardedFatTree drives the k=16 fat-tree permutation workload
// through the conservative parallel engine at increasing shard counts —
// the BENCH_3 artifact (scripts/bench.sh shard-sweep). Mevents/simsec is
// the determinism canary: sharded execution is byte-identical to
// sequential, so the event count per simulated second cannot move with
// the shard count. Mevents/wallsec is the scaling figure; the parallel
// engine's epoch barriers are pure overhead on a single-core host, so
// speedup only appears with at least as many cores as shards. The
// injected wall clock (exp.PermutationConfig.Clock) turns on the group's
// barrier/work attribution, so barrier_frac reports the share of shard
// wall time stalled at epoch barriers — the self-profiling figure that
// explains the scaling curve.
func BenchmarkShardedFatTree(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var events uint64
			var simsec float64
			var barrierNs, shardNs float64
			for i := 0; i < b.N; i++ {
				cfg := exp.PermutationConfig{}
				cfg.Proto = exp.TFC
				cfg.Seed = 1
				cfg.K = 16
				cfg.Shards = shards
				cfg.Warmup = sim.Millisecond
				cfg.Duration = 5 * sim.Millisecond
				cfg.Clock = func() int64 { return time.Now().UnixNano() }
				r := exp.Permutation(cfg)
				events += r.Events
				simsec += cfg.Duration.Seconds()
				if r.Group != nil {
					for _, sh := range r.Group.PerShard {
						barrierNs += float64(sh.BarrierNs)
					}
					shardNs += float64(r.Group.WindowNs) * float64(r.Group.Shards)
				}
			}
			b.ReportMetric(float64(events)/simsec/1e6, "Mevents/simsec")
			b.ReportMetric(float64(events)/b.Elapsed().Seconds()/1e6, "Mevents/wallsec")
			if shardNs > 0 {
				b.ReportMetric(barrierNs/shardNs, "barrier_frac")
			}
		})
	}
}
