module tfcsim

go 1.22
