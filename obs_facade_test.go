package tfcsim

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"tfcsim/internal/obs"
	"tfcsim/internal/telemetry"
)

func TestObservatoryResultsNeutral(t *testing.T) {
	// Attaching the observatory — watchdogs armed, no telemetry export —
	// must not perturb any experiment result: every obs computation is a
	// pure read off the probe stream.
	e, ok := Find("fig08-10")
	if !ok {
		t.Fatal("fig08-10 not in registry")
	}
	plain, err := e.Run(context.Background(), RunOptions{Scale: Quick, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	o := NewObservatory(ObsOptions{Watchdogs: true, FlightDir: "-"})
	observed, err := e.Run(context.Background(), RunOptions{Scale: Quick, Seed: 7, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Text != observed.Text {
		t.Error("experiment output changed when the observatory was attached")
	}
	if o.Violations() != 0 {
		t.Errorf("healthy run tripped %d watchdog violation(s)", o.Violations())
	}
}

func TestPacketSpanByteIdentical(t *testing.T) {
	// Causal packet spans are sampled by a pure function of (flow, seed)
	// and recorded on the virtual timeline, so the exported trace must be
	// byte-identical at any worker parallelism and shard count. fig08-10
	// honors -shards, making it the case where both axes actually vary.
	e, ok := Find("fig08-10")
	if !ok {
		t.Fatal("fig08-10 not in registry")
	}
	run := func(par, shards int) []byte {
		t.Helper()
		dir := t.TempDir()
		opts := RunOptions{
			Scale: Quick, Seed: 7, Parallelism: par, Shards: shards,
			Telemetry: &telemetry.Options{TracePath: filepath.Join(dir, "trace.json")},
			Obs:       NewObservatory(ObsOptions{SpanEvery: 2, SpanSeed: 7, Watchdogs: true, FlightDir: "-"}),
		}
		if _, err := e.Run(context.Background(), opts); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "trace.json"))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	base := run(1, 1)
	for _, c := range []struct{ par, shards int }{{8, 1}, {1, 3}, {8, 3}} {
		if got := run(c.par, c.shards); !bytes.Equal(base, got) {
			t.Errorf("span trace differs from -j1 -shards1 at -j%d -shards%d", c.par, c.shards)
		}
	}
	if err := telemetry.ValidateTrace(bytes.NewReader(base)); err != nil {
		t.Errorf("span trace fails schema validation: %v", err)
	}
	if err := obs.ValidateSpans(bytes.NewReader(base)); err != nil {
		t.Errorf("span trace fails span-chain validation: %v", err)
	}
	// The trace must actually contain spans — an empty sampled set would
	// make the identity check vacuous.
	if !bytes.Contains(base, []byte(`"cat":"span"`)) {
		t.Error("trace contains no packet spans (sampling produced an empty set)")
	}
}
