// Quickstart: two TFC flows sharing a 1 Gbps bottleneck.
//
// Builds a dumbbell (two senders, one switch, one receiver), attaches
// TFC to the switch, runs 100 ms of virtual time, and prints per-flow
// goodput and the bottleneck queue — demonstrating TFC's headline
// properties: fair shares, ~rho0 utilization, and a near-zero queue.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"tfcsim"
)

func main() {
	s := tfcsim.NewSimulator(42)
	net := tfcsim.NewNetwork(s)

	sw := net.NewSwitch("sw")
	link := tfcsim.LinkConfig{Rate: tfcsim.Gbps, Delay: 5 * tfcsim.Microsecond}
	var senders []*tfcsim.Host
	for i := 0; i < 2; i++ {
		h := net.NewHost(fmt.Sprintf("sender%d", i+1))
		h.ProcJitter = 10 * tfcsim.Microsecond // realistic host wakeup jitter
		net.Connect(h, sw, link)
		senders = append(senders, h)
	}
	recv := net.NewHost("recv")
	recv.ProcJitter = 10 * tfcsim.Microsecond
	net.Connect(sw, recv, tfcsim.LinkConfig{
		Rate: tfcsim.Gbps, Delay: 5 * tfcsim.Microsecond, BufA: 256 << 10,
	})
	net.ComputeRoutes()

	// Enable TFC on the switch (paper defaults: rho0=0.97, alpha=7/8).
	tfcState := tfcsim.AttachTFC(s, sw, tfcsim.TFCConfig{})

	d := &tfcsim.Dialer{Sim: s, Proto: tfcsim.TFC}
	var conns []*tfcsim.Conn
	for _, h := range senders {
		conn := d.Dial(h, recv, nil, nil)
		conns = append(conns, conn)
		s.At(0, func() {
			conn.Sender.Open()
			conn.Sender.Send(1 << 30) // long-lived flow
		})
	}

	bott := sw.PortTo(recv.ID())
	fmt.Println("t(ms)  flow1(Mbps)  flow2(Mbps)  queue(B)  W(B)")
	prev := []int64{0, 0}
	const step = 10 * tfcsim.Millisecond
	for t := step; t <= 100*tfcsim.Millisecond; t += step {
		s.RunUntil(t)
		var rates []float64
		for i, c := range conns {
			cur := c.Received()
			rates = append(rates, float64(cur-prev[i])*8/step.Seconds()/1e6)
			prev[i] = cur
		}
		fmt.Printf("%5d  %11.1f  %11.1f  %8d  %4.0f\n",
			int64(t/tfcsim.Millisecond), rates[0], rates[1],
			bott.QueueBytes(), tfcState.PortState(bott).Window())
	}
	fmt.Printf("\nmax queue: %d bytes, drops: %d, rtt_b: %v\n",
		bott.MaxQueue, bott.Drops, tfcState.PortState(bott).RTTB())
}
