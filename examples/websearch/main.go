// Websearch: the paper's realistic benchmark (§6.1.2) on the 9-host
// testbed topology — Poisson query fan-in (2 KB responses from 8 servers
// to one aggregator) over background flows drawn from the DCTCP
// web-search size distribution — comparing query-flow FCT tails across
// TFC, DCTCP and TCP.
//
// Expected shape (Fig 13a): TFC's mean and tail query FCT sit far below
// DCTCP's and TCP's, whose 99.9th percentiles are dominated by 200 ms
// retransmission timeouts.
//
// Run with: go run ./examples/websearch
package main

import (
	"context"
	"fmt"
	"os"

	"tfcsim"
	"tfcsim/internal/exp"
	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
)

func main() {
	fmt.Println("web-search benchmark on the 9-host testbed (300ms of arrivals)")
	fmt.Println()
	cfg := exp.BenchmarkConfig{
		Duration:   300 * sim.Millisecond,
		QueryRate:  200,
		BgFlowRate: 300,
	}
	// The three protocol runs are independent trials: fan them across
	// cores (results come back in protos order regardless).
	rs, err := exp.BenchmarkAll(context.Background(), &runner.Pool{BaseSeed: 1}, cfg,
		[]tfcsim.Proto{tfcsim.TFC, tfcsim.DCTCP, tfcsim.TCP})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(exp.FormatBenchmark("testbed benchmark", rs))
}
