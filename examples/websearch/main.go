// Websearch: the paper's realistic benchmark (§6.1.2) on the 9-host
// testbed topology — Poisson query fan-in (2 KB responses from 8 servers
// to one aggregator) over background flows drawn from the DCTCP
// web-search size distribution — comparing query-flow FCT tails across
// TFC, DCTCP and TCP.
//
// Expected shape (Fig 13a): TFC's mean and tail query FCT sit far below
// DCTCP's and TCP's, whose 99.9th percentiles are dominated by 200 ms
// retransmission timeouts.
//
// Run with: go run ./examples/websearch
package main

import (
	"fmt"

	"tfcsim"
	"tfcsim/internal/exp"
	"tfcsim/internal/sim"
)

func main() {
	fmt.Println("web-search benchmark on the 9-host testbed (300ms of arrivals)")
	fmt.Println()
	cfg := exp.BenchmarkConfig{
		Duration:   300 * sim.Millisecond,
		QueryRate:  200,
		BgFlowRate: 300,
	}
	rs := exp.BenchmarkAll(cfg, []tfcsim.Proto{tfcsim.TFC, tfcsim.DCTCP, tfcsim.TCP})
	fmt.Println(exp.FormatBenchmark("testbed benchmark", rs))
}
