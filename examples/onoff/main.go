// Onoff: the silent-flow scenario that motivates TFC (§2): a Storm-style
// connection transmits intermittently while a background flow runs
// continuously. Watch TFC (a) hand the silent flow's share to the active
// one within about one RTT (the effective-flow count only includes flows
// that actually sent a marked round), and (b) let the resuming flow
// re-acquire a window with a probe instead of bursting its stale one.
//
// Run with: go run ./examples/onoff
package main

import (
	"fmt"

	"tfcsim"
)

func main() {
	s := tfcsim.NewSimulator(7)
	net := tfcsim.NewNetwork(s)
	sw := net.NewSwitch("sw")
	link := tfcsim.LinkConfig{Rate: tfcsim.Gbps, Delay: 5 * tfcsim.Microsecond}
	mk := func(name string) *tfcsim.Host {
		h := net.NewHost(name)
		h.ProcJitter = 10 * tfcsim.Microsecond
		net.Connect(h, sw, link)
		return h
	}
	steady, bursty := mk("steady"), mk("bursty")
	recv := net.NewHost("recv")
	recv.ProcJitter = 10 * tfcsim.Microsecond
	net.Connect(sw, recv, tfcsim.LinkConfig{
		Rate: tfcsim.Gbps, Delay: 5 * tfcsim.Microsecond, BufA: 256 << 10,
	})
	net.ComputeRoutes()
	tfcsim.AttachTFC(s, sw, tfcsim.TFCConfig{})

	d := &tfcsim.Dialer{Sim: s, Proto: tfcsim.TFC}
	// Steady flow: always has data.
	var steadyConn *tfcsim.Conn
	steadyConn = d.Dial(steady, recv, func() { steadyConn.Sender.Send(64 << 10) }, nil)
	s.At(0, func() { steadyConn.Sender.Open(); steadyConn.Sender.Send(64 << 10) })
	// Bursty flow: 10 ms on, 10 ms off.
	active := false
	var burstyConn *tfcsim.Conn
	burstyConn = d.Dial(bursty, recv, func() {
		if active {
			burstyConn.Sender.Send(64 << 10)
		}
	}, nil)
	s.At(0, func() { burstyConn.Sender.Open() })
	var toggle func()
	toggle = func() {
		active = !active
		if active {
			burstyConn.Sender.Send(64 << 10)
		}
		s.After(10*tfcsim.Millisecond, toggle)
	}
	s.At(10*tfcsim.Millisecond, toggle)

	bott := sw.PortTo(recv.ID())
	fmt.Println("t(ms)  bursty  steady(Mbps)  bursty(Mbps)  queue(B)")
	prevS, prevB := int64(0), int64(0)
	const step = 5 * tfcsim.Millisecond
	for t := step; t <= 80*tfcsim.Millisecond; t += step {
		s.RunUntil(t)
		cs, cb := steadyConn.Received(), burstyConn.Received()
		state := "off"
		if active {
			state = "ON"
		}
		fmt.Printf("%5d  %-6s  %12.1f  %12.1f  %8d\n",
			int64(t/tfcsim.Millisecond), state,
			float64(cs-prevS)*8/step.Seconds()/1e6,
			float64(cb-prevB)*8/step.Seconds()/1e6,
			bott.QueueBytes())
		prevS, prevB = cs, cb
	}
	fmt.Printf("\nmax queue %dB, drops %d — the steady flow absorbs the silent share each off-period\n",
		bott.MaxQueue, bott.Drops)
}
