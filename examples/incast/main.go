// Incast: 64 senders respond with synchronized 256 KB blocks to one
// receiver — the TCP-incast scenario of the paper's Fig 12 — comparing
// TFC, DCTCP and TCP on the same topology.
//
// Expected shape: TFC sustains high goodput with zero loss and zero
// timeouts at any fan-in; DCTCP and especially TCP collapse as the
// barrier-synchronized responses overflow the shallow buffer and trigger
// 200 ms retransmission timeouts.
//
// Run with: go run ./examples/incast
package main

import (
	"fmt"

	"tfcsim"
	"tfcsim/internal/exp"
)

func main() {
	const senders = 64
	fmt.Printf("incast: %d senders, 256KB blocks, 1 Gbps, 256KB buffer, 5 rounds\n\n", senders)
	fmt.Println("proto  goodput(Mbps)  drops  timeouts  maxTO/block  avgQ(KB)  maxQ(KB)")
	for _, proto := range []tfcsim.Proto{tfcsim.TFC, tfcsim.DCTCP, tfcsim.TCP} {
		cfg := exp.IncastConfig{Rounds: 5}
		cfg.Proto = proto
		cfg.Senders = senders
		p := exp.Incast(cfg)
		fmt.Printf("%-5s  %13.1f  %5d  %8d  %11.2f  %8.1f  %8.1f\n",
			proto, p.Goodput/1e6, p.Drops, p.Timeouts, p.MaxTOBlock,
			p.AvgQ/1024, float64(p.MaxQ)/1024)
	}
	fmt.Println("\npaper shape (Fig 12): TFC flat at 800-900 Mbps with ~0 loss;")
	fmt.Println("DCTCP collapses beyond ~50 senders; TCP beyond ~10.")
}
