// Workconserving: the paper's Fig 5 multi-bottleneck scenario. Host 1
// sends 8 flows to host 4 and 2 flows to host 3; host 2 sends 2 flows to
// host 3. The S1->S2 uplink (10 flows) and the S2->host3 downlink (4
// flows) are both bottlenecks: the downlink's fair share for host 1's
// flows exceeds what the uplink allows them, so without the token
// adjustment (§4.5) the downlink would idle the stranded share.
//
// Expected shape (Fig 11): with TFC both links run near full with
// ~one-packet queues; the A1 ablation (adjustment off) leaves the
// downlink underutilized.
//
// Run with: go run ./examples/workconserving
package main

import (
	"fmt"

	"tfcsim/internal/exp"
	"tfcsim/internal/sim"
)

func main() {
	cfg := exp.WorkConservingConfig{Duration: sim.Second}
	full := exp.WorkConserving(cfg)
	cfg.DisableAdjust = true
	ablated := exp.WorkConserving(cfg)
	fmt.Println(exp.FormatWorkConserving(full, ablated))
}
