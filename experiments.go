package tfcsim

import (
	"fmt"
	"sort"
	"strings"

	"tfcsim/internal/exp"
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// Scale selects experiment fidelity: Quick runs in seconds (CI and
// benchmarks), Paper uses the paper's parameters (minutes of wall time for
// the large sweeps).
type Scale string

// Scales.
const (
	Quick Scale = "quick"
	Paper Scale = "paper"
)

// csvDir, when set via SetCSVDir, makes experiments that support raw
// data export (fig06, fig08-10) write CSV files there.
var csvDir string

// SetCSVDir directs supporting experiments to export raw series/CDFs as
// CSV into dir (empty disables).
func SetCSVDir(dir string) { csvDir = dir }

// Experiment is one reproducible table/figure of the paper.
type Experiment struct {
	Name   string // registry key, e.g. "fig12"
	Figure string // paper figure reference
	Desc   string
	Run    func(Scale) string
}

var registry = []Experiment{
	{
		Name: "fig06", Figure: "Fig 6",
		Desc: "accuracy of measured rtt_b vs reference RTT (CDF summary)",
		Run: func(sc Scale) string {
			cfg := exp.RTTAccuracyConfig{CSVDir: csvDir}
			if sc == Paper {
				cfg.Duration = 20 * sim.Second
				cfg.Window = sim.Second
			}
			return exp.RTTAccuracy(cfg).String()
		},
	},
	{
		Name: "fig07", Figure: "Fig 7",
		Desc: "accuracy of Ne with inactive flows (n2=5 persistent + n1 on-off)",
		Run: func(sc Scale) string {
			cfg := exp.NeAccuracyConfig{}
			if sc == Paper {
				cfg.Interval = sim.Second
			}
			return exp.NeAccuracy(cfg).String()
		},
	},
	{
		Name: "fig08-10", Figure: "Figs 8, 9, 10",
		Desc: "queue length, goodput/fairness and convergence, 4 staggered flows -> H3, TFC vs DCTCP vs TCP",
		Run: func(sc Scale) string {
			cfg := exp.QueueFairnessConfig{CSVDir: csvDir}
			if sc == Paper {
				cfg.StartInterval = 3 * sim.Second
				cfg.Tail = 3 * sim.Second
				cfg.GoodputSample = 20 * sim.Millisecond
			}
			return exp.FormatQueueFairness(exp.QueueFairnessAll(cfg))
		},
	},
	{
		Name: "fig11", Figure: "Fig 11",
		Desc: "work conserving on the Fig 5 multi-bottleneck topology (+ A1 ablation)",
		Run: func(sc Scale) string {
			cfg := exp.WorkConservingConfig{}
			if sc == Paper {
				cfg.Duration = 20 * sim.Second
			}
			full := exp.WorkConserving(cfg)
			cfg.DisableAdjust = true
			return exp.FormatWorkConserving(full, exp.WorkConserving(cfg))
		},
	},
	{
		Name: "fig12", Figure: "Fig 12",
		Desc: "testbed incast: goodput and queue vs number of senders (1G, 256KB blocks)",
		Run: func(sc Scale) string {
			cfg := exp.IncastConfig{}
			senders := []int{10, 40, 70, 100}
			protos := []exp.Proto{exp.TFC, exp.DCTCP, exp.TCP}
			if sc == Paper {
				cfg.Rounds = 100
				senders = []int{5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
			} else {
				cfg.Rounds = 4
			}
			pts := exp.IncastSweep(cfg, senders, protos)
			if csvDir != "" {
				_ = exp.SaveIncastCSV(csvDir, "fig12_incast.csv", pts)
			}
			return exp.FormatIncast("Fig 12 — testbed incast (1 Gbps, 256 KB blocks)", pts)
		},
	},
	{
		Name: "fig13", Figure: "Fig 13",
		Desc: "testbed web-search benchmark: query and background FCT, TFC vs DCTCP vs TCP",
		Run: func(sc Scale) string {
			cfg := exp.BenchmarkConfig{}
			if sc == Paper {
				cfg.Duration = 2 * sim.Second
				cfg.QueryRate = 300
				cfg.BgFlowRate = 500
			}
			rs := exp.BenchmarkAll(cfg, []exp.Proto{exp.TFC, exp.DCTCP, exp.TCP})
			if csvDir != "" {
				_ = exp.SaveBenchmarkCSV(csvDir, rs)
			}
			return exp.FormatBenchmark("Fig 13 — testbed benchmark", rs)
		},
	},
	{
		Name: "fig14", Figure: "Fig 14",
		Desc: "impact of rho0: goodput and queue for rho0 in 0.90..1.00",
		Run: func(sc Scale) string {
			cfg := exp.Rho0SweepConfig{}
			if sc == Paper {
				cfg.Rho0s = []float64{0.90, 0.92, 0.94, 0.96, 0.98, 1.00}
				cfg.Duration = 2 * sim.Second
			}
			return exp.FormatRho0Sweep(exp.Rho0Sweep(cfg))
		},
	},
	{
		Name: "fig15", Figure: "Fig 15",
		Desc: "large-scale incast (10G): throughput and max timeouts/block vs senders, TFC vs TCP",
		Run: func(sc Scale) string {
			var b strings.Builder
			blocks := []int64{64 << 10, 256 << 10}
			senders := []int{100, 300}
			rounds := 3
			if sc == Paper {
				blocks = []int64{64 << 10, 128 << 10, 256 << 10}
				senders = []int{50, 100, 200, 300, 400}
				rounds = 20
			}
			for _, blk := range blocks {
				cfg := exp.IncastConfig{
					Rate: 10 * netsim.Gbps, BufBytes: 512 << 10,
					BlockBytes: blk, Rounds: rounds,
				}
				pts := exp.IncastSweep(cfg, senders, []exp.Proto{exp.TFC, exp.TCP})
				b.WriteString(exp.FormatIncast(
					fmt.Sprintf("Fig 15 — large-scale incast (%dKB blocks)", blk>>10), pts))
				b.WriteString("\n")
			}
			return b.String()
		},
	},
	{
		Name: "fig16", Figure: "Fig 16",
		Desc: "large-scale web-search benchmark (leaf-spine): query and background FCT",
		Run: func(sc Scale) string {
			cfg := exp.BenchmarkConfig{BufBytes: 512 << 10}
			protos := []exp.Proto{exp.TFC, exp.TCP}
			if sc == Paper {
				cfg.Racks, cfg.PerRack = 18, 20
				cfg.Duration = 500 * sim.Millisecond
				cfg.QueryRate = 40
				cfg.BgFlowRate = 2000
				protos = []exp.Proto{exp.TFC, exp.DCTCP, exp.TCP}
			} else {
				cfg.Racks, cfg.PerRack = 6, 6
				cfg.Duration = 150 * sim.Millisecond
				cfg.QueryRate = 100
				cfg.BgFlowRate = 300
			}
			return exp.FormatBenchmark("Fig 16 — large-scale benchmark",
				exp.BenchmarkAll(cfg, protos))
		},
	},
	{
		Name: "fattree", Figure: "extension (§4.3 multi-rooted trees)",
		Desc: "k-ary fat-tree cross-pod permutation over ECMP: TFC vs TCP fabric queues",
		Run: func(sc Scale) string {
			var rs []exp.PermutationResult
			for _, p := range []exp.Proto{exp.TFC, exp.TCP} {
				cfg := exp.PermutationConfig{}
				if sc == Paper {
					cfg.K = 8
					cfg.Duration = 300 * sim.Millisecond
				} else {
					cfg.Duration = 150 * sim.Millisecond
				}
				cfg.Proto = p
				rs = append(rs, exp.Permutation(cfg))
			}
			return exp.FormatPermutation(rs)
		},
	},
	{
		Name: "churn", Figure: "extension (§2 on-off flows)",
		Desc: "Storm-style on-off flows: silent-share reclamation and burst-free resume",
		Run: func(sc Scale) string {
			var rs []exp.ChurnResult
			for _, p := range []exp.Proto{exp.TFC, exp.DCTCP, exp.TCP} {
				cfg := exp.ChurnConfig{}
				if sc == Paper {
					cfg.Duration = 2 * sim.Second
				}
				cfg.Proto = p
				rs = append(rs, exp.Churn(cfg))
			}
			return exp.FormatChurn(rs)
		},
	},
	{
		Name: "credit-baseline", Figure: "extension (§7 credit-based flow control)",
		Desc: "TFC vs an ExpressPass-style receiver-driven credit transport on incast",
		Run: func(sc Scale) string {
			cfg := exp.IncastConfig{BufBytes: 64 << 10}
			senders := []int{20, 60}
			if sc == Paper {
				cfg.Rounds = 50
				senders = []int{10, 40, 70, 100}
			} else {
				cfg.Rounds = 4
			}
			pts := exp.IncastSweep(cfg, senders, []exp.Proto{exp.TFC, exp.CREDIT})
			return exp.FormatIncast(
				"Credit baseline — incast, 64KB buffer: TFC (switch windows) vs receiver-driven credits", pts) +
				"both credit-derived designs complete fan-in without data loss; they differ in control-plane cost (per-packet credits vs per-round window stamps)\n"
		},
	},
	{
		Name: "ablation-delay", Figure: "design §4.6 (A2)",
		Desc: "incast with the ACK delay function disabled: drops appear at high fan-in",
		Run: func(sc Scale) string {
			cfg := exp.IncastConfig{Rounds: 3, BufBytes: 64 << 10}
			if sc == Paper {
				cfg.Rounds = 20
			}
			cfg.Proto = exp.TFC
			cfg.Senders = 80
			full := exp.Incast(cfg)
			cfg.TFC.DisableDelay = true
			ablated := exp.Incast(cfg)
			return exp.FormatIncast("Ablation A2 — delay function off (80 senders, 64KB buffer)",
				[]exp.IncastPoint{full, ablated}) +
				"row 1 = full TFC, row 2 = DisableDelay\n"
		},
	},
	{
		Name: "ablation-decouple", Figure: "design §4.4 (A3)",
		Desc: "rtt_b/rtt_m coupling: tokens computed from rtt_m inflate queues",
		Run: func(sc Scale) string {
			run := func(disable bool) *exp.QueueFairnessResult {
				cfg := exp.QueueFairnessConfig{}
				if sc == Paper {
					cfg.StartInterval = sim.Second
				}
				cfg.Proto = exp.TFC
				cfg.TFC.DisableDecouple = disable
				return exp.QueueFairness(cfg)
			}
			full, coupled := run(false), run(true)
			t := exp.FormatQueueFairness([]*exp.QueueFairnessResult{full, coupled})
			return "Ablation A3 — row 1 = decoupled (full TFC), row 2 = coupled (tokens from rtt_m)\n" + t
		},
	},
}

// Experiments lists the available experiments sorted by name.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RunExperiment runs one experiment by name at the given scale and returns
// its rendered result.
func RunExperiment(name string, scale Scale) (string, error) {
	if scale != Quick && scale != Paper {
		return "", fmt.Errorf("tfcsim: unknown scale %q (want %q or %q)", scale, Quick, Paper)
	}
	for _, e := range registry {
		if e.Name == name {
			return e.Run(scale), nil
		}
	}
	return "", fmt.Errorf("tfcsim: unknown experiment %q", name)
}
