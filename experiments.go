package tfcsim

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"tfcsim/internal/exp"
	"tfcsim/internal/netsim"
	"tfcsim/internal/obs"
	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
	"tfcsim/internal/telemetry"
	"tfcsim/internal/transport"
)

// Scale selects experiment fidelity: Quick runs in seconds (CI and
// benchmarks), Paper uses the paper's parameters (minutes of wall time for
// the large sweeps).
type Scale string

// Scales.
const (
	Quick Scale = "quick"
	Paper Scale = "paper"
)

// RunOptions parameterizes one experiment run. The zero value is valid:
// quick scale, base seed 1, GOMAXPROCS-way parallelism, no CSV export.
type RunOptions struct {
	// Scale is the experiment fidelity (default Quick).
	Scale Scale
	// Seed is the base seed; every trial of the run derives its own seed
	// from (Seed, trial index), so results are a pure function of
	// (experiment, Scale, Seed) — Parallelism never changes the output.
	// 0 means 1.
	Seed int64
	// Parallelism is the number of trials run concurrently; <= 0 means
	// runtime.GOMAXPROCS(0). Use 1 for strictly serial execution.
	Parallelism int
	// Shards selects the per-trial execution engine: 0 or 1 (default)
	// runs each trial on the sequential simulator, >= 2 partitions each
	// trial's topology into up to that many shards driven in parallel by
	// the conservative engine, and -1 uses the topology's natural shard
	// count capped at GOMAXPROCS. Like Parallelism, it never changes the
	// output — sharded trials are byte-identical to sequential ones.
	// Experiments whose topology or workload does not decompose (fig12's
	// incast bookkeeping, the fig13/fig16 benchmark, single-path
	// topologies) ignore it; fig08-10, robustness and fattree honor it.
	Shards int
	// CSVDir, if non-empty, makes experiments that support raw data
	// export (fig06, fig08-10, fig12, fig13) write CSV files there.
	CSVDir string
	// Progress, if set, is called as each trial completes (serialized,
	// in completion order). It must not block.
	Progress func(ProgressEvent)
	// Telemetry, if set, instruments every trial of the run: virtual-time
	// metrics and Chrome trace events, merged in deterministic trial-key
	// order and written to the paths named in the options after the run
	// (empty paths skip the corresponding file). The collector is also
	// returned in Result.Telemetry. Nil (the default) disables
	// instrumentation entirely.
	Telemetry *telemetry.Options
	// Obs, if set, attaches the runtime observatory to the run: the live
	// introspection endpoint, causal packet spans, and the invariant
	// watchdogs (see internal/obs). Works with or without Telemetry — when
	// Telemetry is nil a silent collector is minted so the probe layer is
	// live but no trace/metrics files are written. The observatory is a
	// pure observer: results stay byte-identical with it on or off.
	Obs *obs.Observatory
	// Protos, when non-empty, overrides the protocol list of every
	// experiment that compares protocols (fig08-10, fig12, fig13, fig15,
	// fig16, fattree, churn, robustness, credit-baseline). Each name must
	// be a registered transport. Experiments pinned to one protocol
	// (fig06, fig07, fig11, fig14, the ablations) ignore it.
	Protos []Proto
}

func (o RunOptions) withDefaults() (RunOptions, error) {
	if o.Scale == "" {
		o.Scale = Quick
	}
	if o.Scale != Quick && o.Scale != Paper {
		return o, fmt.Errorf("tfcsim: unknown scale %q (want %q or %q)", o.Scale, Quick, Paper)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	for _, p := range o.Protos {
		if _, err := transport.Lookup(string(p)); err != nil {
			return o, fmt.Errorf("tfcsim: %w", err)
		}
	}
	return o, nil
}

// ProgressEvent reports one completed trial of a running experiment.
type ProgressEvent struct {
	Experiment string
	Trial      runner.Metrics
}

// Result is one experiment's outcome: the rendered text the CLI prints,
// the structured per-point data behind it, and execution metrics.
type Result struct {
	Name   string
	Figure string
	Scale  Scale
	Seed   int64
	// Text is the rendered tables, identical for any Parallelism.
	Text string
	// Data is the experiment's typed payload: []exp.IncastPoint for the
	// incast sweeps, []*exp.QueueFairnessResult for fig08-10,
	// []*exp.BenchmarkResult for fig13/fig16, []exp.Rho0Point for fig14,
	// and so on per experiment.
	Data any
	// Trials holds per-trial metrics (wall time, events, seed), sorted
	// by trial index. Sweeps that submit several batches repeat indexes.
	Trials []runner.Metrics
	// Events is the total simulator event count across all trials.
	Events uint64
	// Wall is the experiment's total wall-clock time.
	Wall time.Duration
	// Telemetry is the run's collector (nil unless RunOptions.Telemetry
	// was set); its files have already been written by Run.
	Telemetry *telemetry.Collector
}

// runCtx is what a registry entry's run function gets to work with: the
// resolved options plus the trial pool wired for metrics/progress.
type runCtx struct {
	scale  Scale
	seed   int64
	csvDir string
	shards int // RunOptions.Shards (per-trial engine selector)
	pool   *runner.Pool
	tel    *telemetry.Collector // nil when telemetry is off
	protos []exp.Proto          // RunOptions.Protos override (validated)
}

func (rc *runCtx) paper() bool { return rc.scale == Paper }

// protoList resolves an experiment's protocol matrix: the run-level
// Protos override when set, otherwise the experiment's default.
func (rc *runCtx) protoList(def []exp.Proto) []exp.Proto {
	if len(rc.protos) > 0 {
		return rc.protos
	}
	return def
}

// trial mints the telemetry sink for one keyed trial (nil when telemetry
// is off). Keys must be unique per run and derived from the trial's grid
// position, never from timing.
func (rc *runCtx) trial(key string) *telemetry.Trial { return rc.tel.Trial(key) }

// subPool returns a pool like rc.pool but with an independent seed branch,
// for experiments that submit more than one batch of trials (fig15's
// per-block sweeps) so trial seeds do not repeat across batches.
func (rc *runCtx) subPool(branch int) *runner.Pool {
	p := *rc.pool
	p.BaseSeed = runner.DeriveSeed(rc.seed, -1-branch)
	return &p
}

// Experiment is one reproducible table/figure of the paper.
type Experiment struct {
	Name   string // registry key, e.g. "fig12"
	Figure string // paper figure reference
	Desc   string
	run    func(ctx context.Context, rc *runCtx) (data any, text string, err error)
}

// Run executes the experiment. Trials fan out over opts.Parallelism
// workers; the output is byte-identical for any parallelism because every
// trial's seed and position are derived from its index alone. Cancelling
// ctx stops the run after in-flight trials finish.
func (e Experiment) Run(ctx context.Context, opts RunOptions) (*Result, error) {
	if e.run == nil {
		return nil, fmt.Errorf("tfcsim: experiment %q has no runner", e.Name)
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &Result{Name: e.Name, Figure: e.Figure, Scale: opts.Scale, Seed: opts.Seed}
	pool := &runner.Pool{
		Parallelism: opts.Parallelism,
		BaseSeed:    opts.Seed,
		OnDone: func(m runner.Metrics) {
			res.Trials = append(res.Trials, m) // serialized by the pool
			if opts.Progress != nil {
				opts.Progress(ProgressEvent{Experiment: e.Name, Trial: m})
			}
		},
	}
	rc := &runCtx{scale: opts.Scale, seed: opts.Seed, csvDir: opts.CSVDir,
		shards: opts.Shards, pool: pool, protos: opts.Protos}
	if opts.Telemetry != nil {
		rc.tel = telemetry.NewCollector(*opts.Telemetry)
		res.Telemetry = rc.tel
	} else if opts.Obs != nil {
		// The observatory rides on the telemetry probe layer: mint a silent
		// collector (no output paths, so WriteFiles is a no-op) purely to
		// carry the per-trial hooks.
		rc.tel = telemetry.NewCollector(telemetry.Options{})
	}
	opts.Obs.Attach(e.Name, rc.tel)
	start := time.Now() //tfcvet:allow wallclock — Result.Wall reports real elapsed time; it never feeds simulation state or CSV data
	data, text, err := e.run(ctx, rc)
	if err != nil {
		return nil, fmt.Errorf("tfcsim: %s: %w", e.Name, err)
	}
	if err := rc.tel.WriteFiles(); err != nil {
		return nil, fmt.Errorf("tfcsim: %s: telemetry: %w", e.Name, err)
	}
	opts.Obs.FinishRun(e.Name)
	res.Wall = time.Since(start) //tfcvet:allow wallclock — Result.Wall reports real elapsed time; it never feeds simulation state or CSV data
	res.Data = data
	res.Text = text
	sort.SliceStable(res.Trials, func(i, j int) bool {
		return res.Trials[i].Index < res.Trials[j].Index
	})
	for _, m := range res.Trials {
		res.Events += m.Events
	}
	return res, nil
}

var registry = []Experiment{
	{
		Name: "fig06", Figure: "Fig 6",
		Desc: "accuracy of measured rtt_b vs reference RTT (CDF summary)",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.RTTAccuracyConfig{CSVDir: rc.csvDir}
			if rc.paper() {
				cfg.Duration = 20 * sim.Second
				cfg.Window = sim.Second
			}
			rs, _, err := runner.Map(ctx, rc.pool, 1, func(_ int, seed int64) (*exp.RTTAccuracyResult, error) {
				c := cfg
				c.Seed = seed
				c.Telemetry = rc.trial("loaded")
				return exp.RTTAccuracy(c), nil
			})
			if err != nil {
				return nil, "", err
			}
			return rs[0], rs[0].String(), nil
		},
	},
	{
		Name: "fig07", Figure: "Fig 7",
		Desc: "accuracy of Ne with inactive flows (n2=5 persistent + n1 on-off)",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.NeAccuracyConfig{}
			if rc.paper() {
				cfg.Interval = sim.Second
			}
			rs, _, err := runner.Map(ctx, rc.pool, 1, func(_ int, seed int64) (*exp.NeAccuracyResult, error) {
				c := cfg
				c.Seed = seed
				c.Telemetry = rc.trial("ne-accuracy")
				return exp.NeAccuracy(c), nil
			})
			if err != nil {
				return nil, "", err
			}
			return rs[0], rs[0].String(), nil
		},
	},
	{
		Name: "fig08-10", Figure: "Figs 8, 9, 10",
		Desc: "queue length, goodput/fairness and convergence, 4 staggered flows -> H3, TFC vs DCTCP vs TCP",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.QueueFairnessConfig{CSVDir: rc.csvDir}
			cfg.TelemetryC = rc.tel
			cfg.Shards = rc.shards
			if rc.paper() {
				cfg.StartInterval = 3 * sim.Second
				cfg.Tail = 3 * sim.Second
				cfg.GoodputSample = 20 * sim.Millisecond
			}
			rs, err := exp.QueueFairnessAll(ctx, rc.pool, cfg, rc.protos...)
			if err != nil {
				return nil, "", err
			}
			return rs, exp.FormatQueueFairness(rs), nil
		},
	},
	{
		Name: "fig11", Figure: "Fig 11",
		Desc: "work conserving on the Fig 5 multi-bottleneck topology (+ A1 ablation)",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.WorkConservingConfig{}
			if rc.paper() {
				cfg.Duration = 20 * sim.Second
			}
			// The ablation is a paired comparison: both variants run with
			// the same seed so only DisableAdjust differs.
			variant := func(disable bool) func(int64) (*exp.WorkConservingResult, error) {
				key := "full"
				if disable {
					key = "no-adjust"
				}
				return func(seed int64) (*exp.WorkConservingResult, error) {
					c := cfg
					c.Seed = seed
					c.DisableAdjust = disable
					c.Telemetry = rc.trial(key)
					return exp.WorkConserving(c), nil
				}
			}
			rs, _, err := runner.Run(ctx, rc.pool.Paired(),
				[]func(int64) (*exp.WorkConservingResult, error){variant(false), variant(true)})
			if err != nil {
				return nil, "", err
			}
			return rs, exp.FormatWorkConserving(rs[0], rs[1]), nil
		},
	},
	{
		Name: "fig12", Figure: "Fig 12",
		Desc: "testbed incast: goodput and queue vs number of senders (1G, 256KB blocks)",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.IncastConfig{}
			cfg.TelemetryC = rc.tel
			cfg.Shards = rc.shards // documented no-op: exp.Incast forces sequential
			senders := []int{10, 40, 70, 100}
			protos := rc.protoList(exp.AllProtos)
			if rc.paper() {
				cfg.Rounds = 100
				senders = []int{5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
			} else {
				cfg.Rounds = 4
			}
			pts, err := exp.IncastSweep(ctx, rc.pool, cfg, senders, protos)
			if err != nil {
				return nil, "", err
			}
			if rc.csvDir != "" {
				if err := exp.SaveIncastCSV(rc.csvDir, "fig12_incast.csv", pts); err != nil {
					return nil, "", err
				}
			}
			return pts, exp.FormatIncast("Fig 12 — testbed incast (1 Gbps, 256 KB blocks)", pts), nil
		},
	},
	{
		Name: "fig13", Figure: "Fig 13",
		Desc: "testbed web-search benchmark: query and background FCT, TFC vs DCTCP vs TCP",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.BenchmarkConfig{}
			cfg.TelemetryC = rc.tel
			if rc.paper() {
				cfg.Duration = 2 * sim.Second
				cfg.QueryRate = 300
				cfg.BgFlowRate = 500
			}
			rs, err := exp.BenchmarkAll(ctx, rc.pool, cfg, rc.protoList(exp.AllProtos))
			if err != nil {
				return nil, "", err
			}
			if rc.csvDir != "" {
				if err := exp.SaveBenchmarkCSV(rc.csvDir, rs); err != nil {
					return nil, "", err
				}
			}
			return rs, exp.FormatBenchmark("Fig 13 — testbed benchmark", rs), nil
		},
	},
	{
		Name: "fig14", Figure: "Fig 14",
		Desc: "impact of rho0: goodput and queue for rho0 in 0.90..1.00",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.Rho0SweepConfig{Rho0s: []float64{0.90, 0.92, 0.94, 0.96, 0.98, 1.00}}
			cfg.TelemetryC = rc.tel
			if rc.paper() {
				cfg.Duration = 2 * sim.Second
			}
			// One trial per rho0 point.
			pts, _, err := runner.Map(ctx, rc.pool, len(cfg.Rho0s), func(i int, seed int64) (exp.Rho0Point, error) {
				c := cfg
				c.Rho0s = cfg.Rho0s[i : i+1]
				c.Seed = seed
				return exp.Rho0Sweep(c)[0], nil
			})
			if err != nil {
				return nil, "", err
			}
			return pts, exp.FormatRho0Sweep(pts), nil
		},
	},
	{
		Name: "fig15", Figure: "Fig 15",
		Desc: "large-scale incast (10G): throughput and max timeouts/block vs senders, TFC vs TCP",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			var b strings.Builder
			blocks := []int64{64 << 10, 256 << 10}
			senders := []int{100, 300}
			rounds := 3
			if rc.paper() {
				blocks = []int64{64 << 10, 128 << 10, 256 << 10}
				senders = []int{50, 100, 200, 300, 400}
				rounds = 20
			}
			var all []exp.IncastPoint
			for bi, blk := range blocks {
				cfg := exp.IncastConfig{
					Rate: 10 * netsim.Gbps, BufBytes: 512 << 10,
					BlockBytes: blk, Rounds: rounds,
				}
				cfg.TelemetryC = rc.tel
				cfg.TelemetryKey = fmt.Sprintf("b%dK", blk>>10)
				pts, err := exp.IncastSweep(ctx, rc.subPool(bi), cfg, senders,
					rc.protoList([]exp.Proto{exp.TFC, exp.TCP}))
				if err != nil {
					return nil, "", err
				}
				all = append(all, pts...)
				b.WriteString(exp.FormatIncast(
					fmt.Sprintf("Fig 15 — large-scale incast (%dKB blocks)", blk>>10), pts))
				b.WriteString("\n")
			}
			return all, b.String(), nil
		},
	},
	{
		Name: "fig16", Figure: "Fig 16",
		Desc: "large-scale web-search benchmark (leaf-spine): query and background FCT",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.BenchmarkConfig{BufBytes: 512 << 10}
			cfg.TelemetryC = rc.tel
			protos := rc.protoList([]exp.Proto{exp.TFC, exp.TCP})
			if rc.paper() {
				cfg.Racks, cfg.PerRack = 18, 20
				cfg.Duration = 500 * sim.Millisecond
				cfg.QueryRate = 40
				cfg.BgFlowRate = 2000
				protos = rc.protoList(exp.AllProtos)
			} else {
				cfg.Racks, cfg.PerRack = 6, 6
				cfg.Duration = 150 * sim.Millisecond
				cfg.QueryRate = 100
				cfg.BgFlowRate = 300
			}
			rs, err := exp.BenchmarkAll(ctx, rc.pool, cfg, protos)
			if err != nil {
				return nil, "", err
			}
			return rs, exp.FormatBenchmark("Fig 16 — large-scale benchmark", rs), nil
		},
	},
	{
		Name: "fattree", Figure: "extension (§4.3 multi-rooted trees)",
		Desc: "k-ary fat-tree cross-pod permutation over ECMP: TFC vs TCP fabric queues",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.PermutationConfig{}
			cfg.TelemetryC = rc.tel
			cfg.Shards = rc.shards
			if rc.paper() {
				cfg.K = 8
				cfg.Duration = 300 * sim.Millisecond
			} else {
				cfg.Duration = 150 * sim.Millisecond
			}
			rs, err := exp.PermutationAll(ctx, rc.pool, cfg,
				rc.protoList([]exp.Proto{exp.TFC, exp.TCP}))
			if err != nil {
				return nil, "", err
			}
			return rs, exp.FormatPermutation(rs), nil
		},
	},
	{
		Name: "churn", Figure: "extension (§2 on-off flows)",
		Desc: "Storm-style on-off flows: silent-share reclamation and burst-free resume",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.ChurnConfig{}
			cfg.TelemetryC = rc.tel
			if rc.paper() {
				cfg.Duration = 2 * sim.Second
			}
			rs, err := exp.ChurnAll(ctx, rc.pool, cfg, rc.protoList(exp.AllProtos))
			if err != nil {
				return nil, "", err
			}
			return rs, exp.FormatChurn(rs), nil
		},
	},
	{
		Name: "robustness", Figure: "extension (§4 robustness mechanisms)",
		Desc: "failure recovery: bottleneck blackouts (5/50/500ms) and 1% bursty loss, TFC vs DCTCP vs TCP",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.RobustnessConfig{}
			cfg.TelemetryC = rc.tel
			cfg.Shards = rc.shards
			if rc.paper() {
				cfg.Tail = 2 * sim.Second
			}
			rs, err := exp.RobustnessSweep(ctx, rc.pool, cfg, exp.DefaultScenarios,
				rc.protoList(exp.AllProtos))
			if err != nil {
				return nil, "", err
			}
			return rs, exp.FormatRobustness(rs), nil
		},
	},
	{
		Name: "credit-baseline", Figure: "extension (§7 credit-based flow control)",
		Desc: "TFC vs an ExpressPass-style receiver-driven credit transport on incast",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.IncastConfig{BufBytes: 64 << 10}
			cfg.TelemetryC = rc.tel
			senders := []int{20, 60}
			if rc.paper() {
				cfg.Rounds = 50
				senders = []int{10, 40, 70, 100}
			} else {
				cfg.Rounds = 4
			}
			pts, err := exp.IncastSweep(ctx, rc.pool, cfg, senders,
				rc.protoList([]exp.Proto{exp.TFC, exp.CREDIT}))
			if err != nil {
				return nil, "", err
			}
			text := exp.FormatIncast(
				"Credit baseline — incast, 64KB buffer: TFC (switch windows) vs receiver-driven credits", pts) +
				"both credit-derived designs complete fan-in without data loss; they differ in control-plane cost (per-packet credits vs per-round window stamps)\n"
			return pts, text, nil
		},
	},
	{
		Name: "ablation-delay", Figure: "design §4.6 (A2)",
		Desc: "incast with the ACK delay function disabled: drops appear at high fan-in",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.IncastConfig{Rounds: 3, BufBytes: 64 << 10}
			if rc.paper() {
				cfg.Rounds = 20
			}
			cfg.Proto = exp.TFC
			cfg.Senders = 80
			// Paired comparison: same seed, only DisableDelay differs.
			variant := func(disable bool) func(int64) (exp.IncastPoint, error) {
				key := "full"
				if disable {
					key = "no-delay"
				}
				return func(seed int64) (exp.IncastPoint, error) {
					c := cfg
					c.Seed = seed
					c.TFC.DisableDelay = disable
					c.Telemetry = rc.trial(key)
					return exp.Incast(c), nil
				}
			}
			pts, _, err := runner.Run(ctx, rc.pool.Paired(),
				[]func(int64) (exp.IncastPoint, error){variant(false), variant(true)})
			if err != nil {
				return nil, "", err
			}
			text := exp.FormatIncast("Ablation A2 — delay function off (80 senders, 64KB buffer)", pts) +
				"row 1 = full TFC, row 2 = DisableDelay\n"
			return pts, text, nil
		},
	},
	{
		Name: "ablation-decouple", Figure: "design §4.4 (A3)",
		Desc: "rtt_b/rtt_m coupling: tokens computed from rtt_m inflate queues",
		run: func(ctx context.Context, rc *runCtx) (any, string, error) {
			cfg := exp.QueueFairnessConfig{}
			if rc.paper() {
				cfg.StartInterval = sim.Second
			}
			cfg.Proto = exp.TFC
			// Paired comparison: same seed, only DisableDecouple differs.
			variant := func(disable bool) func(int64) (*exp.QueueFairnessResult, error) {
				key := "decoupled"
				if disable {
					key = "coupled"
				}
				return func(seed int64) (*exp.QueueFairnessResult, error) {
					c := cfg
					c.Seed = seed
					c.TFC.DisableDecouple = disable
					c.Telemetry = rc.trial(key)
					return exp.QueueFairness(c), nil
				}
			}
			rs, _, err := runner.Run(ctx, rc.pool.Paired(),
				[]func(int64) (*exp.QueueFairnessResult, error){variant(false), variant(true)})
			if err != nil {
				return nil, "", err
			}
			text := "Ablation A3 — row 1 = decoupled (full TFC), row 2 = coupled (tokens from rtt_m)\n" +
				exp.FormatQueueFairness(rs)
			return rs, text, nil
		},
	},
}

// Experiments lists the available experiments sorted by name.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find returns the experiment registered under name.
func Find(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll runs every registered experiment (in Experiments() order) with
// the same options and returns their results. On error — including ctx
// cancellation — it returns the results completed so far along with the
// error.
func RunAll(ctx context.Context, opts RunOptions) ([]*Result, error) {
	var out []*Result
	for _, e := range Experiments() {
		r, err := e.Run(ctx, opts)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunExperiment runs one experiment by name at the given scale and returns
// its rendered result.
//
// Deprecated: use Find plus Experiment.Run (or RunAll), which add context
// cancellation, parallel trial execution, seed control, per-trial metrics
// and structured result data. RunExperiment remains for one-line use and
// runs with default RunOptions at the requested scale.
func RunExperiment(name string, scale Scale) (string, error) {
	e, ok := Find(name)
	if !ok {
		return "", fmt.Errorf("tfcsim: unknown experiment %q", name)
	}
	r, err := e.Run(context.Background(), RunOptions{Scale: scale})
	if err != nil {
		return "", err
	}
	return r.Text, nil
}
