#!/usr/bin/env sh
# bench.sh — run the engine benchmarks and emit a BENCH_<label>.json artifact.
#
#   scripts/bench.sh             # writes BENCH_1.json (5 runs of the engine bench)
#   scripts/bench.sh mybranch    # writes BENCH_mybranch.json
#   scripts/bench.sh shard-sweep # writes BENCH_3.json (parallel-engine scaling)
#
# Compare against the committed pre-refactor baseline BENCH_0.json, or with
# benchstat on the raw text kept next to the JSON.
set -eu
cd "$(dirname "$0")/.."

label="${1:-1}"
txt="BENCH_${label}.txt"
json="BENCH_${label}.json"

# Shard-scaling sweep (BENCH_3): the k=16 fat-tree permutation workload
# at increasing shard counts. Mevents/simsec must not move across shard
# counts — sharded runs are byte-identical to sequential, so it doubles
# as a determinism canary. Mevents/wallsec is the scaling figure and is
# only meaningful on a host with at least as many cores as shards;
# single-core runs measure the epoch-barrier overhead instead.
if [ "$label" = "shard-sweep" ]; then
	txt="BENCH_3.txt"
	json="BENCH_3.json"
	go test -run '^$' -bench '^BenchmarkShardedFatTree$' -count=3 -timeout 60m . | tee "$txt"
	go run ./cmd/benchjson -label shard-sweep -o "$json" "$txt"
	echo "wrote $json"
	exit 0
fi

# The headline benchmarks (telemetry-off, telemetry-on, and
# observatory-on engine paths), repeated for a distribution benchstat
# can consume. The -off figures are the regression gate; the Telemetry
# delta is the telemetry layer's budget, and the Obs delta (spans on
# every flow, watchdogs armed, flight ring live) is the observatory's.
go test -run '^$' -bench '^BenchmarkEngineThroughput(Telemetry|Obs)?$' -count=5 . | tee "$txt"

# The hot-path microbenchmarks, one pass each.
go test -run '^$' -bench '^Benchmark(TimerChurn|TimerChurnStop|EventTarget|HeapDepth)' ./internal/sim/ | tee -a "$txt"
go test -run '^$' -bench '^Benchmark(SaturatedPort|IncastBurst)$' ./internal/netsim/ | tee -a "$txt"

# Diff against the most recent committed BENCH_*.json (other than the one
# being written), and gate hard on the alloc budgets: the steady-state
# engine path must stay allocation-free both bare and with the full
# observatory attached (the obs gate matches the telemetry-on baseline
# in BENCH_2.json, which is also zero).
prev=""
for f in $(git ls-files 'BENCH_*.json' | sort -V); do
	[ "$f" = "$json" ] && continue
	prev="$f"
done
prevargs=""
[ -n "$prev" ] && prevargs="-prev $prev"

go run ./cmd/benchjson -label "$label" -o "$json" $prevargs \
	-gate 'BenchmarkEngineThroughput:allocs/pkt-hop<=0' \
	-gate 'BenchmarkEngineThroughputObs:allocs/pkt-hop<=0' \
	"$txt"
echo "wrote $json"
