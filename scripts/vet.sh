#!/usr/bin/env sh
# vet.sh — the repository's static-analysis gate.
#
#   scripts/vet.sh
#
# Builds cmd/tfcvet (the custom analyzer suite: detrand, simtime, mapiter,
# poolsafe, plus the call-graph-backed shardsafe, rankreq, hotalloc,
# probepure), runs it over the whole module via `go vet -vettool`, then runs
# the standard go vet checks and gofmt. Any diagnostic fails the script.
set -eu
cd "$(dirname "$0")/.."

tool="$(mktemp -d)/tfcvet"
trap 'rm -rf "$(dirname "$tool")"' EXIT

echo "==> build tfcvet"
go build -o "$tool" ./cmd/tfcvet

echo "==> tfcvet (determinism / sim-time / map-order / pool-lifetime / shard-safety / rank / hot-alloc / probe-purity)"
go vet -vettool="$tool" ./...

echo "==> go vet (standard checks)"
go vet ./...

echo "==> gofmt"
fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "vet clean"
