// Package tfcsim is a packet-level data-center network simulator built to
// reproduce "TFC: Token Flow Control in Data Center Networks" (Zhang,
// Ren, Shu, Cheng — EuroSys 2016), together with the baselines the paper
// evaluates against (TCP NewReno and DCTCP) and a harness that regenerates
// every figure of the paper's evaluation.
//
// The package is a facade over the implementation packages:
//
//   - internal/sim     — deterministic discrete-event engine
//   - internal/netsim  — hosts, switches, links, routing
//   - internal/core    — TFC (the paper's contribution)
//   - internal/tcp     — TCP NewReno (+ DCTCP window machinery)
//   - internal/dctcp   — DCTCP ECN marking and constructors
//   - internal/workload— incast and web-search benchmark generators
//   - internal/exp     — one runner per paper figure
//
// # Quick start
//
//	s := tfcsim.NewSimulator(1)
//	net := tfcsim.NewNetwork(s)
//	a, b := net.NewHost("a"), net.NewHost("b")
//	sw := net.NewSwitch("sw")
//	net.Connect(a, sw, tfcsim.LinkConfig{Rate: tfcsim.Gbps, Delay: 5 * tfcsim.Microsecond})
//	net.Connect(sw, b, tfcsim.LinkConfig{Rate: tfcsim.Gbps, Delay: 5 * tfcsim.Microsecond, BufA: 256 << 10})
//	net.ComputeRoutes()
//	tfcsim.AttachTFC(s, sw, tfcsim.TFCConfig{})
//	d := &tfcsim.Dialer{Sim: s, Proto: tfcsim.TFC}
//	conn := d.Dial(a, b, nil, nil)
//	conn.Sender.Open()
//	conn.Sender.Send(1 << 20)
//	s.RunUntil(100 * tfcsim.Millisecond)
//
// Or run a whole paper experiment, fanning its trials across cores
// (output is byte-identical at any parallelism — every trial's seed is
// derived from its index, never from scheduling order):
//
//	e, _ := tfcsim.Find("fig12")
//	res, err := e.Run(ctx, tfcsim.RunOptions{Scale: tfcsim.Quick, Seed: 7, Parallelism: 8})
//	// res.Text is the rendered table, res.Data the []exp.IncastPoint,
//	// res.Trials the per-trial wall-time/event metrics.
package tfcsim

import (
	"tfcsim/internal/core"
	"tfcsim/internal/dctcp"
	"tfcsim/internal/netsim"
	"tfcsim/internal/obs"
	"tfcsim/internal/sim"
	"tfcsim/internal/telemetry"
	"tfcsim/internal/transport"
	"tfcsim/internal/workload"
)

// Core simulation types, re-exported for library consumers.
type (
	// Simulator is the deterministic discrete-event engine.
	Simulator = sim.Simulator
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Timer is a cancellable scheduled event. It is a small value handle
	// (safe to copy; the zero value is inert) onto a pooled timer node.
	Timer = sim.Timer

	// Network is a collection of hosts, switches and links.
	Network = netsim.Network
	// Host is an end system with one NIC.
	Host = netsim.Host
	// Switch is a store-and-forward output-queued switch.
	Switch = netsim.Switch
	// Port is a unidirectional transmit port (queue + link).
	Port = netsim.Port
	// LinkConfig describes a full-duplex cable.
	LinkConfig = netsim.LinkConfig
	// Packet is one network packet.
	Packet = netsim.Packet
	// Rate is link bandwidth in bits/second.
	Rate = netsim.Rate
	// FlowID identifies one transport connection.
	FlowID = netsim.FlowID

	// Proto selects a transport protocol for workloads. It is a transport
	// registry key: any name passed to RegisterTransport is valid.
	Proto = workload.Proto
	// Dialer creates connections of a chosen protocol.
	Dialer = workload.Dialer
	// Conn couples a sender with its receiver-side byte counter.
	Conn = workload.Conn

	// TransportFactory bundles a transport's constructors and switch-side
	// attachment for the registry (see RegisterTransport).
	TransportFactory = transport.Factory
	// TransportDialConfig parameterizes one registry-dialed connection.
	TransportDialConfig = transport.DialConfig
	// TransportAttachConfig parameterizes a transport's switch attachment.
	TransportAttachConfig = transport.AttachConfig
	// TransportConn is the sender/receiver pair a factory's Dial returns.
	TransportConn = transport.Conn
	// Sender is the protocol-agnostic sending interface all transports
	// implement (Open/Send/Acked/Queued/Stats/Close).
	Sender = transport.Sender

	// TFCConfig parameterizes TFC's switch behaviour (rho0, alpha, ...).
	TFCConfig = core.SwitchConfig
	// TFCSwitchState exposes per-port TFC state for inspection.
	TFCSwitchState = core.SwitchState
	// SlotInfo reports one completed TFC time slot.
	SlotInfo = core.SlotInfo

	// TelemetryOptions configures the optional observability layer
	// (RunOptions.Telemetry): trace/metrics output paths, gauge sampling
	// cadence, event-ring capacity.
	TelemetryOptions = telemetry.Options
	// TelemetryCollector is a run's merged telemetry (Result.Telemetry).
	TelemetryCollector = telemetry.Collector

	// ObsOptions configures the runtime observatory (live introspection
	// endpoint, causal packet spans, invariant watchdogs).
	ObsOptions = obs.Options
	// Observatory is the runtime observability hub (RunOptions.Obs).
	Observatory = obs.Observatory
)

// NewObservatory creates a runtime observatory; pass it via
// RunOptions.Obs and call Start/Stop around the run to serve the live
// endpoint.
func NewObservatory(opts ObsOptions) *Observatory { return obs.New(opts) }

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Rate units.
const (
	Kbps = netsim.Kbps
	Mbps = netsim.Mbps
	Gbps = netsim.Gbps
)

// Protocols.
const (
	TFC   = workload.TFC
	TCP   = workload.TCP
	DCTCP = workload.DCTCP
	// CREDIT is an ExpressPass-style receiver-driven credit transport,
	// included as a second credit-based baseline (see internal/credit).
	CREDIT = workload.CREDIT
	// BFC is a per-hop per-flow backpressure baseline (see internal/bfc).
	BFC = workload.BFC
	// TINYTCP is paced, window-capped TCP sized for ~10-packet buffers
	// (see internal/tinytcp).
	TINYTCP = workload.TINYTCP
)

// MSS is the default maximum segment size (bytes).
const MSS = netsim.MSS

// NewSimulator creates a deterministic simulator seeded with seed.
func NewSimulator(seed int64) *Simulator { return sim.New(seed) }

// NewNetwork creates an empty network on the simulator.
func NewNetwork(s *Simulator) *Network { return netsim.NewNetwork(s) }

// AttachTFC enables TFC on a switch: every port gets token/effective-flow
// state and the RMA delay arbiter is installed.
func AttachTFC(s *Simulator, sw *Switch, cfg TFCConfig) *TFCSwitchState {
	return core.Attach(s, sw, cfg)
}

// AttachDCTCPMarking installs DCTCP's instantaneous-queue ECN marking
// (threshold k bytes) on every port of sw.
func AttachDCTCPMarking(sw *Switch, k int) { dctcp.AttachMarking(sw, k) }

// DCTCPThreshold returns the paper's marking threshold for a link rate
// (32 KB at 1 Gbps, 65 frames at 10 Gbps).
func DCTCPThreshold(rate Rate) int { return dctcp.KFor(rate) }

// RegisterTransport adds a transport to the registry under name, making
// it dialable through Dialer, selectable with `tfcsim run -proto=<name>`,
// and — when its factory sets Compare — part of the full experiment
// matrix. It panics on a duplicate or empty name, or a nil Dial.
// Out-of-tree example:
//
//	tfcsim.RegisterTransport("myproto", tfcsim.TransportFactory{
//	    Desc: "my experimental transport",
//	    Dial: func(c tfcsim.TransportDialConfig) tfcsim.TransportConn { ... },
//	})
func RegisterTransport(name string, f TransportFactory) {
	transport.Register(name, f)
}

// Protocols returns the names of all registered transports, sorted.
func Protocols() []string { return transport.Names() }

// ProtocolRegistered reports whether name is a registered transport.
func ProtocolRegistered(name string) bool { return transport.Registered(name) }

// AttachTransport installs the named transport's switch-side machinery on
// the given switches (a no-op for host-only transports like TCP),
// returning the transport-defined attachment state. markRate is the
// bottleneck link rate protocols with rate-derived thresholds use (DCTCP's
// ECN K). It errors on an unknown name, listing the registered ones.
func AttachTransport(s *Simulator, name string, switches []*Switch, markRate Rate) (any, error) {
	f, err := transport.Lookup(name)
	if err != nil {
		return nil, err
	}
	if f.Attach == nil {
		return nil, nil
	}
	return f.Attach(transport.AttachConfig{
		Sim: s, Switches: switches, MarkRate: markRate,
	}), nil
}
