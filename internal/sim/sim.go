// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as integer nanoseconds and executes events
// in (time, insertion-order) order, which makes every run bit-for-bit
// reproducible for a given seed. All simulation entities (links, switches,
// transport endpoints, workload generators) schedule callbacks through a
// single Simulator instance; the engine is strictly single-threaded.
//
// The hot path is allocation-free in steady state: the pending-event queue
// is a concrete 4-ary min-heap of *timerNode (no interface boxing, no
// container/heap dispatch), fired and cancelled nodes are recycled through
// a per-Simulator free list, and high-frequency callers can schedule an
// EventTarget instead of a closure so that nothing is allocated per event.
// Generation counters keep Timer handles safe across recycling: Stop and
// Active on a handle whose node has been reused are harmless no-ops.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time/time.Duration so
// that wall-clock APIs cannot leak into simulated code.
type Time int64

// Convenient duration units, expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit, e.g. "153.2us".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.6gs", t.Seconds())
	}
}

// EventTarget is the closure-free scheduling interface. High-frequency
// callers (the network forwarding path schedules two events per packet per
// hop) implement RunEvent on a pooled carrier struct and pass it to
// Schedule/ScheduleAfter, avoiding the per-event closure allocations that
// At/After cost.
type EventTarget interface {
	RunEvent()
}

// timerNode is one pending-queue entry. Nodes are owned by the Simulator
// and recycled through its free list after they fire or their cancelled
// entry is popped; Timer handles reference them together with the
// generation captured at scheduling time.
type timerNode struct {
	at      Time
	seq     uint64
	gen     uint64
	fn      func()
	target  EventTarget
	index   int32 // heap index, -1 once popped
	stopped bool
}

// Timer is a cancellable handle to a scheduled event. It is a small value
// (copy freely); the zero value is inert: Stop reports false and Active
// reports false. A handle outliving its event is safe — once the event has
// fired (or its cancelled node was collected) the node's generation moves
// on, and the stale handle can never affect a later event that happens to
// reuse the same node.
type Timer struct {
	n   *timerNode
	gen uint64
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// call prevented the timer from firing; stopping an already-fired,
// already-stopped, or zero timer reports false.
func (t Timer) Stop() bool {
	n := t.n
	if n == nil || n.gen != t.gen || n.stopped || n.index == -1 {
		return false
	}
	n.stopped = true
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	n := t.n
	return n != nil && n.gen == t.gen && !n.stopped && n.index != -1
}

// When returns the virtual time at which the timer fires. Once the timer
// has fired or been collected the handle is stale and When returns 0;
// callers that need the deadline of a possibly-fired timer should check
// Active first.
func (t Timer) When() Time {
	if t.n == nil || t.n.gen != t.gen {
		return 0
	}
	return t.n.at
}

// Simulator owns virtual time and the pending-event queue.
type Simulator struct {
	now Time
	// events is a 4-ary min-heap ordered by (at, seq). 4-ary beats binary
	// here: sift-downs touch 4 children per level but run half the levels,
	// and the children share cache lines.
	events  []*timerNode
	free    []*timerNode // recycled nodes
	seq     uint64
	stopped bool
	// Rand is the experiment-scoped random source. It is seeded at
	// construction so runs are reproducible.
	Rand *rand.Rand
	// executed counts events run so far (useful for budget guards in tests).
	executed uint64
}

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{Rand: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// At schedules fn at absolute virtual time t. Scheduling in the past (or at
// the present) runs the event at the current time but after all events
// already queued for that time. It returns a cancellable handle.
func (s *Simulator) At(t Time, fn func()) Timer {
	return s.schedule(t, fn, nil)
}

// After schedules fn d nanoseconds from now.
func (s *Simulator) After(d Time, fn func()) Timer {
	return s.schedule(s.now+d, fn, nil)
}

// Schedule is the allocation-free variant of At: tgt.RunEvent runs at
// absolute time t (clamped to now, FIFO among equal times, exactly like
// At). The target must stay valid until the event fires or is stopped.
func (s *Simulator) Schedule(t Time, tgt EventTarget) Timer {
	return s.schedule(t, nil, tgt)
}

// ScheduleAfter schedules tgt.RunEvent d nanoseconds from now.
func (s *Simulator) ScheduleAfter(d Time, tgt EventTarget) Timer {
	return s.schedule(s.now+d, nil, tgt)
}

func (s *Simulator) schedule(t Time, fn func(), tgt EventTarget) Timer {
	if t < s.now {
		t = s.now
	}
	var n *timerNode
	if k := len(s.free) - 1; k >= 0 {
		n = s.free[k]
		s.free[k] = nil
		s.free = s.free[:k]
	} else {
		n = &timerNode{}
	}
	n.at = t
	n.seq = s.seq
	n.fn = fn
	n.target = tgt
	n.stopped = false
	s.seq++
	s.push(n)
	return Timer{n: n, gen: n.gen}
}

// recycle returns a popped node to the free list. Bumping the generation
// invalidates every outstanding handle to the node before it is reused.
func (s *Simulator) recycle(n *timerNode) {
	n.fn = nil
	n.target = nil
	n.gen++
	s.free = append(s.free, n)
}

func timerLess(a, b *timerNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts n, sifting up through 4-ary parents.
func (s *Simulator) push(n *timerNode) {
	h := append(s.events, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !timerLess(n, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = n
	n.index = int32(i)
	s.events = h
}

// popMin removes and returns the earliest node.
func (s *Simulator) popMin() *timerNode {
	h := s.events
	top := h[0]
	top.index = -1
	last := len(h) - 1
	n := h[last]
	h[last] = nil
	h = h[:last]
	s.events = h
	if last == 0 {
		return top
	}
	// Sift the former tail down from the root.
	i := 0
	for {
		c := i<<2 + 1
		if c >= last {
			break
		}
		m := c
		end := c + 4
		if end > last {
			end = last
		}
		for j := c + 1; j < end; j++ {
			if timerLess(h[j], h[m]) {
				m = j
			}
		}
		if !timerLess(h[m], n) {
			break
		}
		h[i] = h[m]
		h[i].index = int32(i)
		i = m
	}
	h[i] = n
	n.index = int32(i)
	return top
}

// Stop makes Run/RunUntil return after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() { s.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= end (or until the queue
// drains, or Stop). The contract for Now() on return:
//
//   - events remain past end: Now() == end (virtual time passed even
//     though nothing fired in the tail);
//   - the queue drained before end: Now() stays at the last executed
//     event — an idle simulation does not invent the passage of time, so
//     measurements like goodput over Now() reflect actual activity;
//   - Stop() was called: Now() stays at the stopping event.
func (s *Simulator) RunUntil(end Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		n := s.events[0]
		if n.at > end {
			break
		}
		s.popMin()
		if n.stopped {
			s.recycle(n)
			continue
		}
		s.now = n.at
		s.executed++
		// Recycle before invoking: outstanding handles are already dead
		// (generation bumped), and the callback may schedule fresh events
		// straight into the node we just returned.
		if tgt := n.target; tgt != nil {
			s.recycle(n)
			tgt.RunEvent()
		} else {
			fn := n.fn
			s.recycle(n)
			fn()
		}
	}
	if s.now < end && !s.stopped && len(s.events) > 0 {
		s.now = end
	}
}

// Pending returns the number of queued (possibly stopped) events.
func (s *Simulator) Pending() int { return len(s.events) }
