// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as integer nanoseconds and executes events
// in (time, insertion-order) order, which makes every run bit-for-bit
// reproducible for a given seed. All simulation entities (links, switches,
// transport endpoints, workload generators) schedule callbacks through a
// single Simulator instance; the engine is strictly single-threaded.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time/time.Duration so
// that wall-clock APIs cannot leak into simulated code.
type Time int64

// Convenient duration units, expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit, e.g. "153.2us".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.6gs", t.Seconds())
	}
}

// Timer is a handle to a scheduled event. It may be stopped before it fires.
// The zero value is not useful; Timers are created by Simulator.At/After.
type Timer struct {
	at      Time
	seq     uint64
	index   int // heap index, -1 once popped
	fn      func()
	stopped bool
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// call prevented the timer from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.index == -1 {
		return false
	}
	t.stopped = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && !t.stopped && t.index != -1 }

// When returns the virtual time at which the timer fires (or fired).
func (t *Timer) When() Time { return t.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Simulator owns virtual time and the pending-event queue.
type Simulator struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	// Rand is the experiment-scoped random source. It is seeded at
	// construction so runs are reproducible.
	Rand *rand.Rand
	// executed counts events run so far (useful for budget guards in tests).
	executed uint64
}

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{Rand: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// At schedules fn at absolute virtual time t. Scheduling in the past (or at
// the present) runs the event at the current time but after all events
// already queued for that time. It returns a cancellable handle.
func (s *Simulator) At(t Time, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	tm := &Timer{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, tm)
	return tm
}

// After schedules fn d nanoseconds from now.
func (s *Simulator) After(d Time, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Stop makes Run/RunUntil return after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() { s.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= end (or until the queue
// drains, or Stop). The contract for Now() on return:
//
//   - events remain past end: Now() == end (virtual time passed even
//     though nothing fired in the tail);
//   - the queue drained before end: Now() stays at the last executed
//     event — an idle simulation does not invent the passage of time, so
//     measurements like goodput over Now() reflect actual activity;
//   - Stop() was called: Now() stays at the stopping event.
func (s *Simulator) RunUntil(end Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > end {
			break
		}
		heap.Pop(&s.events)
		if next.stopped {
			continue
		}
		s.now = next.at
		s.executed++
		next.fn()
	}
	if s.now < end && !s.stopped && len(s.events) > 0 {
		s.now = end
	}
}

// Pending returns the number of queued (possibly stopped) events.
func (s *Simulator) Pending() int { return len(s.events) }
