// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as integer nanoseconds and executes events
// in (time, insertion-order) order, which makes every run bit-for-bit
// reproducible for a given seed. All simulation entities (links, switches,
// transport endpoints, workload generators) schedule callbacks through a
// single Simulator instance; the engine is strictly single-threaded.
//
// The hot path is allocation-free in steady state: the pending-event queue
// is a concrete 4-ary min-heap of *timerNode (no interface boxing, no
// container/heap dispatch), fired and cancelled nodes are recycled through
// a per-Simulator free list, and high-frequency callers can schedule an
// EventTarget instead of a closure so that nothing is allocated per event.
// Generation counters keep Timer handles safe across recycling: Stop and
// Active on a handle whose node has been reused are harmless no-ops.
//
// On top of the heap sits a timer-wheel fast path for the dominant
// fixed-delay event classes (frame serialization, link propagation,
// delimiter timers): relative deadlines scheduled through ScheduleAfter /
// After are routed to a per-delay FIFO lane instead of the heap. Because
// virtual time never moves backwards, all events of one fixed delay are
// scheduled in non-decreasing (time, seq) order, so each lane is a plain
// ring buffer with O(1) push and pop — no sifting. The dispatcher takes
// the global minimum over the heap root and the lane heads with the exact
// (time, seq) tie-break the heap alone used, so the execution order (and
// with it every simulation output) is byte-identical to the heap-only
// engine; see TestLaneHeapEquivalence and FuzzTimerWheel.
package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time/time.Duration so
// that wall-clock APIs cannot leak into simulated code.
type Time int64

// Convenient duration units, expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit, e.g. "153.2us".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.6gs", t.Seconds())
	}
}

// EventTarget is the closure-free scheduling interface. High-frequency
// callers (the network forwarding path schedules two events per packet per
// hop) implement RunEvent on a pooled carrier struct and pass it to
// Schedule/ScheduleAfter, avoiding the per-event closure allocations that
// At/After cost.
type EventTarget interface {
	RunEvent()
}

// timerNode is one pending-queue entry. Nodes are owned by the Simulator
// and recycled through its free list after they fire or their cancelled
// entry is popped; Timer handles reference them together with the
// generation captured at scheduling time.
type timerNode struct {
	at Time
	// schedAt is the virtual time at which the node was scheduled. For
	// nodes scheduled by the owning simulator it equals now-at-schedule, so
	// ordering by (at, schedAt, rank, seq) is identical to (at, rank, seq)
	// — seq is monotone in schedule time. The sharded engine stamps
	// mailbox events with the sender shard's schedule instant instead,
	// which restores the sequential engine's insertion order for
	// cross-shard arrivals.
	schedAt Time
	seq     uint64
	gen     uint64
	fn      func()
	target  EventTarget
	owner   *Simulator // for live-count accounting on Timer.Stop
	index   int32      // heap index; laneIndex while queued in a lane, -1 once popped
	// rank canonically orders events that collide on both at and schedAt:
	// smaller rank runs first, NeutralRank (-1) before any ranked event,
	// equal ranks by seq. Callers whose same-instant emissions must
	// execute in an engine-independent order (link deliveries, ranked by
	// the receiving port) schedule through ScheduleAfterRank; everything
	// else stays neutral and keeps the historic insertion order.
	rank    int32
	stopped bool
}

// NeutralRank is the rank of events scheduled without an explicit rank.
// Neutral events order before ranked ones at the same (at, schedAt) and
// among themselves by insertion sequence, preserving the engine's
// historic tie-break wherever ranks are not in play.
const NeutralRank int32 = -1

// laneIndex marks a node queued in a fixed-delay lane rather than the
// heap. It is distinct from -1 (popped) so Timer.Stop/Active treat lane
// nodes as pending.
const laneIndex int32 = -2

// Timer is a cancellable handle to a scheduled event. It is a small value
// (copy freely); the zero value is inert: Stop reports false and Active
// reports false. A handle outliving its event is safe — once the event has
// fired (or its cancelled node was collected) the node's generation moves
// on, and the stale handle can never affect a later event that happens to
// reuse the same node.
type Timer struct {
	n   *timerNode
	gen uint64
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// call prevented the timer from firing; stopping an already-fired,
// already-stopped, or zero timer reports false.
func (t Timer) Stop() bool {
	n := t.n
	if n == nil || n.gen != t.gen || n.stopped || n.index == -1 {
		return false
	}
	n.stopped = true
	n.owner.live--
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	n := t.n
	return n != nil && n.gen == t.gen && !n.stopped && n.index != -1
}

// When returns the virtual time at which the timer fires and whether the
// handle is still pending. ok is false exactly when Active is false — a
// stale handle (the event fired or its cancelled node was collected), a
// stopped timer, or the zero Timer — so a genuine t=0 deadline is
// distinguishable from staleness. When ok is false the returned Time is 0
// and meaningless.
func (t Timer) When() (Time, bool) {
	if !t.Active() {
		return 0, false
	}
	return t.n.at, true
}

// maxLanes bounds the number of fixed-delay lanes. The hot event classes
// (frame serialization per wire size, link propagation, delimiter timers)
// need a handful; everything past the cap falls back to the heap, which is
// always correct — lane assignment affects performance only, never order.
const maxLanes = 8

// lane is a FIFO ring of pending nodes that all share one scheduling
// delay. Because virtual time is non-decreasing, ScheduleAfter with a
// fixed delay produces non-decreasing deadlines, so the ring is sorted by
// (at, seq) by construction and push/pop are O(1) with no sifting.
type lane struct {
	delay Time
	ring  []*timerNode // power-of-two capacity
	head  int
	n     int
}

func (l *lane) push(n *timerNode) {
	if l.n == len(l.ring) {
		c := len(l.ring) * 2
		if c == 0 {
			c = 16
		}
		l.growTo(c)
	}
	mask := len(l.ring) - 1
	// Keep the ring in (at, rank, seq) order. Pushes arrive in
	// non-decreasing at (fixed delay, monotone clock) with equal schedAt
	// for equal at, so only a same-instant tail run can be out of rank
	// order; the backward scan almost always breaks on its first compare.
	i := l.n
	for i > 0 {
		prev := l.ring[(l.head+i-1)&mask]
		if prev.at != n.at || prev.rank <= n.rank {
			break
		}
		l.ring[(l.head+i)&mask] = prev
		i--
	}
	l.ring[(l.head+i)&mask] = n
	l.n++
}

func (l *lane) growTo(c int) {
	nr := make([]*timerNode, c)
	for i := 0; i < l.n; i++ {
		nr[i] = l.ring[(l.head+i)&(len(l.ring)-1)]
	}
	l.ring = nr
	l.head = 0
}

func (l *lane) pop() *timerNode {
	n := l.ring[l.head]
	l.ring[l.head] = nil
	l.head = (l.head + 1) & (len(l.ring) - 1)
	l.n--
	n.index = -1
	return n
}

// Simulator owns virtual time and the pending-event queue.
type Simulator struct {
	now Time
	// events is a 4-ary min-heap ordered by (at, seq). 4-ary beats binary
	// here: sift-downs touch 4 children per level but run half the levels,
	// and the children share cache lines.
	events []*timerNode
	// lanes are the timer-wheel fast path: one FIFO ring per distinct
	// fixed delay seen on ScheduleAfter/After. A lane whose delay falls
	// out of use is repurposed once it drains.
	lanes    []lane
	laneRing int          // warm hint: initial ring capacity for new lanes
	free     []*timerNode // recycled nodes
	seq      uint64
	stopped  bool
	// live counts pending events that have not been cancelled. Pending()
	// also includes stopped-but-uncollected nodes; the RunUntil tail
	// advance must not — a queue holding only dead timers does not make
	// virtual time pass.
	live int
	// disableLanes forces every event through the heap. Test hook for the
	// lane/heap equivalence and fuzz harnesses; never set in production.
	disableLanes bool
	// group, when non-nil, marks this simulator as the control member of a
	// sharded Group: Run/RunUntil delegate to the group's epoch loop and
	// Pending/Executed aggregate across the shards.
	group *Group
	// noSchedule is set by the group around the parallel phase of an
	// epoch: scheduling into the control simulator from a shard callback
	// is a cross-shard race, and this turns it into a deterministic panic.
	noSchedule bool
	// Rand is the experiment-scoped random source. It is seeded at
	// construction so runs are reproducible.
	Rand *rand.Rand
	seed int64
	// executed counts events run so far (useful for budget guards in tests).
	executed uint64
	// dispHeap/dispLane count queue pops served by the 4-ary heap vs the
	// timer-wheel lanes (engine self-profiling; includes cancelled-node
	// collection — a pop is a pop).
	dispHeap uint64
	dispLane uint64
	// pulse, when non-nil, is the live-introspection mailbox: the dispatch
	// loop publishes (now, executed) to it every pulsePeriod events. Nil
	// costs one pointer test per event, same budget as the probe hooks.
	pulse *Pulse
}

// Pulse is a lock-free progress mailbox for live introspection. The engine
// (single writer) publishes its clock and event count periodically from the
// dispatch loop; an observer goroutine (the obs HTTP server) reads the
// atomics without pausing the run. The published pair is a sample, not a
// transaction: the two fields may be up to pulsePeriod events apart.
type Pulse struct {
	now      atomic.Int64
	executed atomic.Uint64
}

// Load returns the most recently published (virtual time, executed events)
// sample. Safe from any goroutine.
func (p *Pulse) Load() (Time, uint64) {
	return Time(p.now.Load()), p.executed.Load()
}

// pulseMask makes the dispatch loop publish every 1024 events: cheap enough
// to be invisible, fresh enough for a 1 Hz dashboard.
const pulseMask = 1<<10 - 1

// SetPulse attaches (or, with nil, detaches) the progress mailbox.
func (s *Simulator) SetPulse(p *Pulse) { s.pulse = p }

func (s *Simulator) publishPulse() {
	s.pulse.now.Store(int64(s.now))
	s.pulse.executed.Store(s.executed)
}

// DispatchStats reports how many queue pops were served by the 4-ary heap
// vs the timer-wheel lanes — the heap-vs-lane dispatch ratio the lane fast
// path exists to win. Per-simulator; the Group aggregates across shards.
func (s *Simulator) DispatchStats() (heap, lane uint64) { return s.dispHeap, s.dispLane }

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{
		Rand:  rand.New(rand.NewSource(seed)),
		seed:  seed,
		lanes: make([]lane, 0, maxLanes),
	}
}

// Seed returns the seed the simulator was constructed with. Entities that
// need their own random stream (per-host jitter, per-port loss) derive it
// from this via SubSeed so their draws are independent of event
// interleaving — a prerequisite for sharded execution matching the
// sequential engine bit-for-bit.
func (s *Simulator) Seed() int64 { return s.seed }

// SubSeed derives an independent stream seed from a trial seed and a
// stable entity identifier (SplitMix64 finalizer).
func SubSeed(seed int64, salt uint64) int64 {
	z := uint64(seed) + (salt+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far; for the control
// simulator of a sharded Group it aggregates across every shard.
func (s *Simulator) Executed() uint64 {
	if s.group != nil {
		return s.group.executed()
	}
	return s.executed
}

// At schedules fn at absolute virtual time t. Scheduling in the past (or at
// the present) runs the event at the current time but after all events
// already queued for that time. It returns a cancellable handle.
func (s *Simulator) At(t Time, fn func()) Timer {
	return s.schedule(t, fn, nil)
}

// After schedules fn d nanoseconds from now. Relative deadlines take the
// lane fast path when a lane for d exists or is free (see scheduleRel).
func (s *Simulator) After(d Time, fn func()) Timer {
	return s.scheduleRel(d, fn, nil)
}

// Schedule is the allocation-free variant of At: tgt.RunEvent runs at
// absolute time t (clamped to now, FIFO among equal times, exactly like
// At). The target must stay valid until the event fires or is stopped.
func (s *Simulator) Schedule(t Time, tgt EventTarget) Timer {
	return s.schedule(t, nil, tgt)
}

// ScheduleAfter schedules tgt.RunEvent d nanoseconds from now. Relative
// deadlines take the lane fast path when a lane for d exists or is free.
func (s *Simulator) ScheduleAfter(d Time, tgt EventTarget) Timer {
	return s.scheduleRel(d, nil, tgt)
}

// ScheduleAfterRank is ScheduleAfter with an explicit arrival rank
// (>= 0): among events colliding on both deadline and schedule instant,
// smaller ranks run first, after all neutral events. Rank must be a
// stable property of the scheduling entity (netsim uses the transmitting
// port's creation index), so that simultaneous arrivals execute in the
// same canonical order in the sequential and the sharded engine.
func (s *Simulator) ScheduleAfterRank(d Time, tgt EventTarget, rank int32) Timer {
	if d < 0 || s.disableLanes {
		return s.scheduleRank(s.now+d, tgt, rank)
	}
	l := s.laneFor(d)
	if l == nil {
		return s.scheduleRank(s.now+d, tgt, rank)
	}
	n := s.newNode(s.now+d, nil, tgt)
	n.rank = rank
	n.index = laneIndex
	l.push(n)
	return Timer{n: n, gen: n.gen}
}

// scheduleRank is the heap path of ScheduleAfterRank.
func (s *Simulator) scheduleRank(t Time, tgt EventTarget, rank int32) Timer {
	if t < s.now {
		t = s.now
	}
	n := s.newNode(t, nil, tgt)
	n.rank = rank
	s.push(n)
	return Timer{n: n, gen: n.gen}
}

// scheduleRel implements After/ScheduleAfter. A non-negative fixed delay
// is pushed onto its lane in O(1); negative delays (clamped to now by the
// heap path) and delays past the lane cap fall back to the heap. Either
// placement yields the same execution order — the dispatcher always takes
// the global (at, seq) minimum across heap and lanes.
func (s *Simulator) scheduleRel(d Time, fn func(), tgt EventTarget) Timer {
	if d < 0 || s.disableLanes {
		return s.schedule(s.now+d, fn, tgt)
	}
	l := s.laneFor(d)
	if l == nil {
		return s.schedule(s.now+d, fn, tgt)
	}
	n := s.newNode(s.now+d, fn, tgt)
	n.index = laneIndex
	l.push(n)
	return Timer{n: n, gen: n.gen}
}

// laneFor returns the lane for delay d, creating or repurposing one if
// possible, or nil when every lane is occupied by another delay. The
// policy only ever consults deterministic simulator state, so lane
// assignment is itself reproducible run-to-run.
func (s *Simulator) laneFor(d Time) *lane {
	empty := -1
	for i := range s.lanes {
		l := &s.lanes[i]
		if l.delay == d {
			return l
		}
		if l.n == 0 && empty < 0 {
			empty = i
		}
	}
	if len(s.lanes) < maxLanes {
		c := s.laneRing
		if c < 16 {
			c = 16
		}
		s.lanes = append(s.lanes, lane{delay: d, ring: make([]*timerNode, c)})
		return &s.lanes[len(s.lanes)-1]
	}
	if empty >= 0 {
		// A drained lane's delay fell out of use (one-shot jitter values,
		// rate changes): hand its ring to the new delay.
		l := &s.lanes[empty]
		l.delay = d
		return l
	}
	return nil
}

// newNode takes a node from the free list (or allocates one) and stamps
// it with the next sequence number.
func (s *Simulator) newNode(t Time, fn func(), tgt EventTarget) *timerNode {
	if s.noSchedule {
		panic("sim: schedule on the control simulator during a parallel shard phase (cross-shard coupling)")
	}
	var n *timerNode
	if k := len(s.free) - 1; k >= 0 {
		n = s.free[k]
		s.free[k] = nil
		s.free = s.free[:k]
	} else {
		n = &timerNode{}
	}
	n.at = t
	n.schedAt = s.now
	n.seq = s.seq
	n.fn = fn
	n.target = tgt
	n.owner = s
	n.rank = NeutralRank
	n.stopped = false
	s.seq++
	s.live++
	return n
}

func (s *Simulator) schedule(t Time, fn func(), tgt EventTarget) Timer {
	if t < s.now {
		t = s.now
	}
	n := s.newNode(t, fn, tgt)
	s.push(n)
	return Timer{n: n, gen: n.gen}
}

// scheduleMail inserts a cross-shard arrival with an explicit schedule
// instant (the sender shard's virtual time at post) and rank. Called
// only by the group's mail delivery at an epoch barrier, in
// deterministic order.
func (s *Simulator) scheduleMail(at, schedAt Time, rank int32, tgt EventTarget) {
	n := s.newNode(at, nil, tgt)
	n.schedAt = schedAt
	n.rank = rank
	s.push(n)
}

// recycle returns a popped node to the free list. Bumping the generation
// invalidates every outstanding handle to the node before it is reused.
func (s *Simulator) recycle(n *timerNode) {
	n.fn = nil
	n.target = nil
	n.gen++
	s.free = append(s.free, n)
}

// timerLess orders nodes by (at, schedAt, rank, seq). For neutral-rank
// nodes of one simulator this is identical to the historic (at, seq)
// order — seq is monotone in schedule time, so schedAt can only agree
// with it — but it lets cross-shard mailbox arrivals (whose seq is
// assigned late, at the epoch barrier) slot into the position the
// sequential engine would have given them, and it gives same-instant
// ranked events (simultaneous link deliveries) a canonical order that
// does not depend on which engine — or which shard — produced them.
func timerLess(a, b *timerNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.seq < b.seq
}

// push inserts n, sifting up through 4-ary parents.
func (s *Simulator) push(n *timerNode) {
	h := append(s.events, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !timerLess(n, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = n
	n.index = int32(i)
	s.events = h
}

// popMin removes and returns the earliest node.
func (s *Simulator) popMin() *timerNode {
	h := s.events
	top := h[0]
	top.index = -1
	last := len(h) - 1
	n := h[last]
	h[last] = nil
	h = h[:last]
	s.events = h
	if last == 0 {
		return top
	}
	// Sift the former tail down from the root.
	i := 0
	for {
		c := i<<2 + 1
		if c >= last {
			break
		}
		m := c
		end := c + 4
		if end > last {
			end = last
		}
		for j := c + 1; j < end; j++ {
			if timerLess(h[j], h[m]) {
				m = j
			}
		}
		if !timerLess(h[m], n) {
			break
		}
		h[i] = h[m]
		h[i].index = int32(i)
		i = m
	}
	h[i] = n
	n.index = int32(i)
	return top
}

// Stop makes Run/RunUntil return after the current event completes. A
// Stop issued while no run is in progress is remembered: the next
// Run/RunUntil consumes it and returns immediately without executing
// anything. For the control simulator of a sharded Group, a mid-run Stop
// takes effect at the next epoch barrier (shards finish their current
// window first).
func (s *Simulator) Stop() { s.stopped = true }

// maxTime is the largest end Run passes to RunUntil; chosen below the
// int64 ceiling so end+1 arithmetic cannot overflow.
const maxTime = Time(1<<62 - 1)

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() { s.RunUntil(maxTime) }

// RunUntil executes events with timestamps <= end (or until the queue
// drains, or Stop). The contract for Now() on return:
//
//   - live events remain past end: Now() == end (virtual time passed even
//     though nothing fired in the tail). Cancelled-but-uncollected timers
//     do not count: a queue holding only dead timers behaves like an
//     empty one;
//   - the queue drained before end: Now() stays at the last executed
//     event — an idle simulation does not invent the passage of time, so
//     measurements like goodput over Now() reflect actual activity;
//   - Stop() was called before the run: nothing executes, Now() is
//     unchanged, and the stop request is consumed;
//   - Stop() was called mid-run: Now() stays at the stopping event, and
//     the next Run/RunUntil resumes normally.
func (s *Simulator) RunUntil(end Time) {
	if g := s.group; g != nil {
		g.runUntil(end)
		return
	}
	if s.stopped {
		// Honor a Stop issued between runs (or before the first).
		s.stopped = false
		return
	}
	stopBefore := end + 1
	if stopBefore < end {
		stopBefore = end // saturate: caller passed the int64 ceiling
	}
	s.runCore(stopBefore)
	if s.now < end && !s.stopped && s.live > 0 {
		s.now = end
	}
	// A mid-run stop is consumed here so the next run resumes.
	s.stopped = false
}

// runCore executes events with timestamps strictly below stopBefore, or
// until the queue drains or Stop. It never advances now past the last
// executed event; RunUntil layers the tail-advance contract on top, and
// the sharded group drives one window [now, stopBefore) per epoch.
func (s *Simulator) runCore(stopBefore Time) {
	for !s.stopped {
		// Global minimum across the heap root and the lane heads, with the
		// same (at, schedAt, seq) tie-break the heap uses internally. Each
		// lane is internally sorted, so its head is its minimum; the scan
		// is over at most maxLanes+1 candidates.
		var n *timerNode
		li := -1
		if len(s.events) > 0 {
			n = s.events[0]
		}
		for i := range s.lanes {
			l := &s.lanes[i]
			if l.n == 0 {
				continue
			}
			if h := l.ring[l.head]; n == nil || timerLess(h, n) {
				n, li = h, i
			}
		}
		if n == nil || n.at >= stopBefore {
			break
		}
		if li < 0 {
			s.popMin()
			s.dispHeap++
		} else {
			s.lanes[li].pop()
			s.dispLane++
		}
		if n.stopped {
			s.recycle(n)
			continue
		}
		s.live--
		s.now = n.at
		s.executed++
		if s.pulse != nil && s.executed&pulseMask == 0 {
			s.publishPulse()
		}
		// Recycle before invoking: outstanding handles are already dead
		// (generation bumped), and the callback may schedule fresh events
		// straight into the node we just returned.
		if tgt := n.target; tgt != nil {
			s.recycle(n)
			tgt.RunEvent()
		} else {
			fn := n.fn
			s.recycle(n)
			fn()
		}
	}
	if s.pulse != nil {
		s.publishPulse()
	}
}

// peekLive returns the (at, schedAt, rank) of the earliest live pending
// event. Cancelled nodes uncovered at the front are collected on the way
// — the same discard the dispatch loop performs — so the reported time is
// the time of an event that will actually fire. ok is false when nothing
// live is queued.
func (s *Simulator) peekLive() (at, schedAt Time, rank int32, ok bool) {
	for {
		var n *timerNode
		li := -1
		if len(s.events) > 0 {
			n = s.events[0]
		}
		for i := range s.lanes {
			l := &s.lanes[i]
			if l.n == 0 {
				continue
			}
			if h := l.ring[l.head]; n == nil || timerLess(h, n) {
				n, li = h, i
			}
		}
		if n == nil {
			return 0, 0, 0, false
		}
		if !n.stopped {
			return n.at, n.schedAt, n.rank, true
		}
		if li < 0 {
			s.popMin()
			s.dispHeap++
		} else {
			s.lanes[li].pop()
			s.dispLane++
		}
		s.recycle(n)
	}
}

// runOne pops and executes exactly the earliest live event. The caller
// (the group's merged same-instant step) must have established via
// peekLive that one exists.
func (s *Simulator) runOne() {
	for {
		var n *timerNode
		li := -1
		if len(s.events) > 0 {
			n = s.events[0]
		}
		for i := range s.lanes {
			l := &s.lanes[i]
			if l.n == 0 {
				continue
			}
			if h := l.ring[l.head]; n == nil || timerLess(h, n) {
				n, li = h, i
			}
		}
		if n == nil {
			return
		}
		if li < 0 {
			s.popMin()
			s.dispHeap++
		} else {
			s.lanes[li].pop()
			s.dispLane++
		}
		if n.stopped {
			s.recycle(n)
			continue
		}
		s.live--
		s.now = n.at
		s.executed++
		if tgt := n.target; tgt != nil {
			s.recycle(n)
			tgt.RunEvent()
		} else {
			fn := n.fn
			s.recycle(n)
			fn()
		}
		return
	}
}

// advanceTo moves virtual time forward to t (never backward). The group
// uses it to line shard clocks up at epoch barriers.
func (s *Simulator) advanceTo(t Time) {
	if t > s.now {
		s.now = t
	}
}

// Pending returns the number of queued (possibly stopped) events across
// the heap and the lanes; for the control simulator of a sharded Group it
// aggregates across every shard. See Live for the count excluding
// cancelled timers.
func (s *Simulator) Pending() int {
	if s.group != nil {
		return s.group.pending()
	}
	return s.pendingLocal()
}

func (s *Simulator) pendingLocal() int {
	n := len(s.events)
	for i := range s.lanes {
		n += s.lanes[i].n
	}
	return n
}

// Live returns the number of queued events that have not been cancelled —
// the events that will actually fire. Group-aware like Pending.
func (s *Simulator) Live() int {
	if s.group != nil {
		return s.group.live()
	}
	return s.live
}

// Warm pre-sizes the engine's memory so a subsequent run whose pending
// set stays within the given bounds allocates nothing: the free-node list
// grows to nodes spare timer nodes, the heap to matching capacity, and
// every lane ring — current and future — to at least ringCap slots
// (rounded up to a power of two). Intended for benchmarks and
// latency-sensitive callers; a cold simulator grows on demand instead.
func (s *Simulator) Warm(nodes, ringCap int) {
	for len(s.free) < nodes {
		s.free = append(s.free, &timerNode{})
	}
	if cap(s.events) < nodes {
		ne := make([]*timerNode, len(s.events), nodes)
		copy(ne, s.events)
		s.events = ne
	}
	rc := 16
	for rc < ringCap {
		rc <<= 1
	}
	if rc > s.laneRing {
		s.laneRing = rc
	}
	for i := range s.lanes {
		if l := &s.lanes[i]; len(l.ring) < rc {
			l.growTo(rc)
		}
	}
}
