package sim

import (
	"math/rand"
	"testing"
)

// The lane fast path must be invisible: any sequence of schedule / stop /
// nested-reschedule operations fires in exactly the (time, seq) order the
// pure-heap engine produces. These harnesses replay one deterministic
// operation script against a lane-enabled and a lane-disabled simulator
// and require identical fire logs.

// firing is one observed event execution.
type firing struct {
	at Time
	id int
}

// opScript is a deterministic schedule/stop program derived from a seed.
// Delays are drawn from a mix of a few hot fixed values (lane residents),
// a wide range (forcing heap fallback past maxLanes), and negative values
// (clamped, heap-only); a fraction of timers are stopped immediately, and
// a fraction of callbacks reschedule from inside the run loop — the case
// where now has advanced and lane monotonicity actually matters.
type opScript struct {
	rng    *rand.Rand
	depth  int
	nextID int
}

func (o *opScript) delay() Time {
	switch o.rng.Intn(10) {
	case 0, 1, 2, 3: // hot fixed delays: at most 4 distinct values
		return Time(100 * (1 + o.rng.Intn(4)))
	case 4, 5, 6: // cold spread: overflows maxLanes, exercises repurposing
		return Time(o.rng.Intn(5000))
	case 7: // zero delay: fires at now, FIFO among equals
		return 0
	default: // negative: clamped to now by the heap path
		return Time(-1 - o.rng.Intn(50))
	}
}

// install schedules count operations on s, appending to log as they fire.
func (o *opScript) install(s *Simulator, count int, log *[]firing) {
	for i := 0; i < count; i++ {
		o.schedule(s, log)
	}
}

func (o *opScript) schedule(s *Simulator, log *[]firing) {
	id := o.nextID
	o.nextID++
	d := o.delay()
	depth := o.depth
	fire := func() {
		*log = append(*log, firing{at: s.Now(), id: id})
		// A third of firings reschedule a child event from inside the
		// loop (like a port chaining its next serialization).
		if depth < 6 && o.rng.Intn(3) == 0 {
			o.depth = depth + 1
			o.schedule(s, log)
		}
	}
	var t Timer
	if o.rng.Intn(4) == 0 {
		// Absolute deadlines always take the heap.
		t = s.At(s.Now()+d, fire)
	} else {
		t = s.After(d, fire)
	}
	// Stop some timers right away; their nodes must be skipped lazily in
	// whichever structure holds them.
	if o.rng.Intn(5) == 0 {
		t.Stop()
	}
}

// runScript executes one seeded script and returns the fire log.
func runScript(seed int64, count int, lanes bool) []firing {
	s := New(1)
	s.disableLanes = !lanes
	var log []firing
	o := &opScript{rng: rand.New(rand.NewSource(seed))}
	o.install(s, count, &log)
	s.Run()
	return log
}

func TestLaneHeapEquivalence(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		want := runScript(seed, 200, false)
		got := runScript(seed, 200, true)
		if len(want) != len(got) {
			t.Fatalf("seed %d: heap fired %d events, lanes fired %d", seed, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: firing %d differs: heap %+v, lanes %+v", seed, i, want[i], got[i])
			}
		}
	}
}

// TestLaneOverflowFallsBack drives more distinct fixed delays than lanes
// exist and checks ordering still holds end to end, with the overflow on
// the heap.
func TestLaneOverflowFallsBack(t *testing.T) {
	s := New(1)
	var got []Time
	for d := Time(1); d <= 3*maxLanes; d++ {
		d := d
		s.After(d, func() { got = append(got, d) })
	}
	if len(s.events) == 0 {
		t.Fatalf("expected heap fallback past %d lanes, heap is empty", maxLanes)
	}
	s.Run()
	for i := range got {
		if got[i] != Time(i+1) {
			t.Fatalf("fired out of order: got[%d] = %v", i, got[i])
		}
	}
}

// TestLaneRepurpose drains a lane and checks its slot is handed to a new
// delay instead of forcing the newcomer onto the heap.
func TestLaneRepurpose(t *testing.T) {
	s := New(1)
	for d := Time(1); d <= maxLanes; d++ {
		s.After(d, func() {})
	}
	s.Run() // all lanes drain
	s.After(999, func() {})
	if len(s.events) != 0 {
		t.Fatalf("new delay went to the heap although %d drained lanes exist", maxLanes)
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
	s.Run()
}

// TestLaneStopAndHandles checks Timer semantics for lane-resident nodes:
// Stop prevents firing, Active/When report pending state, and handles go
// stale after the fire.
func TestLaneStopAndHandles(t *testing.T) {
	s := New(1)
	fired := 0
	tm := s.After(100, func() { fired++ })
	if w, ok := tm.When(); !tm.Active() || !ok || w != 100 {
		t.Fatalf("lane timer not pending: active=%v when=%v,%v", tm.Active(), w, ok)
	}
	if !tm.Stop() {
		t.Fatal("Stop() = false on a pending lane timer")
	}
	if tm.Active() {
		t.Fatal("Active() = true after Stop")
	}
	keep := s.After(100, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (stopped lane timer must not fire)", fired)
	}
	if keep.Active() || keep.Stop() {
		t.Fatal("handle still live after its lane event fired")
	}
}

// TestRunUntilTailWithLanes checks the RunUntil contract when the only
// remaining events live in lanes: virtual time still advances to end.
func TestRunUntilTailWithLanes(t *testing.T) {
	s := New(1)
	s.After(10*Millisecond, func() {})
	s.RunUntil(Millisecond)
	if s.Now() != Millisecond {
		t.Fatalf("Now() = %v, want %v (lane event past end must still advance time)", s.Now(), Millisecond)
	}
}

// TestWarmNoAlloc checks that a warmed simulator runs a lane-heavy
// schedule/fire loop without allocating.
func TestWarmNoAlloc(t *testing.T) {
	s := New(1)
	s.Warm(1024, 1024)
	// Two self-rescheduling lane chains plus one absolute-deadline heap
	// chain: the mixed steady state must be allocation-free once warmed.
	var a, b, c eventFunc
	a = func() { s.ScheduleAfter(5, a) }
	b = func() { s.ScheduleAfter(7, b) }
	c = func() { s.Schedule(s.Now()+3, c) }
	s.ScheduleAfter(5, a)
	s.ScheduleAfter(7, b)
	s.Schedule(3, c)
	s.RunUntil(Microsecond) // create lanes, settle steady state
	allocs := testing.AllocsPerRun(10, func() {
		s.RunUntil(s.Now() + 200)
	})
	if allocs != 0 {
		t.Fatalf("warmed run allocated %.1f allocs/run, want 0", allocs)
	}
}

// FuzzTimerWheel replays fuzzer-chosen operation scripts against both
// engines and requires identical fire logs. The two bytes of corpus seed
// select script seed and length.
func FuzzTimerWheel(f *testing.F) {
	f.Add(int64(1), uint16(50))
	f.Add(int64(42), uint16(300))
	f.Add(int64(-7), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, count uint16) {
		n := int(count%1024) + 1
		want := runScript(seed, n, false)
		got := runScript(seed, n, true)
		if len(want) != len(got) {
			t.Fatalf("heap fired %d events, lanes fired %d", len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("firing %d differs: heap %+v, lanes %+v", i, want[i], got[i])
			}
		}
	})
}
