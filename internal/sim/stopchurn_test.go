package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Stop-churn harnesses. Cancelled lane nodes are reclaimed lazily — only
// when virtual time reaches their original deadline — so a far-future
// cancelled ScheduleAfter pins its lane slot for the rest of the run and
// can starve laneFor into the heap fallback. That is a performance cliff,
// never a correctness cliff: these tests drive the pathological pattern
// hard and require the lane engine to stay byte-identical to the pure
// heap, with sane Live/Pending accounting afterwards.

// churnScript is like opScript but keeps a registry of outstanding
// handles so callbacks can Stop timers mid-run (including far-future lane
// residents scheduled long before), not just at schedule time.
type churnScript struct {
	rng     *rand.Rand
	pending []Timer
	nextID  int
	depth   int
}

func (o *churnScript) delay() Time {
	switch o.rng.Intn(8) {
	case 0, 1, 2: // hot fixed delays: lane residents
		return Time(50 * (1 + o.rng.Intn(3)))
	case 3, 4: // far-future fixed delays: the lane-pinning class
		return Time(1_000_000 * (1 + o.rng.Intn(4)))
	case 5: // wide spread: lane overflow and repurposing pressure
		return Time(o.rng.Intn(3000))
	default:
		return 0
	}
}

func (o *churnScript) schedule(s *Simulator, log *[]firing) {
	id := o.nextID
	o.nextID++
	depth := o.depth
	fire := func() {
		*log = append(*log, firing{at: s.Now(), id: id})
		// Mid-run churn: stop a random outstanding timer...
		if len(o.pending) > 0 && o.rng.Intn(2) == 0 {
			o.pending[o.rng.Intn(len(o.pending))].Stop()
		}
		// ...and sometimes schedule a replacement from inside the loop.
		if depth < 6 && o.rng.Intn(3) == 0 {
			o.depth = depth + 1
			o.schedule(s, log)
		}
	}
	var t Timer
	if o.rng.Intn(5) == 0 {
		t = s.At(s.Now()+o.delay(), fire)
	} else {
		t = s.After(o.delay(), fire)
	}
	o.pending = append(o.pending, t)
	// Immediate churn: a third of timers die right away, far-future lane
	// residents included — the slot-pinning case.
	if o.rng.Intn(3) == 0 {
		t.Stop()
	}
}

func runChurnScript(seed int64, count int, lanes bool) (log []firing, s *Simulator) {
	s = New(1)
	s.disableLanes = !lanes
	o := &churnScript{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < count; i++ {
		o.schedule(s, &log)
	}
	s.RunUntil(500_000) // leaves far-future cancelled nodes pinned in lanes
	s.Run()             // then drains them
	return log, s
}

// TestStopChurnProperty replays random churn scripts against both engines
// and checks (1) identical fire logs and (2) post-run accounting: nothing
// live remains, and Pending counts exactly the cancelled nodes that were
// never reached.
func TestStopChurnProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		count := int(n%256) + 1
		want, _ := runChurnScript(seed, count, false)
		got, s := runChurnScript(seed, count, true)
		if len(want) != len(got) {
			t.Logf("seed %d: heap fired %d, lanes fired %d", seed, len(want), len(got))
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				t.Logf("seed %d: firing %d differs: heap %+v lanes %+v", seed, i, want[i], got[i])
				return false
			}
		}
		if s.Live() != 0 {
			t.Logf("seed %d: Live = %d after drain", seed, s.Live())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelledLanePinStarvesLaneFor is the direct slot-pinning
// regression: fill every lane with a far-future timer, cancel them all,
// and check that (a) new distinct delays are forced onto the heap —
// documenting the starvation — while (b) execution order and the RunUntil
// tail contract stay correct regardless.
func TestCancelledLanePinStarvesLaneFor(t *testing.T) {
	s := New(1)
	for i := 0; i < maxLanes; i++ {
		tm := s.After(Time(1_000_000+i), func() { t.Fatal("cancelled pin fired") })
		tm.Stop()
	}
	if len(s.lanes) != maxLanes {
		t.Fatalf("lanes = %d, want %d", len(s.lanes), maxLanes)
	}
	var got []Time
	for d := Time(10); d < 15; d++ {
		d := d
		s.After(d, func() { got = append(got, d) })
	}
	if len(s.events) != 5 {
		t.Fatalf("heap holds %d events, want 5 (pinned lanes must force heap fallback)", len(s.events))
	}
	s.RunUntil(100)
	for i := range got {
		if got[i] != Time(10+i) {
			t.Fatalf("fired out of order: got[%d] = %v", i, got[i])
		}
	}
	// Only dead far-future nodes remain: time must not advance past the
	// last real event (the cancelled-only tail contract).
	if s.Now() != 14 {
		t.Fatalf("Now = %v, want 14", s.Now())
	}
	if s.Live() != 0 {
		t.Fatalf("Live = %d, want 0", s.Live())
	}
	// Reaching the dead deadlines reclaims the slots for new delays.
	s.RunUntil(2_000_000)
	s.After(777, func() {})
	if len(s.events) != 0 {
		t.Fatal("lane slot not reclaimed after dead nodes were collected")
	}
}

// FuzzTimerWheelStop is the Stop-interleaving variant of FuzzTimerWheel:
// fuzzer-chosen churn scripts (mid-run Stops against a handle registry,
// far-future cancellations pinning lane slots) must produce identical
// fire logs with lanes on and off.
func FuzzTimerWheelStop(f *testing.F) {
	f.Add(int64(1), uint16(60))
	f.Add(int64(99), uint16(250))
	f.Add(int64(-3), uint16(2))
	f.Fuzz(func(t *testing.T, seed int64, count uint16) {
		n := int(count%512) + 1
		want, _ := runChurnScript(seed, n, false)
		got, _ := runChurnScript(seed, n, true)
		if len(want) != len(got) {
			t.Fatalf("heap fired %d events, lanes fired %d", len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("firing %d differs: heap %+v, lanes %+v", i, want[i], got[i])
			}
		}
	})
}
