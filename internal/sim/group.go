package sim

import (
	"fmt"
	"sort"
)

// Group is the conservative parallel dispatcher: one control Simulator
// (workload arrivals, samplers, fault schedules — everything experiments
// schedule directly) plus N shard Simulators, each owning a disjoint set
// of network entities with its own 4-ary heap and timer-wheel lanes.
//
// Execution proceeds in epochs. Let tmin be the earliest live event
// across all shards; every shard may safely execute its events in the
// window [tmin, tmin+lookahead) without seeing anything new from other
// shards, because a cross-shard interaction takes at least lookahead (the
// minimum propagation delay of any link that crosses a shard boundary) of
// virtual time to arrive. Windows run in parallel, one goroutine per
// shard. Events for another shard are not scheduled directly — the
// sending shard posts them to a per-(src,dst) outbox, and at the epoch
// barrier the group merges all outboxes in a deterministic order and
// inserts them into the destination heaps.
//
// Determinism and equivalence with the sequential engine: every event
// carries (at, schedAt, rank) — its deadline, the virtual instant it was
// scheduled, and its arrival rank (NeutralRank except for link
// deliveries, which carry the transmitting port's stable creation
// index). The sequential dispatcher orders same-deadline events by
// (schedAt, rank, insertion sequence); the group orders mailbox arrivals
// by (at, schedAt, rank, src shard, post order). Because simultaneous
// link deliveries — the one event class two shards can emit at exactly
// the same (at, schedAt) — carry distinct ranks, the rank resolves them
// to the same canonical order the sequential engine uses, independent of
// which shard produced them. What remains ambiguous is a neutral-rank
// collision across sources (two entity-local timers, or a control event
// against a shard event, firing at identical (at, schedAt)): those are
// counted in Ties and broken control-first then by shard index. Neutral
// events touch only their own entity's state and meet other entities
// only through ranked deliveries, so the residual ambiguity does not
// reach simulation output: every output — metrics, traces, formatted
// text — is byte-identical to a sequential run of the same topology and
// seed; the CI cmp gates assert this on whole experiment outputs.
type Group struct {
	ctl       *Simulator
	shards    []*Simulator
	lookahead Time

	// out[src][dst] accumulates cross-shard events posted during the
	// parallel phase. Row src is touched only by shard src's goroutine;
	// the barrier thread drains all rows after joining the workers.
	out [][][]mail

	// Ties counts neutral-rank same-(at,schedAt) collisions across
	// sources, broken control-first then by shard index. Harmless for
	// entity-local events (the only neutral emitters) — see the type
	// comment — but kept as a diagnostic: a ranked event class that lost
	// its rank would surface here before it surfaced as divergence.
	Ties uint64

	epochs uint64 // barrier count (diagnostics / benchmarks)

	// Self-profiling counters (see Stats). All are written by the barrier
	// thread between parallel phases except workNs, whose slot i is written
	// only by shard i's worker goroutine.
	instantEvents uint64  // events merge-stepped on the barrier thread
	mailDelivered uint64  // cross-shard events delivered
	mailPeak      int     // largest single-destination barrier batch
	windowNs      int64   // wall ns spent inside shard windows
	workNs        []int64 // wall ns shard i spent executing windows
	// clock, when non-nil, is a wall-clock nanosecond source injected from
	// outside the simulation-time boundary (the sim package itself never
	// imports time). It enables barrier/work attribution in Stats.
	clock func() int64
}

// GroupStats is a structured snapshot of the group's self-profiling
// counters — the machine-readable replacement for parsing String().
// Read it after a run returns: Stats is not synchronized with in-flight
// worker goroutines.
type GroupStats struct {
	Shards        int
	Lookahead     Time
	Epochs        uint64 // epoch barriers crossed (parallel windows)
	Ties          uint64 // residual neutral-rank cross-source collisions
	InstantEvents uint64 // events merge-stepped on the barrier thread
	MailDelivered uint64 // cross-shard events delivered at barriers
	MailPeak      int    // largest single-destination barrier batch
	WindowNs      int64  // wall ns inside shard windows (0 without SetClock)
	PerShard      []ShardStats
}

// ShardStats profiles one shard simulator of a group.
type ShardStats struct {
	Executed     uint64
	HeapDispatch uint64 // queue pops served by the 4-ary heap
	LaneDispatch uint64 // queue pops served by timer-wheel lanes
	WorkNs       int64  // wall ns executing windows (0 without SetClock)
	BarrierNs    int64  // WindowNs - WorkNs: time stalled at epoch barriers
}

// SetClock injects a wall-clock nanosecond source (callers pass
// time.Now().UnixNano from outside the sim-time boundary), enabling the
// WorkNs/BarrierNs attribution in Stats. Set it before the first run; a
// nil clock (the default) keeps the epoch loop free of timing calls.
func (g *Group) SetClock(fn func() int64) { g.clock = fn }

// Stats returns the group's structured self-profiling counters.
func (g *Group) Stats() GroupStats {
	st := GroupStats{
		Shards:        len(g.shards),
		Lookahead:     g.lookahead,
		Epochs:        g.epochs,
		Ties:          g.Ties,
		InstantEvents: g.instantEvents,
		MailDelivered: g.mailDelivered,
		MailPeak:      g.mailPeak,
		WindowNs:      g.windowNs,
	}
	st.PerShard = make([]ShardStats, len(g.shards))
	for i, sh := range g.shards {
		h, l := sh.DispatchStats()
		ss := ShardStats{Executed: sh.executed, HeapDispatch: h, LaneDispatch: l, WorkNs: g.workNs[i]}
		if b := g.windowNs - ss.WorkNs; g.windowNs > 0 && b > 0 {
			ss.BarrierNs = b
		}
		st.PerShard[i] = ss
	}
	return st
}

// mail is one cross-shard event in flight between epochs.
type mail struct {
	at      Time
	schedAt Time
	rank    int32
	tgt     EventTarget
}

// NewGroup turns ctl into the control simulator of a sharded group with
// n shard simulators and the given lookahead window (the minimum
// propagation delay across shard-crossing links; must be positive).
// Shard random sources are seeded from the control seed, but entities
// partitioned across shards must draw from per-entity streams (SubSeed)
// for sequential equivalence, not from a shard's Rand.
func NewGroup(ctl *Simulator, n int, lookahead Time) *Group {
	if ctl.group != nil {
		panic("sim: simulator is already the control of a group")
	}
	if n < 1 {
		panic("sim: group needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: group lookahead must be positive")
	}
	g := &Group{ctl: ctl, lookahead: lookahead}
	for i := 0; i < n; i++ {
		sh := New(SubSeed(ctl.seed, 0x5a4dd000+uint64(i)))
		sh.now = ctl.now
		g.shards = append(g.shards, sh)
	}
	g.out = make([][][]mail, n)
	for i := range g.out {
		g.out[i] = make([][]mail, n)
	}
	g.workNs = make([]int64, n)
	ctl.group = g
	return g
}

// Shards returns the number of shard simulators.
func (g *Group) Shards() int { return len(g.shards) }

// Shard returns shard i's simulator. Entities assigned to shard i must
// schedule all their intra-shard events through it.
func (g *Group) Shard(i int) *Simulator { return g.shards[i] }

// Control returns the control simulator (the one passed to NewGroup).
func (g *Group) Control() *Simulator { return g.ctl }

// Lookahead returns the group's lookahead window.
func (g *Group) Lookahead() Time { return g.lookahead }

// Epochs returns the number of epoch barriers crossed so far.
func (g *Group) Epochs() uint64 { return g.epochs }

// Post queues a cross-shard event: tgt.RunEvent will execute on shard dst
// at virtual time at, ordered among same-(at, schedAt) arrivals by rank
// (see ScheduleAfterRank; pass NeutralRank for unranked events). schedAt
// must be the sender shard's current time; the conservative window
// guarantees at >= the next epoch boundary, so the event is always
// delivered before its deadline. Safe to call from shard src's goroutine
// during the parallel phase (and from the barrier thread between phases).
func (g *Group) Post(src, dst int, at, schedAt Time, rank int32, tgt EventTarget) {
	g.out[src][dst] = append(g.out[src][dst], mail{at: at, schedAt: schedAt, rank: rank, tgt: tgt})
}

func (g *Group) executed() uint64 {
	n := g.ctl.executed
	for _, sh := range g.shards {
		n += sh.executed
	}
	return n
}

func (g *Group) pending() int {
	n := g.ctl.pendingLocal()
	for _, sh := range g.shards {
		n += sh.pendingLocal()
	}
	return n
}

func (g *Group) live() int {
	n := g.ctl.live
	for _, sh := range g.shards {
		n += sh.live
	}
	return n
}

func (g *Group) anyShardStopped() bool {
	for _, sh := range g.shards {
		if sh.stopped {
			return true
		}
	}
	return false
}

// deliverMail drains every outbox into the destination shards. Runs on
// the barrier thread after all workers have joined. Delivery order is the
// deterministic (at, schedAt, rank, src, post-order) merge described on
// Group.
func (g *Group) deliverMail(scratch *[]srcMail) {
	box := (*scratch)[:0]
	for dst := range g.shards {
		for src := range g.shards {
			row := g.out[src][dst]
			if len(row) == 0 {
				continue
			}
			for _, m := range row {
				box = append(box, srcMail{m, src})
			}
			for i := range row {
				row[i] = mail{}
			}
			g.out[src][dst] = row[:0]
		}
		if len(box) == 0 {
			continue
		}
		// Stable: preserves per-src post order for equal keys, so the sort
		// key degenerates to (at, schedAt, rank, src, post-order).
		sort.SliceStable(box, func(i, j int) bool {
			a, b := &box[i], &box[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.schedAt != b.schedAt {
				return a.schedAt < b.schedAt
			}
			if a.rank != b.rank {
				return a.rank < b.rank
			}
			return a.src < b.src
		})
		g.mailDelivered += uint64(len(box))
		if len(box) > g.mailPeak {
			g.mailPeak = len(box)
		}
		sh := g.shards[dst]
		for i := range box {
			m := &box[i]
			if i > 0 && m.at == box[i-1].at && m.schedAt == box[i-1].schedAt &&
				m.rank == box[i-1].rank && m.src != box[i-1].src {
				g.Ties++
			}
			sh.scheduleMail(m.at, m.schedAt, m.rank, m.tgt)
		}
		box = box[:0]
	}
	*scratch = box
}

type srcMail struct {
	mail
	src int
}

// runUntil is the group's epoch loop, entered via the control
// simulator's Run/RunUntil. It provides the same Now() contract as the
// sequential RunUntil, applied to the control clock; shard clocks are
// advanced in lockstep at barriers.
func (g *Group) runUntil(end Time) {
	ctl := g.ctl
	if ctl.stopped {
		ctl.stopped = false
		return
	}

	// Per-run worker pool: one goroutine per shard, told the window bound
	// over start and reporting completion over done. Spawned per run (not
	// per group) so an abandoned group leaks nothing.
	starts := make([]chan Time, len(g.shards))
	done := make(chan int, len(g.shards))
	clock := g.clock
	for i := range g.shards {
		starts[i] = make(chan Time, 1)
		go func(sh *Simulator, start <-chan Time, i int) {
			for e := range start {
				if clock != nil {
					w0 := clock()
					sh.runCore(e)
					g.workNs[i] += clock() - w0
				} else {
					sh.runCore(e)
				}
				done <- i
			}
		}(g.shards[i], starts[i], i)
	}
	defer func() {
		for _, ch := range starts {
			close(ch)
		}
	}()

	var mailScratch []srcMail
	stopped := false
	for {
		ctlAt, _, _, ctlOK := ctl.peekLive()
		tmin := Time(0)
		have := false
		for _, sh := range g.shards {
			if t, _, _, ok := sh.peekLive(); ok && (!have || t < tmin) {
				tmin = t
				have = true
			}
		}
		var T Time
		switch {
		case ctlOK && (!have || ctlAt <= tmin):
			T = ctlAt
		case have:
			T = tmin
		default: // fully drained
			goto out
		}
		if T > end {
			goto out
		}
		if ctlOK && ctlAt == T {
			// Control activity at T: merge-step every event at exactly this
			// instant (control and shard alike) on the barrier thread, in
			// the sequential (schedAt, source) order. This is the only path
			// where control state is read/written at shard event times, so
			// samplers observe exactly what the sequential engine would.
			g.runInstant(T)
			if ctl.stopped || g.anyShardStopped() {
				stopped = true
				goto out
			}
			continue
		}
		// Pure shard window [tmin, E): no control event strictly inside.
		{
			E := tmin + g.lookahead
			if ctlOK && ctlAt < E {
				E = ctlAt
			}
			if end+1 < E && end+1 > end { // min(E, end+1), overflow-safe
				E = end + 1
			}
			g.runWindow(starts, done, E)
			g.deliverMail(&mailScratch)
			g.epochs++
			if ctl.stopped || g.anyShardStopped() {
				stopped = true
				goto out
			}
		}
	}
out:
	if stopped {
		// Best-effort stop: clocks stay where the stopping event (or its
		// epoch) left them; consume the request so the next run resumes.
		ctl.stopped = false
		for _, sh := range g.shards {
			sh.stopped = false
		}
		return
	}
	// Drained (within end): apply the sequential tail contract to every
	// clock in lockstep. Live events beyond end make time pass to end; a
	// fully drained (or cancelled-only) system keeps the last executed
	// instant, which globally is the max across member clocks.
	final := ctl.now
	for _, sh := range g.shards {
		if sh.now > final {
			final = sh.now
		}
	}
	if g.live() > 0 && final < end {
		final = end
	}
	ctl.advanceTo(final)
	for _, sh := range g.shards {
		sh.advanceTo(final)
	}
}

// runWindow executes [current, E) on every shard that has work before E,
// in parallel. Single-shard windows run inline on the barrier thread to
// skip the handoff latency.
func (g *Group) runWindow(starts []chan Time, done chan int, E Time) {
	active := 0
	last := -1
	for i, sh := range g.shards {
		if t, _, _, ok := sh.peekLive(); ok && t < E {
			active++
			last = i
		}
	}
	switch active {
	case 0:
		return
	case 1:
		if c := g.clock; c != nil {
			w0 := c()
			g.shards[last].runCore(E)
			d := c() - w0
			g.workNs[last] += d
			g.windowNs += d
		} else {
			g.shards[last].runCore(E)
		}
		return
	}
	var t0 int64
	if g.clock != nil {
		t0 = g.clock()
	}
	g.ctl.noSchedule = true
	n := 0
	for i, sh := range g.shards {
		if t, _, _, ok := sh.peekLive(); ok && t < E {
			starts[i] <- E
			n++
		}
	}
	for ; n > 0; n-- {
		<-done
	}
	g.ctl.noSchedule = false
	if g.clock != nil {
		g.windowNs += g.clock() - t0
	}
}

// runInstant executes every event whose deadline is exactly T — across
// the control simulator and all shards — one at a time on the barrier
// thread, picking at each step the pending event with the smallest
// (schedAt, rank, source) key. This mirrors the sequential engine's
// insertion order for same-instant events ((schedAt, rank) order is
// (rank, seq) order within one simulator); a cross-source tie on both
// schedAt and rank is the residual ambiguity counted in Ties, broken
// control-first then by shard index. Events scheduled during the step
// for the same instant (zero-delay chains) join the merge.
func (g *Group) runInstant(T Time) {
	for _, sh := range g.shards {
		sh.advanceTo(T)
	}
	g.ctl.advanceTo(T)
	for {
		best := -2 // -2 none, -1 control, >=0 shard index
		var bestSched Time
		var bestRank int32
		tie := false
		if at, schedAt, rank, ok := g.ctl.peekLive(); ok && at == T {
			best, bestSched, bestRank = -1, schedAt, rank
		}
		for i, sh := range g.shards {
			at, schedAt, rank, ok := sh.peekLive()
			if !ok || at != T {
				continue
			}
			if best == -2 || schedAt < bestSched || (schedAt == bestSched && rank < bestRank) {
				best, bestSched, bestRank, tie = i, schedAt, rank, false
			} else if schedAt == bestSched && rank == bestRank {
				tie = true
			}
		}
		switch best {
		case -2:
			return
		case -1:
			if tie {
				g.Ties++
			}
			g.instantEvents++
			g.ctl.runOne()
		default:
			if tie {
				g.Ties++
			}
			g.instantEvents++
			g.shards[best].runOne()
			// A shard event may have posted cross-shard mail; with
			// cross-shard delays >= lookahead > 0 it cannot land at T, but
			// it must still be delivered before the next window. Cheap:
			// only drain when something was posted.
			g.drainInstantMail(best)
		}
		if g.ctl.stopped || g.anyShardStopped() {
			return
		}
	}
}

// drainInstantMail delivers mail posted by a single shard's event run on
// the barrier thread (runInstant). Order within the row is post order,
// which is the exact sequential insertion order — no cross-src merge is
// needed because only one shard ran.
func (g *Group) drainInstantMail(src int) {
	for dst := range g.shards {
		row := g.out[src][dst]
		if len(row) == 0 {
			continue
		}
		g.mailDelivered += uint64(len(row))
		sh := g.shards[dst]
		for i := range row {
			m := &row[i]
			sh.scheduleMail(m.at, m.schedAt, m.rank, m.tgt)
			row[i] = mail{}
		}
		g.out[src][dst] = row[:0]
	}
}

// String summarizes the group (diagnostics).
func (g *Group) String() string {
	return fmt.Sprintf("sim.Group{shards: %d, lookahead: %s, epochs: %d, ties: %d}",
		len(g.shards), g.lookahead, g.epochs, g.Ties)
}
