package sim

import (
	"math/rand"
	"testing"
)

// Arrival-rank ordering (ScheduleAfterRank): events that collide on both
// deadline and schedule instant execute in rank order — neutral events
// first, then ascending rank, seq within a rank — identically on the
// lane fast path, the heap, and across the sharded group's mailbox
// merge. This is what makes simultaneous link deliveries arbitrate the
// same way in both engines.

// rankTarget logs its id when run.
type rankTarget struct {
	id  int
	log *[]int
}

func (r *rankTarget) RunEvent() { *r.log = append(*r.log, r.id) }

// scheduleRankScript schedules, at one instant, a shuffled mix of ranked
// and neutral events sharing one fixed delay, and returns the fire order.
func scheduleRankScript(seed int64, lanes bool) []int {
	s := New(1)
	s.disableLanes = !lanes
	var log []int
	rng := rand.New(rand.NewSource(seed))
	// ids 0..9 are ranked events with rank == id; ids 100+ are neutral.
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 100, 101, 102}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	s.At(10, func() {
		for _, id := range ids {
			tgt := &rankTarget{id: id, log: &log}
			if id < 100 {
				s.ScheduleAfterRank(500, tgt, int32(id))
			} else {
				s.ScheduleAfter(500, tgt)
			}
		}
	})
	s.Run()
	return log
}

func TestRankOrdersSimultaneousEvents(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, lanes := range []bool{false, true} {
			got := scheduleRankScript(seed, lanes)
			if len(got) != 13 {
				t.Fatalf("seed %d lanes=%v: fired %d of 13 events", seed, lanes, len(got))
			}
			// Neutral events (scheduled in shuffled order, all equal keys)
			// keep insertion order among themselves and run first; ranked
			// events follow in ascending rank regardless of insertion order.
			neutral, ranked := got[:3], got[3:]
			for _, id := range neutral {
				if id < 100 {
					t.Fatalf("seed %d lanes=%v: ranked event %d ran before neutral ones: %v",
						seed, lanes, id, got)
				}
			}
			for i, id := range ranked {
				if id != i {
					t.Fatalf("seed %d lanes=%v: ranked events out of rank order: %v", seed, lanes, got)
				}
			}
		}
	}
}

// Ranked and neutral schedules mixed into the wheel fuzz-style script
// must still fire identically with lanes on and off.
func TestRankLaneHeapEquivalence(t *testing.T) {
	run := func(seed int64, lanes bool) []int {
		s := New(1)
		s.disableLanes = !lanes
		var log []int
		rng := rand.New(rand.NewSource(seed))
		var id int
		var sched func()
		sched = func() {
			myID := id
			id++
			tgt := &rankTarget{id: myID, log: &log}
			d := Time(100 * (1 + rng.Intn(3)))
			if rng.Intn(2) == 0 {
				s.ScheduleAfterRank(d, tgt, int32(rng.Intn(4)))
			} else {
				s.ScheduleAfter(d, tgt)
			}
		}
		for i := 0; i < 40; i++ {
			s.At(Time(50*rng.Intn(6)), func() {
				for j := 0; j < 3; j++ {
					sched()
				}
			})
		}
		s.Run()
		return log
	}
	for seed := int64(0); seed < 30; seed++ {
		want := run(seed, false)
		got := run(seed, true)
		if len(want) != len(got) {
			t.Fatalf("seed %d: heap fired %d, lanes fired %d", seed, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: firing %d differs: heap id %d, lanes id %d",
					seed, i, want[i], got[i])
			}
		}
	}
}

// Cross-shard mail colliding on (at, schedAt) from different source
// shards must execute in rank order, not post or source order — the
// sharded side of the canonical arbitration.
func TestGroupRankedMailCanonical(t *testing.T) {
	ctl := New(1)
	g := NewGroup(ctl, 3, 100)
	var log []int
	// Shards 1 and 2 each post two ranked events to shard 0 for the same
	// deadline and schedule instant, with ranks interleaved across the
	// sources so source order and rank order disagree.
	g.Shard(1).At(0, func() {
		g.Post(1, 0, 200, 0, 0, &rankTarget{id: 0, log: &log})
		g.Post(1, 0, 200, 0, 3, &rankTarget{id: 3, log: &log})
	})
	g.Shard(2).At(0, func() {
		g.Post(2, 0, 200, 0, 1, &rankTarget{id: 1, log: &log})
		g.Post(2, 0, 200, 0, 2, &rankTarget{id: 2, log: &log})
	})
	ctl.Run()
	if len(log) != 4 {
		t.Fatalf("delivered %d of 4 mails", len(log))
	}
	for i, id := range log {
		if id != i {
			t.Fatalf("mail executed out of rank order: %v", log)
		}
	}
	if g.Ties != 0 {
		t.Errorf("distinct ranks must not count as ties, got %d", g.Ties)
	}
}
