package sim

import "testing"

// Regression tests for the Simulator contract bugs fixed alongside the
// sharded engine (ISSUE 8): pre-run Stop was silently discarded, the
// RunUntil tail advance counted cancelled timers as live work, and
// Timer.When conflated a stale handle with a genuine t=0 deadline.

func TestPreRunStopHonored(t *testing.T) {
	// A Stop issued between runs (or before the first run) must make the
	// next Run/RunUntil return immediately without executing anything.
	s := New(1)
	fired := false
	s.At(5, func() { fired = true })
	s.Stop()
	s.RunUntil(100)
	if fired {
		t.Fatal("event fired despite a pre-run Stop")
	}
	if s.Now() != 0 {
		t.Fatalf("Now = %v after a stopped run, want 0", s.Now())
	}
	// The stop request is consumed: the following run proceeds normally.
	s.RunUntil(100)
	if !fired {
		t.Fatal("run after a consumed Stop did not execute")
	}
	if s.Now() != 5 {
		t.Fatalf("Now = %v, want 5", s.Now())
	}
}

func TestPreRunStopFromHook(t *testing.T) {
	// The first run after a mid-run Stop resumes (documented behavior);
	// a second Stop before that resume is then honored.
	s := New(1)
	s.At(1, func() { s.Stop() })
	n := 0
	s.At(2, func() { n++ })
	s.RunUntil(10) // stops at t=1
	if s.Now() != 1 || n != 0 {
		t.Fatalf("mid-run stop: Now=%v n=%d", s.Now(), n)
	}
	s.Stop() // between runs
	s.RunUntil(10)
	if n != 0 {
		t.Fatal("pre-run Stop between runs was discarded")
	}
	s.RunUntil(10)
	if n != 1 {
		t.Fatal("run after consumed Stop did not resume")
	}
}

func TestRunUntilCancelledOnlyTail(t *testing.T) {
	// The tail advance to end must fire only when live (non-cancelled)
	// events remain. A queue holding only dead timers behaves like an
	// empty one: an idle simulation does not invent the passage of time.
	s := New(1)
	s.At(5, func() {})
	tm := s.At(50, func() { t.Fatal("stopped timer fired") })
	tm.Stop()
	s.RunUntil(20)
	if s.Now() != 5 {
		t.Fatalf("cancelled-only tail: Now = %v, want 5 (last executed event)", s.Now())
	}
	if s.Live() != 0 {
		t.Fatalf("Live = %d, want 0", s.Live())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (dead node awaits lazy collection)", s.Pending())
	}
	// With a live event past end the advance still happens.
	s.At(50, func() {})
	s.RunUntil(20)
	if s.Now() != 20 {
		t.Fatalf("live-past-end tail: Now = %v, want 20", s.Now())
	}
}

func TestRunUntilCancelledOnlyLaneTail(t *testing.T) {
	// Same contract when the dead timer lives in a lane, not the heap.
	s := New(1)
	s.After(5, func() {})
	tm := s.After(50, func() { t.Fatal("stopped lane timer fired") })
	tm.Stop()
	s.RunUntil(20)
	if s.Now() != 5 {
		t.Fatalf("cancelled-only lane tail: Now = %v, want 5", s.Now())
	}
}

func TestWhenDistinguishesZeroDeadline(t *testing.T) {
	// A genuine t=0 deadline reports (0, true); after the fire the same
	// handle reports (0, false). Stopping reports false too.
	s := New(1)
	tm := s.At(0, func() {})
	if w, ok := tm.When(); !ok || w != 0 {
		t.Fatalf("armed t=0 timer: When = %v, %v, want 0, true", w, ok)
	}
	s.Run()
	if _, ok := tm.When(); ok {
		t.Fatal("fired handle still reports ok")
	}
	tm = s.At(s.Now()+3, func() {})
	tm.Stop()
	if _, ok := tm.When(); ok {
		t.Fatal("stopped handle still reports ok")
	}
}

func TestLiveCountTracksStops(t *testing.T) {
	s := New(1)
	var tms []Timer
	for i := 0; i < 10; i++ {
		tms = append(tms, s.At(Time(10+i), func() {}))
	}
	if s.Live() != 10 || s.Pending() != 10 {
		t.Fatalf("Live=%d Pending=%d, want 10/10", s.Live(), s.Pending())
	}
	for _, tm := range tms[:4] {
		tm.Stop()
	}
	if s.Live() != 6 || s.Pending() != 10 {
		t.Fatalf("after 4 stops: Live=%d Pending=%d, want 6/10", s.Live(), s.Pending())
	}
	// Double-stop must not double-decrement.
	tms[0].Stop()
	if s.Live() != 6 {
		t.Fatalf("double Stop changed Live to %d", s.Live())
	}
	s.Run()
	if s.Live() != 0 {
		t.Fatalf("Live=%d after drain, want 0", s.Live())
	}
}
