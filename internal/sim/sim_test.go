package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 || Millisecond != 1e6 || Microsecond != 1e3 {
		t.Fatalf("unit constants wrong: %d %d %d", Second, Millisecond, Microsecond)
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Errorf("Millis = %v, want 2.5", got)
	}
	if got := (3 * Second).Seconds(); got != 3 {
		t.Errorf("Seconds = %v, want 3", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: order[%d]=%d", i, v)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New(1)
	var fired Time = -1
	s.At(100, func() {
		s.After(50, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 150 {
		t.Fatalf("After fired at %d, want 150", fired)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	s := New(1)
	var fired Time = -1
	s.At(100, func() {
		s.At(10, func() { fired = s.Now() }) // in the past
	})
	s.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamp to 100", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.At(10, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before run")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Active() {
		t.Fatal("stopped timer reports active")
	}
}

func TestStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.At(10, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10,20 only", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("Now = %v, want 25 (advanced to horizon)", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v after resume, want all 4", fired)
	}
}

func TestSimulatorStop(t *testing.T) {
	s := New(1)
	n := 0
	s.At(1, func() { n++; s.Stop() })
	s.At(2, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("executed %d events, want 1 (Stop)", n)
	}
	s.Run() // resumes
	if n != 2 {
		t.Fatalf("executed %d events after resume, want 2", n)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand.Int63() != b.Rand.Int63() {
			t.Fatal("same seed must give identical random streams")
		}
	}
}

func TestExecutedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Executed() != 10 {
		t.Fatalf("Executed = %d, want 10", s.Executed())
	}
}

// Property: for any set of event times, execution order is sorted by time
// and stable for equal times.
func TestQuickEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := New(7)
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, raw := range times {
			at := Time(raw)
			i := i
			s.At(at, func() { got = append(got, rec{at, i}) })
		}
		s.Run()
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
				return false // equal times must preserve insertion order
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedScheduling(t *testing.T) {
	// An event chain built during execution must run to completion.
	s := New(1)
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 1000 {
			s.After(1, step)
		}
	}
	s.At(0, step)
	s.Run()
	if depth != 1000 {
		t.Fatalf("chain depth = %d, want 1000", depth)
	}
	if s.Now() != 999 {
		t.Fatalf("Now = %v, want 999", s.Now())
	}
}

func TestRunUntilTailContract(t *testing.T) {
	// The three cases of the documented Now() contract.

	// 1. Events remain past end: Now() advances to end.
	s := New(1)
	s.At(5, func() {})
	s.At(50, func() {})
	s.RunUntil(20)
	if s.Now() != 20 {
		t.Fatalf("events-remain case: Now = %v, want 20", s.Now())
	}

	// 2. Queue drains before end: Now() stays at the last executed event,
	// not the horizon — idle time is not invented.
	s = New(1)
	s.At(5, func() {})
	s.At(7, func() {})
	s.RunUntil(1000)
	if s.Now() != 7 {
		t.Fatalf("drain case: Now = %v, want 7 (last executed event)", s.Now())
	}
	// Draining again (empty queue) must not move time either.
	s.RunUntil(2000)
	if s.Now() != 7 {
		t.Fatalf("empty-queue case: Now = %v, want 7", s.Now())
	}

	// 3. Stop mid-run: Now() stays at the stopping event even though
	// events remain before end.
	s = New(1)
	s.At(3, func() { s.Stop() })
	s.At(9, func() {})
	s.RunUntil(100)
	if s.Now() != 3 {
		t.Fatalf("stop case: Now = %v, want 3", s.Now())
	}
}

func TestRunUntilDrainViaStoppedTimers(t *testing.T) {
	// Cancelled timers do not count as execution: popping them must not
	// advance Now() past the last event that actually ran.
	s := New(1)
	s.At(2, func() {})
	tm := s.At(8, func() { t.Fatal("stopped timer fired") })
	tm.Stop()
	s.RunUntil(100)
	if s.Now() != 2 {
		t.Fatalf("Now = %v, want 2 (stopped timer must not advance time)", s.Now())
	}
}

func TestStaleHandleOnRecycledNode(t *testing.T) {
	// Fired timer nodes return to the free list and are reused by the next
	// schedule. A handle to the old incarnation must be fully inert: its
	// Stop/Active/When must neither misreport nor disturb the new timer.
	s := New(1)
	stale := s.At(10, func() {})
	s.Run()

	fired := false
	fresh := s.At(20, func() { fired = true })
	if stale.Stop() {
		t.Fatal("stale Stop reported true")
	}
	if stale.Active() {
		t.Fatal("stale Active reported true")
	}
	if w, ok := stale.When(); ok || w != 0 {
		t.Fatalf("stale When = %v, %v, want 0, false", w, ok)
	}
	if !fresh.Active() {
		t.Fatal("stale Stop deactivated the recycled node's new timer")
	}
	s.Run()
	if !fired {
		t.Fatal("recycled timer did not fire")
	}
}

func TestStoppedHandleStaysStaleAcrossReuse(t *testing.T) {
	// A Stop()ed node is also recycled; the dead handle must not be able to
	// cancel the node's next incarnation either.
	s := New(1)
	dead := s.At(10, func() { t.Fatal("stopped timer fired") })
	dead.Stop()

	fired := false
	s.At(5, func() { fired = true }) // likely reuses dead's node
	if dead.Stop() {
		t.Fatal("second Stop on dead handle reported true")
	}
	s.Run()
	if !fired {
		t.Fatal("dead handle's Stop cancelled an unrelated timer")
	}
}

func TestZeroTimerInert(t *testing.T) {
	// The zero Timer value (e.g. an un-armed struct field) is safe to poke.
	var tm Timer
	if tm.Active() {
		t.Fatal("zero Timer reports active")
	}
	if tm.Stop() {
		t.Fatal("zero Timer Stop reported true")
	}
	if w, ok := tm.When(); ok || w != 0 {
		t.Fatal("zero Timer When != 0, false")
	}
}

func TestTimerChurnReusesNodes(t *testing.T) {
	// A schedule/stop/fire storm must recycle nodes rather than grow the
	// pool without bound: 1e6 sequential timers should leave only O(live)
	// nodes allocated. (Run under -race in CI; pure single-goroutine use.)
	n := 1_000_000
	if testing.Short() {
		n = 50_000
	}
	s := New(1)
	fired := 0
	for i := 0; i < n; i++ {
		tm := s.After(1, func() { fired++ })
		if i%3 == 0 {
			tm.Stop()
			s.After(1, func() { fired++ })
		}
		s.RunUntil(s.Now() + 1)
	}
	if fired != n {
		t.Fatalf("fired %d timers, want %d", fired, n)
	}
	if free := len(s.free); free > 8 {
		t.Fatalf("free list holds %d nodes after serial churn, want a handful", free)
	}
}

func TestScheduleTargetOrdering(t *testing.T) {
	// Schedule (closure-free) and At (closure) share one timeline and one
	// FIFO sequence at equal timestamps.
	s := New(1)
	var order []string
	s.Schedule(10, eventFunc(func() { order = append(order, "target@10") }))
	s.At(10, func() { order = append(order, "fn@10") })
	s.ScheduleAfter(5, eventFunc(func() { order = append(order, "target@5") }))
	s.Run()
	want := []string{"target@5", "target@10", "fn@10"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

type eventFunc func()

func (f eventFunc) RunEvent() { f() }
