package sim

import (
	"math/rand"
	"testing"
)

// Toy workload for group equivalence: N entities randomly ping each
// other with per-entity jittered delays that are at least `lookahead`
// apart (standing in for link propagation), while a control-side sampler
// periodically reads the entities' counters (standing in for telemetry).
// The same entity code runs on a single sequential simulator and on a
// sharded group; per-entity fire logs, counter totals, and every sampler
// observation must match exactly.

const (
	pingLookahead = Time(100)
	pingJitter    = 1000
)

type pingEnt struct {
	id    int
	shard int
	sim   *Simulator
	h     *pingHarness
	rng   *rand.Rand
	hops  int
	log   []Time
}

func (e *pingEnt) RunEvent() {
	e.hops++
	now := e.sim.Now()
	e.log = append(e.log, now)
	if e.hops >= 40 {
		return // bound the storm
	}
	dst := e.h.ents[e.rng.Intn(len(e.h.ents))]
	at := now + pingLookahead + Time(e.rng.Intn(pingJitter))
	if g := e.h.group; g != nil && dst.shard != e.shard {
		g.Post(e.shard, dst.shard, at, now, NeutralRank, dst)
	} else {
		dst.sim.Schedule(at, dst)
	}
}

type pingHarness struct {
	ents    []*pingEnt
	group   *Group
	samples []int
}

// newPingHarness builds N entities over nShards (0 = sequential). The
// control simulator carries the sampler in both modes.
func newPingHarness(seed int64, n, nShards int) (*pingHarness, *Simulator) {
	ctl := New(seed)
	h := &pingHarness{}
	var g *Group
	if nShards > 0 {
		g = NewGroup(ctl, nShards, pingLookahead)
		h.group = g
	}
	for i := 0; i < n; i++ {
		e := &pingEnt{id: i, h: h, rng: rand.New(rand.NewSource(SubSeed(seed, uint64(i))))}
		if g != nil {
			e.shard = i % nShards
			e.sim = g.Shard(e.shard)
		} else {
			e.sim = ctl
		}
		h.ents = append(h.ents, e)
	}
	// Seed one ping per entity at staggered start times (pre-run, from
	// the control thread — direct scheduling is fine here).
	for _, e := range h.ents {
		e.sim.Schedule(Time(1+e.id), e)
	}
	// Control sampler: every 97 time units, snapshot the global hop
	// count. In the sharded mode this runs on the barrier thread via the
	// merged same-instant step, so it must observe exactly the sequential
	// prefix of events.
	var tick func()
	tick = func() {
		total := 0
		for _, e := range h.ents {
			total += e.hops
		}
		h.samples = append(h.samples, total)
		ctl.After(97, tick)
	}
	ctl.After(97, tick)
	return h, ctl
}

func runPing(t *testing.T, seed int64, n, nShards int, end Time) *pingHarness {
	t.Helper()
	h, ctl := newPingHarness(seed, n, nShards)
	ctl.RunUntil(end)
	if ctl.Now() != end {
		t.Fatalf("shards=%d: Now = %v, want %v (sampler keeps the system live)", nShards, ctl.Now(), end)
	}
	return h
}

func TestGroupMatchesSequential(t *testing.T) {
	for _, nShards := range []int{1, 2, 3, 4} {
		for seed := int64(1); seed <= 5; seed++ {
			want := runPing(t, seed, 8, 0, 20_000)
			got := runPing(t, seed, 8, nShards, 20_000)
			for i := range want.ents {
				w, g := want.ents[i], got.ents[i]
				if w.hops != g.hops {
					t.Fatalf("shards=%d seed=%d ent=%d: hops %d != %d", nShards, seed, i, g.hops, w.hops)
				}
				for j := range w.log {
					if w.log[j] != g.log[j] {
						t.Fatalf("shards=%d seed=%d ent=%d fire %d: t=%v, want %v",
							nShards, seed, i, j, g.log[j], w.log[j])
					}
				}
			}
			if len(want.samples) != len(got.samples) {
				t.Fatalf("shards=%d seed=%d: %d samples, want %d", nShards, seed, len(got.samples), len(want.samples))
			}
			for i := range want.samples {
				if want.samples[i] != got.samples[i] {
					t.Fatalf("shards=%d seed=%d sample %d: %d, want %d",
						nShards, seed, i, got.samples[i], want.samples[i])
				}
			}
			if got.group != nil && got.group.Ties != 0 {
				t.Fatalf("shards=%d seed=%d: %d ambiguous ties (jitter should prevent double collisions)",
					nShards, seed, got.group.Ties)
			}
		}
	}
}

func TestGroupExecutedAggregates(t *testing.T) {
	seq, ctlSeq := newPingHarness(7, 6, 0)
	ctlSeq.RunUntil(10_000)
	sh, ctlSh := newPingHarness(7, 6, 3)
	ctlSh.RunUntil(10_000)
	_ = seq
	_ = sh
	if ctlSeq.Executed() != ctlSh.Executed() {
		t.Fatalf("Executed: sharded %d, sequential %d", ctlSh.Executed(), ctlSeq.Executed())
	}
	if ctlSh.Pending() == 0 {
		t.Fatal("Pending should count the sampler reschedule")
	}
}

func TestGroupPreRunStop(t *testing.T) {
	_, ctl := newPingHarness(1, 4, 2)
	ctl.Stop()
	ctl.RunUntil(5_000)
	if ctl.Executed() != 0 || ctl.Now() != 0 {
		t.Fatalf("pre-run Stop on group: executed=%d now=%v", ctl.Executed(), ctl.Now())
	}
	ctl.RunUntil(5_000)
	if ctl.Executed() == 0 {
		t.Fatal("group did not resume after consumed Stop")
	}
}

func TestGroupMidRunStop(t *testing.T) {
	_, ctl := newPingHarness(1, 4, 2)
	stopAt := Time(0)
	ctl.At(1_000, func() {
		stopAt = ctl.Now()
		ctl.Stop()
	})
	ctl.RunUntil(50_000)
	if stopAt == 0 {
		t.Fatal("stop hook never ran")
	}
	if ctl.Now() > 2_000 {
		t.Fatalf("group overshot a mid-run Stop: Now = %v", ctl.Now())
	}
	ctl.RunUntil(50_000)
	if ctl.Now() != 50_000 {
		t.Fatalf("group did not resume after mid-run Stop: Now = %v", ctl.Now())
	}
}

func TestGroupTailContract(t *testing.T) {
	// Drained group: clocks settle at the last executed instant, not end.
	ctl := New(3)
	g := NewGroup(ctl, 2, 10)
	fired := Time(0)
	g.Shard(0).At(25, func() { fired = g.Shard(0).Now() })
	ctl.RunUntil(1_000)
	if fired != 25 {
		t.Fatalf("shard event did not fire: %v", fired)
	}
	if ctl.Now() != 25 || g.Shard(1).Now() != 25 {
		t.Fatalf("drained tail: ctl=%v sh1=%v, want 25", ctl.Now(), g.Shard(1).Now())
	}
	// Cancelled-only beyond end: no time invented (bugfix 2, group form).
	tm := g.Shard(1).At(500, func() { t.Fatal("stopped shard timer fired") })
	tm.Stop()
	ctl.RunUntil(1_000)
	if ctl.Now() != 25 {
		t.Fatalf("cancelled-only group tail: Now = %v, want 25", ctl.Now())
	}
	// Live event past end: every clock advances to end in lockstep.
	g.Shard(1).At(5_000, func() {})
	ctl.RunUntil(1_000)
	if ctl.Now() != 1_000 || g.Shard(0).Now() != 1_000 {
		t.Fatalf("live-past-end group tail: ctl=%v sh0=%v, want 1000", ctl.Now(), g.Shard(0).Now())
	}
}
