package sim

import "testing"

// BenchmarkTimerChurn measures the schedule→fire cycle that dominates the
// engine: every fired event schedules its successor, the pattern of a
// busy port. Steady state must not allocate (nodes recycle through the
// free list; the self-scheduling chain reuses one closure).
func BenchmarkTimerChurn(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	n := b.N
	var step func()
	step = func() {
		n--
		if n > 0 {
			s.After(1, step)
		}
	}
	s.At(0, step)
	b.ResetTimer()
	s.Run()
}

// BenchmarkTimerChurnStop measures the arm/cancel/re-arm pattern of
// retransmission timers: each iteration schedules two timers, stops one,
// and fires the other.
func BenchmarkTimerChurnStop(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep := s.After(1, fn)
		s.After(2, fn).Stop()
		_ = keep
		s.RunUntil(s.Now() + 2)
	}
}

// BenchmarkEventTarget measures the closure-free Schedule path with a
// pooled self-rescheduling target — the forwarding path's shape.
func BenchmarkEventTarget(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	t := &chainTarget{s: s, left: b.N}
	b.ResetTimer()
	s.Schedule(0, t)
	s.Run()
}

type chainTarget struct {
	s    *Simulator
	left int
}

func (t *chainTarget) RunEvent() {
	t.left--
	if t.left > 0 {
		t.s.ScheduleAfter(1, t)
	}
}

// BenchmarkHeapDepth exercises heap reheapification with a standing
// population of pending timers (the fan-in shape of incast: thousands of
// concurrent flows each holding an RTO).
func BenchmarkHeapDepth(b *testing.B) {
	for _, depth := range []int{64, 4096} {
		b.Run(map[int]string{64: "64", 4096: "4096"}[depth], func(b *testing.B) {
			b.ReportAllocs()
			s := New(1)
			fn := func() {}
			// Standing population with staggered far-future deadlines.
			for i := 0; i < depth; i++ {
				s.At(Time(1<<40+i), fn)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.After(1, fn)
				s.RunUntil(s.Now() + 1)
			}
		})
	}
}
