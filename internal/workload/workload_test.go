package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tfcsim/internal/core"
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// star builds n senders -> sw -> receiver, TFC-enabled, 1 Gbps.
func star(n int, proto Proto, buf int) (*sim.Simulator, *Dialer, []*netsim.Host, *netsim.Host, *netsim.Port) {
	s := sim.New(11)
	net := netsim.NewNetwork(s)
	sw := net.NewSwitch("sw")
	recv := net.NewHost("recv")
	recv.ProcJitter = 10 * sim.Microsecond
	cfg := netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond}
	var hosts []*netsim.Host
	for i := 0; i < n; i++ {
		h := net.NewHost("h")
		h.ProcJitter = 10 * sim.Microsecond
		net.Connect(h, sw, cfg)
		hosts = append(hosts, h)
	}
	net.Connect(sw, recv, netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond, BufA: buf})
	net.ComputeRoutes()
	if proto == TFC {
		core.Attach(s, sw, core.SwitchConfig{})
	}
	d := &Dialer{Sim: s, Proto: proto}
	return s, d, hosts, recv, sw.PortTo(recv.ID())
}

func TestDialerProtocols(t *testing.T) {
	for _, proto := range []Proto{TFC, TCP, DCTCP} {
		s, d, hosts, recv, _ := star(1, proto, 256<<10)
		done := false
		conn := d.Dial(hosts[0], recv, nil, func() { done = true })
		s.At(0, func() {
			conn.Sender.Open()
			conn.Sender.Send(100 * 1460)
			conn.Sender.Close()
		})
		s.RunUntil(sim.Second)
		if !done {
			t.Fatalf("%s: flow did not complete", proto)
		}
		if conn.Received() != 100*1460 {
			t.Fatalf("%s: received %d", proto, conn.Received())
		}
	}
}

func TestDialerUniqueFlows(t *testing.T) {
	s, d, hosts, recv, _ := star(1, TCP, 256<<10)
	a := d.Dial(hosts[0], recv, nil, nil)
	b := d.Dial(hosts[0], recv, nil, nil)
	if a.Flow == b.Flow {
		t.Fatal("dialer reused flow IDs")
	}
	_ = s
}

func TestIncastRounds(t *testing.T) {
	s, d, hosts, recv, port := star(10, TFC, 256<<10)
	in := NewIncast(IncastConfig{
		Dialer: d, Senders: hosts, Receiver: recv,
		BlockBytes: 64 << 10, Rounds: 5,
	})
	in.Start(2 * sim.Millisecond)
	s.RunUntil(2 * sim.Second)
	if in.RoundsDone != 5 {
		t.Fatalf("rounds done = %d, want 5", in.RoundsDone)
	}
	want := int64(5 * 10 * (64 << 10))
	if got := in.BytesReceived(); got != want {
		t.Fatalf("bytes received = %d, want %d", got, want)
	}
	if len(in.RoundTimes) != 5 {
		t.Fatalf("round times recorded: %d", len(in.RoundTimes))
	}
	for _, rt := range in.RoundTimes {
		if rt <= 0 {
			t.Fatal("non-positive round time")
		}
	}
	if port.Drops != 0 {
		t.Fatalf("TFC incast dropped %d packets", port.Drops)
	}
	if in.MaxTimeoutsPerBlock() != 0 {
		t.Fatalf("TFC incast suffered timeouts: %v", in.MaxTimeoutsPerBlock())
	}
}

func TestIncastTCPCollapsesAtHighFanIn(t *testing.T) {
	// Sanity for the Fig 12/15 shape: TCP with many senders and a small
	// buffer suffers timeouts.
	s, d, hosts, recv, port := star(60, TCP, 64<<10)
	in := NewIncast(IncastConfig{
		Dialer: d, Senders: hosts, Receiver: recv,
		BlockBytes: 256 << 10, Rounds: 3,
	})
	in.Start(2 * sim.Millisecond)
	s.RunUntil(10 * sim.Second)
	if port.Drops == 0 {
		t.Fatal("expected drops for 60-sender TCP incast on 64KB buffer")
	}
	if in.TotalTimeouts() == 0 {
		t.Fatal("expected TCP timeouts")
	}
}

func TestEmpiricalDistBounds(t *testing.T) {
	d := NewEmpirical([][2]float64{{10, 0}, {20, 0.5}, {100, 1}})
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 10 || v > 100 {
			t.Fatalf("sample %v out of [10,100]", v)
		}
	}
}

func TestEmpiricalDistMedian(t *testing.T) {
	d := NewEmpirical([][2]float64{{10, 0}, {20, 0.5}, {100, 1}})
	r := rand.New(rand.NewSource(5))
	below := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if d.Sample(r) <= 20 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("P(X<=20) = %.3f, want ~0.5", frac)
	}
}

func TestEmpiricalMean(t *testing.T) {
	d := NewEmpirical([][2]float64{{0, 0}, {10, 1}})
	if m := d.Mean(); m != 5 {
		t.Fatalf("mean of U(0,10) = %v, want 5", m)
	}
}

// Property: samples always lie within [min, max] of the distribution and
// the empirical CDF is consistent with the spec at the knots.
func TestQuickEmpiricalWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		d := WebSearchFlowSizes()
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			v := d.Sample(r)
			if v < 512 || v > 30000*1024 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{500, "<1KB"},
		{5 << 10, "1-10KB"},
		{50 << 10, "10KB-100KB"},
		{500 << 10, "100KB-1MB"},
		{5 << 20, "1-10MB"},
		{50 << 20, ">10MB"},
	}
	for _, c := range cases {
		if got := SizeBuckets[BucketIndex(c.n)].Label; got != c.want {
			t.Errorf("bucket(%d) = %s, want %s", c.n, got, c.want)
		}
	}
}

func TestBenchmarkGeneratesAndCompletes(t *testing.T) {
	s, d, hosts, recv, _ := star(8, TFC, 256<<10)
	all := append(append([]*netsim.Host{}, hosts...), recv)
	b := NewBenchmark(BenchmarkConfig{
		Dialer: d, Hosts: all,
		Duration:   50 * sim.Millisecond,
		QueryRate:  200, // ~10 queries in 50ms
		QueryFanIn: 4,
		BgFlowRate: 400,
	})
	b.Start()
	s.RunUntil(3 * sim.Second)
	if len(b.Flows) < 10 {
		t.Fatalf("only %d flows generated", len(b.Flows))
	}
	var queries, bg int
	for _, f := range b.Flows {
		if f.Query {
			queries++
			if f.Bytes != 2<<10 {
				t.Fatalf("query flow size %d", f.Bytes)
			}
		} else {
			bg++
		}
	}
	if queries == 0 || bg == 0 {
		t.Fatalf("queries=%d bg=%d, want both > 0", queries, bg)
	}
	if b.DoneFraction() < 0.95 {
		t.Fatalf("only %.0f%% of flows completed", b.DoneFraction()*100)
	}
	for _, f := range b.Flows {
		if f.Done && f.FCT <= 0 {
			t.Fatal("non-positive FCT on completed flow")
		}
	}
}

func TestBenchmarkStopsAtDuration(t *testing.T) {
	s, d, hosts, recv, _ := star(4, TCP, 256<<10)
	all := append(append([]*netsim.Host{}, hosts...), recv)
	b := NewBenchmark(BenchmarkConfig{
		Dialer: d, Hosts: all,
		Duration:   10 * sim.Millisecond,
		BgFlowRate: 1000,
	})
	b.Start()
	s.RunUntil(5 * sim.Second)
	for _, f := range b.Flows {
		if f.Start >= 10*sim.Millisecond {
			t.Fatalf("flow arrived at %v, after duration", f.Start)
		}
	}
}
