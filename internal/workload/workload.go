// Package workload generates the traffic patterns of TFC's evaluation:
// barrier-synchronized incast (Figs 12, 15), the web-search benchmark with
// query fan-in plus background flows drawn from the DCTCP measurement
// distributions (Figs 13, 16), and empirical flow-size sampling.
package workload

import (
	"fmt"
	"math/rand"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/transport"

	// The built-in transports self-register with the transport registry;
	// importing the workload layer is what links them into a binary.
	_ "tfcsim/internal/bfc"
	_ "tfcsim/internal/core"
	_ "tfcsim/internal/credit"
	_ "tfcsim/internal/dctcp"
	_ "tfcsim/internal/tcp"
	_ "tfcsim/internal/tinytcp"
)

// Proto names a registered transport (a transport registry key).
type Proto string

// Names of the built-in transports.
const (
	TFC     Proto = "tfc"
	TCP     Proto = "tcp"
	DCTCP   Proto = "dctcp"
	CREDIT  Proto = "credit" // ExpressPass-style receiver-driven credits
	BFC     Proto = "bfc"    // per-hop per-flow backpressure
	TINYTCP Proto = "tinytcp"
)

// Conn couples a protocol-agnostic sender with its receiver-side byte
// counter.
type Conn struct {
	Flow     netsim.FlowID
	Sender   transport.Sender
	Received func() int64
	// SRTT returns the sender's smoothed RTT estimate.
	SRTT func() sim.Time
}

// Dialer creates connections of a chosen protocol with shared parameters.
// The protocol is resolved through the transport registry, so a Dialer
// works with any registered transport — in-tree or out-of-tree — without
// modification.
type Dialer struct {
	Sim    *sim.Simulator
	Proto  Proto
	MSS    int
	MinRTO sim.Time
	IDs    transport.IDGen
	// Probe, if set, supplies the sender-side telemetry probe for a given
	// protocol name. The value is protocol-defined (tcp.Probe for the
	// TCP-family transports, credit.Probe for credit, ...) and crosses the
	// registry as an opaque any; transports ignore probes of foreign types.
	Probe func(proto string) any
}

// Dial wires a (src -> dst) connection. onDrain fires whenever all queued
// bytes are acknowledged; onComplete once after Close. Unknown protocol
// names panic with the registered alternatives (misconfiguration is a
// programming error at this layer; cmd front-ends validate names first).
func (d *Dialer) Dial(src, dst *netsim.Host, onDrain, onComplete func()) *Conn {
	f, err := transport.Lookup(string(d.Proto))
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	flow := d.IDs.Next()
	var probe any
	if d.Probe != nil {
		probe = d.Probe(string(d.Proto))
	}
	// The sender runs on the source host's simulator (its shard, once the
	// network is partitioned); transports bind their receiver side to the
	// peer host's simulator themselves.
	c := f.Dial(transport.DialConfig{
		Sim: src.Sim(), Local: src, Peer: dst, Flow: flow,
		MSS: d.MSS, MinRTO: d.MinRTO,
		OnDrain: onDrain, OnComplete: onComplete, Probe: probe,
	})
	return &Conn{Flow: flow, Sender: c.Sender, Received: c.Received, SRTT: c.SRTT}
}

// IncastConfig describes a barrier-synchronized incast workload: a
// receiver repeatedly requests a data block from every sender and issues
// the next request only after all blocks of the round arrived (paper §6,
// "Bursty Fan-in traffic", following Vasudevan et al. [36]).
type IncastConfig struct {
	Dialer     *Dialer
	Senders    []*netsim.Host
	Receiver   *netsim.Host
	BlockBytes int64
	// RequestDelay models the receiver's request propagation before a
	// round starts (default 50us).
	RequestDelay sim.Time
	// Rounds caps the number of rounds (0 = unlimited).
	Rounds int
}

// Incast runs the incast pattern and accumulates its metrics.
type Incast struct {
	cfg     IncastConfig
	conns   []*Conn
	pending int
	// RoundsDone counts completed barrier rounds.
	RoundsDone int
	// RoundTimes records each round's completion duration.
	RoundTimes []sim.Time
	roundBegan sim.Time
	started    bool
}

// NewIncast opens the persistent connections (handshake + window
// acquisition happen immediately) and schedules the first round.
func NewIncast(cfg IncastConfig) *Incast {
	if cfg.RequestDelay == 0 {
		cfg.RequestDelay = 50 * sim.Microsecond
	}
	in := &Incast{cfg: cfg}
	for _, h := range cfg.Senders {
		in.conns = append(in.conns, cfg.Dialer.Dial(h, cfg.Receiver, in.onDrain, nil))
	}
	return in
}

// Start opens all connections and begins round 1 after a short settle
// period (covering handshakes).
func (in *Incast) Start(settle sim.Time) {
	s := in.cfg.Dialer.Sim
	for _, c := range in.conns {
		c.Sender.Open()
	}
	s.After(settle, in.startRound)
}

func (in *Incast) startRound() {
	if in.cfg.Rounds > 0 && in.RoundsDone >= in.cfg.Rounds {
		return
	}
	s := in.cfg.Dialer.Sim
	in.started = true
	s.After(in.cfg.RequestDelay, func() {
		in.roundBegan = s.Now()
		in.pending = len(in.conns)
		for _, c := range in.conns {
			c.Sender.Send(in.cfg.BlockBytes)
		}
	})
}

func (in *Incast) onDrain() {
	if !in.started || in.pending == 0 {
		return
	}
	in.pending--
	if in.pending == 0 {
		s := in.cfg.Dialer.Sim
		in.RoundsDone++
		in.RoundTimes = append(in.RoundTimes, s.Now()-in.roundBegan)
		in.startRound()
	}
}

// BytesReceived sums receiver-side in-order bytes over all connections.
func (in *Incast) BytesReceived() int64 {
	var n int64
	for _, c := range in.conns {
		n += c.Received()
	}
	return n
}

// TotalTimeouts sums RTO expirations over all senders.
func (in *Incast) TotalTimeouts() int64 {
	var n int64
	for _, c := range in.conns {
		n += c.Sender.Stats().Timeouts
	}
	return n
}

// MaxTimeoutsPerBlock returns the maximum over flows of timeouts divided
// by completed rounds (the paper's Fig 15b metric).
func (in *Incast) MaxTimeoutsPerBlock() float64 {
	if in.RoundsDone == 0 {
		return 0
	}
	var maxTO int64
	for _, c := range in.conns {
		if to := c.Sender.Stats().Timeouts; to > maxTO {
			maxTO = to
		}
	}
	return float64(maxTO) / float64(in.RoundsDone)
}

// EmpiricalDist is an inverse-transform sampler over a piecewise-linear CDF.
type EmpiricalDist struct {
	x   []float64 // values, ascending
	cdf []float64 // cumulative probability at x, ascending, last = 1
}

// NewEmpirical builds a distribution from (value, cdf) points. The first
// point's cdf may exceed 0 (mass at the minimum); the last must be 1.
func NewEmpirical(points [][2]float64) *EmpiricalDist {
	d := &EmpiricalDist{}
	for _, p := range points {
		d.x = append(d.x, p[0])
		d.cdf = append(d.cdf, p[1])
	}
	if len(d.x) < 2 || d.cdf[len(d.cdf)-1] != 1 {
		panic("workload: invalid empirical distribution")
	}
	return d
}

// Sample draws one value.
func (d *EmpiricalDist) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	// Find first cdf >= u.
	lo := 0
	for lo < len(d.cdf) && d.cdf[lo] < u {
		lo++
	}
	if lo == 0 {
		return d.x[0]
	}
	if lo >= len(d.x) {
		return d.x[len(d.x)-1]
	}
	// Linear interpolation within the segment.
	c0, c1 := d.cdf[lo-1], d.cdf[lo]
	if c1 == c0 {
		return d.x[lo]
	}
	frac := (u - c0) / (c1 - c0)
	return d.x[lo-1] + frac*(d.x[lo]-d.x[lo-1])
}

// Mean returns the distribution mean (piecewise-linear integral).
func (d *EmpiricalDist) Mean() float64 {
	var m float64
	prevC := 0.0
	for i := range d.x {
		var mid float64
		if i == 0 {
			mid = d.x[0]
		} else {
			mid = (d.x[i-1] + d.x[i]) / 2
		}
		m += mid * (d.cdf[i] - prevC)
		prevC = d.cdf[i]
	}
	return m
}

// WebSearchFlowSizes returns the background flow-size distribution of the
// web-search workload measured in the DCTCP paper [7] (sizes in bytes),
// the distribution TFC's benchmark traffic is generated from.
func WebSearchFlowSizes() *EmpiricalDist {
	kb := 1024.0
	return NewEmpirical([][2]float64{
		{0.5 * kb, 0.0}, {1 * kb, 0.02}, {2 * kb, 0.07}, {3 * kb, 0.15},
		{5 * kb, 0.3}, {7 * kb, 0.45}, {10 * kb, 0.53}, {20 * kb, 0.6},
		{30 * kb, 0.65}, {50 * kb, 0.7}, {80 * kb, 0.75}, {200 * kb, 0.81},
		{500 * kb, 0.88}, {1000 * kb, 0.92}, {2000 * kb, 0.95},
		{5000 * kb, 0.98}, {10000 * kb, 0.995}, {30000 * kb, 1.0},
	})
}

// SizeBuckets are the paper's background-FCT buckets (Figs 13b, 16b).
var SizeBuckets = []struct {
	Label string
	Max   int64 // exclusive upper bound in bytes
}{
	{"<1KB", 1 << 10},
	{"1-10KB", 10 << 10},
	{"10KB-100KB", 100 << 10},
	{"100KB-1MB", 1 << 20},
	{"1-10MB", 10 << 20},
	{">10MB", 1 << 62},
}

// BucketIndex returns the index of the size bucket for n bytes.
func BucketIndex(n int64) int {
	for i, b := range SizeBuckets {
		if n < b.Max {
			return i
		}
	}
	return len(SizeBuckets) - 1
}
