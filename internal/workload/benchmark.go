package workload

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// BenchmarkConfig describes the web-search benchmark of §6.1.2/§6.2.2:
// Poisson query arrivals, each fanning in small responses from many
// servers to one aggregator, over Poisson background flows whose sizes
// follow the DCTCP web-search distribution.
type BenchmarkConfig struct {
	Dialer *Dialer
	Hosts  []*netsim.Host
	// Duration is how long new flows keep arriving.
	Duration sim.Time
	// QueryRate is the aggregate query arrival rate (queries/second).
	QueryRate float64
	// QueryBytes is the per-responder response size (paper: 2 KB).
	QueryBytes int64
	// QueryFanIn is the number of responders per query (0 = all other hosts).
	QueryFanIn int
	// BgFlowRate is the aggregate background flow arrival rate (flows/second).
	BgFlowRate float64
	// FlowSizes samples background flow sizes (default WebSearchFlowSizes).
	FlowSizes *EmpiricalDist
}

// FlowRecord is the outcome of one benchmark flow.
type FlowRecord struct {
	Bytes    int64
	Start    sim.Time
	FCT      sim.Time
	Query    bool
	Done     bool
	Timeouts int64
}

// Benchmark drives the workload and collects per-flow records.
type Benchmark struct {
	cfg BenchmarkConfig
	// Flows holds one record per generated flow (query responses and
	// background flows alike).
	Flows []*FlowRecord
}

// NewBenchmark validates the config and prepares a generator.
func NewBenchmark(cfg BenchmarkConfig) *Benchmark {
	if cfg.FlowSizes == nil {
		cfg.FlowSizes = WebSearchFlowSizes()
	}
	if cfg.QueryBytes == 0 {
		cfg.QueryBytes = 2 << 10
	}
	return &Benchmark{cfg: cfg}
}

// Start schedules the Poisson arrival processes.
func (b *Benchmark) Start() {
	s := b.cfg.Dialer.Sim
	if b.cfg.QueryRate > 0 {
		b.scheduleNext(s, b.cfg.QueryRate, b.launchQuery)
	}
	if b.cfg.BgFlowRate > 0 {
		b.scheduleNext(s, b.cfg.BgFlowRate, b.launchBackground)
	}
}

func (b *Benchmark) scheduleNext(s *sim.Simulator, rate float64, launch func()) {
	gap := sim.Time(s.Rand.ExpFloat64() / rate * float64(sim.Second))
	if gap < 1 {
		gap = 1
	}
	s.After(gap, func() {
		if s.Now() >= b.cfg.Duration {
			return
		}
		launch()
		b.scheduleNext(s, rate, launch)
	})
}

// launchQuery picks an aggregator and fans in QueryBytes from responders.
func (b *Benchmark) launchQuery() {
	s := b.cfg.Dialer.Sim
	hosts := b.cfg.Hosts
	agg := hosts[s.Rand.Intn(len(hosts))]
	fan := b.cfg.QueryFanIn
	if fan <= 0 || fan > len(hosts)-1 {
		fan = len(hosts) - 1
	}
	// Choose fan responders distinct from the aggregator.
	perm := s.Rand.Perm(len(hosts))
	n := 0
	for _, i := range perm {
		if hosts[i] == agg {
			continue
		}
		b.launchFlow(hosts[i], agg, b.cfg.QueryBytes, true)
		n++
		if n == fan {
			break
		}
	}
}

func (b *Benchmark) launchBackground() {
	s := b.cfg.Dialer.Sim
	hosts := b.cfg.Hosts
	src := hosts[s.Rand.Intn(len(hosts))]
	dst := hosts[s.Rand.Intn(len(hosts))]
	for dst == src {
		dst = hosts[s.Rand.Intn(len(hosts))]
	}
	size := int64(b.cfg.FlowSizes.Sample(s.Rand))
	if size < 1 {
		size = 1
	}
	b.launchFlow(src, dst, size, false)
}

func (b *Benchmark) launchFlow(src, dst *netsim.Host, size int64, query bool) {
	rec := &FlowRecord{Bytes: size, Start: b.cfg.Dialer.Sim.Now(), Query: query}
	b.Flows = append(b.Flows, rec)
	var conn *Conn
	conn = b.cfg.Dialer.Dial(src, dst, nil, func() {
		st := conn.Sender.Stats()
		rec.FCT = st.FCT()
		rec.Timeouts = st.Timeouts
		rec.Done = true
	})
	conn.Sender.Open()
	conn.Sender.Send(size)
	conn.Sender.Close()
}

// DoneFraction reports the fraction of generated flows that completed.
func (b *Benchmark) DoneFraction() float64 {
	if len(b.Flows) == 0 {
		return 1
	}
	done := 0
	for _, f := range b.Flows {
		if f.Done {
			done++
		}
	}
	return float64(done) / float64(len(b.Flows))
}
