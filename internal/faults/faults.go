// Package faults schedules deterministic fault injection against a
// running simulation: link blackouts, mid-run rate degradation, bursty
// wire loss, and host delivery stalls. Every fault is driven off the
// simulator's clock and (for stochastic loss) the simulator's per-trial
// RNG, so an injected failure scenario is a pure function of the trial
// seed — experiment outputs stay byte-identical at any parallelism.
package faults

import (
	"fmt"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// Event records one fault transition that actually fired, for experiment
// logs and debugging.
type Event struct {
	At     sim.Time
	Kind   string // "link-down", "link-up", "rate-degrade", ...
	Target string // port label or host name
}

func (e Event) String() string {
	return fmt.Sprintf("%v %s %s", e.At, e.Kind, e.Target)
}

// Scheduler installs faults on a simulator. All scheduling happens before
// (or during) the run on the simulator's own event loop; the Scheduler
// holds no goroutines and no clock of its own.
type Scheduler struct {
	sim *sim.Simulator
	// Log accumulates fired fault transitions in time order.
	Log []Event
	// Probe, if set, observes every fired transition as it happens (the
	// telemetry layer pairs down/up-style transitions into trace spans).
	Probe func(Event)
}

// NewScheduler returns a fault scheduler bound to s.
func NewScheduler(s *sim.Simulator) *Scheduler {
	return &Scheduler{sim: s}
}

func (f *Scheduler) record(kind, target string) {
	ev := Event{At: f.sim.Now(), Kind: kind, Target: target}
	f.Log = append(f.Log, ev)
	if f.Probe != nil {
		f.Probe(ev)
	}
}

// LinkDown blacks out the given ports at time at for duration dur. With
// flush, each port's queued backlog is discarded at cut time (a rebooting
// line card); without it the backlog is preserved and drains on restore.
// dur <= 0 leaves the link down for the rest of the run. A full-duplex
// cable is a pair of ports — pass both to cut traffic in both directions.
func (f *Scheduler) LinkDown(at, dur sim.Time, flush bool, ports ...*netsim.Port) {
	f.sim.At(at, func() {
		for _, p := range ports {
			p.SetDown(flush)
			f.record("link-down", p.Label)
		}
	})
	if dur > 0 {
		f.sim.At(at+dur, func() {
			for _, p := range ports {
				p.SetUp()
				f.record("link-up", p.Label)
			}
		})
	}
}

// DegradeRate drops port's link rate to the given value at time at and
// restores the original rate after dur (dur <= 0: degraded for the rest
// of the run). The rate captured at degrade time is the one restored, so
// stacked degradations unwind in order.
func (f *Scheduler) DegradeRate(at, dur sim.Time, port *netsim.Port, to netsim.Rate) {
	f.sim.At(at, func() {
		orig := port.Rate
		port.SetRate(to)
		f.record("rate-degrade", port.Label)
		if dur > 0 {
			f.sim.After(dur, func() {
				port.SetRate(orig)
				f.record("rate-restore", port.Label)
			})
		}
	})
}

// BurstyLoss installs a loss model on port at time at and removes it
// after dur (dur <= 0: lossy for the rest of the run). The model draws
// randomness from the simulation RNG only, keeping the loss pattern a
// function of the trial seed.
func (f *Scheduler) BurstyLoss(at, dur sim.Time, port *netsim.Port, m netsim.LossModel) {
	f.sim.At(at, func() {
		port.LossModel = m
		f.record("loss-on", port.Label)
	})
	if dur > 0 {
		f.sim.At(at+dur, func() {
			port.LossModel = nil
			f.record("loss-off", port.Label)
		})
	}
}

// PauseHost stalls h's packet delivery at time at — arriving packets are
// buffered in order and delivered in a burst on resume after dur,
// modelling a GC pause, VM migration hiccup, or scheduler stall.
// dur <= 0 pauses for the rest of the run.
func (f *Scheduler) PauseHost(at, dur sim.Time, h *netsim.Host) {
	f.sim.At(at, func() {
		h.SetPaused(true)
		f.record("host-pause", h.Name())
	})
	if dur > 0 {
		f.sim.At(at+dur, func() {
			h.SetPaused(false)
			f.record("host-resume", h.Name())
		})
	}
}
