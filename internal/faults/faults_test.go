package faults

import (
	"math/rand"
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

type sink struct {
	pkts []*netsim.Packet
	at   []sim.Time
	s    *sim.Simulator
}

func (k *sink) Deliver(p *netsim.Packet) {
	k.pkts = append(k.pkts, p)
	k.at = append(k.at, k.s.Now())
}

// pair wires h1 -- sw -- h2 over 1G links with 1us propagation.
func pair(s *sim.Simulator) (*netsim.Network, *netsim.Host, *netsim.Host, *netsim.Switch) {
	net := netsim.NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	cfg := netsim.LinkConfig{Rate: netsim.Gbps, Delay: sim.Microsecond}
	net.Connect(h1, sw, cfg)
	net.Connect(sw, h2, cfg)
	net.ComputeRoutes()
	return net, h1, h2, sw
}

func sendEvery(s *sim.Simulator, h1, h2 *netsim.Host, n int, gap sim.Time) {
	for i := 0; i < n; i++ {
		pkt := &netsim.Packet{Flow: 7, Src: h1.ID(), Dst: h2.ID(),
			Seq: int64(i) * netsim.MSS, Payload: netsim.MSS}
		s.At(sim.Time(i)*gap, func() { h1.Send(pkt) })
	}
}

func TestLinkDownWindow(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := pair(s)
	out := sw.PortTo(h2.ID())
	k := &sink{s: s}
	h2.Register(7, k)
	f := NewScheduler(s)
	f.LinkDown(1*sim.Millisecond, 2*sim.Millisecond, false, out)
	// One packet every 100us for 5ms: those arriving at the switch inside
	// [1ms, 3ms) are dropped at the wire, the rest deliver.
	sendEvery(s, h1, h2, 50, 100*sim.Microsecond)
	s.Run()
	if out.Down() {
		t.Fatal("port still down after restore")
	}
	if out.Drops == 0 {
		t.Fatal("no drops during a 2ms blackout under steady traffic")
	}
	for _, at := range k.at {
		if at >= 1*sim.Millisecond+20*sim.Microsecond && at < 3*sim.Millisecond {
			t.Fatalf("packet delivered at %v, inside the blackout", at)
		}
	}
	if len(k.pkts)+int(out.Drops) != 50 {
		t.Fatalf("delivered %d + dropped %d != 50 sent", len(k.pkts), out.Drops)
	}
	// The log records both transitions, in order.
	if len(f.Log) != 2 || f.Log[0].Kind != "link-down" || f.Log[1].Kind != "link-up" {
		t.Fatalf("fault log = %v", f.Log)
	}
	if f.Log[0].At != 1*sim.Millisecond || f.Log[1].At != 3*sim.Millisecond {
		t.Fatalf("fault log times = %v", f.Log)
	}
}

func TestDegradeRateWindow(t *testing.T) {
	s := sim.New(1)
	_, _, h2, sw := pair(s)
	out := sw.PortTo(h2.ID())
	f := NewScheduler(s)
	f.DegradeRate(sim.Millisecond, sim.Millisecond, out, 100*netsim.Mbps)
	s.At(sim.Millisecond+sim.Microsecond, func() {
		if out.Rate != 100*netsim.Mbps {
			t.Errorf("rate during degradation = %v", out.Rate)
		}
	})
	s.Run()
	if out.Rate != netsim.Gbps {
		t.Fatalf("rate after restore = %v, want 1G", out.Rate)
	}
}

func TestBurstyLossWindow(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := pair(s)
	out := sw.PortTo(h2.ID())
	k := &sink{s: s}
	h2.Register(7, k)
	f := NewScheduler(s)
	// LossBad=1, PBG=0 pins the chain in the bad state: total loss while
	// the model is installed, none outside the window.
	f.BurstyLoss(sim.Millisecond, sim.Millisecond, out, &GilbertElliott{PGB: 1, LossBad: 1})
	sendEvery(s, h1, h2, 30, 100*sim.Microsecond)
	s.Run()
	if out.LossModel != nil {
		t.Fatal("loss model still installed after window")
	}
	if out.Drops == 0 {
		t.Fatal("no drops from total loss window")
	}
	if len(k.pkts)+int(out.Drops) != 30 {
		t.Fatalf("delivered %d + dropped %d != 30 sent", len(k.pkts), out.Drops)
	}
}

func TestPauseHostWindow(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, _ := pair(s)
	k := &sink{s: s}
	h2.Register(7, k)
	f := NewScheduler(s)
	f.PauseHost(0, sim.Millisecond, h2)
	sendEvery(s, h1, h2, 5, 50*sim.Microsecond)
	s.Run()
	if len(k.pkts) != 5 {
		t.Fatalf("delivered %d packets, want 5", len(k.pkts))
	}
	for i, at := range k.at {
		if at != sim.Millisecond {
			t.Fatalf("pkt %d delivered at %v, want burst at resume", i, at)
		}
	}
}

func TestGilbertElliottStatistics(t *testing.T) {
	const meanLoss, meanBurst = 0.01, 5.0
	g := NewGilbertElliott(meanLoss, meanBurst)
	r := rand.New(rand.NewSource(42))
	const n = 2_000_000
	lost, bursts, burstLen := 0, 0, 0
	inBurst := false
	for i := 0; i < n; i++ {
		if g.Lose(r) {
			lost++
			if !inBurst {
				bursts++
				inBurst = true
			}
			burstLen++
		} else {
			inBurst = false
		}
	}
	rate := float64(lost) / n
	if rate < meanLoss*0.8 || rate > meanLoss*1.2 {
		t.Fatalf("empirical loss %.4f, want ~%.4f", rate, meanLoss)
	}
	mb := float64(burstLen) / float64(bursts)
	if mb < meanBurst*0.8 || mb > meanBurst*1.2 {
		t.Fatalf("mean burst %.2f packets, want ~%.1f", mb, meanBurst)
	}
}

func TestGilbertElliottDeterminism(t *testing.T) {
	// Two chains fed identically-seeded RNGs produce identical traces —
	// the property the byte-identical-at-any-j guarantee rests on.
	g1 := NewGilbertElliott(0.05, 3)
	g2 := NewGilbertElliott(0.05, 3)
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		if g1.Lose(r1) != g2.Lose(r2) {
			t.Fatalf("traces diverge at packet %d", i)
		}
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	for _, c := range []struct{ loss, burst float64 }{{0, 5}, {1, 5}, {0.01, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGilbertElliott(%v, %v) did not panic", c.loss, c.burst)
				}
			}()
			NewGilbertElliott(c.loss, c.burst)
		}()
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	// The same seed drives the same fault outcome: run a lossy blackout
	// scenario twice and compare every counter.
	run := func() (int64, int64, int) {
		s := sim.New(99)
		_, h1, h2, sw := pair(s)
		out := sw.PortTo(h2.ID())
		k := &sink{s: s}
		h2.Register(7, k)
		f := NewScheduler(s)
		f.LinkDown(sim.Millisecond, 500*sim.Microsecond, true, out)
		f.BurstyLoss(2*sim.Millisecond, sim.Millisecond, out, NewGilbertElliott(0.3, 4))
		sendEvery(s, h1, h2, 100, 40*sim.Microsecond)
		s.Run()
		return out.Drops, out.TxPackets, len(k.pkts)
	}
	d1, tx1, n1 := run()
	d2, tx2, n2 := run()
	if d1 != d2 || tx1 != tx2 || n1 != n2 {
		t.Fatalf("runs diverged: (%d,%d,%d) vs (%d,%d,%d)", d1, tx1, n1, d2, tx2, n2)
	}
	if d1 == 0 {
		t.Fatal("scenario injected no loss at all")
	}
}
