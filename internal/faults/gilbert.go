package faults

import "math/rand"

// GilbertElliott is the classic two-state Markov loss model: a "good"
// state with loss probability LossGood and a "bad" (burst) state with
// LossBad. Per packet the chain first transitions (good->bad with PGB,
// bad->good with PBG), then draws the loss for the state it landed in.
// Unlike uniform loss, consecutive losses are correlated: the mean burst
// length is 1/PBG packets.
//
// GilbertElliott implements netsim.LossModel. It is stateful and must not
// be shared across ports or trials.
type GilbertElliott struct {
	PGB      float64 // P(good -> bad) per packet
	PBG      float64 // P(bad -> good) per packet
	LossGood float64 // loss probability in the good state
	LossBad  float64 // loss probability in the bad state

	bad bool
}

// NewGilbertElliott derives the transition probabilities from two
// intuitive targets: the long-run mean loss rate and the mean burst
// length in packets (>= 1). The good state is lossless and the bad state
// drops everything, so the stationary probability of the bad state equals
// meanLoss: PBG = 1/meanBurst, PGB = meanLoss*PBG/(1-meanLoss).
func NewGilbertElliott(meanLoss, meanBurst float64) *GilbertElliott {
	if meanLoss <= 0 || meanLoss >= 1 {
		panic("faults: meanLoss must be in (0, 1)")
	}
	if meanBurst < 1 {
		panic("faults: meanBurst must be >= 1 packet")
	}
	pbg := 1 / meanBurst
	return &GilbertElliott{
		PGB:     meanLoss * pbg / (1 - meanLoss),
		PBG:     pbg,
		LossBad: 1,
	}
}

// Bad reports whether the chain is currently in the burst state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// Lose advances the chain one packet and reports whether that packet is
// lost. All randomness comes from r (the simulation's per-trial source).
func (g *GilbertElliott) Lose(r *rand.Rand) bool {
	if g.bad {
		if r.Float64() < g.PBG {
			g.bad = false
		}
	} else {
		if r.Float64() < g.PGB {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return r.Float64() < p
	}
}
