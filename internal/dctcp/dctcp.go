// Package dctcp provides Data Center TCP (Alizadeh et al., SIGCOMM 2010),
// the primary baseline in TFC's evaluation. The sender/receiver machinery
// lives in package tcp (DCTCP is NewReno plus ECN-proportional window
// reduction); this package contributes the switch-side instantaneous-queue
// ECN marking hook and convenience constructors with the paper's
// parameters (K = 32 KB at 1 Gbps, g = 1/16).
package dctcp

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/tcp"
)

// Marking thresholds used in TFC's evaluation: K = 32 KB on the 1 Gbps
// testbed (paper §6.1.1); at 10 Gbps the DCTCP guideline of 65 full frames.
const (
	DefaultK1G  = 32 << 10
	DefaultK10G = 65 * 1518
)

// MarkHook marks CE on ECN-capable packets when the instantaneous egress
// queue meets or exceeds K bytes (DCTCP's single-threshold AQM).
type MarkHook struct {
	K int
	// Marked counts CE marks applied (diagnostics).
	Marked int64
	// OnMark, if set, observes every CE mark (telemetry). The packet is
	// not passed: probes must not retain or mutate it.
	OnMark func(port *netsim.Port, flow netsim.FlowID)
}

// OnEnqueue implements netsim.PortHook.
func (h *MarkHook) OnEnqueue(pkt *netsim.Packet, port *netsim.Port) bool {
	if pkt.Flags&netsim.FlagECT != 0 && port.QueueBytes() >= h.K {
		pkt.Flags |= netsim.FlagCE
		h.Marked++
		if h.OnMark != nil {
			h.OnMark(port, pkt.Flow)
		}
	}
	return true
}

// AttachMarking installs a MarkHook with threshold k on every port of sw,
// returning the hooks (one per port, in port order).
func AttachMarking(sw *netsim.Switch, k int) []*MarkHook {
	hooks := make([]*MarkHook, 0, len(sw.Ports()))
	for _, p := range sw.Ports() {
		h := &MarkHook{K: k}
		p.Hook = h
		hooks = append(hooks, h)
	}
	return hooks
}

// KFor returns the marking threshold appropriate for a link rate.
func KFor(rate netsim.Rate) int {
	if rate >= 10*netsim.Gbps {
		return DefaultK10G
	}
	return DefaultK1G
}

// NewSender creates a DCTCP sender (g = 1/16 unless overridden in cfg).
func NewSender(cfg tcp.Config) *tcp.Sender {
	if cfg.DCTCP == nil {
		cfg.DCTCP = &tcp.DCTCPParams{G: 1.0 / 16}
	}
	return tcp.NewSender(cfg)
}

// Dial creates a DCTCP sender and its receiver.
func Dial(cfg tcp.Config) (*tcp.Sender, *tcp.Receiver) {
	if cfg.DCTCP == nil {
		cfg.DCTCP = &tcp.DCTCPParams{G: 1.0 / 16}
	}
	return tcp.Dial(cfg)
}
