package dctcp

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/tcp"
)

func TestKFor(t *testing.T) {
	if KFor(netsim.Gbps) != DefaultK1G {
		t.Fatalf("K@1G = %d", KFor(netsim.Gbps))
	}
	if KFor(10*netsim.Gbps) != DefaultK10G {
		t.Fatalf("K@10G = %d", KFor(10*netsim.Gbps))
	}
	if KFor(100*netsim.Mbps) != DefaultK1G {
		t.Fatalf("K below 10G should use the 1G threshold")
	}
}

func TestMarkHookThreshold(t *testing.T) {
	s := sim.New(1)
	net := netsim.NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	net.Connect(h1, sw, netsim.LinkConfig{Rate: netsim.Gbps, Delay: sim.Microsecond})
	net.Connect(sw, h2, netsim.LinkConfig{Rate: netsim.Gbps, Delay: sim.Microsecond})
	net.ComputeRoutes()
	port := sw.PortTo(h2.ID())
	hook := &MarkHook{K: 3000}
	// Empty queue: no mark.
	p := &netsim.Packet{Flags: netsim.FlagECT, Payload: netsim.MSS}
	if !hook.OnEnqueue(p, port) || p.Flags&netsim.FlagCE != 0 {
		t.Fatal("marked below threshold")
	}
	// Fill the queue past K by pausing the port: enqueue while busy.
	// Simulate by direct queue occupancy: enqueue packets back to back.
	for i := 0; i < 4; i++ {
		port.Enqueue(&netsim.Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: netsim.MSS})
	}
	if port.QueueBytes() < 3000 {
		t.Skip("could not build queue in this setup")
	}
	p2 := &netsim.Packet{Flags: netsim.FlagECT, Payload: netsim.MSS}
	hook.OnEnqueue(p2, port)
	if p2.Flags&netsim.FlagCE == 0 {
		t.Fatal("not marked above threshold")
	}
	if hook.Marked != 1 {
		t.Fatalf("Marked = %d", hook.Marked)
	}
}

func TestMarkHookIgnoresNonECT(t *testing.T) {
	s := sim.New(1)
	net := netsim.NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	net.Connect(h1, sw, netsim.LinkConfig{Rate: netsim.Gbps, Delay: sim.Microsecond})
	net.Connect(sw, h2, netsim.LinkConfig{Rate: netsim.Gbps, Delay: sim.Microsecond})
	net.ComputeRoutes()
	port := sw.PortTo(h2.ID())
	hook := &MarkHook{K: 0}                  // always above threshold
	p := &netsim.Packet{Payload: netsim.MSS} // no ECT
	hook.OnEnqueue(p, port)
	if p.Flags&netsim.FlagCE != 0 {
		t.Fatal("non-ECT packet marked")
	}
}

func TestAttachMarkingCoversAllPorts(t *testing.T) {
	s := sim.New(1)
	net := netsim.NewNetwork(s)
	sw := net.NewSwitch("sw")
	for i := 0; i < 4; i++ {
		h := net.NewHost("h")
		net.Connect(h, sw, netsim.LinkConfig{Rate: netsim.Gbps, Delay: sim.Microsecond})
	}
	net.ComputeRoutes()
	hooks := AttachMarking(sw, 1000)
	if len(hooks) != 4 {
		t.Fatalf("hooks = %d, want 4", len(hooks))
	}
	for _, p := range sw.Ports() {
		if p.Hook == nil {
			t.Fatal("port without marking hook")
		}
	}
}

func TestDCTCPQueueBoundedNearK(t *testing.T) {
	// End-to-end: a DCTCP long flow through a 1G bottleneck keeps the
	// queue oscillating around K, far below the 256KB buffer TCP fills.
	s := sim.New(5)
	net := netsim.NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	net.Connect(h1, sw, netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 5 * sim.Microsecond})
	net.Connect(sw, h2, netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond, BufA: 256 << 10})
	net.ComputeRoutes()
	AttachMarking(sw, DefaultK1G)
	snd, rcv := Dial(tcp.Config{Sim: s, Local: h1, Peer: h2, Flow: 1})
	s.At(0, func() { snd.Open(); snd.Send(100 << 20) })
	s.RunUntil(500 * sim.Millisecond)
	port := sw.PortTo(h2.ID())
	// Steady state queue should stay in the K neighbourhood.
	if port.MaxQueue > 128<<10 {
		t.Fatalf("DCTCP max queue %dKB, want bounded near K=32KB", port.MaxQueue>>10)
	}
	if rcv.Received() < 40<<20 {
		t.Fatalf("throughput too low: %dMB in 500ms", rcv.Received()>>20)
	}
	if port.Drops != 0 {
		t.Fatalf("DCTCP dropped %d with marking active", port.Drops)
	}
}

func TestDCTCPVsTCPQueueComparison(t *testing.T) {
	run := func(dctcp bool) int {
		s := sim.New(5)
		net := netsim.NewNetwork(s)
		h1 := net.NewHost("h1")
		h2 := net.NewHost("h2")
		sw := net.NewSwitch("sw")
		net.Connect(h1, sw, netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 5 * sim.Microsecond})
		net.Connect(sw, h2, netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond, BufA: 256 << 10})
		net.ComputeRoutes()
		cfg := tcp.Config{Sim: s, Local: h1, Peer: h2, Flow: 1}
		var snd *tcp.Sender
		if dctcp {
			AttachMarking(sw, DefaultK1G)
			snd, _ = Dial(cfg)
		} else {
			snd, _ = tcp.Dial(cfg)
		}
		s.At(0, func() { snd.Open(); snd.Send(100 << 20) })
		// Measure steady-state queue (skip slow-start transient).
		s.RunUntil(300 * sim.Millisecond)
		return sw.PortTo(h2.ID()).QueueBytes()
	}
	qd, qt := run(true), run(false)
	if qd >= qt {
		t.Fatalf("DCTCP steady queue %d not below TCP %d", qd, qt)
	}
}
