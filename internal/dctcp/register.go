package dctcp

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/tcp"
	"tfcsim/internal/transport"
)

// init registers DCTCP: TCP with ECN window scaling at hosts plus
// instantaneous-queue marking hooks on every switch port.
func init() {
	transport.Register("dctcp", transport.Factory{
		Desc:    "DCTCP: ECN marking at K with proportional window reduction",
		Compare: true,
		Dial: func(c transport.DialConfig) transport.Conn {
			probe, _ := c.Probe.(tcp.Probe)
			s, r := Dial(tcp.Config{
				Sim: c.Sim, Local: c.Local, Peer: c.Peer, Flow: c.Flow,
				MSS: c.MSS, MinRTO: c.MinRTO,
				OnDrain: c.OnDrain, OnComplete: c.OnComplete,
				Probe: probe,
			})
			return transport.Conn{Sender: s, Received: r.Received, SRTT: s.SRTT}
		},
		Attach: func(a transport.AttachConfig) any {
			onMark, _ := a.Probe.(func(*netsim.Port, netsim.FlowID))
			var hooks []*MarkHook
			for _, sw := range a.Switches {
				for _, h := range AttachMarking(sw, KFor(a.MarkRate)) {
					h.OnMark = onMark
					hooks = append(hooks, h)
				}
			}
			return hooks
		},
	})
}
