package stats

import (
	"math"
	"testing"

	"tfcsim/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, q := range []float64{0, 0.5, 1} {
		if h.Quantile(q) != 0 {
			t.Fatalf("Quantile(%v) of empty = %v, want 0", q, h.Quantile(q))
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	h.Observe(42)
	if h.Count() != 1 || h.Sum() != 42 || h.Mean() != 42 {
		t.Fatalf("count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	// The single observation sits in bucket (10,100]; every quantile must
	// land inside that bucket.
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		v := h.Quantile(q)
		if v < 10 || v > 100 {
			t.Fatalf("Quantile(%v) = %v, outside (10,100]", q, v)
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	// A value exactly on a bound counts into that bucket, not the next.
	h.Observe(1)
	h.Observe(2)
	h.Observe(4)
	h.Observe(5) // overflow
	want := []int64{1, 1, 1, 1}
	for i, c := range h.Counts() {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", h.Counts(), want)
		}
	}
	// Overflow observations are clamped to the last finite bound.
	if h.Quantile(1) != 4 {
		t.Fatalf("Quantile(1) = %v, want 4 (clamped overflow)", h.Quantile(1))
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 12)...)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i % 700))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: Q(%v)=%v < %v", q, v, prev)
		}
		prev = v
	}
	// Values 0..299 appear twice and 300..699 once, so the true median is
	// ~250; the estimate must land in its containing bucket (128,256].
	if med := h.Quantile(0.5); med < 128 || med > 256 {
		t.Fatalf("median = %v, want within the (128,256] bucket", med)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

// Duplicate timestamps are legal in a TimeSeries (two gauge samples can
// land on the same virtual instant when a cadence tick coincides with an
// event-driven sample); After must keep all of them.
func TestTimeSeriesDuplicateTimestamps(t *testing.T) {
	var ts TimeSeries
	ts.Add(sim.Millisecond, 1)
	ts.Add(2*sim.Millisecond, 2)
	ts.Add(2*sim.Millisecond, 3)
	ts.Add(3*sim.Millisecond, 4)
	late := ts.After(2 * sim.Millisecond)
	if late.N() != 3 || late.V[0] != 2 || late.V[1] != 3 {
		t.Fatalf("After with duplicate timestamps: n=%d v=%v", late.N(), late.V)
	}
	if ts.MeanV() != 2.5 || ts.MaxV() != 4 {
		t.Fatalf("series stats: mean=%v max=%v", ts.MeanV(), ts.MaxV())
	}
}

// Percentile edge cases feeding metrics snapshots: empty series and
// all-duplicate values must not divide by zero or interpolate past the
// data.
func TestPercentileDegenerate(t *testing.T) {
	var empty Sample
	if empty.Percentile(99) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	var dup Sample
	for i := 0; i < 5; i++ {
		dup.Add(3)
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if dup.Percentile(p) != 3 {
			t.Fatalf("P%v of constant sample = %v, want 3", p, dup.Percentile(p))
		}
	}
}
