package stats

import "sort"

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= x, with an implicit +Inf
// overflow bucket after the last bound. Bounds are fixed at construction
// so that merging and exporting snapshots never depends on insertion
// order, which keeps telemetry output byte-identical across runs.
type Histogram struct {
	bounds []float64 // ascending upper bounds
	counts []int64   // len(bounds)+1; last entry is the +Inf bucket
	n      int64
	sum    float64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// Panics on empty or non-ascending bounds: bucket layout is part of the
// metric's identity and a bad layout is a programming error.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: NewHistogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: NewHistogram bounds must be strictly ascending")
		}
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
}

// ExpBuckets returns n bounds starting at lo, each factor times the
// previous — the usual layout for byte and duration histograms.
func ExpBuckets(lo, factor float64, n int) []float64 {
	if lo <= 0 || factor <= 1 || n < 1 {
		panic("stats: ExpBuckets needs lo > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	x := lo
	for i := range out {
		out[i] = x
		x *= factor
	}
	return out
}

// Observe counts one observation.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i]++
	h.n++
	h.sum += x
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Counts returns the per-bucket counts including the +Inf overflow
// bucket (shared; do not mutate).
func (h *Histogram) Counts() []int64 { return h.counts }

// Quantile returns an estimate of the q-quantile (q in [0,1]) by linear
// interpolation inside the containing bucket. Observations in the +Inf
// bucket are reported as the last finite bound; an empty histogram
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum int64
	for i, c := range h.counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}
