package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"tfcsim/internal/sim"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should return zeros")
	}
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.N() != 3 || s.Mean() != 2 || s.Max() != 3 || s.Min() != 1 {
		t.Fatalf("basics wrong: n=%d mean=%v max=%v min=%v", s.N(), s.Mean(), s.Max(), s.Min())
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {99, 99.01},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 0.02 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleValue(t *testing.T) {
	var s Sample
	s.Add(7)
	for _, p := range []float64{0, 50, 99.99, 100} {
		if s.Percentile(p) != 7 {
			t.Fatalf("P%v of singleton = %v", p, s.Percentile(p))
		}
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 1, 2, 3, 3, 3} {
		s.Add(v)
	}
	xs, fr := s.CDF()
	if len(xs) != 3 || xs[0] != 1 || xs[2] != 3 {
		t.Fatalf("CDF xs = %v", xs)
	}
	want := []float64{2.0 / 6, 3.0 / 6, 1.0}
	for i := range fr {
		if math.Abs(fr[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF fracs = %v, want %v", fr, want)
		}
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := s.Percentile(p1), s.Percentile(p2)
		return v1 <= v2 && v1 >= s.Min() && v2 <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddTime then values sorted matches sort of inputs.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		xs, fr := s.CDF()
		return sort.Float64sAreSorted(xs) && sort.Float64sAreSorted(fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampler(t *testing.T) {
	s := sim.New(1)
	n := 0
	sp := NewSampler(s, sim.Millisecond, func() float64 { n++; return float64(n) })
	s.RunUntil(10 * sim.Millisecond)
	if sp.Series.N() != 10 {
		t.Fatalf("sampled %d points in 10ms at 1ms, want 10", sp.Series.N())
	}
	sp.Stop()
	s.RunUntil(20 * sim.Millisecond)
	if sp.Series.N() != 10 {
		t.Fatal("sampler kept running after Stop")
	}
	if sp.Series.MaxV() != 10 || sp.Series.MeanV() != 5.5 {
		t.Fatalf("series stats wrong: max=%v mean=%v", sp.Series.MaxV(), sp.Series.MeanV())
	}
}

func TestTimeSeriesAfter(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 10; i++ {
		ts.Add(sim.Time(i)*sim.Millisecond, float64(i))
	}
	late := ts.After(5 * sim.Millisecond)
	if late.N() != 5 || late.V[0] != 5 {
		t.Fatalf("After: n=%d first=%v", late.N(), late.V[0])
	}
}

func TestGoodputMeter(t *testing.T) {
	s := sim.New(1)
	bytes := int64(0)
	// Simulate a steady 1 MB/ms producer.
	var feed func()
	feed = func() {
		bytes += 1 << 20
		s.After(sim.Millisecond, feed)
	}
	s.At(0, feed)
	m := NewGoodputMeter(s, 10*sim.Millisecond, func() int64 { return bytes })
	s.RunUntil(100 * sim.Millisecond)
	m.Stop()
	if m.Series.N() < 9 {
		t.Fatalf("only %d samples", m.Series.N())
	}
	// ~1MB/ms = 8.39 Gbps.
	got := m.Series.V[5]
	if got < 8e9 || got > 9e9 {
		t.Fatalf("rate = %v, want ~8.4e9", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"a", "bbbb"}}
	tb.AddRow("xxx", "1")
	out := tb.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "xxx") {
		t.Fatalf("table output: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}

func TestFormatters(t *testing.T) {
	if Mbps(941.5e6) != "941.5" {
		t.Fatalf("Mbps: %s", Mbps(941.5e6))
	}
	if F(3.14159, 2) != "3.14" {
		t.Fatalf("F: %s", F(3.14159, 2))
	}
}
