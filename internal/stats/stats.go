// Package stats provides the measurement machinery the experiment
// harness uses to regenerate the paper's tables and figures: percentile
// summaries, CDFs, periodic time-series samplers, and plain-text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tfcsim/internal/sim"
)

// Sample is a collection of float64 observations with percentile queries.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddTime appends a duration observation in microseconds.
func (s *Sample) AddTime(t sim.Time) { s.Add(t.Micros()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Max returns the maximum (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, x := range s.xs {
		d := x - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s.xs)))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank interpolation. Empty samples return 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// CDF returns (value, cumulative fraction) pairs at every distinct value.
func (s *Sample) CDF() (xs, fracs []float64) {
	if len(s.xs) == 0 {
		return nil, nil
	}
	s.sort()
	for i, x := range s.xs {
		if i+1 < len(s.xs) && s.xs[i+1] == x {
			continue
		}
		xs = append(xs, x)
		fracs = append(fracs, float64(i+1)/float64(len(s.xs)))
	}
	return xs, fracs
}

// Values returns a copy of the raw observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// TimeSeries is a sequence of (time, value) points.
type TimeSeries struct {
	T []sim.Time
	V []float64
}

// Add appends a point.
func (ts *TimeSeries) Add(t sim.Time, v float64) {
	ts.T = append(ts.T, t)
	ts.V = append(ts.V, v)
}

// N returns the number of points.
func (ts *TimeSeries) N() int { return len(ts.T) }

// MaxV returns the maximum value (0 if empty).
func (ts *TimeSeries) MaxV() float64 {
	var m float64
	for _, v := range ts.V {
		if v > m {
			m = v
		}
	}
	return m
}

// MeanV returns the mean value (0 if empty).
func (ts *TimeSeries) MeanV() float64 {
	if len(ts.V) == 0 {
		return 0
	}
	var sum float64
	for _, v := range ts.V {
		sum += v
	}
	return sum / float64(len(ts.V))
}

// After returns the sub-series with T >= t (shares backing arrays).
func (ts *TimeSeries) After(t sim.Time) *TimeSeries {
	i := sort.Search(len(ts.T), func(i int) bool { return ts.T[i] >= t })
	return &TimeSeries{T: ts.T[i:], V: ts.V[i:]}
}

// Sampler invokes fn every interval and records the result.
type Sampler struct {
	Series TimeSeries
	stop   bool
}

// NewSampler starts sampling fn every interval on s until StopAt (0 = forever).
func NewSampler(s *sim.Simulator, interval sim.Time, fn func() float64) *Sampler {
	sp := &Sampler{}
	var tick func()
	tick = func() {
		if sp.stop {
			return
		}
		sp.Series.Add(s.Now(), fn())
		s.After(interval, tick)
	}
	s.After(interval, tick)
	return sp
}

// Stop ends sampling.
func (sp *Sampler) Stop() { sp.stop = true }

// GoodputMeter converts a monotonically increasing byte counter into a
// goodput time series (bits/s per interval), the way the paper samples
// per-flow goodput every 20 ms.
type GoodputMeter struct {
	Series TimeSeries
	last   int64
	stop   bool
}

// NewGoodputMeter samples bytes() every interval and records the rate.
func NewGoodputMeter(s *sim.Simulator, interval sim.Time, bytes func() int64) *GoodputMeter {
	m := &GoodputMeter{}
	var tick func()
	tick = func() {
		if m.stop {
			return
		}
		cur := bytes()
		rate := float64(cur-m.last) * 8 / interval.Seconds()
		m.last = cur
		m.Series.Add(s.Now(), rate)
		s.After(interval, tick)
	}
	s.After(interval, tick)
	return m
}

// Stop ends metering.
func (m *GoodputMeter) Stop() { m.stop = true }

// Table is a simple aligned text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Mbps formats a bits/s value as Mbps with one decimal.
func Mbps(bps float64) string { return fmt.Sprintf("%.1f", bps/1e6) }

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
