package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// directivePrefix introduces a suppression comment. The full grammar is
//
//	//tfcvet:allow <check>[,<check>...] — <one-line justification>
//
// where <check> is an analyzer name (detrand, simtime, mapiter, poolsafe,
// shardsafe, rankreq, hotalloc, probepure) or a documented alias, and the
// justification is mandatory.
// The separator may be an em-dash (—), "--", or a colon. A directive
// suppresses matching diagnostics reported on its own line, or — when it
// stands alone on a line — on the line directly below it.
const directivePrefix = "//tfcvet:allow"

// directiveAliases maps historical/readable check spellings to analyzer
// names. "wallclock" reads better than "detrand" at a wall-clock call
// site, so both are accepted.
var directiveAliases = map[string]string{
	"wallclock": "detrand",
}

// directiveIndex records, per file line, which checks are suppressed,
// plus diagnostics for malformed directives.
type directiveIndex struct {
	fset *token.FileSet
	// allowed[line] is the set of suppressed check names effective on
	// that line.
	allowed map[int]map[string]bool
	bad     []Diagnostic
}

// parseDirectives scans the comments of files for //tfcvet:allow
// directives. known is the set of valid check names.
func parseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) *directiveIndex {
	idx := &directiveIndex{fset: fset, allowed: make(map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				idx.add(fset, f, c, known)
			}
		}
	}
	return idx
}

func (idx *directiveIndex) add(fset *token.FileSet, f *ast.File, c *ast.Comment, known map[string]bool) {
	d := parseAllowDirective(c.Text, known)
	if !d.applies {
		return
	}
	if !d.ok {
		idx.bad = append(idx.bad, Diagnostic{
			Pos:     c.Pos(),
			Check:   "directive",
			Message: "malformed //tfcvet:allow directive: want \"//tfcvet:allow <check>[,<check>] — <justification>\" (the justification is mandatory)",
		})
		return
	}
	if d.unknown != nil {
		idx.bad = append(idx.bad, Diagnostic{
			Pos:     c.Pos(),
			Check:   "directive",
			Message: "//tfcvet:allow names unknown check " + strconv.Quote(*d.unknown),
		})
		return
	}

	// The directive covers its own line when it trails code, otherwise
	// the next line.
	pos := fset.Position(c.Pos())
	line := pos.Line
	if standsAlone(fset, f, c) {
		line++
	}
	set := idx.allowed[line]
	if set == nil {
		set = make(map[string]bool)
		idx.allowed[line] = set
	}
	for _, name := range d.checks {
		set[name] = true
	}
}

// parsedDirective is the outcome of parsing one comment's text as a
// //tfcvet:allow directive — the pure half of directive handling, with
// no positions or AST attached, so it can be fuzzed directly
// (FuzzDirective).
type parsedDirective struct {
	// applies: the text is a tfcvet:allow directive at all (and not e.g.
	// //tfcvet:allowance or an unrelated comment).
	applies bool
	// ok: well-formed — a separator with a non-empty justification.
	ok bool
	// checks are the alias-resolved check names, in written order,
	// possibly with duplicates (the line index deduplicates).
	checks []string
	// unknown is the first check name not in known, nil if all resolve.
	unknown *string
	// reason is the trimmed justification (set when ok).
	reason string
}

// parseAllowDirective parses comment text against the directive grammar
//
//	//tfcvet:allow <check>[,<check>...] — <one-line justification>
//
// with "—", "--", or ":" accepted as the separator and known as the set
// of valid check names after alias resolution.
func parseAllowDirective(text string, known map[string]bool) parsedDirective {
	if !strings.HasPrefix(text, directivePrefix) {
		return parsedDirective{}
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //tfcvet:allowance — not our directive.
		return parsedDirective{}
	}
	d := parsedDirective{applies: true}
	checksPart, reason, ok := splitDirective(rest)
	if !ok || strings.TrimSpace(reason) == "" {
		return d
	}
	d.ok = true
	d.reason = strings.TrimSpace(reason)
	for _, name := range strings.Split(checksPart, ",") {
		name = strings.TrimSpace(name)
		if alias, isAlias := directiveAliases[name]; isAlias {
			name = alias
		}
		if !known[name] && d.unknown == nil {
			bad := name
			d.unknown = &bad
		}
		d.checks = append(d.checks, name)
	}
	return d
}

// splitDirective separates "<checks> — <reason>" accepting "—", "--",
// or ":" as the separator.
func splitDirective(s string) (checks, reason string, ok bool) {
	s = strings.TrimSpace(s)
	for _, sep := range []string{"—", "--", ":"} {
		if i := strings.Index(s, sep); i >= 0 {
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+len(sep):]), true
		}
	}
	return "", "", false
}

// standsAlone reports whether the comment is the first token on its
// line (so it annotates the line below rather than its own).
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return true
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return true
		}
		// Any non-comment node that starts on the same line before the
		// comment means the directive trails code.
		if fset.Position(n.Pos()).Line == line && n.Pos() < c.Pos() {
			if _, isFile := n.(*ast.File); !isFile {
				alone = false
				return false
			}
		}
		return true
	})
	return alone
}

// suppressed reports whether a diagnostic of the given check at pos is
// covered by an allow directive.
func (idx *directiveIndex) suppressed(check string, pos token.Pos) bool {
	set := idx.allowed[idx.fset.Position(pos).Line]
	return set[check]
}
