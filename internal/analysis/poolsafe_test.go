package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestPoolsafe proves the poolsafe analyzer catches use-after-release
// and out-of-band retention of pooled packets (against a hermetic
// netsim stub that shadows the real package path), while accepting
// branch-local releases, reassignment, and annotated handoffs.
func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Poolsafe, "poolsafe")
}
