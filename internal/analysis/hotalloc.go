package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Hotalloc turns the BENCH_2 allocation gate (0.000 allocs/pkt-hop in the
// settled window, see BENCH.md) from a benchmark assertion into a lint:
// inside the forwarding-path packages, every function reachable from an
// event or forwarding entry point must be allocation-free in steady
// state. The benchmark can only measure the topologies it runs; the
// analyzer certifies the property for every function the call graph can
// reach, including paths only exercised under loss, faults, or future
// transports.
//
// Roots are the contract-surface methods where the event loop or the
// forwarding path enters a package: sim.EventTarget.RunEvent,
// netsim.Node.Receive, netsim.Endpoint.Deliver, netsim.PortHook.
// OnEnqueue, and netsim.Interceptor.Intercept. Reachability is computed
// on the per-package call graph (callgraph.go); cross-package calls into
// helper packages are invisible to it, which is exactly the gap the
// BENCH_2 measurement still covers (see the poolsafe_gap fixture corpus).
//
// Four allocation shapes are flagged in reachable bodies:
//
//   - a function literal that escapes its creation site (anything but an
//     immediately-invoked literal) — closures allocate;
//   - any call into package fmt — fmt both allocates and boxes its
//     variadic arguments; a call whose result feeds directly into panic
//     is exempt (the sim is already dead);
//   - a call boxing arguments into a variadic ...interface{} parameter
//     (the same escape fmt causes, through any API);
//   - a built-in append whose destination is not a local slice that the
//     same function provably pre-sized (make with explicit size,
//     composite literal, or the s = s[:0] reuse idiom). Appends to
//     fields and parameters grow backing arrays on the hot path —
//     amortized pool growth is the legitimate exception and carries a
//     //tfcvet:allow hotalloc directive with its amortization argument.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap-allocating constructs in event-reachable code of the forwarding-path packages",
	Run:  runHotalloc,
}

// hotallocScope is the set of packages under the BENCH_2 gate.
var hotallocScope = regexp.MustCompile(`^tfcsim/internal/(sim|netsim|core|credit|tcp|dctcp|bfc|tinytcp|transport)($|/)`)

// hotRootNames are the method names that admit control into a package's
// hot path. A method with one of these names is treated as a root
// whether or not the defining interface is visible — conservative in the
// direction that matters (more code certified, never less).
var hotRootNames = map[string]bool{
	"RunEvent":  true, // sim.EventTarget
	"Receive":   true, // netsim.Node
	"Deliver":   true, // netsim.Endpoint
	"OnEnqueue": true, // netsim.PortHook
	"Intercept": true, // netsim.Interceptor
}

func runHotalloc(pass *Pass) error {
	if !hotallocScope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	g := buildCallGraph(pass)
	var roots []*cgNode
	for fn, n := range g.nodes {
		if fn.Type().(*types.Signature).Recv() != nil && hotRootNames[fn.Name()] {
			roots = append(roots, n)
		}
	}
	for n := range g.reachableFrom(roots) {
		hotallocCheckFunc(pass, n.decl)
	}
	return nil
}

// hotallocCheckFunc flags the allocating constructs in one reachable
// declaration (function literals inside it included — they run on the
// same path).
func hotallocCheckFunc(pass *Pass, decl *ast.FuncDecl) {
	for _, lit := range escapingFuncLits(decl.Body) {
		pass.Reportf(lit.Pos(),
			"closure escapes in event-reachable %s; closures allocate per call and break the 0 allocs/pkt-hop gate — use a pooled EventTarget or a port-resident event instead",
			decl.Name.Name)
	}

	presized := presizedSliceVars(pass, decl.Body)
	panicArg := hotallocPanicArgs(pass, decl.Body)

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if isBuiltinAppend(pass, call) {
			hotallocCheckAppend(pass, decl, call, presized)
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "fmt" {
			if !panicArg[call] {
				pass.Reportf(call.Pos(),
					"%s called in event-reachable %s; fmt allocates and boxes its arguments — format off the hot path or move this to a panic/error exit",
					callName(call), decl.Name.Name)
			}
			return true
		}
		if hotallocBoxesVariadic(pass, call, fn) {
			pass.Reportf(call.Pos(),
				"%s boxes arguments into ...interface{} in event-reachable %s; each boxed argument escapes to the heap",
				callName(call), decl.Name.Name)
		}
		return true
	})
}

// hotallocPanicArgs collects fmt calls whose result feeds directly into
// panic — the run is over, allocation is irrelevant.
func hotallocPanicArgs(pass *Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	exempt := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		id := identOf(call.Fun)
		if id == nil {
			return true
		}
		if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); !isB || b.Name() != "panic" {
			return true
		}
		for _, arg := range call.Args {
			if inner, isInner := ast.Unparen(arg).(*ast.CallExpr); isInner {
				exempt[inner] = true
			}
		}
		return true
	})
	return exempt
}

// hotallocBoxesVariadic reports whether call passes at least one
// implicitly boxed argument to a ...interface{} parameter. An explicit
// s... spread passes an existing slice and boxes nothing.
func hotallocBoxesVariadic(pass *Pass, call *ast.CallExpr, fn *types.Func) bool {
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || !sig.Variadic() || call.Ellipsis.IsValid() {
		return false
	}
	params := sig.Params()
	last := params.At(params.Len() - 1)
	slice, isSlice := last.Type().(*types.Slice)
	if !isSlice {
		return false
	}
	iface, isIface := slice.Elem().Underlying().(*types.Interface)
	if !isIface || !iface.Empty() {
		return false
	}
	return len(call.Args) >= params.Len()
}

// hotallocCheckAppend flags appends whose destination the function did
// not provably pre-size.
func hotallocCheckAppend(pass *Pass, decl *ast.FuncDecl, call *ast.CallExpr, presized map[*types.Var]bool) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	if id, isIdent := dst.(*ast.Ident); isIdent {
		if v, isVar := pass.TypesInfo.Uses[id].(*types.Var); isVar && presized[v] {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"un-presized append in event-reachable %s; growth allocates on the hot path — pre-size with make, reuse with s[:0], or annotate amortized pool growth with //tfcvet:allow hotalloc",
		decl.Name.Name)
}
