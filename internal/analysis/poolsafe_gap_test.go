package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestPoolsafeGap ratchets the known-false-negative corpus: every
// function in the poolsafe_gap fixture contains a real pool-lifetime bug
// that poolsafe's intra-procedural, alias-unaware design deliberately
// misses, and the fixture carries zero // want annotations — so this
// test fails the moment the analyzer starts catching one of them. That
// is the signal to move the case into the poolsafe fixture with a want
// annotation, keeping the documented boundary honest in both directions.
func TestPoolsafeGap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Poolsafe,
		"poolsafe_gap")
}
