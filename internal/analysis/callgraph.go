package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the interprocedural layer the v2 analyzers (shardsafe,
// rankreq, hotalloc, probepure) build on: a lightweight per-package call
// graph over go/types. Nodes are the package's declared functions and
// methods; edges are
//
//   - static calls and references: any use of an in-package function or
//     method — direct call, method value, function passed as an argument
//     (`sort.Slice(x, less)`), goroutine/defer — counts as a potential
//     call. Reference-taken-implies-called is deliberately conservative:
//     the consumers are reachability analyses, where a missing edge is a
//     silent false negative;
//   - interface method-set resolution: a call through an interface method
//     (most importantly sim.EventTarget.RunEvent, but equally
//     netsim.Node.Receive, netsim.Endpoint.Deliver, netsim.PortHook.
//     OnEnqueue) adds edges to every in-package method of the same name
//     whose receiver type implements the interface.
//
// The graph is intra-package by construction — the unitchecker protocol
// hands tfcvet one package at a time with export data (types, no bodies)
// for its dependencies, so edges cannot cross the package boundary. The
// analyzers compensate by rooting their traversals at the contract
// surface of each package (RunEvent/OnEnqueue/Deliver/Intercept methods,
// Probe implementations), which is exactly where cross-package control
// flow re-enters a package. The remaining blind spots are documented in
// the poolsafe_gap fixture corpus.
type callGraph struct {
	pass *Pass
	// nodes maps every declared function/method with a body to its graph
	// node. FuncLit bodies are attributed to their enclosing declaration.
	nodes map[*types.Func]*cgNode
	// methodsByName indexes nodes that are methods, for interface
	// resolution.
	methodsByName map[string][]*cgNode
}

// cgNode is one declared function or method.
type cgNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	callees []*cgNode
	seen    map[*cgNode]bool // edge dedup during construction
}

// buildCallGraph constructs the package call graph for one pass.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		pass:          pass,
		nodes:         make(map[*types.Func]*cgNode),
		methodsByName: make(map[string][]*cgNode),
	}
	for _, f := range pass.Files {
		// Test files are outside the contracts (the checker drops their
		// diagnostics), so they must not contribute nodes, roots, or
		// edges either: under go vet the test-augmented package variant
		// includes _test.go sources, and a benchmark's event type would
		// otherwise pull library helpers into the event-reachable set
		// that the standalone mode (which never loads test files) does
		// not see.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, isFunc := d.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			fn, isFn := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !isFn {
				continue
			}
			n := &cgNode{fn: fn, decl: fd, seen: make(map[*cgNode]bool)}
			g.nodes[fn] = n
			if fn.Type().(*types.Signature).Recv() != nil {
				g.methodsByName[fn.Name()] = append(g.methodsByName[fn.Name()], n)
			}
		}
	}
	for _, n := range g.nodes {
		g.addEdges(n)
	}
	return g
}

// addEdges walks one declaration body and records its potential callees.
func (g *callGraph) addEdges(n *cgNode) {
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		id, isIdent := x.(*ast.Ident)
		if !isIdent {
			return true
		}
		fn, isFn := g.pass.TypesInfo.Uses[id].(*types.Func)
		if !isFn {
			return true
		}
		if tgt, local := g.nodes[fn]; local {
			n.addEdge(tgt)
			return true
		}
		// Not a declared in-package function: if it is an interface
		// method, resolve it against the package's method sets.
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return true
		}
		iface, isIface := recv.Type().Underlying().(*types.Interface)
		if !isIface {
			return true
		}
		for _, m := range g.implementers(iface, fn.Name()) {
			n.addEdge(m)
		}
		return true
	})
}

func (n *cgNode) addEdge(tgt *cgNode) {
	if n.seen[tgt] {
		return
	}
	n.seen[tgt] = true
	n.callees = append(n.callees, tgt)
}

// implementers returns the in-package methods named name whose receiver
// type satisfies iface.
func (g *callGraph) implementers(iface *types.Interface, name string) []*cgNode {
	var out []*cgNode
	for _, m := range g.methodsByName[name] {
		recv := m.fn.Type().(*types.Signature).Recv().Type()
		if implementsIface(recv, iface) {
			out = append(out, m)
		}
	}
	return out
}

// implementsIface reports whether t — or, for a value receiver type, *t —
// satisfies iface.
func implementsIface(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// nodeFor returns the graph node of a declared function, or nil.
func (g *callGraph) nodeFor(fn *types.Func) *cgNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// reachableFrom returns the transitive closure of the root set (roots
// included).
func (g *callGraph) reachableFrom(roots []*cgNode) map[*cgNode]bool {
	seen := make(map[*cgNode]bool, len(roots))
	stack := append([]*cgNode(nil), roots...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.callees...)
	}
	return seen
}

// methodOf resolves type t's method named name to its in-package graph
// node (following a pointer if needed), or nil.
func (g *callGraph) methodOf(t types.Type, name string) *cgNode {
	for _, n := range g.methodsByName[name] {
		recv := n.fn.Type().(*types.Signature).Recv().Type()
		if types.Identical(recv, t) {
			return n
		}
		// A *T argument matches a value-receiver method on T and vice
		// versa — the method set of *T contains both.
		if ptr, isPtr := t.(*types.Pointer); isPtr && types.Identical(recv, ptr.Elem()) {
			return n
		}
		if ptr, isPtr := recv.(*types.Pointer); isPtr && types.Identical(ptr.Elem(), t) {
			return n
		}
	}
	return nil
}
