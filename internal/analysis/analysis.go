// Package analysis is tfcvet's analyzer framework: a minimal,
// dependency-free mirror of the golang.org/x/tools/go/analysis API plus
// the four analyzers that machine-check this repository's determinism,
// sim-time, and pool-lifetime contracts (see DESIGN.md, "Determinism &
// pooling contracts").
//
// The build environment for this repository is fully offline, so the
// framework deliberately reimplements the small slice of the x/tools API
// the suite needs (Analyzer, Pass, Diagnostic) on top of the standard
// library's go/ast and go/types instead of importing
// golang.org/x/tools. The shapes match the upstream API closely enough
// that porting the analyzers onto the real framework is a rename, should
// the dependency ever become available.
//
// Findings can be suppressed case-by-case with a directive comment
//
//	//tfcvet:allow <check>[,<check>...] — <one-line justification>
//
// placed on the offending line or on the line directly above it; see
// directive.go for the grammar. A directive without a justification is
// itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Mirrors
// golang.org/x/tools/go/analysis.Analyzer, minus facts and requires
// (every tfcvet analyzer is self-contained and intra-package).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tfcvet:allow directives. It must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation: a one-line summary,
	// optionally followed by a blank line and details (shown by
	// `tfcvet help`).
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report/Reportf.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer run with a single type-checked package, and
// collects the diagnostics it reports. Mirrors
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos token.Pos
	// Check is the name of the analyzer (or pseudo-check, e.g.
	// "directive") that produced the finding; //tfcvet:allow directives
	// suppress by this name.
	Check   string
	Message string
}

// Report records a diagnostic. The Check field defaults to the running
// analyzer's name.
func (p *Pass) Report(d Diagnostic) {
	if d.Check == "" {
		d.Check = p.Analyzer.Name
	}
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full tfcvet analyzer suite in a stable order: the four
// intra-procedural v1 checkers followed by the four call-graph-backed v2
// analyzers (see callgraph.go).
func All() []*Analyzer {
	return []*Analyzer{Detrand, Simtime, Mapiter, Poolsafe, Shardsafe, Rankreq, Hotalloc, Probepure}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// pkgPathOf returns the import path of the package a package-qualified
// identifier refers to, and the member name — e.g. time.Now yields
// ("time", "Now") — or ok=false if sel is not a qualified identifier.
func pkgPathOf(info *types.Info, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
