package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Shardsafe machine-checks the ownership rule that makes the partitioned
// engine lock-free and byte-identical to sequential (DESIGN.md §10):
// after netsim.Network.Partition, every node, port, and pool belongs to
// exactly one shard, and code running on one shard's goroutine — anything
// reachable from that shard's EventTargets — must not mutate another
// shard's entities or schedule on another shard's Simulator. The one
// sanctioned crossing is sim.Group.Post, which hands an event to the
// deterministic epoch mailbox.
//
// The check is a per-function forward taint pass over event-reachable
// code. Taint sources are the two expressions that cross the ownership
// boundary: the .Peer selector on a netsim.Port (the node on the far end
// of a link, possibly on another shard) and the unexported .peerSh shard
// handle. Anything derived from a tainted value — field reads, method
// results, copies — stays tainted. Flagged:
//
//   - a write (assignment or ++/--) through a tainted base: a direct
//     mutation of another shard's entity;
//   - a Simulator scheduling call (At/After/Schedule/ScheduleAfter/
//     ScheduleAfterRank) whose receiver is tainted: scheduling on a
//     foreign shard's event loop corrupts its timer wheel;
//   - any other potentially mutating method call on a tainted receiver —
//     pointer-receiver or interface methods outside a small read-only
//     allowlist.
//
// Reads of tainted values are deliberately not flagged: immutable
// identity fields (NodeID, shard id) legitimately feed Group.Post, and
// Post itself is invoked on an untainted Group receiver, so the
// sanctioned crossing needs no special case. Same-shard delivery paths
// that the engine guards dynamically (rxEvent only serves non-crossing
// links; crossRxEvent executes on the receiving shard) are annotated
// with //tfcvet:allow shardsafe at the three sites where the guarantee
// is structural rather than lexical.
var Shardsafe = &Analyzer{
	Name: "shardsafe",
	Doc:  "flag cross-shard mutation or scheduling outside the Group.Post mailbox in event-reachable code",
	Run:  runShardsafe,
}

// shardsafeScope: packages whose code runs on shard goroutines.
var shardsafeScope = regexp.MustCompile(`^tfcsim/internal/(sim|netsim|core|credit|tcp|dctcp|bfc|tinytcp|transport)($|/)`)

const simPkgPath = "tfcsim/internal/sim"

// simulatorScheduleMethods are the sim.Simulator entry points that feed
// a shard's private timer wheel.
var simulatorScheduleMethods = map[string]bool{
	"At": true, "After": true,
	"Schedule": true, "ScheduleAfter": true, "ScheduleAfterRank": true,
}

// shardsafeReadonly are methods safe to call on a foreign entity: pure
// observers of identity or immutable configuration.
var shardsafeReadonly = map[string]bool{
	"ID": true, "Name": true, "String": true, "Sim": true,
	"Ports": true, "Seconds": true, "Micros": true, "Millis": true,
}

func runShardsafe(pass *Pass) error {
	if !shardsafeScope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	g := buildCallGraph(pass)
	var roots []*cgNode
	for fn, n := range g.nodes {
		if fn.Type().(*types.Signature).Recv() != nil && hotRootNames[fn.Name()] {
			roots = append(roots, n)
		}
	}
	for n := range g.reachableFrom(roots) {
		shardsafeCheckFunc(pass, n.decl)
	}
	return nil
}

// isShardTaintSource marks the expressions whose value belongs to the
// far side of a link: port.Peer and port.peerSh.
func isShardTaintSource(pass *Pass, sel *ast.SelectorExpr) bool {
	name := sel.Sel.Name
	if name != "Peer" && name != "peerSh" {
		return false
	}
	named := namedOf(pass.TypesInfo.TypeOf(sel.X))
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Port" && obj.Pkg() != nil && obj.Pkg().Path() == packetPkgPath
}

func shardsafeCheckFunc(pass *Pass, decl *ast.FuncDecl) {
	tainted := taintedVars(pass, decl.Body, isShardTaintSource)
	foreign := func(e ast.Expr) bool {
		return exprTainted(pass, e, tainted, isShardTaintSource)
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if base, isWrite := shardsafeWriteBase(lhs); isWrite && foreign(base) {
					pass.Reportf(lhs.Pos(),
						"write to another shard's entity in event-reachable %s; cross-shard effects must travel through Group.Post",
						decl.Name.Name)
				}
			}
		case *ast.IncDecStmt:
			if base, isWrite := shardsafeWriteBase(st.X); isWrite && foreign(base) {
				pass.Reportf(st.X.Pos(),
					"write to another shard's entity in event-reachable %s; cross-shard effects must travel through Group.Post",
					decl.Name.Name)
			}
		case *ast.CallExpr:
			fn, isMethod := isMethodCall(pass, st)
			if !isMethod {
				return true
			}
			recv := recvExprOf(st)
			if recv == nil || !foreign(recv) {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == simPkgPath && simulatorScheduleMethods[fn.Name()] {
				pass.Reportf(st.Pos(),
					"%s schedules on another shard's Simulator in event-reachable %s; a foreign timer wheel is not goroutine-safe — post through Group.Post",
					callName(st), decl.Name.Name)
				return true
			}
			if shardsafeReadonly[fn.Name()] {
				return true
			}
			if sig, isSig := fn.Type().(*types.Signature); isSig {
				if r := sig.Recv(); r != nil {
					if _, isPtr := r.Type().(*types.Pointer); !isPtr {
						if _, isIface := r.Type().Underlying().(*types.Interface); !isIface {
							return true // value receiver: operates on a copy
						}
					}
				}
			}
			pass.Reportf(st.Pos(),
				"%s may mutate another shard's entity in event-reachable %s; cross-shard effects must travel through Group.Post (annotate //tfcvet:allow shardsafe where the engine guarantees same-shard execution)",
				callName(st), decl.Name.Name)
		}
		return true
	})
}

// shardsafeWriteBase returns the base expression being written through,
// if lhs is a write into existing storage (field, element, pointer
// target) rather than a local rebind.
func shardsafeWriteBase(lhs ast.Expr) (ast.Expr, bool) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return x.X, true
	case *ast.IndexExpr:
		return x.X, true
	case *ast.StarExpr:
		return x.X, true
	}
	return nil, false
}
