package analysis

import (
	"go/ast"
	"go/types"
)

// Rankreq enforces the delivery-ordering contract behind the byte-
// identical sharding guarantee (DESIGN.md §10): simultaneous packet
// arrivals at a node are arbitrated by port rank — the port's stable
// creation index — so the sequential and partitioned engines break the
// tie identically. An event class that models a link delivery (its
// RunEvent hands a packet to netsim.Node.Receive or netsim.Endpoint.
// Deliver) must therefore be scheduled with an explicit rank: through
// sim.Simulator.ScheduleAfterRank or sim.Group.Post with a rank other
// than sim.NeutralRank. Scheduling such an event neutrally compiles,
// runs, and produces correct-looking results — until two deliveries
// share a timestamp and the -shards 1 vs N comparison diverges.
//
// Classification is interprocedural on the per-package call graph: a
// concrete type is a delivery class when its RunEvent transitively
// reaches a Receive/Deliver call resolved to package netsim. The
// analyzer then flags every scheduling site that submits a delivery
// class neutrally:
//
//   - Schedule/ScheduleAfter (rank is implicitly NeutralRank);
//   - ScheduleAfterRank or Group.Post with a constant NeutralRank rank.
//
// A non-constant rank argument is accepted as intentional, and targets
// whose static type is an interface are skipped — the analyzer only
// judges types it can see the RunEvent of. The check runs in every
// package, so out-of-tree transports registered with the transport
// registry are held to the same contract as the in-tree ones.
var Rankreq = &Analyzer{
	Name: "rankreq",
	Doc:  "flag link-delivery event classes scheduled with NeutralRank instead of an explicit port rank",
	Run:  runRankreq,
}

// neutralRank mirrors sim.NeutralRank; keeping the literal here avoids a
// framework dependency on the simulator package.
const neutralRank = -1

// rankreqSinkNames are the netsim methods that constitute a delivery.
var rankreqSinkNames = map[string]bool{"Receive": true, "Deliver": true}

func runRankreq(pass *Pass) error {
	g := buildCallGraph(pass)
	delivers := make(map[*cgNode]int8) // memo: 0 unknown, 1 yes, 2 no
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			rankreqCheckCall(pass, g, delivers, call)
			return true
		})
	}
	return nil
}

// rankreqCheckCall flags call if it neutrally schedules a delivery
// class.
func rankreqCheckCall(pass *Pass, g *callGraph, delivers map[*cgNode]int8, call *ast.CallExpr) {
	fn, isMethod := isMethodCall(pass, call)
	if !isMethod || fn.Pkg() == nil || fn.Pkg().Path() != simPkgPath {
		return
	}
	var tgtIdx, rankIdx int
	switch fn.Name() {
	case "Schedule", "ScheduleAfter":
		tgtIdx, rankIdx = 1, -1
	case "ScheduleAfterRank":
		tgtIdx, rankIdx = 1, 2
	case "Post":
		tgtIdx, rankIdx = 5, 4
	default:
		return
	}
	if tgtIdx >= len(call.Args) {
		return
	}
	if rankIdx >= 0 {
		if rankIdx >= len(call.Args) {
			return
		}
		v, isConst := constIntValue(pass, call.Args[rankIdx])
		if !isConst || v != neutralRank {
			return // explicit rank, or dynamic — intentional
		}
	}
	tgtType := pass.TypesInfo.TypeOf(call.Args[tgtIdx])
	if tgtType == nil {
		return
	}
	if _, isIface := tgtType.Underlying().(*types.Interface); isIface {
		return // can't see the concrete RunEvent
	}
	run := g.methodOf(tgtType, "RunEvent")
	if run == nil || !rankreqDelivers(g, delivers, run) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s schedules a link-delivery event (%s reaches a netsim delivery) with NeutralRank; deliveries must carry the port's rank (ScheduleAfterRank / Group.Post) so simultaneous arrivals arbitrate identically under sharding",
		callName(call), types.TypeString(tgtType, types.RelativeTo(pass.Pkg))+".RunEvent")
}

// rankreqDelivers reports (memoized) whether run's reachable set calls a
// netsim Receive/Deliver.
func rankreqDelivers(g *callGraph, memo map[*cgNode]int8, run *cgNode) bool {
	if v, known := memo[run]; known {
		return v == 1
	}
	found := false
	for n := range g.reachableFrom([]*cgNode{run}) {
		if found {
			break
		}
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			call, isCall := x.(*ast.CallExpr)
			if !isCall || found {
				return !found
			}
			callee := calleeFunc(g.pass, call)
			if callee != nil && rankreqSinkNames[callee.Name()] &&
				callee.Pkg() != nil && callee.Pkg().Path() == packetPkgPath {
				found = true
			}
			return !found
		})
	}
	if found {
		memo[run] = 1
	} else {
		memo[run] = 2
	}
	return found
}
