package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Probepure enforces the observer contract stated on every probe
// interface (netsim.Probe, core.Probe, tcp.Probe, credit.Probe, the
// faults.Injector.Probe callback, and the telemetry sinks behind them):
// probes run inside the forwarding path, on the simulation's virtual
// timeline, and must be invisible to it. A probe that mutates simulator
// or entity state, draws from a deterministic Rand stream, or schedules
// an event changes the trajectory it claims to observe — and because
// probes are usually enabled only for instrumented trials, the bug
// presents as "results change when telemetry is on", the least
// debuggable symptom in the repo.
//
// Roots — the code treated as probe context — are found three ways,
// intersected with nothing (any match makes a root):
//
//   - methods through which a receiver type implements an interface
//     named *Probe defined in a tfcsim/internal package (imported or
//     local);
//   - methods whose receiver type name ends in Probe (telemetry's
//     unexported netProbe/tfcProbe/... sinks) or Watchdog (obs's
//     invariant predicates — they run inside probe callbacks and are
//     held to the same contract);
//   - declared functions/methods whose own name ends in Probe — the
//     factories (telemetry.Trial.MarkProbe and friends) whose returned
//     closures are the installed probe bodies; function literals are
//     attributed to their enclosing declaration — or in Snapshot (obs's
//     state readers: they sample live simulator/port state and must be
//     pure reads whether they run as virtual-time events or behind the
//     HTTP endpoint).
//
// Within the per-package reachable set of those roots, the analyzer
// flags:
//
//   - writes (assignment, ++/--) whose target lives in a simulation
//     package — sim/netsim/transport packages and faults — unless the
//     written-through base is the probe's own receiver (a probe owns its
//     counters, wherever its type is declared);
//   - scheduling calls (Simulator At/After/Schedule* and Group.Post);
//   - randomness: any call into math/rand, or a Rand()/Rand access on a
//     simulation type — consuming a draw perturbs every later consumer
//     of the stream;
//   - calls to potentially mutating methods (pointer receiver or
//     interface, outside the read-only allowlist) on simulation-package
//     values.
var Probepure = &Analyzer{
	Name: "probepure",
	Doc:  "flag probe and telemetry-sink code that mutates sim state, consumes Rand, or schedules events",
	Run:  runProbepure,
}

// probeStateScope are the packages whose state a probe must not touch.
var probeStateScope = regexp.MustCompile(`^tfcsim/internal/(sim|netsim|core|credit|tcp|dctcp|bfc|tinytcp|transport|faults)($|/)`)

// probepureReadonly are simulation-type methods a probe may call:
// identity, clocks, and counters that exist for observers. The list is
// additive — a missing entry shows up as a finding to triage, never as a
// silent pass.
var probepureReadonly = map[string]bool{
	"ID": true, "Name": true, "String": true, "Label": true,
	"Now": true, "Seed": true, "Executed": true, "Pending": true, "Live": true,
	"Sim": true, "Network": true, "NIC": true, "Ports": true, "Nodes": true,
	"Endpoint": true, "Paused": true, "Group": true, "Shards": true,
	"QueueBytes": true, "QueueLen": true, "Busy": true, "Down": true,
	"Utilization": true, "FrameBytes": true, "WireBytes": true,
	"PortTo": true, "PortsTo": true, "PortFor": true, "PortState": true,
	"Tokens": true, "EffectiveFlows": true, "Window": true, "MissK": true,
	"Seconds": true, "Micros": true, "Millis": true, "Peer": true, "Owner": true,
	"Lookahead": true, "Epochs": true,
	// Self-profiling accessors: Group.Stats/Simulator.DispatchStats copy
	// counters out; Pulse.Load is a lock-free atomic read of the progress
	// mailbox.
	"Stats": true, "DispatchStats": true, "Load": true,
	// Packet.IsData reads the flags word.
	"IsData": true,
}

func runProbepure(pass *Pass) error {
	g := buildCallGraph(pass)
	ifaces := probeInterfaces(pass)
	var roots []*cgNode
	for fn, n := range g.nodes {
		if probepureIsRoot(pass, fn, ifaces) {
			roots = append(roots, n)
		}
	}
	for n := range g.reachableFrom(roots) {
		probepureCheckFunc(pass, n.decl)
	}
	return nil
}

// probeInterfaces collects every interface named *Probe declared in a
// tfcsim/internal package visible to this pass.
func probeInterfaces(pass *Pass) []*types.Interface {
	var out []*types.Interface
	scan := func(pkg *types.Package) {
		if !strings.HasPrefix(pkg.Path(), "tfcsim/internal/") {
			return
		}
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			if !strings.HasSuffix(name, "Probe") {
				continue
			}
			tn, isType := scope.Lookup(name).(*types.TypeName)
			if !isType {
				continue
			}
			if iface, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				out = append(out, iface)
			}
		}
	}
	scan(pass.Pkg)
	for _, imp := range pass.Pkg.Imports() {
		scan(imp)
	}
	return out
}

// probepureIsRoot decides whether fn starts probe context. The
// name-suffix heuristics exempt methods whose receiver is itself a
// simulation-scope type: TFC's wire protocol has probe *packets* (paper
// §4.6), so a transport's sendProbe is a sender, not an observer. The
// interface rule still applies there — a simulation type that actually
// implements a *Probe interface is held to the observer contract.
func probepureIsRoot(pass *Pass, fn *types.Func, ifaces []*types.Interface) bool {
	recv := fn.Type().(*types.Signature).Recv()
	simRecv := false
	if recv != nil {
		if named := namedOf(recv.Type()); named != nil && named.Obj().Pkg() != nil {
			simRecv = probeStateScope.MatchString(named.Obj().Pkg().Path())
		}
	}
	if (strings.HasSuffix(fn.Name(), "Probe") || strings.HasSuffix(fn.Name(), "Snapshot")) && !simRecv {
		return true
	}
	if recv == nil {
		return false
	}
	if named := namedOf(recv.Type()); named != nil && !simRecv {
		low := strings.ToLower(named.Obj().Name())
		if strings.HasSuffix(low, "probe") || strings.HasSuffix(low, "watchdog") {
			return true
		}
	}
	for _, iface := range ifaces {
		if !implementsIface(recv.Type(), iface) {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == fn.Name() {
				return true
			}
		}
	}
	return false
}

func probepureCheckFunc(pass *Pass, decl *ast.FuncDecl) {
	recvVar := probepureRecvVar(pass, decl)
	simState := func(e ast.Expr) bool {
		if probepureRootedAtRecv(pass, e, recvVar) {
			return false
		}
		t := pass.TypesInfo.TypeOf(e)
		named := namedOf(t)
		if named == nil {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && probeStateScope.MatchString(obj.Pkg().Path())
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if base, isWrite := shardsafeWriteBase(lhs); isWrite && simState(base) {
					pass.Reportf(lhs.Pos(),
						"probe code in %s writes simulation state; probes are read-only observers — accumulate into the probe's own fields instead",
						decl.Name.Name)
				}
			}
		case *ast.IncDecStmt:
			if base, isWrite := shardsafeWriteBase(st.X); isWrite && simState(base) {
				pass.Reportf(st.X.Pos(),
					"probe code in %s writes simulation state; probes are read-only observers — accumulate into the probe's own fields instead",
					decl.Name.Name)
			}
		case *ast.SelectorExpr:
			if path, name, isQual := pkgPathOf(pass.TypesInfo, st); isQual && path == "math/rand" && name != "Rand" && name != "Source" {
				pass.Reportf(st.Pos(),
					"probe code in %s touches math/rand; consuming a draw shifts every later consumer of the deterministic stream",
					decl.Name.Name)
			}
		case *ast.CallExpr:
			probepureCheckCall(pass, decl, st, simState)
		}
		return true
	})
}

func probepureCheckCall(pass *Pass, decl *ast.FuncDecl, call *ast.CallExpr, simState func(ast.Expr) bool) {
	fn, isMethod := isMethodCall(pass, call)
	if !isMethod {
		return
	}
	recv := recvExprOf(call)
	if fn.Pkg() != nil && fn.Pkg().Path() == simPkgPath &&
		(simulatorScheduleMethods[fn.Name()] || fn.Name() == "Post") {
		pass.Reportf(call.Pos(),
			"probe code in %s schedules an event (%s); probes must not alter the event timeline",
			decl.Name.Name, callName(call))
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" {
		pass.Reportf(call.Pos(),
			"probe code in %s draws from a rand stream (%s); consuming a draw shifts every later consumer",
			decl.Name.Name, callName(call))
		return
	}
	if recv == nil || !simState(recv) {
		return
	}
	if fn.Name() == "Rand" {
		pass.Reportf(call.Pos(),
			"probe code in %s obtains a simulation Rand stream; probes must not consume deterministic draws",
			decl.Name.Name)
		return
	}
	if probepureReadonly[fn.Name()] {
		return
	}
	// Forwarding into another probe (telemetry sinks fan out to obs's
	// TrialHooks.Net) is allowed: the callee implements a *Probe interface
	// and is checked as a root itself.
	if named := namedOf(pass.TypesInfo.TypeOf(recv)); named != nil {
		if _, isIface := named.Underlying().(*types.Interface); isIface &&
			strings.HasSuffix(named.Obj().Name(), "Probe") {
			return
		}
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig {
		if r := sig.Recv(); r != nil {
			if _, isPtr := r.Type().(*types.Pointer); !isPtr {
				if _, isIface := r.Type().Underlying().(*types.Interface); !isIface {
					return // value receiver: operates on a copy
				}
			}
		}
	}
	pass.Reportf(call.Pos(),
		"probe code in %s calls %s, which may mutate simulation state; use a read-only accessor or extend the probepure allowlist with a justification",
		decl.Name.Name, callName(call))
}

// probepureRecvVar returns the declared receiver variable of decl, if
// any.
func probepureRecvVar(pass *Pass, decl *ast.FuncDecl) *types.Var {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// probepureRootedAtRecv reports whether e dereferences the probe's own
// receiver (its private counters), walking selectors/indexes to the root
// identifier.
func probepureRootedAtRecv(pass *Pass, e ast.Expr, recv *types.Var) bool {
	if recv == nil {
		return false
	}
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x] == recv
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}
