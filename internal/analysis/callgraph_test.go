package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// cgSrc exercises every edge kind the call graph claims: direct calls,
// interface method-set resolution, reference-taken-implies-called, and
// function literals attributed to their enclosing declaration.
const cgSrc = `package p

type hopper interface{ hop() }

type evt struct{}

func (e *evt) RunEvent() { helper(e) }

func helper(h hopper) { h.hop() }

func (e *evt) hop() { leaf() }

func leaf() {}

func cold() { leaf() }

func refTaker() { _ = refTaken }

func refTaken() {}

func closes() {
	f := func() { leaf() }
	f()
}
`

// cgTestPass type-checks cgSrc and wraps it in a Pass.
func cgTestPass(t *testing.T) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", cgSrc, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
}

func cgNodeByName(t *testing.T, g *callGraph, name string) *cgNode {
	t.Helper()
	for fn, n := range g.nodes {
		if fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no call-graph node named %s", name)
	return nil
}

func TestCallGraphReachability(t *testing.T) {
	pass := cgTestPass(t)
	g := buildCallGraph(pass)

	run := cgNodeByName(t, g, "RunEvent")
	reach := g.reachableFrom([]*cgNode{run})

	// RunEvent -> helper (direct) -> hop (interface resolution) -> leaf.
	for _, name := range []string{"RunEvent", "helper", "hop", "leaf"} {
		if !reach[cgNodeByName(t, g, name)] {
			t.Errorf("%s should be reachable from RunEvent", name)
		}
	}
	for _, name := range []string{"cold", "refTaker", "refTaken", "closes"} {
		if reach[cgNodeByName(t, g, name)] {
			t.Errorf("%s should NOT be reachable from RunEvent", name)
		}
	}
}

func TestCallGraphReferenceTaken(t *testing.T) {
	pass := cgTestPass(t)
	g := buildCallGraph(pass)

	// A bare reference counts as a potential call: reachability analyses
	// must not lose the target.
	reach := g.reachableFrom([]*cgNode{cgNodeByName(t, g, "refTaker")})
	if !reach[cgNodeByName(t, g, "refTaken")] {
		t.Error("refTaken should be reachable via its taken reference")
	}
}

func TestCallGraphFuncLitAttribution(t *testing.T) {
	pass := cgTestPass(t)
	g := buildCallGraph(pass)

	// The literal inside closes calls leaf; the edge belongs to closes.
	reach := g.reachableFrom([]*cgNode{cgNodeByName(t, g, "closes")})
	if !reach[cgNodeByName(t, g, "leaf")] {
		t.Error("leaf should be reachable from closes through its function literal")
	}
}

func TestCallGraphMethodOf(t *testing.T) {
	pass := cgTestPass(t)
	g := buildCallGraph(pass)

	evt := pass.Pkg.Scope().Lookup("evt").Type()
	if got := g.methodOf(types.NewPointer(evt), "RunEvent"); got == nil || got.fn.Name() != "RunEvent" {
		t.Errorf("methodOf(*evt, RunEvent) = %v, want the RunEvent node", got)
	}
	if got := g.methodOf(evt, "hop"); got == nil {
		t.Error("methodOf(evt, hop) should resolve through the pointer method set")
	}
	if got := g.methodOf(evt, "missing"); got != nil {
		t.Errorf("methodOf(evt, missing) = %v, want nil", got)
	}
}
