package analysis

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzDirective exercises the pure //tfcvet:allow text parser with
// arbitrary comment text. The suppression grammar is the one interface
// humans type by hand, so the parser must never panic and must uphold
// its classification invariants on any input:
//
//   - only texts starting with the directive prefix (followed by a
//     space, tab, or nothing) apply at all;
//   - a well-formed directive always carries at least one check name
//     and a non-empty justification;
//   - check names come back trimmed, comma-free, and alias-resolved;
//   - an unknown-check report really names a check outside the known
//     set;
//   - parsing is deterministic.
func FuzzDirective(f *testing.F) {
	// Valid spellings: each separator, lists, aliases, tab separation.
	f.Add("//tfcvet:allow detrand — seeded once at startup")
	f.Add("//tfcvet:allow simtime -- wall time never reaches results")
	f.Add("//tfcvet:allow mapiter: keys sorted on the line below")
	f.Add("//tfcvet:allow poolsafe,hotalloc — ownership transfer; amortized growth")
	f.Add("//tfcvet:allow wallclock — alias for detrand")
	f.Add("//tfcvet:allow\tshardsafe — tab after the prefix")
	// Malformed and near-miss spellings.
	f.Add("//tfcvet:allow")
	f.Add("//tfcvet:allow detrand")
	f.Add("//tfcvet:allow — reason but no check")
	f.Add("//tfcvet:allow nosuchcheck — bogus name")
	f.Add("//tfcvet:allow detrand — ")
	f.Add("//tfcvet:allowance — different word entirely")
	f.Add("// ordinary comment")
	f.Add("")
	f.Add("//tfcvet:allow ,,,: commas only")
	f.Add("//tfcvet:allow detrand—no space around the dash")

	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}

	f.Fuzz(func(t *testing.T, text string) {
		d := parseAllowDirective(text, known)
		again := parseAllowDirective(text, known)
		if !reflect.DeepEqual(d, again) {
			t.Fatalf("non-deterministic parse of %q: %+v vs %+v", text, d, again)
		}

		if !strings.HasPrefix(text, directivePrefix) {
			if d.applies {
				t.Fatalf("%q lacks the directive prefix but applies", text)
			}
		}
		if !d.applies {
			if d.ok || d.checks != nil || d.unknown != nil || d.reason != "" {
				t.Fatalf("non-applying parse of %q carries payload: %+v", text, d)
			}
			return
		}
		if !d.ok {
			// Malformed: no separator or an empty justification. Nothing
			// else may be populated — the caller reports one diagnostic.
			if d.checks != nil || d.unknown != nil || d.reason != "" {
				t.Fatalf("malformed parse of %q carries payload: %+v", text, d)
			}
			return
		}
		if len(d.checks) == 0 {
			t.Fatalf("well-formed parse of %q has no checks", text)
		}
		if d.reason == "" || d.reason != strings.TrimSpace(d.reason) {
			t.Fatalf("well-formed parse of %q has reason %q", text, d.reason)
		}
		for _, name := range d.checks {
			if name != strings.TrimSpace(name) || strings.Contains(name, ",") {
				t.Fatalf("check %q of %q is not a trimmed single name", name, text)
			}
			if _, isAlias := directiveAliases[name]; isAlias {
				t.Fatalf("check %q of %q survived alias resolution", name, text)
			}
		}
		if d.unknown != nil && known[*d.unknown] {
			t.Fatalf("parse of %q reports known check %q as unknown", text, *d.unknown)
		}
		if d.unknown == nil {
			for _, name := range d.checks {
				if !known[name] {
					t.Fatalf("parse of %q kept unknown check %q without reporting it", text, name)
				}
			}
		}
	})
}
