package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked package as the checker consumes it —
// produced either by the loader (standalone tfcvet, tests) or by the
// unitchecker protocol driver (go vet -vettool).
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Check runs the analyzers over pkg and returns the surviving
// diagnostics in (file, line, column) order. It applies the framework's
// cross-cutting policy:
//
//   - diagnostics positioned in _test.go files are dropped — the
//     determinism contracts govern simulation code, not test harnesses
//     (tests may time out on wall clocks, seed throwaway RNGs, etc.);
//   - diagnostics covered by a well-formed //tfcvet:allow directive are
//     dropped;
//   - malformed directives are themselves reported (check "directive").
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{"directive": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	idx := parseDirectives(pkg.Fset, pkg.Files, known)

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		diags = append(diags, pass.diagnostics...)
	}
	diags = append(diags, idx.bad...)

	// Analyzers that examine nested statements from more than one level
	// (e.g. poolsafe's branch walk) can report the same finding twice;
	// identical (pos, check, message) triples collapse to one.
	seen := make(map[Diagnostic]bool, len(diags))
	kept := diags[:0]
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		pos := pkg.Fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		if idx.suppressed(d.Check, d.Pos) {
			continue
		}
		kept = append(kept, d)
	}
	sort.SliceStable(kept, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(kept[i].Pos), pkg.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept, nil
}
