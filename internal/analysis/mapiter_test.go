package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestMapiter proves the mapiter analyzer flags map-iteration order
// escaping into output or returned slices, and accepts the
// collect-then-sort pattern and order-insensitive loops.
func TestMapiter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Mapiter, "mapiter")
}
