package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestProbepure proves the probepure analyzer holds probe context —
// interface implementations, *Probe-named factories, and everything
// they reach — to the read-only observer contract: no simulation-state
// writes, no scheduling, no Rand draws; a probe's own counters and the
// read-only accessor allowlist stay legal, as do wiring code and
// annotated sites.
func TestProbepure(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Probepure,
		"probepure")
}
