package analysis

import (
	"go/ast"
	"regexp"
)

// Simtime enforces the clock boundary: packages that run *inside* the
// discrete-event simulation must express time exclusively as sim.Time
// (integer virtual nanoseconds) and must never touch package time —
// neither time.Now nor "harmless" time.Duration arithmetic. A
// time.Duration smuggled into simulation code is a latent unit bug (it
// type-checks against int64 math) and an invitation to compare virtual
// timestamps against wall-clock quantities. The sim package's doc
// comment declares this contract ("deliberately distinct from
// time.Time/time.Duration so that wall-clock APIs cannot leak into
// simulated code"); this analyzer makes it law.
//
// Packages outside the simulation boundary (the runner, cmd/, root
// experiment plumbing) may use package time freely — subject to detrand
// for the wall-clock entry points.
var Simtime = &Analyzer{
	Name: "simtime",
	Doc:  "forbid package time (time.Time/time.Duration/wall-clock APIs) inside simulation packages; virtual time is sim.Time",
	Run:  runSimtime,
}

// SimtimeScope matches the import paths of the packages that live
// inside the simulation boundary. Var, not const, so a bring-up branch
// can widen or narrow the boundary in one place.
var SimtimeScope = regexp.MustCompile(
	`^tfcsim/internal/(sim|netsim|core|credit|tcp|dctcp|bfc|tinytcp|transport|faults|exp|telemetry|model|workload)($|/)`)

func runSimtime(pass *Pass) error {
	if !SimtimeScope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			path, name, isQualified := pkgPathOf(pass.TypesInfo, sel)
			if !isQualified || path != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"simulation package %s uses time.%s; inside the simulation boundary time is sim.Time on the simulator clock (annotate `//tfcvet:allow simtime — <reason>` if wall time is genuinely meant)",
				pass.Pkg.Path(), name)
			return true
		})
	}
	return nil
}
