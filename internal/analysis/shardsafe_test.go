package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestShardsafe proves the shardsafe analyzer flags event-reachable
// cross-shard writes, foreign-Simulator scheduling, and mutating calls
// across the Port.Peer boundary — interprocedurally — while leaving
// identity reads, Group.Post, setup code, and annotated sites alone.
// The fixture shadows the real tfcsim/internal/bfc import path to land
// inside the analyzer's package scope.
func TestShardsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Shardsafe,
		"tfcsim/internal/bfc")
}
