package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestAllowDirective proves the //tfcvet:allow grammar end to end:
// well-formed directives (em-dash and double-dash separators, trailing
// and standalone placement, the wallclock alias) suppress findings;
// reason-less or unknown-check directives are findings themselves.
func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Detrand, "directive")
}
