package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mapiter flags `for … range m` over a map where the iteration order —
// which Go randomizes on purpose — escapes into experiment output: the
// loop body writes to an output sink (fmt printing, io/csv/trace
// writers) using the key or value, or appends key/value-derived
// elements to a slice that the function returns without sorting. This
// is the bug class that silently breaks byte-identical CSVs across -j
// levels: everything type-checks, every individual line is right, and
// the file diff only shows up on a rerun.
//
// The approved pattern is to collect keys, sort them, and range over
// the sorted slice; a collect-then-sort loop is recognized and not
// flagged.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration whose nondeterministic order escapes into output or returned slices",
	Run:  runMapiter,
}

// mapiterSinkMethods are method names treated as output sinks
// regardless of receiver type — writers in the io/bufio/csv/json mould.
var mapiterSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteAll": true, "WriteRow": true, "Encode": true,
	"Print": true, "Printf": true, "Println": true,
}

// mapiterSinkPkgs are packages whose functions count as output sinks
// wholesale (the repo's trace emission layer).
var mapiterSinkPkgs = map[string]bool{
	"tfcsim/internal/trace": true,
}

func runMapiter(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var ftype *ast.FuncType
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, ftype = fn.Body, fn.Type
			case *ast.FuncLit:
				body, ftype = fn.Body, fn.Type
			default:
				return true
			}
			if body != nil {
				checkMapIterFunc(pass, ftype, body)
			}
			return true
		})
	}
	return nil
}

// checkMapIterFunc examines one function body (not descending into
// nested function literals, which are visited on their own).
func checkMapIterFunc(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	shallowInspect(body, func(n ast.Node) {
		rs, isRange := n.(*ast.RangeStmt)
		if !isRange {
			return
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		iterVars := rangeVars(pass, rs)
		if len(iterVars) == 0 {
			return // `for range m`: the body cannot observe order
		}
		checkMapRange(pass, rs, iterVars, ftype, body)
	})
}

// shallowInspect walks n without descending into nested function
// literals.
func shallowInspect(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if _, isLit := c.(*ast.FuncLit); isLit && c != n {
			return false
		}
		f(c)
		return true
	})
}

// rangeVars returns the objects bound to the range's key/value.
func rangeVars(pass *Pass, rs *ast.RangeStmt) []*types.Var {
	var vars []*types.Var
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, isIdent := e.(*ast.Ident)
		if !isIdent || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if v, isVar := obj.(*types.Var); isVar {
			vars = append(vars, v)
		}
	}
	return vars
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, iterVars []*types.Var, ftype *ast.FuncType, funcBody *ast.BlockStmt) {
	usesIterVar := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(c ast.Node) bool {
			id, isIdent := c.(*ast.Ident)
			if !isIdent {
				return true
			}
			if obj, isVar := pass.TypesInfo.Uses[id].(*types.Var); isVar {
				for _, v := range iterVars {
					if obj == v {
						found = true
					}
				}
			}
			return !found
		})
		return found
	}
	if !usesIterVar(rs.Body) {
		return
	}

	// Case 1: the body feeds an output sink.
	var sink *ast.CallExpr
	shallowInspect(rs.Body, func(n ast.Node) {
		call, isCall := n.(*ast.CallExpr)
		if sink != nil || !isCall {
			return
		}
		if isOutputSink(pass, call) {
			sink = call
		}
	})
	if sink != nil {
		pass.Reportf(rs.For,
			"map iteration order feeds output (%s); emit from a sorted key slice so results are byte-identical across runs",
			callName(sink))
		return
	}

	// Case 2: the body appends key/value-derived elements to an outer
	// slice that is returned without ever being sorted.
	shallowInspect(rs.Body, func(n ast.Node) {
		asg, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return
		}
		lhs, isIdent := asg.Lhs[0].(*ast.Ident)
		if !isIdent {
			return
		}
		call, isCall := asg.Rhs[0].(*ast.CallExpr)
		if !isCall || !isBuiltinAppend(pass, call) || len(call.Args) < 2 {
			return
		}
		target, isVar := pass.TypesInfo.Uses[lhs].(*types.Var)
		if !isVar {
			return
		}
		elems := false
		for _, arg := range call.Args[1:] {
			if usesIterVar(arg) {
				elems = true
			}
		}
		if !elems {
			return
		}
		if varSortedIn(pass, funcBody, target) {
			return
		}
		if varReturnedFrom(pass, ftype, funcBody, target) {
			pass.Reportf(asg.Pos(),
				"%s accumulates map-iteration results and is returned without sorting; its element order changes run to run",
				lhs.Name)
		}
	})
}

// isOutputSink reports whether the call writes somewhere a human or a
// results file can see.
func isOutputSink(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil {
		if mapiterSinkPkgs[pkg.Path()] {
			return true
		}
		if pkg.Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
			return true
		}
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		return mapiterSinkMethods[fn.Name()]
	}
	return false
}

// calleeFunc resolves the called function or method, if statically
// known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent {
		return false
	}
	b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && b.Name() == "append"
}

// varSortedIn reports whether v is passed to a sort.*/slices.Sort*
// call anywhere in the function body (the collect-then-sort pattern).
func varSortedIn(pass *Pass, body *ast.BlockStmt, v *types.Var) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || sorted {
			return !sorted
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(c ast.Node) bool {
				if id, isIdent := c.(*ast.Ident); isIdent && pass.TypesInfo.Uses[id] == v {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

// varReturnedFrom reports whether v escapes the function as (part of) a
// return value — mentioned in a return statement, or a named result.
func varReturnedFrom(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt, v *types.Var) bool {
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if pass.TypesInfo.Defs[name] == v {
					return true
				}
			}
		}
	}
	returned := false
	shallowInspect(body, func(n ast.Node) {
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || returned {
			return
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(c ast.Node) bool {
				if returned {
					return false
				}
				// len(xs)/cap(xs) are order-independent; the slice
				// itself does not escape through them.
				if call, isCall := c.(*ast.CallExpr); isCall {
					if b, isB := pass.TypesInfo.Uses[identOf(call.Fun)].(*types.Builtin); isB &&
						(b.Name() == "len" || b.Name() == "cap") {
						return false
					}
				}
				if id, isIdent := c.(*ast.Ident); isIdent && pass.TypesInfo.Uses[id] == v {
					returned = true
				}
				return !returned
			})
		}
	})
	return returned
}

// identOf returns the identifier of an expression if it is one (after
// stripping parens), else nil.
func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// callName renders a short name for diagnostics, e.g. "fmt.Fprintf" or
// "w.Write".
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, isIdent := fun.X.(*ast.Ident); isIdent {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
