package analysis

import (
	"go/ast"
)

// Detrand flags sources of nondeterminism: wall-clock reads, process
// identity, and the process-global math/rand generators. Every trial in
// this repository must be a pure function of its seed — all randomness
// flows from the per-trial *sim.Simulator.Rand (or an explicitly passed
// *rand.Rand), and time flows from the simulator clock. A wall-clock
// call anywhere in simulation code silently breaks byte-identical
// output across -j levels and reruns.
//
// Constructing a local generator (rand.New, rand.NewSource, rand.NewZipf)
// is fine — that is exactly how seeded randomness is supposed to enter —
// only the shared top-level generator and wall-clock entry points are
// flagged. Legitimate uses (e.g. the runner timing real trial wall time
// for Metrics.Wall) carry a //tfcvet:allow detrand — <reason> directive.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "flag wall-clock, process-identity, and global math/rand use that breaks per-seed trial determinism",
	Run:  runDetrand,
}

// detrandBanned maps package path → member name → short explanation.
var detrandBanned = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getpid": "depends on process identity",
	},
	"math/rand":    globalRandFuncs,
	"math/rand/v2": globalRandV2Funcs,
}

// globalRandFuncs are the math/rand package-level functions that draw
// from the shared global source (seeded from runtime entropy since
// go1.20). rand.New/NewSource/NewZipf construct explicit generators and
// are allowed.
var globalRandFuncs = func() map[string]string {
	m := make(map[string]string)
	for _, name := range []string{
		"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Uint32", "Uint64", "Float32", "Float64",
		"ExpFloat64", "NormFloat64", "Perm", "Shuffle", "Read", "Seed",
	} {
		m[name] = "draws from the process-global math/rand source"
	}
	return m
}()

var globalRandV2Funcs = func() map[string]string {
	m := make(map[string]string)
	for _, name := range []string{
		"Int", "IntN", "Int32", "Int32N", "Int64", "Int64N",
		"Uint", "UintN", "Uint32", "Uint32N", "Uint64", "Uint64N",
		"Float32", "Float64", "ExpFloat64", "NormFloat64",
		"Perm", "Shuffle", "N",
	} {
		m[name] = "draws from the process-global math/rand/v2 source"
	}
	return m
}()

func runDetrand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			path, name, isQualified := pkgPathOf(pass.TypesInfo, sel)
			if !isQualified {
				return true
			}
			why, banned := detrandBanned[path][name]
			if !banned {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s %s and breaks per-seed determinism; use the per-trial seeded source (sim.Simulator.Rand / the simulator clock) or annotate `//tfcvet:allow detrand — <reason>`",
				sel.X.(*ast.Ident).Name, name, why)
			return true
		})
	}
	return nil
}
