// Package loader parses and type-checks packages from source for the
// tfcvet analyzers, with no dependency on the go command or the module
// proxy (the build environment is fully offline). Import paths resolve
// through, in order: GOPATH-style source roots (analysistest fixtures
// under testdata/src), the enclosing module's directory mapping, and —
// for everything else, i.e. the standard library — the standard
// library's own source importer.
//
// This is the slow-but-simple path used by `tfcvet ./...` run directly
// and by the analysistest harness; `go vet -vettool=tfcvet` instead
// feeds the driver gc export data through the vet config protocol and
// never touches this package.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tfcsim/internal/analysis"
)

// Config says where import paths live on disk.
type Config struct {
	// Fset receives all parsed positions; one FileSet must be shared
	// across every package of a run. Nil means a fresh FileSet.
	Fset *token.FileSet
	// SrcRoots are GOPATH-style roots: import path P may live at
	// <root>/P. Earlier roots shadow later ones (and the module).
	SrcRoots []string
	// ModulePath/ModuleDir map the module prefix to its directory:
	// import path ModulePath/x/y lives at ModuleDir/x/y.
	ModulePath string
	ModuleDir  string
}

// Loader memoizes type-checked packages across Load calls.
type Loader struct {
	cfg     Config
	fset    *token.FileSet
	stdlib  types.ImporterFrom
	pkgs    map[string]*analysis.Package
	loading map[string]bool
}

// New returns a Loader for the given configuration.
func New(cfg Config) *Loader {
	fset := cfg.Fset
	if fset == nil {
		fset = token.NewFileSet()
	}
	return &Loader{
		cfg:     cfg,
		fset:    fset,
		stdlib:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*analysis.Package),
		loading: make(map[string]bool),
	}
}

// dirFor resolves an import path to a source directory, or ok=false if
// the path is not covered by the configured roots (i.e. stdlib).
func (l *Loader) dirFor(path string) (string, bool) {
	for _, root := range l.cfg.SrcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	if l.cfg.ModulePath != "" {
		if path == l.cfg.ModulePath {
			return l.cfg.ModuleDir, true
		}
		if rest, found := strings.CutPrefix(path, l.cfg.ModulePath+"/"); found {
			return filepath.Join(l.cfg.ModuleDir, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

// Load parses and type-checks the package at the given import path
// (which must resolve through the configured roots, not the stdlib).
func (l *Loader) Load(path string) (*analysis.Package, error) {
	if pkg, done := l.pkgs[path]; done {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	dir, local := l.dirFor(path)
	if !local {
		return nil, fmt.Errorf("cannot resolve %q to a source directory", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	tconf := &types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			return l.importPkg(imp, dir)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := tconf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		const maxShown = 8
		msgs := make([]string, 0, maxShown)
		for i, e := range typeErrs {
			if i == maxShown {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-maxShown))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}

	pkg := &analysis.Package{
		Path:      path,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importPkg satisfies imports encountered while type-checking: local
// roots first, then the standard library from source.
func (l *Loader) importPkg(path, fromDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, local := l.dirFor(path); local {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stdlib.ImportFrom(path, fromDir, 0)
}

// parseDir parses the non-test Go files of one directory, with
// comments (the directive and `// want` grammars live in comments).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
