package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestRankreq proves the rankreq analyzer classifies delivery event
// types interprocedurally (RunEvent reaching netsim Receive/Deliver) and
// flags every neutral-rank scheduling shape — Schedule, ScheduleAfter,
// constant NeutralRank through ScheduleAfterRank and Group.Post — while
// accepting explicit and dynamic ranks, non-delivery events, interface-
// typed targets, and annotated sites. The fixture lives at an
// unrestricted import path: the check covers out-of-tree transports.
func TestRankreq(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Rankreq,
		"rankreq")
}
