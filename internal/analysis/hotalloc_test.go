package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestHotalloc proves the hotalloc analyzer catches each seeded
// allocation shape — escaping closure, fmt call, ...interface{} boxing,
// un-presized append — anywhere in the RunEvent-reachable closure of the
// call graph, and certifies the approved shapes (pre-sized locals, s[:0]
// reuse, immediately-invoked literals, panic formatting, cold code,
// annotated pool growth). The fixture shadows the real
// tfcsim/internal/tcp import path to land under the BENCH_2 gate's
// package scope.
func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Hotalloc,
		"tfcsim/internal/tcp")
}
