package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestSimtime proves the simtime analyzer forbids package time inside
// the simulation boundary (the fixtures shadow the real
// tfcsim/internal/{faults,model,workload} import paths — the latter two
// joined the boundary in tfcvet v2) and ignores packages outside it.
func TestSimtime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Simtime,
		"tfcsim/internal/faults", "tfcsim/internal/model",
		"tfcsim/internal/workload", "simtime_outside")
}
