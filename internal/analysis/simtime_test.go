package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestSimtime proves the simtime analyzer forbids package time inside
// the simulation boundary (the fixture shadows the real
// tfcsim/internal/faults import path) and ignores packages outside it.
func TestSimtime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Simtime,
		"tfcsim/internal/faults", "simtime_outside")
}
