package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// This file holds the small forward-dataflow and escape helpers shared by
// the interprocedural analyzers. All of them are function-local,
// flow-insensitive approximations: they trade precision for zero false
// machinery, and every consumer pairs them with the //tfcvet:allow
// escape hatch for the deliberate exceptions.

// escapingFuncLits returns the function literals in body that escape
// their creation site: everything except a literal that is immediately
// invoked (`func() { ... }()`), which Go compiles without allocating a
// closure object on the heap in the common case. A literal passed as an
// argument, assigned, returned, or launched as a goroutine allocates.
func escapingFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	invoked := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if lit, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
			invoked[lit] = true
		}
		return true
	})
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, isLit := n.(*ast.FuncLit); isLit && !invoked[lit] {
			out = append(out, lit)
		}
		return true
	})
	return out
}

// presizedSliceVars runs the forward pass of the append check: it
// returns the local slice variables of body whose backing array is
// provably pre-sized — defined by a make with an explicit length or
// capacity, by a composite literal, or re-armed by the `s = s[:0]` reuse
// idiom. Appending to anything else (a bare `var s []T`, a struct field,
// a parameter of unknown capacity) can grow the backing array on the hot
// path.
func presizedSliceVars(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	presized := make(map[*types.Var]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id := identOf(lhs)
		if id == nil {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		v, isVar := obj.(*types.Var)
		if !isVar {
			return
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if presizingExpr(pass, rhs, v) {
			presized[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			if gd, isGen := st.Decl.(*ast.GenDecl); isGen {
				for _, spec := range gd.Specs {
					vs, isVal := spec.(*ast.ValueSpec)
					if !isVal || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, name := range vs.Names {
						record(name, vs.Values[i])
					}
				}
			}
		}
		return true
	})
	return presized
}

// presizingExpr reports whether rhs pre-sizes a slice bound to v: a make
// with explicit length/capacity, a composite literal, a reslice (the
// `s = buf[:0]` reuse idiom — a reslice shares its base's backing array,
// so appends only grow past the retained capacity, the amortized case),
// or `append(v, ...)` growth of an already-presized v.
func presizingExpr(pass *Pass, rhs ast.Expr, v *types.Var) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if id := identOf(e.Fun); id != nil {
			if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
				switch b.Name() {
				case "make":
					return len(e.Args) >= 2
				case "append":
					// `v = append(v, ...)` keeps v's status; appending into a
					// different variable does not transfer it.
					if len(e.Args) > 0 {
						if aid := identOf(e.Args[0]); aid != nil {
							return pass.TypesInfo.Uses[aid] == v
						}
					}
				}
			}
		}
	case *ast.CompositeLit:
		return true
	case *ast.SliceExpr:
		return true
	}
	return false
}

// taintSourceFn classifies a selector expression as a taint source; see
// taintedVars.
type taintSourceFn func(pass *Pass, sel *ast.SelectorExpr) bool

// taintedVars runs a small forward taint pass over body: a local
// variable becomes tainted when it is assigned an expression that
// contains a source (per isSource) or a previously tainted variable.
// The pass iterates to a fixpoint so declaration order does not matter;
// bodies are small enough that the quadratic worst case is irrelevant.
func taintedVars(pass *Pass, body *ast.BlockStmt, isSource taintSourceFn) map[*types.Var]bool {
	tainted := make(map[*types.Var]bool)
	for {
		grew := false
		mark := func(lhs ast.Expr, rhs ast.Expr) {
			id := identOf(lhs)
			if id == nil {
				return
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			v, isVar := obj.(*types.Var)
			if !isVar || tainted[v] {
				return
			}
			if exprTainted(pass, rhs, tainted, isSource) {
				tainted[v] = true
				grew = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						mark(st.Lhs[i], st.Rhs[i])
					}
				} else if len(st.Rhs) == 1 {
					// h, ok := peer.(*Switch): every binding inherits the
					// single source's taint.
					for i := range st.Lhs {
						mark(st.Lhs[i], st.Rhs[0])
					}
				}
			case *ast.RangeStmt:
				// `for _, x := range tainted` taints x.
				if exprTainted(pass, st.X, tainted, isSource) {
					if st.Key != nil {
						mark(st.Key, st.X)
					}
					if st.Value != nil {
						mark(st.Value, st.X)
					}
				}
			}
			return true
		})
		if !grew {
			return tainted
		}
	}
}

// exprTainted reports whether e is derived from a taint source: it is a
// source itself, mentions a tainted variable as its base, or is a method
// call / selector / index rooted at a tainted value (a getter on a
// foreign entity yields a foreign value).
func exprTainted(pass *Pass, e ast.Expr, tainted map[*types.Var]bool, isSource taintSourceFn) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, isVar := pass.TypesInfo.Uses[x].(*types.Var); isVar {
			return tainted[v]
		}
	case *ast.SelectorExpr:
		if isSource(pass, x) {
			return true
		}
		return exprTainted(pass, x.X, tainted, isSource)
	case *ast.CallExpr:
		if sel, isSel := ast.Unparen(x.Fun).(*ast.SelectorExpr); isSel {
			// A method's result inherits its receiver's taint; a plain
			// function call launders it (conservatively untainted).
			if _, isMethod := pass.TypesInfo.Selections[sel]; isMethod {
				return exprTainted(pass, sel.X, tainted, isSource)
			}
		}
	case *ast.IndexExpr:
		return exprTainted(pass, x.X, tainted, isSource)
	case *ast.StarExpr:
		return exprTainted(pass, x.X, tainted, isSource)
	case *ast.UnaryExpr:
		return exprTainted(pass, x.X, tainted, isSource)
	case *ast.TypeAssertExpr:
		// peer.(*Switch) narrows the type, not the ownership.
		return exprTainted(pass, x.X, tainted, isSource)
	}
	return false
}

// namedOf unwraps pointers and returns the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// definedIn reports whether t (possibly behind a pointer) is a named
// type defined in the package with the given import path.
func definedIn(t types.Type, pkgPath string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// constIntValue returns the constant integer value of e, if it has one.
func constIntValue(pass *Pass, e ast.Expr) (int64, bool) {
	tv, known := pass.TypesInfo.Types[e]
	if !known || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// recvExprOf returns the receiver expression of a method call, or nil.
func recvExprOf(call *ast.CallExpr) ast.Expr {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil
	}
	return sel.X
}

// isMethodCall reports whether call is a method call (not a qualified
// package function), returning the callee.
func isMethodCall(pass *Pass, call *ast.CallExpr) (*types.Func, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	if _, isMethod := pass.TypesInfo.Selections[sel]; !isMethod {
		return nil, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn, isFn
}
