// Package poolsafe is an analysistest fixture for the poolsafe
// analyzer: uses of a *netsim.Packet after ReleasePacket and retention
// of pooled packets in fields/slices must be flagged; branch-local
// releases, reassignment, and annotated ownership transfers must not.
package poolsafe

import "tfcsim/internal/netsim"

func useAfterRelease(net *netsim.Network) {
	p := net.NewPacket()
	p.Seq = 1
	net.ReleasePacket(p)
	p.Ack = 2 // want "p is used after being passed to ReleasePacket"
	_ = p.Seq // want "p is used after being passed to ReleasePacket"
}

func doubleRelease(net *netsim.Network) {
	p := net.NewPacket()
	net.ReleasePacket(p)
	net.ReleasePacket(p) // want "p is used after being passed to ReleasePacket"
}

func releaseInBranchThenUse(net *netsim.Network, drop bool) {
	p := net.NewPacket()
	if drop {
		net.ReleasePacket(p)
		return
	}
	p.Seq = 3 // ok: the releasing branch returned
}

func useInsideBranchAfterRelease(net *netsim.Network, cond bool) {
	p := net.NewPacket()
	net.ReleasePacket(p)
	if cond {
		p.Seq = 4 // want "p is used after being passed to ReleasePacket"
	}
}

func reassignedAfterRelease(net *netsim.Network) {
	p := net.NewPacket()
	net.ReleasePacket(p)
	p = net.NewPacket()
	p.Seq = 5 // ok: p holds a fresh packet
	net.ReleasePacket(p)
}

type retainer struct {
	stash *netsim.Packet
	queue []*netsim.Packet
}

func retainInField(r *retainer, net *netsim.Network) {
	p := net.NewPacket()
	r.stash = p // want "stored in a struct field"
}

func retainInSlice(r *retainer, net *netsim.Network) {
	p := net.NewPacket()
	r.queue = append(r.queue, p) // want "appended to a slice"
}

func retainInElement(byFlow map[int]*netsim.Packet, net *netsim.Network) {
	p := net.NewPacket()
	byFlow[7] = p // want "stored in a slice/map element"
}

func retainInLiteral(net *netsim.Network) retainer {
	p := net.NewPacket()
	return retainer{stash: p} // want "retained in a composite literal"
}

func annotatedHandoff(r *retainer, net *netsim.Network) {
	p := net.NewPacket()
	//tfcvet:allow poolsafe — fixture: deliberate ownership transfer to the retainer
	r.stash = p
}

func localUseIsFine(net *netsim.Network) int {
	p := net.NewPacket()
	p.Seq = 9
	n := p.Payload
	net.ReleasePacket(p)
	return n
}
