// Package rankreq is an analysistest fixture for the rankreq analyzer:
// an out-of-tree transport (the check runs in every package, registry
// entries included) whose delivery events must carry an explicit rank.
package rankreq

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// deliverEvt models a link delivery: its RunEvent hands a packet to a
// netsim node, so scheduling it neutrally breaks the sharded tie-break.
type deliverEvt struct {
	to   netsim.Node
	from *netsim.Port
	pkt  *netsim.Packet
}

func (e *deliverEvt) RunEvent() { e.to.Receive(e.pkt, e.from) }

// endpointEvt reaches the delivery sink one call deeper, through
// Endpoint.Deliver — classification is interprocedural.
type endpointEvt struct {
	ep  netsim.Endpoint
	pkt *netsim.Packet
}

func (e *endpointEvt) RunEvent() { e.handoff() }

func (e *endpointEvt) handoff() { e.ep.Deliver(e.pkt) }

// creditEvt is not a delivery: its RunEvent only updates transport
// state, so neutral scheduling is fine.
type creditEvt struct{ tokens int64 }

func (e *creditEvt) RunEvent() { e.tokens++ }

func schedule(s *sim.Simulator, g *sim.Group, d *deliverEvt, ep *endpointEvt, c *creditEvt, rank int32) {
	s.Schedule(10, d)                          // want "Schedule schedules a link-delivery event"
	s.ScheduleAfter(5, d)                      // want "ScheduleAfter schedules a link-delivery event"
	s.ScheduleAfterRank(5, d, sim.NeutralRank) // want "ScheduleAfterRank schedules a link-delivery event"
	s.ScheduleAfterRank(5, ep, -1)             // want "ScheduleAfterRank schedules a link-delivery event"
	g.Post(0, 1, 10, 5, sim.NeutralRank, d)    // want "Post schedules a link-delivery event"
	s.ScheduleAfterRank(5, d, 3)               // explicit constant rank
	s.ScheduleAfterRank(5, d, rank)            // dynamic rank: intentional
	g.Post(0, 1, 10, 5, rank, d)               // dynamic rank through the mailbox
	s.Schedule(10, c)                          // not a delivery class
	s.ScheduleAfter(5, c)                      // not a delivery class
	var tgt sim.EventTarget = d
	s.Schedule(10, tgt) // interface-typed target: concrete RunEvent not visible
}

// annotated shows the escape hatch for a delivery that is provably
// alone at its timestamp.
func annotated(s *sim.Simulator, d *deliverEvt) {
	//tfcvet:allow rankreq — fixture: control-plane injection at a timestamp no data event shares
	s.Schedule(10, d)
}
