// Package directive is an analysistest fixture for the //tfcvet:allow
// grammar itself: well-formed directives suppress, malformed ones are
// findings in their own right (and suppress nothing).
package directive

import "time"

func suppressed() {
	//tfcvet:allow detrand — justified: fixture exercising the standalone form
	_ = time.Now()
	t := time.Now() //tfcvet:allow detrand -- justified: double-dash separator form
	u := time.Now() //tfcvet:allow wallclock — justified: the wallclock alias resolves to detrand
	_, _ = t, u
}

func missingReason() {
	_ = time.Now() //tfcvet:allow detrand // want "time.Now reads the wall clock" "malformed"
}

func unknownCheck() {
	_ = time.Now() //tfcvet:allow nosuchcheck — because // want "time.Now reads the wall clock" "unknown check"
}

func unsuppressedLine() {
	//tfcvet:allow detrand — justified: only covers the next line
	_ = time.Now()
	_ = time.Now() // want "time.Now reads the wall clock"
}
