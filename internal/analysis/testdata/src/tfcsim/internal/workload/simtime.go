// Package workload is an analysistest fixture for the simtime analyzer.
// Its import path (tfcsim/internal/workload) joined the simulation
// boundary in tfcvet v2: arrival processes and flow-size draws are
// scheduled on the virtual clock, so wall-clock types must not leak in.
package workload

import "time"

func bad() {
	_ = 3 * time.Second // want "uses time.Second"
	var t time.Time     // want "uses time.Time"
	_ = t
}

func annotated() {
	//tfcvet:allow simtime — fixture: boundary interop with a wall-clock trace format
	_ = time.Millisecond
}
