// Package tcp is an analysistest fixture for the hotalloc analyzer. Its
// import path (tfcsim/internal/tcp) sits under the BENCH_2 allocation
// gate, so event-reachable code must be free of the four allocating
// shapes: escaping closures, fmt calls, ...interface{} boxing, and
// un-presized appends.
package tcp

import (
	"fmt"

	"tfcsim/internal/sim"
)

// retxEvt is a retransmission event whose paths seed one of each
// allocation shape — the ground-truth escapes the acceptance criteria
// require the analyzer to catch.
type retxEvt struct {
	s    *sim.Simulator
	segs []int64
	log  []string
}

func (e *retxEvt) RunEvent() {
	d := sim.Time(5)
	e.s.After(d, func() { e.fire() }) // want "closure escapes in event-reachable RunEvent"
	e.fire()
}

// fire is reachable only through RunEvent; the analyzer must follow the
// call edge to flag its body.
func (e *retxEvt) fire() {
	e.segs = append(e.segs, 1) // want "un-presized append in event-reachable fire"
	e.trace(1, 2)
}

// trace is two hops from the root — still reachable, still hot.
func (e *retxEvt) trace(seq, ack int64) {
	e.log = append(e.log, fmt.Sprintf("retx %d/%d", seq, ack)) // want "fmt.Sprintf called in event-reachable trace" "un-presized append in event-reachable trace"
	box(seq, ack)                                              // want "box boxes arguments into ...interface"
}

// box has a ...interface{} tail: every argument boxed into it escapes.
func box(args ...interface{}) int { return len(args) }

// cold is NOT reachable from any event root: the same constructs pass.
func cold(s *sim.Simulator, xs []int64) []int64 {
	s.After(1, func() { _ = fmt.Sprint("setup") })
	xs = append(xs, 7)
	return xs
}

// presized shows the approved hot-path shapes.
type flushEvt struct{ out []int64 }

func (e *flushEvt) RunEvent() {
	buf := make([]int64, 0, 8)
	buf = append(buf, 1) // pre-sized local: no growth in steady state
	scratch := e.out[:0]
	scratch = append(scratch, buf...) // s[:0] reuse idiom re-arms the capacity
	func() { e.out = scratch }()      // immediately-invoked literal does not escape
	if len(e.out) > 1<<20 {
		panic(fmt.Sprintf("flush overflow: %d", len(e.out))) // the sim is already dead
	}
}

// annotated shows the escape hatch for amortized pool growth.
type poolEvt struct{ free []*retxEvt }

func (e *poolEvt) RunEvent() {
	//tfcvet:allow hotalloc — fixture: free-list push reuses truncation-retained capacity
	e.free = append(e.free, &retxEvt{})
}
