// Package faults is an analysistest fixture for the simtime analyzer.
// Its import path (tfcsim/internal/faults) sits inside the simulation
// boundary, so any use of package time must be flagged.
package faults

import "time"

func bad() {
	var d time.Duration // want "uses time.Duration"
	_ = d
	_ = time.Now()           // want "uses time.Now"
	_ = 5 * time.Millisecond // want "uses time.Millisecond"
	var t time.Time          // want "uses time.Time"
	_ = t
}

func annotated() {
	//tfcvet:allow simtime — fixture: interop with a wall-clock API at the boundary
	var d time.Duration
	_ = d
}

// virtualTime shows the approved shape: durations as plain integers on
// the simulator clock (sim.Time in real code).
func virtualTime(now int64) int64 { return now + 5_000_000 }
