// Package sim is a fixture stub standing in for the real
// tfcsim/internal/sim: the shardsafe, rankreq, and probepure analyzers
// identify scheduling entry points by this package path and these method
// names, so the stub lets the fixtures exercise them hermetically
// (analysistest source roots shadow the module). Signatures mirror the
// real ones — rankreq locates the target and rank by argument index.
package sim

// Time is simulated time.
type Time int64

// NeutralRank mirrors the real dispatcher's "no rank" sentinel.
const NeutralRank int32 = -1

// EventTarget is the allocation-free event callback.
type EventTarget interface {
	RunEvent()
}

// Timer is a handle to a scheduled event.
type Timer struct{}

// Stop cancels the timer.
func (Timer) Stop() bool { return false }

// Simulator mirrors the real event engine's scheduling surface.
type Simulator struct{ now Time }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// At schedules fn at absolute time t.
func (s *Simulator) At(t Time, fn func()) Timer { return Timer{} }

// After schedules fn after delay d.
func (s *Simulator) After(d Time, fn func()) Timer { return Timer{} }

// Schedule schedules tgt at absolute time t with NeutralRank.
func (s *Simulator) Schedule(t Time, tgt EventTarget) Timer { return Timer{} }

// ScheduleAfter schedules tgt after delay d with NeutralRank.
func (s *Simulator) ScheduleAfter(d Time, tgt EventTarget) Timer { return Timer{} }

// ScheduleAfterRank schedules tgt after delay d with an explicit rank.
func (s *Simulator) ScheduleAfterRank(d Time, tgt EventTarget, rank int32) Timer { return Timer{} }

// Group mirrors the sharded dispatcher's mailbox surface.
type Group struct{}

// Post hands tgt to dst's shard via the epoch mailbox.
func (g *Group) Post(src, dst int, at, schedAt Time, rank int32, tgt EventTarget) {}

// Rand mirrors the deterministic per-trial stream accessor.
func (s *Simulator) Rand() *RandStream { return &RandStream{} }

// RandStream is a stand-in for *rand.Rand drawn from the trial seed.
type RandStream struct{}

// Intn consumes one draw.
func (r *RandStream) Intn(n int) int { return 0 }
