// Package bfc is an analysistest fixture for the shardsafe analyzer.
// Its import path (tfcsim/internal/bfc) sits inside the shard-safety
// boundary, so event-reachable code that mutates or schedules across
// the Port.Peer ownership line must be flagged.
package bfc

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// drainEvt is an event whose RunEvent crosses the shard boundary in
// every forbidden way.
type drainEvt struct {
	port *netsim.Port
	g    *sim.Group
	n    int64
}

func (e *drainEvt) RunEvent() {
	p := e.port
	peer := p.Peer                          // taint source: the far side of the link
	peer.Receive(nil, p)                    // want "Receive may mutate another shard's entity"
	peer.Sim().Schedule(0, e)               // want "Schedule schedules on another shard's Simulator"
	p.Peer.Sim().ScheduleAfterRank(1, e, 0) // want "ScheduleAfterRank schedules on another shard's Simulator"
	e.crossWrite(p)
	e.sameShard(p, e.g)
	e.launder(p)
}

// crossWrite is only reachable from RunEvent — the taint pass still runs
// on it because reachability is interprocedural. A type assertion
// narrows the type, not the ownership.
func (e *drainEvt) crossWrite(p *netsim.Port) {
	far, ok := p.Peer.(*netsim.Host)
	if ok {
		far.RxCount++ // want "write to another shard's entity"
	}
}

// sameShard shows the approved shapes: reads of foreign identity and the
// Group.Post mailbox are clean.
func (e *drainEvt) sameShard(p *netsim.Port, g *sim.Group) {
	id := p.Peer.ID() // reads are fine: identity feeds the mailbox
	g.Post(0, id, 10, 0, 3, e)
	p.EnqPackets++ // own-side port state: untainted
}

// launder documents the pass's known false negative: a plain function's
// result is conservatively clean, so routing a foreign value through one
// drops the taint. Kept here (unflagged) as the boundary of the check.
func (e *drainEvt) launder(p *netsim.Port) {
	h := identity(p.Peer).(*netsim.Host)
	h.RxCount++
}

func identity(n netsim.Node) netsim.Node { return n }

// setup is not reachable from any event root, so topology wiring may
// touch Peer freely.
func setup(p *netsim.Port, peer netsim.Node) {
	p.Peer = peer
	p.Peer.Receive(nil, p)
}

// annotatedEvt shows the escape hatch for sites the engine guarantees
// are shard-local.
type annotatedEvt struct{ port *netsim.Port }

func (e *annotatedEvt) RunEvent() {
	//tfcvet:allow shardsafe — fixture: delivery runs on the receiving shard by construction
	e.port.Peer.Receive(nil, e.port)
}
