// Package model is an analysistest fixture for the simtime analyzer.
// Its import path (tfcsim/internal/model) joined the simulation boundary
// in tfcvet v2: analytic models are evaluated on simulated quantities,
// so wall-clock types must not leak in.
package model

import "time"

func bad() {
	var d time.Duration // want "uses time.Duration"
	_ = d
	_ = time.Now() // want "uses time.Now"
}

// queueDelay shows the approved shape: durations as plain sim-clock
// integers.
func queueDelay(bytes, rate int64) int64 { return bytes / rate }
