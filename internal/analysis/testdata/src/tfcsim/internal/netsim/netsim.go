// Package netsim is a fixture stub standing in for the real
// tfcsim/internal/netsim: the poolsafe analyzer identifies pooled
// packets and releasing sinks by this package path, so the stub lets
// the fixtures exercise it hermetically (analysistest source roots
// shadow the module).
package netsim

// Packet mirrors the pooled packet type's shape.
type Packet struct {
	Seq     int64
	Ack     int64
	Payload int
}

// Network owns the packet pool.
type Network struct{}

// NewPacket returns a zeroed packet.
func (n *Network) NewPacket() *Packet { return &Packet{} }

// ReleasePacket returns p to the pool; p must not be used afterwards.
func (n *Network) ReleasePacket(p *Packet) {}

// Host is an attachment point mirroring netsim.Host.
type Host struct{ net *Network }

// Network returns the host's network.
func (h *Host) Network() *Network { return h.net }

// NewPacket allocates from the host's network pool.
func (h *Host) NewPacket() *Packet { return h.net.NewPacket() }
