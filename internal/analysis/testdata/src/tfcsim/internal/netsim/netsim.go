// Package netsim is a fixture stub standing in for the real
// tfcsim/internal/netsim: the poolsafe analyzer identifies pooled
// packets and releasing sinks by this package path, shardsafe identifies
// the Port.Peer ownership boundary, rankreq identifies Receive/Deliver
// delivery sinks, and probepure identifies the Probe observer interface
// — so the stub lets the fixtures exercise all of them hermetically
// (analysistest source roots shadow the module).
package netsim

import "tfcsim/internal/sim"

// Packet mirrors the pooled packet type's shape.
type Packet struct {
	Seq     int64
	Ack     int64
	Payload int
}

// FrameBytes returns the on-wire frame size.
func (p *Packet) FrameBytes() int { return p.Payload }

// Network owns the packet pool.
type Network struct{}

// NewPacket returns a zeroed packet.
func (n *Network) NewPacket() *Packet { return &Packet{} }

// ReleasePacket returns p to the pool; p must not be used afterwards.
func (n *Network) ReleasePacket(p *Packet) {}

// Node mirrors the real node interface: Receive is the delivery sink
// rankreq looks for.
type Node interface {
	ID() int
	Receive(pkt *Packet, from *Port)
	Sim() *sim.Simulator
}

// Endpoint mirrors the flow endpoint; Deliver is a delivery sink too.
type Endpoint interface {
	Deliver(pkt *Packet)
}

// Port is a unidirectional transmit port. Peer — the node on the far end
// of the link — is shardsafe's ownership boundary.
type Port struct {
	Owner Node
	Peer  Node
	Label string

	EnqPackets int64
	QBytes     int
}

// Sim returns the simulator driving this port's shard.
func (p *Port) Sim() *sim.Simulator { return nil }

// QueueBytes is a read-only observer of queue occupancy.
func (p *Port) QueueBytes() int { return p.QBytes }

// Enqueue admits a packet to the port.
func (p *Port) Enqueue(pkt *Packet) {}

// Probe observes forwarding-path events; implementations must be
// read-only (the contract probepure machine-checks).
type Probe interface {
	PortEnqueue(p *Port, pkt *Packet)
	PortDrop(p *Port, pkt *Packet)
}

// Host is an attachment point mirroring netsim.Host.
type Host struct {
	net *Network
	id  int

	RxCount int64
}

// Network returns the host's network.
func (h *Host) Network() *Network { return h.net }

// NewPacket allocates from the host's network pool.
func (h *Host) NewPacket() *Packet { return h.net.NewPacket() }

// ID returns the stable node identity.
func (h *Host) ID() int { return h.id }

// Receive implements Node.
func (h *Host) Receive(pkt *Packet, from *Port) {}

// Sim implements Node.
func (h *Host) Sim() *sim.Simulator { return nil }
