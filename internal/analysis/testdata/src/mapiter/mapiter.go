// Package mapiter is an analysistest fixture for the mapiter analyzer:
// map-iteration order escaping into output or returned slices must be
// flagged; the collect-then-sort pattern and order-insensitive loops
// must not.
package mapiter

import (
	"fmt"
	"io"
	"sort"
)

func badPrint(m map[string]int) {
	for k, v := range m { // want "map iteration order feeds output"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badWriter(w io.Writer, m map[string]float64) {
	for k := range m { // want "map iteration order feeds output"
		fmt.Fprintln(w, k)
	}
}

func badWriteMethod(b interface{ WriteString(string) (int, error) }, m map[string]int) {
	for k := range m { // want "map iteration order feeds output"
		b.WriteString(k)
	}
}

func badReturnedSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "keys accumulates map-iteration results and is returned without sorting"
	}
	return keys
}

func badNamedResult(m map[int]int) (out []int) {
	for _, v := range m {
		out = append(out, v) // want "out accumulates map-iteration results and is returned without sorting"
	}
	return
}

func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSortedEmission(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

func goodOrderInsensitive(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodLocalAccumulator(m map[string]int) int {
	var seen []string
	for k := range m {
		seen = append(seen, k)
	}
	// The slice's length is order-independent; the slice itself never
	// escapes.
	return len(seen)
}

func goodSliceRange(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

func annotated(m map[string]int) {
	for k := range m { //tfcvet:allow mapiter — fixture: debug dump, ordering genuinely irrelevant
		fmt.Println(k)
	}
}

// Telemetry-registry shape: a collector holding keyed per-trial sinks
// whose merged export must not depend on map order.
type trialSink struct {
	key      string
	counters map[string]int64
}

type collector struct {
	trials map[string]*trialSink
}

func badRegistryExport(w io.Writer, c *collector) {
	for key, t := range c.trials { // want "map iteration order feeds output"
		fmt.Fprintf(w, "%s: %d counters\n", key, len(t.counters))
	}
}

func badRegistrySnapshot(c *collector) []*trialSink {
	var out []*trialSink
	for _, t := range c.trials {
		out = append(out, t) // want "out accumulates map-iteration results and is returned without sorting"
	}
	return out
}

func goodRegistryExport(w io.Writer, c *collector) {
	keys := make([]string, 0, len(c.trials))
	for k := range c.trials {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := c.trials[k]
		names := make([]string, 0, len(t.counters))
		for n := range t.counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "%s/%s=%d\n", k, n, t.counters[n])
		}
	}
}
