// Package detrand is an analysistest fixture for the detrand analyzer:
// wall-clock, process-identity, and global math/rand uses must be
// flagged; explicitly seeded generators and annotated sites must not.
package detrand

import (
	"math/rand"
	"os"
	"time"
)

func bad() {
	_ = time.Now()                     // want "time.Now reads the wall clock"
	start := time.Now()                // want "time.Now reads the wall clock"
	_ = time.Since(start)              // want "time.Since reads the wall clock"
	_ = time.Until(start)              // want "time.Until reads the wall clock"
	_ = os.Getpid()                    // want "os.Getpid depends on process identity"
	_ = rand.Intn(10)                  // want "rand.Intn draws from the process-global math/rand source"
	_ = rand.Float64()                 // want "rand.Float64 draws from the process-global math/rand source"
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the process-global math/rand source"
}

func classicSeedBug() {
	// The canonical anti-pattern: seeding from the wall clock.
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want "time.Now reads the wall clock"
}

func good(seed int64) {
	// Explicit generators are how seeded randomness is supposed to
	// enter; constructing them is fine.
	r := rand.New(rand.NewSource(seed))
	_ = r.Intn(10)
	_ = r.Float64()
}

func annotated() {
	//tfcvet:allow detrand — fixture: wall time never reaches results
	_ = time.Now()
	start := time.Now() //tfcvet:allow wallclock — fixture: trailing form with alias
	_ = start
}
