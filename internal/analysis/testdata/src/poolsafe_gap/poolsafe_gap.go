// Package poolsafe_gap is the known-false-negative corpus for the
// poolsafe analyzer: every function here has a real pool-lifetime bug
// that the intra-procedural, alias-unaware design documented on
// poolsafe.go deliberately does not catch. The companion test asserts
// ZERO diagnostics — it is a ratchet, not a wishlist. If a future
// poolsafe (or a call-graph-backed successor, see callgraph.go) starts
// catching one of these, the test fails, and the case graduates into the
// poolsafe fixture with a // want annotation.
//
// tfcvet v2's call-graph layer (shardsafe, rankreq, hotalloc, probepure)
// closes the *reachability* half of this gap — obligations now follow
// call edges — but poolsafe's released-variable state is still
// per-function and per-variable, which is what these cases exploit.
package poolsafe_gap

import "tfcsim/internal/netsim"

// aliasRelease: the release happens through alias q, so variable p is
// never marked released. Alias-unaware by design (no points-to
// analysis); the pooled read of p.Seq is a real use-after-release.
func aliasRelease(net *netsim.Network) int64 {
	p := net.NewPacket()
	q := p
	net.ReleasePacket(q)
	return p.Seq
}

// helperRelease: the release is one call deep. poolsafe's released-state
// tracking is intra-procedural, so the use after discard(...) is not
// seen. The v2 call graph could carry a "releases its argument" summary
// per function; until it does, this documents the boundary.
func helperRelease(net *netsim.Network) int64 {
	p := net.NewPacket()
	discard(net, p)
	return p.Ack
}

func discard(net *netsim.Network, p *netsim.Packet) {
	net.ReleasePacket(p)
}

// bothArmsRelease: every path through the if releases p, but poolsafe
// gives each branch a private copy of the released state precisely so
// one-arm releases do not poison the merge — the price is missing the
// released-on-every-arm case.
func bothArmsRelease(net *netsim.Network, fast bool) int64 {
	p := net.NewPacket()
	if fast {
		net.ReleasePacket(p)
	} else {
		net.ReleasePacket(p)
	}
	return p.Seq
}

// loopCarried: the release in iteration i is followed by a use in
// iteration i+1. The straight-line walk sees the use before the release
// inside one iteration and does not model the back edge.
func loopCarried(net *netsim.Network, n int) int64 {
	var sum int64
	p := net.NewPacket()
	for i := 0; i < n; i++ {
		sum += p.Seq
		net.ReleasePacket(p)
	}
	return sum
}

// escapedThenReleased: the packet is published through a channel and
// released afterwards; the concurrent reader races the recycle.
// Retention via channel send is not one of poolsafe's retention shapes
// (field/element/composite/append).
func escapedThenReleased(net *netsim.Network, ch chan *netsim.Packet) {
	p := net.NewPacket()
	ch <- p
	net.ReleasePacket(p)
}
