// Package simtime_outside is an analysistest fixture proving the
// simtime analyzer's scoping: this import path is outside the
// simulation boundary, so package time is free to use here (detrand
// still governs the wall-clock entry points, but that is a different
// analyzer).
package simtime_outside

import "time"

func fine() time.Duration {
	var d time.Duration = 3 * time.Second
	return d
}
