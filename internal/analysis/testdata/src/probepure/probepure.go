// Package probepure is an analysistest fixture for the probepure
// analyzer: telemetry sinks implementing the netsim.Probe observer
// interface, plus the factory pattern (a *Probe method returning the
// closure that becomes the installed probe body).
package probepure

import (
	"math/rand"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// countProbe implements netsim.Probe (root via the interface and the
// receiver name): it must observe without touching the simulation.
type countProbe struct {
	enq   int64
	drops int64
	hist  []int
}

func (c *countProbe) PortEnqueue(p *netsim.Port, pkt *netsim.Packet) {
	c.enq++ // a probe owns its counters
	c.hist = append(c.hist, p.QueueBytes())
	p.EnqPackets++           // want "probe code in PortEnqueue writes simulation state"
	p.Enqueue(pkt)           // want "probe code in PortEnqueue calls p.Enqueue"
	p.Sim().Schedule(0, nil) // want "probe code in PortEnqueue schedules an event"
	_ = p.Sim().Rand()       // want "probe code in PortEnqueue obtains a simulation Rand stream"
	_ = rand.Intn(4)         // want "probe code in PortEnqueue touches math/rand"
	c.note(p)
}

func (c *countProbe) PortDrop(p *netsim.Port, pkt *netsim.Packet) {
	c.drops++
	_ = pkt.FrameBytes() // value-receiver-free read accessor: fine
}

// note is reachable from a probe root: the purity obligation follows the
// call graph.
func (c *countProbe) note(p *netsim.Port) {
	p.QBytes = 0 // want "probe code in note writes simulation state"
}

// Tracker shows the factory pattern: MarkProbe's returned closure is the
// probe body, and function literals are attributed to their enclosing
// declaration.
type Tracker struct{ marks int64 }

func (t *Tracker) MarkProbe() func(p *netsim.Port) {
	return func(p *netsim.Port) {
		t.marks++
		p.EnqPackets = 0 // want "probe code in MarkProbe writes simulation state"
	}
}

// install is ordinary wiring code, not probe context: it may mutate
// freely.
func install(n *netsim.Network, p *netsim.Port, s *sim.Simulator) {
	p.EnqPackets = 0
	s.Schedule(0, nil)
}

// annotated shows the escape hatch.
type flushProbe struct{ port *netsim.Port }

func (f *flushProbe) PortEnqueue(p *netsim.Port, pkt *netsim.Packet) {
	//tfcvet:allow probepure — fixture: debug probe variant that intentionally resets the port counter
	p.EnqPackets = 0
}

func (f *flushProbe) PortDrop(p *netsim.Port, pkt *netsim.Packet) {}
