// Package probepure is an analysistest fixture for the probepure
// analyzer: telemetry sinks implementing the netsim.Probe observer
// interface, plus the factory pattern (a *Probe method returning the
// closure that becomes the installed probe body).
package probepure

import (
	"math/rand"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// countProbe implements netsim.Probe (root via the interface and the
// receiver name): it must observe without touching the simulation.
type countProbe struct {
	enq   int64
	drops int64
	hist  []int
}

func (c *countProbe) PortEnqueue(p *netsim.Port, pkt *netsim.Packet) {
	c.enq++ // a probe owns its counters
	c.hist = append(c.hist, p.QueueBytes())
	p.EnqPackets++           // want "probe code in PortEnqueue writes simulation state"
	p.Enqueue(pkt)           // want "probe code in PortEnqueue calls p.Enqueue"
	p.Sim().Schedule(0, nil) // want "probe code in PortEnqueue schedules an event"
	_ = p.Sim().Rand()       // want "probe code in PortEnqueue obtains a simulation Rand stream"
	_ = rand.Intn(4)         // want "probe code in PortEnqueue touches math/rand"
	c.note(p)
}

func (c *countProbe) PortDrop(p *netsim.Port, pkt *netsim.Packet) {
	c.drops++
	_ = pkt.FrameBytes() // value-receiver-free read accessor: fine
}

// note is reachable from a probe root: the purity obligation follows the
// call graph.
func (c *countProbe) note(p *netsim.Port) {
	p.QBytes = 0 // want "probe code in note writes simulation state"
}

// Tracker shows the factory pattern: MarkProbe's returned closure is the
// probe body, and function literals are attributed to their enclosing
// declaration.
type Tracker struct{ marks int64 }

func (t *Tracker) MarkProbe() func(p *netsim.Port) {
	return func(p *netsim.Port) {
		t.marks++
		p.EnqPackets = 0 // want "probe code in MarkProbe writes simulation state"
	}
}

// install is ordinary wiring code, not probe context: it may mutate
// freely.
func install(n *netsim.Network, p *netsim.Port, s *sim.Simulator) {
	p.EnqPackets = 0
	s.Schedule(0, nil)
}

// annotated shows the escape hatch.
type flushProbe struct{ port *netsim.Port }

func (f *flushProbe) PortEnqueue(p *netsim.Port, pkt *netsim.Packet) {
	//tfcvet:allow probepure — fixture: debug probe variant that intentionally resets the port counter
	p.EnqPackets = 0
}

func (f *flushProbe) PortDrop(p *netsim.Port, pkt *netsim.Packet) {}

// tokenWatchdog mirrors obs's invariant predicates (root via the
// receiver-name Watchdog suffix): a watchdog runs inside probe
// callbacks on the forwarding path and must observe without touching
// the simulation.
type tokenWatchdog struct{ tripped bool }

func (w *tokenWatchdog) check(p *netsim.Port) {
	if w.tripped {
		return
	}
	w.tripped = true // a watchdog owns its trip latch
	if p.QueueBytes() > 0 {
		p.QBytes = 0 // want "probe code in check writes simulation state"
	}
}

// takeSnapshot mirrors obs's endpoint state readers (root via the
// Snapshot name suffix): sampling live simulator state must be a pure
// read whether it runs as a virtual-time event or behind HTTP.
func takeSnapshot(p *netsim.Port, s *sim.Simulator) int {
	s.After(1, nil) // want "probe code in takeSnapshot schedules an event"
	return p.QueueBytes()
}

// chainProbe forwards into another probe: allowed — the callee is a
// *Probe interface implementation held to the same contract as a root.
type chainProbe struct{ next netsim.Probe }

func (c *chainProbe) PortEnqueue(p *netsim.Port, pkt *netsim.Packet) {
	if c.next != nil {
		c.next.PortEnqueue(p, pkt)
	}
}

func (c *chainProbe) PortDrop(p *netsim.Port, pkt *netsim.Packet) {}
