package analysis_test

import (
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/analysistest"
)

// TestDetrand proves the detrand analyzer catches wall-clock reads,
// process identity, and global math/rand draws, while letting
// explicitly seeded generators and annotated sites through.
func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Detrand, "detrand")
}
