package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolsafe guards the packet-pool lifetime contract (DESIGN.md,
// "Performance"): once a *netsim.Packet is handed to ReleasePacket its
// memory may be zeroed and handed to the next NewPacket caller, so any
// later read or write through the same variable is a use-after-release
// — under pooling it corrupts an unrelated in-flight packet, and the
// symptom (a wrong header field several simulated microseconds later)
// is about as far from the cause as bugs get.
//
// Two checks, both intra-procedural and alias-unaware by design:
//
//  1. use-after-release: within one function, a variable passed to a
//     releasing sink (Network.ReleasePacket / Host-level wrappers — any
//     netsim function or method named ReleasePacket) must not be used
//     again on the same straight-line path. Releases inside a
//     conditional branch do not poison code after the branch
//     (conservative: no false positives from "released on one arm").
//     Reassigning the variable (p = net.NewPacket()) clears its
//     released state.
//
//  2. retention: outside package netsim itself (whose queues ARE the
//     ownership mechanism), storing a *netsim.Packet into a struct
//     field, slice/map element, or composite literal is flagged —
//     pooled packets are owned by exactly one queue or in-flight event,
//     and a transport that squirrels one away will read recycled
//     memory. Deliberate ownership transfer gets a
//     //tfcvet:allow poolsafe directive with its justification.
var Poolsafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "flag use-after-release and out-of-band retention of pooled *netsim.Packet values",
	Run:  runPoolsafe,
}

// packetPkgPath is the package that owns the pooled packet type.
const packetPkgPath = "tfcsim/internal/netsim"

// isPacketPtr reports whether t is *netsim.Packet.
func isPacketPtr(t types.Type) bool {
	ptr, isPtr := t.(*types.Pointer)
	if !isPtr {
		return false
	}
	named, isNamed := ptr.Elem().(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Packet" && obj.Pkg() != nil && obj.Pkg().Path() == packetPkgPath
}

func runPoolsafe(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			poolsafeStmts(pass, body.List, make(map[*types.Var]token.Position))
			if pass.Pkg.Path() != packetPkgPath {
				poolsafeRetention(pass, body)
			}
			return true
		})
	}
	return nil
}

// poolsafeStmts walks a statement list in order, tracking which packet
// variables have been released. Branch bodies get a copy of the state:
// their releases do not escape the branch, but uses inside them of
// already-released variables are still caught.
func poolsafeStmts(pass *Pass, stmts []ast.Stmt, released map[*types.Var]token.Position) {
	for _, s := range stmts {
		poolsafeStmt(pass, s, released)
	}
}

func poolsafeStmt(pass *Pass, s ast.Stmt, released map[*types.Var]token.Position) {
	// Any use of an already-released variable anywhere in this
	// statement (branches included) is a finding.
	reportReleasedUses(pass, s, released)

	switch st := s.(type) {
	case *ast.BlockStmt:
		poolsafeStmts(pass, st.List, released)
	case *ast.LabeledStmt:
		poolsafeStmt(pass, st.Stmt, released)
	case *ast.IfStmt:
		branch := copyReleased(released)
		if st.Init != nil {
			poolsafeStmt(pass, st.Init, branch)
		}
		poolsafeStmts(pass, st.Body.List, branch)
		if st.Else != nil {
			poolsafeStmt(pass, st.Else, copyReleased(released))
		}
	case *ast.ForStmt:
		poolsafeStmts(pass, st.Body.List, copyReleased(released))
	case *ast.RangeStmt:
		poolsafeStmts(pass, st.Body.List, copyReleased(released))
	case *ast.SwitchStmt:
		for _, clause := range st.Body.List {
			if cc, isCase := clause.(*ast.CaseClause); isCase {
				poolsafeStmts(pass, cc.Body, copyReleased(released))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range st.Body.List {
			if cc, isCase := clause.(*ast.CaseClause); isCase {
				poolsafeStmts(pass, cc.Body, copyReleased(released))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range st.Body.List {
			if cc, isComm := clause.(*ast.CommClause); isComm {
				poolsafeStmts(pass, cc.Body, copyReleased(released))
			}
		}
	case *ast.ExprStmt:
		// A straight-line release poisons the variable for the rest of
		// this block.
		for _, v := range releasedVars(pass, st.X) {
			released[v] = pass.Fset.Position(st.X.Pos())
		}
	case *ast.AssignStmt:
		// p = <fresh value> resurrects p.
		for i, lhs := range st.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				continue
			}
			v, isVar := pass.TypesInfo.Uses[id].(*types.Var)
			if !isVar {
				continue
			}
			if _, wasReleased := released[v]; wasReleased && i < len(st.Rhs) {
				delete(released, v)
			}
		}
	}
}

// reportReleasedUses flags reads/writes of released variables within s.
// It does not descend into nested function literals (a closure may run
// before the release ever happens). A plain identifier on the left of
// an assignment is a rebind, not a use, and is skipped.
func reportReleasedUses(pass *Pass, s ast.Stmt, released map[*types.Var]token.Position) {
	if len(released) == 0 {
		return
	}
	rebinds := make(map[*ast.Ident]bool)
	shallowInspect(s, func(n ast.Node) {
		if asg, isAssign := n.(*ast.AssignStmt); isAssign {
			for _, lhs := range asg.Lhs {
				if id := identOf(lhs); id != nil {
					rebinds[id] = true
				}
			}
		}
	})
	shallowInspect(s, func(n ast.Node) {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || rebinds[id] {
			return
		}
		v, isVar := pass.TypesInfo.Uses[id].(*types.Var)
		if !isVar {
			return
		}
		if at, wasReleased := released[v]; wasReleased {
			pass.Reportf(id.Pos(),
				"%s is used after being passed to ReleasePacket at line %d; a released packet may already be recycled by another NewPacket caller",
				id.Name, at.Line)
		}
	})
}

// releasedVars returns the packet variables that expr hands to a
// releasing sink.
func releasedVars(pass *Pass, expr ast.Expr) []*types.Var {
	var vars []*types.Var
	shallowInspect(expr, func(n ast.Node) {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || !isReleaseCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			id, isIdent := ast.Unparen(arg).(*ast.Ident)
			if !isIdent {
				continue
			}
			if v, isVar := pass.TypesInfo.Uses[id].(*types.Var); isVar && isPacketPtr(v.Type()) {
				vars = append(vars, v)
			}
		}
	})
	return vars
}

// isReleaseCall reports whether call invokes a releasing sink: a
// function or method named ReleasePacket defined in package netsim.
func isReleaseCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Name() == "ReleasePacket" &&
		fn.Pkg() != nil && fn.Pkg().Path() == packetPkgPath
}

// poolsafeRetention flags packet pointers stored where they outlive the
// statement: struct fields, slice/map elements, composite literals, and
// append calls.
func poolsafeRetention(pass *Pass, body *ast.BlockStmt) {
	shallowInspect(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				break // tuple assignment from a call: no direct packet expr
			}
			for i, lhs := range st.Lhs {
				if !isPacketPtr(pass.TypesInfo.TypeOf(st.Rhs[i])) {
					continue
				}
				switch lhs.(type) {
				case *ast.SelectorExpr:
					pass.Reportf(st.Pos(),
						"pooled *netsim.Packet stored in a struct field; packets are owned by one queue/event at a time and may be recycled under it (annotate `//tfcvet:allow poolsafe — <reason>` for deliberate ownership transfer)")
				case *ast.IndexExpr:
					pass.Reportf(st.Pos(),
						"pooled *netsim.Packet stored in a slice/map element; packets are owned by one queue/event at a time and may be recycled under it (annotate `//tfcvet:allow poolsafe — <reason>` for deliberate ownership transfer)")
				}
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass, st) {
				for _, arg := range st.Args[1:] {
					if isPacketPtr(pass.TypesInfo.TypeOf(arg)) {
						pass.Reportf(st.Pos(),
							"pooled *netsim.Packet appended to a slice; packets are owned by one queue/event at a time and may be recycled under it (annotate `//tfcvet:allow poolsafe — <reason>` for deliberate ownership transfer)")
						break
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range st.Elts {
				expr := elt
				if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
					expr = kv.Value
				}
				if isPacketPtr(pass.TypesInfo.TypeOf(expr)) {
					pass.Reportf(expr.Pos(),
						"pooled *netsim.Packet retained in a composite literal; packets are owned by one queue/event at a time and may be recycled under it (annotate `//tfcvet:allow poolsafe — <reason>` for deliberate ownership transfer)")
				}
			}
		}
	})
}

// copyReleased clones the released-variable state for a branch body.
func copyReleased(m map[*types.Var]token.Position) map[*types.Var]token.Position {
	c := make(map[*types.Var]token.Position, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
