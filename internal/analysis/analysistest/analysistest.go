// Package analysistest runs one tfcvet analyzer over fixture packages
// under testdata/src and checks its diagnostics against `// want`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest
// closely enough that the fixtures would port unchanged.
//
// Grammar: a fixture line that should trigger N diagnostics carries a
// trailing comment
//
//	code() // want "regexp1" "regexp2"
//
// where each quoted string is a regular expression that must match the
// diagnostic's message. Every diagnostic must be wanted and every want
// must be matched, position-exact to the line. //tfcvet:allow
// directives are honored by the checker, so fixtures can (and do) prove
// the suppression path too.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/loader"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// expectation is one `// want` regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package from <testdata>/src/<path>, runs the
// analyzer through the shared checker, and reports any mismatch between
// diagnostics and // want expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	ld := loader.New(loader.Config{
		SrcRoots: []string{filepath.Join(testdata, "src")},
	})
	for _, path := range paths {
		pkg, err := ld.Load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := analysis.Check(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("checking fixture %s: %v", path, err)
			continue
		}
		checkExpectations(t, pkg, diags)
	}
}

// wantRE matches a want clause either as the whole comment
// (`// want "..."`) or appended to another comment — notably a
// directive-fixture line like `//tfcvet:allow x // want "malformed"`.
var wantRE = regexp.MustCompile(`(?:^//\s*|// ?)want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)
var wantStrRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !strings.HasPrefix(text, "//") {
					continue
				}
				m := wantRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantStrRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want string %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Check, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation at the diagnostic's line
// whose regexp matches.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
