package credit

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// rig: n senders -> sw -> recv with the credit shaper attached.
type rig struct {
	s       *sim.Simulator
	senders []*netsim.Host
	recv    *netsim.Host
	sw      *netsim.Switch
	sh      *Shaper
	bott    *netsim.Port
}

func newRig(n, buf int) *rig {
	s := sim.New(21)
	net := netsim.NewNetwork(s)
	sw := net.NewSwitch("sw")
	recv := net.NewHost("recv")
	recv.ProcJitter = 10 * sim.Microsecond
	cfg := netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond}
	r := &rig{s: s, recv: recv, sw: sw}
	for i := 0; i < n; i++ {
		h := net.NewHost("h")
		h.ProcJitter = 10 * sim.Microsecond
		net.Connect(h, sw, cfg)
		r.senders = append(r.senders, h)
	}
	net.Connect(sw, recv, netsim.LinkConfig{
		Rate: netsim.Gbps, Delay: 5 * sim.Microsecond, BufA: buf,
	})
	net.ComputeRoutes()
	r.sh = AttachShaper(s, sw, 0)
	r.bott = sw.PortTo(recv.ID())
	return r
}

func (r *rig) dial(i int, flow netsim.FlowID, opts ...func(*Config)) (*Sender, *Receiver) {
	cfg := Config{Sim: r.s, Local: r.senders[i], Peer: r.recv, Flow: flow}
	for _, o := range opts {
		o(&cfg)
	}
	return Dial(cfg)
}

func TestSingleTransferCompletes(t *testing.T) {
	r := newRig(1, 256<<10)
	done := false
	snd, rcv := r.dial(0, 1, func(c *Config) { c.OnComplete = func() { done = true } })
	r.s.At(0, func() {
		snd.Open()
		snd.Send(1 << 20)
		snd.Close()
	})
	r.s.RunUntil(sim.Second)
	if !done {
		t.Fatal("transfer did not complete")
	}
	if rcv.Received() != 1<<20 {
		t.Fatalf("received %d", rcv.Received())
	}
	if snd.Stats().Timeouts != 0 {
		t.Fatalf("timeouts = %d", snd.Stats().Timeouts)
	}
}

func TestRateRampsToLineRate(t *testing.T) {
	r := newRig(1, 256<<10)
	snd, rcv := r.dial(0, 1)
	r.s.At(0, func() { snd.Open(); snd.Send(1 << 30) })
	r.s.RunUntil(100 * sim.Millisecond)
	base := rcv.Received()
	r.s.RunUntil(300 * sim.Millisecond)
	goodput := float64(rcv.Received()-base) * 8 / 0.2
	// Waste feedback should push the credit rate near the max.
	if goodput < 0.80e9 {
		t.Fatalf("goodput %.1f Mbps, want near line rate", goodput/1e6)
	}
	if r.bott.Drops != 0 {
		t.Fatal("credited data must not drop")
	}
}

func TestIncastNoDataLoss(t *testing.T) {
	// The headline property shared with TFC: high fan-in without data
	// loss, because the shaper drops excess *credits* instead.
	const n = 60
	r := newRig(n, 64<<10)
	done := 0
	for i := 0; i < n; i++ {
		snd, _ := r.dial(i, netsim.FlowID(i+1),
			func(c *Config) { c.OnComplete = func() { done++ } })
		r.s.At(0, func() {
			snd.Open()
			snd.Send(64 << 10)
			snd.Close()
		})
	}
	r.s.RunUntil(5 * sim.Second)
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
	if r.bott.Drops != 0 {
		t.Fatalf("data drops = %d, want 0 (credits should be shed instead)", r.bott.Drops)
	}
	if r.sh.Dropped == 0 {
		t.Fatal("shaper never shed credits at 60-way fan-in")
	}
}

func TestFairnessTwoFlows(t *testing.T) {
	r := newRig(2, 256<<10)
	a, _ := r.dial(0, 1)
	b, _ := r.dial(1, 2)
	r.s.At(0, func() { a.Open(); a.Send(1 << 30) })
	r.s.At(0, func() { b.Open(); b.Send(1 << 30) })
	r.s.RunUntil(200 * sim.Millisecond)
	b1, b2 := a.Acked(), b.Acked()
	r.s.RunUntil(500 * sim.Millisecond)
	d1, d2 := a.Acked()-b1, b.Acked()-b2
	ratio := float64(d1) / float64(d2)
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("share ratio %.2f, want roughly fair", ratio)
	}
}

func TestQueueStaysSmall(t *testing.T) {
	r := newRig(4, 256<<10)
	for i := 0; i < 4; i++ {
		snd, _ := r.dial(i, netsim.FlowID(i+1))
		r.s.At(0, func() { snd.Open(); snd.Send(1 << 30) })
	}
	r.s.RunUntil(300 * sim.Millisecond)
	// Credited data is paced at the shaper: standing queue ~ a few frames.
	if r.bott.MaxQueue > 40<<10 {
		t.Fatalf("max queue %dKB, want small (credit-paced)", r.bott.MaxQueue>>10)
	}
	if r.bott.Drops != 0 {
		t.Fatal("drops under credit pacing")
	}
}

func TestSilentFlowStopsCredits(t *testing.T) {
	r := newRig(1, 256<<10)
	snd, rcv := r.dial(0, 1)
	r.s.At(0, func() { snd.Open(); snd.Send(256 << 10) })
	r.s.RunUntil(100 * sim.Millisecond)
	if snd.Acked() != 256<<10 {
		t.Fatalf("message not drained: %d", snd.Acked())
	}
	sent := rcv.CreditsSent
	r.s.RunUntil(200 * sim.Millisecond)
	// After drain, the credit stream must stop (no 100ms of wasted 64B
	// frames on the reverse path).
	if grew := rcv.CreditsSent - sent; grew > 5 {
		t.Fatalf("%d credits sent to a silent flow", grew)
	}
	// Resume works.
	r.s.At(r.s.Now(), func() { snd.Send(256 << 10) })
	r.s.RunUntil(400 * sim.Millisecond)
	if snd.Acked() != 512<<10 {
		t.Fatalf("resume failed: %d", snd.Acked())
	}
}

func TestRecoveryAfterDataLoss(t *testing.T) {
	r := newRig(1, 256<<10)
	r.bott.LossRate = 0.01
	done := false
	snd, _ := r.dial(0, 1, func(c *Config) {
		c.MinRTO = 10 * sim.Millisecond
		c.OnComplete = func() { done = true }
	})
	r.s.At(0, func() {
		snd.Open()
		snd.Send(5 << 20)
		snd.Close()
	})
	r.s.RunUntil(10 * sim.Second)
	if !done {
		t.Fatal("transfer did not recover from injected loss")
	}
}
