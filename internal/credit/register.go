package credit

import "tfcsim/internal/transport"

// init registers the ExpressPass-style receiver-driven credit transport:
// credit-gated senders plus per-port credit shapers at switches. It is
// not part of the default comparison matrix (the credit-baseline
// experiment opts in explicitly).
func init() {
	transport.Register("credit", transport.Factory{
		Desc: "ExpressPass-style receiver-driven credits with switch credit shaping",
		Dial: func(c transport.DialConfig) transport.Conn {
			probe, _ := c.Probe.(Probe)
			s, r := Dial(Config{
				Sim: c.Sim, Local: c.Local, Peer: c.Peer, Flow: c.Flow,
				MSS: c.MSS, MinRTO: c.MinRTO,
				OnDrain: c.OnDrain, OnComplete: c.OnComplete,
				Probe: probe,
			})
			return transport.Conn{Sender: s, Received: r.Received, SRTT: s.SRTT}
		},
		Attach: func(a transport.AttachConfig) any {
			var shapers []*Shaper
			for _, sw := range a.Switches {
				// Each switch's shaper runs on its own shard simulator.
				shapers = append(shapers, AttachShaper(sw.Sim(), sw, 0))
			}
			return shapers
		},
	})
}
