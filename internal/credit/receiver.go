package credit

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/transport"
)

// Receiver is the credit source: it paces credit packets to the sender at
// an adaptively controlled rate and piggybacks cumulative ACKs on them.
type Receiver struct {
	cfg   Config
	reasm transport.Reassembly

	crediting bool
	pacer     sim.Timer
	rate      float64 // credits per second
	maxRate   float64
	remaining int64 // sender's most recent remaining-bytes hint

	// Per-epoch waste feedback (time-based epochs).
	epochSent  int
	epochUsed  int
	barren     int // consecutive epochs with zero productive credits
	epochTimer sim.Timer

	// FinAt records FIN arrival.
	FinAt sim.Time
	// OnData fires on every in-order advance.
	OnData func(total int64)

	// CreditsSent counts credits emitted (diagnostics).
	CreditsSent int64
}

// NewReceiver creates (and registers at the peer host) the credit source.
// The receiver's timers (credit pacer, waste epochs) run on the peer
// host's simulator, so its config is rebound to it here.
func NewReceiver(cfg Config) *Receiver {
	cfg.fill()
	cfg.Sim = cfg.Peer.Sim()
	r := &Receiver{cfg: cfg, remaining: -1}
	nicBps := cfg.Peer.NIC().Rate.BytesPerSecond()
	dataWire := float64(cfg.MSS + netsim.HeaderBytes + netsim.WireOverheadBytes)
	r.maxRate = nicBps / dataWire // credits/s that fill the NIC with data
	r.rate = r.maxRate * cfg.InitRate
	cfg.Peer.Register(cfg.Flow, r)
	return r
}

// Received returns cumulative in-order bytes.
func (r *Receiver) Received() int64 { return r.reasm.Next() }

// Rate returns the current credit rate in credits/second.
func (r *Receiver) Rate() float64 { return r.rate }

// Deliver processes packets from the sender.
func (r *Receiver) Deliver(pkt *netsim.Packet) {
	switch {
	case pkt.Flags&netsim.FlagFIN != 0:
		r.FinAt = r.cfg.Sim.Now()
		r.stop()
	case pkt.Flags&netsim.FlagSYN != 0 || pkt.Flags&netsim.FlagCRD != 0:
		// Flow announcement or explicit credit request.
		r.remaining = pkt.Window
		if r.remaining > 0 {
			r.start()
		}
	case pkt.Payload > 0:
		before := r.reasm.Next()
		next := r.reasm.Add(pkt.Seq, pkt.Payload)
		r.remaining = pkt.Window
		r.epochUsed++
		if next > before && r.OnData != nil {
			r.OnData(next)
		}
		if r.remaining <= 0 && r.reasm.Buffered() == 0 {
			// Everything announced has arrived in order; the stream will
			// re-request credits if more data shows up. The completing
			// cumulative ACK travels as a *plain* ACK, not a credit: a
			// credit would pass the switch shaper, which may drop it —
			// and a dropped completion costs the sender a 200ms RTO.
			r.stop()
			r.sendAck()
		} else {
			r.start()
		}
	}
}

func (r *Receiver) start() {
	if r.crediting {
		return
	}
	r.crediting = true
	r.barren = 0
	r.epochSent, r.epochUsed = 0, 0
	r.schedule()
	r.scheduleEpoch()
}

func (r *Receiver) stop() {
	r.crediting = false
	r.pacer.Stop()
	r.epochTimer.Stop()
}

func (r *Receiver) scheduleEpoch() {
	r.epochTimer.Stop()
	//tfcvet:allow hotalloc — one closure per credit epoch (a control-plane cadence, ~RTT apart), not per packet; ExpressPass is a baseline outside the BENCH_2 gate
	r.epochTimer = r.cfg.Sim.After(r.cfg.Epoch, func() {
		if !r.crediting {
			return
		}
		r.feedback()
		r.scheduleEpoch()
	})
}

func (r *Receiver) schedule() {
	r.pacer.Stop()
	gap := sim.Time(float64(sim.Second) / r.rate)
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	r.pacer = r.cfg.Sim.After(gap, r.tick)
}

func (r *Receiver) tick() {
	if !r.crediting {
		return
	}
	r.sendCredit()
	r.epochSent++
	r.schedule()
}

// feedback is the ExpressPass-style credit-rate control: multiplicative
// decrease proportional to the wasted-credit fraction, additive increase
// otherwise (AIMD — a multiplicative probe would let an early winner keep
// doubling away from a starved competitor instead of converging to fair
// shares at the shared credit shaper).
func (r *Receiver) feedback() {
	if r.epochSent == 0 {
		// Too slow to have sent even one credit this epoch: probe upward
		// anyway, or a collapsed rate can never recover (the additive
		// increase must not be paced by the collapsed rate itself).
		r.rate += r.maxRate / 64
	} else {
		waste := float64(r.epochSent-r.epochUsed) / float64(r.epochSent)
		switch {
		case waste > r.cfg.WasteTarget:
			f := 1 - waste/2
			if f < 0.5 {
				f = 0.5
			}
			r.rate *= f
		default:
			r.rate += r.maxRate / 64
		}
	}
	if r.rate > r.maxRate {
		r.rate = r.maxRate
	}
	if min := r.maxRate / 256; r.rate < min {
		r.rate = min
	}
	if r.cfg.Probe != nil {
		r.cfg.Probe.CreditRate(r.cfg.Sim.Now(), r.cfg.Flow, r.rate)
	}
	if r.epochUsed == 0 {
		r.barren++
		// Only give up on a flow that claims to have nothing left (the
		// drained case is normally handled on the data path; this is the
		// safety net for lost tails). A backlogged sender whose credits
		// are being shaped away must keep receiving floor-rate credits,
		// or every shaper drop would cost a 200ms RTO.
		if r.barren >= 1000 || (r.remaining <= 0 && r.barren >= 3) {
			r.stop()
		}
	} else {
		r.barren = 0
	}
	r.epochSent, r.epochUsed = 0, 0
}

func (r *Receiver) sendCredit() {
	r.CreditsSent++
	p := r.cfg.Peer.NewPacket()
	*p = netsim.Packet{
		Flow: r.cfg.Flow, Src: r.cfg.Peer.ID(), Dst: r.cfg.Local.ID(),
		Flags: netsim.FlagCRD | netsim.FlagACK,
		Ack:   r.reasm.Next(), SentAt: r.cfg.Sim.Now(),
		Window: netsim.WindowUnset,
	}
	r.cfg.Peer.Send(p)
}

// sendAck emits a plain cumulative ACK (not subject to credit shaping and
// never spending a credit at the sender).
func (r *Receiver) sendAck() {
	p := r.cfg.Peer.NewPacket()
	*p = netsim.Packet{
		Flow: r.cfg.Flow, Src: r.cfg.Peer.ID(), Dst: r.cfg.Local.ID(),
		Flags: netsim.FlagACK,
		Ack:   r.reasm.Next(), SentAt: r.cfg.Sim.Now(),
		Window: netsim.WindowUnset,
	}
	r.cfg.Peer.Send(p)
}

// Shaper rate-limits credit packets at switches so the data they trigger
// cannot exceed the forward path's capacity. Credits beyond the pace are
// *queued* up to a small limit — the queued backlog is what keeps the
// data pipe full while per-flow credit rates hunt — and dropped beyond it
// (dropping 64-byte credits is the scheme's safety valve; the drop is the
// senders' waste-feedback signal).
type Shaper struct {
	s    *sim.Simulator
	rho0 float64
	mss  int
	// QueueCap is the per-port credit queue limit (default 16).
	QueueCap int
	bkts     map[*netsim.Port]*bucket
	// Dropped counts shaped-away credits.
	Dropped int64
	// Queued counts credits that waited in a credit queue.
	Queued int64
}

type heldCredit struct {
	pkt *netsim.Packet
	out *netsim.Port
}

type bucket struct {
	tokens  float64
	last    sim.Time
	rate    float64 // credits per second
	queue   []heldCredit
	release sim.Timer
}

// AttachShaper installs credit shaping on a switch (one bucket per data
// port, fed at rho0 of the port's data-carrying capacity).
func AttachShaper(s *sim.Simulator, sw *netsim.Switch, rho0 float64) *Shaper {
	if rho0 == 0 {
		rho0 = 0.97
	}
	sh := &Shaper{s: s, rho0: rho0, mss: transport.DefaultMSS, QueueCap: 16,
		bkts: make(map[*netsim.Port]*bucket)}
	dataWire := float64(sh.mss + netsim.HeaderBytes + netsim.WireOverheadBytes)
	for _, p := range sw.Ports() {
		sh.bkts[p] = &bucket{
			tokens: 1,
			rate:   rho0 * p.Rate.BytesPerSecond() / dataWire,
		}
	}
	sw.Interceptor = sh
	return sh
}

// Intercept implements netsim.Interceptor: paced credits consult the
// bucket of the port their data will traverse.
func (sh *Shaper) Intercept(pkt *netsim.Packet, out *netsim.Port, sw *netsim.Switch) bool {
	const crd = netsim.FlagCRD | netsim.FlagACK
	if pkt.Flags&crd != crd {
		return false
	}
	dataPort := sw.PortFor(pkt.Flow, pkt.Src)
	b := sh.bkts[dataPort]
	if b == nil {
		return false
	}
	sh.refill(b)
	if b.tokens >= 1 && len(b.queue) == 0 {
		b.tokens--
		return false
	}
	if len(b.queue) >= sh.QueueCap {
		sh.Dropped++
		out.ReleasePacket(pkt) // credit shaped away
		return true
	}
	//tfcvet:allow poolsafe,hotalloc — deliberate ownership transfer (returning true tells the switch the credit is held; scheduleRelease re-injects it), and the shaper queue is drained by truncation so its backing array amortizes to steady capacity
	b.queue = append(b.queue, heldCredit{pkt, out})
	sh.Queued++
	sh.scheduleRelease(b)
	return true
}

func (sh *Shaper) refill(b *bucket) {
	now := sh.s.Now()
	b.tokens += b.rate * (now - b.last).Seconds()
	b.last = now
	if b.tokens > 2 {
		b.tokens = 2
	}
}

func (sh *Shaper) scheduleRelease(b *bucket) {
	if b.release.Active() {
		return
	}
	need := 1 - b.tokens
	if need < 0 {
		need = 0
	}
	d := sim.Time(need / b.rate * float64(sim.Second))
	if d < 1 {
		d = 1
	}
	//tfcvet:allow hotalloc — one closure per pacing-timer arm (rate-limited by the token bucket), not per packet; ExpressPass is a baseline outside the BENCH_2 gate
	b.release = sh.s.After(d, func() { sh.onRelease(b) })
}

func (sh *Shaper) onRelease(b *bucket) {
	sh.refill(b)
	for len(b.queue) > 0 && b.tokens >= 1 {
		h := b.queue[0]
		copy(b.queue, b.queue[1:])
		b.queue[len(b.queue)-1] = heldCredit{}
		b.queue = b.queue[:len(b.queue)-1]
		b.tokens--
		h.out.Enqueue(h.pkt)
	}
	if len(b.queue) > 0 {
		sh.scheduleRelease(b)
	}
}
