// Package credit implements a receiver-driven, ExpressPass-style credit
// transport as a comparison baseline for TFC. It descends from the
// credit-based flow control lineage the paper discusses in §7 (Kung et
// al.'s ATM credits), transplanted to data centers the way ExpressPass
// (SIGCOMM'17) later did:
//
//   - the receiver paces small credit packets to the sender; the sender
//     may transmit exactly one MSS of data per credit, so data can never
//     congest a link whose credits were admitted;
//   - switches shape the *credit* stream on the reverse path so that the
//     data it triggers cannot exceed the forward capacity — excess
//     credits are simply dropped (dropping a 64-byte credit is cheap,
//     dropping a 1538-byte data frame is not);
//   - each receiver adjusts its credit rate by waste feedback (credits
//     sent vs. data received), probing up when credits are productive
//     and backing off multiplicatively when they are wasted.
//
// Contrast with TFC: credits pace *per-packet* from receivers and spend
// reverse-path bandwidth continuously, while TFC assigns *per-round
// windows* from switches and only paces in the sub-MSS regime.
package credit

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/transport"
)

// Config parameterizes one credit-transport connection.
type Config struct {
	Sim   *sim.Simulator
	Local *netsim.Host // data sender
	Peer  *netsim.Host // data receiver (credit source)
	Flow  netsim.FlowID

	MSS    int
	MinRTO sim.Time // retransmission safety net (default 200ms)
	MaxRTO sim.Time

	// InitRate is the initial per-flow credit rate as a fraction of the
	// receiver NIC rate (default 1/8).
	InitRate float64
	// WasteTarget is the tolerated credit-waste fraction per epoch before
	// multiplicative decrease (default 0.1).
	WasteTarget float64
	// Epoch is the feedback period (default 1ms — roughly an RTT scale;
	// time-based so that recovery from a rate collapse is not itself
	// paced by the collapsed rate).
	Epoch sim.Time

	OnDrain    func()
	OnComplete func()

	// Probe, if set, receives credit-transport telemetry (RTO firings,
	// credit-rate moves). Disabled path is one nil-check per event.
	Probe Probe
}

// Probe observes the credit transport for the telemetry layer
// (internal/telemetry). All callbacks are read-only observers. Each
// callback carries the observed endpoint's current virtual time: sender
// and receiver run on different simulators once the network is
// partitioned, so the probe cannot consult a single clock.
type Probe interface {
	// RTOFired runs when the sender's retransmission safety net expires.
	RTOFired(now sim.Time, flow netsim.FlowID, backoff uint)
	// CreditRate runs after every receiver rate adjustment (credits/s).
	CreditRate(now sim.Time, flow netsim.FlowID, perSec float64)
}

func (c *Config) fill() {
	if c.MSS == 0 {
		c.MSS = transport.DefaultMSS
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * sim.Second
	}
	if c.InitRate == 0 {
		c.InitRate = 1.0 / 8
	}
	if c.WasteTarget == 0 {
		c.WasteTarget = 0.1
	}
	if c.Epoch == 0 {
		c.Epoch = sim.Millisecond
	}
}

// Sender is the data-sending half: it transmits one segment per received
// credit and nothing otherwise (apart from the RTO safety net).
type Sender struct {
	cfg Config
	st  transport.Stats
	est *transport.RTTEstimator

	opened  bool
	sndUna  int64
	sndNxt  int64
	budget  int64
	closing bool
	done    bool

	rto        *transport.RTOTimer
	rtoBackoff uint

	// CreditsUsed / CreditsWasted count received credits by outcome.
	CreditsUsed   int64
	CreditsWasted int64
}

// NewSender creates (and registers) the sending half.
func NewSender(cfg Config) *Sender {
	cfg.fill()
	s := &Sender{
		cfg: cfg,
		est: transport.NewRTTEstimator(cfg.MinRTO, cfg.MaxRTO, 0),
	}
	s.rto = transport.NewRTOTimer(cfg.Sim, s.onRTO)
	cfg.Local.Register(cfg.Flow, s)
	return s
}

// Dial creates a sender and its matching receiver. NewReceiver rebinds
// its config to the peer host's simulator (the receiver's pacer and
// epoch timers are receiver-side state), so the two endpoints run on
// their own shards once the network is partitioned.
func Dial(cfg Config) (*Sender, *Receiver) {
	s := NewSender(cfg)
	r := NewReceiver(cfg)
	return s, r
}

// Stats exposes the flow statistics record.
func (s *Sender) Stats() *transport.Stats { return &s.st }

// Acked returns cumulative acknowledged bytes.
func (s *Sender) Acked() int64 { return s.sndUna }

// Queued returns cumulative bytes handed to Send.
func (s *Sender) Queued() int64 { return s.budget }

// SRTT returns the smoothed RTT estimate.
func (s *Sender) SRTT() sim.Time { return s.est.SRTT() }

// Open announces the flow to the receiver (SYN): the receiver starts its
// credit stream when data is requested.
func (s *Sender) Open() {
	if s.opened {
		return
	}
	s.opened = true
	s.st.Start = s.cfg.Sim.Now()
	s.sendCtl(netsim.FlagSYN)
	s.armRTO()
}

// Send queues n more bytes; a credit request tells the receiver to
// (re)start crediting.
func (s *Sender) Send(n int64) {
	if n <= 0 || s.closing {
		return
	}
	s.budget += n
	if s.opened {
		s.sendCtl(netsim.FlagCRD) // credit request
	}
}

// Close finishes the stream once drained.
func (s *Sender) Close() {
	s.closing = true
	if s.opened && s.sndUna == s.budget {
		s.finish()
	}
}

func (s *Sender) sendCtl(fl netsim.Flag) {
	p := s.cfg.Local.NewPacket()
	*p = netsim.Packet{
		Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
		Flags: fl, Seq: s.sndNxt, SentAt: s.cfg.Sim.Now(),
		Window: s.budget - s.sndNxt,
	}
	s.cfg.Local.Send(p)
}

// Deliver processes credits (and their piggybacked cumulative ACKs).
func (s *Sender) Deliver(pkt *netsim.Packet) {
	if s.done {
		return
	}
	if pkt.Flags&netsim.FlagACK == 0 {
		return
	}
	// Piggybacked cumulative ACK.
	if pkt.Ack > s.sndUna {
		s.st.BytesAcked += pkt.Ack - s.sndUna
		s.sndUna = pkt.Ack
		if s.sndNxt < s.sndUna {
			s.sndNxt = s.sndUna
		}
		s.est.Observe(s.cfg.Sim.Now() - pkt.SentAt)
		s.rtoBackoff = 0
		if s.sndUna == s.budget {
			s.rto.Stop()
			if s.cfg.OnDrain != nil {
				s.cfg.OnDrain()
			}
			if s.closing {
				s.finish()
				return
			}
		} else {
			s.armRTO()
		}
	}
	if pkt.Flags&netsim.FlagCRD == 0 {
		return // plain ACK: no credit to spend
	}
	// Spend the credit on one segment.
	if s.sndNxt < s.budget {
		seg := int64(s.cfg.MSS)
		if rem := s.budget - s.sndNxt; rem < seg {
			seg = rem
		}
		if s.st.FirstSend == 0 {
			s.st.FirstSend = s.cfg.Sim.Now()
		}
		p := s.cfg.Local.NewPacket()
		*p = netsim.Packet{
			Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
			Seq: s.sndNxt, Payload: int(seg), SentAt: s.cfg.Sim.Now(),
			Window: s.budget - s.sndNxt - seg, // remaining-after hint
		}
		s.cfg.Local.Send(p)
		s.sndNxt += seg
		s.CreditsUsed++
		if !s.rto.Armed() {
			s.armRTO()
		}
	} else {
		s.CreditsWasted++
	}
}

func (s *Sender) armRTO() {
	// Clamp before shifting: the naive d << backoff overflows int64 for
	// backoffs past ~32 and slips past a post-shift MaxRTO check (see the
	// identical fix in internal/tcp).
	d := s.est.RTO()
	if d > s.cfg.MaxRTO>>s.rtoBackoff {
		d = s.cfg.MaxRTO
	} else {
		d <<= s.rtoBackoff
	}
	s.rto.Arm(d)
}

func (s *Sender) onRTO() {
	if s.done || s.sndUna == s.budget {
		return
	}
	s.st.Timeouts++
	s.rtoBackoff++
	if s.cfg.Probe != nil {
		s.cfg.Probe.RTOFired(s.cfg.Sim.Now(), s.cfg.Flow, s.rtoBackoff)
	}
	// Go-back-N and re-request credits.
	s.st.RtxBytes += s.sndNxt - s.sndUna
	s.sndNxt = s.sndUna
	s.sendCtl(netsim.FlagCRD)
	s.armRTO()
}

func (s *Sender) finish() {
	if s.done {
		return
	}
	s.done = true
	s.sendCtl(netsim.FlagFIN)
	s.rto.Stop()
	s.st.Done = true
	s.st.Completed = s.cfg.Sim.Now()
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete()
	}
}
