package transport

import (
	"testing"

	"tfcsim/internal/sim"
)

// FuzzReassembly drives the reassembly buffer with an arbitrary byte
// script (pairs of start/len nibbles) and checks its invariants: next is
// monotone, bounded by the max byte written, and buffered bytes are
// finite and beyond next.
func FuzzReassembly(f *testing.F) {
	f.Add([]byte{0, 10, 10, 10, 5, 20})
	f.Add([]byte{100, 50, 0, 100, 150, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		var r Reassembly
		var maxEnd, prev int64
		for i := 0; i+1 < len(script); i += 2 {
			start := int64(script[i]) * 37 // spread offsets
			n := int(script[i+1])
			if end := start + int64(n); end > maxEnd {
				maxEnd = end
			}
			got := r.Add(start, n)
			if got < prev {
				t.Fatalf("next went backwards: %d -> %d", prev, got)
			}
			if got > maxEnd {
				t.Fatalf("next %d beyond max written byte %d", got, maxEnd)
			}
			if b := r.Buffered(); b < 0 || b > maxEnd {
				t.Fatalf("buffered %d out of range", b)
			}
			prev = got
		}
	})
}

// FuzzRTTEstimator checks the estimator never yields an RTO outside its
// clamps for arbitrary sample streams.
func FuzzRTTEstimator(f *testing.F) {
	f.Add([]byte{1, 2, 3, 255, 0, 9})
	f.Fuzz(func(t *testing.T, samples []byte) {
		e := NewRTTEstimator(1000, 1000000, 0)
		for _, s := range samples {
			e.Observe(sim.Time(1 + 1000*int64(s)))
		}
		if rto := e.RTO(); rto < 1000 || rto > 1000000 {
			t.Fatalf("RTO %d outside clamps", rto)
		}
	})
}
