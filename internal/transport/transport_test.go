package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tfcsim/internal/sim"
)

func TestRTOBeforeFirstSample(t *testing.T) {
	e := NewRTTEstimator(10*sim.Millisecond, 0, 0)
	if got := e.RTO(); got != 10*sim.Millisecond {
		t.Errorf("initial RTO = %v, want clamped to minRTO 10ms", got)
	}
	e2 := NewRTTEstimator(sim.Millisecond, 0, 0)
	if got := e2.RTO(); got != DefaultInitRTO {
		t.Errorf("initial RTO = %v, want %v", got, DefaultInitRTO)
	}
}

func TestRTTEstimatorConverges(t *testing.T) {
	e := NewRTTEstimator(0, 0, 0)
	for i := 0; i < 100; i++ {
		e.Observe(100 * sim.Microsecond)
	}
	if e.SRTT() != 100*sim.Microsecond {
		t.Errorf("SRTT = %v, want 100us", e.SRTT())
	}
	// With zero variance the RTO converges toward SRTT (rttvar decays).
	if e.RTO() > 150*sim.Microsecond {
		t.Errorf("RTO = %v, want near SRTT for constant samples", e.RTO())
	}
}

func TestRTOMinMaxClamp(t *testing.T) {
	e := NewRTTEstimator(200*sim.Millisecond, sim.Second, 0)
	e.Observe(100 * sim.Microsecond)
	if got := e.RTO(); got != 200*sim.Millisecond {
		t.Errorf("RTO = %v, want clamped to 200ms", got)
	}
	e.Observe(10 * sim.Second)
	e.Observe(10 * sim.Second)
	if got := e.RTO(); got != sim.Second {
		t.Errorf("RTO = %v, want clamped to 1s max", got)
	}
}

func TestRTTVarianceRaisesRTO(t *testing.T) {
	e := NewRTTEstimator(0, 0, 0)
	e.Observe(100 * sim.Microsecond)
	e.Observe(500 * sim.Microsecond)
	e.Observe(100 * sim.Microsecond)
	if e.RTO() < e.SRTT()+2*100*sim.Microsecond {
		t.Errorf("RTO %v should include variance margin (srtt %v)", e.RTO(), e.SRTT())
	}
}

func TestReassemblyInOrder(t *testing.T) {
	var r Reassembly
	if got := r.Add(0, 100); got != 100 {
		t.Fatalf("Add(0,100) = %d, want 100", got)
	}
	if got := r.Add(100, 50); got != 150 {
		t.Fatalf("Add(100,50) = %d, want 150", got)
	}
	if r.Buffered() != 0 {
		t.Errorf("Buffered = %d, want 0", r.Buffered())
	}
}

func TestReassemblyOutOfOrder(t *testing.T) {
	var r Reassembly
	if got := r.Add(100, 100); got != 0 {
		t.Fatalf("gap should not advance: got %d", got)
	}
	if r.Buffered() != 100 {
		t.Fatalf("Buffered = %d, want 100", r.Buffered())
	}
	if got := r.Add(0, 100); got != 200 {
		t.Fatalf("filling gap should advance to 200, got %d", got)
	}
}

func TestReassemblyDuplicatesAndOverlap(t *testing.T) {
	var r Reassembly
	r.Add(0, 100)
	if got := r.Add(0, 100); got != 100 {
		t.Fatalf("pure duplicate changed next: %d", got)
	}
	if got := r.Add(50, 100); got != 150 {
		t.Fatalf("overlapping add: next = %d, want 150", got)
	}
	r.Add(300, 50)  // buffered [300,350)
	r.Add(250, 100) // extends to [250,350)
	if got := r.Add(150, 100); got != 350 {
		t.Fatalf("merge across overlap: next = %d, want 350", got)
	}
}

func TestReassemblyZeroLength(t *testing.T) {
	var r Reassembly
	if got := r.Add(10, 0); got != 0 {
		t.Fatalf("zero-length add changed state: %d", got)
	}
}

// Property: delivering a random permutation of MSS segments always yields
// the full stream exactly once, with nothing left buffered.
func TestQuickReassemblyPermutation(t *testing.T) {
	f := func(seed int64, nSeg uint8) bool {
		n := int(nSeg)%64 + 1
		rng := rand.New(rand.NewSource(seed))
		order := rng.Perm(n)
		var r Reassembly
		for _, i := range order {
			r.Add(int64(i)*1460, 1460)
		}
		return r.Next() == int64(n)*1460 && r.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with random (possibly overlapping, duplicated) adds, next is
// monotonic and never exceeds the max byte seen.
func TestQuickReassemblyMonotonic(t *testing.T) {
	f := func(adds []struct {
		Start uint16
		N     uint8
	}) bool {
		var r Reassembly
		var maxEnd, prev int64
		for _, a := range adds {
			end := int64(a.Start) + int64(a.N)
			if end > maxEnd {
				maxEnd = end
			}
			got := r.Add(int64(a.Start), int(a.N))
			if got < prev || got > maxEnd {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIDGen(t *testing.T) {
	var g IDGen
	a, b := g.Next(), g.Next()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("IDGen produced %d, %d", a, b)
	}
}

func TestStatsFCT(t *testing.T) {
	s := Stats{Start: 100, Completed: 350, Done: true}
	if s.FCT() != 250 {
		t.Fatalf("FCT = %v, want 250", s.FCT())
	}
}

func TestRTOTimerFires(t *testing.T) {
	s := sim.New(1)
	fired := 0
	rt := NewRTOTimer(s, func() { fired++ })
	rt.Arm(10 * sim.Millisecond)
	s.RunUntil(20 * sim.Millisecond)
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if rt.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestRTOTimerLazyRearm(t *testing.T) {
	s := sim.New(1)
	fired := 0
	var firedAt sim.Time
	rt := NewRTOTimer(s, func() { fired++; firedAt = s.Now() })
	rt.Arm(10 * sim.Millisecond)
	// Re-arm 1000 times over the first 5ms (like per-ACK re-arming).
	for i := 1; i <= 1000; i++ {
		at := sim.Time(i) * 5 * sim.Microsecond
		s.At(at, func() { rt.Arm(10 * sim.Millisecond) })
	}
	s.RunUntil(sim.Second)
	if fired != 1 {
		t.Fatalf("fired %d, want exactly 1", fired)
	}
	// Last arm at 5ms -> deadline 15ms.
	if firedAt != 15*sim.Millisecond {
		t.Fatalf("fired at %v, want 15ms", firedAt)
	}
	// The whole exercise must have used very few underlying timers: the
	// event count is 1000 arms + a handful of timer events.
	if s.Pending() != 0 {
		t.Fatalf("pending events remain: %d", s.Pending())
	}
}

func TestRTOTimerStop(t *testing.T) {
	s := sim.New(1)
	fired := 0
	rt := NewRTOTimer(s, func() { fired++ })
	rt.Arm(10 * sim.Millisecond)
	s.At(5*sim.Millisecond, func() { rt.Stop() })
	s.RunUntil(sim.Second)
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}
	// Re-arm after stop works.
	rt.Arm(10 * sim.Millisecond)
	s.RunUntil(s.Now() + sim.Second)
	if fired != 1 {
		t.Fatalf("re-armed timer fired %d times", fired)
	}
}

func TestRTOTimerArmShorter(t *testing.T) {
	s := sim.New(1)
	var firedAt sim.Time
	rt := NewRTOTimer(s, func() { firedAt = s.Now() })
	rt.Arm(100 * sim.Millisecond)
	s.At(sim.Millisecond, func() { rt.Arm(5 * sim.Millisecond) }) // earlier deadline
	s.RunUntil(sim.Second)
	if firedAt != 6*sim.Millisecond {
		t.Fatalf("fired at %v, want 6ms (shortened deadline)", firedAt)
	}
}
