package transport

import (
	"fmt"
	"sort"
	"strings"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// DialConfig carries the protocol-independent parameters of one
// connection. Factories translate it into their own Config type.
type DialConfig struct {
	Sim   *sim.Simulator
	Local *netsim.Host // sender side
	Peer  *netsim.Host // receiver side
	Flow  netsim.FlowID

	MSS    int      // 0 selects DefaultMSS
	MinRTO sim.Time // 0 selects the protocol default

	// OnDrain fires whenever all currently queued bytes are acknowledged;
	// OnComplete once after Close.
	OnDrain    func()
	OnComplete func()

	// Probe is the protocol-specific per-connection telemetry observer
	// (e.g. a tcp.Probe), supplied opaquely so the registry does not
	// depend on the telemetry layer. Factories type-assert it to their
	// own probe interface and must tolerate nil or foreign types.
	Probe any
}

// Conn is the protocol-agnostic result of a Factory's Dial.
type Conn struct {
	Sender Sender
	// Received returns the receiver's cumulative in-order byte count.
	Received func() int64
	// SRTT returns the sender's smoothed RTT estimate.
	SRTT func() sim.Time
}

// AttachConfig parameterizes a Factory's switch-side attachment. The
// harness calls Attach once per built topology, after routes are
// computed and before any traffic flows.
type AttachConfig struct {
	Sim      *sim.Simulator
	Switches []*netsim.Switch
	// MarkRate is the bottleneck link rate, for rate-derived thresholds
	// (DCTCP's K, BFC's drain model).
	MarkRate netsim.Rate
	// Knobs is the protocol's switch-side configuration (e.g. a
	// *core.SwitchConfig for TFC); nil selects the factory defaults.
	// Factories type-assert and must tolerate nil or foreign types.
	Knobs any
	// Probe is the protocol-specific switch-side telemetry observer,
	// opaque for the same reason as DialConfig.Probe.
	Probe any
}

// Factory bundles everything the harness needs to run one transport:
// a connection constructor, an optional switch-side attachment (port
// hooks, shapers, token state), and default knobs. Protocol packages
// register a Factory in their init; workload.Dialer, the experiment
// topology builders and the CLIs then compose any registered transport
// with any experiment, fault schedule, and telemetry probe by name.
type Factory struct {
	// Desc is a one-line description for listings.
	Desc string
	// Compare includes the protocol in the default head-to-head matrix
	// (exp.AllProtos): the figure, incast, churn, and robustness sweeps
	// iterate every comparable transport.
	Compare bool
	// Dial creates one connection (sender and receiver registered at
	// their hosts). Required.
	Dial func(DialConfig) Conn
	// Attach installs the protocol's switch-side machinery on every
	// switch of a topology. Nil for host-only protocols. The return
	// value is opaque per-environment state (e.g. TFC's per-switch
	// token tables) handed back to the harness for inspection.
	Attach func(AttachConfig) any
}

var factories = map[string]Factory{}

// Register adds a transport under name. It panics on a duplicate name,
// an empty name, or a nil Dial — registration happens in package inits,
// where a broken registry is a programming error, not a runtime
// condition.
func Register(name string, f Factory) {
	if name == "" {
		panic("transport: Register with empty name")
	}
	if f.Dial == nil {
		panic(fmt.Sprintf("transport: Register(%q) with nil Dial", name))
	}
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("transport: Register called twice for %q", name))
	}
	factories[name] = f
}

// Lookup resolves a registered transport. The error for an unknown name
// lists every registered protocol, sorted.
func Lookup(name string) (Factory, error) {
	f, ok := factories[name]
	if !ok {
		return Factory{}, fmt.Errorf("transport: unknown protocol %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f, nil
}

// Registered reports whether name is a registered transport.
func Registered(name string) bool {
	_, ok := factories[name]
	return ok
}

// Names returns every registered protocol name, sorted for determinism.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CompareNames returns the sorted names of the transports marked for the
// default head-to-head comparison matrix.
func CompareNames() []string {
	var out []string
	for n, f := range factories {
		if f.Compare {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
