// Package transport provides plumbing shared by the transport protocols
// (TCP NewReno, DCTCP, TFC): RFC 6298 RTT estimation, in-order reassembly,
// per-flow statistics, and flow-ID allocation.
package transport

import (
	"sort"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// Default protocol parameters.
const (
	DefaultMSS     = netsim.MSS
	DefaultRcvWnd  = 4 << 20 // 4 MB advertised window
	DefaultInitRTO = 3 * sim.Millisecond
)

// RTTEstimator implements the RFC 6298 SRTT/RTTVAR retransmission-timeout
// computation with configurable clamps. The zero value is unusable; create
// with NewRTTEstimator.
type RTTEstimator struct {
	srtt, rttvar sim.Time
	valid        bool
	minRTO       sim.Time
	maxRTO       sim.Time
	initRTO      sim.Time
}

// NewRTTEstimator builds an estimator with the given RTO clamps. Zero
// arguments select the defaults (min as given, max 60 s, initial 3 ms —
// scaled for data-center RTTs).
func NewRTTEstimator(minRTO, maxRTO, initRTO sim.Time) *RTTEstimator {
	if maxRTO == 0 {
		maxRTO = 60 * sim.Second
	}
	if initRTO == 0 {
		initRTO = DefaultInitRTO
	}
	if initRTO < minRTO {
		initRTO = minRTO
	}
	if initRTO > maxRTO {
		// A max clamp tighter than the initial RTO must bound it too, or
		// RTO() exceeds maxRTO until the first sample arrives.
		initRTO = maxRTO
	}
	return &RTTEstimator{minRTO: minRTO, maxRTO: maxRTO, initRTO: initRTO}
}

// Observe records one RTT sample (callers must apply Karn's rule first).
func (e *RTTEstimator) Observe(rtt sim.Time) {
	if rtt <= 0 {
		rtt = 1
	}
	if !e.valid {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.valid = true
		return
	}
	// RFC 6298: RTTVAR = 3/4 RTTVAR + 1/4 |SRTT-R'|, SRTT = 7/8 SRTT + 1/8 R'.
	d := e.srtt - rtt
	if d < 0 {
		d = -d
	}
	e.rttvar = (3*e.rttvar + d) / 4
	e.srtt = (7*e.srtt + rtt) / 8
}

// SRTT returns the smoothed RTT (0 until the first sample).
func (e *RTTEstimator) SRTT() sim.Time {
	if !e.valid {
		return 0
	}
	return e.srtt
}

// RTO returns the current retransmission timeout.
func (e *RTTEstimator) RTO() sim.Time {
	if !e.valid {
		return e.initRTO
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.minRTO {
		rto = e.minRTO
	}
	if rto > e.maxRTO {
		rto = e.maxRTO
	}
	return rto
}

// Stats aggregates the lifetime of one flow.
type Stats struct {
	Start      sim.Time // when the application opened the flow
	FirstSend  sim.Time // first data transmission
	Completed  sim.Time // all bytes acknowledged (valid when Done)
	Done       bool
	BytesAcked int64
	Timeouts   int64 // RTO expirations
	FastRtx    int64 // fast retransmits
	RtxBytes   int64 // retransmitted bytes
}

// FCT returns the flow completion time (Completed - Start). It is only
// meaningful when Done.
func (s *Stats) FCT() sim.Time { return s.Completed - s.Start }

type seg struct {
	start, end int64 // [start, end)
}

// Reassembly tracks received byte ranges and the next in-order byte,
// implementing cumulative-ACK semantics with out-of-order buffering.
type Reassembly struct {
	next int64
	segs []seg // sorted, non-overlapping, all beyond next
}

// Next returns the next expected in-order byte (the cumulative ACK value).
func (r *Reassembly) Next() int64 { return r.next }

// Buffered returns the number of bytes held out of order.
func (r *Reassembly) Buffered() int64 {
	var n int64
	for _, s := range r.segs {
		n += s.end - s.start
	}
	return n
}

// Add records receipt of [start, start+n) and returns the new cumulative
// next-expected byte. Duplicate and overlapping data is tolerated.
func (r *Reassembly) Add(start int64, n int) int64 {
	if n <= 0 {
		return r.next
	}
	end := start + int64(n)
	if end <= r.next {
		return r.next // fully duplicate
	}
	if start <= r.next && len(r.segs) == 0 {
		// In-order fast path: nothing buffered, the segment extends the
		// contiguous prefix directly.
		r.next = end
		return r.next
	}
	if start < r.next {
		start = r.next
	}
	// Insert/merge [start, end) into segs.
	i := sort.Search(len(r.segs), func(i int) bool { return r.segs[i].end >= start })
	merged := seg{start, end}
	j := i
	for j < len(r.segs) && r.segs[j].start <= merged.end {
		if r.segs[j].start < merged.start {
			merged.start = r.segs[j].start
		}
		if r.segs[j].end > merged.end {
			merged.end = r.segs[j].end
		}
		j++
	}
	// Splice merged over segs[i:j] in place. Both branches reuse the
	// existing backing array, so a receiver in steady state (bounded
	// out-of-order window) never allocates here after the first few adds.
	if j == i {
		// No overlap: open a hole at i.
		r.segs = append(r.segs, seg{})
		copy(r.segs[i+1:], r.segs[i:])
		r.segs[i] = merged
	} else {
		r.segs[i] = merged
		r.segs = append(r.segs[:i+1], r.segs[j:]...)
	}
	// Advance next over any now-contiguous prefix, compacting in place to
	// keep the slice capacity (segs[1:] would strand it).
	adv := 0
	for adv < len(r.segs) && r.segs[adv].start <= r.next {
		if r.segs[adv].end > r.next {
			r.next = r.segs[adv].end
		}
		adv++
	}
	if adv > 0 {
		k := copy(r.segs, r.segs[adv:])
		r.segs = r.segs[:k]
	}
	return r.next
}

// IDGen allocates unique FlowIDs for one experiment.
type IDGen struct{ next netsim.FlowID }

// Next returns a fresh flow ID (starting at 1; 0 is reserved/invalid).
func (g *IDGen) Next() netsim.FlowID {
	g.next++
	return g.next
}

// Sender is the interface workloads use to drive any protocol's sender.
type Sender interface {
	// Open initiates the connection handshake. It must be called once,
	// from simulation context.
	Open()
	// Send appends n bytes to the stream (may be called repeatedly; the
	// connection persists, enabling on-off flows).
	Send(n int64)
	// Acked returns the cumulative acknowledged byte count.
	Acked() int64
	// Queued returns the total bytes handed to Send so far.
	Queued() int64
	// Stats exposes the flow's statistics record.
	Stats() *Stats
	// Close sends a FIN once all queued data is acknowledged (or now, if
	// it already is). Further Sends are invalid.
	Close()
}

// RTOTimer is a lazily re-armed retransmission timer. Arming it merely
// records the new deadline; the underlying simulator timer is only
// (re)scheduled when none is pending or when it fires early, so an
// ACK-clocked sender re-arming on every ACK creates O(1) live timer
// entries per RTO period instead of one per ACK.
type RTOTimer struct {
	s        *sim.Simulator
	fn       func()
	deadline sim.Time
	timer    sim.Timer
	armed    bool
}

// NewRTOTimer creates a timer that runs fn when an armed deadline expires.
func NewRTOTimer(s *sim.Simulator, fn func()) *RTOTimer {
	return &RTOTimer{s: s, fn: fn}
}

// Deadline returns the currently armed deadline (meaningful only while
// the timer is armed). Tests use it to check the arming arithmetic.
func (t *RTOTimer) Deadline() sim.Time { return t.deadline }

// Arm (re)sets the timer to fire d from now.
func (t *RTOTimer) Arm(d sim.Time) {
	t.deadline = t.s.Now() + d
	t.armed = true
	if w, ok := t.timer.When(); ok {
		// A pending timer firing at or before the deadline will re-check
		// and re-schedule itself; one firing later must be replaced.
		if w <= t.deadline {
			return
		}
		t.timer.Stop()
	}
	t.schedule()
}

// schedule arms the underlying simulator timer. The RTOTimer itself is
// the event target, so re-arming never allocates a closure.
func (t *RTOTimer) schedule() {
	t.timer = t.s.Schedule(t.deadline, t)
}

// RunEvent implements sim.EventTarget.
func (t *RTOTimer) RunEvent() { t.onFire() }

func (t *RTOTimer) onFire() {
	if !t.armed {
		return
	}
	if now := t.s.Now(); now < t.deadline {
		t.schedule() // deadline moved later; keep waiting
		return
	}
	t.armed = false
	t.fn()
}

// Stop disarms the timer (a pending underlying timer becomes a no-op).
func (t *RTOTimer) Stop() { t.armed = false }

// Armed reports whether a deadline is pending.
func (t *RTOTimer) Armed() bool { return t.armed }
