package transport

import (
	"sort"
	"strings"
	"testing"
)

func dummyDial(DialConfig) Conn { return Conn{} }

// TestRegisterValidation proves Register rejects the three programming
// errors it documents: empty name, nil Dial, duplicate name.
func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, f Factory, want string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("Register(%q) did not panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Fatalf("Register(%q) panic = %v, want substring %q", name, r, want)
			}
		}()
		Register(name, f)
	}

	mustPanic("", Factory{Dial: dummyDial}, "empty name")
	mustPanic("regtest-nildial", Factory{}, "nil Dial")

	Register("regtest-dup", Factory{Dial: dummyDial})
	defer delete(factories, "regtest-dup")
	mustPanic("regtest-dup", Factory{Dial: dummyDial}, "twice")
}

// TestLookupUnknown proves the unknown-name error lists every registered
// protocol so a CLI typo is self-diagnosing.
func TestLookupUnknown(t *testing.T) {
	Register("regtest-listed", Factory{Dial: dummyDial})
	defer delete(factories, "regtest-listed")

	_, err := Lookup("no-such-proto")
	if err == nil {
		t.Fatal("Lookup of unknown name returned nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-proto"`) {
		t.Errorf("error %q does not quote the unknown name", msg)
	}
	for _, n := range Names() {
		if !strings.Contains(msg, n) {
			t.Errorf("error %q does not list registered protocol %q", msg, n)
		}
	}
}

func TestLookupRegistered(t *testing.T) {
	Register("regtest-found", Factory{Desc: "x", Dial: dummyDial})
	defer delete(factories, "regtest-found")

	f, err := Lookup("regtest-found")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if f.Desc != "x" || f.Dial == nil {
		t.Fatalf("Lookup returned wrong factory: %+v", f)
	}
	if !Registered("regtest-found") {
		t.Error("Registered(regtest-found) = false")
	}
	if Registered("no-such-proto") {
		t.Error("Registered(no-such-proto) = true")
	}
}

// TestNamesSorted proves Names and CompareNames are sorted (the harness
// derives deterministic experiment order from them) and that CompareNames
// is the Compare-flagged subset of Names.
func TestNamesSorted(t *testing.T) {
	Register("regtest-zz", Factory{Dial: dummyDial, Compare: true})
	Register("regtest-aa", Factory{Dial: dummyDial})
	defer delete(factories, "regtest-zz")
	defer delete(factories, "regtest-aa")

	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	cmp := CompareNames()
	if !sort.StringsAreSorted(cmp) {
		t.Errorf("CompareNames() not sorted: %v", cmp)
	}
	all := make(map[string]bool, len(names))
	for _, n := range names {
		all[n] = true
	}
	for _, n := range cmp {
		if !all[n] {
			t.Errorf("CompareNames() has %q not present in Names()", n)
		}
		if !factories[n].Compare {
			t.Errorf("CompareNames() has %q with Compare=false", n)
		}
	}
}
