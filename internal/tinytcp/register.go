package tinytcp

import (
	"tfcsim/internal/tcp"
	"tfcsim/internal/transport"
)

// init registers tiny-buffer TCP: host-only (no switch attachment), like
// plain TCP.
func init() {
	transport.Register("tinytcp", transport.Factory{
		Desc:    "tiny-buffer TCP: paced NewReno with a capped window, sized for ~10-packet buffers",
		Compare: true,
		Dial: func(c transport.DialConfig) transport.Conn {
			probe, _ := c.Probe.(tcp.Probe)
			s, r := Dial(tcp.Config{
				Sim: c.Sim, Local: c.Local, Peer: c.Peer, Flow: c.Flow,
				MSS: c.MSS, MinRTO: c.MinRTO,
				OnDrain: c.OnDrain, OnComplete: c.OnComplete,
				Probe: probe,
			})
			return transport.Conn{Sender: s, Received: r.Received, SRTT: s.SRTT}
		},
	})
}
