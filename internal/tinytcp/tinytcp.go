// Package tinytcp implements the tiny-buffer TCP baseline: NewReno with
// per-flow pacing and a capped congestion window, the configuration the
// buffer-sizing literature (Appenzeller et al., SIGCOMM 2004, and the
// later tiny-buffer results) shows can run on switches with O(10)-packet
// buffers. Pacing removes the ACK-clocked bursts that drop-tail queues
// otherwise have to absorb; the window cap keeps slow start from
// overshooting shallow buffers by whole windows.
//
// Like package dctcp it is a thin layer over package tcp — the pacing
// gate and window clamp live in the TCP sender (Config.Pace and
// Config.CwndCap) so the NewReno machinery is shared, not forked.
package tinytcp

import (
	"tfcsim/internal/tcp"
	"tfcsim/internal/transport"
)

// DefaultCwndCapSegs is the default window cap in segments. It sits well
// above the testbed topologies' bandwidth-delay product (~8 segments at
// 1 Gbps / 90 µs), so a lone flow still fills the link, while bounding
// how far past the BDP slow start can overshoot a ~10-packet buffer.
const DefaultCwndCapSegs = 32

// Dial creates a paced, window-capped TCP connection. Zero-valued Pace
// and CwndCap fields are overridden; everything else in cfg is passed
// through to package tcp.
func Dial(cfg tcp.Config) (*tcp.Sender, *tcp.Receiver) {
	cfg.Pace = true
	if cfg.CwndCap == 0 {
		mss := cfg.MSS
		if mss == 0 {
			mss = transport.DefaultMSS
		}
		cfg.CwndCap = int64(DefaultCwndCapSegs * mss)
	}
	return tcp.Dial(cfg)
}
