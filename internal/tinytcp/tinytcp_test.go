package tinytcp

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/tcp"
	"tfcsim/internal/transport"
)

// rig is the tiny-buffer dumbbell: h1 --10G-- sw --1G-- h2 with only a
// handful of frames of buffering at the bottleneck.
type rig struct {
	s      *sim.Simulator
	h1, h2 *netsim.Host
	bott   *netsim.Port
}

func newRig(buf int) *rig {
	s := sim.New(42)
	net := netsim.NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	net.Connect(h1, sw, netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 5 * sim.Microsecond})
	net.Connect(sw, h2, netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond, BufA: buf})
	net.ComputeRoutes()
	return &rig{s: s, h1: h1, h2: h2, bott: sw.PortTo(h2.ID())}
}

func (r *rig) conn(flow netsim.FlowID) (*tcp.Sender, *tcp.Receiver) {
	return Dial(tcp.Config{Sim: r.s, Local: r.h1, Peer: r.h2, Flow: flow})
}

func TestCwndNeverExceedsCap(t *testing.T) {
	r := newRig(1 << 20) // deep buffer: nothing but the cap limits growth
	snd, _ := r.conn(1)
	cap64 := int64(DefaultCwndCapSegs * transport.DefaultMSS)
	r.s.At(0, func() { snd.Open(); snd.Send(50 << 20) })
	var worst int64
	var poll func()
	poll = func() {
		if c := snd.Cwnd(); c > worst {
			worst = c
		}
		r.s.After(100*sim.Microsecond, poll)
	}
	r.s.At(0, poll)
	r.s.RunUntil(200 * sim.Millisecond)
	if worst > cap64 {
		t.Fatalf("cwnd reached %d, cap is %d", worst, cap64)
	}
	if worst < cap64/2 {
		t.Fatalf("cwnd peaked at %d, never approached cap %d", worst, cap64)
	}
}

func TestTinyBufferTransfer(t *testing.T) {
	// 10 frames of buffer — the regime the baseline exists for. The
	// transfer must complete at near line rate despite the shallow queue.
	r := newRig(10 * 1518)
	const total = 10 << 20
	snd, rcv := r.conn(1)
	r.s.At(0, func() {
		snd.Open()
		snd.Send(total)
		snd.Close()
	})
	r.s.Run()
	if rcv.Received() != total {
		t.Fatalf("received %d, want %d", rcv.Received(), total)
	}
	goodput := float64(total) * 8 / snd.Stats().FCT().Seconds()
	if goodput < 0.80e9 {
		t.Fatalf("goodput = %.1f Mbps through a 10-frame buffer, want > 800", goodput/1e6)
	}
}

func TestCapBoundsStandingQueue(t *testing.T) {
	// Head-to-head on a deep (1MB) buffer: stock NewReno probes until it
	// fills the whole buffer and drops; the capped window bounds the
	// standing queue at cap-minus-BDP and never overflows. This is the
	// buffer-sizing argument in one run — the deep buffer bought stock TCP
	// nothing but queueing delay.
	run := func(tiny bool) (maxq int, drops int64) {
		r := newRig(1 << 20)
		var snd *tcp.Sender
		if tiny {
			snd, _ = r.conn(1)
		} else {
			snd, _ = tcp.Dial(tcp.Config{Sim: r.s, Local: r.h1, Peer: r.h2, Flow: 1})
		}
		r.s.At(0, func() { snd.Open(); snd.Send(20 << 20); snd.Close() })
		r.s.Run()
		return r.bott.MaxQueue, r.bott.Drops
	}
	stockQ, stockDrops := run(false)
	tinyQ, tinyDrops := run(true)
	cap64 := DefaultCwndCapSegs * transport.DefaultMSS
	if tinyQ > cap64 {
		t.Fatalf("tinytcp max queue %d exceeds the %d-byte window cap", tinyQ, cap64)
	}
	if tinyDrops != 0 {
		t.Fatalf("tinytcp dropped %d packets on a deep buffer", tinyDrops)
	}
	if stockQ < 4*tinyQ {
		t.Fatalf("stock max queue %d vs tinytcp %d: expected stock to fill the deep buffer", stockQ, tinyQ)
	}
	if stockDrops == 0 {
		t.Fatal("stock TCP never overflowed the buffer; scenario too gentle to compare")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, sim.Time) {
		r := newRig(10 * 1518)
		snd, _ := r.conn(1)
		r.s.At(0, func() { snd.Open(); snd.Send(5 << 20); snd.Close() })
		r.s.Run()
		return snd.Acked(), snd.Stats().Completed
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Fatalf("same-seed runs diverged: (%d,%v) vs (%d,%v)", a1, c1, a2, c2)
	}
}
