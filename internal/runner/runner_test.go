package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderingDeterminism(t *testing.T) {
	// Results must come back in trial order with index-derived seeds,
	// regardless of worker count.
	trial := func(i int, seed int64) (string, error) {
		// Stagger completion so later trials finish first.
		time.Sleep(time.Duration(64-i) * time.Microsecond)
		return fmt.Sprintf("%d:%d", i, seed), nil
	}
	ref, refM, err := Map(context.Background(), Serial(42), 64, trial)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8, 64} {
		got, gotM, err := Map(context.Background(), &Pool{Parallelism: par, BaseSeed: 42}, 64, trial)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("j=%d: result[%d] = %q, serial %q", par, i, got[i], ref[i])
			}
			if gotM[i].Seed != refM[i].Seed || gotM[i].Index != i {
				t.Fatalf("j=%d: metrics[%d] = %+v, serial %+v", par, i, gotM[i], refM[i])
			}
		}
	}
}

func TestDeriveSeedStable(t *testing.T) {
	// The schedule is pure: same inputs, same seed; distinct trials,
	// distinct seeds (for any sweep size we will ever run).
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		s := DeriveSeed(7, i)
		if s != DeriveSeed(7, i) {
			t.Fatal("DeriveSeed not pure")
		}
		if seen[s] {
			t.Fatalf("seed collision at trial %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("base seed ignored")
	}
}

func TestPanicCapture(t *testing.T) {
	res, m, err := Map(context.Background(), Serial(1), 3, func(i int, seed int64) (int, error) {
		if i == 1 {
			panic("boom")
		}
		return i * 10, nil
	})
	if err == nil {
		t.Fatal("want error from panicking trial")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Trial != 1 || !strings.Contains(err.Error(), "boom") || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured faithfully: %+v", pe)
	}
	// The other trials still produced results.
	if res[0] != 0 || res[2] != 20 {
		t.Fatalf("non-panicking trials lost: %v", res)
	}
	if m[1].Err == nil || m[0].Err != nil || m[2].Err != nil {
		t.Fatalf("metrics errs wrong: %+v", m)
	}
}

func TestTrialErrorLowestIndexWins(t *testing.T) {
	_, _, err := Map(context.Background(), &Pool{Parallelism: 4, BaseSeed: 1}, 8,
		func(i int, seed int64) (int, error) {
			if i >= 5 {
				return 0, fmt.Errorf("fail-%d", i)
			}
			return i, nil
		})
	if err == nil || !strings.Contains(err.Error(), "fail-5") {
		t.Fatalf("want trial 5's error, got %v", err)
	}
}

func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	done := make(chan struct{})
	var res []int
	var m []Metrics
	var err error
	go func() {
		defer close(done)
		res, m, err = Map(ctx, &Pool{Parallelism: 2, BaseSeed: 1}, 100,
			func(i int, seed int64) (int, error) {
				started.Add(1)
				<-release
				return i, nil
			})
	}()
	// Let the two workers pick up trials, then cancel while they block.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// In-flight trials completed; most of the sweep was skipped.
	var ran, skipped int
	for i := range m {
		if m[i].Skipped {
			skipped++
		} else {
			ran++
			if res[i] != i {
				t.Fatalf("in-flight trial %d lost its result", i)
			}
		}
	}
	if ran == 0 || ran > 4 || skipped < 96 {
		t.Fatalf("ran=%d skipped=%d; cancellation did not stop dispatch", ran, skipped)
	}
}

type countedResult struct{ events uint64 }

func (c countedResult) SimEvents() uint64 { return c.events }

func TestMetricsEventsAndWall(t *testing.T) {
	var got []Metrics
	p := &Pool{Parallelism: 1, BaseSeed: 9, OnDone: func(m Metrics) { got = append(got, m) }}
	_, m, err := Map(context.Background(), p, 3, func(i int, seed int64) (countedResult, error) {
		return countedResult{events: uint64(100 + i)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if m[i].Events != uint64(100+i) {
			t.Fatalf("trial %d events = %d", i, m[i].Events)
		}
		if m[i].Wall < 0 {
			t.Fatalf("trial %d wall = %v", i, m[i].Wall)
		}
	}
	if len(got) != 3 {
		t.Fatalf("OnDone fired %d times, want 3", len(got))
	}
}

func TestRunSliceForm(t *testing.T) {
	trials := []func(seed int64) (int64, error){
		func(seed int64) (int64, error) { return seed, nil },
		func(seed int64) (int64, error) { return seed, nil },
	}
	res, _, err := Run(context.Background(), Serial(5), trials)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != DeriveSeed(5, 0) || res[1] != DeriveSeed(5, 1) {
		t.Fatalf("trials did not receive derived seeds: %v", res)
	}
}

func TestStress64ConcurrentTrials(t *testing.T) {
	// 64 concurrent trials hammering their own state; run under -race
	// this proves trial isolation (no shared mutable state in the pool).
	type buf struct{ xs []int }
	res, _, err := Map(context.Background(), &Pool{Parallelism: 64, BaseSeed: 3}, 64,
		func(i int, seed int64) (*buf, error) {
			b := &buf{}
			for k := 0; k < 1000; k++ {
				b.xs = append(b.xs, i*1000+k)
			}
			return b, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range res {
		if len(b.xs) != 1000 || b.xs[0] != i*1000 {
			t.Fatalf("trial %d corrupted: len=%d first=%d", i, len(b.xs), b.xs[0])
		}
	}
}

func TestNilAndZeroPool(t *testing.T) {
	res, _, err := Map(context.Background(), nil, 4, func(i int, seed int64) (int64, error) {
		return seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i] != DeriveSeed(0, i) {
			t.Fatalf("nil pool seed[%d] = %d", i, res[i])
		}
	}
	if _, _, err := Map(context.Background(), &Pool{}, 0, func(i int, seed int64) (int, error) {
		t.Fatal("trial called for n=0")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
}
