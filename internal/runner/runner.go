// Package runner is a worker-pool executor for independent simulation
// trials. Every experiment sweep in this repository is a set of fully
// independent deterministic simulations (each trial owns a private
// sim.Simulator), so they can fan out across cores freely; the only hard
// requirement is that parallel execution must be observationally
// identical to serial execution. The pool guarantees that by
//
//   - deriving every trial's seed from (BaseSeed, trial index) with a
//     splitmix64 mix, so seeds do not depend on scheduling order;
//   - returning results indexed by trial, so output ordering does not
//     depend on completion order;
//   - keeping trials share-nothing: the pool passes in a seed and takes
//     back a value, nothing else.
//
// A panicking trial fails that trial with a captured stack instead of
// killing the process, and a cancelled context stops dispatching new
// trials while letting in-flight ones finish.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Pool describes how a batch of trials is executed. The zero value (and a
// nil *Pool) is valid: GOMAXPROCS workers, base seed 0. Pools carry no
// run state and may be reused across Map/Run calls.
type Pool struct {
	// Parallelism is the number of concurrent trials; <= 0 means
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// BaseSeed is the root of per-trial seed derivation: trial i runs
	// with DeriveSeed(BaseSeed, i) regardless of which worker picks it up.
	BaseSeed int64
	// OnDone, if set, is called with each trial's metrics as it
	// completes. Calls are serialized by the pool but arrive in
	// completion order, not trial order; the callback must not block.
	OnDone func(Metrics)
	// SameSeed makes every trial receive BaseSeed itself instead of a
	// per-index derivation — for paired A/B comparisons (ablations) where
	// the trials must differ only in configuration, never in seed.
	SameSeed bool
}

func (p *Pool) workers() int {
	if p == nil || p.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Parallelism
}

func (p *Pool) baseSeed() int64 {
	if p == nil {
		return 0
	}
	return p.BaseSeed
}

// Serial returns a single-worker pool with the given base seed — handy
// for callers that want the deterministic seed schedule without
// concurrency (tests, paired comparisons).
func Serial(baseSeed int64) *Pool {
	return &Pool{Parallelism: 1, BaseSeed: baseSeed}
}

// Paired returns a copy of p with SameSeed set: all trials run with
// BaseSeed so an ablation pair differs only in its configuration.
func (p *Pool) Paired() *Pool {
	var q Pool
	if p != nil {
		q = *p
	}
	q.SameSeed = true
	return &q
}

// DeriveSeed maps (base, trial) to a trial seed with a splitmix64-style
// finalizer. The derivation depends only on the inputs, so a sweep's seed
// schedule is identical whether it runs serially or across N workers.
func DeriveSeed(base int64, trial int) int64 {
	x := uint64(base) + uint64(trial+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Metrics records one trial's execution.
type Metrics struct {
	Index int   // trial index within the batch
	Seed  int64 // derived seed the trial ran with
	Wall  time.Duration
	// Events is the trial's simulation event count, when the trial's
	// result reports one (see EventCounter).
	Events uint64
	// Err is the trial's failure, if any (a *PanicError for panics).
	Err error
	// Skipped marks trials that were never dispatched because the
	// context was cancelled first.
	Skipped bool
}

// EventCounter is implemented by trial results that can report how many
// simulator events the trial executed; the pool folds it into Metrics.
type EventCounter interface {
	SimEvents() uint64
}

// PanicError wraps a panic raised inside a trial.
type PanicError struct {
	Trial int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("trial %d panicked: %v\n%s", e.Trial, e.Value, e.Stack)
}

// Map runs n independent trials across the pool's workers and returns
// their results in trial order. trial receives the trial's index and its
// derived seed; it must not share mutable state with other trials.
//
// If ctx is cancelled, undispatched trials are skipped (marked in their
// Metrics), in-flight trials run to completion, and Map returns ctx.Err().
// Otherwise Map returns the lowest-index trial error, if any; results of
// the successful trials are valid either way.
func Map[T any](ctx context.Context, p *Pool, n int, trial func(i int, seed int64) (T, error)) ([]T, []Metrics, error) {
	results := make([]T, n)
	metrics := make([]Metrics, n)
	base := p.baseSeed()
	seedFor := func(i int) int64 {
		if p != nil && p.SameSeed {
			return base
		}
		return DeriveSeed(base, i)
	}
	for i := range metrics {
		metrics[i] = Metrics{Index: i, Seed: seedFor(i), Skipped: true}
	}
	if n == 0 {
		return results, metrics, ctx.Err()
	}

	workers := p.workers()
	if workers > n {
		workers = n
	}
	var mu sync.Mutex // serializes OnDone
	run := func(i int) {
		m := &metrics[i]
		m.Skipped = false
		start := time.Now() //tfcvet:allow wallclock — Metrics.Wall times the trial's real execution; trial results depend only on the seed
		defer func() {
			if r := recover(); r != nil {
				m.Err = &PanicError{Trial: i, Value: r, Stack: debug.Stack()}
			}
			m.Wall = time.Since(start) //tfcvet:allow wallclock — Metrics.Wall times the trial's real execution; trial results depend only on the seed
			if m.Err == nil {
				if ec, ok := any(results[i]).(EventCounter); ok {
					m.Events = ec.SimEvents()
				}
			}
			if p != nil && p.OnDone != nil {
				mu.Lock()
				p.OnDone(*m)
				mu.Unlock()
			}
		}()
		v, err := trial(i, m.Seed)
		results[i] = v
		m.Err = err
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				run(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return results, metrics, err
	}
	for i := range metrics {
		if metrics[i].Err != nil {
			return results, metrics, fmt.Errorf("runner: trial %d (seed %d): %w", i, metrics[i].Seed, metrics[i].Err)
		}
	}
	return results, metrics, nil
}

// Run executes a fixed slice of trials, each a func(seed) (T, error) as
// in Map; trials[i] runs with DeriveSeed(BaseSeed, i).
func Run[T any](ctx context.Context, p *Pool, trials []func(seed int64) (T, error)) ([]T, []Metrics, error) {
	return Map(ctx, p, len(trials), func(i int, seed int64) (T, error) {
		return trials[i](seed)
	})
}
