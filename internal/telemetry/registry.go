package telemetry

import (
	"sync"
	"sync/atomic"

	"tfcsim/internal/sim"
	"tfcsim/internal/stats"
)

// Counter is a monotonically written int64 metric. A nil *Counter (from
// a nil trial) absorbs writes at the cost of one nil-check. Writes are
// atomic: counter-only probe paths (packet enqueue/dequeue, marks,
// pauses) stay lock-free when shard goroutines fire them concurrently.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter by n. Nil-safe, goroutine-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		atomic.AddInt64(&c.v, n)
	}
}

// Inc increments the counter by one. Nil-safe, goroutine-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// gauge is a registered callback polled on the sampling cadence.
type gauge struct {
	name   string
	fn     func() float64
	series stats.TimeSeries
}

// Hist is a registered fixed-bucket histogram. A nil *Hist absorbs
// observations. Observe serializes internally: histogram probes fire
// from shard goroutines in a partitioned network.
type Hist struct {
	name string
	mu   sync.Mutex
	h    *stats.Histogram
}

// Observe counts one observation. Nil-safe, goroutine-safe.
func (h *Hist) Observe(x float64) {
	if h != nil {
		h.mu.Lock()
		h.h.Observe(x)
		h.mu.Unlock()
	}
}

// defaultBuckets covers bytes-scale metrics (cwnd, window, queue) from
// one segment to 16 MB in powers of two.
var defaultBuckets = stats.ExpBuckets(1024, 2, 15)

// registry holds a trial's metrics. Creation order is kept in slices so
// that gauge sampling never iterates a map; export sorts by name.
type registry struct {
	counters []*Counter
	gauges   []*gauge
	hists    []*Hist
	cIdx     map[string]int
	gIdx     map[string]int
	hIdx     map[string]int
}

func (r *registry) counter(name string) *Counter {
	if i, ok := r.cIdx[name]; ok {
		return r.counters[i]
	}
	if r.cIdx == nil {
		r.cIdx = make(map[string]int)
	}
	c := &Counter{name: name}
	r.cIdx[name] = len(r.counters)
	r.counters = append(r.counters, c)
	return c
}

func (r *registry) gauge(name string, fn func() float64) {
	if _, dup := r.gIdx[name]; dup {
		panic("telemetry: duplicate gauge " + name)
	}
	if r.gIdx == nil {
		r.gIdx = make(map[string]int)
	}
	r.gIdx[name] = len(r.gauges)
	g := &gauge{name: name, fn: fn}
	// Pre-size the sample buffers: at the default 1ms cadence this covers
	// a quarter-second of simulation before the series ever grows, keeping
	// append-driven reallocation off the sampling path.
	g.series.T = make([]sim.Time, 0, 256)
	g.series.V = make([]float64, 0, 256)
	r.gauges = append(r.gauges, g)
}

func (r *registry) histogram(name string, bounds []float64) *Hist {
	if i, ok := r.hIdx[name]; ok {
		return r.hists[i]
	}
	if r.hIdx == nil {
		r.hIdx = make(map[string]int)
	}
	if len(bounds) == 0 {
		bounds = defaultBuckets
	}
	h := &Hist{name: name, h: stats.NewHistogram(bounds...)}
	r.hIdx[name] = len(r.hists)
	r.hists = append(r.hists, h)
	return h
}

// sample polls every gauge at virtual time now, in registration order.
func (r *registry) sample(now sim.Time) {
	for _, g := range r.gauges {
		g.series.Add(now, g.fn())
	}
}
