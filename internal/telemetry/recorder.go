package telemetry

import (
	"sort"

	"tfcsim/internal/sim"
)

// Arg is one numeric key/value attached to a recorded event. Trace
// events carry only numbers: strings would force per-event allocation on
// the hot path and everything the viewers graph is numeric anyway.
type Arg struct {
	K string
	V float64
}

// maxArgs bounds the args an event can carry. Args live inline in the
// event struct so that pushing an event never allocates: the variadic
// slice at the probe call site is copied by value and never escapes.
const maxArgs = 3

// event is one recorded trace event. ph follows the Chrome trace-event
// phases used here: 'X' complete span (ts+dur), 'i' instant, 'C' counter.
// Events carry their track name directly (not an interned id): in a
// partitioned network events arrive from shard goroutines in
// nondeterministic order, so any first-use interning would be
// nondeterministic too — export derives thread ids from the sorted track
// names instead.
type event struct {
	name  string
	cat   string
	track string
	ph    byte
	nargs uint8
	ts    sim.Time
	dur   sim.Time
	args  [maxArgs]Arg
}

// setArgs copies args inline (pushing more than maxArgs is a programming
// error in this package's probes, caught loudly rather than truncated).
func (e *event) setArgs(args []Arg) {
	if len(args) > maxArgs {
		panic("telemetry: event exceeds maxArgs")
	}
	e.nargs = uint8(copy(e.args[:], args))
}

// eventLess is the canonical total order on events: virtual timestamp,
// then every remaining field. Two events that compare equal are
// field-for-field identical, so any ordering (or eviction choice) among
// equals leaves the exported bytes unchanged. This is what makes the
// recorder's output a pure function of the event *multiset* — and the
// multiset is identical between sequential and sharded execution of the
// same simulation, even though arrival order is not.
func eventLess(a, b *event) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	if a.track != b.track {
		return a.track < b.track
	}
	if a.ph != b.ph {
		return a.ph < b.ph
	}
	if a.cat != b.cat {
		return a.cat < b.cat
	}
	if a.name != b.name {
		return a.name < b.name
	}
	if a.dur != b.dur {
		return a.dur < b.dur
	}
	if a.nargs != b.nargs {
		return a.nargs < b.nargs
	}
	for i := uint8(0); i < a.nargs; i++ {
		if a.args[i].K != b.args[i].K {
			return a.args[i].K < b.args[i].K
		}
		if a.args[i].V != b.args[i].V {
			return a.args[i].V < b.args[i].V
		}
	}
	return false
}

// recorder keeps the canonically-largest `cap` events seen so far (a
// min-heap ordered by eventLess, evicting the minimum on overflow).
// Because eviction always removes the global canonical minimum, the
// retained set is the top-cap of the full event multiset — invariant
// under arrival order, which is exactly what sharded execution needs for
// byte-identical traces. Since the canonical order leads with the
// timestamp, "keep the largest" preserves the old ring's behaviour of
// keeping a trial's tail (usually the interesting part).
type recorder struct {
	limit int
	buf   []event // min-heap by eventLess
	total int64   // all events ever pushed
}

func (r *recorder) init(limit int) {
	r.limit = limit
	r.buf = make([]event, 0, limit)
}

// push records one event, evicting the canonical minimum when full.
// Callers must hold the owning Trial's mutex.
func (r *recorder) push(e event) {
	r.total++
	if len(r.buf) < r.limit {
		r.buf = append(r.buf, e)
		r.siftUp(len(r.buf) - 1)
		return
	}
	if eventLess(&e, &r.buf[0]) {
		return // below the kept range entirely
	}
	r.buf[0] = e
	r.siftDown(0)
}

func (r *recorder) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&r.buf[i], &r.buf[parent]) {
			return
		}
		r.buf[i], r.buf[parent] = r.buf[parent], r.buf[i]
		i = parent
	}
}

func (r *recorder) siftDown(i int) {
	n := len(r.buf)
	for {
		min, l, rt := i, 2*i+1, 2*i+2
		if l < n && eventLess(&r.buf[l], &r.buf[min]) {
			min = l
		}
		if rt < n && eventLess(&r.buf[rt], &r.buf[min]) {
			min = rt
		}
		if min == i {
			return
		}
		r.buf[i], r.buf[min] = r.buf[min], r.buf[i]
		i = min
	}
}

// dropped counts events evicted (or never admitted) by the size limit.
func (r *recorder) dropped() int64 { return r.total - int64(len(r.buf)) }

// events returns the retained events in canonical ascending order.
func (r *recorder) events() []event {
	out := make([]event, len(r.buf))
	copy(out, r.buf)
	sort.Slice(out, func(i, j int) bool { return eventLess(&out[i], &out[j]) })
	return out
}

// tracks returns the sorted distinct track names of the retained events;
// export numbers thread ids from this list (tid = index + 1).
func (r *recorder) tracks() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range r.buf {
		if !seen[r.buf[i].track] {
			seen[r.buf[i].track] = true
			out = append(out, r.buf[i].track)
		}
	}
	sort.Strings(out)
	return out
}
