package telemetry

import "tfcsim/internal/sim"

// Arg is one numeric key/value attached to a recorded event. Trace
// events carry only numbers: strings would force per-event allocation on
// the hot path and everything the viewers graph is numeric anyway.
type Arg struct {
	K string
	V float64
}

// maxArgs bounds the args an event can carry. Args live inline in the
// event struct so that pushing an event never allocates: the variadic
// slice at the probe call site is copied by value and never escapes.
const maxArgs = 3

// event is one recorded trace event. ph follows the Chrome trace-event
// phases used here: 'X' complete span (ts+dur), 'i' instant, 'C' counter.
type event struct {
	name  string
	cat   string
	ph    byte
	nargs uint8
	ts    sim.Time
	dur   sim.Time
	tid   int
	args  [maxArgs]Arg
}

// setArgs copies args inline (pushing more than maxArgs is a programming
// error in this package's probes, caught loudly rather than truncated).
func (e *event) setArgs(args []Arg) {
	if len(args) > maxArgs {
		panic("telemetry: event exceeds maxArgs")
	}
	e.nargs = uint8(copy(e.args[:], args))
}

// recorder is a bounded ring of events. When full, the oldest events are
// overwritten (a trial's tail is usually the interesting part) and
// counted in dropped. Track names are interned to small integer tids in
// first-use order — deterministic because the simulation is.
type recorder struct {
	buf     []event
	head    int // index of the oldest event
	n       int
	dropped int64

	tidIdx   map[string]int
	tidNames []string
}

func (r *recorder) init(cap int) {
	r.buf = make([]event, 0, cap)
	r.tidIdx = make(map[string]int)
}

// tid interns a track name. tid 0 is reserved for process metadata.
func (r *recorder) tid(track string) int {
	if id, ok := r.tidIdx[track]; ok {
		return id
	}
	id := len(r.tidNames) + 1
	r.tidIdx[track] = id
	r.tidNames = append(r.tidNames, track)
	return id
}

func (r *recorder) push(e event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		r.n++
		return
	}
	// Full: overwrite the oldest.
	r.buf[r.head] = e
	r.head = (r.head + 1) % len(r.buf)
	r.dropped++
}

// events returns the recorded events oldest-first.
func (r *recorder) events() []event {
	out := make([]event, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}
