package telemetry

import (
	"fmt"
	"sort"

	"tfcsim/internal/bfc"
	"tfcsim/internal/core"
	"tfcsim/internal/credit"
	"tfcsim/internal/faults"
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/tcp"
)

// flowName formats the per-flow track/event label.
func flowName(prefix string, f netsim.FlowID) string {
	return fmt.Sprintf("%s f%d", prefix, f)
}

// portKey is a unique, deterministic per-port metric/track suffix.
// Labels alone can collide (topology builders reuse node names, e.g.
// every testbed host is "H"); node IDs cannot.
func portKey(p *netsim.Port) string {
	return fmt.Sprintf("%s#%d-%d", p.Label, p.Owner.ID(), p.Peer.ID())
}

// flowLabelKey keys the per-trial label cache. Probes that fire per
// ACK or per slot would otherwise Sprintf the same handful of labels
// millions of times.
type flowLabelKey struct {
	prefix string
	flow   netsim.FlowID
}

// flowLabel is the caching form of flowName. Only formats once per
// (prefix, flow); lookups allocate nothing. Goroutine-safe: probes call
// it from shard goroutines in a partitioned network.
func (t *Trial) flowLabel(prefix string, f netsim.FlowID) string {
	k := flowLabelKey{prefix, f}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.flowLabels[k]; ok {
		return s
	}
	if t.flowLabels == nil {
		t.flowLabels = make(map[flowLabelKey]string)
	}
	s := flowName(prefix, f)
	t.flowLabels[k] = s
	return s
}

// portLabel is the caching form of portKey. Keyed by port pointer —
// lookup only, never iterated, so determinism is unaffected.
// Goroutine-safe like flowLabel.
func (t *Trial) portLabel(p *netsim.Port) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.portLabels[p]; ok {
		return s
	}
	if t.portLabels == nil {
		t.portLabels = make(map[*netsim.Port]string)
	}
	s := portKey(p)
	t.portLabels[p] = s
	return s
}

// --- netsim: forwarding path ---

type flowTrack struct {
	start sim.Time
	bytes int64
	pkts  int64
}

// netProbe implements netsim.Probe: forwarding-path counters, per-drop
// instants, link-down spans, and flow-lifetime spans derived from the
// sender NIC (first data-direction packet opens the flow, FIN closes
// it). It copies packet fields and retains no pointers. Timestamps come
// from the observed port's own simulator (its shard clock), never the
// trial's control clock; the shared maps are guarded by the trial mutex
// because shard goroutines fire these callbacks concurrently.
type netProbe struct {
	t                      *Trial
	enq, deq, drops, dropB *Counter
	flows                  map[netsim.FlowID]*flowTrack
	downAt                 map[string]sim.Time
	// qdepth holds the per-switch-port dequeue-depth histograms (engine
	// self-profiling): each service completion observes the queue length
	// left behind. Keyed by port pointer — lookup only, never iterated.
	qdepth map[*netsim.Port]*Hist
}

func (p *netProbe) ensure() {
	if p.flows != nil {
		return
	}
	p.enq = p.t.Counter("net.enq_pkts")
	p.deq = p.t.Counter("net.deq_pkts")
	p.drops = p.t.Counter("net.drops")
	p.dropB = p.t.Counter("net.drop_bytes")
	p.flows = make(map[netsim.FlowID]*flowTrack)
	p.downAt = make(map[string]sim.Time)
	p.qdepth = make(map[*netsim.Port]*Hist)
}

func (p *netProbe) PortEnqueue(port *netsim.Port, pkt *netsim.Packet) {
	p.enq.Inc()
	if h := p.t.hooks; h != nil && h.Net != nil {
		h.Net.PortEnqueue(port, pkt)
	}
	if _, isHost := port.Owner.(*netsim.Host); !isHost || pkt.Flags&netsim.FlagACK != 0 {
		return
	}
	now := port.Sim().Now()
	// Sender-NIC data direction: track the flow's lifetime exactly once
	// per packet (every other hop would double-count). A given flow only
	// ever enqueues at its own sender NIC, so the two-step below (map
	// mutation under the lock, span emission after) cannot interleave for
	// the same flow; the lock protects the map against *other* flows'
	// shards.
	if pkt.Flags&netsim.FlagFIN != 0 {
		p.t.mu.Lock()
		ft := p.flows[pkt.Flow]
		delete(p.flows, pkt.Flow)
		p.t.mu.Unlock()
		if ft != nil {
			p.t.Span("flow", p.t.flowLabel("flow", pkt.Flow), "flows", ft.start, now,
				Arg{"bytes", float64(ft.bytes)}, Arg{"pkts", float64(ft.pkts)})
		}
		return
	}
	p.t.mu.Lock()
	ft := p.flows[pkt.Flow]
	if ft == nil {
		ft = &flowTrack{start: now}
		p.flows[pkt.Flow] = ft
	}
	ft.bytes += int64(pkt.Payload)
	ft.pkts++
	p.t.mu.Unlock()
}

func (p *netProbe) PortDequeue(port *netsim.Port, pkt *netsim.Packet) {
	p.deq.Inc()
	if _, isSwitch := port.Owner.(*netsim.Switch); isSwitch {
		p.portHist(port).Observe(float64(port.QueueLen()))
	}
	if h := p.t.hooks; h != nil && h.Net != nil {
		h.Net.PortDequeue(port, pkt)
	}
}

// portHist returns port's dequeue-depth histogram, creating it on first
// use. The set of ports that ever dequeue is a pure function of the
// trial seed, and metric names are sorted at export, so lazy creation
// does not perturb the output.
func (p *netProbe) portHist(port *netsim.Port) *Hist {
	p.t.mu.Lock()
	h, ok := p.qdepth[port]
	p.t.mu.Unlock()
	if ok {
		return h
	}
	h = p.t.Histogram("port.qdepth_pkts."+p.t.portLabel(port),
		0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
	p.t.mu.Lock()
	p.qdepth[port] = h
	p.t.mu.Unlock()
	return h
}

// PortTx marks the end of a frame's serialization (start of propagation).
func (p *netProbe) PortTx(port *netsim.Port, pkt *netsim.Packet) {
	if h := p.t.hooks; h != nil && h.Net != nil {
		h.Net.PortTx(port, pkt)
	}
}

func (p *netProbe) PortDrop(port *netsim.Port, pkt *netsim.Packet) {
	p.drops.Inc()
	p.dropB.Add(int64(pkt.FrameBytes()))
	p.t.InstantAt(port.Sim().Now(), "net", "drop "+p.t.portLabel(port), "drops",
		Arg{"flow", float64(pkt.Flow)}, Arg{"seq", float64(pkt.Seq)})
	if h := p.t.hooks; h != nil && h.Net != nil {
		h.Net.PortDrop(port, pkt)
	}
}

// HostDeliver marks a packet's arrival at its destination endpoint.
func (p *netProbe) HostDeliver(host *netsim.Host, pkt *netsim.Packet) {
	if h := p.t.hooks; h != nil && h.Net != nil {
		h.Net.HostDeliver(host, pkt)
	}
}

func (p *netProbe) LinkState(port *netsim.Port, down bool) {
	key := p.t.portLabel(port)
	now := port.Sim().Now()
	p.t.mu.Lock()
	if down {
		p.downAt[key] = now
		p.t.mu.Unlock()
		return
	}
	at, ok := p.downAt[key]
	delete(p.downAt, key)
	p.t.mu.Unlock()
	if ok {
		p.t.Span("net", "link-down "+key, "links", at, now)
	}
	if h := p.t.hooks; h != nil && h.Net != nil {
		h.Net.LinkState(port, down)
	}
}

func (p *netProbe) flush(now sim.Time) {
	if p.flows == nil {
		return
	}
	ids := make([]int64, 0, len(p.flows))
	for f := range p.flows {
		ids = append(ids, int64(f))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := netsim.FlowID(id)
		ft := p.flows[f]
		p.t.Span("flow", p.t.flowLabel("flow", f), "flows", ft.start, now,
			Arg{"bytes", float64(ft.bytes)}, Arg{"pkts", float64(ft.pkts)},
			Arg{"open", 1})
	}
	labels := make([]string, 0, len(p.downAt))
	for l := range p.downAt {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		p.t.Span("net", "link-down "+l, "links", p.downAt[l], now, Arg{"open", 1})
	}
}

// InstrumentNetwork attaches the trial's forwarding-path probe to the
// network and registers a queue-occupancy gauge for every switch port.
// No-op on a nil trial. Call after topology construction and Bind.
func InstrumentNetwork(t *Trial, n *netsim.Network) {
	if t == nil {
		return
	}
	t.net.ensure()
	n.Probe = &t.net
	for _, node := range n.Nodes() {
		sw, ok := node.(*netsim.Switch)
		if !ok {
			continue
		}
		for _, port := range sw.Ports() {
			t.Gauge("port.qlen."+portKey(port), func() float64 {
				return float64(port.QueueBytes())
			})
		}
	}
	if h := t.hooks; h != nil && h.Instrumented != nil {
		h.Instrumented(n)
	}
}

// --- core: TFC control plane ---

type holdKey struct {
	label string
	flow  netsim.FlowID
}

// tfcProbe implements core.Probe: slot counters/histograms, per-slot
// token/flow-count counter events, and ACK-delay-arbiter hold spans.
type tfcProbe struct {
	t                       *Trial
	slots, stamped, delayed *Counter
	rttm                    *Hist
	holdAt                  map[holdKey]sim.Time
}

func (p *tfcProbe) ensure() {
	if p.holdAt != nil {
		return
	}
	p.slots = p.t.Counter("tfc.slots")
	p.stamped = p.t.Counter("tfc.stamped")
	p.delayed = p.t.Counter("tfc.delayed_acks")
	// Slot RTTs in microseconds, 1µs .. ~16ms.
	p.rttm = p.t.Histogram("tfc.rttm_us", 1, 2, 4, 8, 16, 32, 64, 128, 256,
		512, 1024, 2048, 4096, 8192, 16384)
	p.holdAt = make(map[holdKey]sim.Time)
}

func (p *tfcProbe) SlotEnd(port *netsim.Port, info core.SlotInfo) {
	p.slots.Inc()
	p.rttm.Observe(info.RTTm.Micros())
	key := p.t.portLabel(port)
	p.t.CounterEventAt(port.Sim().Now(), "tfc", "tfc "+key, key,
		Arg{"tokens", info.T}, Arg{"eflows", float64(info.E)}, Arg{"window", info.W})
	if h := p.t.hooks; h != nil && h.SlotEnd != nil {
		h.SlotEnd(port, info)
	}
}

func (p *tfcProbe) WindowStamp(port *netsim.Port, flow netsim.FlowID, window int64) {
	p.stamped.Inc()
}

func (p *tfcProbe) DelayHold(port *netsim.Port, flow netsim.FlowID, held int) {
	p.delayed.Inc()
	k := holdKey{p.t.portLabel(port), flow}
	now := port.Sim().Now()
	p.t.mu.Lock()
	if _, dup := p.holdAt[k]; !dup {
		p.holdAt[k] = now
	}
	p.t.mu.Unlock()
}

func (p *tfcProbe) DelayGrant(port *netsim.Port, flow netsim.FlowID, held int) {
	k := holdKey{p.t.portLabel(port), flow}
	now := port.Sim().Now()
	p.t.mu.Lock()
	at, ok := p.holdAt[k]
	delete(p.holdAt, k)
	p.t.mu.Unlock()
	if ok {
		p.t.Span("tfc", p.t.flowLabel("ack-hold", flow), port.Label, at, now,
			Arg{"held", float64(held)})
	}
}

func (p *tfcProbe) flush(now sim.Time) {
	if p.holdAt == nil {
		return
	}
	keys := make([]holdKey, 0, len(p.holdAt))
	for k := range p.holdAt {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].label != keys[j].label {
			return keys[i].label < keys[j].label
		}
		return keys[i].flow < keys[j].flow
	})
	for _, k := range keys {
		p.t.Span("tfc", p.t.flowLabel("ack-hold", k.flow), k.label, p.holdAt[k], now,
			Arg{"open", 1})
	}
}

// InstrumentTFC attaches the trial's TFC probe to a switch config
// (set it before core.Attach copies the config). No-op on a nil trial.
func InstrumentTFC(t *Trial, cfg *core.SwitchConfig) {
	if t == nil {
		return
	}
	t.tfc.ensure()
	cfg.Probe = &t.tfc
}

// RegisterTFCGauges registers token / effective-flow / window gauges for
// every TFC port of a switch. No-op on a nil trial.
func RegisterTFCGauges(t *Trial, ss *core.SwitchState, sw *netsim.Switch) {
	if t == nil {
		return
	}
	for _, port := range sw.Ports() {
		st := ss.PortState(port)
		if st == nil {
			continue
		}
		key := portKey(port)
		t.Gauge("switch.tokens."+key, func() float64 { return st.Tokens() })
		t.Gauge("switch.eflows."+key, func() float64 { return float64(st.EffectiveFlows()) })
		t.Gauge("switch.window."+key, func() float64 { return st.Window() })
	}
}

// --- tcp / dctcp / credit: transports ---

// transportProbe implements both tcp.Probe and credit.Probe (the RTO
// callback is shared): cwnd histogram + counter events, RTO instants,
// fast-recovery spans, retransmit byte counters, credit-rate events.
type transportProbe struct {
	t                    *Trial
	rtxBytes, rtos, recs *Counter
	cwnd                 *Hist
	frAt                 map[netsim.FlowID]sim.Time
}

func (p *transportProbe) ensure() {
	if p.frAt != nil {
		return
	}
	p.rtxBytes = p.t.Counter("tcp.rtx_bytes")
	p.rtos = p.t.Counter("tcp.rto")
	p.recs = p.t.Counter("tcp.fast_recovery")
	p.cwnd = p.t.Histogram("flow.cwnd")
	p.frAt = make(map[netsim.FlowID]sim.Time)
}

func (p *transportProbe) Cwnd(now sim.Time, flow netsim.FlowID, cwnd, ssthresh int64) {
	p.cwnd.Observe(float64(cwnd))
	p.t.CounterEventAt(now, "tcp", p.t.flowLabel("cwnd", flow), "cwnd",
		Arg{"cwnd", float64(cwnd)}, Arg{"ssthresh", float64(ssthresh)})
}

func (p *transportProbe) RTOFired(now sim.Time, flow netsim.FlowID, backoff uint) {
	p.rtos.Inc()
	p.t.InstantAt(now, "tcp", p.t.flowLabel("rto", flow), "rto", Arg{"backoff", float64(backoff)})
	if h := p.t.hooks; h != nil && h.RTO != nil {
		h.RTO(now, flow, backoff)
	}
}

func (p *transportProbe) Recovery(now sim.Time, flow netsim.FlowID, enter bool) {
	if enter {
		p.recs.Inc()
		p.t.mu.Lock()
		if _, dup := p.frAt[flow]; !dup {
			p.frAt[flow] = now
		}
		p.t.mu.Unlock()
		return
	}
	p.t.mu.Lock()
	at, ok := p.frAt[flow]
	delete(p.frAt, flow)
	p.t.mu.Unlock()
	if ok {
		p.t.Span("tcp", p.t.flowLabel("fast-recovery", flow), "recovery", at, now)
	}
}

func (p *transportProbe) Retransmit(now sim.Time, flow netsim.FlowID, bytes int64) {
	p.rtxBytes.Add(bytes)
}

func (p *transportProbe) CreditRate(now sim.Time, flow netsim.FlowID, perSec float64) {
	p.t.CounterEventAt(now, "credit", p.t.flowLabel("credit-rate", flow), "credit",
		Arg{"rate", perSec})
}

func (p *transportProbe) flush(now sim.Time) {
	if p.frAt == nil {
		return
	}
	ids := make([]int64, 0, len(p.frAt))
	for f := range p.frAt {
		ids = append(ids, int64(f))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := netsim.FlowID(id)
		p.t.Span("tcp", p.t.flowLabel("fast-recovery", f), "recovery", p.frAt[f], now,
			Arg{"open", 1})
	}
}

// TCPProbe returns the trial's tcp.Probe (nil for a nil trial), for
// wiring into tcp.Config / dctcp configs.
func (t *Trial) TCPProbe() tcp.Probe {
	if t == nil {
		return nil
	}
	t.tp.ensure()
	return &t.tp
}

// CreditProbe returns the trial's credit.Probe (nil for a nil trial).
func (t *Trial) CreditProbe() credit.Probe {
	if t == nil {
		return nil
	}
	t.tp.ensure()
	return &t.tp
}

// MarkProbe returns a DCTCP marking observer counting CE marks
// (nil for a nil trial), for dctcp.MarkHook.OnMark.
func (t *Trial) MarkProbe() func(*netsim.Port, netsim.FlowID) {
	if t == nil {
		return nil
	}
	c := t.Counter("dctcp.marked")
	return func(port *netsim.Port, flow netsim.FlowID) { c.Inc() }
}

// PauseProbe returns a BFC pause/resume observer counting XOF and XON
// signals (nil for a nil trial), for bfc.Hook.SetProbe.
func (t *Trial) PauseProbe() bfc.PauseProbe {
	if t == nil {
		return nil
	}
	pauses := t.Counter("bfc.pauses")
	resumes := t.Counter("bfc.resumes")
	return func(port *netsim.Port, flow netsim.FlowID, paused bool) {
		if paused {
			pauses.Inc()
		} else {
			resumes.Inc()
		}
		if h := t.hooks; h != nil && h.Pause != nil {
			h.Pause(port, flow, paused)
		}
	}
}

// --- transport registry dispatch ---
//
// The registry moves probes across the transport boundary as opaque any
// values (telemetry imports the protocol packages, so they cannot import
// telemetry back). These two dispatchers map a registered transport name
// to the trial's matching probe; unknown names get nil, which every
// transport tolerates.

// DialProbe returns the sender-side telemetry probe for a named
// transport, shaped for workload.Dialer.Probe. Nil-trial safe.
func (t *Trial) DialProbe(proto string) any {
	if t == nil {
		return nil
	}
	switch proto {
	case "tcp", "dctcp", "tinytcp", "bfc":
		return t.TCPProbe()
	case "credit":
		return t.CreditProbe()
	}
	return nil
}

// SwitchProbe returns the switch-side telemetry probe for a named
// transport, shaped for transport.AttachConfig.Probe. Nil-trial safe.
func (t *Trial) SwitchProbe(proto string) any {
	if t == nil {
		return nil
	}
	switch proto {
	case "tfc":
		t.tfc.ensure()
		return core.Probe(&t.tfc)
	case "dctcp":
		return t.MarkProbe()
	case "bfc":
		return t.PauseProbe()
	}
	return nil
}

// RegisterTransportGauges registers protocol-specific per-switch gauges
// from a registry Attach result (currently TFC's token / effective-flow /
// window gauges; other transports keep no per-switch state worth
// sampling). No-op on a nil trial or a foreign state type.
func RegisterTransportGauges(t *Trial, state any, switches []*netsim.Switch) {
	if t == nil {
		return
	}
	if states, ok := state.(map[*netsim.Switch]*core.SwitchState); ok {
		for _, sw := range switches {
			if ss := states[sw]; ss != nil {
				RegisterTFCGauges(t, ss, sw)
			}
		}
	}
}

// --- faults: injection windows as spans ---

// faultEnd maps a window-closing transition to its opener.
var faultEnd = map[string]string{
	"link-up":      "link-down",
	"rate-restore": "rate-degrade",
	"loss-off":     "loss-on",
	"host-resume":  "host-pause",
}

type openFault struct {
	kind string
	at   sim.Time
}

// faultProbe turns fault-scheduler transitions into trace spans: each
// down/up-style pair becomes one span covering the injection window.
type faultProbe struct {
	t     *Trial
	count *Counter
	open  map[string]openFault // keyed start-kind + target
}

func (p *faultProbe) ensure() {
	if p.open != nil {
		return
	}
	p.count = p.t.Counter("faults.transitions")
	p.open = make(map[string]openFault)
}

func (p *faultProbe) observe(ev faults.Event) {
	p.count.Inc()
	if start, isEnd := faultEnd[ev.Kind]; isEnd {
		key := start + " " + ev.Target
		if o, ok := p.open[key]; ok {
			p.t.Span("fault", key, "faults", o.at, ev.At)
			delete(p.open, key)
			return
		}
		p.t.Instant("fault", ev.Kind+" "+ev.Target, "faults")
		return
	}
	p.open[ev.Kind+" "+ev.Target] = openFault{kind: ev.Kind, at: ev.At}
}

func (p *faultProbe) flush(now sim.Time) {
	if p.open == nil {
		return
	}
	keys := make([]string, 0, len(p.open))
	for k := range p.open {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.t.Span("fault", k, "faults", p.open[k].at, now, Arg{"open", 1})
	}
}

// FaultProbe returns an observer for faults.Scheduler.Probe
// (nil for a nil trial).
func (t *Trial) FaultProbe() func(faults.Event) {
	if t == nil {
		return nil
	}
	t.flt.ensure()
	return t.flt.observe
}
