package telemetry

import (
	"tfcsim/internal/bfc"
	"tfcsim/internal/core"
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// TrialHooks fans a trial's probe stream out to a second observer layered
// on top of telemetry (the runtime observatory in internal/obs). The
// telemetry probes stay the single attachment point in the instrumented
// packages; each callback forwards to the matching hook when one is set.
// Hook implementations are held to the same observer contract as the
// probes themselves (read-only, no scheduling, no Rand — see probepure):
// they run inside the forwarding path on shard goroutines.
//
// Narrow func fields are used where the downstream consumer needs only a
// slice of an interface (SlotEnd, RTO) so observers don't have to stub
// the rest. All fields are optional.
type TrialHooks struct {
	// Bound fires from Bind with the trial's (control) simulator, before
	// any event runs. This is the one hook allowed to schedule: it runs
	// during setup, not from probe context.
	Bound func(s *sim.Simulator)
	// Instrumented fires from InstrumentNetwork after the forwarding
	// probe is attached; setup context, like Bound.
	Instrumented func(n *netsim.Network)
	// Net receives every forwarding-path probe callback.
	Net netsim.Probe
	// SlotEnd receives every TFC slot boundary.
	SlotEnd func(port *netsim.Port, info core.SlotInfo)
	// RTO receives every sender retransmission-timeout firing.
	RTO func(now sim.Time, flow netsim.FlowID, backoff uint)
	// Pause receives every BFC XOF/XON transition.
	Pause bfc.PauseProbe
	// Flush fires once when the trial flushes at export, with the trial's
	// final virtual time.
	Flush func(now sim.Time)
}

// TrialObserver mints the hook set for each trial a Collector creates.
// ObserveTrial runs under the collector's lock from whichever runner
// goroutine mints the trial; it must not call back into the Collector.
type TrialObserver interface {
	ObserveTrial(key string, t *Trial) *TrialHooks
}

// SetObserver installs the collector's trial observer. Call before any
// trial is minted; trials created earlier keep nil hooks. Nil-safe.
func (c *Collector) SetObserver(o TrialObserver) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.observer = o
	c.mu.Unlock()
}
