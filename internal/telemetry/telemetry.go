// Package telemetry is the simulation-native observability layer: a
// typed metrics registry (counters, gauges, fixed-bucket histograms)
// sampled on a virtual-time cadence, and a bounded ring-buffer event
// recorder that exports Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing.
//
// Everything is driven by the simulator's virtual clock — no wall time
// anywhere — so telemetry output is a pure function of the trial seed
// and merges byte-identically at any runner parallelism. Probes are
// read-only observers: they never mutate simulation state and never
// draw from the simulation's random source, so attaching telemetry
// changes no experiment result.
//
// The layer has two halves:
//
//   - a Collector owns the per-run output files and mints one Trial per
//     experiment trial (keyed; keys order the merged output);
//   - a Trial owns one simulator's registry + recorder and hands out
//     the probe adapters that the instrumented packages (netsim, core,
//     tcp, credit, dctcp, faults) call through their nil-checked hook
//     fields. A nil *Trial disables everything at zero cost.
package telemetry

import (
	"sort"
	"sync"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// Options configures a telemetry Collector.
type Options struct {
	// TracePath, if non-empty, is where WriteFiles writes the merged
	// Chrome trace-event JSON.
	TracePath string
	// MetricsPath, if non-empty, is where WriteFiles writes the merged
	// metrics snapshot JSON.
	MetricsPath string
	// SampleEvery is the virtual-time gauge sampling cadence
	// (default 1ms).
	SampleEvery sim.Time
	// RingCap bounds the per-trial event recorder; when full, the
	// retained set is the top RingCap events under the recorder's
	// canonical order — a pure function of the pushed multiset, so the
	// trace is identical however shard execution interleaves the pushes —
	// and the rest are counted as dropped (default 65536).
	RingCap int
}

func (o *Options) fill() {
	if o.SampleEvery <= 0 {
		o.SampleEvery = sim.Millisecond
	}
	if o.RingCap <= 0 {
		o.RingCap = 1 << 16
	}
}

// Collector owns the telemetry of one experiment run. Trial() is safe to
// call from concurrent runner workers; each Trial is then used only from
// its own trial goroutine. A nil *Collector mints nil *Trials, which
// disable all instrumentation.
type Collector struct {
	opts     Options
	mu       sync.Mutex
	trials   map[string]*Trial
	observer TrialObserver
}

// NewCollector creates a collector with the given options.
func NewCollector(opts Options) *Collector {
	opts.fill()
	return &Collector{opts: opts, trials: make(map[string]*Trial)}
}

// Options returns the collector's (filled) options.
func (c *Collector) Options() Options { return c.opts }

// Trial mints the telemetry sink for one trial. key must be unique for
// the run and deterministic (derive it from the trial index and grid
// parameters, never from timing): keys are the merge order of the
// exported files. Duplicate keys panic — two trials sharing a sink would
// race and corrupt the output.
func (c *Collector) Trial(key string) *Trial {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.trials[key]; dup {
		panic("telemetry: duplicate trial key " + key)
	}
	t := newTrial(key, c.opts)
	if c.observer != nil {
		t.hooks = c.observer.ObserveTrial(key, t)
	}
	c.trials[key] = t
	return t
}

// sorted returns the trials in key order (the deterministic merge order).
func (c *Collector) sorted() []*Trial {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.trials))
	for k := range c.trials {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Trial, len(keys))
	for i, k := range keys {
		out[i] = c.trials[k]
	}
	return out
}

// Trial is the telemetry sink of one simulation trial: a metrics
// registry, an event recorder, and the probe state threaded through the
// instrumented packages. All methods are nil-safe; a nil *Trial is the
// disabled state.
type Trial struct {
	key  string
	opts Options
	sim  *sim.Simulator
	reg  registry
	rec  recorder

	// mu serializes the shared mutable state that probe callbacks touch:
	// the recorder, the label caches, probe-internal maps, and metric
	// creation. In a partitioned network probes fire concurrently from
	// shard goroutines; sequential runs pay one uncontended lock per
	// recorded event. Counter increments stay lock-free (atomics).
	mu sync.Mutex

	stopSample bool
	flushed    bool

	// hooks, when non-nil, is the secondary observer the probes forward
	// to (set once at mint, immutable afterwards — probes read it without
	// the lock).
	hooks *TrialHooks

	// Hot-path label caches (see flowLabel / portLabel in probes.go).
	flowLabels map[flowLabelKey]string
	portLabels map[*netsim.Port]string

	net netProbe
	tfc tfcProbe
	tp  transportProbe
	flt faultProbe
}

func newTrial(key string, opts Options) *Trial {
	t := &Trial{key: key, opts: opts}
	t.rec.init(opts.RingCap)
	t.net.t = t
	t.tfc.t = t
	t.tp.t = t
	t.flt.t = t
	return t
}

// Key returns the trial's merge key ("" for a nil trial).
func (t *Trial) Key() string {
	if t == nil {
		return ""
	}
	return t.key
}

// Bind attaches the trial to its simulator and starts the virtual-time
// gauge sampling cadence. One trial binds exactly one simulator; a
// second Bind panics (it would mean two trials share a sink). Nil-safe.
func (t *Trial) Bind(s *sim.Simulator) {
	if t == nil || s == nil {
		return
	}
	if t.sim != nil {
		panic("telemetry: trial " + t.key + " bound twice")
	}
	t.sim = s
	var tick func()
	tick = func() {
		if t.stopSample {
			return
		}
		t.reg.sample(s.Now())
		s.After(t.opts.SampleEvery, tick)
	}
	s.After(t.opts.SampleEvery, tick)
	if t.hooks != nil && t.hooks.Bound != nil {
		t.hooks.Bound(s)
	}
}

// StopSampling ends the gauge cadence (optional; sampling otherwise runs
// for the life of the simulation). Nil-safe.
func (t *Trial) StopSampling() {
	if t != nil {
		t.stopSample = true
	}
}

// now returns the trial's virtual time (0 before Bind).
func (t *Trial) now() sim.Time {
	if t.sim == nil {
		return 0
	}
	return t.sim.Now()
}

// flush closes all open spans (flows still running, links still down,
// faults still active) at the current virtual time. Export calls it;
// idempotent.
func (t *Trial) flush() {
	if t == nil || t.flushed {
		return
	}
	t.flushed = true
	now := t.now()
	if t.hooks != nil && t.hooks.Flush != nil {
		t.hooks.Flush(now)
	}
	t.net.flush(now)
	t.tfc.flush(now)
	t.tp.flush(now)
	t.flt.flush(now)
}

// --- registry surface (nil-safe wrappers) ---

// Counter returns the named counter, creating it on first use.
// Returns nil on a nil trial; Counter.Add on a nil counter is a no-op.
func (t *Trial) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg.counter(name)
}

// Gauge registers a callback polled every SampleEvery of virtual time.
// fn must be a pure read of simulation state. No-op on a nil trial;
// duplicate names panic.
func (t *Trial) Gauge(name string, fn func() float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg.gauge(name, fn)
}

// Histogram returns the named fixed-bucket histogram, creating it with
// the given ascending bucket bounds on first use (later calls may omit
// bounds). Returns nil on a nil trial; Observe on a nil Hist is a no-op.
func (t *Trial) Histogram(name string, bounds ...float64) *Hist {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg.histogram(name, bounds)
}

// --- recorder surface (nil-safe wrappers) ---
//
// Span/InstantAt/CounterEventAt take explicit virtual timestamps: probe
// callbacks in a partitioned network run on shard goroutines, where the
// trial's bound (control) simulator is the wrong clock. Instant and
// CounterEvent stamp the bound simulator's time and are for control-side
// callers only.

// Span records a completed span [start, end] on the named track.
func (t *Trial) Span(cat, name, track string, start, end sim.Time, args ...Arg) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	e := event{name: name, cat: cat, ph: 'X', ts: start, dur: end - start, track: track}
	e.setArgs(args)
	t.mu.Lock()
	t.rec.push(e)
	t.mu.Unlock()
}

// InstantAt records a point event at the given virtual time.
func (t *Trial) InstantAt(at sim.Time, cat, name, track string, args ...Arg) {
	if t == nil {
		return
	}
	e := event{name: name, cat: cat, ph: 'i', ts: at, track: track}
	e.setArgs(args)
	t.mu.Lock()
	t.rec.push(e)
	t.mu.Unlock()
}

// Instant records a point event at the bound simulator's current virtual
// time (control-side callers only; probes use InstantAt).
func (t *Trial) Instant(cat, name, track string, args ...Arg) {
	if t == nil {
		return
	}
	t.InstantAt(t.now(), cat, name, track, args...)
}

// CounterEventAt records a counter sample (graphed as a series in
// Perfetto) at the given virtual time.
func (t *Trial) CounterEventAt(at sim.Time, cat, name, track string, args ...Arg) {
	if t == nil {
		return
	}
	e := event{name: name, cat: cat, ph: 'C', ts: at, track: track}
	e.setArgs(args)
	t.mu.Lock()
	t.rec.push(e)
	t.mu.Unlock()
}

// CounterEvent records a counter sample at the bound simulator's current
// virtual time (control-side callers only; probes use CounterEventAt).
func (t *Trial) CounterEvent(cat, name, track string, args ...Arg) {
	if t == nil {
		return
	}
	t.CounterEventAt(t.now(), cat, name, track, args...)
}
