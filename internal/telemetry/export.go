package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"tfcsim/internal/sim"
)

// traceEvent is the Chrome trace-event JSON shape (the subset used:
// 'X' complete spans, 'i' instants, 'C' counters, 'M' metadata).
// Timestamps are microseconds. encoding/json sorts map keys, so args
// marshal deterministically.
type traceEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat,omitempty"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Dur  float64            `json:"dur,omitempty"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	S    string             `json:"s,omitempty"`
	Args map[string]float64 `json:"args,omitempty"`
}

// metaEvent is the 'M' metadata shape naming processes and threads.
type metaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// traceFile is the object-form trace container Perfetto and
// chrome://tracing both load.
type traceFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []any  `json:"traceEvents"`
}

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

func argMap(args []Arg) map[string]float64 {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]float64, len(args))
	for _, a := range args {
		m[a.K] = a.V
	}
	return m
}

// WriteTrace writes the merged Chrome trace-event JSON for all trials,
// in trial-key order (pid = sorted key index), so the output is
// byte-identical regardless of trial completion order or parallelism.
// Call only after every trial's simulation has finished.
func (c *Collector) WriteTrace(w io.Writer) error {
	trials := c.sorted()
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []any{}}
	for pid, t := range trials {
		t.flush()
		tf.TraceEvents = append(tf.TraceEvents, metaEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": t.key},
		})
		// Thread ids are assigned from the sorted distinct track names of
		// the retained events — never from arrival order, which is
		// nondeterministic under sharded execution.
		tracks := t.rec.tracks()
		tids := make(map[string]int, len(tracks))
		for i, track := range tracks {
			tids[track] = i + 1
			tf.TraceEvents = append(tf.TraceEvents, metaEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
				Args: map[string]string{"name": track},
			})
		}
		for _, e := range t.rec.events() {
			te := traceEvent{
				Name: e.name, Cat: e.cat, Ph: string(e.ph),
				Ts: usec(e.ts), Pid: pid, Tid: tids[e.track], Args: argMap(e.args[:e.nargs]),
			}
			switch e.ph {
			case 'X':
				te.Dur = usec(e.dur)
			case 'i':
				te.S = "t" // thread-scoped instant
			}
			tf.TraceEvents = append(tf.TraceEvents, te)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// Metrics snapshot JSON shapes.
type metricsFile struct {
	Schema string         `json:"schema"`
	Trials []metricsTrial `json:"trials"`
}

type metricsTrial struct {
	Key          string        `json:"key"`
	Counters     []counterJSON `json:"counters"`
	Gauges       []gaugeJSON   `json:"gauges"`
	Histograms   []histJSON    `json:"histograms"`
	TraceEvents  int           `json:"trace_events"`
	TraceDropped int64         `json:"trace_dropped"`
}

type counterJSON struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type gaugeJSON struct {
	Name string    `json:"name"`
	TNs  []int64   `json:"t_ns"`
	V    []float64 `json:"v"`
}

type histJSON struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// WriteMetrics writes the merged metrics snapshot for all trials, keys
// and metric names sorted, so output is byte-identical at any
// parallelism.
func (c *Collector) WriteMetrics(w io.Writer) error {
	trials := c.sorted()
	mf := metricsFile{Schema: "tfcsim-metrics-v1", Trials: []metricsTrial{}}
	for _, t := range trials {
		mt := metricsTrial{
			Key:          t.key,
			Counters:     []counterJSON{},
			Gauges:       []gaugeJSON{},
			Histograms:   []histJSON{},
			TraceEvents:  len(t.rec.buf),
			TraceDropped: t.rec.dropped(),
		}
		for _, ctr := range t.reg.counters {
			mt.Counters = append(mt.Counters, counterJSON{ctr.name, ctr.v})
		}
		sort.Slice(mt.Counters, func(i, j int) bool { return mt.Counters[i].Name < mt.Counters[j].Name })
		for _, g := range t.reg.gauges {
			gj := gaugeJSON{Name: g.name, TNs: []int64{}, V: []float64{}}
			for i := range g.series.T {
				gj.TNs = append(gj.TNs, int64(g.series.T[i]))
				gj.V = append(gj.V, g.series.V[i])
			}
			mt.Gauges = append(mt.Gauges, gj)
		}
		sort.Slice(mt.Gauges, func(i, j int) bool { return mt.Gauges[i].Name < mt.Gauges[j].Name })
		for _, h := range t.reg.hists {
			mt.Histograms = append(mt.Histograms, histJSON{
				Name: h.name, Bounds: h.h.Bounds(), Counts: h.h.Counts(),
				Count: h.h.Count(), Sum: h.h.Sum(),
			})
		}
		sort.Slice(mt.Histograms, func(i, j int) bool { return mt.Histograms[i].Name < mt.Histograms[j].Name })
		mf.Trials = append(mf.Trials, mt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(mf)
}

// WriteFiles writes the trace and/or metrics files named in the
// collector's Options (empty paths are skipped). Nil-safe.
func (c *Collector) WriteFiles() error {
	if c == nil {
		return nil
	}
	if c.opts.TracePath != "" {
		f, err := os.Create(c.opts.TracePath)
		if err != nil {
			return err
		}
		if err := c.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.opts.MetricsPath != "" {
		f, err := os.Create(c.opts.MetricsPath)
		if err != nil {
			return err
		}
		if err := c.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ValidateTrace checks that r holds trace-event JSON of the shape this
// package emits (and the viewers load): an object with a traceEvents
// array whose entries carry a known phase, a name, non-negative
// microsecond timestamps, and integer pid/tid. Used by cmd/tracecheck
// and the CI schema gate.
func ValidateTrace(r io.Reader) error {
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if tf.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	prevPid, prevKey := -1, ""
	for i, ev := range tf.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok {
			return fmt.Errorf("trace: event %d: missing ph", i)
		}
		if _, ok := ev["name"].(string); !ok {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		for _, k := range []string{"pid", "tid"} {
			v, ok := ev[k].(float64)
			if !ok || v != float64(int64(v)) {
				return fmt.Errorf("trace: event %d: %s must be an integer", i, k)
			}
		}
		switch ph {
		case "M":
			args, ok := ev["args"].(map[string]any)
			if !ok {
				return fmt.Errorf("trace: event %d: metadata without args", i)
			}
			// WriteTrace emits one process_name per trial in sorted key
			// order with pid = sorted index; an out-of-order trace means
			// the export was not merged deterministically.
			if ev["name"] == "process_name" {
				key, ok := args["name"].(string)
				if !ok {
					return fmt.Errorf("trace: event %d: process_name without args.name", i)
				}
				pid := int(ev["pid"].(float64))
				if prevPid >= 0 && (pid <= prevPid || key <= prevKey) {
					return fmt.Errorf("trace: event %d: trial keys out of order (%q pid=%d after %q pid=%d)",
						i, key, pid, prevKey, prevPid)
				}
				prevPid, prevKey = pid, key
			}
		case "X", "i", "C":
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				return fmt.Errorf("trace: event %d: bad ts", i)
			}
			if ph == "X" {
				if dur, ok := ev["dur"].(float64); ok && dur < 0 {
					return fmt.Errorf("trace: event %d: negative dur", i)
				}
			}
			if ph == "i" {
				if s, ok := ev["s"].(string); ok && s != "t" && s != "p" && s != "g" {
					return fmt.Errorf("trace: event %d: bad instant scope %q", i, s)
				}
			}
		default:
			return fmt.Errorf("trace: event %d: unknown phase %q", i, ph)
		}
	}
	return nil
}
