package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tfcsim/internal/faults"
	"tfcsim/internal/sim"
)

func TestNilTrialIsDisabled(t *testing.T) {
	var tr *Trial
	// Every surface must be a safe no-op on the nil (disabled) trial.
	tr.Bind(sim.New(1))
	tr.Counter("x").Add(5)
	tr.Counter("x").Inc()
	if v := tr.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value = %d, want 0", v)
	}
	tr.Gauge("g", func() float64 { return 1 })
	tr.Histogram("h").Observe(3)
	tr.Span("c", "n", "tr", 0, 10)
	tr.Instant("c", "n", "tr")
	tr.CounterEvent("c", "n", "tr")
	tr.StopSampling()
	tr.flush()
	if tr.Key() != "" {
		t.Fatalf("nil trial key = %q", tr.Key())
	}
	if p := tr.TCPProbe(); p != nil {
		t.Fatalf("nil trial TCPProbe = %v, want nil interface", p)
	}
	if p := tr.CreditProbe(); p != nil {
		t.Fatalf("nil trial CreditProbe = %v, want nil interface", p)
	}
	if f := tr.MarkProbe(); f != nil {
		t.Fatal("nil trial MarkProbe should be nil")
	}
	if f := tr.FaultProbe(); f != nil {
		t.Fatal("nil trial FaultProbe should be nil")
	}
}

func TestNilCollectorMintsNilTrials(t *testing.T) {
	var c *Collector
	if tr := c.Trial("k"); tr != nil {
		t.Fatal("nil collector should mint nil trials")
	}
	if err := c.WriteFiles(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorDuplicateKeyPanics(t *testing.T) {
	c := NewCollector(Options{})
	c.Trial("a")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate trial key should panic")
		}
	}()
	c.Trial("a")
}

func TestBindTwicePanics(t *testing.T) {
	tr := NewCollector(Options{}).Trial("a")
	tr.Bind(sim.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("second Bind should panic")
		}
	}()
	tr.Bind(sim.New(2))
}

func TestGaugeSamplingCadence(t *testing.T) {
	tr := NewCollector(Options{SampleEvery: sim.Millisecond}).Trial("a")
	s := sim.New(1)
	var calls int
	tr.Gauge("g", func() float64 { calls++; return float64(calls) })
	tr.Bind(s)
	s.RunUntil(10 * sim.Millisecond)
	// Samples at 1ms..10ms inclusive (the tick at exactly 10ms runs).
	if calls < 9 || calls > 11 {
		t.Fatalf("gauge sampled %d times over 10ms at 1ms cadence", calls)
	}
	tr.StopSampling()
	before := calls
	s.RunUntil(20 * sim.Millisecond)
	if calls != before {
		t.Fatalf("gauge sampled after StopSampling: %d -> %d", before, calls)
	}
}

func TestRecorderKeepsCanonicalTail(t *testing.T) {
	var r recorder
	r.init(4)
	for i := 0; i < 7; i++ {
		r.push(event{name: string(rune('a' + i)), ph: 'i', ts: sim.Time(i)})
	}
	if d := r.dropped(); d != 3 {
		t.Fatalf("dropped = %d, want 3", d)
	}
	evs := r.events()
	if len(evs) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(evs))
	}
	// The canonically-largest 4 (the latest timestamps) survive, ascending.
	want := []string{"d", "e", "f", "g"}
	for i, e := range evs {
		if e.name != want[i] {
			t.Fatalf("event %d = %q, want %q", i, e.name, want[i])
		}
	}
}

func TestRecorderOrderInvariant(t *testing.T) {
	// The retained set must be a pure function of the pushed multiset,
	// regardless of arrival order — this is what keeps sharded traces
	// byte-identical to sequential ones.
	mk := func(order []int) *recorder {
		var r recorder
		r.init(3)
		for _, i := range order {
			r.push(event{name: string(rune('a' + i)), ph: 'i', ts: sim.Time(i), track: "t"})
		}
		return &r
	}
	a := mk([]int{0, 1, 2, 3, 4, 5})
	b := mk([]int{5, 3, 1, 4, 2, 0})
	ea, eb := a.events(), b.events()
	if len(ea) != len(eb) {
		t.Fatalf("retained %d vs %d events", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs across arrival orders: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if a.dropped() != b.dropped() {
		t.Fatalf("dropped %d vs %d", a.dropped(), b.dropped())
	}
}

func TestRecorderTracksSorted(t *testing.T) {
	var r recorder
	r.init(8)
	r.push(event{name: "x", ph: 'i', track: "zeta"})
	r.push(event{name: "y", ph: 'i', track: "alpha"})
	r.push(event{name: "z", ph: 'i', track: "zeta"})
	got := r.tracks()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("tracks = %v, want [alpha zeta]", got)
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	tr := NewCollector(Options{}).Trial("a")
	tr.Span("c", "n", "tr", 10, 5)
	evs := tr.rec.events()
	if len(evs) != 1 || evs[0].dur != 0 {
		t.Fatalf("span with end<start should clamp dur to 0, got %+v", evs)
	}
}

func TestDuplicateGaugePanics(t *testing.T) {
	tr := NewCollector(Options{}).Trial("a")
	tr.Gauge("g", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate gauge should panic")
		}
	}()
	tr.Gauge("g", func() float64 { return 0 })
}

func TestCounterAndHistogramIdempotentByName(t *testing.T) {
	tr := NewCollector(Options{}).Trial("a")
	c1 := tr.Counter("c")
	c1.Add(2)
	tr.Counter("c").Add(3)
	if v := c1.Value(); v != 5 {
		t.Fatalf("counter = %d, want 5 (same instance by name)", v)
	}
	h1 := tr.Histogram("h", 1, 2, 4)
	h1.Observe(1.5)
	tr.Histogram("h").Observe(3)
	if n := h1.h.Count(); n != 2 {
		t.Fatalf("histogram count = %d, want 2 (same instance by name)", n)
	}
}

func TestFaultProbePairsWindows(t *testing.T) {
	tr := NewCollector(Options{}).Trial("a")
	tr.Bind(sim.New(1))
	obs := tr.FaultProbe()
	obs(faults.Event{At: 10, Kind: "link-down", Target: "sw->h"})
	obs(faults.Event{At: 40, Kind: "link-up", Target: "sw->h"})
	tr.flush()
	var span *event
	for _, e := range tr.rec.events() {
		if e.ph == 'X' && e.cat == "fault" {
			span = &e
			break
		}
	}
	if span == nil {
		t.Fatal("no fault span recorded")
	}
	if span.ts != 10 || span.dur != 30 {
		t.Fatalf("fault span [%d +%d], want [10 +30]", span.ts, span.dur)
	}
	if tr.Counter("faults.transitions").Value() != 2 {
		t.Fatalf("transitions = %d, want 2", tr.Counter("faults.transitions").Value())
	}
}

// fill one collector with a fixed set of trials whose insertion order is
// permuted by `order`, as parallel runners would.
func buildCollector(order []string) *Collector {
	c := NewCollector(Options{})
	for _, key := range order {
		tr := c.Trial(key)
		s := sim.New(int64(len(key)))
		tr.Gauge("z.gauge", func() float64 { return float64(s.Now()) })
		tr.Gauge("a.gauge", func() float64 { return 1 })
		tr.Bind(s)
		s.RunUntil(5 * sim.Millisecond)
		tr.Counter("b.count").Add(int64(len(key)))
		tr.Counter("a.count").Inc()
		tr.Histogram("h", 1, 10, 100).Observe(float64(len(key)))
		tr.Span("cat", "span "+key, "track", 0, 100)
		tr.Instant("cat", "hit "+key, "other")
	}
	return c
}

func TestExportDeterministicAcrossInsertionOrder(t *testing.T) {
	a := buildCollector([]string{"t1", "t2", "t3"})
	b := buildCollector([]string{"t3", "t1", "t2"})
	var ta, tb, ma, mb bytes.Buffer
	if err := a.WriteTrace(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Error("trace output depends on trial insertion order")
	}
	if err := a.WriteMetrics(&ma); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteMetrics(&mb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ma.Bytes(), mb.Bytes()) {
		t.Error("metrics output depends on trial insertion order")
	}
}

func TestWriteTraceValidates(t *testing.T) {
	c := buildCollector([]string{"x", "y"})
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("emitted trace fails own validation: %v", err)
	}
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"no traceEvents": `{"displayTimeUnit":"ms"}`,
		"bad phase":      `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":0,"tid":0}]}`,
		"missing name":   `{"traceEvents":[{"ph":"i","ts":0,"pid":0,"tid":0}]}`,
		"float pid":      `{"traceEvents":[{"name":"x","ph":"i","ts":0,"pid":0.5,"tid":0}]}`,
		"negative ts":    `{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":0,"tid":0}]}`,
		"meta no args":   `{"traceEvents":[{"name":"process_name","ph":"M","pid":0,"tid":0}]}`,
	}
	for name, in := range cases {
		if err := ValidateTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ValidateTrace accepted malformed input", name)
		}
	}
}

func TestMetricsSnapshotShape(t *testing.T) {
	c := buildCollector([]string{"k"})
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var mf struct {
		Schema string `json:"schema"`
		Trials []struct {
			Key      string `json:"key"`
			Counters []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"counters"`
			Gauges []struct {
				Name string    `json:"name"`
				TNs  []int64   `json:"t_ns"`
				V    []float64 `json:"v"`
			} `json:"gauges"`
		} `json:"trials"`
	}
	if err := json.Unmarshal(buf.Bytes(), &mf); err != nil {
		t.Fatal(err)
	}
	if mf.Schema != "tfcsim-metrics-v1" {
		t.Fatalf("schema = %q", mf.Schema)
	}
	if len(mf.Trials) != 1 || mf.Trials[0].Key != "k" {
		t.Fatalf("trials = %+v", mf.Trials)
	}
	tr := mf.Trials[0]
	// Counters and gauges must come out name-sorted.
	if tr.Counters[0].Name != "a.count" || tr.Counters[1].Name != "b.count" {
		t.Fatalf("counters not sorted: %+v", tr.Counters)
	}
	if tr.Gauges[0].Name != "a.gauge" || tr.Gauges[1].Name != "z.gauge" {
		t.Fatalf("gauges not sorted: %+v", tr.Gauges)
	}
	if len(tr.Gauges[0].TNs) != len(tr.Gauges[0].V) || len(tr.Gauges[0].TNs) == 0 {
		t.Fatalf("gauge series malformed: %+v", tr.Gauges[0])
	}
}
