package tcp

// Regression tests for the RTO exponential-backoff overflow: the original
// armRTO computed est.RTO() << rtoBackoff and clamped afterwards, so once
// enough consecutive timeouts accumulated the int64 shift wrapped negative
// (or to zero) and slipped past the MaxRTO check, arming a garbage RTO.
// A long link blackout is exactly the path that accumulates that backoff.

import (
	"testing"

	"tfcsim/internal/sim"
)

func TestArmRTOBackoffCapped(t *testing.T) {
	h := newHarness(t)
	h.establish()
	now := h.s.Now()
	maxRTO := h.snd.cfg.MaxRTO
	for _, b := range []uint{0, 1, 5, 20, 31, 32, 33, 40, 63, 64, 100} {
		h.snd.rtoBackoff = b
		h.snd.armRTO()
		d := h.snd.rto.Deadline() - now
		if d <= 0 {
			t.Fatalf("backoff %d armed a non-positive RTO %v (shift overflow)", b, d)
		}
		if d > maxRTO {
			t.Fatalf("backoff %d armed RTO %v past MaxRTO %v", b, d, maxRTO)
		}
	}
	// Below the cap the backoff still doubles per step.
	h.snd.rtoBackoff = 0
	h.snd.armRTO()
	d0 := h.snd.rto.Deadline() - now
	h.snd.rtoBackoff = 3
	h.snd.armRTO()
	if d3 := h.snd.rto.Deadline() - now; d3 != d0<<3 {
		t.Fatalf("backoff 3 armed %v, want %v (8x the base RTO)", d3, d0<<3)
	}
	h.snd.rtoBackoff = 0
}

func TestRTOSurvivesLongBlackout(t *testing.T) {
	// Establish, then blackhole every transmission (the swallow endpoint
	// already eats them and no ACKs come back) and run long enough for
	// dozens of consecutive timeouts. The sender must keep firing RTOs at
	// a bounded cadence — with the overflow, the timer eventually arms at
	// a wrapped deadline and retransmission stalls or spins.
	h := newHarness(t, func(c *Config) {
		c.MinRTO = sim.Millisecond
		c.MaxRTO = 4 * sim.Millisecond
	})
	h.establish()
	h.snd.Send(1 << 20)
	h.s.RunUntil(h.s.Now() + 400*sim.Millisecond)
	// 400ms at <= 4ms per backoff step admits ~100 timeouts; require well
	// past the 32/64 shift-overflow thresholds.
	if n := h.snd.Stats().Timeouts; n < 80 {
		t.Fatalf("only %d timeouts in a 400ms blackout; RTO clock stalled", n)
	}
	if d := h.snd.rto.Deadline() - h.s.Now(); d <= 0 || d > 4*sim.Millisecond {
		t.Fatalf("pending RTO %v after blackout, want in (0, MaxRTO]", d)
	}
}
