package tcp

import "tfcsim/internal/transport"

// init registers plain TCP NewReno with the transport registry. The
// protocol is host-only: no switch-side attachment.
func init() {
	transport.Register("tcp", transport.Factory{
		Desc:    "TCP NewReno, testbed-era tuning (IW2, 200ms min RTO, per-packet ACKs)",
		Compare: true,
		Dial: func(c transport.DialConfig) transport.Conn {
			s, r := Dial(Config{
				Sim: c.Sim, Local: c.Local, Peer: c.Peer, Flow: c.Flow,
				MSS: c.MSS, MinRTO: c.MinRTO,
				OnDrain: c.OnDrain, OnComplete: c.OnComplete,
				Probe: probeOf(c.Probe),
			})
			return transport.Conn{Sender: s, Received: r.Received, SRTT: s.SRTT}
		},
	})
}

// probeOf extracts a tcp.Probe from an opaque registry probe, tolerating
// nil and foreign types (the registry contract).
func probeOf(v any) Probe {
	if p, ok := v.(Probe); ok {
		return p
	}
	return nil
}
