package tcp

// Unit-level NewReno machinery tests: these drive the sender with crafted
// ACK packets instead of a network, pinning the RFC 6582 state machine.

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// harness registers a sender on a minimal one-link network whose far end
// swallows everything, so tests can feed crafted ACKs via Deliver.
type harness struct {
	s   *sim.Simulator
	snd *Sender
	out []*netsim.Packet // packets the sender transmitted
	h2  *netsim.Host
}

type swallow struct{ h *harness }

func (sw *swallow) Deliver(p *netsim.Packet) { sw.h.out = append(sw.h.out, p) }

func newHarness(t *testing.T, opts ...func(*Config)) *harness {
	s := sim.New(1)
	net := netsim.NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	swt := net.NewSwitch("sw")
	cfg := netsim.LinkConfig{Rate: 100 * netsim.Gbps, Delay: 1}
	net.Connect(h1, swt, cfg)
	net.Connect(swt, h2, cfg)
	net.ComputeRoutes()
	h := &harness{s: s}
	h.h2 = h2
	c := Config{Sim: s, Local: h1, Peer: h2, Flow: 1}
	for _, o := range opts {
		o(&c)
	}
	h.snd = NewSender(c)
	h2.Register(1, &swallow{h})
	return h
}

// establish opens the connection and completes the handshake.
func (h *harness) establish() {
	h.s.At(0, func() { h.snd.Open() })
	h.s.RunUntil(sim.Microsecond)
	h.ack(0, netsim.FlagSYN|netsim.FlagACK)
	h.s.RunUntil(h.s.Now() + sim.Microsecond)
}

// ack delivers a crafted ACK to the sender (directly, no network).
func (h *harness) ack(ackNo int64, flags netsim.Flag) {
	h.snd.Deliver(&netsim.Packet{
		Flow: 1, Flags: flags | netsim.FlagACK, Ack: ackNo,
		SentAt: h.s.Now(),
	})
}

// drain runs pending transmissions to the swallow endpoint.
func (h *harness) drain() { h.s.RunUntil(h.s.Now() + 10*sim.Microsecond) }

func TestUnitSlowStartGrowth(t *testing.T) {
	h := newHarness(t)
	h.establish()
	h.snd.Send(1 << 20)
	h.drain()
	cwnd0 := h.snd.Cwnd()
	// ACK one segment: cwnd grows by one MSS in slow start.
	h.ack(1460, 0)
	if h.snd.Cwnd() != cwnd0+1460 {
		t.Fatalf("cwnd after 1 ACK = %d, want %d", h.snd.Cwnd(), cwnd0+1460)
	}
}

func TestUnitCongestionAvoidanceGrowth(t *testing.T) {
	h := newHarness(t)
	h.establish()
	h.snd.Send(10 << 20)
	h.drain()
	// Force CA: set ssthresh below cwnd via an RTO-free trick — grow past
	// ssthresh by acking; instead directly exercise: ssthresh default is
	// huge, so emulate by many ACKs then verify sub-linear growth after a
	// fast retransmit sets ssthresh.
	// Dupacks x3 -> FR; then full ACK exits with cwnd = ssthresh.
	h.ack(1460, 0)
	h.drain()
	for i := 0; i < 3; i++ {
		h.ack(1460, 0) // duplicates
	}
	if !h.snd.inFR {
		t.Fatal("3 dupacks should enter fast recovery")
	}
	recover := h.snd.recover
	h.ack(recover, 0) // full ACK
	if h.snd.inFR {
		t.Fatal("full ACK should exit fast recovery")
	}
	ss := h.snd.ssthresh
	if h.snd.Cwnd() != ss {
		t.Fatalf("cwnd after FR exit = %d, want ssthresh %d", h.snd.Cwnd(), ss)
	}
	h.drain()
	// Now in CA: one full-MSS ACK grows cwnd by ~MSS^2/cwnd.
	before := h.snd.Cwnd()
	h.ack(recover+1460, 0)
	grow := h.snd.Cwnd() - before
	if grow <= 0 || grow > 1460 {
		t.Fatalf("CA growth per ACK = %d, want (0, MSS]", grow)
	}
	if grow == 1460 && before > 2*1460 {
		t.Fatalf("growth looks like slow start (%d) though cwnd %d >= ssthresh %d",
			grow, before, ss)
	}
}

func TestUnitFastRetransmitResendsHole(t *testing.T) {
	h := newHarness(t)
	h.establish()
	h.snd.Send(100 * 1460)
	h.drain()
	sent := len(h.out)
	h.ack(1460, 0)
	h.drain()
	for i := 0; i < 3; i++ {
		h.ack(1460, 0)
	}
	h.drain()
	// The retransmission of seq 1460 must be among the new transmissions.
	found := false
	for _, p := range h.out[sent:] {
		if p.Seq == 1460 && p.Payload > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("fast retransmit did not resend the hole")
	}
	if h.snd.Stats().FastRtx != 1 {
		t.Fatalf("FastRtx = %d, want 1", h.snd.Stats().FastRtx)
	}
}

func TestUnitPartialACKStaysInRecovery(t *testing.T) {
	h := newHarness(t)
	h.establish()
	h.snd.Send(100 * 1460)
	h.drain()
	h.ack(1460, 0)
	h.drain()
	for i := 0; i < 3; i++ {
		h.ack(1460, 0)
	}
	recover := h.snd.recover
	// Partial ACK: advances but below recover.
	h.ack(recover/2, 0)
	if !h.snd.inFR {
		t.Fatal("partial ACK must keep NewReno in fast recovery")
	}
	h.ack(recover, 0)
	if h.snd.inFR {
		t.Fatal("full ACK must exit recovery")
	}
}

func TestUnitDupacksBelowThresholdHarmless(t *testing.T) {
	h := newHarness(t)
	h.establish()
	h.snd.Send(100 * 1460)
	h.drain()
	h.ack(1460, 0)
	cwnd := h.snd.Cwnd()
	h.ack(1460, 0)
	h.ack(1460, 0) // only 2 dupacks
	if h.snd.inFR {
		t.Fatal("2 dupacks must not trigger fast retransmit")
	}
	if h.snd.Cwnd() != cwnd {
		t.Fatalf("cwnd changed on dupacks below threshold: %d -> %d", cwnd, h.snd.Cwnd())
	}
}

func TestUnitRTOCollapsesWindow(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MinRTO = 10 * sim.Millisecond })
	h.establish()
	h.snd.Send(100 * 1460)
	h.drain()
	h.ack(10*1460, 0)
	h.drain()
	if h.snd.Cwnd() <= int64(2*1460) {
		t.Fatal("precondition: cwnd should have grown")
	}
	// Let the RTO fire (no more ACKs).
	h.s.RunUntil(h.s.Now() + 500*sim.Millisecond)
	if h.snd.Stats().Timeouts == 0 {
		t.Fatal("RTO did not fire")
	}
	if h.snd.Cwnd() != 1460 {
		t.Fatalf("cwnd after RTO = %d, want 1 MSS", h.snd.Cwnd())
	}
	if h.snd.sndNxt != h.snd.sndUna+1460 {
		t.Fatalf("go-back-N: sndNxt=%d sndUna=%d, want one segment resent",
			h.snd.sndNxt, h.snd.sndUna)
	}
}

func TestUnitRTOExponentialBackoff(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MinRTO = 10 * sim.Millisecond })
	h.establish()
	h.snd.Send(1460)
	h.drain()
	// Record timeout instants.
	var fires []sim.Time
	last := int64(0)
	for i := 0; i < 400; i++ {
		h.s.RunUntil(h.s.Now() + sim.Millisecond)
		if to := h.snd.Stats().Timeouts; to > last {
			fires = append(fires, h.s.Now())
			last = to
		}
		if len(fires) >= 3 {
			break
		}
	}
	if len(fires) < 3 {
		t.Fatalf("only %d RTOs in 400ms", len(fires))
	}
	gap1 := fires[1] - fires[0]
	gap2 := fires[2] - fires[1]
	if gap2 < gap1*3/2 {
		t.Fatalf("no exponential backoff: gaps %v then %v", gap1, gap2)
	}
}

func TestUnitECEWithoutDCTCPIgnored(t *testing.T) {
	// A plain NewReno sender must not react to ECE (no ECN negotiation).
	h := newHarness(t)
	h.establish()
	h.snd.Send(100 * 1460)
	h.drain()
	h.ack(1460, 0)
	cwnd := h.snd.Cwnd()
	h.ack(2920, netsim.FlagECE)
	if h.snd.Cwnd() < cwnd {
		t.Fatal("non-ECN sender reduced cwnd on ECE")
	}
}

func TestUnitDCTCPProportionalCut(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.DCTCP = &DCTCPParams{G: 1.0 / 16, InitAlpha: 1} })
	h.establish()
	h.snd.Send(100 * 1460)
	h.drain()
	cwnd0 := h.snd.Cwnd() // 2 MSS initial window
	// Persistent marks across many window boundaries: alpha ~ 1, cwnd
	// pinned at/near the 1-MSS floor, never growing.
	for a := int64(1460); a <= 20*1460; a += 1460 {
		h.ack(a, netsim.FlagECE)
	}
	if h.snd.Cwnd() >= cwnd0 {
		t.Fatalf("DCTCP did not cut cwnd under persistent marks: %d -> %d", cwnd0, h.snd.Cwnd())
	}
	if h.snd.Cwnd() > int64(2*1460) {
		t.Fatalf("cwnd %d grew under persistent marks", h.snd.Cwnd())
	}
	if h.snd.Alpha() < 0.5 {
		t.Fatalf("alpha = %.2f, want near 1 under full marking", h.snd.Alpha())
	}
}
