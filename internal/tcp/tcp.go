// Package tcp implements TCP NewReno over the netsim substrate: slow
// start, congestion avoidance, fast retransmit / fast recovery (RFC 6582),
// and RFC 6298 retransmission timeouts. It also contains the optional
// DCTCP window machinery (enabled through Config.DCTCP) so that package
// dctcp can stay a thin layer adding ECN marking at switches.
//
// The implementation is deliberately testbed-era faithful: per-packet ACKs,
// go-back-N on RTO, initial window of 2 segments, and a 200 ms default
// minimum RTO — the ingredients of the incast collapse TFC's evaluation
// measures against.
package tcp

import (
	"fmt"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/transport"
)

// DCTCPParams configures DCTCP window reduction (paper [7] of TFC).
type DCTCPParams struct {
	// G is the EWMA gain for the marked fraction (DCTCP recommends 1/16).
	G float64
	// InitAlpha is the initial marked-fraction estimate (1.0 = conservative).
	InitAlpha float64
}

// Config parameterizes one TCP connection.
type Config struct {
	Sim   *sim.Simulator
	Local *netsim.Host // sender side
	Peer  *netsim.Host // receiver side
	Flow  netsim.FlowID

	MSS          int      // default transport.DefaultMSS
	InitCwndSegs int      // initial window in segments, default 2
	MinRTO       sim.Time // default 200ms (Linux default of the paper era)
	MaxRTO       sim.Time // default 60s
	RcvWnd       int64    // advertised window, default 4MB (not enforced)

	// DCTCP enables DCTCP behaviour: ECT on data packets, per-window
	// marked-fraction estimation, and proportional cwnd reduction.
	DCTCP *DCTCPParams

	// Pace spreads data transmission at cwnd/SRTT instead of sending
	// ACK-clocked back-to-back bursts. The tiny-buffer TCP baseline
	// (package tinytcp) relies on it: paced traffic is what makes
	// ~10-packet switch buffers sufficient.
	Pace bool
	// CwndCap, when positive, bounds the congestion window (bytes). Used
	// by the tiny-buffer variant to keep standing queues off shallow
	// buffers; 0 leaves the window unbounded.
	CwndCap int64

	// OnDrain fires every time all currently queued bytes become
	// acknowledged (used by request/response workloads on persistent
	// connections).
	OnDrain func()
	// OnComplete fires once, when the flow is closed and fully
	// acknowledged.
	OnComplete func()

	// Probe, if set, receives congestion-control telemetry (cwnd moves,
	// RTO firings, recovery transitions, retransmissions). Disabled path
	// is one nil-check per event; probes must not mutate sender state.
	Probe Probe
}

// Probe observes a connection's congestion control for the telemetry
// layer (internal/telemetry). All callbacks are read-only observers.
// Each callback carries the sender's current virtual time explicitly: in
// a partitioned network senders run on per-shard simulators, so a shared
// probe implementation has no single clock to consult.
type Probe interface {
	// Cwnd runs after any congestion-window change.
	Cwnd(now sim.Time, flow netsim.FlowID, cwnd, ssthresh int64)
	// RTOFired runs when the retransmission timer expires; backoff is
	// the exponential-backoff step count including this firing.
	RTOFired(now sim.Time, flow netsim.FlowID, backoff uint)
	// Recovery runs on fast-recovery entry (enter=true) and exit.
	Recovery(now sim.Time, flow netsim.FlowID, enter bool)
	// Retransmit runs for every retransmitted segment.
	Retransmit(now sim.Time, flow netsim.FlowID, bytes int64)
}

func (c *Config) fillDefaults() {
	if c.MSS == 0 {
		c.MSS = transport.DefaultMSS
	}
	if c.InitCwndSegs == 0 {
		c.InitCwndSegs = 2
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * sim.Second
	}
	if c.RcvWnd == 0 {
		c.RcvWnd = transport.DefaultRcvWnd
	}
}

// Sender states.
const (
	stateClosed = iota
	stateSynSent
	stateEstablished
	stateDone
)

type dctcpState struct {
	alpha       float64
	g           float64
	ackedBytes  int64
	markedBytes int64
	windowEnd   int64
}

// Sender is the sending half of a TCP connection.
type Sender struct {
	cfg Config
	st  transport.Stats
	est *transport.RTTEstimator

	state   int
	sndUna  int64
	sndNxt  int64
	budget  int64 // total bytes handed to Send
	closing bool
	finSent bool

	cwnd     int64 // bytes
	ssthresh int64
	dupacks  int
	inFR     bool
	recover  int64

	rto        *transport.RTOTimer
	rtoBackoff uint

	// Pacing gate (Config.Pace): the next time a data segment may leave,
	// and the timer that resumes trySend when the gate reopens.
	paceFree  sim.Time
	paceTimer sim.Timer

	dctcp *dctcpState
}

// NewSender creates (and registers at the local host) the sending side.
func NewSender(cfg Config) *Sender {
	cfg.fillDefaults()
	s := &Sender{
		cfg:      cfg,
		est:      transport.NewRTTEstimator(cfg.MinRTO, cfg.MaxRTO, 0),
		ssthresh: 1 << 30,
	}
	s.rto = transport.NewRTOTimer(cfg.Sim, s.onRTO)
	s.cwnd = int64(cfg.InitCwndSegs * cfg.MSS)
	if cfg.DCTCP != nil {
		g := cfg.DCTCP.G
		if g == 0 {
			g = 1.0 / 16
		}
		s.dctcp = &dctcpState{alpha: cfg.DCTCP.InitAlpha, g: g}
	}
	cfg.Local.Register(cfg.Flow, s)
	return s
}

// Dial creates a sender and its matching receiver, registering both. The
// receiver runs on the peer host's simulator — distinct from cfg.Sim
// once the network is partitioned across shards.
func Dial(cfg Config) (*Sender, *Receiver) {
	s := NewSender(cfg)
	r := NewReceiver(cfg.Peer.Sim(), cfg.Peer, cfg.Local, cfg.Flow)
	return s, r
}

// Stats exposes the sender's statistics record.
func (s *Sender) Stats() *transport.Stats { return &s.st }

// Acked returns cumulative acknowledged bytes.
func (s *Sender) Acked() int64 { return s.sndUna }

// Queued returns cumulative bytes handed to Send.
func (s *Sender) Queued() int64 { return s.budget }

// Cwnd returns the current congestion window in bytes.
func (s *Sender) Cwnd() int64 { return s.cwnd }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() sim.Time { return s.est.SRTT() }

// Alpha returns the DCTCP marked-fraction estimate (0 if not DCTCP).
func (s *Sender) Alpha() float64 {
	if s.dctcp == nil {
		return 0
	}
	return s.dctcp.alpha
}

// Open sends the SYN.
func (s *Sender) Open() {
	if s.state != stateClosed {
		return
	}
	s.state = stateSynSent
	s.st.Start = s.cfg.Sim.Now()
	s.sendSYN()
}

// Send queues n more bytes on the stream.
func (s *Sender) Send(n int64) {
	if n <= 0 || s.closing {
		return
	}
	s.budget += n
	if s.state == stateEstablished {
		s.trySend()
	}
}

// Close marks the stream finished; a FIN goes out once drained.
func (s *Sender) Close() {
	s.closing = true
	if s.state == stateEstablished && s.sndUna == s.budget {
		s.finish()
	}
}

func (s *Sender) flight() int64 { return s.sndNxt - s.sndUna }

func (s *Sender) sendSYN() {
	p := s.cfg.Local.NewPacket()
	*p = netsim.Packet{
		Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
		Flags: netsim.FlagSYN, SentAt: s.cfg.Sim.Now(), Window: netsim.WindowUnset,
	}
	s.cfg.Local.Send(p)
	s.armRTO()
}

func (s *Sender) mkData(seq int64, n int) *netsim.Packet {
	// Field assignments, not a struct literal: NewPacket returns a zeroed
	// packet, so writing only the non-zero fields skips a redundant 96-byte
	// copy on the per-segment fast path.
	p := s.cfg.Local.NewPacket()
	p.Flow, p.Src, p.Dst = s.cfg.Flow, s.cfg.Local.ID(), s.cfg.Peer.ID()
	p.Seq, p.Payload = seq, n
	p.SentAt, p.Window = s.cfg.Sim.Now(), netsim.WindowUnset
	if s.dctcp != nil {
		p.Flags |= netsim.FlagECT
	}
	return p
}

func (s *Sender) trySend() {
	if s.state != stateEstablished {
		return
	}
	for s.sndNxt < s.budget {
		seg := int64(s.cfg.MSS)
		if rem := s.budget - s.sndNxt; rem < seg {
			seg = rem
		}
		if s.flight() > 0 && s.flight()+seg > s.cwnd {
			break
		}
		if s.cfg.Pace && !s.paceReady(seg) {
			break
		}
		if s.st.FirstSend == 0 && s.st.BytesAcked == 0 {
			s.st.FirstSend = s.cfg.Sim.Now()
		}
		s.cfg.Local.Send(s.mkData(s.sndNxt, int(seg)))
		s.sndNxt += seg
	}
	if s.flight() > 0 && !s.rto.Armed() {
		s.armRTO()
	}
}

// paceReady checks — and on success advances — the pacing gate for one
// segment: data leaves one MSS per SRTT*seg/cwnd instead of in ACK
// bursts. While the gate is closed a timer re-enters trySend when it
// reopens, so pacing never strands queued data.
func (s *Sender) paceReady(seg int64) bool {
	now := s.cfg.Sim.Now()
	if s.paceFree > now {
		if !s.paceTimer.Active() {
			// The sender is its own event target (RunEvent == trySend), so
			// re-arming the pacing gate allocates nothing.
			s.paceTimer = s.cfg.Sim.Schedule(s.paceFree, s)
		}
		return false
	}
	if srtt := s.est.SRTT(); srtt > 0 && s.cwnd > 0 {
		s.paceFree = now + sim.Time(int64(srtt)*seg/s.cwnd)
	}
	return true
}

// RunEvent implements sim.EventTarget: the pacing gate reopened, resume
// sending.
func (s *Sender) RunEvent() { s.trySend() }

// clampCwnd applies the Config.CwndCap bound after any window growth.
func (s *Sender) clampCwnd() {
	if s.cfg.CwndCap > 0 && s.cwnd > s.cfg.CwndCap {
		s.cwnd = s.cfg.CwndCap
	}
}

// retransmit resends one segment starting at seq without advancing sndNxt.
func (s *Sender) retransmit(seq int64) {
	seg := int64(s.cfg.MSS)
	if rem := s.budget - seq; rem < seg {
		seg = rem
	}
	if seg <= 0 {
		return
	}
	s.st.RtxBytes += seg
	if s.cfg.Probe != nil {
		s.cfg.Probe.Retransmit(s.cfg.Sim.Now(), s.cfg.Flow, seg)
	}
	s.cfg.Local.Send(s.mkData(seq, int(seg)))
}

// probeCwnd reports the current window to the telemetry probe, if any.
func (s *Sender) probeCwnd() {
	if s.cfg.Probe != nil {
		s.cfg.Probe.Cwnd(s.cfg.Sim.Now(), s.cfg.Flow, s.cwnd, s.ssthresh)
	}
}

func (s *Sender) armRTO() {
	// Clamp before shifting: d << backoff overflows int64 once backoff
	// grows past ~32 (a long blackout), wrapping negative or to zero and
	// slipping past a post-shift MaxRTO check. d > MaxRTO>>b is exactly
	// d<<b > MaxRTO for the non-overflowing range (Go shifts >= 64 of a
	// positive int64 yield 0, so huge backoffs clamp too).
	d := s.est.RTO()
	if d > s.cfg.MaxRTO>>s.rtoBackoff {
		d = s.cfg.MaxRTO
	} else {
		d <<= s.rtoBackoff
	}
	s.rto.Arm(d)
}

func (s *Sender) onRTO() {
	if s.state == stateDone {
		return
	}
	s.st.Timeouts++
	s.rtoBackoff++
	if s.cfg.Probe != nil {
		s.cfg.Probe.RTOFired(s.cfg.Sim.Now(), s.cfg.Flow, s.rtoBackoff)
	}
	if s.state == stateSynSent {
		s.sendSYN()
		return
	}
	fl := s.flight()
	if fl <= 0 {
		return
	}
	s.ssthresh = maxI64(fl/2, int64(2*s.cfg.MSS))
	s.cwnd = int64(s.cfg.MSS)
	if s.inFR && s.cfg.Probe != nil {
		s.cfg.Probe.Recovery(s.cfg.Sim.Now(), s.cfg.Flow, false)
	}
	s.sndNxt = s.sndUna // go-back-N
	s.dupacks = 0
	s.inFR = false
	s.st.RtxBytes += minI64(int64(s.cfg.MSS), s.budget-s.sndUna)
	if s.cfg.Probe != nil {
		s.cfg.Probe.Retransmit(s.cfg.Sim.Now(), s.cfg.Flow, minI64(int64(s.cfg.MSS), s.budget-s.sndUna))
	}
	s.probeCwnd()
	s.trySend()
	s.armRTO()
}

// Deliver handles an incoming packet (ACK or SYNACK).
func (s *Sender) Deliver(pkt *netsim.Packet) {
	if s.state == stateDone {
		return
	}
	if pkt.Flags&netsim.FlagSYN != 0 && pkt.Flags&netsim.FlagACK != 0 {
		if s.state == stateSynSent {
			s.state = stateEstablished
			s.rtoBackoff = 0
			s.est.Observe(s.cfg.Sim.Now() - pkt.SentAt)
			s.rto.Stop()
			if s.dctcp != nil {
				s.dctcp.windowEnd = 0
			}
			s.trySend()
			if s.budget == 0 && s.closing {
				s.finish()
			}
		}
		return
	}
	if pkt.Flags&netsim.FlagACK == 0 {
		return
	}
	ack := pkt.Ack
	switch {
	case ack > s.sndUna:
		newly := ack - s.sndUna
		s.st.BytesAcked += newly
		s.est.Observe(s.cfg.Sim.Now() - pkt.SentAt)
		s.sndUna = ack
		if s.sndNxt < s.sndUna {
			s.sndNxt = s.sndUna
		}
		s.rtoBackoff = 0
		if s.inFR {
			if ack >= s.recover {
				// Full acknowledgment: leave fast recovery.
				s.inFR = false
				s.dupacks = 0
				s.cwnd = s.ssthresh
				s.clampCwnd()
				if s.cfg.Probe != nil {
					s.cfg.Probe.Recovery(s.cfg.Sim.Now(), s.cfg.Flow, false)
				}
			} else {
				// Partial ACK (RFC 6582): retransmit the next hole,
				// deflate, stay in recovery.
				s.retransmit(s.sndUna)
				s.cwnd = maxI64(s.cwnd-newly+int64(s.cfg.MSS), int64(s.cfg.MSS))
			}
		} else {
			s.dupacks = 0
			s.growCwnd(newly, pkt.Flags&netsim.FlagECE != 0)
		}
		s.probeCwnd()
		if s.flight() > 0 {
			s.armRTO()
		} else {
			s.rto.Stop()
		}
		s.trySend()
		if s.sndUna == s.budget {
			if s.cfg.OnDrain != nil {
				s.cfg.OnDrain()
			}
			if s.closing {
				s.finish()
			}
		}
	case ack == s.sndUna && s.flight() > 0:
		s.dupacks++
		if s.inFR {
			s.cwnd += int64(s.cfg.MSS) // window inflation
			s.clampCwnd()
			s.probeCwnd()
			s.trySend()
		} else if s.dupacks == 3 {
			s.st.FastRtx++
			s.ssthresh = maxI64(s.flight()/2, int64(2*s.cfg.MSS))
			s.recover = s.sndNxt
			s.inFR = true
			s.cwnd = s.ssthresh + int64(3*s.cfg.MSS)
			s.clampCwnd()
			if s.cfg.Probe != nil {
				s.cfg.Probe.Recovery(s.cfg.Sim.Now(), s.cfg.Flow, true)
			}
			s.probeCwnd()
			s.retransmit(s.sndUna)
			s.armRTO()
		}
	}
}

// growCwnd applies slow start / congestion avoidance and, for DCTCP, the
// per-window proportional reduction.
func (s *Sender) growCwnd(newly int64, ece bool) {
	if s.dctcp != nil {
		d := s.dctcp
		d.ackedBytes += newly
		if ece {
			d.markedBytes += newly
		}
		if s.sndUna >= d.windowEnd {
			if d.ackedBytes > 0 {
				f := float64(d.markedBytes) / float64(d.ackedBytes)
				d.alpha = (1-d.g)*d.alpha + d.g*f
				if d.markedBytes > 0 {
					s.cwnd = maxI64(int64(float64(s.cwnd)*(1-d.alpha/2)), int64(s.cfg.MSS))
					s.ssthresh = s.cwnd
				}
			}
			d.ackedBytes, d.markedBytes = 0, 0
			d.windowEnd = s.sndNxt
			if ece {
				// The window that just ended saw marks; growth pauses.
				return
			}
		}
	}
	if s.cwnd < s.ssthresh {
		s.cwnd += minI64(newly, int64(s.cfg.MSS))
	} else {
		add := int64(s.cfg.MSS) * int64(s.cfg.MSS) / s.cwnd
		if add < 1 {
			add = 1
		}
		s.cwnd += add
	}
	s.clampCwnd()
}

func (s *Sender) finish() {
	if s.state == stateDone {
		return
	}
	s.state = stateDone
	if !s.finSent {
		s.finSent = true
		p := s.cfg.Local.NewPacket()
		*p = netsim.Packet{
			Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
			Flags: netsim.FlagFIN, Seq: s.sndNxt, SentAt: s.cfg.Sim.Now(),
			Window: netsim.WindowUnset,
		}
		s.cfg.Local.Send(p)
	}
	s.rto.Stop()
	s.st.Done = true
	s.st.Completed = s.cfg.Sim.Now()
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete()
	}
}

func (s *Sender) String() string {
	return fmt.Sprintf("tcp.Sender{flow=%d una=%d nxt=%d cwnd=%d}",
		s.cfg.Flow, s.sndUna, s.sndNxt, s.cwnd)
}

// Receiver is the receiving half: cumulative per-packet ACKs with ECN echo
// and out-of-order reassembly. It is shared by TCP, DCTCP and (with RMA
// handling) wrapped by TFC's receiver.
type Receiver struct {
	sim   *sim.Simulator
	host  *netsim.Host
	peer  *netsim.Host
	flow  netsim.FlowID
	reasm transport.Reassembly

	// Received is the cumulative in-order byte count.
	// FinAt records FIN arrival (0 if none yet).
	FinAt sim.Time
	// OnData, if set, fires after every in-order advance with the new
	// cumulative count.
	OnData func(total int64)
}

// NewReceiver creates (and registers at host) the receiving side.
func NewReceiver(s *sim.Simulator, host, peer *netsim.Host, flow netsim.FlowID) *Receiver {
	r := &Receiver{sim: s, host: host, peer: peer, flow: flow}
	host.Register(flow, r)
	return r
}

// Received returns the cumulative in-order bytes delivered.
func (r *Receiver) Received() int64 { return r.reasm.Next() }

// Deliver processes an arriving packet.
func (r *Receiver) Deliver(pkt *netsim.Packet) {
	switch {
	case pkt.Flags&netsim.FlagSYN != 0:
		p := r.host.NewPacket()
		*p = netsim.Packet{
			Flow: r.flow, Src: r.host.ID(), Dst: r.peer.ID(),
			Flags:  netsim.FlagSYN | netsim.FlagACK,
			Ack:    r.reasm.Next(),
			SentAt: pkt.SentAt, Window: netsim.WindowUnset,
		}
		r.send(p)
	case pkt.Flags&netsim.FlagFIN != 0:
		r.FinAt = r.sim.Now()
	case pkt.Payload > 0:
		before := r.reasm.Next()
		next := r.reasm.Add(pkt.Seq, pkt.Payload)
		flags := netsim.FlagACK
		if pkt.Flags&netsim.FlagCE != 0 {
			flags |= netsim.FlagECE
		}
		// Field assignments for the same reason as mkData: the ACK path
		// runs once per delivered segment.
		p := r.host.NewPacket()
		p.Flow, p.Src, p.Dst = r.flow, r.host.ID(), r.peer.ID()
		p.Flags, p.Ack = flags, next
		p.SentAt, p.Window = pkt.SentAt, netsim.WindowUnset
		r.send(p)
		if next > before && r.OnData != nil {
			r.OnData(next)
		}
	}
}

func (r *Receiver) send(pkt *netsim.Packet) { r.host.Send(pkt) }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
