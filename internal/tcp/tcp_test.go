package tcp

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// rig is a dumbbell: h1 --1G-- sw --1G-- h2 with configurable bottleneck
// buffer on the sw->h2 port.
type rig struct {
	s      *sim.Simulator
	net    *netsim.Network
	h1, h2 *netsim.Host
	sw     *netsim.Switch
	bott   *netsim.Port
}

func newRig(buf int) *rig {
	s := sim.New(42)
	net := netsim.NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	// 10G access into a 1G bottleneck so queues actually form at sw->h2.
	cfg := netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 5 * sim.Microsecond}
	net.Connect(h1, sw, cfg)
	net.Connect(sw, h2, netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond, BufA: buf})
	net.ComputeRoutes()
	r := &rig{s: s, net: net, h1: h1, h2: h2, sw: sw}
	r.bott = sw.PortTo(h2.ID())
	return r
}

func (r *rig) conn(flow netsim.FlowID, opts ...func(*Config)) (*Sender, *Receiver) {
	cfg := Config{Sim: r.s, Local: r.h1, Peer: r.h2, Flow: flow}
	for _, o := range opts {
		o(&cfg)
	}
	return Dial(cfg)
}

func TestHandshakeAndTransfer(t *testing.T) {
	r := newRig(256 << 10)
	snd, rcv := r.conn(1)
	done := false
	snd.cfg.OnComplete = func() { done = true }
	r.s.At(0, func() {
		snd.Open()
		snd.Send(10 * 1460)
		snd.Close()
	})
	r.s.Run()
	if !done || !snd.Stats().Done {
		t.Fatal("transfer did not complete")
	}
	if rcv.Received() != 10*1460 {
		t.Fatalf("receiver got %d bytes, want %d", rcv.Received(), 10*1460)
	}
	if snd.Stats().Timeouts != 0 || snd.Stats().RtxBytes != 0 {
		t.Fatalf("clean path saw timeouts=%d rtx=%d", snd.Stats().Timeouts, snd.Stats().RtxBytes)
	}
	if rcv.FinAt == 0 {
		t.Fatal("FIN not delivered")
	}
}

func TestBulkGoodput(t *testing.T) {
	r := newRig(256 << 10)
	const total = 50 << 20 // 50 MB
	snd, rcv := r.conn(1)
	r.s.At(0, func() {
		snd.Open()
		snd.Send(total)
		snd.Close()
	})
	r.s.Run()
	if rcv.Received() != total {
		t.Fatalf("received %d, want %d", rcv.Received(), total)
	}
	fct := snd.Stats().FCT()
	goodput := float64(total) * 8 / fct.Seconds() // bits/s
	// Line-rate ceiling for 1460B MSS is ~94.9% of 1 Gbps.
	if goodput < 0.90e9 || goodput > 0.955e9 {
		t.Fatalf("goodput = %.1f Mbps, want ~930-949", goodput/1e6)
	}
}

func TestSlowStartDoubling(t *testing.T) {
	r := newRig(1 << 20)
	snd, _ := r.conn(1)
	r.s.At(0, func() {
		snd.Open()
		snd.Send(1 << 20)
	})
	// Sample cwnd shortly after start: slow start should have grown it
	// well beyond the initial 2 segments within a few RTTs.
	var cwndEarly int64
	r.s.At(2*sim.Millisecond, func() { cwndEarly = snd.Cwnd() })
	r.s.RunUntil(5 * sim.Millisecond)
	if cwndEarly <= int64(4*snd.cfg.MSS) {
		t.Fatalf("cwnd after 2ms = %d, slow start seems broken", cwndEarly)
	}
}

func TestLossRecoveryFastRetransmit(t *testing.T) {
	// Tiny bottleneck buffer forces drops; the transfer must still
	// complete via fast retransmit (not exclusively timeouts).
	r := newRig(8 * 1518)
	const total = 5 << 20
	snd, rcv := r.conn(1)
	r.s.At(0, func() {
		snd.Open()
		snd.Send(total)
		snd.Close()
	})
	r.s.Run()
	if rcv.Received() != total {
		t.Fatalf("received %d, want %d", rcv.Received(), total)
	}
	if r.bott.Drops == 0 {
		t.Fatal("expected drops with 8-frame buffer")
	}
	if snd.Stats().FastRtx == 0 {
		t.Fatal("expected fast retransmits")
	}
}

func TestRTOOnTotalLoss(t *testing.T) {
	// Drop everything at the bottleneck: the sender must keep trying via
	// exponentially backed-off RTOs without completing.
	r := newRig(256 << 10)
	drop := &dropHook{}
	r.bott.Hook = drop
	snd, _ := r.conn(1)
	r.s.At(0, func() {
		snd.Open()
		snd.Send(1460)
	})
	r.s.RunUntil(5 * sim.Second)
	if snd.Stats().Timeouts < 3 {
		t.Fatalf("timeouts = %d, want >=3 with all data dropped", snd.Stats().Timeouts)
	}
	if snd.Acked() != 0 {
		t.Fatal("nothing should be acked")
	}
}

type dropHook struct{ n int }

func (d *dropHook) OnEnqueue(*netsim.Packet, *netsim.Port) bool { d.n++; return false }

func TestSYNRetransmit(t *testing.T) {
	r := newRig(256 << 10)
	drop := &dropHook{}
	r.bott.Hook = drop
	snd, _ := r.conn(1)
	r.s.At(0, func() { snd.Open() })
	// Let two SYN timeouts pass, then heal the path.
	r.s.At(8*sim.Second, func() { r.bott.Hook = nil })
	done := false
	snd.cfg.OnComplete = func() { done = true }
	r.s.At(9*sim.Second, func() {
		snd.Send(1460)
		snd.Close()
	})
	r.s.Run()
	if !done {
		t.Fatal("connection never established after SYN loss healed")
	}
	if snd.Stats().Timeouts == 0 {
		t.Fatal("expected SYN timeouts")
	}
}

func TestTwoFlowFairness(t *testing.T) {
	r := newRig(128 << 10)
	const total = 200 << 20
	s1, _ := r.conn(1)
	s2, _ := r.conn(2)
	r.s.At(0, func() { s1.Open(); s1.Send(total) })
	r.s.At(0, func() { s2.Open(); s2.Send(total) })
	r.s.RunUntil(3 * sim.Second)
	a1, a2 := s1.Acked(), s2.Acked()
	if a1 == 0 || a2 == 0 {
		t.Fatal("a flow starved completely")
	}
	// Drop-tail TCP is known-unfair at these timescales (the paper's
	// Fig 9c shows exactly this); only guard against outright starvation.
	ratio := float64(a1) / float64(a2)
	if ratio < 1.0/8 || ratio > 8 {
		t.Fatalf("long-run share ratio %.2f, want within 8x", ratio)
	}
	// Aggregate should still be near line rate.
	agg := float64(a1+a2) * 8 / r.s.Now().Seconds()
	if agg < 0.80e9 {
		t.Fatalf("aggregate %.1f Mbps, want > 800", agg/1e6)
	}
}

func TestPersistentConnectionOnDrain(t *testing.T) {
	r := newRig(256 << 10)
	drains := 0
	snd, _ := r.conn(1, func(c *Config) {
		c.OnDrain = func() { drains++ }
	})
	r.s.At(0, func() { snd.Open(); snd.Send(100 * 1460) })
	r.s.At(100*sim.Millisecond, func() { snd.Send(100 * 1460) })
	r.s.Run()
	if drains != 2 {
		t.Fatalf("OnDrain fired %d times, want 2 (one per message)", drains)
	}
	if snd.Acked() != 200*1460 {
		t.Fatalf("acked %d, want %d", snd.Acked(), 200*1460)
	}
}

func TestSendBeforeEstablishedQueues(t *testing.T) {
	r := newRig(256 << 10)
	snd, rcv := r.conn(1)
	r.s.At(0, func() {
		snd.Open()
		snd.Send(1460) // queued during handshake
	})
	r.s.Run()
	if rcv.Received() != 1460 {
		t.Fatal("data queued before establishment was lost")
	}
}

func TestCloseIdempotentAndEmptyFlow(t *testing.T) {
	r := newRig(256 << 10)
	snd, rcv := r.conn(1)
	completions := 0
	snd.cfg.OnComplete = func() { completions++ }
	r.s.At(0, func() {
		snd.Open()
		snd.Close()
		snd.Close()
	})
	r.s.Run()
	if completions != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", completions)
	}
	if rcv.FinAt == 0 {
		t.Fatal("empty flow should still FIN")
	}
}

func TestMinRTOEnforced(t *testing.T) {
	r := newRig(256 << 10)
	snd, _ := r.conn(1) // default MinRTO = 200ms
	drop := &dropHook{}
	r.s.At(0, func() {
		snd.Open()
		snd.Send(1460)
	})
	// After establishment, break the path and measure time to first RTO.
	var rtoAt sim.Time
	r.s.At(10*sim.Millisecond, func() {
		r.bott.Hook = drop
		snd.Send(1460)
		base := snd.Stats().Timeouts
		var poll func()
		poll = func() {
			if snd.Stats().Timeouts > base && rtoAt == 0 {
				rtoAt = r.s.Now()
				return
			}
			r.s.After(sim.Millisecond, poll)
		}
		poll()
	})
	r.s.RunUntil(2 * sim.Second)
	if rtoAt == 0 {
		t.Fatal("no RTO observed")
	}
	if rtoAt-10*sim.Millisecond < 200*sim.Millisecond {
		t.Fatalf("RTO fired after %v, violating 200ms min", rtoAt-10*sim.Millisecond)
	}
}

func TestDCTCPAlphaTracksMarks(t *testing.T) {
	r := newRig(256 << 10)
	snd, _ := r.conn(1, func(c *Config) { c.DCTCP = &DCTCPParams{G: 1.0 / 16} })
	// Mark everything: alpha must climb toward 1.
	for _, p := range r.sw.Ports() {
		p.Hook = ceAll{}
	}
	r.s.At(0, func() { snd.Open(); snd.Send(10 << 20) })
	r.s.RunUntil(100 * sim.Millisecond)
	if snd.Alpha() < 0.5 {
		t.Fatalf("alpha = %.3f after persistent marking, want high", snd.Alpha())
	}
	if snd.Cwnd() > int64(4*snd.cfg.MSS) {
		t.Fatalf("cwnd = %d under persistent marking, want small", snd.Cwnd())
	}
}

type ceAll struct{}

func (ceAll) OnEnqueue(p *netsim.Packet, _ *netsim.Port) bool {
	if p.Flags&netsim.FlagECT != 0 {
		p.Flags |= netsim.FlagCE
	}
	return true
}
