package netsim

import (
	"runtime"
	"testing"

	"tfcsim/internal/sim"
)

// sink consumes delivered packets (Host.Receive releases them afterwards).
type benchSink struct{ got int64 }

func (k *benchSink) Deliver(pkt *Packet) { k.got += int64(pkt.Payload) }

// reportPerHop converts a malloc delta into the allocs/pkt-hop metric the
// perf trajectory tracks (ISSUE 2 acceptance: ≥5× below the ~4.7 of the
// pre-pooling engine).
func reportPerHop(b *testing.B, mallocs uint64, net *Network) {
	var hops int64
	for _, n := range net.Nodes() {
		for _, p := range n.Ports() {
			hops += p.TxPackets
		}
	}
	if hops > 0 {
		b.ReportMetric(float64(mallocs)/float64(hops), "allocs/pkt-hop")
	}
}

// BenchmarkSaturatedPort drives a single always-backlogged 10G port: the
// purest measure of the per-packet forwarding cost (enqueue, ring-buffer
// FIFO, two pooled events, delivery, release).
func BenchmarkSaturatedPort(b *testing.B) {
	b.ReportAllocs()
	s := sim.New(1)
	net := NewNetwork(s)
	net.PoolPackets = true
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	net.Connect(h1, h2, LinkConfig{Rate: 10 * Gbps, Delay: sim.Microsecond})
	net.ComputeRoutes()
	k := &benchSink{}
	h2.Register(1, k)
	// Refill the queue as it drains so the port never idles, without ever
	// queueing more than a small batch (bounded memory at any b.N).
	const batch = 64
	left := b.N
	feed := func() {
		for i := 0; i < batch && left > 0; i, left = i+1, left-1 {
			p := net.NewPacket()
			p.Flow, p.Src, p.Dst, p.Payload = 1, h1.ID(), h2.ID(), MSS
			h1.Send(p)
		}
	}
	var refill func()
	refill = func() {
		feed()
		if left > 0 {
			s.After(batch*h1.NIC().Rate.TxTime(MSS+HeaderBytes+WireOverheadBytes), refill)
		}
	}
	// Pre-size pools and rings so the measured run is allocation-free.
	s.Warm(1024, 1024)
	net.Warm(1024, 1024)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	s.At(0, refill)
	s.Run()
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if k.got != int64(b.N)*MSS {
		b.Fatalf("delivered %d bytes, want %d", k.got, int64(b.N)*MSS)
	}
	reportPerHop(b, ms1.Mallocs-ms0.Mallocs, net)
}

// burster fires one sender's synchronized window. Pre-built once per
// sender and scheduled as an EventTarget, so burst arrival costs no
// closure allocations (the residual 64 allocs/op of the closure-based
// version).
type burster struct {
	net *Network
	h   *Host
	dst NodeID
}

// RunEvent implements sim.EventTarget.
func (bu *burster) RunEvent() {
	for j := 0; j < 8; j++ {
		p := bu.net.NewPacket()
		p.Flow, p.Src, p.Dst, p.Payload = 1, bu.h.ID(), bu.dst, MSS
		bu.h.Send(p)
	}
}

// BenchmarkIncastBurst replays the paper's stress shape at the raw packet
// level: many senders burst simultaneously into one switch port with a
// finite buffer, the case where a slice-shift FIFO used to degenerate to
// O(n²) per dequeue.
func BenchmarkIncastBurst(b *testing.B) {
	const senders = 64
	b.ReportAllocs()
	s := sim.New(1)
	net := NewNetwork(s)
	net.PoolPackets = true
	sw := net.NewSwitch("tor")
	dst := net.NewHost("recv")
	net.Connect(sw, dst, LinkConfig{Rate: 10 * Gbps, Delay: sim.Microsecond, BufA: 1 << 20})
	bursters := make([]burster, senders)
	for i := 0; i < senders; i++ {
		h := net.NewHost("h")
		net.Connect(h, sw, LinkConfig{Rate: 10 * Gbps, Delay: sim.Microsecond})
		bursters[i] = burster{net: net, h: h, dst: dst.ID()}
	}
	net.ComputeRoutes()
	k := &benchSink{}
	dst.Register(1, k)
	// Pre-size pools and rings, then run one untimed burst so any residual
	// one-time growth (heap slice, port rings) lands before the clock starts.
	s.Warm(1024, 1024)
	net.Warm(1024, 1024)
	for j := range bursters {
		s.Schedule(s.Now(), &bursters[j])
	}
	s.Run()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One synchronized burst: every sender fires a window at t=now.
		for j := range bursters {
			s.Schedule(s.Now(), &bursters[j])
		}
		s.Run()
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	reportPerHop(b, ms1.Mallocs-ms0.Mallocs, net)
}
