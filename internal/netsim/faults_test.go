package netsim

// Tests for the wire-level fault machinery: link down/up, loss injection
// ordering relative to port hooks, mid-run rate changes, and host pause.

import (
	"math/rand"
	"testing"

	"tfcsim/internal/sim"
)

// countHook counts OnEnqueue invocations (standing in for TFC's arrival
// counter / DCTCP's ECN marker).
type countHook struct {
	seen      int
	rateCalls int
}

func (c *countHook) OnEnqueue(pkt *Packet, port *Port) bool { c.seen++; return true }
func (c *countHook) OnRateChange(port *Port)                { c.rateCalls++ }

// alwaysLose is a LossModel that drops everything.
type alwaysLose struct{ calls int }

func (a *alwaysLose) Lose(r *rand.Rand) bool { a.calls++; return true }

func mkPkt(h1, h2 *Host, seq int64) *Packet {
	return &Packet{Flow: 7, Src: h1.ID(), Dst: h2.ID(), Seq: seq, Payload: MSS}
}

func TestLossAppliedBeforeHook(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	out := sw.PortTo(h2.ID())
	hook := &countHook{}
	out.Hook = hook
	out.LossRate = 1.0 // every packet is lost on the wire
	k := &sink{s: s}
	h2.Register(7, k)
	for i := 0; i < 5; i++ {
		pkt := mkPkt(h1, h2, int64(i)*MSS)
		s.At(sim.Time(i)*100*sim.Microsecond, func() { h1.Send(pkt) })
	}
	s.Run()
	if len(k.pkts) != 0 {
		t.Fatalf("delivered %d packets through LossRate=1", len(k.pkts))
	}
	if out.Drops != 5 {
		t.Fatalf("drops = %d, want 5", out.Drops)
	}
	// The wire loses the packet before the port sees it: the hook (which
	// models arrival accounting at the port) must observe nothing.
	if hook.seen != 0 {
		t.Fatalf("hook observed %d packets that the wire lost", hook.seen)
	}
}

func TestLossModelSupersedesLossRate(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	out := sw.PortTo(h2.ID())
	m := &alwaysLose{}
	out.LossModel = m
	out.LossRate = 0 // the model decides, not the uniform rate
	k := &sink{s: s}
	h2.Register(7, k)
	pkt := mkPkt(h1, h2, 0)
	s.At(0, func() { h1.Send(pkt) })
	s.Run()
	if m.calls != 1 || len(k.pkts) != 0 {
		t.Fatalf("model calls = %d, delivered = %d; want 1, 0", m.calls, len(k.pkts))
	}
}

func TestPortDownDropsAndPreservesQueue(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	out := sw.PortTo(h2.ID())
	k := &sink{s: s}
	h2.Register(7, k)
	// Three frames at the output port: f0 starts serializing (12.3us at
	// 1G), f1 and f2 queue behind it. The cut at 5us loses f0 mid-frame;
	// f1 and f2 are preserved and drain after SetUp.
	s.At(0, func() {
		for i := 0; i < 3; i++ {
			out.Enqueue(mkPkt(h1, h2, int64(i)*MSS))
		}
	})
	downAt := 5 * sim.Microsecond
	s.At(downAt, func() { out.SetDown(false) })
	s.At(downAt, func() {
		if !out.Down() {
			t.Error("port not down after SetDown")
		}
	})
	lost := mkPkt(h1, h2, 100*MSS)
	s.At(downAt+5*sim.Microsecond, func() { out.Enqueue(lost) })
	s.At(sim.Millisecond, out.SetUp)
	s.Run()
	// Dropped: f0 (cut mid-serialization) and the outage-time enqueue.
	if out.Drops != 2 {
		t.Fatalf("drops = %d, want 2", out.Drops)
	}
	var got []int64
	for _, p := range k.pkts {
		got = append(got, p.Seq)
	}
	if len(got) != 2 || got[0] != MSS || got[1] != 2*MSS {
		t.Fatalf("delivered seqs %v, want [MSS 2*MSS] after SetUp", got)
	}
	if k.at[0] <= sim.Millisecond {
		t.Fatalf("preserved frame delivered at %v, before link restore", k.at[0])
	}
}

func TestPortDownFlushEmptiesQueue(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	out := sw.PortTo(h2.ID())
	k := &sink{s: s}
	h2.Register(7, k)
	s.At(0, func() {
		for i := 0; i < 4; i++ {
			out.Enqueue(mkPkt(h1, h2, int64(i)*MSS))
		}
	})
	// f0 finishes serializing at 12.3us and is on the wire; the flush at
	// 13us cuts f1 mid-frame and discards f2, f3 from the queue.
	s.At(13*sim.Microsecond, func() { out.SetDown(true) })
	s.At(sim.Millisecond, out.SetUp)
	s.Run()
	if out.QueueLen() != 0 {
		t.Fatalf("queue len = %d after flush", out.QueueLen())
	}
	if len(k.pkts) != 1 || k.pkts[0].Seq != 0 {
		t.Fatalf("delivered %d packets, want only the pre-outage frame", len(k.pkts))
	}
	if out.Drops != 3 {
		t.Fatalf("drops = %d, want 3 (1 cut + 2 flushed)", out.Drops)
	}
}

func TestPortDownCutsInFlightFrame(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	out := sw.PortTo(h2.ID())
	k := &sink{s: s}
	h2.Register(7, k)
	s.At(0, func() { out.Enqueue(mkPkt(h1, h2, 0)) })
	// Cut the link mid-frame and restore it before serialization would
	// have finished: the frame is lost anyway.
	s.At(5*sim.Microsecond, func() { out.SetDown(false) })
	s.At(6*sim.Microsecond, out.SetUp)
	s.Run()
	if len(k.pkts) != 0 {
		t.Fatal("frame mid-serialization at cut time was delivered")
	}
	if out.Drops != 1 {
		t.Fatalf("drops = %d, want 1", out.Drops)
	}
}

func TestSetRateNotifiesHook(t *testing.T) {
	s := sim.New(1)
	_, _, h2, sw := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	out := sw.PortTo(h2.ID())
	hook := &countHook{}
	out.Hook = hook
	out.SetRate(100 * Mbps)
	if out.Rate != 100*Mbps {
		t.Fatalf("rate = %v, want 100Mbps", out.Rate)
	}
	if hook.rateCalls != 1 {
		t.Fatalf("rate observer called %d times, want 1", hook.rateCalls)
	}
}

func TestHostPauseBuffersInOrder(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, _ := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	k := &sink{s: s}
	h2.Register(7, k)
	s.At(0, func() { h2.SetPaused(true) })
	for i := 0; i < 3; i++ {
		pkt := mkPkt(h1, h2, int64(i)*MSS)
		s.At(sim.Time(i+1)*50*sim.Microsecond, func() { h1.Send(pkt) })
	}
	resumeAt := sim.Millisecond
	s.At(resumeAt, func() { h2.SetPaused(false) })
	s.Run()
	if len(k.pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3 after resume", len(k.pkts))
	}
	for i, p := range k.pkts {
		if p.Seq != int64(i)*MSS {
			t.Fatalf("delivery order broken: pkt %d has seq %d", i, p.Seq)
		}
		if k.at[i] != resumeAt {
			t.Fatalf("pkt %d delivered at %v, want resume time %v", i, k.at[i], resumeAt)
		}
	}
}

func TestHostPauseWithPooling(t *testing.T) {
	// Held packets retain ownership across the pause: with pooling on,
	// the packets must not be recycled while buffered.
	s := sim.New(1)
	net, h1, h2, _ := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	net.PoolPackets = true
	k := &sink{s: s}
	h2.Register(7, k)
	s.At(0, func() { h2.SetPaused(true) })
	for i := 0; i < 4; i++ {
		seq := int64(i) * MSS
		s.At(sim.Time(i+1)*30*sim.Microsecond, func() {
			p := h1.NewPacket()
			*p = Packet{Flow: 7, Src: h1.ID(), Dst: h2.ID(), Seq: seq, Payload: MSS}
			h1.Send(p)
		})
	}
	s.At(sim.Millisecond, func() { h2.SetPaused(false) })
	s.Run()
	if len(k.pkts) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(k.pkts))
	}
	for i, at := range k.at {
		if at != sim.Millisecond {
			t.Fatalf("pkt %d delivered at %v during pause", i, at)
		}
	}
}
