package netsim

import (
	"testing"

	"tfcsim/internal/sim"
)

// diamond builds h1 - s1 - {a, b} - s2 - h2: two equal-cost paths.
func diamond(s *sim.Simulator) (*Network, *Host, *Host, *Switch, *Switch, *Switch, *Switch) {
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	s1 := net.NewSwitch("s1")
	s2 := net.NewSwitch("s2")
	a := net.NewSwitch("a")
	b := net.NewSwitch("b")
	cfg := LinkConfig{Rate: Gbps, Delay: sim.Microsecond}
	net.Connect(h1, s1, cfg)
	net.Connect(s1, a, cfg)
	net.Connect(s1, b, cfg)
	net.Connect(a, s2, cfg)
	net.Connect(b, s2, cfg)
	net.Connect(s2, h2, cfg)
	net.ComputeRoutes()
	return net, h1, h2, s1, s2, a, b
}

func TestECMPEqualCostSetsDiscovered(t *testing.T) {
	s := sim.New(1)
	_, _, h2, s1, _, _, _ := diamond(s)
	ports := s1.PortsTo(h2.ID())
	if len(ports) != 2 {
		t.Fatalf("s1 has %d equal-cost ports to h2, want 2", len(ports))
	}
}

func TestECMPFlowConsistency(t *testing.T) {
	// Every packet of a flow must take the same path; distinct flows
	// should spread across both.
	s := sim.New(1)
	_, _, h2, s1, _, _, _ := diamond(s)
	used := map[*Port]int{}
	for f := FlowID(1); f <= 64; f++ {
		p := s1.PortFor(f, h2.ID())
		if p2 := s1.PortFor(f, h2.ID()); p2 != p {
			t.Fatal("flow hashing not deterministic")
		}
		used[p]++
	}
	if len(used) != 2 {
		t.Fatalf("flows used %d paths, want 2", len(used))
	}
	for p, n := range used {
		if n < 16 {
			t.Errorf("path %s got only %d of 64 flows (poor spreading)", p.Label, n)
		}
	}
}

func TestECMPDeliveryAndNoReordering(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, _, _, _, _ := diamond(s)
	k := &sink{s: s}
	h2.Register(5, k)
	s.At(0, func() {
		for i := 0; i < 50; i++ {
			h1.Send(&Packet{Flow: 5, Src: h1.ID(), Dst: h2.ID(), Seq: int64(i), Payload: MSS})
		}
	})
	s.Run()
	if len(k.pkts) != 50 {
		t.Fatalf("delivered %d, want 50", len(k.pkts))
	}
	for i, p := range k.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("reordered: pkt %d has seq %d (single flow must stay on one path)", i, p.Seq)
		}
	}
}

func TestECMPSpreadsLoad(t *testing.T) {
	// Many flows: both middle switches should carry traffic.
	s := sim.New(1)
	_, h1, h2, _, _, a, b := diamond(s)
	for f := FlowID(1); f <= 32; f++ {
		fl := f
		k := &sink{s: s}
		h2.Register(fl, k)
		s.At(0, func() {
			h1.Send(&Packet{Flow: fl, Src: h1.ID(), Dst: h2.ID(), Payload: MSS})
		})
	}
	s.Run()
	ta := a.Ports()[1].TxPackets // a -> s2
	tb := b.Ports()[1].TxPackets // b -> s2
	if ta == 0 || tb == 0 {
		t.Fatalf("load not spread: a=%d b=%d", ta, tb)
	}
	if ta+tb != 32 {
		t.Fatalf("total forwarded %d, want 32", ta+tb)
	}
}

func TestLossInjection(t *testing.T) {
	s := sim.New(3)
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	cfg := LinkConfig{Rate: Gbps, Delay: sim.Microsecond}
	net.Connect(h1, sw, cfg)
	net.Connect(sw, h2, cfg)
	net.ComputeRoutes()
	out := sw.PortTo(h2.ID())
	out.LossRate = 0.3
	k := &sink{s: s}
	h2.Register(1, k)
	const n = 2000
	s.At(0, func() {
		for i := 0; i < n; i++ {
			h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: 100})
		}
	})
	s.Run()
	got := len(k.pkts)
	if got < int(0.6*n) || got > int(0.8*n) {
		t.Fatalf("delivered %d of %d with 30%% loss, want ~70%%", got, n)
	}
	if int64(got)+out.Drops != n {
		t.Fatal("conservation violated under loss injection")
	}
}

func TestHostJitterPreservesOrder(t *testing.T) {
	s := sim.New(9)
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	cfg := LinkConfig{Rate: Gbps, Delay: sim.Microsecond}
	net.Connect(h1, sw, cfg)
	net.Connect(sw, h2, cfg)
	net.ComputeRoutes()
	h1.ProcJitter = 50 * sim.Microsecond
	k := &sink{s: s}
	h2.Register(1, k)
	// Spaced-out sends (NIC idle between them): each draws fresh jitter,
	// yet FIFO order must hold.
	for i := 0; i < 100; i++ {
		seq := int64(i)
		s.At(sim.Time(i)*20*sim.Microsecond, func() {
			h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Seq: seq, Payload: 100})
		})
	}
	s.Run()
	if len(k.pkts) != 100 {
		t.Fatalf("delivered %d", len(k.pkts))
	}
	for i, p := range k.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("jitter reordered packets: pos %d seq %d", i, p.Seq)
		}
	}
}

func TestHostJitterDoesNotThrottleLineRate(t *testing.T) {
	// A back-to-back burst keeps the NIC pipeline busy: jitter must not
	// reduce throughput below line rate.
	s := sim.New(9)
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	cfg := LinkConfig{Rate: Gbps, Delay: sim.Microsecond}
	net.Connect(h1, sw, cfg)
	net.Connect(sw, h2, cfg)
	net.ComputeRoutes()
	h1.ProcJitter = 50 * sim.Microsecond
	k := &sink{s: s}
	h2.Register(1, k)
	const n = 1000
	s.At(0, func() {
		for i := 0; i < n; i++ {
			h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: MSS})
		}
	})
	s.Run()
	elapsed := k.at[len(k.at)-1] - k.at[0]
	perPkt := elapsed / sim.Time(n-1)
	want := Gbps.TxTime(1538)
	if perPkt > want+want/10 {
		t.Fatalf("jitter throttled line rate: %v per packet, want ~%v", perPkt, want)
	}
}

func TestJitterStatisticalShape(t *testing.T) {
	// Capped exponential: most delays tiny, none beyond the cap.
	s := sim.New(5)
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	cfg := LinkConfig{Rate: Gbps, Delay: sim.Microsecond}
	net.Connect(h1, sw, cfg)
	net.Connect(sw, h2, cfg)
	net.ComputeRoutes()
	h1.ProcJitter = 40 * sim.Microsecond
	k := &sink{s: s}
	h2.Register(1, k)
	base := 2*(Gbps.TxTime(84)+sim.Microsecond) + 2 // unloaded path time for 100B... measured empirically below
	_ = base
	var sendTimes []sim.Time
	for i := 0; i < 500; i++ {
		at := sim.Time(i) * 200 * sim.Microsecond
		sendTimes = append(sendTimes, at)
		s.At(at, func() {
			h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: 26}) // 84B frame
		})
	}
	s.Run()
	if len(k.pkts) != 500 {
		t.Fatalf("delivered %d", len(k.pkts))
	}
	// Delay beyond the minimum observed = jitter draw.
	minLat := sim.Time(1 << 62)
	for i := range k.at {
		if l := k.at[i] - sendTimes[i]; l < minLat {
			minLat = l
		}
	}
	small, over := 0, 0
	for i := range k.at {
		j := k.at[i] - sendTimes[i] - minLat
		if j <= 10*sim.Microsecond {
			small++
		}
		if j > 40*sim.Microsecond {
			over++
		}
	}
	if over != 0 {
		t.Errorf("%d jitter draws exceeded the cap", over)
	}
	if small < 300 {
		t.Errorf("only %d/500 draws small; distribution should be mostly-small", small)
	}
}
