package netsim

import (
	"fmt"
	"math/rand"

	"tfcsim/internal/sim"
)

// Node is a device attached to the network: a Host or a Switch.
type Node interface {
	ID() NodeID
	Name() string
	// Receive is invoked when a packet fully arrives over the link whose
	// transmit side is from (store-and-forward semantics).
	Receive(pkt *Packet, from *Port)
	// Ports returns the node's transmit ports in creation order.
	Ports() []*Port
	// Sim returns the simulator driving this node: the network's
	// simulator, or the node's shard simulator once partitioned. All of a
	// node's events (and its transports') must be scheduled through it.
	Sim() *sim.Simulator
	addPort(p *Port)
	setShard(sh *netShard)
}

type nodeBase struct {
	id    NodeID
	name  string
	ports []*Port
	net   *Network
	sh    *netShard
}

func (n *nodeBase) ID() NodeID            { return n.id }
func (n *nodeBase) Name() string          { return n.name }
func (n *nodeBase) Ports() []*Port        { return n.ports }
func (n *nodeBase) Sim() *sim.Simulator   { return n.sh.sim }
func (n *nodeBase) addPort(p *Port)       { n.ports = append(n.ports, p) }
func (n *nodeBase) setShard(sh *netShard) { n.sh = sh }

// Interceptor lets a scheme take over forwarding of selected packets at a
// switch. TFC uses this for its ACK delay arbiter (paper §4.6): RMA ACKs
// whose window is below one MSS are held at the switch until the
// token-bucket counter of the corresponding data-direction port covers a
// full segment.
type Interceptor interface {
	// Intercept is called before pkt is queued on out. Returning true means
	// the interceptor took ownership (it will enqueue pkt later itself).
	Intercept(pkt *Packet, out *Port, sw *Switch) bool
}

// Switch is a store-and-forward output-queued switch with static routes.
// Destinations reachable over several equal-cost ports are load-balanced
// with flow-consistent (ECMP-style) hashing, so a flow's path — and with
// it TFC's per-port window assignment — stays stable.
type Switch struct {
	nodeBase
	routes map[NodeID][]*Port
	// One-entry route cache: consecutive packets to one destination (the
	// common case on a loaded path) skip the map lookup. Invalidated by
	// ComputeRoutes.
	cachedDst   NodeID
	cachedPorts []*Port
	// Interceptor, if non-nil, may defer forwarding of selected packets.
	Interceptor Interceptor
	// Unroutable counts packets with no route (diagnostics).
	Unroutable int64
}

// Receive forwards the packet toward its destination.
func (sw *Switch) Receive(pkt *Packet, from *Port) {
	out := sw.routeFor(pkt.Flow, pkt.Dst)
	if out == nil {
		sw.Unroutable++
		sw.sh.release(pkt)
		return
	}
	if sw.Interceptor != nil && sw.Interceptor.Intercept(pkt, out, sw) {
		return
	}
	out.Enqueue(pkt)
}

// routeFor picks the (flow-consistent) output port toward dst.
func (sw *Switch) routeFor(flow FlowID, dst NodeID) *Port {
	ports := sw.cachedPorts
	if dst != sw.cachedDst || ports == nil {
		ports = sw.routes[dst]
		if len(ports) == 0 {
			return nil
		}
		sw.cachedDst, sw.cachedPorts = dst, ports
	}
	if len(ports) == 1 {
		return ports[0]
	}
	return ports[flowHash(flow)%uint64(len(ports))]
}

// flowHash mixes a flow ID into a well-distributed value (SplitMix64
// finalizer).
func flowHash(f FlowID) uint64 {
	x := uint64(f) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PortTo returns the first (lowest-index) transmit port used to reach
// dst, or nil. With ECMP, PathTo gives the flow-specific choice.
func (sw *Switch) PortTo(dst NodeID) *Port {
	ports := sw.routes[dst]
	if len(ports) == 0 {
		return nil
	}
	return ports[0]
}

// PortsTo returns all equal-cost transmit ports toward dst.
func (sw *Switch) PortsTo(dst NodeID) []*Port { return sw.routes[dst] }

// PortFor returns the port a given flow toward dst uses.
func (sw *Switch) PortFor(flow FlowID, dst NodeID) *Port {
	return sw.routeFor(flow, dst)
}

// Endpoint consumes packets addressed to a flow at a host.
type Endpoint interface {
	Deliver(pkt *Packet)
}

// Host is an end system with a single NIC. Transport endpoints register by
// FlowID; unknown SYNs are handed to the Listener to spawn a passive
// endpoint (the accept path).
type Host struct {
	nodeBase
	endpoints map[FlowID]Endpoint
	// One-entry demux cache: back-to-back deliveries to one flow (a burst
	// or a single busy connection) skip the map lookup. Invalidated by
	// Register/Unregister.
	cachedFlow FlowID
	cachedEp   Endpoint
	// Listener creates a receiving endpoint for an incoming SYN of an
	// unknown flow, or returns nil to refuse it.
	Listener func(pkt *Packet) Endpoint
	// Stray counts packets that matched no endpoint.
	Stray int64
	// Aux holds protocol-local per-host state (e.g. the credit transport's
	// per-host pacer registry). Owned by whichever scheme sets it.
	Aux any
	// ProcJitter, when positive, adds a uniform [0, ProcJitter) host
	// processing delay to every transmitted packet, FIFO-preserving.
	// Real end hosts have this jitter, and TFC's rtt_b estimation relies
	// on it: the min-filter at switches needs occasional fast rounds to
	// observe the queueing-free RTT (paper §4.5 discusses exactly this).
	ProcJitter sim.Time
	procFree   sim.Time
	// jrand is the host's private jitter stream (see jitterRand): draws
	// depend only on this host's send sequence, never on how sends from
	// different hosts interleave, so sequential and sharded runs see the
	// same jitter.
	jrand *rand.Rand

	// Pause state (fault injection): while paused the host's delivery
	// path stalls and arrivals are buffered in order, modelling a host
	// hiccup (GC pause, interrupt storm, VM steal time).
	paused bool
	held   []*Packet
}

// NIC returns the host's single transmit port (nil before it is wired).
func (h *Host) NIC() *Port {
	if len(h.ports) == 0 {
		return nil
	}
	return h.ports[0]
}

// NewPacket returns a zeroed packet from the host's shard pool (see
// Network.NewPacket). Transport endpoints attached to this host allocate
// their packets through it.
func (h *Host) NewPacket() *Packet { return h.sh.newPacket() }

// Network returns the network this host is attached to.
func (h *Host) Network() *Network { return h.net }

// Send transmits a packet out of the host NIC, after the host's
// (randomized) processing delay. The jitter models interrupt/wakeup
// latency, so it applies only when the NIC pipeline is idle: a line-rate
// stream is not throttled (packets ride the busy pipeline), while
// window-limited senders pay a fresh random delay per packet — the
// variance TFC's switch-side rtt_b min-filter depends on (paper §4.5).
func (h *Host) Send(pkt *Packet) {
	s := h.sh.sim
	at := s.Now()
	h.net.trace(TraceHostSend, at, h.name, pkt)
	nic := h.NIC()
	if h.ProcJitter > 0 && h.procFree <= at && !nic.Busy() && nic.QueueLen() == 0 {
		// Capped exponential: mostly-small delays with occasional spikes
		// up to ProcJitter (interrupt-coalescing-like), so the mean RTT
		// inflation stays low while the variance the rtt_b min-filter
		// needs is preserved.
		j := sim.Time(h.jitterRand().ExpFloat64() * float64(h.ProcJitter) / 4)
		if j > h.ProcJitter {
			j = h.ProcJitter
		}
		at += j
	}
	if at < h.procFree {
		at = h.procFree // processing is FIFO: no reordering
	}
	h.procFree = at
	if at == s.Now() {
		nic.Enqueue(pkt)
		return
	}
	s.Schedule(at, h.sh.newHostSend(nic, pkt))
}

// Register binds an endpoint to a flow ID.
func (h *Host) Register(id FlowID, ep Endpoint) {
	h.endpoints[id] = ep
	h.cachedFlow, h.cachedEp = 0, nil
}

// Unregister removes a flow binding.
func (h *Host) Unregister(id FlowID) {
	delete(h.endpoints, id)
	h.cachedFlow, h.cachedEp = 0, nil
}

// Endpoint returns the endpoint bound to id, if any.
func (h *Host) Endpoint(id FlowID) Endpoint { return h.endpoints[id] }

// Paused reports whether the host's delivery path is stalled.
func (h *Host) Paused() bool { return h.paused }

// SetPaused stalls (true) or resumes (false) the host's delivery path.
// Buffered arrivals are delivered in arrival order at resume time, so a
// pause appears to peers as a burst of delayed ACKs — the hiccup the
// fault injector uses to stress RTO and rtt_b estimation.
func (h *Host) SetPaused(paused bool) {
	if h.paused == paused {
		return
	}
	h.paused = paused
	if paused {
		return
	}
	held := h.held
	h.held = nil
	for i, pkt := range held {
		held[i] = nil
		h.deliver(pkt)
	}
}

// Receive demultiplexes to the flow endpoint, invoking the Listener for an
// unknown SYN. A paused host buffers the packet (retaining ownership)
// until resume.
func (h *Host) Receive(pkt *Packet, from *Port) {
	if h.paused {
		//tfcvet:allow poolsafe,hotalloc — the pause buffer takes ownership until resume re-injects, and it only grows while a fault holds the host paused, never in steady state
		h.held = append(h.held, pkt)
		return
	}
	h.deliver(pkt)
}

func (h *Host) deliver(pkt *Packet) {
	ep := h.cachedEp
	if pkt.Flow != h.cachedFlow || ep == nil {
		var ok bool
		ep, ok = h.endpoints[pkt.Flow]
		if !ok {
			if pkt.Flags&FlagSYN != 0 && pkt.Flags&FlagACK == 0 && h.Listener != nil {
				if ep = h.Listener(pkt); ep != nil {
					h.endpoints[pkt.Flow] = ep
				}
			}
			if ep == nil {
				h.Stray++
				h.net.trace(TraceStray, h.sh.sim.Now(), h.name, pkt)
				h.sh.release(pkt)
				return
			}
		}
		h.cachedFlow, h.cachedEp = pkt.Flow, ep
	}
	h.net.trace(TraceDeliver, h.sh.sim.Now(), h.name, pkt)
	if h.net.Probe != nil {
		h.net.Probe.HostDeliver(h, pkt)
	}
	ep.Deliver(pkt)
	// Delivery is the packet's release point: Deliver must consume the
	// packet synchronously (every in-tree endpoint does), so ownership
	// returns to the host's shard pool here.
	h.sh.release(pkt)
}

// TraceEvent classifies a packet lifecycle notification.
type TraceEvent uint8

// Packet lifecycle events, in the order they occur along a path.
const (
	TraceHostSend TraceEvent = iota // transport handed the packet to the host
	TraceEnqueue                    // packet admitted to a port queue
	TraceDrop                       // packet dropped (drop-tail, hook, or loss)
	TraceTx                         // frame fully serialized onto the link
	TraceDeliver                    // delivered to the destination endpoint
	TraceStray                      // arrived at a host with no endpoint
)

// String names the event.
func (e TraceEvent) String() string {
	switch e {
	case TraceHostSend:
		return "SEND"
	case TraceEnqueue:
		return "ENQ"
	case TraceDrop:
		return "DROP"
	case TraceTx:
		return "TX"
	case TraceDeliver:
		return "RECV"
	case TraceStray:
		return "STRAY"
	}
	return "?"
}

// Probe observes forwarding-path events for the telemetry layer
// (internal/telemetry). Implementations must treat the *Packet and *Port
// arguments as read-only snapshots: copy any fields they need and retain
// neither pointer — with pooling on, the packet is recycled as soon as
// the probe returns. Probes run on the simulation's virtual timeline and
// must not mutate simulation state or draw from its Rand.
type Probe interface {
	// PortEnqueue runs after pkt is admitted to p's queue.
	PortEnqueue(p *Port, pkt *Packet)
	// PortDequeue runs when pkt leaves the queue to start serialization.
	PortDequeue(p *Port, pkt *Packet)
	// PortTx runs when pkt's frame has fully serialized onto p's wire
	// (the start of its propagation leg).
	PortTx(p *Port, pkt *Packet)
	// PortDrop runs for every drop (wire loss, hook veto, drop-tail, cut).
	PortDrop(p *Port, pkt *Packet)
	// HostDeliver runs when pkt reaches its destination endpoint at h,
	// immediately before delivery (the end of the packet's journey).
	HostDeliver(h *Host, pkt *Packet)
	// LinkState runs when p's link fails (down=true) or recovers.
	LinkState(p *Port, down bool)
}

// Network is a collection of nodes plus the shared simulator and routing.
type Network struct {
	// Sim is the control simulator: experiments schedule their workload
	// arrivals, samplers, and fault events through it. For a sequential
	// network it also drives every entity; Partition rebinds entities to
	// per-shard simulators and Sim becomes the sim.Group control.
	Sim    *sim.Simulator
	nodes  []Node
	nextID NodeID
	// Trace, when set, receives every packet lifecycle event (tcpdump-like
	// observability; adds one nil-check per event when unset). The trace
	// callback runs on shard goroutines in a partitioned network — only
	// use it on sequential runs.
	Trace func(ev TraceEvent, at sim.Time, where string, pkt *Packet)
	// Probe, when set, receives forwarding-path telemetry events. Like
	// Trace, the disabled path is one nil-check per event. In a
	// partitioned network probe callbacks run concurrently on shard
	// goroutines; the telemetry layer serializes internally.
	Probe Probe

	// PoolPackets opts this network into packet recycling: NewPacket draws
	// from a free list that ReleasePacket refills when a packet's single
	// ownership chain ends (delivery, drop, stray, or unroutable). With
	// pooling on, nothing may hold a *Packet past the Deliver/OnEnqueue/
	// Trace call it was passed to — copy the fields instead. Off by
	// default: packets are then ordinary garbage-collected allocations and
	// ReleasePacket is a no-op.
	PoolPackets bool

	// shards hold the per-shard execution contexts (simulator + pools);
	// exactly one, driven by Sim, until Partition splits the network.
	shards   []*netShard
	group    *sim.Group
	baseSeed int64
	portSeq  uint64 // port creation counter: stable per-port identity
}

// pktSlab is the packet-pool growth quantum: a pool miss allocates one
// slab and free-lists the remainder, so a growing live population (e.g. a
// deepening queue) costs one allocation per 64 packets instead of one
// each.
const pktSlab = 64

func (n *Network) trace(ev TraceEvent, at sim.Time, where string, pkt *Packet) {
	if n.Trace != nil {
		n.Trace(ev, at, where, pkt)
	}
}

// NewPacket returns a zeroed packet, recycled from a free list when
// PoolPackets is set. Transports allocate through Host.NewPacket (or
// Port.NewPacket from switch-side hooks) so the packet comes from — and
// later returns to — the pool of the shard doing the work; this method
// serves shard 0 for sequential callers (tests, benchmarks).
func (n *Network) NewPacket() *Packet { return n.shards[0].newPacket() }

// Warm pre-sizes the network for an allocation-free run: with pooling on,
// the packet pool grows to at least packets spare packets, the deferred
// host-send event pool to a matching depth, and every port's FIFO and
// in-flight rings to ringCap slots. Benchmarks call it (together with
// sim.Warm) so the measured steady state performs no allocation at all;
// cold networks grow on demand instead.
func (n *Network) Warm(packets, ringCap int) {
	for _, sh := range n.shards {
		if n.PoolPackets {
			for len(sh.pktFree) < packets {
				slab := make([]Packet, pktSlab)
				for i := range slab {
					sh.pktFree = append(sh.pktFree, &slab[i])
				}
			}
		}
		for len(sh.evFree) < 64 {
			sh.evFree = append(sh.evFree, &portEvent{})
		}
	}
	for _, node := range n.nodes {
		for _, p := range node.Ports() {
			if len(p.q) < ringCap {
				p.growQ2(ringCap)
			}
			if len(p.inFl) < ringCap {
				p.growInFl(ringCap)
			}
		}
	}
}

// ReleasePacket returns a packet to shard 0's pool. The forwarding path
// releases through shard-local pools instead; this sequential-context
// method serves code that takes ownership via an Interceptor and then
// discards the packet (interceptors run on the switch's shard — use
// Port.ReleasePacket there). No-op unless PoolPackets is set.
func (n *Network) ReleasePacket(p *Packet) { n.shards[0].release(p) }

// portEvent is the pooled sim.EventTarget for the one forwarding-path
// event that still needs a per-packet carrier: a host send deferred by
// processing jitter (any number can be pending per NIC). Serialization
// completion and delivery use port-resident events instead — see txEvent
// and rxEvent in port.go.
type portEvent struct {
	port *Port
	pkt  *Packet
}

// RunEvent implements sim.EventTarget. The event frees itself before
// acting so the callback chain can immediately reuse it. It runs — and
// recycles — on the port's shard, where it was allocated.
func (e *portEvent) RunEvent() {
	p, pkt := e.port, e.pkt
	e.port, e.pkt = nil, nil
	//tfcvet:allow hotalloc — free-list push: newHostSend popped with truncation, so this append reuses the retained capacity (amortized pool growth)
	p.sh.evFree = append(p.sh.evFree, e)
	p.Enqueue(pkt)
}

// NewNetwork creates an empty network on the given simulator.
func NewNetwork(s *sim.Simulator) *Network {
	n := &Network{Sim: s, baseSeed: s.Seed()}
	n.shards = []*netShard{{id: 0, sim: s, net: n}}
	return n
}

// Nodes returns all nodes in creation order.
func (n *Network) Nodes() []Node { return n.nodes }

// NewHost adds a host.
func (n *Network) NewHost(name string) *Host {
	h := &Host{
		nodeBase:  nodeBase{id: n.nextID, name: name, net: n, sh: n.shards[0]},
		endpoints: make(map[FlowID]Endpoint),
	}
	n.nextID++
	n.nodes = append(n.nodes, h)
	return h
}

// NewSwitch adds a switch.
func (n *Network) NewSwitch(name string) *Switch {
	sw := &Switch{
		nodeBase: nodeBase{id: n.nextID, name: name, net: n, sh: n.shards[0]},
		routes:   make(map[NodeID][]*Port),
	}
	n.nextID++
	n.nodes = append(n.nodes, sw)
	return sw
}

// LinkConfig describes a full-duplex cable.
type LinkConfig struct {
	Rate  Rate
	Delay sim.Time
	// BufA is the queue capacity (bytes) of the a→b port at node a; BufB of
	// the b→a port at node b. Zero means unlimited (typical for host NICs,
	// whose senders are window-limited).
	BufA, BufB int
}

// Connect wires a full-duplex link between a and b, returning the two
// directional ports (a→b, b→a).
func (n *Network) Connect(a, b Node, cfg LinkConfig) (ab, ba *Port) {
	ab = &Port{
		sim: n.Sim, net: n, Owner: a, Peer: b, Rate: cfg.Rate, Delay: cfg.Delay,
		BufBytes: cfg.BufA, idx: n.portSeq,
		Label: fmt.Sprintf("%s->%s", a.Name(), b.Name()),
	}
	ba = &Port{
		sim: n.Sim, net: n, Owner: b, Peer: a, Rate: cfg.Rate, Delay: cfg.Delay,
		BufBytes: cfg.BufB, idx: n.portSeq + 1,
		Label: fmt.Sprintf("%s->%s", b.Name(), a.Name()),
	}
	n.portSeq += 2
	ab.sh, ab.peerSh = n.shards[0], n.shards[0]
	ba.sh, ba.peerSh = n.shards[0], n.shards[0]
	ab.txEv.p, ab.rxEv.p = ab, ab
	ba.txEv.p, ba.rxEv.p = ba, ba
	a.addPort(ab)
	b.addPort(ba)
	return ab, ba
}

// ComputeRoutes installs next-hop route sets on every switch: for each
// destination, all ports on a shortest path qualify (equal-cost
// multipath); flows are spread over them with consistent hashing. Hosts
// need no routes — they have a single NIC. Deterministic: port sets keep
// creation order.
func (n *Network) ComputeRoutes() {
	const inf = int(^uint(0) >> 1)
	// All-pairs hop distances via one BFS per node.
	dist := make(map[NodeID][]int, len(n.nodes))
	for _, src := range n.nodes {
		d := make([]int, len(n.nodes))
		for i := range d {
			d[i] = inf
		}
		d[src.ID()] = 0
		frontier := []Node{src}
		for len(frontier) > 0 {
			var next []Node
			for _, u := range frontier {
				for _, p := range u.Ports() {
					v := p.Peer
					if d[v.ID()] == inf {
						d[v.ID()] = d[u.ID()] + 1
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		dist[src.ID()] = d
	}
	for _, node := range n.nodes {
		sw, ok := node.(*Switch)
		if !ok {
			continue
		}
		sw.routes = make(map[NodeID][]*Port, len(n.nodes))
		sw.cachedDst, sw.cachedPorts = 0, nil
		for _, dst := range n.nodes {
			if dst.ID() == sw.ID() {
				continue
			}
			d := dist[sw.ID()][dst.ID()]
			if d == inf {
				continue
			}
			var ports []*Port
			for _, p := range sw.Ports() {
				if dist[p.Peer.ID()][dst.ID()] == d-1 {
					ports = append(ports, p)
				}
			}
			sw.routes[dst.ID()] = ports
		}
	}
}

// HostByID returns the host with the given node ID, or nil.
func (n *Network) HostByID(id NodeID) *Host {
	if int(id) < len(n.nodes) {
		if h, ok := n.nodes[id].(*Host); ok {
			return h
		}
	}
	return nil
}
