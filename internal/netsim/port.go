package netsim

import (
	"math/rand"

	"tfcsim/internal/sim"
)

// PortHook observes and optionally modifies packets entering a port's
// output queue. DCTCP's ECN marker and TFC's per-port token logic are
// implemented as hooks, keeping the switch forwarding path generic.
type PortHook interface {
	// OnEnqueue runs before pkt joins the queue (and before the drop-tail
	// admission check, mirroring hardware that counts arrivals at the
	// port). It may modify pkt in place. Returning false drops the packet.
	OnEnqueue(pkt *Packet, port *Port) bool
}

// RateObserver is implemented by PortHooks that cache the port's link
// rate (TFC's token computation does). SetRate notifies the hook so a
// mid-run rate degradation reaches the cached value.
type RateObserver interface {
	OnRateChange(port *Port)
}

// LossModel decides per-packet wire loss, generalizing the uniform
// LossRate to stateful models (e.g. Gilbert–Elliott bursty loss, package
// faults). Implementations draw randomness only from r — the simulation's
// deterministic per-trial source — so injected loss is a pure function of
// the trial seed.
type LossModel interface {
	Lose(r *rand.Rand) bool
}

// Port is a unidirectional transmit port: a drop-tail FIFO feeding a link
// with fixed rate and propagation delay. A full-duplex cable between two
// nodes is a pair of Ports, one owned by each side.
type Port struct {
	sim   *sim.Simulator
	net   *Network
	Owner Node // node that transmits via this port
	Peer  Node // node at the far end of the link
	Label string

	// Sharding state (see shard.go). sh is the owner's shard — the
	// goroutine all of this port's events run on; peerSh is the receiving
	// side's. cross marks a shard-boundary link: deliveries then travel
	// through the group mailbox instead of the port-resident rxEv. idx is
	// the port's creation index, the stable identity its loss stream and
	// its delivery rank (the canonical order of simultaneous arrivals at
	// a node, identical in the sequential and sharded engines) are
	// derived from.
	sh     *netShard
	peerSh *netShard
	cross  bool
	idx    uint64
	lrand  *rand.Rand

	Rate  Rate
	Delay sim.Time // propagation delay
	// BufBytes is the queue capacity in frame bytes; 0 means unlimited.
	BufBytes int
	// Hook, if non-nil, runs for every packet entering the queue.
	Hook PortHook
	// LossRate, if positive, drops each arriving packet with this
	// probability (failure injection for tests and experiments).
	LossRate float64
	// LossModel, if non-nil, supersedes LossRate with a stateful
	// per-packet loss decision (e.g. bursty Gilbert–Elliott loss).
	LossModel LossModel

	// The FIFO is a power-of-two ring buffer: O(1) dequeue regardless of
	// backlog, where a slice-shift FIFO degenerates to O(n²) total work in
	// exactly the incast pile-ups this simulator exists to study.
	q      []*Packet
	qHead  int
	qLen   int
	qBytes int
	busy   bool

	// Batched port execution: the port owns its serialization and delivery
	// events instead of drawing pooled carriers per packet. txEv is the
	// single in-flight serialization completion (a port serializes one
	// frame at a time); rxEv drains inFl, the FIFO ring of frames
	// propagating on the wire — per-port deliveries share one fixed Delay,
	// so they complete in exactly the order they were pushed.
	txEv    txEvent
	rxEv    rxEvent
	inFl    []*Packet
	inFlHd  int
	inFlLen int
	// Serialization-time cache: back-to-back frames of one wire size (the
	// common case on a saturated port) reuse the previous 128-bit TxTime
	// computation. Invalidated by SetRate.
	cachedWire int
	cachedTxT  sim.Time
	// Link failure state machine (fault injection): while down, arriving
	// packets are dropped at the wire. cutTx marks a frame that was mid-
	// serialization when the link went down — it is lost even if the link
	// comes back before its serialization completes.
	down  bool
	cutTx bool

	// Statistics.
	Drops      int64
	DropBytes  int64
	TxPackets  int64
	TxFrames   int64 // frame bytes transmitted (excl. wire overhead)
	EnqPackets int64
	// MaxQueue is the high-water mark of the queue in bytes; MaxQueueAt
	// records when it was reached.
	MaxQueue   int
	MaxQueueAt sim.Time
}

// QueueBytes returns the current backlog in frame bytes (excluding the
// frame being serialized).
func (p *Port) QueueBytes() int { return p.qBytes }

// QueueLen returns the number of queued frames.
func (p *Port) QueueLen() int { return p.qLen }

// Busy reports whether the port is currently serializing a frame.
func (p *Port) Busy() bool { return p.busy }

// Down reports whether the link is currently failed.
func (p *Port) Down() bool { return p.down }

// SetDown fails the link: subsequent Enqueues drop at the wire, and a
// frame mid-serialization is lost. With flush, the queued backlog is
// dropped too (a rebooting line card); without it the queue is preserved
// and drains when the link comes back (a pulled-and-replugged cable).
// Packets already past serialization keep propagating — at data-center
// delays they are off the cable within microseconds of the cut.
func (p *Port) SetDown(flush bool) {
	if p.down {
		return
	}
	p.down = true
	p.cutTx = p.busy
	if p.net.Probe != nil {
		p.net.Probe.LinkState(p, true)
	}
	if flush {
		for p.qLen > 0 {
			pkt := p.popQ()
			p.qBytes -= pkt.FrameBytes()
			p.drop(pkt)
		}
	}
}

// SetUp restores a failed link; a preserved backlog resumes transmission
// immediately.
func (p *Port) SetUp() {
	if !p.down {
		return
	}
	p.down = false
	if p.net.Probe != nil {
		p.net.Probe.LinkState(p, false)
	}
	if !p.busy && p.qLen > 0 {
		p.startTx()
	}
}

// SetRate changes the link rate mid-run (fault injection: an autoneg
// downshift or a degraded optic). It takes effect at the next frame
// serialization; a hook caching the rate is notified via RateObserver.
func (p *Port) SetRate(r Rate) {
	p.Rate = r
	p.cachedWire = 0
	if ro, ok := p.Hook.(RateObserver); ok {
		ro.OnRateChange(p)
	}
}

// Network returns the network the port belongs to.
func (p *Port) Network() *Network { return p.net }

// Sim returns the simulator driving this port — the owner node's shard
// simulator. Hooks and interceptors attached at the port's switch must
// schedule and read time through it.
func (p *Port) Sim() *sim.Simulator { return p.sim }

// rank is the port's delivery rank: deliveries that reach their
// destinations at the same virtual instant execute in port-creation
// order, the same canonical arbitration in the sequential and sharded
// engines (see sim.ScheduleAfterRank). Real switches arbitrate
// simultaneous arrivals deterministically too; this just fixes which
// deterministic order the simulation means.
func (p *Port) rank() int32 { return int32(p.idx) }

// NewPacket returns a zeroed packet from the port's shard pool. Switch-
// side logic that originates packets (e.g. BFC's pause frames) allocates
// through the port so the packet's pool is the shard doing the work.
func (p *Port) NewPacket() *Packet { return p.sh.newPacket() }

// ReleasePacket returns a packet to the port's shard pool. Interceptors
// and hooks that took ownership of a packet and then discard it release
// it here. No-op unless PoolPackets is set.
func (p *Port) ReleasePacket(pkt *Packet) { p.sh.release(pkt) }

func (p *Port) pushQ(pkt *Packet) {
	if p.qLen == len(p.q) {
		p.growQ()
	}
	p.q[(p.qHead+p.qLen)&(len(p.q)-1)] = pkt
	p.qLen++
}

func (p *Port) popQ() *Packet {
	pkt := p.q[p.qHead]
	p.q[p.qHead] = nil
	p.qHead = (p.qHead + 1) & (len(p.q) - 1)
	p.qLen--
	return pkt
}

func (p *Port) growQ() {
	p.growQ2(2 * len(p.q))
}

// growQ2 grows the FIFO ring to at least n slots (rounded up to a power
// of two, minimum 16).
func (p *Port) growQ2(n int) {
	c := 16
	for c < n {
		c <<= 1
	}
	nq := make([]*Packet, c)
	for i := 0; i < p.qLen; i++ {
		nq[i] = p.q[(p.qHead+i)&(len(p.q)-1)]
	}
	p.q = nq
	p.qHead = 0
}

// drop records a dropped packet and returns it to the pool (ownership ends
// here — nothing downstream will see it again).
func (p *Port) drop(pkt *Packet) {
	p.Drops++
	p.DropBytes += int64(pkt.FrameBytes())
	p.net.trace(TraceDrop, p.sim.Now(), p.Label, pkt)
	if p.net.Probe != nil {
		p.net.Probe.PortDrop(p, pkt)
	}
	p.sh.release(pkt)
}

// Enqueue admits a packet to the port. Wire-level failure injection (link
// down, loss model) runs first: it models the cable, so a lost packet must
// never reach the hook — TFC's arrival counter and DCTCP's ECN marker
// count what the port actually receives, and counting packets the wire
// then discards would skew rho and marked-fraction measurements under
// injected loss. Then the hook; then drop-tail admission; then the packet
// joins the FIFO and transmission starts if the line is idle.
func (p *Port) Enqueue(pkt *Packet) {
	p.EnqPackets++
	if p.down {
		p.drop(pkt)
		return
	}
	if p.LossModel != nil {
		if p.LossModel.Lose(p.lossRand()) {
			p.drop(pkt)
			return
		}
	} else if p.LossRate > 0 && p.lossRand().Float64() < p.LossRate {
		p.drop(pkt)
		return
	}
	if p.Hook != nil && !p.Hook.OnEnqueue(pkt, p) {
		p.drop(pkt)
		return
	}
	fb := pkt.FrameBytes()
	if p.BufBytes > 0 && p.qBytes+fb > p.BufBytes {
		p.drop(pkt)
		return
	}
	p.net.trace(TraceEnqueue, p.sim.Now(), p.Label, pkt)
	p.pushQ(pkt)
	p.qBytes += fb
	if p.qBytes > p.MaxQueue {
		p.MaxQueue = p.qBytes
		p.MaxQueueAt = p.sim.Now()
	}
	if p.net.Probe != nil {
		p.net.Probe.PortEnqueue(p, pkt)
	}
	if !p.busy {
		p.startTx()
	}
}

// txEvent is the port-resident serialization-completion event. A port
// serializes one frame at a time, so a single embedded instance replaces
// a pooled carrier per packet.
type txEvent struct {
	p   *Port
	pkt *Packet
}

// RunEvent implements sim.EventTarget.
func (e *txEvent) RunEvent() {
	pkt := e.pkt
	e.pkt = nil
	e.p.finishTx(pkt)
}

// rxEvent is the port-resident delivery event: it hands the oldest
// in-flight frame to the peer. All of a port's deliveries share the fixed
// propagation Delay and are scheduled in serialization order, so the
// (time, rank, seq) dispatch order matches the inFl ring's FIFO order
// exactly (a port's deliveries all carry its own rank).
type rxEvent struct {
	p *Port
}

// RunEvent implements sim.EventTarget.
func (e *rxEvent) RunEvent() {
	p := e.p
	pkt := p.inFl[p.inFlHd]
	p.inFl[p.inFlHd] = nil
	p.inFlHd = (p.inFlHd + 1) & (len(p.inFl) - 1)
	p.inFlLen--
	//tfcvet:allow shardsafe — rxEv only serves non-crossing links (finishTx routes p.cross through Group.Post), so Peer is always on this shard
	p.Peer.Receive(pkt, p)
}

func (p *Port) pushInFlight(pkt *Packet) {
	if p.inFlLen == len(p.inFl) {
		p.growInFl(2 * len(p.inFl))
	}
	p.inFl[(p.inFlHd+p.inFlLen)&(len(p.inFl)-1)] = pkt
	p.inFlLen++
}

func (p *Port) growInFl(n int) {
	c := 16
	for c < n {
		c <<= 1
	}
	n = c
	ni := make([]*Packet, n)
	for i := 0; i < p.inFlLen; i++ {
		ni[i] = p.inFl[(p.inFlHd+i)&(len(p.inFl)-1)]
	}
	p.inFl = ni
	p.inFlHd = 0
}

// txTime returns the serialization time of a wire-size, via the one-entry
// cache (saturated ports serialize runs of equal-size frames).
func (p *Port) txTime(wireBytes int) sim.Time {
	if wireBytes != p.cachedWire {
		p.cachedWire = wireBytes
		p.cachedTxT = p.Rate.TxTime(wireBytes)
	}
	return p.cachedTxT
}

// startTx begins serializing the head-of-line frame. Completion and
// delivery are port-resident events (no closures, no per-packet
// carriers): one fires when the last bit leaves the port, the second
// after the propagation delay.
func (p *Port) startTx() {
	pkt := p.popQ()
	p.qBytes -= pkt.FrameBytes()
	p.busy = true
	if p.net.Probe != nil {
		p.net.Probe.PortDequeue(p, pkt)
	}
	p.txEv.pkt = pkt
	p.sim.ScheduleAfter(p.txTime(pkt.WireBytes()), &p.txEv)
}

// finishTx runs when the frame has fully serialized onto the link.
func (p *Port) finishTx(pkt *Packet) {
	if p.cutTx {
		// The link went down while this frame was on the wire: the frame
		// is lost regardless of whether the link has since come back.
		p.cutTx = false
		p.busy = false
		p.drop(pkt)
		if !p.down && p.qLen > 0 {
			p.startTx()
		}
		return
	}
	p.TxPackets++
	p.TxFrames += int64(pkt.FrameBytes())
	now := p.sim.Now()
	p.net.trace(TraceTx, now, p.Label, pkt)
	if p.net.Probe != nil {
		p.net.Probe.PortTx(p, pkt)
	}
	pkt.Hops++
	if p.cross {
		// Shard-boundary link: hand the delivery to the group mailbox.
		// The conservative window guarantees now+Delay is at or past the
		// next epoch boundary, so the event reaches the peer's shard in
		// time; (deadline, now, rank) ordering reproduces the sequential
		// insertion order, including per-port delivery FIFO.
		sh := p.sh
		var e *crossRxEvent
		if k := len(sh.xFree) - 1; k >= 0 {
			e = sh.xFree[k]
			sh.xFree[k] = nil
			sh.xFree = sh.xFree[:k]
		} else {
			e = &crossRxEvent{}
		}
		e.p, e.pkt = p, pkt
		p.net.group.Post(sh.id, p.peerSh.id, now+p.Delay, now, p.rank(), e)
	} else {
		p.pushInFlight(pkt)
		p.sim.ScheduleAfterRank(p.Delay, &p.rxEv, p.rank())
	}
	if p.qLen > 0 {
		p.startTx()
	} else {
		p.busy = false
	}
}

// Utilization returns transmitted frame bytes divided by link capacity over
// the window [since, now]. It can exceed 1 slightly because wire overhead
// is excluded from TxFrames accounting but included in capacity use.
func (p *Port) Utilization(since, now sim.Time, framesAtSince int64) float64 {
	if now <= since {
		return 0
	}
	return float64(p.TxFrames-framesAtSince) / p.Rate.BytesIn(now-since)
}
