package netsim

import "tfcsim/internal/sim"

// PortHook observes and optionally modifies packets entering a port's
// output queue. DCTCP's ECN marker and TFC's per-port token logic are
// implemented as hooks, keeping the switch forwarding path generic.
type PortHook interface {
	// OnEnqueue runs before pkt joins the queue (and before the drop-tail
	// admission check, mirroring hardware that counts arrivals at the
	// port). It may modify pkt in place. Returning false drops the packet.
	OnEnqueue(pkt *Packet, port *Port) bool
}

// Port is a unidirectional transmit port: a drop-tail FIFO feeding a link
// with fixed rate and propagation delay. A full-duplex cable between two
// nodes is a pair of Ports, one owned by each side.
type Port struct {
	sim   *sim.Simulator
	net   *Network
	Owner Node // node that transmits via this port
	Peer  Node // node at the far end of the link
	Label string

	Rate  Rate
	Delay sim.Time // propagation delay
	// BufBytes is the queue capacity in frame bytes; 0 means unlimited.
	BufBytes int
	// Hook, if non-nil, runs for every packet entering the queue.
	Hook PortHook
	// LossRate, if positive, drops each arriving packet with this
	// probability (failure injection for tests and experiments).
	LossRate float64

	// The FIFO is a power-of-two ring buffer: O(1) dequeue regardless of
	// backlog, where a slice-shift FIFO degenerates to O(n²) total work in
	// exactly the incast pile-ups this simulator exists to study.
	q      []*Packet
	qHead  int
	qLen   int
	qBytes int
	busy   bool

	// Statistics.
	Drops      int64
	DropBytes  int64
	TxPackets  int64
	TxFrames   int64 // frame bytes transmitted (excl. wire overhead)
	EnqPackets int64
	// MaxQueue is the high-water mark of the queue in bytes; MaxQueueAt
	// records when it was reached.
	MaxQueue   int
	MaxQueueAt sim.Time
}

// QueueBytes returns the current backlog in frame bytes (excluding the
// frame being serialized).
func (p *Port) QueueBytes() int { return p.qBytes }

// QueueLen returns the number of queued frames.
func (p *Port) QueueLen() int { return p.qLen }

// Busy reports whether the port is currently serializing a frame.
func (p *Port) Busy() bool { return p.busy }

// Network returns the network the port belongs to (interceptors use it to
// release packets they took ownership of and then discard).
func (p *Port) Network() *Network { return p.net }

func (p *Port) pushQ(pkt *Packet) {
	if p.qLen == len(p.q) {
		p.growQ()
	}
	p.q[(p.qHead+p.qLen)&(len(p.q)-1)] = pkt
	p.qLen++
}

func (p *Port) popQ() *Packet {
	pkt := p.q[p.qHead]
	p.q[p.qHead] = nil
	p.qHead = (p.qHead + 1) & (len(p.q) - 1)
	p.qLen--
	return pkt
}

func (p *Port) growQ() {
	n := 2 * len(p.q)
	if n == 0 {
		n = 16
	}
	nq := make([]*Packet, n)
	for i := 0; i < p.qLen; i++ {
		nq[i] = p.q[(p.qHead+i)&(len(p.q)-1)]
	}
	p.q = nq
	p.qHead = 0
}

// drop records a dropped packet and returns it to the pool (ownership ends
// here — nothing downstream will see it again).
func (p *Port) drop(pkt *Packet) {
	p.Drops++
	p.DropBytes += int64(pkt.FrameBytes())
	p.net.trace(TraceDrop, p.Label, pkt)
	p.net.ReleasePacket(pkt)
}

// Enqueue admits a packet to the port. The hook runs first; then drop-tail
// admission; then the packet joins the FIFO and transmission starts if the
// line is idle.
func (p *Port) Enqueue(pkt *Packet) {
	p.EnqPackets++
	if p.Hook != nil && !p.Hook.OnEnqueue(pkt, p) {
		p.drop(pkt)
		return
	}
	if p.LossRate > 0 && p.sim.Rand.Float64() < p.LossRate {
		p.drop(pkt)
		return
	}
	fb := pkt.FrameBytes()
	if p.BufBytes > 0 && p.qBytes+fb > p.BufBytes {
		p.drop(pkt)
		return
	}
	p.net.trace(TraceEnqueue, p.Label, pkt)
	p.pushQ(pkt)
	p.qBytes += fb
	if p.qBytes > p.MaxQueue {
		p.MaxQueue = p.qBytes
		p.MaxQueueAt = p.sim.Now()
	}
	if !p.busy {
		p.startTx()
	}
}

// startTx begins serializing the head-of-line frame. Completion and
// delivery are pooled events (no closures): one fires when the last bit
// leaves the port, the second after the propagation delay.
func (p *Port) startTx() {
	pkt := p.popQ()
	p.qBytes -= pkt.FrameBytes()
	p.busy = true
	p.sim.ScheduleAfter(p.Rate.TxTime(pkt.WireBytes()), p.net.newEvent(evTxDone, p, pkt))
}

// finishTx runs when the frame has fully serialized onto the link.
func (p *Port) finishTx(pkt *Packet) {
	p.TxPackets++
	p.TxFrames += int64(pkt.FrameBytes())
	p.net.trace(TraceTx, p.Label, pkt)
	pkt.Hops++
	p.sim.ScheduleAfter(p.Delay, p.net.newEvent(evDeliver, p, pkt))
	if p.qLen > 0 {
		p.startTx()
	} else {
		p.busy = false
	}
}

// Utilization returns transmitted frame bytes divided by link capacity over
// the window [since, now]. It can exceed 1 slightly because wire overhead
// is excluded from TxFrames accounting but included in capacity use.
func (p *Port) Utilization(since, now sim.Time, framesAtSince int64) float64 {
	if now <= since {
		return 0
	}
	return float64(p.TxFrames-framesAtSince) / p.Rate.BytesIn(now-since)
}
