package netsim

import "tfcsim/internal/sim"

// PortHook observes and optionally modifies packets entering a port's
// output queue. DCTCP's ECN marker and TFC's per-port token logic are
// implemented as hooks, keeping the switch forwarding path generic.
type PortHook interface {
	// OnEnqueue runs before pkt joins the queue (and before the drop-tail
	// admission check, mirroring hardware that counts arrivals at the
	// port). It may modify pkt in place. Returning false drops the packet.
	OnEnqueue(pkt *Packet, port *Port) bool
}

// Port is a unidirectional transmit port: a drop-tail FIFO feeding a link
// with fixed rate and propagation delay. A full-duplex cable between two
// nodes is a pair of Ports, one owned by each side.
type Port struct {
	sim   *sim.Simulator
	net   *Network
	Owner Node // node that transmits via this port
	Peer  Node // node at the far end of the link
	Label string

	Rate  Rate
	Delay sim.Time // propagation delay
	// BufBytes is the queue capacity in frame bytes; 0 means unlimited.
	BufBytes int
	// Hook, if non-nil, runs for every packet entering the queue.
	Hook PortHook
	// LossRate, if positive, drops each arriving packet with this
	// probability (failure injection for tests and experiments).
	LossRate float64

	queue  []*Packet
	qBytes int
	busy   bool

	// Statistics.
	Drops      int64
	DropBytes  int64
	TxPackets  int64
	TxFrames   int64 // frame bytes transmitted (excl. wire overhead)
	EnqPackets int64
	// MaxQueue is the high-water mark of the queue in bytes; MaxQueueAt
	// records when it was reached.
	MaxQueue   int
	MaxQueueAt sim.Time
}

// QueueBytes returns the current backlog in frame bytes (excluding the
// frame being serialized).
func (p *Port) QueueBytes() int { return p.qBytes }

// QueueLen returns the number of queued frames.
func (p *Port) QueueLen() int { return len(p.queue) }

// Busy reports whether the port is currently serializing a frame.
func (p *Port) Busy() bool { return p.busy }

// Enqueue admits a packet to the port. The hook runs first; then drop-tail
// admission; then the packet joins the FIFO and transmission starts if the
// line is idle.
func (p *Port) Enqueue(pkt *Packet) {
	p.EnqPackets++
	if p.Hook != nil && !p.Hook.OnEnqueue(pkt, p) {
		p.Drops++
		p.DropBytes += int64(pkt.FrameBytes())
		p.net.trace(TraceDrop, p.Label, pkt)
		return
	}
	if p.LossRate > 0 && p.sim.Rand.Float64() < p.LossRate {
		p.Drops++
		p.DropBytes += int64(pkt.FrameBytes())
		p.net.trace(TraceDrop, p.Label, pkt)
		return
	}
	fb := pkt.FrameBytes()
	if p.BufBytes > 0 && p.qBytes+fb > p.BufBytes {
		p.Drops++
		p.DropBytes += int64(fb)
		p.net.trace(TraceDrop, p.Label, pkt)
		return
	}
	p.net.trace(TraceEnqueue, p.Label, pkt)
	p.queue = append(p.queue, pkt)
	p.qBytes += fb
	if p.qBytes > p.MaxQueue {
		p.MaxQueue = p.qBytes
		p.MaxQueueAt = p.sim.Now()
	}
	if !p.busy {
		p.startTx()
	}
}

func (p *Port) startTx() {
	pkt := p.queue[0]
	copy(p.queue, p.queue[1:])
	p.queue[len(p.queue)-1] = nil
	p.queue = p.queue[:len(p.queue)-1]
	p.qBytes -= pkt.FrameBytes()
	p.busy = true
	txTime := p.Rate.TxTime(pkt.WireBytes())
	p.sim.After(txTime, func() {
		p.TxPackets++
		p.TxFrames += int64(pkt.FrameBytes())
		p.net.trace(TraceTx, p.Label, pkt)
		pkt.Hops++
		p.sim.After(p.Delay, func() { p.Peer.Receive(pkt, p) })
		if len(p.queue) > 0 {
			p.startTx()
		} else {
			p.busy = false
		}
	})
}

// Utilization returns transmitted frame bytes divided by link capacity over
// the window [since, now]. It can exceed 1 slightly because wire overhead
// is excluded from TxFrames accounting but included in capacity use.
func (p *Port) Utilization(since, now sim.Time, framesAtSince int64) float64 {
	if now <= since {
		return 0
	}
	return float64(p.TxFrames-framesAtSince) / p.Rate.BytesIn(now-since)
}
