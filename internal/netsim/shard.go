package netsim

import (
	"fmt"
	"math/rand"

	"tfcsim/internal/sim"
)

// Sharded execution (conservative parallel DES, see sim.Group and
// DESIGN.md §10). A partitioned network assigns every node — and with it
// every transmit port and pooled resource — to one shard, each driven by
// its own sim.Simulator on its own goroutine. Links whose two ends live
// in different shards become the synchronization surface: their
// propagation delay bounds how far shards may run ahead of each other
// (the lookahead), and their deliveries travel through the group's
// deterministic per-epoch mailboxes instead of the port-resident rxEvent.
//
// Entity-owned randomness is a prerequisite: a shared per-trial
// rand.Rand would be consumed in shard-execution order, which is not the
// sequential order. Hosts draw processing jitter from a per-host stream
// and ports draw wire loss from a per-port stream, both derived from the
// trial seed via sim.SubSeed — identical draws in both modes.

// Salt namespaces for sim.SubSeed entity streams.
const (
	saltHostJitter = 0x48490000 // + NodeID
	saltPortLoss   = 0x504c0000 // + port creation index
)

// netShard is one shard's execution context: its simulator plus the
// pooled resources that must be single-owner under parallel execution.
// Every pool is touched only by its owning shard's goroutine (allocation
// happens where a packet/event is created, release where it is consumed
// — both on the owning shard), so no locks are needed. An unpartitioned
// network has exactly one shard whose simulator is Network.Sim.
type netShard struct {
	id  int
	sim *sim.Simulator
	net *Network

	pktFree []*Packet
	evFree  []*portEvent    // deferred host-send carriers
	xFree   []*crossRxEvent // cross-shard delivery carriers
}

func (sh *netShard) newPacket() *Packet {
	if k := len(sh.pktFree) - 1; k >= 0 {
		p := sh.pktFree[k]
		sh.pktFree[k] = nil
		sh.pktFree = sh.pktFree[:k]
		return p
	}
	if sh.net.PoolPackets {
		// Pool miss: grow by a slab. Packets contain no pointers, so the
		// slab is GC-opaque, and handing out slab elements is safe — the
		// pool never frees, it only recycles.
		slab := make([]Packet, pktSlab)
		for i := 1; i < pktSlab; i++ {
			sh.pktFree = append(sh.pktFree, &slab[i])
		}
		return &slab[0]
	}
	return &Packet{}
}

func (sh *netShard) release(p *Packet) {
	if !sh.net.PoolPackets || p == nil {
		return
	}
	*p = Packet{}
	//tfcvet:allow hotalloc — free-list push: newPacket popped with truncation, so this append reuses the retained capacity (amortized pool growth)
	sh.pktFree = append(sh.pktFree, p)
}

func (sh *netShard) newHostSend(port *Port, pkt *Packet) *portEvent {
	var e *portEvent
	if k := len(sh.evFree) - 1; k >= 0 {
		e = sh.evFree[k]
		sh.evFree[k] = nil
		sh.evFree = sh.evFree[:k]
	} else {
		e = &portEvent{}
	}
	e.port, e.pkt = port, pkt
	return e
}

// crossRxEvent delivers one packet over a shard-crossing link. Unlike
// the port-resident rxEvent (which drains the inFl ring in FIFO order),
// each cross delivery carries its own packet: mailbox insertion already
// orders deliveries by (time, schedule instant, port rank, post order),
// which is the same FIFO order per port — and the same canonical
// arbitration of simultaneous cross-port arrivals the sequential engine
// applies. The carrier is allocated from the sending shard's pool and
// released into the receiving shard's — pools migrate capacity but each
// is only ever touched by its owner.
type crossRxEvent struct {
	p   *Port
	pkt *Packet
}

// RunEvent implements sim.EventTarget; it executes on the receiving
// (peer's) shard.
func (e *crossRxEvent) RunEvent() {
	p, pkt := e.p, e.pkt
	e.p, e.pkt = nil, nil
	sh := p.peerSh
	//tfcvet:allow shardsafe,hotalloc — RunEvent executes on the receiving shard (the mailbox delivered it here), so peerSh IS this shard; the free-list append reuses truncation-retained capacity
	sh.xFree = append(sh.xFree, e)
	//tfcvet:allow shardsafe — same: the mailbox already moved execution to the peer's shard, so this delivery is shard-local
	p.Peer.Receive(pkt, p)
}

// Group returns the sharded dispatcher, or nil for a sequential network.
func (n *Network) Group() *sim.Group { return n.group }

// Shards returns the number of shards (1 for a sequential network).
func (n *Network) Shards() int { return len(n.shards) }

// Partition splits the network into nShards shards driven in parallel by
// a conservative sim.Group, with assign giving each node's shard (indexed
// by NodeID). It must be called on a fully built topology before any
// event has executed: partitioning rebinds every node and port to its
// shard's simulator, so entities created or attached afterwards
// (transports, hooks) pick up the right one. Events already scheduled
// stay on the control simulator — the right home for trial-wide cadences
// (telemetry sampling, experiment probes), which then run at epoch
// barriers; anything that must run on a node's shard has to be scheduled
// after the call, through node.Sim().
//
// Every link that crosses a shard boundary must have a positive
// propagation delay — the minimum such delay becomes the group's
// lookahead window. Subject to the tie caveat documented on sim.Group,
// the partitioned run is byte-identical to the sequential one.
func (n *Network) Partition(assign []int, nShards int) error {
	if n.group != nil {
		return fmt.Errorf("netsim: network is already partitioned")
	}
	if nShards < 2 {
		return fmt.Errorf("netsim: Partition needs at least 2 shards, got %d", nShards)
	}
	if len(assign) != len(n.nodes) {
		return fmt.Errorf("netsim: assign covers %d nodes, network has %d", len(assign), len(n.nodes))
	}
	if n.Sim.Now() != 0 || n.Sim.Executed() != 0 {
		return fmt.Errorf("netsim: Partition must run before any event has executed")
	}
	for i, s := range assign {
		if s < 0 || s >= nShards {
			return fmt.Errorf("netsim: node %d assigned to shard %d, want [0,%d)", i, s, nShards)
		}
	}
	// Lookahead: the minimum propagation delay over shard-crossing links.
	lookahead := sim.Time(0)
	for _, node := range n.nodes {
		for _, p := range node.Ports() {
			if assign[p.Owner.ID()] == assign[p.Peer.ID()] {
				continue
			}
			if p.Delay <= 0 {
				return fmt.Errorf("netsim: link %s crosses shards with zero propagation delay", p.Label)
			}
			if lookahead == 0 || p.Delay < lookahead {
				lookahead = p.Delay
			}
		}
	}
	if lookahead == 0 {
		// No link crosses a boundary: the shards are independent and any
		// positive window is safe.
		lookahead = sim.Second
	}
	g := sim.NewGroup(n.Sim, nShards, lookahead)
	n.group = g
	old0 := n.shards[0]
	shards := make([]*netShard, nShards)
	for i := range shards {
		shards[i] = &netShard{id: i, sim: g.Shard(i), net: n}
	}
	// Carry over anything Warm pre-sized on the bootstrap shard.
	shards[0].pktFree, shards[0].evFree = old0.pktFree, old0.evFree
	n.shards = shards
	for _, node := range n.nodes {
		sh := shards[assign[node.ID()]]
		node.setShard(sh)
		for _, p := range node.Ports() {
			p.sh = sh
			p.sim = sh.sim
			p.peerSh = shards[assign[p.Peer.ID()]]
			p.cross = p.peerSh != sh
		}
	}
	return nil
}

// jitterRand returns the host's private jitter stream, derived from the
// trial seed and the host's stable NodeID so the draw sequence does not
// depend on execution interleaving (sequential vs sharded).
func (h *Host) jitterRand() *rand.Rand {
	if h.jrand == nil {
		h.jrand = rand.New(rand.NewSource(sim.SubSeed(h.net.baseSeed, saltHostJitter+uint64(h.id))))
	}
	return h.jrand
}

// lossRand returns the port's private wire-loss stream (uniform LossRate
// and stateful LossModel draws), keyed by the port's creation index.
func (p *Port) lossRand() *rand.Rand {
	if p.lrand == nil {
		p.lrand = rand.New(rand.NewSource(sim.SubSeed(p.net.baseSeed, saltPortLoss+p.idx)))
	}
	return p.lrand
}
