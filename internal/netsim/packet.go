// Package netsim implements a packet-level data-center network simulator:
// hosts, store-and-forward switches with finite drop-tail buffers,
// rate/delay links, static shortest-path routing, and per-port hooks that
// let congestion-control schemes (ECN marking, TFC token logic) attach to
// the forwarding path.
package netsim

import (
	"fmt"
	"math/bits"
	"strings"

	"tfcsim/internal/sim"
)

// NodeID identifies a host or switch within one Network.
type NodeID int32

// FlowID identifies a transport connection end-to-end. Both endpoints of a
// connection share the same FlowID (it plays the role of the 5-tuple).
type FlowID int64

// Flag is a set of packet header flags. RM and RMA are the two reserved
// TCP-flag bits TFC repurposes (paper §5): RM marks the first packet of
// each full window of data, RMA marks its acknowledgment. ECT/CE/ECE model
// ECN for DCTCP.
type Flag uint16

const (
	FlagSYN Flag = 1 << iota
	FlagACK
	FlagFIN
	FlagRM  // Round Mark: first packet of a window (TFC)
	FlagRMA // Round Mark Acknowledgment (TFC)
	FlagECT // ECN-capable transport
	FlagCE  // Congestion Experienced (set by switches)
	FlagECE // ECN Echo (set by receivers)
	FlagCRD // Credit (receiver-driven credit transports)
	FlagXOF // Pause: per-flow backpressure from a switch (BFC-style)
	FlagXON // Resume: per-flow backpressure release
)

// flagNames maps every defined Flag bit to its display name, in bit order.
// It is the single source of truth for Flag.String and is shared with the
// package tests, which check it stays in sync with the constants above.
var flagNames = []struct {
	bit  Flag
	name string
}{
	{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"}, {FlagRM, "RM"},
	{FlagRMA, "RMA"}, {FlagECT, "ECT"}, {FlagCE, "CE"}, {FlagECE, "ECE"},
	{FlagCRD, "CRD"}, {FlagXOF, "XOF"}, {FlagXON, "XON"},
}

// String lists the set flags, e.g. "SYN|RM".
func (f Flag) String() string {
	if f == 0 {
		return "0"
	}
	var b strings.Builder
	for _, n := range flagNames {
		if f&n.bit != 0 {
			if b.Len() > 0 {
				b.WriteByte('|')
			}
			b.WriteString(n.name)
		}
	}
	if b.Len() == 0 {
		return "0" // only unknown bits set
	}
	return b.String()
}

// Framing constants. A data segment of Payload bytes travels as an
// Ethernet frame of Payload+HeaderBytes (TCP/IP 40 + Ethernet 18), with a
// 64-byte minimum frame. Links additionally charge WireOverheadBytes
// (preamble + inter-frame gap) per frame, giving the usual ~94.9% goodput
// ceiling for 1460-byte MSS on a fully loaded link.
const (
	HeaderBytes       = 58
	MinFrameBytes     = 64
	WireOverheadBytes = 20
	// MSS is the default maximum segment size used throughout.
	MSS = 1460
)

// Packet is a network packet (one Ethernet frame). Packets are passed by
// pointer and owned by exactly one queue or in-flight event at a time;
// switches may modify header fields (Window, Flags) in place, matching how
// TFC's NetFPGA switch rewrites headers on the data path.
type Packet struct {
	Flow FlowID
	Src  NodeID // original sender
	Dst  NodeID // final destination
	// Seq is the byte offset of the first payload byte (data packets).
	Seq int64
	// Ack is the cumulative acknowledgment (next expected byte).
	Ack int64
	// Payload is the number of application bytes carried.
	Payload int
	Flags   Flag
	// Window is the TFC window field in bytes. Senders initialize it to
	// WindowUnset; every TFC switch on the path lowers it to min(Window, W).
	Window int64
	// Weight is the flow's share weight for TFC's weighted allocation
	// policy (paper §4.1 allows "any allocation policies" over the token
	// pool). Zero is treated as 1 (plain fair share).
	Weight uint8
	// SentAt is the time the original sender transmitted the packet.
	SentAt sim.Time
	// Hops counts store-and-forward hops traversed (diagnostics).
	Hops int
}

// WindowUnset is the initial value of the Window field before any switch
// stamps it (the paper uses 0xffff in the 16-bit TCP window field; we use a
// 64-bit field and a correspondingly large sentinel).
const WindowUnset int64 = 1 << 40

// FrameBytes returns the Ethernet frame size of the packet.
func (p *Packet) FrameBytes() int {
	n := p.Payload + HeaderBytes
	if n < MinFrameBytes {
		n = MinFrameBytes
	}
	return n
}

// WireBytes returns the frame size plus per-frame wire overhead, i.e. the
// number of byte-times the packet occupies on a link.
func (p *Packet) WireBytes() int { return p.FrameBytes() + WireOverheadBytes }

// IsData reports whether the packet carries payload or is a forward-path
// control packet (SYN / FIN / TFC window-acquisition probe), as opposed to
// a pure acknowledgment.
func (p *Packet) IsData() bool { return p.Flags&FlagACK == 0 }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{flow=%d %d->%d seq=%d ack=%d len=%d %s w=%d}",
		p.Flow, p.Src, p.Dst, p.Seq, p.Ack, p.Payload, p.Flags, p.Window)
}

// Rate is a link bandwidth in bits per second.
type Rate int64

// Common rates.
const (
	Kbps Rate = 1e3
	Mbps Rate = 1e6
	Gbps Rate = 1e9
)

// TxTime returns the serialization delay of n bytes at rate r. The
// intermediate product n·8·1e9 is computed in 128 bits: the naive int64
// form overflows for n ≳ 1.07 GB (a multi-GB transfer handed to a pacing
// computation), silently going negative. Results that do fit are
// bit-identical to the old int64 arithmetic; delays beyond the int64 range
// saturate.
func (r Rate) TxTime(n int) sim.Time {
	if n <= 0 || r <= 0 {
		return 0
	}
	const maxTime = 1<<63 - 1
	hi, lo := bits.Mul64(uint64(n), 8*uint64(sim.Second))
	if hi >= uint64(r) {
		return sim.Time(maxTime) // quotient exceeds 64 bits
	}
	q, _ := bits.Div64(hi, lo, uint64(r))
	if q > maxTime {
		return sim.Time(maxTime)
	}
	return sim.Time(q)
}

// BytesPerSecond returns the rate converted to bytes/second.
func (r Rate) BytesPerSecond() float64 { return float64(r) / 8 }

// BytesIn returns how many bytes the link carries in duration d.
func (r Rate) BytesIn(d sim.Time) float64 {
	return float64(r) / 8 * d.Seconds()
}

func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}
