package netsim

import (
	"testing"

	"tfcsim/internal/sim"
)

func TestTraceLifecycle(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	cfg := LinkConfig{Rate: Gbps, Delay: sim.Microsecond}
	net.Connect(h1, sw, cfg)
	net.Connect(sw, h2, cfg)
	net.ComputeRoutes()
	k := &sink{s: s}
	h2.Register(1, k)

	var evs []TraceEvent
	var wheres []string
	net.Trace = func(ev TraceEvent, at sim.Time, where string, pkt *Packet) {
		evs = append(evs, ev)
		wheres = append(wheres, where)
	}
	s.At(0, func() { h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: MSS}) })
	s.Run()

	want := []TraceEvent{TraceHostSend, TraceEnqueue, TraceTx, TraceEnqueue, TraceTx, TraceDeliver}
	if len(evs) != len(want) {
		t.Fatalf("events %v, want %v", evs, want)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (all: %v)", i, evs[i], want[i], evs)
		}
	}
	if wheres[1] != "h1->sw" || wheres[3] != "sw->recv" && wheres[3] != "sw->h2" {
		t.Fatalf("wheres: %v", wheres)
	}
}

func TestTraceDropEvent(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	net.Connect(h1, sw, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	net.Connect(sw, h2, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	net.ComputeRoutes()
	sw.PortTo(h2.ID()).LossRate = 1.0
	drops := 0
	net.Trace = func(ev TraceEvent, at sim.Time, where string, pkt *Packet) {
		if ev == TraceDrop {
			drops++
		}
	}
	h2.Register(1, &sink{s: s})
	s.At(0, func() { h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: MSS}) })
	s.Run()
	if drops != 1 {
		t.Fatalf("drop events = %d, want 1", drops)
	}
}

func TestTraceEventStrings(t *testing.T) {
	names := map[TraceEvent]string{
		TraceHostSend: "SEND", TraceEnqueue: "ENQ", TraceDrop: "DROP",
		TraceTx: "TX", TraceDeliver: "RECV", TraceStray: "STRAY",
		TraceEvent(99): "?",
	}
	for ev, want := range names {
		if ev.String() != want {
			t.Errorf("%d.String() = %q, want %q", ev, ev.String(), want)
		}
	}
}

func TestTraceNilIsFree(t *testing.T) {
	// With no tracer set, traffic must flow identically (smoke test that
	// the nil-check path works everywhere).
	s := sim.New(1)
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	net.Connect(h1, sw, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	net.Connect(sw, h2, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	net.ComputeRoutes()
	k := &sink{s: s}
	h2.Register(1, k)
	s.At(0, func() { h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: MSS}) })
	s.Run()
	if len(k.pkts) != 1 {
		t.Fatal("delivery failed without tracer")
	}
}
