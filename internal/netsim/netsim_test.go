package netsim

import (
	"testing"
	"testing/quick"

	"tfcsim/internal/sim"
)

func TestFrameSizes(t *testing.T) {
	cases := []struct {
		payload     int
		frame, wire int
	}{
		{0, 64, 84},           // pure ACK: minimum frame
		{5, 64, 84},           // tiny payload still min frame
		{6, 64, 84},           // 6+58 = 64 exactly
		{7, 65, 85},           // just over min
		{MSS, 1518, 1538},     // full segment
		{2 * MSS, 2978, 2998}, // jumbo-ish
	}
	for _, c := range cases {
		p := &Packet{Payload: c.payload}
		if got := p.FrameBytes(); got != c.frame {
			t.Errorf("payload %d: FrameBytes = %d, want %d", c.payload, got, c.frame)
		}
		if got := p.WireBytes(); got != c.wire {
			t.Errorf("payload %d: WireBytes = %d, want %d", c.payload, got, c.wire)
		}
	}
}

func TestRateMath(t *testing.T) {
	if got := Gbps.TxTime(125); got != sim.Microsecond {
		t.Errorf("1Gbps tx of 125B = %v, want 1us", got)
	}
	if got := Rate(10 * Gbps).BytesPerSecond(); got != 1.25e9 {
		t.Errorf("10Gbps = %v B/s, want 1.25e9", got)
	}
	if got := Gbps.BytesIn(sim.Millisecond); got != 125000 {
		t.Errorf("1Gbps in 1ms = %v bytes, want 125000", got)
	}
}

func TestRateString(t *testing.T) {
	if Gbps.String() != "1Gbps" || (100*Mbps).String() != "100Mbps" {
		t.Errorf("Rate.String: %s %s", Gbps, 100*Mbps)
	}
}

func TestFlagString(t *testing.T) {
	f := FlagSYN | FlagRM
	if f.String() != "SYN|RM" {
		t.Errorf("Flag string = %q", f.String())
	}
	if Flag(0).String() != "0" {
		t.Errorf("zero flag string = %q", Flag(0).String())
	}
}

// sink is a minimal endpoint that records delivered packets.
type sink struct {
	pkts []*Packet
	at   []sim.Time
	s    *sim.Simulator
}

func (k *sink) Deliver(p *Packet) {
	k.pkts = append(k.pkts, p)
	k.at = append(k.at, k.s.Now())
}

// buildPair wires h1 -- sw -- h2 with the given link config.
func buildPair(s *sim.Simulator, cfg LinkConfig) (*Network, *Host, *Host, *Switch) {
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	net.Connect(h1, sw, cfg)
	net.Connect(sw, h2, cfg)
	net.ComputeRoutes()
	return net, h1, h2, sw
}

func TestEndToEndDelivery(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, _ := buildPair(s, LinkConfig{Rate: Gbps, Delay: 5 * sim.Microsecond})
	k := &sink{s: s}
	h2.Register(7, k)
	pkt := &Packet{Flow: 7, Src: h1.ID(), Dst: h2.ID(), Payload: MSS}
	s.At(0, func() { h1.Send(pkt) })
	s.Run()
	if len(k.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(k.pkts))
	}
	// Two store-and-forward hops: 2 * (tx 1538B wire @1G = 12.304us + 5us prop)
	want := 2 * (Gbps.TxTime(1538) + 5*sim.Microsecond)
	if k.at[0] != want {
		t.Errorf("arrival at %v, want %v", k.at[0], want)
	}
	if k.pkts[0].Hops != 2 {
		t.Errorf("hops = %d, want 2", k.pkts[0].Hops)
	}
}

func TestSerializationOrderingAndQueueing(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	k := &sink{s: s}
	h2.Register(1, k)
	// Burst of 10 MSS packets back to back: host NIC serializes them.
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Seq: int64(i), Payload: MSS})
		}
	})
	s.Run()
	if len(k.pkts) != 10 {
		t.Fatalf("delivered %d, want 10", len(k.pkts))
	}
	for i, p := range k.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("out of order: pkt %d has seq %d", i, p.Seq)
		}
	}
	// Inter-arrival of the last packets equals serialization time (pipeline full).
	gap := k.at[9] - k.at[8]
	if want := Gbps.TxTime(1538); gap != want {
		t.Errorf("steady-state inter-arrival %v, want %v", gap, want)
	}
	out := sw.PortTo(h2.ID())
	if out.TxPackets != 10 {
		t.Errorf("switch forwarded %d, want 10", out.TxPackets)
	}
}

func TestDropTail(t *testing.T) {
	s := sim.New(1)
	// Switch egress buffer fits exactly 3 MSS frames (3*1518=4554).
	cfg := LinkConfig{Rate: Gbps, Delay: sim.Microsecond}
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	net.Connect(h1, sw, cfg)
	net.Connect(sw, h2, LinkConfig{Rate: 100 * Mbps, Delay: sim.Microsecond, BufA: 3 * 1518})
	net.ComputeRoutes()
	k := &sink{s: s}
	h2.Register(1, k)
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Seq: int64(i), Payload: MSS})
		}
	})
	s.Run()
	out := sw.PortTo(h2.ID())
	if out.Drops == 0 {
		t.Fatal("expected drop-tail drops on slow egress")
	}
	if got := int64(len(k.pkts)) + out.Drops; got != 10 {
		t.Fatalf("delivered+dropped = %d, want 10", got)
	}
	if out.MaxQueue > 3*1518 {
		t.Errorf("queue exceeded buffer: %d", out.MaxQueue)
	}
}

func TestUnlimitedBufferNoDrops(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := buildPair(s, LinkConfig{Rate: 10 * Mbps, Delay: sim.Microsecond})
	k := &sink{s: s}
	h2.Register(1, k)
	s.At(0, func() {
		for i := 0; i < 100; i++ {
			h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: MSS})
		}
	})
	s.Run()
	if len(k.pkts) != 100 {
		t.Fatalf("delivered %d, want 100 with unlimited buffers", len(k.pkts))
	}
	if sw.PortTo(h2.ID()).Drops != 0 {
		t.Fatal("unexpected drops")
	}
}

type dropAllHook struct{ n int }

func (d *dropAllHook) OnEnqueue(*Packet, *Port) bool { d.n++; return false }

func TestPortHookDrop(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	hook := &dropAllHook{}
	sw.PortTo(h2.ID()).Hook = hook
	k := &sink{s: s}
	h2.Register(1, k)
	s.At(0, func() { h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: MSS}) })
	s.Run()
	if hook.n != 1 || len(k.pkts) != 0 {
		t.Fatalf("hook ran %d times, delivered %d; want 1, 0", hook.n, len(k.pkts))
	}
	if sw.PortTo(h2.ID()).Drops != 1 {
		t.Fatal("hook drop not counted")
	}
}

type markHook struct{}

func (markHook) OnEnqueue(p *Packet, _ *Port) bool { p.Flags |= FlagCE; return true }

func TestPortHookModify(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, sw := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	sw.PortTo(h2.ID()).Hook = markHook{}
	k := &sink{s: s}
	h2.Register(1, k)
	s.At(0, func() { h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: MSS}) })
	s.Run()
	if len(k.pkts) != 1 || k.pkts[0].Flags&FlagCE == 0 {
		t.Fatal("hook modification lost")
	}
}

func TestListenerSpawnsEndpoint(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, _ := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	k := &sink{s: s}
	spawned := 0
	h2.Listener = func(p *Packet) Endpoint {
		spawned++
		return k
	}
	s.At(0, func() {
		h1.Send(&Packet{Flow: 9, Src: h1.ID(), Dst: h2.ID(), Flags: FlagSYN})
		h1.Send(&Packet{Flow: 9, Src: h1.ID(), Dst: h2.ID(), Seq: 1, Payload: MSS})
	})
	s.Run()
	if spawned != 1 {
		t.Fatalf("listener spawned %d endpoints, want 1", spawned)
	}
	if len(k.pkts) != 2 {
		t.Fatalf("delivered %d, want 2 (SYN + data to same endpoint)", len(k.pkts))
	}
}

func TestStrayPackets(t *testing.T) {
	s := sim.New(1)
	_, h1, h2, _ := buildPair(s, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	s.At(0, func() {
		// Non-SYN to unknown flow: dropped as stray.
		h1.Send(&Packet{Flow: 3, Src: h1.ID(), Dst: h2.ID(), Payload: MSS})
	})
	s.Run()
	if h2.Stray != 1 {
		t.Fatalf("stray = %d, want 1", h2.Stray)
	}
}

func TestMultiHopRouting(t *testing.T) {
	// h1 - s1 - s2 - s3 - h2 line topology.
	s := sim.New(1)
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	s1 := net.NewSwitch("s1")
	s2 := net.NewSwitch("s2")
	s3 := net.NewSwitch("s3")
	cfg := LinkConfig{Rate: Gbps, Delay: sim.Microsecond}
	net.Connect(h1, s1, cfg)
	net.Connect(s1, s2, cfg)
	net.Connect(s2, s3, cfg)
	net.Connect(s3, h2, cfg)
	net.ComputeRoutes()
	k := &sink{s: s}
	h2.Register(1, k)
	s.At(0, func() { h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: MSS}) })
	s.Run()
	if len(k.pkts) != 1 || k.pkts[0].Hops != 4 {
		t.Fatalf("delivery over 4 hops failed: %+v", k.pkts)
	}
	// Reverse direction too.
	k1 := &sink{s: s}
	h1.Register(2, k1)
	s.At(s.Now(), func() { h2.Send(&Packet{Flow: 2, Src: h2.ID(), Dst: h1.ID(), Payload: 100}) })
	s.Run()
	if len(k1.pkts) != 1 {
		t.Fatal("reverse delivery failed")
	}
}

func TestTreeRouting(t *testing.T) {
	// Classic 2-level tree: core with 3 leaf switches, 3 hosts each
	// (the paper's Fig 4 testbed shape). Every host pair must be reachable.
	s := sim.New(1)
	net := NewNetwork(s)
	core := net.NewSwitch("core")
	cfg := LinkConfig{Rate: Gbps, Delay: sim.Microsecond}
	var hosts []*Host
	for l := 0; l < 3; l++ {
		leaf := net.NewSwitch("leaf")
		net.Connect(leaf, core, cfg)
		for j := 0; j < 3; j++ {
			h := net.NewHost("h")
			net.Connect(h, leaf, cfg)
			hosts = append(hosts, h)
		}
	}
	net.ComputeRoutes()
	delivered := 0
	for i, src := range hosts {
		for j, dst := range hosts {
			if i == j {
				continue
			}
			k := &sink{s: s}
			fid := FlowID(i*100 + j)
			dst.Register(fid, k)
			src.Send(&Packet{Flow: fid, Src: src.ID(), Dst: dst.ID(), Payload: 10})
			s.Run()
			if len(k.pkts) == 1 {
				delivered++
			}
		}
	}
	if delivered != 9*8 {
		t.Fatalf("delivered %d of %d host pairs", delivered, 9*8)
	}
}

func TestUnroutable(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	sw := net.NewSwitch("sw")
	net.Connect(h1, sw, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	net.ComputeRoutes()
	h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: 99, Payload: 10})
	s.Run()
	if sw.Unroutable != 1 {
		t.Fatalf("unroutable = %d, want 1", sw.Unroutable)
	}
}

// Property: conservation — for random bursts, delivered + dropped == sent.
func TestQuickConservation(t *testing.T) {
	f := func(sizes []uint16, buf uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 200 {
			sizes = sizes[:200]
		}
		s := sim.New(3)
		net := NewNetwork(s)
		h1 := net.NewHost("h1")
		h2 := net.NewHost("h2")
		sw := net.NewSwitch("sw")
		net.Connect(h1, sw, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
		net.Connect(sw, h2, LinkConfig{
			Rate: 100 * Mbps, Delay: sim.Microsecond,
			BufA: int(buf)%20000 + MinFrameBytes + HeaderBytes,
		})
		net.ComputeRoutes()
		k := &sink{s: s}
		h2.Register(1, k)
		for _, raw := range sizes {
			pay := int(raw) % MSS
			h1.Send(&Packet{Flow: 1, Src: h1.ID(), Dst: h2.ID(), Payload: pay})
		}
		s.Run()
		out := sw.PortTo(h2.ID())
		return int64(len(k.pkts))+out.Drops == int64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowUnsetSentinel(t *testing.T) {
	if WindowUnset < int64(100*Gbps/8) {
		t.Fatal("WindowUnset must exceed any plausible BDP in bytes")
	}
}

func TestTxTimeOverflow(t *testing.T) {
	// Regression: the old int64 form (n*8*Second/r) overflowed for
	// n ≳ 1.07 GB and returned a negative delay, which a pacing loop would
	// treat as "transmit instantly".
	cases := []struct {
		r    Rate
		n    int
		want sim.Time
	}{
		// In-range results must stay bit-identical to the int64 math.
		{Gbps, 125, sim.Microsecond},
		{10 * Gbps, 1538, 1230},
		// 2 GiB at 10 Gbps: exact answer 2^31·8·1e9/1e10 = 1717986918.4 ns,
		// truncated. The old arithmetic wrapped negative here.
		{10 * Gbps, 2 << 30, 1717986918},
		// 100 GiB at 1 Gbps ≈ 859 s: far past the old overflow point.
		{Gbps, 100 << 30, sim.Time(uint64(100<<30) * 8)},
		{Gbps, 0, 0},
		{0, 1500, 0},
		{Gbps, -5, 0},
	}
	for _, c := range cases {
		if got := c.r.TxTime(c.n); got != c.want {
			t.Errorf("TxTime(%v, %d) = %d, want %d", c.r, c.n, got, c.want)
		}
		if got := c.r.TxTime(c.n); got < 0 {
			t.Errorf("TxTime(%v, %d) went negative: %d", c.r, c.n, got)
		}
	}
	// A quotient beyond int64 saturates rather than wrapping.
	if got := Rate(1).TxTime(1 << 62); got != sim.Time(1<<63-1) {
		t.Errorf("saturation case = %d, want MaxInt64", got)
	}
}

func TestFlagNamesComplete(t *testing.T) {
	// flagNames is the display table behind Flag.String; every defined
	// constant must appear exactly once and in bit order, or String output
	// silently drops flags.
	all := []struct {
		bit  Flag
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"}, {FlagRM, "RM"},
		{FlagRMA, "RMA"}, {FlagECT, "ECT"}, {FlagCE, "CE"}, {FlagECE, "ECE"},
		{FlagCRD, "CRD"}, {FlagXOF, "XOF"}, {FlagXON, "XON"},
	}
	if len(flagNames) != len(all) {
		t.Fatalf("flagNames has %d entries, want %d", len(flagNames), len(all))
	}
	var prev Flag
	for i, want := range all {
		got := flagNames[i]
		if got.bit != want.bit || got.name != want.name {
			t.Errorf("flagNames[%d] = {%d,%q}, want {%d,%q}",
				i, got.bit, got.name, want.bit, want.name)
		}
		if got.bit <= prev {
			t.Errorf("flagNames[%d] out of bit order", i)
		}
		prev = got.bit
		if s := got.bit.String(); s != want.name {
			t.Errorf("(%q).String() = %q", want.name, s)
		}
	}
	// Every single-bit value up to the highest defined flag must render as
	// something other than "0" (i.e. no constant is missing from the table).
	for b := Flag(1); b <= FlagXON; b <<= 1 {
		if b.String() == "0" {
			t.Errorf("flag bit %#x missing from flagNames", uint16(b))
		}
	}
}

func TestPacketPoolRoundTrip(t *testing.T) {
	// With PoolPackets on, a delivered packet's memory is reused by the next
	// NewPacket, and release zeroes it so no stale header fields leak.
	s := sim.New(1)
	net := NewNetwork(s)
	net.PoolPackets = true
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	net.Connect(h1, h2, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	net.ComputeRoutes()
	got := 0
	h2.Register(7, deliverFunc(func(p *Packet) { got += p.Payload }))

	p1 := net.NewPacket()
	p1.Flow, p1.Src, p1.Dst, p1.Payload = 7, h1.ID(), h2.ID(), 1000
	p1.Seq, p1.Window = 555, 999
	h1.Send(p1)
	s.Run()
	if got != 1000 {
		t.Fatalf("delivered %d bytes, want 1000", got)
	}

	p2 := net.NewPacket()
	if p2 != p1 {
		t.Fatal("pool did not reuse the released packet")
	}
	if *p2 != (Packet{}) {
		t.Fatalf("recycled packet not zeroed: %+v", *p2)
	}
}

func TestPoolDisabledKeepsPackets(t *testing.T) {
	// Default mode: delivered packets stay valid (tests and experiments
	// retain them), so NewPacket must not hand the same memory back.
	s := sim.New(1)
	net := NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	net.Connect(h1, h2, LinkConfig{Rate: Gbps, Delay: sim.Microsecond})
	net.ComputeRoutes()
	var kept *Packet
	h2.Register(7, deliverFunc(func(p *Packet) { kept = p }))

	p1 := net.NewPacket()
	p1.Flow, p1.Src, p1.Dst, p1.Payload = 7, h1.ID(), h2.ID(), 1200
	h1.Send(p1)
	s.Run()
	if kept != p1 || kept.Payload != 1200 {
		t.Fatalf("delivered packet mutated without pooling: %+v", kept)
	}
	if p2 := net.NewPacket(); p2 == p1 {
		t.Fatal("NewPacket reused live memory with pooling disabled")
	}
}

type deliverFunc func(*Packet)

func (f deliverFunc) Deliver(p *Packet) { f(p) }
