package model

import (
	"math"
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

func TestPayloadEfficiency(t *testing.T) {
	got := PayloadEfficiency(1460)
	want := 1460.0 / 1538.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("efficiency = %v, want %v", got, want)
	}
}

func TestBDPAndTokens(t *testing.T) {
	if got := BDP(netsim.Gbps, 100*sim.Microsecond); got != 12500 {
		t.Fatalf("BDP = %v, want 12500", got)
	}
	if got := Tokens(netsim.Gbps, 100*sim.Microsecond, 0.97); got != 12125 {
		t.Fatalf("Tokens = %v", got)
	}
}

func TestEffectiveFlows(t *testing.T) {
	// The paper's Fig 1 example: slot = rtt1 = 2*rtt2 -> E = 1 + 2 = 3.
	e := EffectiveFlows(100*sim.Microsecond,
		[]sim.Time{100 * sim.Microsecond, 50 * sim.Microsecond})
	if math.Abs(e-3) > 1e-9 {
		t.Fatalf("E = %v, want 3 (paper Fig 1)", e)
	}
	if EffectiveFlows(100, []sim.Time{0}) != 0 {
		t.Fatal("zero-RTT flows must be ignored")
	}
}

func TestFairWindow(t *testing.T) {
	// Fig 1: tokens = 6 packets, E = 3 -> W = 2 packets.
	if got := FairWindow(6, 3); got != 2 {
		t.Fatalf("W = %v, want 2 (paper Fig 1)", got)
	}
	if got := FairWindow(100, 0); got != 100 {
		t.Fatal("E=0 should return the full token pool")
	}
}

func TestWindowLimitedUtilization(t *testing.T) {
	// No jitter: u = sqrt(rho0).
	u := WindowLimitedUtilization(0.97, 50*sim.Microsecond, 50*sim.Microsecond)
	if math.Abs(u-math.Sqrt(0.97)) > 1e-12 {
		t.Fatalf("u = %v", u)
	}
	// rtt_m below rtt_b can't exceed 1.
	if WindowLimitedUtilization(0.97, 100*sim.Microsecond, 50*sim.Microsecond) != 1 {
		t.Fatal("utilization must cap at 1")
	}
	if WindowLimitedUtilization(0.97, 50*sim.Microsecond, 0) != 0 {
		t.Fatal("zero rtt_m must return 0")
	}
}

func TestGrantInterval(t *testing.T) {
	// 1538 wire bytes at 0.97 Gbps: ~12.69us.
	got := GrantInterval(netsim.Gbps, 0.97, 1460)
	want := 1538.0 / (0.97 * 125e6) * 1e9
	if math.Abs(float64(got)-want) > 2 {
		t.Fatalf("grant interval = %v ns, want ~%v", got, want)
	}
}

func TestQueueFromTokens(t *testing.T) {
	if QueueFromTokens(10000, netsim.Gbps, 100*sim.Microsecond) != 0 {
		t.Fatal("tokens below BDP must imply zero queue")
	}
	if got := QueueFromTokens(20000, netsim.Gbps, 100*sim.Microsecond); got != 7500 {
		t.Fatalf("queue = %v, want 7500", got)
	}
}

func TestIncastRoundTimePrediction(t *testing.T) {
	// 60 senders x 256KB at 1G, rho0=0.97: ~136ms.
	rt := IncastRoundTime(60, 256<<10, netsim.Gbps, 0.97, 1460)
	if rt < 130*sim.Millisecond || rt > 145*sim.Millisecond {
		t.Fatalf("predicted round time %v, want ~136ms", rt)
	}
}
