// Package model provides closed-form predictions for TFC's steady state —
// the fixed points derived in DESIGN.md §3b — so that simulations can be
// cross-validated against analysis (and vice versa). All formulas are in
// SI units: bytes, seconds, bits/second.
package model

import (
	"math"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// PayloadEfficiency is the fraction of wire bytes that is application
// payload for mss-sized segments (headers + preamble/IFG excluded).
func PayloadEfficiency(mss int) float64 {
	return float64(mss) / float64(mss+netsim.HeaderBytes+netsim.WireOverheadBytes)
}

// BDP returns the bandwidth-delay product in bytes.
func BDP(rate netsim.Rate, rtt sim.Time) float64 {
	return rate.BytesPerSecond() * rtt.Seconds()
}

// Tokens returns the steady-state token value T = rho0 * c * rtt_b in
// bytes (paper eq. 3 with the eq. 7 adjustment at rho = 1).
func Tokens(rate netsim.Rate, rttb sim.Time, rho0 float64) float64 {
	return rho0 * BDP(rate, rttb)
}

// EffectiveFlows returns E = sum over flows of slot/rtt_f (paper eq. 1).
func EffectiveFlows(slot sim.Time, rtts []sim.Time) float64 {
	var e float64
	for _, r := range rtts {
		if r > 0 {
			e += slot.Seconds() / r.Seconds()
		}
	}
	return e
}

// FairWindow returns W = T/E in bytes (paper eq. 2).
func FairWindow(tokens, effectiveFlows float64) float64 {
	if effectiveFlows <= 0 {
		return tokens
	}
	return tokens / effectiveFlows
}

// WindowLimitedUtilization is the fixed point of the token-adjustment
// loop when all flows are window-limited (no standing queue): combining
// T = rho0*c*rtt_b/rho with rho = T/(c*rtt_m) gives
//
//	u = sqrt(rho0 * rtt_b / rtt_m)
//
// where rtt_m is the average (jitter-inflated) round and rtt_b the
// minimum. This is why TFC's goodput tracks rho0 only as closely as the
// hosts' RTT variance allows (DESIGN.md §3b, paper §4.5).
func WindowLimitedUtilization(rho0 float64, rttb, rttmAvg sim.Time) float64 {
	if rttmAvg <= 0 {
		return 0
	}
	u := math.Sqrt(rho0 * rttb.Seconds() / rttmAvg.Seconds())
	if u > 1 {
		u = 1
	}
	return u
}

// PacedGoodput is the aggregate application goodput when the delay
// arbiter paces admissions (fan-in regime, fair windows < 1 MSS): the
// arbiter admits rho0 of the line rate in wire bytes, each grant carrying
// one MSS of payload.
func PacedGoodput(rate netsim.Rate, rho0 float64, mss int) float64 {
	return rho0 * float64(rate) * PayloadEfficiency(mss)
}

// IncastRoundTime predicts one barrier round of n senders transferring
// block bytes each through a single bottleneck in the paced regime.
func IncastRoundTime(n int, block int64, rate netsim.Rate, rho0 float64, mss int) sim.Time {
	bits := float64(n) * float64(block) * 8
	return sim.Time(bits / PacedGoodput(rate, rho0, mss) * float64(sim.Second))
}

// GrantInterval is the delay arbiter's steady spacing between sub-MSS
// window grants: one MSS of wire bytes at rho0 of line rate.
func GrantInterval(rate netsim.Rate, rho0 float64, mss int) sim.Time {
	wire := float64(mss + netsim.HeaderBytes + netsim.WireOverheadBytes)
	return sim.Time(wire / (rho0 * rate.BytesPerSecond()) * float64(sim.Second))
}

// QueueFromTokens returns the standing queue implied by a token value T
// against the true (queue-free) BDP: max(0, T - BDP). Zero in steady
// state once rtt_b has converged — the paper's zero-queueing claim.
func QueueFromTokens(tokens float64, rate netsim.Rate, rttTrue sim.Time) float64 {
	q := tokens - BDP(rate, rttTrue)
	if q < 0 {
		return 0
	}
	return q
}

// ConvergenceRounds is the number of slots for a fresh flow to obtain its
// proper window: one slot to be counted (SYN), one to fetch the window
// (probe RMA) — the paper's "two RTTs" claim (§1).
const ConvergenceRounds = 2
