package exp

import (
	"math"
	"os"
	"strings"
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

func TestJainIndex(t *testing.T) {
	if got := jain([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("jain(equal) = %v, want 1", got)
	}
	// One flow hogging everything among n: index = 1/n.
	if got := jain([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("jain(hog) = %v, want 0.25", got)
	}
	if got := jain([]float64{0, 0}); got != 0 {
		t.Fatalf("jain(zeros) = %v, want 0", got)
	}
}

func TestTestbedShape(t *testing.T) {
	e := Testbed(TopoConfig{Proto: TCP})
	if len(e.Hosts) != 9 {
		t.Fatalf("testbed hosts = %d, want 9 (H1-H9)", len(e.Hosts))
	}
	if len(e.Switches) != 4 {
		t.Fatalf("testbed switches = %d, want 4 (NF0-NF3)", len(e.Switches))
	}
	// Core is switches[0]; leaves have 4 ports (core + 3 hosts).
	core := e.Switches[0]
	if len(core.Ports()) != 3 {
		t.Fatalf("core has %d ports, want 3", len(core.Ports()))
	}
	for _, leaf := range e.Switches[1:] {
		if len(leaf.Ports()) != 4 {
			t.Fatalf("leaf has %d ports, want 4", len(leaf.Ports()))
		}
	}
	// Intra-rack route must not traverse the core: NF1's port to H2 is
	// direct.
	h2 := e.Hosts[1]
	p := e.Switches[1].PortTo(h2.ID())
	if p == nil || p.Peer.ID() != h2.ID() {
		t.Fatal("intra-rack route goes through the core")
	}
}

func TestTestbedProtocolAttachment(t *testing.T) {
	eTFC := Testbed(TopoConfig{Proto: TFC})
	if len(eTFC.TFCState) != 4 {
		t.Fatalf("TFC attached to %d switches, want 4", len(eTFC.TFCState))
	}
	eD := Testbed(TopoConfig{Proto: DCTCP})
	for _, sw := range eD.Switches {
		for _, p := range sw.Ports() {
			if p.Hook == nil {
				t.Fatal("DCTCP marking hook missing on a switch port")
			}
		}
	}
	eT := Testbed(TopoConfig{Proto: TCP})
	for _, sw := range eT.Switches {
		if sw.Interceptor != nil {
			t.Fatal("plain TCP testbed must not have TFC interceptors")
		}
	}
}

func TestLeafSpineShape(t *testing.T) {
	e := LeafSpine(TopoConfig{Proto: TCP}, 3, 4, 512<<10)
	if len(e.Hosts) != 12 {
		t.Fatalf("hosts = %d, want 12", len(e.Hosts))
	}
	if len(e.Switches) != 4 { // spine + 3 leaves
		t.Fatalf("switches = %d, want 4", len(e.Switches))
	}
	// Uplinks are 10G, downlinks 1G.
	spine := e.Switches[0]
	for _, p := range spine.Ports() {
		if p.Rate != 10*netsim.Gbps {
			t.Fatalf("spine port at %v, want 10G", p.Rate)
		}
	}
	leaf := e.Switches[1]
	down := leaf.PortTo(e.Hosts[0].ID())
	if down.Rate != netsim.Gbps {
		t.Fatalf("downlink at %v, want 1G", down.Rate)
	}
}

func TestMultiBottleneckShape(t *testing.T) {
	e := MultiBottleneck(TopoConfig{Proto: TFC})
	if e.Uplink == nil || e.Downlink == nil {
		t.Fatal("bottleneck ports missing")
	}
	if e.Uplink.Peer.ID() != e.S2.ID() {
		t.Fatal("uplink must connect S1->S2")
	}
	if e.Downlink.Peer.ID() != e.H3.ID() {
		t.Fatal("downlink must connect S2->host3")
	}
	// host1's path to host3 must traverse both switches.
	p := e.S1.PortTo(e.H3.ID())
	if p == nil || p.Peer.ID() != e.S2.ID() {
		t.Fatal("S1 route to h3 must go via S2")
	}
}

func TestStarShape(t *testing.T) {
	_, senders, recv, bott := Star(TopoConfig{Proto: TFC}, 7, netsim.Gbps, 64<<10)
	if len(senders) != 7 {
		t.Fatalf("senders = %d", len(senders))
	}
	if bott.Peer.ID() != recv.ID() {
		t.Fatal("bottleneck port must face the receiver")
	}
	if bott.BufBytes != 64<<10 {
		t.Fatalf("bottleneck buffer = %d", bott.BufBytes)
	}
}

func TestFormatters(t *testing.T) {
	pts := []IncastPoint{{Proto: TFC, Senders: 10, BlockBytes: 64 << 10, Goodput: 9e8}}
	out := FormatIncast("title", pts)
	if !strings.Contains(out, "title") || !strings.Contains(out, "64KB") ||
		!strings.Contains(out, "900.0") {
		t.Fatalf("FormatIncast output:\n%s", out)
	}
	wc := &WorkConservingResult{UplinkGoodput: 9.4e8, DownlinkGoodput: 9.1e8}
	out = FormatWorkConserving(wc, nil)
	if !strings.Contains(out, "940.0") || strings.Contains(out, "A1") {
		t.Fatalf("FormatWorkConserving without ablation:\n%s", out)
	}
	out = FormatWorkConserving(wc, wc)
	if !strings.Contains(out, "A1") {
		t.Fatal("ablation row missing")
	}
	rp := []Rho0Point{{Rho0: 0.97, Goodput: 9e8, AvgQ: 512}}
	out = FormatRho0Sweep(rp)
	if !strings.Contains(out, "0.97") || !strings.Contains(out, "0.50") {
		t.Fatalf("FormatRho0Sweep output:\n%s", out)
	}
}

func TestFaucetLifecycle(t *testing.T) {
	e := Testbed(TopoConfig{Proto: TFC})
	f := newFaucet(e.Dialer, e.Hosts[0], e.Hosts[2])
	e.Sim.At(0, f.Start)
	e.Sim.RunUntil(20 * sim.Millisecond)
	if f.conn.Received() == 0 {
		t.Fatal("faucet not flowing")
	}
	f.Pause()
	e.Sim.RunUntil(40 * sim.Millisecond)
	at40 := f.conn.Received()
	e.Sim.RunUntil(60 * sim.Millisecond)
	if f.conn.Received() != at40 {
		t.Fatal("paused faucet kept sending")
	}
	f.Resume()
	e.Sim.RunUntil(80 * sim.Millisecond)
	if f.conn.Received() == at40 {
		t.Fatal("resumed faucet not flowing")
	}
	// Resume while active is a no-op.
	f.Resume()
}

func TestSaveCSVOutputs(t *testing.T) {
	dir := t.TempDir()
	pts := []IncastPoint{{Proto: TFC, Senders: 10, BlockBytes: 64 << 10, Goodput: 9e8}}
	if err := SaveIncastCSV(dir, "incast.csv", pts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/incast.csv")
	if err != nil || !strings.Contains(string(data), "tfc,10,64KB") {
		t.Fatalf("incast csv: %q %v", data, err)
	}
	r := &BenchmarkResult{Proto: TFC}
	r.QueryFCT.Add(100)
	r.QueryFCT.Add(200)
	if err := SaveBenchmarkCSV(dir, []*BenchmarkResult{r}); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(dir + "/query_fct_cdf_tfc.csv")
	if err != nil || !strings.Contains(string(data), "fct_us,cdf") {
		t.Fatalf("benchmark csv: %q %v", data, err)
	}
}
