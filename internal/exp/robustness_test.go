package exp

import (
	"context"
	"testing"

	"tfcsim/internal/sim"
)

// TestRobustnessTFCRecoversFromBlackout pins the acceptance property of
// the fault-injection work: after a multi-RTO blackout of the bottleneck,
// TFC returns to >= 90% bottleneck utilization within the tail — the
// delimiter-miss backoff stays capped and sender RTO backoff does not run
// away.
func TestRobustnessTFCRecoversFromBlackout(t *testing.T) {
	cfg := RobustnessConfig{
		Flows:    8,
		Warmup:   50 * sim.Millisecond,
		Blackout: 500 * sim.Millisecond,
		Tail:     500 * sim.Millisecond,
	}
	cfg.Proto = TFC
	cfg.Seed = 1
	pt := Robustness(cfg)
	if pt.Recovery < 0 {
		t.Fatalf("TFC never recovered to 90%% utilization within %v tail", cfg.Tail)
	}
	if pt.Recovery > 450*sim.Millisecond {
		t.Fatalf("TFC recovery %v leaves no sustained post-recovery stretch", pt.Recovery)
	}
	// No RTO collapse: at most a handful of backoff steps per flow even
	// through a 500ms outage (the capped backoff keeps retry cadence sane).
	if pt.Timeouts > int64(cfg.Flows*8) {
		t.Fatalf("%d timeouts across %d flows — RTO backoff ran away", pt.Timeouts, cfg.Flows)
	}
}

// TestRobustnessShortBlackoutAllProtos checks every protocol comes back
// from a sub-RTO blackout and that the trial is deterministic in its seed.
func TestRobustnessShortBlackoutAllProtos(t *testing.T) {
	for _, proto := range AllProtos {
		cfg := RobustnessConfig{
			Flows:    4,
			Warmup:   20 * sim.Millisecond,
			Blackout: 5 * sim.Millisecond,
			Tail:     400 * sim.Millisecond,
		}
		cfg.Proto = proto
		cfg.Seed = 3
		pt := Robustness(cfg)
		if pt.Recovery < 0 {
			t.Errorf("%s: no recovery from a 5ms blackout", proto)
		}
		pt2 := Robustness(cfg)
		pt2.Events = pt.Events // Executed() counts are compared via the rest
		if pt != pt2 {
			t.Errorf("%s: same seed, different result:\n%+v\n%+v", proto, pt, pt2)
		}
	}
}

// TestRobustnessSweepDeterministicOrder checks the sweep returns points
// in scenario-major order with per-trial derived seeds, independent of
// pool parallelism (the Map contract the byte-identical -j guarantee
// rides on).
func TestRobustnessSweepDeterministicOrder(t *testing.T) {
	cfg := RobustnessConfig{
		Flows:  2,
		Warmup: 10 * sim.Millisecond,
		Tail:   50 * sim.Millisecond,
	}
	cfg.Seed = 5
	scenarios := []FaultScenario{
		{Name: "b", Blackout: 2 * sim.Millisecond},
		{Name: "l", Loss: 0.05, Burst: 3},
	}
	protos := []Proto{TFC, TCP}
	rs, err := RobustnessSweep(context.Background(), nil, cfg, scenarios, protos)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		sc string
		pr Proto
	}{{"b", TFC}, {"b", TCP}, {"l", TFC}, {"l", TCP}}
	if len(rs) != len(want) {
		t.Fatalf("got %d points, want %d", len(rs), len(want))
	}
	for i, w := range want {
		if rs[i].Scenario != w.sc || rs[i].Proto != w.pr {
			t.Fatalf("point %d = (%s, %s), want (%s, %s)",
				i, rs[i].Scenario, rs[i].Proto, w.sc, w.pr)
		}
	}
	if rs[2].Drops == 0 {
		t.Error("5% bursty loss produced no drops")
	}
}
