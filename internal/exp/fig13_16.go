package exp

import (
	"context"
	"fmt"
	"io"
	"strings"

	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
	"tfcsim/internal/stats"
	"tfcsim/internal/trace"
	"tfcsim/internal/workload"
)

// BenchmarkConfig parameterizes the realistic-workload experiments.
// Fig 13: the 9-host testbed, query fan-in 8, 2 KB responses, plus
// background flows from the web-search size distribution. Fig 16: the
// 18-rack x 20-server leaf-spine, fan-in = all 359 other servers.
type BenchmarkConfig struct {
	TopoConfig
	// Topology selector: if Racks > 0 a leaf-spine is built, otherwise
	// the 9-host testbed.
	Racks, PerRack int
	BufBytes       int
	// Arrival duration (new flows stop after this; the run continues
	// until flows drain or MaxDuration).
	Duration    sim.Time
	MaxDuration sim.Time
	QueryRate   float64 // queries/s
	QueryFanIn  int     // 0 = all other hosts
	BgFlowRate  float64 // background flows/s
}

func (c *BenchmarkConfig) fill() {
	if c.Duration == 0 {
		c.Duration = 500 * sim.Millisecond
	}
	if c.MaxDuration == 0 {
		c.MaxDuration = c.Duration + 30*sim.Second
	}
	if c.QueryRate == 0 {
		c.QueryRate = 200
	}
	if c.BgFlowRate == 0 {
		c.BgFlowRate = 400
	}
	if c.BufBytes == 0 {
		c.BufBytes = TestbedBuf
	}
}

// BenchmarkResult aggregates FCTs the way Figs 13/16 report them.
type BenchmarkResult struct {
	Proto Proto
	// QueryFCT percentiles in microseconds.
	QueryFCT stats.Sample
	// BgFCT99 is the 99.9th-percentile FCT per size bucket (microseconds).
	BgFCT [6]stats.Sample
	// Unfinished counts flows that never completed within MaxDuration.
	Unfinished int
	Flows      int
	Events     uint64 // simulator events executed by this trial
}

// SimEvents reports the trial's event count to the runner pool.
func (r *BenchmarkResult) SimEvents() uint64 { return r.Events }

// Benchmark runs the workload for one protocol.
func Benchmark(cfg BenchmarkConfig) *BenchmarkResult {
	cfg.fill()
	// The benchmark workload's flow bookkeeping (completion counts, FCT
	// records) is updated from OnComplete callbacks that fire on the
	// sender's shard; with hosts spread over shards those writes would
	// race. Force the sequential engine (see IncastConfig for the same
	// constraint).
	cfg.Shards = 0
	var e *Env
	if cfg.Racks > 0 {
		e = LeafSpine(cfg.TopoConfig, cfg.Racks, cfg.PerRack, cfg.BufBytes)
	} else {
		e = Testbed(cfg.TopoConfig)
	}
	b := workload.NewBenchmark(workload.BenchmarkConfig{
		Dialer: e.Dialer, Hosts: e.Hosts,
		Duration:   cfg.Duration,
		QueryRate:  cfg.QueryRate,
		QueryFanIn: cfg.QueryFanIn,
		BgFlowRate: cfg.BgFlowRate,
	})
	b.Start()
	for e.Sim.Now() < cfg.MaxDuration && e.Sim.Live() > 0 {
		e.Sim.RunUntil(e.Sim.Now() + 50*sim.Millisecond)
		if e.Sim.Now() >= cfg.Duration && b.DoneFraction() >= 1 {
			break
		}
	}
	res := &BenchmarkResult{Proto: cfg.Proto, Flows: len(b.Flows), Events: e.Sim.Executed()}
	for _, f := range b.Flows {
		if !f.Done {
			res.Unfinished++
			continue
		}
		if f.Query {
			res.QueryFCT.AddTime(f.FCT)
		} else {
			res.BgFCT[workload.BucketIndex(f.Bytes)].AddTime(f.FCT)
		}
	}
	return res
}

// SaveBenchmarkCSV writes per-protocol query-FCT CDFs into dir.
func SaveBenchmarkCSV(dir string, rs []*BenchmarkResult) error {
	for _, r := range rs {
		r := r
		name := "query_fct_cdf_" + string(r.Proto) + ".csv"
		if err := trace.SaveTo(dir, name, func(w io.Writer) error {
			return trace.WriteCDF(w, "fct_us", &r.QueryFCT)
		}); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkAll runs the workload for the given protocols as independent
// pool trials; results come back in protos order. A nil pool runs
// serially with base seed cfg.Seed.
func BenchmarkAll(ctx context.Context, p *runner.Pool, cfg BenchmarkConfig, protos []Proto) ([]*BenchmarkResult, error) {
	if p == nil {
		p = runner.Serial(cfg.Seed)
	}
	rs, _, err := runner.Map(ctx, p, len(protos), func(i int, seed int64) (*BenchmarkResult, error) {
		c := cfg
		c.Proto = protos[i]
		c.Seed = seed
		c.mintTelemetry(string(c.Proto))
		return Benchmark(c), nil
	})
	return rs, err
}

// FormatBenchmark renders the Fig 13/16 pair of panels.
func FormatBenchmark(title string, rs []*BenchmarkResult) string {
	var b strings.Builder
	qt := stats.Table{
		Title: title + " — (a) query flow FCT (us)",
		Header: []string{"proto", "mean", "95th", "99th", "99.9th", "99.99th",
			"n", "unfinished"},
	}
	for _, r := range rs {
		qt.AddRow(string(r.Proto),
			stats.F(r.QueryFCT.Mean(), 0), stats.F(r.QueryFCT.Percentile(95), 0),
			stats.F(r.QueryFCT.Percentile(99), 0), stats.F(r.QueryFCT.Percentile(99.9), 0),
			stats.F(r.QueryFCT.Percentile(99.99), 0),
			fmt.Sprint(r.QueryFCT.N()), fmt.Sprint(r.Unfinished))
	}
	b.WriteString(qt.String())
	bt := stats.Table{
		Title:  title + " — (b) background flow 99.9th FCT by size (us)",
		Header: append([]string{"proto"}, bucketLabels()...),
	}
	for _, r := range rs {
		row := []string{string(r.Proto)}
		for i := range r.BgFCT {
			if r.BgFCT[i].N() == 0 {
				row = append(row, "-")
			} else {
				row = append(row, stats.F(r.BgFCT[i].Percentile(99.9), 0))
			}
		}
		bt.AddRow(row...)
	}
	b.WriteString(bt.String())
	b.WriteString("paper shape: TFC query FCT mean/tail far below DCTCP (~30x) and TCP (~8x more than DCTCP); TFC small background flows faster, largest flows slightly slower\n")
	return b.String()
}

func bucketLabels() []string {
	var out []string
	for _, bkt := range workload.SizeBuckets {
		out = append(out, bkt.Label)
	}
	return out
}
