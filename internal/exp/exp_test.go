package exp

import (
	"context"
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
)

// testPool fans a test's trials across cores on the pre-pool seed
// schedule (every trial seed 1), so the physical shapes asserted below
// see the same inputs as the original serial harness.
func testPool() *runner.Pool { return (&runner.Pool{BaseSeed: 1}).Paired() }

func TestFig06RTTAccuracy(t *testing.T) {
	r := RTTAccuracy(RTTAccuracyConfig{
		Duration: 500 * sim.Millisecond,
		Window:   50 * sim.Millisecond,
	})
	if r.MeasuredRTTB.N() < 3 || r.Reference.N() < 10 {
		t.Fatalf("too few samples: rttb=%d ref=%d", r.MeasuredRTTB.N(), r.Reference.N())
	}
	med, ref := r.MeasuredRTTB.Percentile(50), r.Reference.Percentile(50)
	// Shape (paper Fig 6): measured rtt_b sits at or slightly below the
	// reference RTT, and both are far below the 160us init.
	if med > ref*1.1 {
		t.Errorf("rtt_b median %.1fus above reference %.1fus", med, ref)
	}
	if med > 150 || med < 20 {
		t.Errorf("rtt_b median %.1fus implausible for testbed topology", med)
	}
	t.Logf("\n%s", r)
}

func TestFig07NeAccuracy(t *testing.T) {
	r := NeAccuracy(NeAccuracyConfig{Interval: 40 * sim.Millisecond})
	if len(r.Points) < 10 {
		t.Fatalf("only %d points", len(r.Points))
	}
	// Shape: measured Ne tracks expected within ~2 flows on average
	// (paper Fig 7: "quite close ... variance small").
	if r.MeanAbsErr > 2.0 {
		t.Errorf("mean |measured-expected| = %.2f flows, want <= 2", r.MeanAbsErr)
	}
	// Inactive flows must be excluded: the last points (all n1 off) should
	// be near n2=5 again.
	last := r.Points[len(r.Points)-1]
	if last.Measured > 7 {
		t.Errorf("Ne after all n1 deactivated = %.1f, want ~5", last.Measured)
	}
	t.Logf("\n%s", r)
}

func TestFig08to10QueueFairness(t *testing.T) {
	rs, err := QueueFairnessAll(context.Background(), testPool(), QueueFairnessConfig{
		StartInterval: 40 * sim.Millisecond,
		Tail:          80 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[Proto]*QueueFairnessResult{}
	for _, r := range rs {
		byProto[r.Proto] = r
	}
	tfc, dctcp, tcp := byProto[TFC], byProto[DCTCP], byProto[TCP]
	// Fig 8 shape: TFC queue tiny; DCTCP bounded around K; TCP fills the
	// buffer.
	if tfc.AvgQueue > 15<<10 {
		t.Errorf("TFC avg queue %.0fB, want near zero (<15KB)", tfc.AvgQueue)
	}
	if tcp.MaxQueue < 200<<10 {
		t.Errorf("TCP max queue %dB, expected to fill ~256KB buffer", tcp.MaxQueue)
	}
	if dctcp.MaxQueue >= tcp.MaxQueue {
		t.Errorf("DCTCP max queue %d not below TCP %d", dctcp.MaxQueue, tcp.MaxQueue)
	}
	// Fig 9 shape: all protocols near line rate aggregate; TFC fair.
	for _, r := range rs {
		if r.AggGoodput < 0.75e9 {
			t.Errorf("%s aggregate goodput %.1f Mbps too low", r.Proto, r.AggGoodput/1e6)
		}
	}
	if tfc.JainIndex < 0.95 {
		t.Errorf("TFC Jain index %.3f, want ~1", tfc.JainIndex)
	}
	// Fig 10 shape: TFC converges fastest (about one round).
	if tfc.ConvergeIn < 0 {
		t.Error("TFC flow 3 never converged")
	}
	if tfc.ConvergeIn > 10*sim.Millisecond {
		t.Errorf("TFC convergence %v, want ~RTT-scale", tfc.ConvergeIn)
	}
	t.Logf("\n%s", FormatQueueFairness(rs))
}

func TestFig11WorkConserving(t *testing.T) {
	full := WorkConserving(WorkConservingConfig{Duration: 400 * sim.Millisecond})
	// Both bottlenecks near full utilization (paper: ~910-940 Mbps).
	if full.UplinkGoodput < 0.85e9 {
		t.Errorf("uplink goodput %.1f Mbps, want > 850", full.UplinkGoodput/1e6)
	}
	if full.DownlinkGoodput < 0.85e9 {
		t.Errorf("downlink goodput %.1f Mbps, want > 850", full.DownlinkGoodput/1e6)
	}
	// Near-zero queues (paper: ~2KB).
	if full.DownlinkAvgQ > 20<<10 {
		t.Errorf("downlink avg queue %.0fB, want small", full.DownlinkAvgQ)
	}
	ablated := WorkConserving(WorkConservingConfig{
		Duration: 400 * sim.Millisecond, DisableAdjust: true,
	})
	// A1 shape: without token adjustment the downlink cannot reclaim the
	// share its uplink-clamped flows leave stranded.
	if ablated.DownlinkGoodput > full.DownlinkGoodput*0.97 {
		t.Errorf("ablation downlink %.1f vs full %.1f Mbps: adjustment had no effect",
			ablated.DownlinkGoodput/1e6, full.DownlinkGoodput/1e6)
	}
	t.Logf("\n%s", FormatWorkConserving(full, ablated))
}

func TestFig12IncastTestbed(t *testing.T) {
	pts, err := IncastSweep(context.Background(), testPool(), IncastConfig{
		Rounds: 4, MaxDuration: 20 * sim.Second,
	}, []int{10, 60}, []Proto{TFC, TCP})
	if err != nil {
		t.Fatal(err)
	}
	get := func(p Proto, n int) IncastPoint {
		for _, pt := range pts {
			if pt.Proto == p && pt.Senders == n {
				return pt
			}
		}
		t.Fatalf("missing point %s/%d", p, n)
		return IncastPoint{}
	}
	// Fig 12a shape: TFC holds 800-900+ Mbps at high fan-in; TCP collapses.
	tfc60, tcp60 := get(TFC, 60), get(TCP, 60)
	if tfc60.Goodput < 0.7e9 {
		t.Errorf("TFC@60 goodput %.1f Mbps, want high", tfc60.Goodput/1e6)
	}
	if tcp60.Goodput > tfc60.Goodput/2 {
		t.Errorf("TCP@60 goodput %.1f Mbps did not collapse vs TFC %.1f",
			tcp60.Goodput/1e6, tfc60.Goodput/1e6)
	}
	// Fig 12b shape: TFC no buffer backlog; TCP max queue ~ buffer.
	if tfc60.Timeouts != 0 {
		t.Errorf("TFC@60 suffered %d timeouts", tfc60.Timeouts)
	}
	if tcp60.Timeouts == 0 {
		t.Error("TCP@60 should suffer timeouts")
	}
	if tfc60.MaxQ > 64<<10 {
		t.Errorf("TFC@60 max queue %dKB, want small", tfc60.MaxQ>>10)
	}
	t.Logf("\n%s", FormatIncast("Fig 12 — testbed incast", pts))
}

func TestFig14Rho0(t *testing.T) {
	pts := Rho0Sweep(Rho0SweepConfig{
		Rho0s:    []float64{0.90, 0.97, 1.00},
		Duration: 300 * sim.Millisecond,
	})
	if len(pts) != 3 {
		t.Fatal("wrong point count")
	}
	// Fig 14 shape: goodput increases with rho0; queue grows at 1.0.
	if pts[0].Goodput >= pts[2].Goodput {
		t.Errorf("goodput not increasing in rho0: %.1f vs %.1f Mbps",
			pts[0].Goodput/1e6, pts[2].Goodput/1e6)
	}
	if pts[0].Goodput < 0.8e9 || pts[0].Goodput > 0.93e9 {
		t.Errorf("rho0=0.90 goodput %.1f Mbps out of plausible range", pts[0].Goodput/1e6)
	}
	if pts[0].AvgQ >= pts[2].AvgQ {
		t.Errorf("queue not increasing in rho0: %.0f vs %.0f bytes", pts[0].AvgQ, pts[2].AvgQ)
	}
	for _, p := range pts {
		if p.Drops != 0 {
			t.Errorf("rho0=%.2f dropped %d packets", p.Rho0, p.Drops)
		}
	}
	t.Logf("\n%s", FormatRho0Sweep(pts))
}

func TestFig13BenchmarkTestbed(t *testing.T) {
	rs, err := BenchmarkAll(context.Background(), testPool(), BenchmarkConfig{
		Duration:    200 * sim.Millisecond,
		MaxDuration: 10 * sim.Second,
		QueryRate:   150,
		BgFlowRate:  250,
	}, []Proto{TFC, TCP})
	if err != nil {
		t.Fatal(err)
	}
	tfc, tcp := rs[0], rs[1]
	if tfc.QueryFCT.N() < 50 || tcp.QueryFCT.N() < 50 {
		t.Fatalf("too few query flows: %d / %d", tfc.QueryFCT.N(), tcp.QueryFCT.N())
	}
	// Fig 13a shape: TFC mean and tail query FCT well below TCP's
	// (TCP's 99.9th is RTO-bound, >= 200ms).
	if tfc.QueryFCT.Mean() >= tcp.QueryFCT.Mean() {
		t.Errorf("TFC mean query FCT %.0fus not below TCP %.0fus",
			tfc.QueryFCT.Mean(), tcp.QueryFCT.Mean())
	}
	if tfc.QueryFCT.Percentile(99.9) >= tcp.QueryFCT.Percentile(99.9) {
		t.Errorf("TFC tail %.0fus not below TCP tail %.0fus",
			tfc.QueryFCT.Percentile(99.9), tcp.QueryFCT.Percentile(99.9))
	}
	t.Logf("\n%s", FormatBenchmark("Fig 13 — testbed benchmark", rs))
}

func TestFig15IncastLargeScale(t *testing.T) {
	pts, err := IncastSweep(context.Background(), testPool(), IncastConfig{
		Rate: 10 * netsim.Gbps, BufBytes: 512 << 10,
		BlockBytes: 64 << 10, Rounds: 3, MaxDuration: 20 * sim.Second,
	}, []int{100}, []Proto{TFC, TCP})
	if err != nil {
		t.Fatal(err)
	}
	tfc, tcp := pts[0], pts[1]
	// Fig 15 shape: TFC ~90% utilization, ~zero timeouts at any fan-in;
	// TCP collapses with timeouts.
	if tfc.Goodput < 6e9 {
		t.Errorf("TFC 10G incast goodput %.1f Gbps, want > 6", tfc.Goodput/1e9)
	}
	if tfc.MaxTOBlock != 0 {
		t.Errorf("TFC max TO/block = %.2f, want 0", tfc.MaxTOBlock)
	}
	if tcp.Timeouts == 0 {
		t.Error("TCP@100x10G should time out")
	}
	t.Logf("\n%s", FormatIncast("Fig 15 — large-scale incast (64KB)", pts))
}

func TestFig16BenchmarkLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale benchmark skipped in -short")
	}
	// Scaled-down Fig 16: with 35-way fan-in instead of 359, the buffer is
	// scaled to keep fan-in bytes / buffer comparable to the paper's
	// 359*2KB vs 512KB, so TCP still experiences the incast contention
	// that the figure is about.
	rs, err := BenchmarkAll(context.Background(), testPool(), BenchmarkConfig{
		Racks: 6, PerRack: 6, BufBytes: 48 << 10,
		Duration:    100 * sim.Millisecond,
		MaxDuration: 5 * sim.Second,
		QueryRate:   100,
		QueryFanIn:  0, // all-to-one fan-in
		BgFlowRate:  200,
	}, []Proto{TFC, TCP})
	if err != nil {
		t.Fatal(err)
	}
	tfc, tcp := rs[0], rs[1]
	if tfc.QueryFCT.N() == 0 {
		t.Fatal("no query flows completed")
	}
	// With the deliberately tightened buffer a small sliver (~5%) of TFC
	// queries still hits an RTO, which parks both protocols' 95th on the
	// 200ms MinRTO floor and makes that comparison pure noise — the
	// decisive comparisons are the mean and the 90th, where TFC must be
	// RTO-free while TCP's tail is RTO-bound.
	if tfc.QueryFCT.Mean() >= tcp.QueryFCT.Mean()/2 {
		t.Errorf("TFC mean %.0fus not well below TCP %.0fus",
			tfc.QueryFCT.Mean(), tcp.QueryFCT.Mean())
	}
	if tfc90, tcp90 := tfc.QueryFCT.Percentile(90), tcp.QueryFCT.Percentile(90); tfc90 >= tcp90/2 {
		t.Errorf("TFC 90th %.0fus not well below TCP %.0fus", tfc90, tcp90)
	}
	t.Logf("\n%s", FormatBenchmark("Fig 16 — large-scale benchmark (scaled)", rs))
}

func TestAblationNoDelayIncast(t *testing.T) {
	cfg := IncastConfig{Rounds: 3, MaxDuration: 20 * sim.Second}
	cfg.Proto = TFC
	cfg.Senders = 80
	cfg.BufBytes = 64 << 10
	full := Incast(cfg)
	cfg.TFC.DisableDelay = true
	ablated := Incast(cfg)
	if full.Drops != 0 {
		t.Errorf("full TFC dropped %d", full.Drops)
	}
	if ablated.Drops == 0 {
		t.Error("A2 ablation (no delay function) should drop at 80-sender fan-in")
	}
}
