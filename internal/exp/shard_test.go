package exp

import (
	"bytes"
	"reflect"
	"testing"

	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
	"tfcsim/internal/telemetry"
)

// The sharded engine must be invisible in the results: a partitioned
// trial is byte-identical to the sequential one (DESIGN.md §10). These
// tests run the real experiments both ways and compare every reported
// quantity, including the raw time series behind the tables. Events is
// compared too — cross-shard deliveries are one event each, exactly like
// the port-resident deliveries they replace.

func TestQueueFairnessShardedIdentical(t *testing.T) {
	for _, proto := range []Proto{TFC, TCP} {
		cfg := QueueFairnessConfig{}
		cfg.Proto = proto
		cfg.Seed = 7
		seq := QueueFairness(cfg)

		for _, shards := range []int{2, 3, -1} {
			c := cfg
			c.Shards = shards
			got := QueueFairness(c)
			if !reflect.DeepEqual(seq, got) {
				t.Errorf("%s: shards=%d diverges from sequential:\nseq: %+v\ngot: %+v",
					proto, shards, seq, got)
			}
			a := FormatQueueFairness([]*QueueFairnessResult{seq})
			b := FormatQueueFairness([]*QueueFairnessResult{got})
			if a != b {
				t.Errorf("%s: shards=%d rendered table differs:\n%s\nvs\n%s", proto, shards, a, b)
			}
		}
	}
}

func TestRobustnessShardedIdentical(t *testing.T) {
	cfg := RobustnessConfig{}
	cfg.Proto = TFC
	cfg.Seed = 11
	cfg.Flows = 4
	cfg.Warmup = 20 * sim.Millisecond
	cfg.Blackout = 5 * sim.Millisecond
	cfg.Tail = 50 * sim.Millisecond
	seq := Robustness(cfg)

	c := cfg
	c.Shards = 2
	got := Robustness(c)
	if !reflect.DeepEqual(seq, got) {
		t.Errorf("sharded robustness diverges from sequential:\nseq: %+v\ngot: %+v", seq, got)
	}
}

// The full protocol matrix under long blackouts, at the registry's own
// seed schedule. Blackouts synchronize senders — RTO timers armed
// together, backlogs released together — which makes simultaneous
// same-nanosecond link deliveries from different shards routine rather
// than measure-zero. These exact (scenario, protocol, seed) cells are
// the ones that diverged before arrival ranking (sim.ScheduleAfterRank)
// gave simultaneous deliveries a canonical engine-independent order:
// bfc and tinytcp, whose pause/pacing gates phase-lock transmissions,
// caught ties the seq-order merge broke differently than the sequential
// engine.
func TestRobustnessShardedIdenticalAllProtos(t *testing.T) {
	for si, blackout := range []sim.Time{50 * sim.Millisecond, 500 * sim.Millisecond} {
		for pi, proto := range AllProtos {
			cfg := RobustnessConfig{}
			cfg.Proto = proto
			// The registry runs scenarios blackout-5ms, -50ms, -500ms, then
			// loss; trial index = scenario*len(protos) + proto.
			cfg.Seed = runner.DeriveSeed(1, (si+1)*len(AllProtos)+pi)
			cfg.Blackout = blackout
			seq := Robustness(cfg)

			c := cfg
			c.Shards = 3
			got := Robustness(c)
			if !reflect.DeepEqual(seq, got) {
				t.Errorf("%s blackout=%s: sharded diverges from sequential:\nseq: %+v\ngot: %+v",
					proto, blackout, seq, got)
			}
		}
	}
}

func TestPermutationShardedIdentical(t *testing.T) {
	cfg := PermutationConfig{}
	cfg.Proto = TFC
	cfg.Seed = 3
	cfg.K = 4
	cfg.Duration = 30 * sim.Millisecond
	seq := Permutation(cfg)

	for _, shards := range []int{2, 4} {
		c := cfg
		c.Shards = shards
		got := Permutation(c)
		if got.Group == nil {
			t.Errorf("shards=%d: no group self-profiling stats on a sharded run", shards)
		}
		// Group is engine self-profiling (epoch counts, wall timing), not
		// part of the deterministic result surface; nil it for the compare.
		got.Group = nil
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("shards=%d fat-tree permutation diverges from sequential:\nseq: %+v\ngot: %+v",
				shards, seq, got)
		}
	}
}

// Sharding must also be invisible to the telemetry layer: the merged
// trace and metrics files — probe events recorded from shard
// goroutines, gauges sampled at epoch barriers — must be byte-identical
// to the sequential run's.
func TestShardedTelemetryByteIdentical(t *testing.T) {
	run := func(shards int) (trace, metrics []byte) {
		c := telemetry.NewCollector(telemetry.Options{})
		cfg := QueueFairnessConfig{}
		cfg.Proto = TFC
		cfg.Seed = 9
		cfg.Shards = shards
		cfg.Telemetry = c.Trial("qf")
		QueueFairness(cfg)
		var tb, mb bytes.Buffer
		if err := c.WriteTrace(&tb); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		if err := c.WriteMetrics(&mb); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		return tb.Bytes(), mb.Bytes()
	}
	seqTrace, seqMetrics := run(0)
	shTrace, shMetrics := run(3)
	if !bytes.Equal(seqTrace, shTrace) {
		t.Errorf("sharded trace.json differs from sequential (%d vs %d bytes)",
			len(seqTrace), len(shTrace))
	}
	if !bytes.Equal(seqMetrics, shMetrics) {
		t.Errorf("sharded metrics.json differs from sequential (%d vs %d bytes)",
			len(seqMetrics), len(shMetrics))
	}
}

// A shard count beyond the topology's natural decomposition clamps
// rather than failing, and still matches sequential output.
func TestShardClampBeyondNatural(t *testing.T) {
	cfg := QueueFairnessConfig{}
	cfg.Proto = TFC
	cfg.Seed = 5
	seq := QueueFairness(cfg)
	c := cfg
	c.Shards = 64 // Testbed decomposes into 3 leaf subtrees
	got := QueueFairness(c)
	if !reflect.DeepEqual(seq, got) {
		t.Errorf("clamped shard count diverges from sequential")
	}
}
