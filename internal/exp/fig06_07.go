package exp

import (
	"fmt"
	"io"
	"strings"

	"tfcsim/internal/core"
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/stats"
	"tfcsim/internal/trace"
	"tfcsim/internal/workload"
)

// RTTAccuracyConfig parameterizes Fig 6 (accuracy of measuring rtt_b).
// H1 and H2 each run 2 long-lived TFC flows to H3; the switch's per-window
// rtt_b samples are compared with a reference RTT measured by a
// one-packet-per-round probe flow on an unloaded path.
type RTTAccuracyConfig struct {
	TopoConfig
	// Duration of the loaded measurement run (default 2s).
	Duration sim.Time
	// Window over which each rtt_b sample is taken (paper: 1 second;
	// default 100ms so short runs still yield many samples).
	Window sim.Time
	// CSVDir, if non-empty, receives rttb_cdf.csv and reference_cdf.csv.
	CSVDir string
}

// RTTAccuracyResult is the Fig 6 output: CDF summaries of measured rtt_b
// versus the reference RTT (both in microseconds).
type RTTAccuracyResult struct {
	MeasuredRTTB stats.Sample
	Reference    stats.Sample
	Events       uint64 // simulator events across both runs
}

// SimEvents reports the trial's event count to the runner pool.
func (r *RTTAccuracyResult) SimEvents() uint64 { return r.Events }

// RTTAccuracy runs the Fig 6 experiment.
func RTTAccuracy(cfg RTTAccuracyConfig) *RTTAccuracyResult {
	if cfg.Duration == 0 {
		cfg.Duration = 2 * sim.Second
	}
	if cfg.Window == 0 {
		cfg.Window = 100 * sim.Millisecond
	}
	cfg.Proto = TFC
	res := &RTTAccuracyResult{}

	// Reference run: unloaded path; one-MSS messages measured at the
	// sender give the queueless RTT (the paper's "referenced rtt" probe:
	// one MTU packet per round trip).
	{
		rt := cfg.TopoConfig
		rt.Telemetry = nil // the loaded run below owns the trial's sink
		e := Testbed(rt)
		h1, h3 := e.Hosts[0], e.Hosts[2]
		var lastSend sim.Time
		var conn *workload.Conn
		conn = e.Dialer.Dial(h1, h3, func() {
			res.Reference.AddTime(e.Sim.Now() - lastSend)
			lastSend = e.Sim.Now()
			conn.Sender.Send(netsim.MSS)
		}, nil)
		e.Sim.At(0, func() { conn.Sender.Open() })
		e.Sim.After(2*sim.Millisecond, func() {
			lastSend = e.Sim.Now()
			conn.Sender.Send(netsim.MSS)
		})
		e.Sim.RunUntil(cfg.Duration / 2)
		res.Events += e.Sim.Executed()
	}

	// Loaded run: 2+2 flows H1,H2 -> H3; per-window min of rtt_m at the
	// bottleneck port (NF1 -> H3) is the paper's measured rtt_b.
	{
		var bott *netsim.Port
		var windowMin sim.Time
		tc := cfg.TopoConfig
		tc.TFC.OnSlot = func(p *netsim.Port, info core.SlotInfo) {
			if p == bott && (windowMin == 0 || info.RTTm < windowMin) {
				windowMin = info.RTTm
			}
		}
		e := Testbed(tc)
		h1, h2, h3 := e.Hosts[0], e.Hosts[1], e.Hosts[2]
		bott = e.Switches[1].PortTo(h3.ID()) // NF1 -> H3
		for _, src := range []*netsim.Host{h1, h1, h2, h2} {
			f := newFaucet(e.Dialer, src, h3)
			e.Sim.At(0, func() { f.Start() })
		}
		var tick func()
		tick = func() {
			if windowMin > 0 {
				res.MeasuredRTTB.AddTime(windowMin)
			}
			windowMin = 0
			e.Sim.After(cfg.Window, tick)
		}
		// Discard the first window (convergence transient).
		e.Sim.After(cfg.Window, func() { windowMin = 0; e.Sim.After(cfg.Window, tick) })
		e.Sim.RunUntil(cfg.Duration)
		res.Events += e.Sim.Executed()
	}
	if cfg.CSVDir != "" {
		_ = trace.SaveTo(cfg.CSVDir, "rttb_cdf.csv", func(w io.Writer) error {
			return trace.WriteCDF(w, "rttb_us", &res.MeasuredRTTB)
		})
		_ = trace.SaveTo(cfg.CSVDir, "reference_cdf.csv", func(w io.Writer) error {
			return trace.WriteCDF(w, "reference_rtt_us", &res.Reference)
		})
	}
	return res
}

// String renders the Fig 6 comparison.
func (r *RTTAccuracyResult) String() string {
	t := stats.Table{
		Title:  "Fig 6 — accuracy of measured rtt_b (microseconds)",
		Header: []string{"series", "p10", "p50", "p90", "mean", "n"},
	}
	row := func(name string, s *stats.Sample) {
		t.AddRow(name, stats.F(s.Percentile(10), 1), stats.F(s.Percentile(50), 1),
			stats.F(s.Percentile(90), 1), stats.F(s.Mean(), 1), fmt.Sprint(s.N()))
	}
	row("measured rtt_b", &r.MeasuredRTTB)
	row("reference RTT", &r.Reference)
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "shape check (rtt_b at or below reference, paper: 59us vs 65us): %v\n",
		r.MeasuredRTTB.Percentile(50) <= r.Reference.Percentile(50))
	return b.String()
}

// NeAccuracyConfig parameterizes Fig 7 (accuracy of the effective-flow
// count with inactive flows): n2 = 5 persistent flows H4 -> H6 (the
// delimiter rack-local flows) plus n1 cross-rack flows H1 -> H6 that
// activate one per interval up to 10 and then deactivate one per interval.
type NeAccuracyConfig struct {
	TopoConfig
	// Interval between activation/deactivation steps (paper: 1s;
	// default 50ms for CI-speed runs).
	Interval sim.Time
	// N1Max is the peak number of on-off flows (paper: 10).
	N1Max int
	// N2 is the number of persistent rack-local flows (paper: 5).
	N2 int
}

// NePoint is one sampled comparison.
type NePoint struct {
	T        sim.Time
	Active   int     // currently active n1 flows
	Measured float64 // mean E over the sample period
	Expected float64 // n1/rttRatio + n2 (eq. 1)
}

// NeAccuracyResult is the Fig 7 output.
type NeAccuracyResult struct {
	Points []NePoint
	// Events is the simulator event count of the run.
	Events uint64
	// RTTRatio is the measured cross-rack/rack-local RTT ratio used for
	// the expected value (the paper's was ~1.5 on their testbed).
	RTTRatio float64
	// MeanAbsErr is the mean |measured-expected| over all points.
	MeanAbsErr float64
}

// SimEvents reports the trial's event count to the runner pool.
func (r *NeAccuracyResult) SimEvents() uint64 { return r.Events }

// NeAccuracy runs the Fig 7 experiment.
func NeAccuracy(cfg NeAccuracyConfig) *NeAccuracyResult {
	if cfg.Interval == 0 {
		cfg.Interval = 50 * sim.Millisecond
	}
	if cfg.N1Max == 0 {
		cfg.N1Max = 10
	}
	if cfg.N2 == 0 {
		cfg.N2 = 5
	}
	cfg.Proto = TFC

	var bott *netsim.Port
	var eSum, eN float64
	var rttLocal sim.Time // min rtt_m of the (rack-local) delimiter
	tc := cfg.TopoConfig
	tc.TFC.OnSlot = func(p *netsim.Port, info core.SlotInfo) {
		if p == bott {
			eSum += float64(info.E)
			eN++
			if rttLocal == 0 || info.RTTm < rttLocal {
				rttLocal = info.RTTm
			}
		}
	}
	e := Testbed(tc)
	// H4, H6 are on NF2 (hosts index 3..5); H1 on NF1.
	h1, h4, h6 := e.Hosts[0], e.Hosts[3], e.Hosts[5]
	bott = e.Switches[2].PortTo(h6.ID()) // NF2 -> H6

	// n2 persistent flows H4 -> H6 (started first: one becomes delimiter).
	var locals []*faucet
	for i := 0; i < cfg.N2; i++ {
		f := newFaucet(e.Dialer, h4, h6)
		locals = append(locals, f)
		e.Sim.At(0, func() { f.Start() })
	}
	var onoff []*faucet
	for i := 0; i < cfg.N1Max; i++ {
		onoff = append(onoff, newFaucet(e.Dialer, h1, h6))
	}
	res := &NeAccuracyResult{}
	active := 0
	// Schedule activations then deactivations.
	for k := 0; k < cfg.N1Max; k++ {
		k := k
		e.Sim.At(sim.Time(k+1)*cfg.Interval, func() {
			if !onoff[k].active && onoff[k].conn.Sender.Queued() == 0 {
				onoff[k].Start()
			} else {
				onoff[k].Resume()
			}
			active++
		})
		e.Sim.At(sim.Time(cfg.N1Max+k+1)*cfg.Interval, func() {
			onoff[k].Pause()
			active--
		})
	}
	// The expected value (eq. 1) needs the cross/local RTT ratio. The
	// paper used the measured ratio of its testbed (~1.5); we likewise
	// measure it live from the flows' smoothed RTTs, since under load the
	// loaded RTTs — not the propagation ratio — determine how many rounds
	// each flow completes per slot.
	ratio := func() float64 {
		var lsum, lc, csum, cc float64
		for _, f := range locals {
			if srtt := f.conn.SRTT(); srtt > 0 {
				lsum += srtt.Seconds()
				lc++
			}
		}
		for _, f := range onoff {
			if f.active {
				if srtt := f.conn.SRTT(); srtt > 0 {
					csum += srtt.Seconds()
					cc++
				}
			}
		}
		if lc == 0 || cc == 0 || lsum == 0 {
			return 2.0 // unloaded analytic fallback
		}
		return (csum / cc) / (lsum / lc)
	}

	// Sample measured E each interval (mean of slot E values in it).
	end := sim.Time(2*cfg.N1Max+2) * cfg.Interval
	var rsum float64
	var rn int
	var tick func()
	tick = func() {
		if eN > 0 {
			m := eSum / eN
			r := ratio()
			rsum += r
			rn++
			exp := float64(active)/r + float64(cfg.N2)
			res.Points = append(res.Points, NePoint{
				T: e.Sim.Now(), Active: active, Measured: m, Expected: exp,
			})
		}
		eSum, eN = 0, 0
		if e.Sim.Now() < end {
			e.Sim.After(cfg.Interval/2, tick)
		}
	}
	e.Sim.After(cfg.Interval, tick)
	e.Sim.RunUntil(end + cfg.Interval)
	res.Events = e.Sim.Executed()
	if rn > 0 {
		res.RTTRatio = rsum / float64(rn)
	}

	var mae float64
	for _, p := range res.Points {
		d := p.Measured - p.Expected
		if d < 0 {
			d = -d
		}
		mae += d
	}
	if len(res.Points) > 0 {
		res.MeanAbsErr = mae / float64(len(res.Points))
	}
	return res
}

// String renders the Fig 7 series.
func (r *NeAccuracyResult) String() string {
	t := stats.Table{
		Title:  "Fig 7 — accuracy of Ne with inactive flows",
		Header: []string{"t", "active n1", "measured Ne", "expected Ne"},
	}
	for _, p := range r.Points {
		t.AddRow(p.T.String(), fmt.Sprint(p.Active),
			stats.F(p.Measured, 2), stats.F(p.Expected, 2))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "mean |measured-expected| = %.2f flows (rtt ratio %.1f)\n",
		r.MeanAbsErr, r.RTTRatio)
	return b.String()
}
