package exp

import (
	"context"
	"fmt"
	"strings"

	"tfcsim/internal/netsim"
	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
	"tfcsim/internal/stats"
)

// FatTreeEnv is a built k-ary fat-tree (Al-Fares et al., the canonical
// multi-rooted tree of §4.3's "typical topologies ... multi-rooted trees
// with single or multiple paths between two end servers").
type FatTreeEnv struct {
	*Env
	K     int
	Cores []*netsim.Switch
	// Pods[p] = {aggregation switches, edge switches}.
	Aggs  [][]*netsim.Switch
	Edges [][]*netsim.Switch
	// PodHosts[p] lists the (k/2)^2 hosts of pod p.
	PodHosts [][]*netsim.Host
}

// FatTree builds a k-ary fat-tree: (k/2)^2 core switches, k pods each with
// k/2 aggregation and k/2 edge switches, and (k/2)^2 hosts per pod. All
// links share one rate; inter-pod flows have (k/2)^2 equal-cost paths,
// spread by the switches' flow-consistent ECMP hashing.
func FatTree(cfg TopoConfig, k int, rate netsim.Rate, buf int) *FatTreeEnv {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("exp: fat-tree k must be even and >= 2, got %d", k))
	}
	e := newEnv(&cfg)
	half := k / 2
	link := netsim.LinkConfig{
		Rate: rate, Delay: 5 * sim.Microsecond, BufA: buf, BufB: buf,
	}
	ft := &FatTreeEnv{Env: e, K: k}
	// Natural decomposition for sharded runs: one group per pod, with
	// the core layer spread round-robin over the pod groups. Every
	// boundary link (pod<->core) carries propagation delay, which becomes
	// the parallel engine's lookahead.
	for i := 0; i < half*half; i++ {
		core := e.newSwitch(fmt.Sprintf("core%d", i))
		e.place(i%k, core)
		ft.Cores = append(ft.Cores, core)
	}
	for p := 0; p < k; p++ {
		var aggs, edges []*netsim.Switch
		for a := 0; a < half; a++ {
			agg := e.newSwitch(fmt.Sprintf("agg%d.%d", p, a))
			e.place(p, agg)
			aggs = append(aggs, agg)
			// Aggregation switch a connects to cores [a*half, (a+1)*half).
			for c := 0; c < half; c++ {
				e.Net.Connect(agg, ft.Cores[a*half+c], link)
			}
		}
		var hosts []*netsim.Host
		for ed := 0; ed < half; ed++ {
			edge := e.newSwitch(fmt.Sprintf("edge%d.%d", p, ed))
			e.place(p, edge)
			edges = append(edges, edge)
			for _, agg := range aggs {
				e.Net.Connect(edge, agg, link)
			}
			for hIdx := 0; hIdx < half; hIdx++ {
				h := e.newHost(fmt.Sprintf("h%d.%d.%d", p, ed, hIdx), cfg.HostJitter)
				e.place(p, h)
				e.Net.Connect(h, edge, netsim.LinkConfig{
					Rate: rate, Delay: 5 * sim.Microsecond, BufB: buf,
				})
				hosts = append(hosts, h)
			}
		}
		ft.Aggs = append(ft.Aggs, aggs)
		ft.Edges = append(ft.Edges, edges)
		ft.PodHosts = append(ft.PodHosts, hosts)
	}
	e.finish(&cfg, rate)
	return ft
}

// PermutationConfig parameterizes the fat-tree permutation experiment
// (beyond-paper extension): every host sends one long flow to a distinct
// host in another pod — the classic worst-case multipath workload. It
// demonstrates that TFC's per-port token allocation composes with ECMP.
type PermutationConfig struct {
	TopoConfig
	K        int
	Rate     netsim.Rate
	BufBytes int
	Duration sim.Time
	Warmup   sim.Time
	// Clock, when set on a sharded run, feeds the engine group's
	// self-profiling wall clock (sim.Group.SetClock) so the result's
	// Group stats carry per-shard work/barrier nanoseconds. The sim
	// package deliberately does not import time; callers inject e.g.
	// time.Now().UnixNano. Nil leaves those columns zero.
	Clock func() int64
}

// PermutationResult summarizes the permutation run.
type PermutationResult struct {
	Proto      Proto
	Hosts      int
	AggGoodput float64 // bits/s summed over all flows
	MinFlow    float64 // slowest flow (bits/s)
	MaxFlow    float64
	Drops      int64
	MaxQueue   int    // worst port queue in the fabric
	Events     uint64 // simulator events executed by this trial
	// Group carries the sharded engine's self-profiling counters
	// (epochs, ties, per-shard dispatch and barrier time); nil on
	// sequential (unsharded) runs.
	Group *sim.GroupStats
}

// SimEvents reports the trial's event count to the runner pool.
func (r PermutationResult) SimEvents() uint64 { return r.Events }

// Permutation runs one protocol over the fat-tree permutation workload.
func Permutation(cfg PermutationConfig) PermutationResult {
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.Rate == 0 {
		cfg.Rate = netsim.Gbps
	}
	if cfg.BufBytes == 0 {
		cfg.BufBytes = TestbedBuf
	}
	if cfg.Duration == 0 {
		cfg.Duration = 300 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Duration / 3
	}
	ft := FatTree(cfg.TopoConfig, cfg.K, cfg.Rate, cfg.BufBytes)
	if g := ft.Net.Group(); g != nil && cfg.Clock != nil {
		g.SetClock(cfg.Clock)
	}
	// Cross-pod permutation: host i of pod p sends to host i of pod p+1.
	var fs []*faucet
	for p := 0; p < ft.K; p++ {
		dstPod := (p + 1) % ft.K
		for i, src := range ft.PodHosts[p] {
			f := newFaucet(ft.Dialer, src, ft.PodHosts[dstPod][i])
			fs = append(fs, f)
			ft.Sim.At(0, f.Start)
		}
	}
	ft.Sim.RunUntil(cfg.Warmup)
	base := make([]int64, len(fs))
	for i, f := range fs {
		base[i] = f.conn.Received()
	}
	ft.Sim.RunUntil(cfg.Duration)
	span := (cfg.Duration - cfg.Warmup).Seconds()
	res := PermutationResult{Proto: cfg.Proto, Hosts: len(fs)}
	res.MinFlow = -1
	for i, f := range fs {
		r := float64(f.conn.Received()-base[i]) * 8 / span
		res.AggGoodput += r
		if res.MinFlow < 0 || r < res.MinFlow {
			res.MinFlow = r
		}
		if r > res.MaxFlow {
			res.MaxFlow = r
		}
	}
	for _, sw := range ft.Switches {
		for _, p := range sw.Ports() {
			res.Drops += p.Drops
			if p.MaxQueue > res.MaxQueue {
				res.MaxQueue = p.MaxQueue
			}
		}
	}
	res.Events = ft.Sim.Executed()
	if g := ft.Net.Group(); g != nil {
		gs := g.Stats()
		res.Group = &gs
	}
	return res
}

// PermutationAll runs the permutation workload for each protocol as
// independent pool trials; results come back in protos order. A nil pool
// runs serially with base seed cfg.Seed.
func PermutationAll(ctx context.Context, p *runner.Pool, cfg PermutationConfig, protos []Proto) ([]PermutationResult, error) {
	if p == nil {
		p = runner.Serial(cfg.Seed)
	}
	rs, _, err := runner.Map(ctx, p, len(protos), func(i int, seed int64) (PermutationResult, error) {
		c := cfg
		c.Proto = protos[i]
		c.Seed = seed
		c.mintTelemetry(string(c.Proto))
		return Permutation(c), nil
	})
	return rs, err
}

// FormatPermutation renders the fat-tree permutation comparison.
func FormatPermutation(rs []PermutationResult) string {
	t := stats.Table{
		Title: "Fat-tree permutation (beyond-paper: TFC over ECMP multipath)",
		Header: []string{"proto", "hosts", "agg goodput(Mbps)", "min flow(Mbps)",
			"max flow(Mbps)", "drops", "max queue(KB)"},
	}
	for _, r := range rs {
		t.AddRow(string(r.Proto), fmt.Sprint(r.Hosts), stats.Mbps(r.AggGoodput),
			stats.Mbps(r.MinFlow), stats.Mbps(r.MaxFlow),
			fmt.Sprint(r.Drops), stats.F(float64(r.MaxQueue)/1024, 1))
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("expected: TFC near per-host line rate with ~zero queues wherever ECMP spreads flows evenly; hash collisions bound the unlucky flows' share for every protocol\n")
	return b.String()
}
