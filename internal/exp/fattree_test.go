package exp

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

func TestFatTreeShape(t *testing.T) {
	ft := FatTree(TopoConfig{Proto: TCP}, 4, netsim.Gbps, 64<<10)
	if len(ft.Cores) != 4 {
		t.Fatalf("cores = %d, want (k/2)^2 = 4", len(ft.Cores))
	}
	if len(ft.Aggs) != 4 || len(ft.Edges) != 4 || len(ft.PodHosts) != 4 {
		t.Fatal("pod count wrong")
	}
	total := 0
	for p := 0; p < 4; p++ {
		if len(ft.Aggs[p]) != 2 || len(ft.Edges[p]) != 2 {
			t.Fatalf("pod %d: aggs=%d edges=%d, want 2/2", p, len(ft.Aggs[p]), len(ft.Edges[p]))
		}
		if len(ft.PodHosts[p]) != 4 {
			t.Fatalf("pod %d hosts = %d, want 4", p, len(ft.PodHosts[p]))
		}
		total += len(ft.PodHosts[p])
	}
	if total != 16 {
		t.Fatalf("hosts = %d, want 16 for k=4", total)
	}
}

func TestFatTreeECMPPaths(t *testing.T) {
	ft := FatTree(TopoConfig{Proto: TCP}, 4, netsim.Gbps, 64<<10)
	// An edge switch should have 2 equal-cost uplinks toward a host in
	// another pod (its two aggregation switches).
	src := ft.PodHosts[0][0]
	dst := ft.PodHosts[1][0]
	edge := ft.Edges[0][0]
	ports := edge.PortsTo(dst.ID())
	if len(ports) != 2 {
		t.Fatalf("edge has %d equal-cost uplinks cross-pod, want 2", len(ports))
	}
	// An aggregation switch has 2 equal-cost core uplinks cross-pod.
	agg := ft.Aggs[0][0]
	if got := len(agg.PortsTo(dst.ID())); got != 2 {
		t.Fatalf("agg has %d equal-cost core ports, want 2", got)
	}
	_ = src
}

func TestFatTreeAllPairsReachable(t *testing.T) {
	ft := FatTree(TopoConfig{Proto: TCP}, 4, netsim.Gbps, 0)
	s := ft.Sim
	var hosts []*netsim.Host
	for _, ph := range ft.PodHosts {
		hosts = append(hosts, ph...)
	}
	type probe struct{ got int }
	var probes []*probe
	fid := netsim.FlowID(1000)
	for i, a := range hosts {
		for j, b := range hosts {
			if i == j {
				continue
			}
			pr := &probe{}
			probes = append(probes, pr)
			fid++
			f := fid
			bb := b
			bb.Register(f, endpointFunc(func(p *netsim.Packet) { pr.got++ }))
			aa := a
			s.At(0, func() {
				aa.Send(&netsim.Packet{Flow: f, Src: aa.ID(), Dst: bb.ID(), Payload: 100})
			})
		}
	}
	s.Run()
	for i, pr := range probes {
		if pr.got != 1 {
			t.Fatalf("pair %d: delivered %d, want 1", i, pr.got)
		}
	}
}

type endpointFunc func(*netsim.Packet)

func (f endpointFunc) Deliver(p *netsim.Packet) { f(p) }

func TestFatTreeOddKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd k must panic")
		}
	}()
	FatTree(TopoConfig{Proto: TCP}, 3, netsim.Gbps, 0)
}

func TestPermutationTFCvsTCP(t *testing.T) {
	run := func(p Proto) PermutationResult {
		cfg := PermutationConfig{Duration: 150 * sim.Millisecond}
		cfg.Proto = p
		return Permutation(cfg)
	}
	tfc := run(TFC)
	tcp := run(TCP)
	if tfc.Hosts != 16 || tcp.Hosts != 16 {
		t.Fatal("permutation should run 16 flows at k=4")
	}
	// TFC: high aggregate (bounded by ECMP hash collisions — static
	// flow-hash ECMP yields ~60% of bisection for k=4 permutations, a
	// well-known property of the topology, not of the transport), no
	// drops, small fabric queues.
	if tfc.AggGoodput < 5.5e9 {
		t.Errorf("TFC aggregate %.1f Gbps too low", tfc.AggGoodput/1e9)
	}
	t.Logf("fat-tree permutation: TFC %.1f Gbps (maxQ %dKB), TCP %.1f Gbps (maxQ %dKB)",
		tfc.AggGoodput/1e9, tfc.MaxQueue>>10, tcp.AggGoodput/1e9, tcp.MaxQueue>>10)
	if tfc.Drops != 0 {
		t.Errorf("TFC dropped %d in the fabric", tfc.Drops)
	}
	if tfc.MaxQueue > 64<<10 {
		t.Errorf("TFC max fabric queue %dKB", tfc.MaxQueue>>10)
	}
	// TCP fills queues somewhere in the fabric.
	if tcp.MaxQueue < tfc.MaxQueue {
		t.Errorf("TCP max queue %d below TFC %d", tcp.MaxQueue, tfc.MaxQueue)
	}
	if tfc.MinFlow <= 0 {
		t.Error("a TFC flow starved")
	}
}

func TestChurnTFCHighUtilLowQueue(t *testing.T) {
	cfg := ChurnConfig{Duration: 250 * sim.Millisecond}
	cfg.Proto = TFC
	r := Churn(cfg)
	if r.Utilization < 0.85 {
		t.Errorf("TFC utilization of active capacity %.2f, want > 0.85", r.Utilization)
	}
	if r.AvgQ > 10<<10 {
		t.Errorf("TFC avg queue %.0fB under churn, want near zero", r.AvgQ)
	}
	if r.Drops != 0 {
		t.Errorf("TFC dropped %d under churn", r.Drops)
	}
	cfg.Proto = TCP
	rt := Churn(cfg)
	if rt.AvgQ < r.AvgQ*5 {
		t.Errorf("TCP avg queue %.0fB not clearly above TFC %.0fB", rt.AvgQ, r.AvgQ)
	}
}
