package exp

import (
	"context"
	"fmt"
	"io"
	"strings"

	"tfcsim/internal/netsim"
	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
	"tfcsim/internal/stats"
	"tfcsim/internal/trace"
)

// QueueFairnessConfig parameterizes the Figs 8–10 scenario: four
// long-lived flows (2 from H1, 2 from H2) to H3, starting at a fixed
// interval, for each protocol. The same run yields the queue-length
// series (Fig 8), per-flow goodput/fairness (Fig 9), and the convergence
// time of the third flow (Fig 10).
type QueueFairnessConfig struct {
	TopoConfig
	// StartInterval between consecutive flow starts (paper: 3s; default
	// 50ms — convergence happens at sub-millisecond timescales).
	StartInterval sim.Time
	// Tail run time after the last flow starts.
	Tail sim.Time
	// QueueSample period (default 1ms).
	QueueSample sim.Time
	// GoodputSample period (paper: 20ms; default 5ms).
	GoodputSample sim.Time
	// CSVDir, if non-empty, receives queue_<proto>.csv and
	// goodput_<proto>.csv time series for external plotting.
	CSVDir string
}

func (c *QueueFairnessConfig) fill() {
	if c.StartInterval == 0 {
		c.StartInterval = 50 * sim.Millisecond
	}
	if c.Tail == 0 {
		c.Tail = 100 * sim.Millisecond
	}
	if c.QueueSample == 0 {
		c.QueueSample = sim.Millisecond
	}
	if c.GoodputSample == 0 {
		c.GoodputSample = 5 * sim.Millisecond
	}
}

// QueueFairnessResult holds one protocol's outcome.
type QueueFairnessResult struct {
	Proto       Proto
	Queue       stats.TimeSeries   // bottleneck queue bytes over time
	Goodputs    []stats.TimeSeries // per-flow goodput (bits/s)
	AggGoodput  float64            // steady-state aggregate (bits/s)
	JainIndex   float64            // fairness across the 4 flows, steady state
	MaxQueue    int                // bytes
	AvgQueue    float64            // bytes, steady state
	Drops       int64
	ConvergeIn  sim.Time // time for flow 3 to reach 80% of fair share
	Events      uint64   // simulator events executed by this trial
	convergedAt sim.Time
}

// SimEvents reports the trial's event count to the runner pool.
func (r *QueueFairnessResult) SimEvents() uint64 { return r.Events }

// QueueFairness runs the Figs 8–10 scenario for one protocol.
func QueueFairness(cfg QueueFairnessConfig) *QueueFairnessResult {
	cfg.fill()
	e := Testbed(cfg.TopoConfig)
	h1, h2, h3 := e.Hosts[0], e.Hosts[1], e.Hosts[2]
	bott := e.Switches[1].PortTo(h3.ID()) // NF1 -> H3

	res := &QueueFairnessResult{Proto: cfg.Proto}
	srcs := []*netsim.Host{h1, h2, h1, h2}
	var faucets []*faucet
	for i, src := range srcs {
		f := newFaucet(e.Dialer, src, h3)
		faucets = append(faucets, f)
		at := sim.Time(i) * cfg.StartInterval
		e.Sim.At(at, f.Start)
	}
	// Queue sampler.
	qs := stats.NewSampler(e.Sim, cfg.QueueSample, func() float64 {
		return float64(bott.QueueBytes())
	})
	// Per-flow goodput meters.
	var meters []*stats.GoodputMeter
	for _, f := range faucets {
		recv := f.conn.Received
		meters = append(meters, stats.NewGoodputMeter(e.Sim, cfg.GoodputSample, recv))
	}
	// Convergence detection for flow index 2 (the paper zooms on flow 3):
	// poll its rate every 200us after it starts; converged when its
	// throughput over the last window reaches 80% of the fair share (c/3
	// while 3 flows are active).
	flow3Start := 2 * cfg.StartInterval
	fair := float64(TestbedRate) / 3
	var prevBytes int64
	var pollStart sim.Time
	var poll func()
	const pollEvery = 200 * sim.Microsecond
	poll = func() {
		cur := faucets[2].conn.Received()
		rate := float64(cur-prevBytes) * 8 / pollEvery.Seconds()
		prevBytes = cur
		if res.convergedAt == 0 && rate >= 0.8*fair {
			res.convergedAt = e.Sim.Now()
			res.ConvergeIn = e.Sim.Now() - pollStart
			return
		}
		if e.Sim.Now() < flow3Start+cfg.StartInterval {
			e.Sim.After(pollEvery, poll)
		}
	}
	e.Sim.At(flow3Start, func() {
		pollStart = e.Sim.Now()
		prevBytes = faucets[2].conn.Received()
		e.Sim.After(pollEvery, poll)
	})

	end := 4*cfg.StartInterval + cfg.Tail
	e.Sim.RunUntil(end)
	qs.Stop()

	// Steady state: after all flows are up.
	steady := 3*cfg.StartInterval + cfg.StartInterval/2
	var rates []float64
	var agg float64
	for _, m := range meters {
		late := m.Series.After(steady)
		r := late.MeanV()
		rates = append(rates, r)
		agg += r
	}
	res.AggGoodput = agg
	res.JainIndex = jain(rates)
	for i, m := range meters {
		res.Goodputs = append(res.Goodputs, m.Series)
		_ = i
	}
	res.Queue = qs.Series
	res.MaxQueue = bott.MaxQueue
	res.AvgQueue = qs.Series.After(steady).MeanV()
	res.Drops = bott.Drops
	if res.convergedAt == 0 {
		res.ConvergeIn = -1 // never converged within the window
	}
	res.Events = e.Sim.Executed()
	if cfg.CSVDir != "" {
		name := string(cfg.Proto)
		_ = trace.SaveTo(cfg.CSVDir, "queue_"+name+".csv", func(w io.Writer) error {
			return trace.WriteTimeSeries(w, "queue_bytes", &res.Queue)
		})
		_ = trace.SaveTo(cfg.CSVDir, "goodput_"+name+".csv", func(w io.Writer) error {
			names := make([]string, len(meters))
			series := make([]*stats.TimeSeries, len(meters))
			for i, m := range meters {
				names[i] = fmt.Sprintf("flow%d_bps", i+1)
				series[i] = &m.Series
			}
			return trace.WriteMultiSeries(w, names, series)
		})
	}
	return res
}

func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// QueueFairnessAll runs the scenario for every compared protocol (or the
// explicit protos override) as independent pool trials; results come back
// in protocol-list order. A nil pool runs serially with base seed
// cfg.Seed.
func QueueFairnessAll(ctx context.Context, p *runner.Pool, cfg QueueFairnessConfig, protos ...Proto) ([]*QueueFairnessResult, error) {
	if p == nil {
		p = runner.Serial(cfg.Seed)
	}
	if len(protos) == 0 {
		protos = AllProtos
	}
	rs, _, err := runner.Map(ctx, p, len(protos), func(i int, seed int64) (*QueueFairnessResult, error) {
		c := cfg
		c.Proto = protos[i]
		c.Seed = seed
		c.mintTelemetry(string(c.Proto))
		return QueueFairness(c), nil
	})
	return rs, err
}

// FormatQueueFairness renders Figs 8, 9 and 10 as one table.
func FormatQueueFairness(rs []*QueueFairnessResult) string {
	t := stats.Table{
		Title: "Figs 8-10 — queue length, goodput/fairness, convergence (4 staggered flows -> H3)",
		Header: []string{"proto", "agg goodput(Mbps)", "Jain", "avg queue(KB)",
			"max queue(KB)", "drops", "flow3 converge"},
	}
	for _, r := range rs {
		conv := "never"
		if r.ConvergeIn >= 0 {
			conv = r.ConvergeIn.String()
		}
		t.AddRow(string(r.Proto), stats.Mbps(r.AggGoodput), stats.F(r.JainIndex, 3),
			stats.F(r.AvgQueue/1024, 1), stats.F(float64(r.MaxQueue)/1024, 1),
			fmt.Sprint(r.Drops), conv)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("paper shape: TFC queue ~KBs & converges in ~1 round; DCTCP ~30KB queue; TCP fills 256KB buffer, unstable shares\n")
	return b.String()
}
