package exp

// Cross-validation: the closed-form predictions of internal/model against
// full packet-level simulation (analysis <-> simulation agreement is part
// of the reproduction's soundness story, DESIGN.md §3b).

import (
	"testing"

	"tfcsim/internal/model"
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/workload"
)

func TestModelIncastRoundTime(t *testing.T) {
	// Simulated barrier round time vs the paced-regime prediction.
	const n = 60
	cfg := TopoConfig{Proto: TFC}
	e, senders, recv, _ := Star(cfg, n, netsim.Gbps, TestbedBuf)
	in := workload.NewIncast(workload.IncastConfig{
		Dialer: e.Dialer, Senders: senders, Receiver: recv,
		BlockBytes: 256 << 10, Rounds: 5,
	})
	in.Start(5 * sim.Millisecond)
	e.Sim.RunUntil(2 * sim.Second)
	if in.RoundsDone < 5 {
		t.Fatalf("only %d rounds done", in.RoundsDone)
	}
	pred := model.IncastRoundTime(n, 256<<10, netsim.Gbps, 0.97, netsim.MSS)
	// Use the later rounds (past convergence).
	got := in.RoundTimes[len(in.RoundTimes)-1]
	ratio := float64(got) / float64(pred)
	if ratio < 0.9 || ratio > 1.25 {
		t.Fatalf("simulated round %v vs predicted %v (ratio %.2f)", got, pred, ratio)
	}
}

func TestModelPacedGoodput(t *testing.T) {
	// Long-run incast goodput vs rho0 * line rate * payload efficiency.
	cfg := IncastConfig{Rounds: 6}
	cfg.Proto = TFC
	cfg.Senders = 60
	pt := Incast(cfg)
	pred := model.PacedGoodput(netsim.Gbps, 0.97, netsim.MSS)
	ratio := pt.Goodput / pred
	if ratio < 0.92 || ratio > 1.08 {
		t.Fatalf("simulated %v bps vs predicted %v (ratio %.2f)", pt.Goodput, pred, ratio)
	}
}

func TestModelWindowLimitedUtilization(t *testing.T) {
	// Single long flow on the testbed: measured utilization should match
	// the sqrt(rho0 * rtt_b / rtt_m) fixed point within ~10%.
	tc := TopoConfig{Proto: TFC}
	e := Testbed(tc)
	h1, h3 := e.Hosts[0], e.Hosts[2]
	f := newFaucet(e.Dialer, h1, h3)
	e.Sim.At(0, f.Start)
	e.Sim.RunUntil(100 * sim.Millisecond)
	base := f.conn.Received()
	e.Sim.RunUntil(300 * sim.Millisecond)
	goodput := float64(f.conn.Received()-base) * 8 / 0.2

	// Gather rtt_b and flow SRTT for the prediction.
	leaf := e.Switches[1]
	bott := leaf.PortTo(h3.ID())
	rttb := e.TFCState[leaf].PortState(bott).RTTB()
	rttm := f.conn.SRTT()
	pred := model.WindowLimitedUtilization(0.97, rttb, rttm) *
		float64(netsim.Gbps) * model.PayloadEfficiency(netsim.MSS)
	ratio := goodput / pred
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("simulated %.1f Mbps vs predicted %.1f (ratio %.2f; rttb=%v rttm=%v)",
			goodput/1e6, pred/1e6, ratio, rttb, rttm)
	}
}

func TestModelGrantIntervalObserved(t *testing.T) {
	// In the paced regime, consecutive data arrivals at the bottleneck
	// should average one grant interval apart.
	const n = 50
	tc := TopoConfig{Proto: TFC}
	e, senders, recv, bott := Star(tc, n, netsim.Gbps, TestbedBuf)
	for _, h := range senders {
		f := newFaucet(e.Dialer, h, recv)
		e.Sim.At(0, f.Start)
	}
	e.Sim.RunUntil(50 * sim.Millisecond)
	base := bott.TxPackets
	e.Sim.RunUntil(150 * sim.Millisecond)
	perPkt := (100 * sim.Millisecond) / sim.Time(bott.TxPackets-base)
	pred := model.GrantInterval(netsim.Gbps, 0.97, netsim.MSS)
	ratio := float64(perPkt) / float64(pred)
	if ratio < 0.9 || ratio > 1.15 {
		t.Fatalf("observed inter-packet %v vs predicted grant interval %v (ratio %.2f)",
			perPkt, pred, ratio)
	}
}
