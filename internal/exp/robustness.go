package exp

import (
	"context"
	"fmt"
	"os"
	"strings"

	"tfcsim/internal/faults"
	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
	"tfcsim/internal/stats"
)

// RobustnessConfig parameterizes the failure-recovery experiment
// (beyond-paper extension of §4's robustness mechanisms): long-lived
// flows saturate the star bottleneck, a fault hits the bottleneck link,
// and the metric is how fast and how cleanly each protocol comes back.
type RobustnessConfig struct {
	TopoConfig
	Flows int // persistent senders (default 8)
	// Warmup is the steady-state period before the fault (default 100ms).
	Warmup sim.Time
	// Blackout takes the bottleneck link down (both directions, queue
	// preserved) for this long at Warmup. 0 disables.
	Blackout sim.Time
	// Loss enables Gilbert–Elliott bursty loss on the bottleneck from
	// Warmup to the end of the run with this mean loss rate. 0 disables.
	Loss  float64
	Burst float64 // mean loss-burst length in packets (default 5)
	// Tail is how long the run continues after the fault clears (default
	// 500ms — long enough for an RTO-backoff-bound recovery).
	Tail sim.Time
	// UtilWindow is the utilization sampling period (default 1ms); the
	// link counts as recovered at the start of RecoverRun consecutive
	// windows each at >= 90% of capacity.
	UtilWindow sim.Time
	RecoverRun int // consecutive windows required (default 10)
}

func (c *RobustnessConfig) fill() {
	if c.Flows == 0 {
		c.Flows = 8
	}
	if c.Warmup == 0 {
		c.Warmup = 100 * sim.Millisecond
	}
	if c.Burst == 0 {
		c.Burst = 5
	}
	if c.Tail == 0 {
		c.Tail = 500 * sim.Millisecond
	}
	if c.UtilWindow == 0 {
		c.UtilWindow = sim.Millisecond
	}
	if c.RecoverRun == 0 {
		c.RecoverRun = 10
	}
}

// FaultScenario names one fault pattern of the sweep.
type FaultScenario struct {
	Name     string
	Blackout sim.Time
	Loss     float64
	Burst    float64
}

// DefaultScenarios is the sweep the registry runs: three blackout
// durations spanning sub-RTO to many-RTO, plus sustained 1% bursty loss.
var DefaultScenarios = []FaultScenario{
	{Name: "blackout-5ms", Blackout: 5 * sim.Millisecond},
	{Name: "blackout-50ms", Blackout: 50 * sim.Millisecond},
	{Name: "blackout-500ms", Blackout: 500 * sim.Millisecond},
	{Name: "loss-1%-burst5", Loss: 0.01, Burst: 5},
}

// RobustnessPoint is one (scenario, protocol) trial.
type RobustnessPoint struct {
	Proto    Proto
	Scenario string
	// Recovery is the time from link restoration to the start of the
	// first sustained >= 90%-utilization stretch; -1 if never (or if the
	// scenario has no blackout).
	Recovery sim.Time
	// PostQPeak is the bottleneck queue peak (bytes, 100us sampling)
	// after the fault cleared — retransmission-burst overshoot.
	PostQPeak int
	// Goodput is receiver goodput (bits/s) over the tail.
	Goodput  float64
	RtxBytes int64
	Timeouts int64
	Drops    int64
	Events   uint64
}

// SimEvents reports the trial's event count to the runner pool.
func (r RobustnessPoint) SimEvents() uint64 { return r.Events }

// Robustness runs one fault trial for one protocol on the star topology.
// All fault timing and loss randomness derive from cfg.Seed, so a trial
// is byte-identical wherever it runs.
func Robustness(cfg RobustnessConfig) RobustnessPoint {
	cfg.fill()
	e, senders, recv, bott := Star(cfg.TopoConfig, cfg.Flows, TestbedRate, TestbedBuf)
	var fs []*faucet
	for _, h := range senders {
		f := newFaucet(e.Dialer, h, recv)
		f.chunk = 256 << 10
		fs = append(fs, f)
		e.Sim.At(0, f.Start)
	}

	inj := faults.NewScheduler(e.Sim)
	inj.Probe = cfg.Telemetry.FaultProbe()
	upAt := cfg.Warmup + cfg.Blackout
	if cfg.Blackout > 0 {
		// A cable failure is bidirectional: data direction (bott) and the
		// ACK/credit direction (the receiver's NIC). Queues are preserved
		// (pulled-cable semantics), so the backlog drains on restore.
		inj.LinkDown(cfg.Warmup, cfg.Blackout, false, bott, recv.NIC())
	}
	if cfg.Loss > 0 {
		inj.BurstyLoss(cfg.Warmup, 0, bott, faults.NewGilbertElliott(cfg.Loss, cfg.Burst))
	}
	end := upAt + cfg.Tail

	// Recovery detector: utilization per UtilWindow from the bottleneck's
	// transmitted frame bytes, recovered at the start of RecoverRun
	// consecutive windows >= 90% of window capacity.
	winBytes := 0.9 * float64(bott.Rate.BytesIn(cfg.UtilWindow))
	recovery := sim.Time(-1)
	var lastFrames int64
	var streak int
	var streakStart sim.Time
	var utilTick func()
	utilTick = func() {
		now := e.Sim.Now()
		delta := bott.TxFrames - lastFrames
		lastFrames = bott.TxFrames
		if now > upAt && cfg.Blackout > 0 && recovery < 0 {
			if float64(delta) >= winBytes {
				if streak == 0 {
					streakStart = now - cfg.UtilWindow
				}
				streak++
				if streak >= cfg.RecoverRun {
					recovery = streakStart - upAt
					if recovery < 0 {
						recovery = 0
					}
				}
			} else {
				streak = 0
			}
		}
		if now < end {
			e.Sim.After(cfg.UtilWindow, utilTick)
		}
	}
	e.Sim.After(cfg.UtilWindow, utilTick)

	// Post-fault queue peak at 100us granularity (Port.MaxQueue is
	// all-time and would report the blackout pile-up instead).
	postPeak := 0
	var qTick func()
	qTick = func() {
		if q := bott.QueueBytes(); q > postPeak {
			postPeak = q
		}
		if e.Sim.Now() < end {
			e.Sim.After(100*sim.Microsecond, qTick)
		}
	}
	e.Sim.At(upAt, qTick)

	var tailBase int64
	e.Sim.At(upAt, func() {
		for _, f := range fs {
			tailBase += f.conn.Received()
		}
	})

	e.Sim.RunUntil(end)

	// Residual ties mean the epoch barrier had to break same-timestamp
	// events arriving from different shards; the count is read through the
	// structured Group.Stats() accessor. Nonzero is deterministic and
	// harmless, but this experiment injects faults at exact instants, so a
	// surprise here is the first hint a fault landed on a shard boundary.
	if g := e.Net.Group(); g != nil {
		if gs := g.Stats(); gs.Ties > 0 {
			fmt.Fprintf(os.Stderr,
				"robustness: warning: %d residual cross-shard timestamp ties (proto=%s, shards=%d, epochs=%d)\n",
				gs.Ties, cfg.Proto, gs.Shards, gs.Epochs)
		}
	}

	pt := RobustnessPoint{Proto: cfg.Proto, Recovery: recovery, PostQPeak: postPeak}
	var total int64
	for _, f := range fs {
		total += f.conn.Received()
		st := f.conn.Sender.Stats()
		pt.RtxBytes += st.RtxBytes
		pt.Timeouts += st.Timeouts
	}
	pt.Goodput = float64(total-tailBase) * 8 / cfg.Tail.Seconds()
	pt.Drops = bott.Drops + recv.NIC().Drops
	pt.Events = e.Sim.Executed()
	return pt
}

// RobustnessSweep runs every (scenario, protocol) pair as independent
// pool trials; results come back in scenario-major order. A nil pool
// runs serially with base seed cfg.Seed.
func RobustnessSweep(ctx context.Context, p *runner.Pool, cfg RobustnessConfig,
	scenarios []FaultScenario, protos []Proto) ([]RobustnessPoint, error) {
	if p == nil {
		p = runner.Serial(cfg.Seed)
	}
	n := len(scenarios) * len(protos)
	rs, _, err := runner.Map(ctx, p, n, func(i int, seed int64) (RobustnessPoint, error) {
		sc := scenarios[i/len(protos)]
		c := cfg
		c.Proto = protos[i%len(protos)]
		c.Seed = seed
		c.Blackout = sc.Blackout
		c.Loss = sc.Loss
		c.Burst = sc.Burst
		c.mintTelemetry(sc.Name + "-" + string(c.Proto))
		pt := Robustness(c)
		pt.Scenario = sc.Name
		return pt, nil
	})
	return rs, err
}

// FormatRobustness renders the comparison table.
func FormatRobustness(rs []RobustnessPoint) string {
	t := stats.Table{
		Title: "Failure recovery (beyond-paper: §4 robustness under injected faults)",
		Header: []string{"scenario", "proto", "recovery(ms)", "postQpeak(KB)",
			"goodput(Mbps)", "rtx(KB)", "timeouts", "drops"},
	}
	for _, r := range rs {
		rec := "-"
		if r.Recovery >= 0 {
			rec = stats.F(r.Recovery.Seconds()*1e3, 1)
		}
		t.AddRow(r.Scenario, string(r.Proto), rec,
			stats.F(float64(r.PostQPeak)/1024, 1), stats.Mbps(r.Goodput),
			stats.F(float64(r.RtxBytes)/1024, 1),
			fmt.Sprint(r.Timeouts), fmt.Sprint(r.Drops))
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("expected: TFC survives blackouts with bounded delimiter-miss backoff, recovering within one MinRTO (short cut) or off the preserved backlog's ACK clock (long cut) at a fraction of TCP's retransmitted bytes and with no full-buffer overshoot; under sustained wire loss the zero-queue design shows its cost — TFC's small windows leave no dup-ACK cushion, so every burst stalls a flow for a full RTO where deep-window TCP rides fast retransmit\n")
	return b.String()
}
