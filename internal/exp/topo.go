// Package exp contains one runner per table/figure of the paper's
// evaluation (Figs 6–16), plus the ablations called out in DESIGN.md.
// Each runner builds its topology, drives the workload, and returns a
// typed Result whose String() renders the same rows/series the paper
// reports.
package exp

import (
	"fmt"
	"runtime"

	"tfcsim/internal/core"
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/telemetry"
	"tfcsim/internal/transport"
	"tfcsim/internal/workload"
)

// Proto re-exports the workload protocol selector (a transport registry
// key).
type Proto = workload.Proto

// Protocol constants.
const (
	TFC     = workload.TFC
	TCP     = workload.TCP
	DCTCP   = workload.DCTCP
	CREDIT  = workload.CREDIT
	BFC     = workload.BFC
	TINYTCP = workload.TINYTCP
)

// AllProtos lists the protocols compared throughout the evaluation: every
// registered transport flagged for comparison, in sorted name order. An
// out-of-tree transport registered with Compare set joins the full
// experiment matrix without any edits here.
var AllProtos = compareProtos()

func compareProtos() []Proto {
	var ps []Proto
	for _, n := range transport.CompareNames() {
		ps = append(ps, Proto(n))
	}
	return ps
}

// Env is a built topology plus its protocol attachments.
type Env struct {
	Sim      *sim.Simulator
	Net      *netsim.Network
	Hosts    []*netsim.Host
	Switches []*netsim.Switch
	// Attach is the transport's switch-side attachment state, as returned
	// by its registry Factory.Attach (nil for host-only transports).
	Attach any
	// TFCState is Attach narrowed to TFC's per-switch state; empty for
	// other transports (kept as a typed convenience for the ablations and
	// claims that inspect token-bucket internals).
	TFCState map[*netsim.Switch]*core.SwitchState
	Dialer   *workload.Dialer

	// plan[node] is the node's natural partition group, recorded by the
	// topology builder via place: the maximal decomposition the topology
	// supports (one group per leaf subtree, pod, rack, ...). finish folds
	// groups onto the requested shard count round-robin. Builders that
	// never call place have no parallel decomposition and run
	// sequentially regardless of TopoConfig.Shards.
	plan       map[netsim.NodeID]int
	planGroups int
}

// place records the natural partition group for nodes (see Env.plan).
func (e *Env) place(group int, nodes ...netsim.Node) {
	if e.plan == nil {
		e.plan = make(map[netsim.NodeID]int)
	}
	for _, n := range nodes {
		e.plan[n.ID()] = group
	}
	if group+1 > e.planGroups {
		e.planGroups = group + 1
	}
}

// TopoConfig carries the knobs shared by all topology builders.
type TopoConfig struct {
	Proto Proto
	// Seed for the deterministic RNG.
	Seed int64
	// Shards selects the execution engine. 0 or 1 (the default) runs the
	// classic sequential simulator. >= 2 partitions the topology into up
	// to that many shards driven in parallel by the conservative engine
	// (sim.Group, DESIGN.md §10); -1 means "auto": as many shards as the
	// topology naturally decomposes into, capped at GOMAXPROCS. The
	// shard count is clamped to the builder's natural decomposition
	// (e.g. one group per Testbed leaf subtree or fat-tree pod), and the
	// output is byte-identical at every setting. Builders without a
	// parallel decomposition (MultiBottleneck) and workloads whose
	// bookkeeping is shared across sender shards (Incast, Benchmark)
	// ignore the knob and stay sequential.
	Shards int
	// HostJitter is the max uniform host processing delay (default 10us;
	// real hosts have it, and TFC's rtt_b min-filter relies on it, §4.5).
	HostJitter sim.Time
	// Switch config for TFC (ablations, rho0, callbacks).
	TFC core.SwitchConfig
	// Knobs, when non-nil, is the switch-side knob payload handed to the
	// transport's registry Attach verbatim (e.g. *bfc.SwitchKnobs). When
	// nil, TFC falls back to the embedded TFC field; other transports get
	// their defaults.
	Knobs any
	// MinRTO for senders (default 200ms).
	MinRTO sim.Time
	// Telemetry, when non-nil, is this trial's telemetry sink. The builder
	// binds it to the simulator and instruments the forwarding path, the
	// protocol attachments, and every sender the Dialer creates. Nil (the
	// default) disables all instrumentation. A trial sink serves exactly
	// one environment; sweeps mint one per cell via TelemetryC instead.
	Telemetry *telemetry.Trial
	// TelemetryC, when non-nil, is the run's collector: grid sweeps mint
	// one keyed Trial per cell from it (key = TelemetryKey + "/" + cell
	// descriptor). Ignored when Telemetry is already set.
	TelemetryC *telemetry.Collector
	// TelemetryKey prefixes the trial keys sweeps mint from TelemetryC.
	TelemetryKey string
}

// mintTelemetry fills Telemetry from TelemetryC under the cell's key.
// No-op when Telemetry is already set or there is no collector.
func (c *TopoConfig) mintTelemetry(cell string) {
	if c.Telemetry != nil || c.TelemetryC == nil {
		return
	}
	key := cell
	if c.TelemetryKey != "" {
		key = c.TelemetryKey + "/" + cell
	}
	c.Telemetry = c.TelemetryC.Trial(key)
}

func (c *TopoConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HostJitter == 0 {
		c.HostJitter = 10 * sim.Microsecond
	}
}

// transportKnobs resolves the switch-side knob payload for the selected
// transport: an explicit Knobs value wins; TFC defaults to the embedded
// SwitchConfig so the ablation call sites keep working unchanged.
func (c *TopoConfig) transportKnobs() any {
	if c.Knobs != nil {
		return c.Knobs
	}
	if c.Proto == TFC {
		return &c.TFC
	}
	return nil
}

func newEnv(cfg *TopoConfig) *Env {
	cfg.fill()
	s := sim.New(cfg.Seed)
	cfg.Telemetry.Bind(s)
	return &Env{
		Sim:      s,
		Net:      netsim.NewNetwork(s),
		TFCState: make(map[*netsim.Switch]*core.SwitchState),
		Dialer: &workload.Dialer{
			Sim: s, Proto: cfg.Proto, MinRTO: cfg.MinRTO,
			Probe: cfg.Telemetry.DialProbe,
		},
	}
}

func (e *Env) newHost(name string, jitter sim.Time) *netsim.Host {
	h := e.Net.NewHost(name)
	h.ProcJitter = jitter
	e.Hosts = append(e.Hosts, h)
	return h
}

func (e *Env) newSwitch(name string) *netsim.Switch {
	sw := e.Net.NewSwitch(name)
	e.Switches = append(e.Switches, sw)
	return sw
}

// finish computes routes, attaches the selected transport's switch-side
// machinery through the registry, and instruments everything with the
// trial's telemetry sink (if any). No per-protocol wiring lives here:
// registering a transport is all it takes to run it on any topology.
func (e *Env) finish(cfg *TopoConfig, markRate netsim.Rate) {
	e.Net.ComputeRoutes()
	e.partition(cfg)
	telemetry.InstrumentNetwork(cfg.Telemetry, e.Net)
	f, err := transport.Lookup(string(cfg.Proto))
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	if f.Attach == nil {
		return
	}
	e.Attach = f.Attach(transport.AttachConfig{
		Sim: e.Sim, Switches: e.Switches, MarkRate: markRate,
		Knobs: cfg.transportKnobs(),
		Probe: cfg.Telemetry.SwitchProbe(string(cfg.Proto)),
	})
	if states, ok := e.Attach.(map[*netsim.Switch]*core.SwitchState); ok {
		e.TFCState = states
	}
	telemetry.RegisterTransportGauges(cfg.Telemetry, e.Attach, e.Switches)
}

// partition folds the builder's placement plan onto cfg.Shards shards and
// splits the network. It runs between route computation and transport
// attachment: attachments and dialed connections bind to node simulators,
// which must already be the shard simulators by then.
func (e *Env) partition(cfg *TopoConfig) {
	n := cfg.Shards
	if n == 0 || n == 1 || e.planGroups < 2 {
		return
	}
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > e.planGroups {
		n = e.planGroups
	}
	if n < 2 {
		return
	}
	assign := make([]int, len(e.Hosts)+len(e.Switches))
	for id := range assign {
		g, ok := e.plan[netsim.NodeID(id)]
		if !ok {
			panic(fmt.Sprintf("exp: node %d has no shard placement", id))
		}
		assign[id] = g % n
	}
	if err := e.Net.Partition(assign, n); err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
}

// Testbed paper parameters (§6.1.1): 256 KB per port, 1 Gbps.
const (
	TestbedBuf  = 256 << 10
	TestbedRate = netsim.Gbps
)

// Testbed builds the paper's Fig 4 testbed: core switch NF0, three leaf
// switches NF1–NF3, three hosts per leaf (H1–H9), all 1 Gbps with 256 KB
// port buffers. Hosts[i] is H(i+1).
func Testbed(cfg TopoConfig) *Env {
	e := newEnv(&cfg)
	nf0 := e.newSwitch("NF0")
	// Natural decomposition for sharded runs: one group per leaf subtree
	// (leaf switch plus its hosts), the core riding with the first.
	e.place(0, nf0)
	link := netsim.LinkConfig{
		Rate: TestbedRate, Delay: 5 * sim.Microsecond,
		BufA: TestbedBuf, BufB: TestbedBuf,
	}
	for l := 1; l <= 3; l++ {
		leaf := e.newSwitch("NF" + string(rune('0'+l)))
		e.place(l-1, leaf)
		e.Net.Connect(leaf, nf0, link)
		for j := 0; j < 3; j++ {
			h := e.newHost("H", cfg.HostJitter)
			e.place(l-1, h)
			// Host NICs are not buffer-limited (senders are window-limited).
			e.Net.Connect(h, leaf, netsim.LinkConfig{
				Rate: TestbedRate, Delay: 5 * sim.Microsecond, BufB: TestbedBuf,
			})
		}
	}
	e.finish(&cfg, TestbedRate)
	return e
}

// Star builds n sender hosts and one receiver behind a single switch.
// Used by the incast experiments; rate/buffer configurable.
func Star(cfg TopoConfig, n int, rate netsim.Rate, buf int) (*Env, []*netsim.Host, *netsim.Host, *netsim.Port) {
	e := newEnv(&cfg)
	sw := e.newSwitch("sw")
	// Natural decomposition: the switch and receiver anchor group 0,
	// every sender host is its own group (folded round-robin on the
	// requested shard count).
	e.place(0, sw)
	link := netsim.LinkConfig{Rate: rate, Delay: 5 * sim.Microsecond, BufA: buf, BufB: buf}
	var senders []*netsim.Host
	for i := 0; i < n; i++ {
		h := e.newHost("s", cfg.HostJitter)
		e.place(1+i, h)
		e.Net.Connect(h, sw, link)
		senders = append(senders, h)
	}
	recv := e.newHost("recv", cfg.HostJitter)
	e.place(0, recv)
	e.Net.Connect(sw, recv, netsim.LinkConfig{
		Rate: rate, Delay: 5 * sim.Microsecond, BufA: buf,
	})
	e.finish(&cfg, rate)
	return e, senders, recv, sw.PortTo(recv.ID())
}

// MultiBottleneck builds the paper's Fig 5 work-conserving topology:
// host1 -> S1 -> S2; host2, host3, host4 attach to S2. The two potential
// bottlenecks are the S1->S2 uplink and the S2->host3 downlink.
type MultiBottleneckEnv struct {
	*Env
	H1, H2, H3, H4 *netsim.Host
	S1, S2         *netsim.Switch
	Uplink         *netsim.Port // S1 -> S2
	Downlink       *netsim.Port // S2 -> host3
}

// MultiBottleneck constructs the Fig 5 environment.
func MultiBottleneck(cfg TopoConfig) *MultiBottleneckEnv {
	e := newEnv(&cfg)
	s1 := e.newSwitch("S1")
	s2 := e.newSwitch("S2")
	link := netsim.LinkConfig{
		Rate: TestbedRate, Delay: 5 * sim.Microsecond,
		BufA: TestbedBuf, BufB: TestbedBuf,
	}
	h1 := e.newHost("h1", cfg.HostJitter)
	h2 := e.newHost("h2", cfg.HostJitter)
	h3 := e.newHost("h3", cfg.HostJitter)
	h4 := e.newHost("h4", cfg.HostJitter)
	e.Net.Connect(h1, s1, link)
	e.Net.Connect(s1, s2, link)
	e.Net.Connect(h2, s2, link)
	e.Net.Connect(h3, s2, link)
	e.Net.Connect(h4, s2, link)
	e.finish(&cfg, TestbedRate)
	return &MultiBottleneckEnv{
		Env: e, H1: h1, H2: h2, H3: h3, H4: h4, S1: s1, S2: s2,
		Uplink:   s1.PortTo(s2.ID()),
		Downlink: s2.PortTo(h3.ID()),
	}
}

// LeafSpine builds the large-scale simulation topology of §6.2.2:
// `racks` leaf switches with `perRack` servers each, 1 Gbps downlinks and
// one 10 Gbps uplink per leaf to a single spine, 20 µs link latency
// (4-hop inter-rack RTT 160 µs, 2-hop intra-rack RTT 80 µs).
func LeafSpine(cfg TopoConfig, racks, perRack int, buf int) *Env {
	e := newEnv(&cfg)
	spine := e.newSwitch("spine")
	// Natural decomposition: one group per rack, the spine with rack 0.
	e.place(0, spine)
	for r := 0; r < racks; r++ {
		leaf := e.newSwitch("leaf")
		e.place(r, leaf)
		e.Net.Connect(leaf, spine, netsim.LinkConfig{
			Rate: 10 * netsim.Gbps, Delay: 20 * sim.Microsecond,
			BufA: buf, BufB: buf,
		})
		for j := 0; j < perRack; j++ {
			h := e.newHost("h", cfg.HostJitter)
			e.place(r, h)
			e.Net.Connect(h, leaf, netsim.LinkConfig{
				Rate: netsim.Gbps, Delay: 20 * sim.Microsecond, BufB: buf,
			})
		}
	}
	e.finish(&cfg, 10*netsim.Gbps)
	return e
}

// faucet keeps a connection's send queue topped up while active,
// modelling a long-lived (or on-off) flow.
type faucet struct {
	conn   *workload.Conn
	active bool
	chunk  int64
}

// newFaucet dials a connection that refills itself whenever drained.
func newFaucet(d *workload.Dialer, src, dst *netsim.Host) *faucet {
	f := &faucet{chunk: 1 << 20}
	f.conn = d.Dial(src, dst, func() {
		if f.active {
			f.conn.Sender.Send(f.chunk)
		}
	}, nil)
	return f
}

// Start opens the connection and begins sending.
func (f *faucet) Start() {
	f.active = true
	f.conn.Sender.Open()
	f.conn.Sender.Send(f.chunk)
}

// Resume re-activates an inactive faucet.
func (f *faucet) Resume() {
	if f.active {
		return
	}
	f.active = true
	f.conn.Sender.Send(f.chunk)
}

// Pause stops feeding; in-flight data drains naturally (the flow becomes
// "silent" in the paper's terms, not closed).
func (f *faucet) Pause() { f.active = false }
