package exp

import (
	"context"
	"fmt"
	"io"

	"tfcsim/internal/netsim"
	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
	"tfcsim/internal/stats"
	"tfcsim/internal/trace"
	"tfcsim/internal/workload"
)

// IncastConfig parameterizes the incast experiments. Fig 12 (testbed):
// 1 Gbps, 256 KB buffer, 256 KB blocks, 5–100 senders, TFC vs DCTCP vs
// TCP. Fig 15 (large-scale): 10 Gbps, 512 KB buffer, {64,128,256} KB
// blocks, up to 400 senders, TFC vs TCP.
type IncastConfig struct {
	TopoConfig
	Senders    int
	Rate       netsim.Rate
	BufBytes   int
	BlockBytes int64
	Rounds     int
	// MaxDuration bounds the run (collapsed TCP can take very long).
	MaxDuration sim.Time
	// QueueSamplePeriod for avg/max queue reporting (default 1ms).
	QueueSamplePeriod sim.Time
}

func (c *IncastConfig) fill() {
	if c.Rate == 0 {
		c.Rate = netsim.Gbps
	}
	if c.BufBytes == 0 {
		c.BufBytes = TestbedBuf
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 256 << 10
	}
	if c.Rounds == 0 {
		c.Rounds = 20
	}
	if c.MaxDuration == 0 {
		c.MaxDuration = 60 * sim.Second
	}
	if c.QueueSamplePeriod == 0 {
		c.QueueSamplePeriod = sim.Millisecond
	}
}

// IncastPoint is one (protocol, senders) measurement.
type IncastPoint struct {
	Proto      Proto
	Senders    int
	BlockBytes int64
	Goodput    float64 // application bits/s at the receiver over the run
	AvgQ       float64 // bytes
	MaxQ       int     // bytes
	Drops      int64
	Timeouts   int64
	MaxTOBlock float64 // max timeouts per block over flows (Fig 15b)
	Rounds     int
	Elapsed    sim.Time
	Events     uint64 // simulator events executed by this trial
}

// SimEvents reports the trial's event count to the runner pool.
func (p IncastPoint) SimEvents() uint64 { return p.Events }

// Incast runs one incast configuration.
func Incast(cfg IncastConfig) IncastPoint {
	cfg.fill()
	// The incast workload's round bookkeeping (workload.Incast.pending,
	// RoundsDone) is updated from every sender's OnDrain callback; under
	// sharded execution those fire on different shard goroutines. The
	// topology would decompose, the workload does not — force the
	// sequential engine, so a -shards run of fig12/fig15 is trivially
	// byte-identical to the sequential one.
	cfg.Shards = 0
	e, senders, recv, bott := Star(cfg.TopoConfig, cfg.Senders, cfg.Rate, cfg.BufBytes)
	in := workload.NewIncast(workload.IncastConfig{
		Dialer: e.Dialer, Senders: senders, Receiver: recv,
		BlockBytes: cfg.BlockBytes, Rounds: cfg.Rounds,
	})
	qs := stats.NewSampler(e.Sim, cfg.QueueSamplePeriod, func() float64 {
		return float64(bott.QueueBytes())
	})
	settle := 5 * sim.Millisecond
	in.Start(settle)
	// Run until all rounds complete or the cap hits.
	for e.Sim.Now() < cfg.MaxDuration && in.RoundsDone < cfg.Rounds && e.Sim.Live() > 0 {
		e.Sim.RunUntil(e.Sim.Now() + 10*sim.Millisecond)
	}
	qs.Stop()
	elapsed := e.Sim.Now() - settle
	if elapsed <= 0 {
		elapsed = 1
	}
	return IncastPoint{
		Proto:      cfg.Proto,
		Senders:    cfg.Senders,
		BlockBytes: cfg.BlockBytes,
		Goodput:    float64(in.BytesReceived()) * 8 / elapsed.Seconds(),
		AvgQ:       qs.Series.MeanV(),
		MaxQ:       bott.MaxQueue,
		Drops:      bott.Drops,
		Timeouts:   in.TotalTimeouts(),
		MaxTOBlock: in.MaxTimeoutsPerBlock(),
		Rounds:     in.RoundsDone,
		Elapsed:    elapsed,
		Events:     e.Sim.Executed(),
	}
}

// IncastSweep runs Incast across sender counts and protocols, fanning the
// (proto, senders) grid as independent trials over p's workers. Each trial
// runs with its pool-derived seed; results come back in grid order
// (protos outer, senders inner), so output is identical at any
// parallelism. A nil pool runs serially with base seed cfg.Seed.
func IncastSweep(ctx context.Context, p *runner.Pool, cfg IncastConfig, sendersList []int, protos []Proto) ([]IncastPoint, error) {
	if p == nil {
		p = runner.Serial(cfg.Seed)
	}
	type cell struct {
		proto Proto
		n     int
	}
	var grid []cell
	for _, pr := range protos {
		for _, n := range sendersList {
			grid = append(grid, cell{pr, n})
		}
	}
	pts, _, err := runner.Map(ctx, p, len(grid), func(i int, seed int64) (IncastPoint, error) {
		c := cfg
		c.Proto = grid[i].proto
		c.Senders = grid[i].n
		c.Seed = seed
		c.mintTelemetry(fmt.Sprintf("%s-n%03d", c.Proto, c.Senders))
		return Incast(c), nil
	})
	return pts, err
}

// SaveIncastCSV writes an incast sweep as CSV into dir/name.
func SaveIncastCSV(dir, name string, points []IncastPoint) error {
	t := incastTable("", points)
	return trace.SaveTo(dir, name, func(w io.Writer) error {
		return trace.WriteTable(w, t)
	})
}

// FormatIncast renders Fig 12 (or one block size of Fig 15).
func FormatIncast(title string, points []IncastPoint) string {
	return incastTable(title, points).String()
}

func incastTable(title string, points []IncastPoint) *stats.Table {
	t := stats.Table{
		Title: title,
		Header: []string{"proto", "senders", "block", "goodput(Mbps)", "avgQ(KB)",
			"maxQ(KB)", "drops", "timeouts", "maxTO/block", "rounds"},
	}
	for _, p := range points {
		t.AddRow(string(p.Proto), fmt.Sprint(p.Senders),
			fmt.Sprintf("%dKB", p.BlockBytes>>10),
			stats.Mbps(p.Goodput), stats.F(p.AvgQ/1024, 1),
			stats.F(float64(p.MaxQ)/1024, 1), fmt.Sprint(p.Drops),
			fmt.Sprint(p.Timeouts), stats.F(p.MaxTOBlock, 2), fmt.Sprint(p.Rounds))
	}
	return &t
}
