package exp

import (
	"context"
	"fmt"
	"strings"

	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
	"tfcsim/internal/stats"
)

// ChurnConfig parameterizes the on-off churn experiment (beyond-paper
// extension of the paper's §2 motivation): Storm-style connections that
// transmit intermittently. A set of persistent connections toggles
// between active and silent with exponential on/off periods; the link
// should stay near-fully utilized by whoever is active, with near-zero
// queues — the silent-flow reclamation D3-style schemes fail at.
type ChurnConfig struct {
	TopoConfig
	Flows    int      // persistent connections (default 8)
	OnMean   sim.Time // mean active period (default 5ms)
	OffMean  sim.Time // mean silent period (default 5ms)
	Duration sim.Time // default 500ms
	Warmup   sim.Time
}

// ChurnResult summarizes the run.
type ChurnResult struct {
	Proto       Proto
	Utilization float64 // fraction of expected active capacity achieved
	Goodput     float64 // bits/s at the receiver(s)
	AvgQ        float64
	MaxQ        int
	Drops       int64
	Timeouts    int64
	Events      uint64 // simulator events executed by this trial
}

// SimEvents reports the trial's event count to the runner pool.
func (r ChurnResult) SimEvents() uint64 { return r.Events }

// Churn runs the on-off workload for one protocol on the star topology.
func Churn(cfg ChurnConfig) ChurnResult {
	if cfg.Flows == 0 {
		cfg.Flows = 8
	}
	if cfg.OnMean == 0 {
		cfg.OnMean = 5 * sim.Millisecond
	}
	if cfg.OffMean == 0 {
		cfg.OffMean = 5 * sim.Millisecond
	}
	if cfg.Duration == 0 {
		cfg.Duration = 500 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Duration / 5
	}
	e, senders, recv, bott := Star(cfg.TopoConfig, cfg.Flows, TestbedRate, TestbedBuf)
	var fs []*faucet
	for _, h := range senders {
		f := newFaucet(e.Dialer, h, recv)
		// Small refill chunks so a Pause actually silences the flow within
		// ~1ms instead of draining a megabyte through the off-period.
		f.chunk = 64 << 10
		fs = append(fs, f)
		e.Sim.At(0, f.Start)
	}
	// Exponential on/off toggling per flow, independent.
	var schedule func(i int)
	schedule = func(i int) {
		f := fs[i]
		var mean sim.Time
		if f.active {
			mean = cfg.OnMean
		} else {
			mean = cfg.OffMean
		}
		d := sim.Time(e.Sim.Rand.ExpFloat64() * float64(mean))
		if d < 100*sim.Microsecond {
			d = 100 * sim.Microsecond
		}
		e.Sim.After(d, func() {
			if f.active {
				f.Pause()
			} else {
				f.Resume()
			}
			schedule(i)
		})
	}
	for i := range fs {
		schedule(i)
	}
	qs := stats.NewSampler(e.Sim, sim.Millisecond, func() float64 {
		return float64(bott.QueueBytes())
	})
	// Track how often at least one flow is active (the utilization
	// denominator: the link can only be used when someone has data).
	activeTime := 0.0
	last := e.Sim.Now()
	act := stats.NewSampler(e.Sim, 100*sim.Microsecond, func() float64 {
		now := e.Sim.Now()
		dt := (now - last).Seconds()
		last = now
		for _, f := range fs {
			if f.active || f.conn.Sender.Acked() < f.conn.Sender.Queued() {
				activeTime += dt
				return 1
			}
		}
		return 0
	})
	var base int64
	e.Sim.At(cfg.Warmup, func() {
		for _, f := range fs {
			base += f.conn.Received()
		}
		activeTime = 0
	})
	e.Sim.RunUntil(cfg.Duration)
	qs.Stop()
	act.Stop()
	var total int64
	var timeouts int64
	for _, f := range fs {
		total += f.conn.Received()
		timeouts += f.conn.Sender.Stats().Timeouts
	}
	res := ChurnResult{Proto: cfg.Proto}
	res.Goodput = float64(total-base) * 8 / (cfg.Duration - cfg.Warmup).Seconds()
	if activeTime > 0 {
		// Achievable payload capacity while anyone was active.
		achievable := float64(TestbedRate) * (1460.0 / 1538.0) * activeTime /
			(cfg.Duration - cfg.Warmup).Seconds()
		res.Utilization = res.Goodput / achievable
	}
	res.AvgQ = qs.Series.After(cfg.Warmup).MeanV()
	res.MaxQ = bott.MaxQueue
	res.Drops = bott.Drops
	res.Timeouts = timeouts
	res.Events = e.Sim.Executed()
	return res
}

// ChurnAll runs the on-off workload for each protocol as independent
// pool trials; results come back in protos order. A nil pool runs
// serially with base seed cfg.Seed.
func ChurnAll(ctx context.Context, p *runner.Pool, cfg ChurnConfig, protos []Proto) ([]ChurnResult, error) {
	if p == nil {
		p = runner.Serial(cfg.Seed)
	}
	rs, _, err := runner.Map(ctx, p, len(protos), func(i int, seed int64) (ChurnResult, error) {
		c := cfg
		c.Proto = protos[i]
		c.Seed = seed
		c.mintTelemetry(string(c.Proto))
		return Churn(c), nil
	})
	return rs, err
}

// FormatChurn renders the comparison table.
func FormatChurn(rs []ChurnResult) string {
	t := stats.Table{
		Title: "On-off churn (beyond-paper: Storm-style silent flows, §2 motivation)",
		Header: []string{"proto", "goodput(Mbps)", "util-of-active", "avgQ(KB)",
			"maxQ(KB)", "drops", "timeouts"},
	}
	for _, r := range rs {
		t.AddRow(string(r.Proto), stats.Mbps(r.Goodput), stats.F(r.Utilization, 2),
			stats.F(r.AvgQ/1024, 1), stats.F(float64(r.MaxQ)/1024, 1),
			fmt.Sprint(r.Drops), fmt.Sprint(r.Timeouts))
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("expected: TFC reclaims silent flows' shares within ~1 RTT (E counts only active rounds), keeping utilization high at near-zero queue; window re-acquisition makes resumes burst-free\n")
	return b.String()
}
