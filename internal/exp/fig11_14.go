package exp

import (
	"fmt"
	"strings"

	"tfcsim/internal/sim"
	"tfcsim/internal/stats"
)

// WorkConservingConfig parameterizes Fig 11 (the Fig 5 topology): host1
// sends n1 flows to host4 and n2 flows to host3; host2 sends n3 flows to
// host3. Two bottlenecks: the S1->S2 uplink (n1+n2 flows) and the
// S2->host3 downlink (n2+n3 flows). Work conservation requires both links
// to stay near full even though the downlink's n2 flows are clamped by
// the uplink.
type WorkConservingConfig struct {
	TopoConfig
	N1, N2, N3 int
	Duration   sim.Time
	// Warmup excluded from goodput accounting.
	Warmup sim.Time
	// DisableAdjust runs the ablation (A1): token adjustment off.
	DisableAdjust bool
}

// WorkConservingResult is the Fig 11 output.
type WorkConservingResult struct {
	UplinkGoodput   float64 // bits/s through S1->S2 (Fig 11a "S1")
	DownlinkGoodput float64 // bits/s through S2->host3 (Fig 11a "S2")
	UplinkQueue     stats.TimeSeries
	DownlinkQueue   stats.TimeSeries
	UplinkAvgQ      float64
	DownlinkAvgQ    float64
	Drops           int64
	Events          uint64 // simulator events executed by this trial
}

// SimEvents reports the trial's event count to the runner pool.
func (r *WorkConservingResult) SimEvents() uint64 { return r.Events }

// WorkConserving runs the Fig 11 experiment (TFC).
func WorkConserving(cfg WorkConservingConfig) *WorkConservingResult {
	if cfg.N1 == 0 {
		cfg.N1, cfg.N2, cfg.N3 = 8, 2, 2
	}
	if cfg.Duration == 0 {
		cfg.Duration = 500 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Duration / 4
	}
	cfg.Proto = TFC
	cfg.TFC.DisableAdjust = cfg.DisableAdjust
	e := MultiBottleneck(cfg.TopoConfig)

	start := func(f *faucet) { e.Sim.At(0, f.Start) }
	for i := 0; i < cfg.N1; i++ {
		start(newFaucet(e.Dialer, e.H1, e.H4))
	}
	for i := 0; i < cfg.N2; i++ {
		start(newFaucet(e.Dialer, e.H1, e.H3))
	}
	for i := 0; i < cfg.N3; i++ {
		start(newFaucet(e.Dialer, e.H2, e.H3))
	}

	res := &WorkConservingResult{}
	upQ := stats.NewSampler(e.Sim, sim.Millisecond, func() float64 { return float64(e.Uplink.QueueBytes()) })
	dnQ := stats.NewSampler(e.Sim, sim.Millisecond, func() float64 { return float64(e.Downlink.QueueBytes()) })

	var upBase, dnBase int64
	e.Sim.At(cfg.Warmup, func() {
		upBase = e.Uplink.TxFrames
		dnBase = e.Downlink.TxFrames
	})
	e.Sim.RunUntil(cfg.Duration)
	span := (cfg.Duration - cfg.Warmup).Seconds()
	res.UplinkGoodput = float64(e.Uplink.TxFrames-upBase) * 8 / span
	res.DownlinkGoodput = float64(e.Downlink.TxFrames-dnBase) * 8 / span
	res.UplinkQueue = upQ.Series
	res.DownlinkQueue = dnQ.Series
	res.UplinkAvgQ = upQ.Series.After(cfg.Warmup).MeanV()
	res.DownlinkAvgQ = dnQ.Series.After(cfg.Warmup).MeanV()
	res.Drops = e.Uplink.Drops + e.Downlink.Drops
	res.Events = e.Sim.Executed()
	return res
}

// FormatWorkConserving renders Fig 11 (optionally with the A1 ablation).
func FormatWorkConserving(full, ablated *WorkConservingResult) string {
	t := stats.Table{
		Title: "Fig 11 — work conserving (Fig 5 topology: n1=8 1->4, n2=2 1->3, n3=2 2->3)",
		Header: []string{"variant", "S1 uplink(Mbps)", "S2 downlink(Mbps)",
			"S1 avgQ(KB)", "S2 avgQ(KB)", "drops"},
	}
	row := func(name string, r *WorkConservingResult) {
		t.AddRow(name, stats.Mbps(r.UplinkGoodput), stats.Mbps(r.DownlinkGoodput),
			stats.F(r.UplinkAvgQ/1024, 2), stats.F(r.DownlinkAvgQ/1024, 2),
			fmt.Sprint(r.Drops))
	}
	row("TFC", full)
	if ablated != nil {
		row("TFC no-adjust (A1)", ablated)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("paper shape: both bottlenecks ~910-940 Mbps, queues ~2KB (one packet); without adjustment the downlink strands the uplink-clamped flows' share\n")
	return b.String()
}

// Rho0SweepConfig parameterizes Fig 14: 5 flows (H1-H5) to H6; rho0 swept
// from 0.90 to 1.00; goodput at the receiver and queue at the NF2->H6
// port are reported.
type Rho0SweepConfig struct {
	TopoConfig
	Rho0s    []float64
	Duration sim.Time
	Warmup   sim.Time
}

// Rho0Point is one sweep point.
type Rho0Point struct {
	Rho0    float64
	Goodput float64 // receiver application goodput, bits/s
	AvgQ    float64 // bytes
	MaxQ    int
	Drops   int64
	Events  uint64 // simulator events executed for this point
}

// SimEvents reports the point's event count to the runner pool.
func (p Rho0Point) SimEvents() uint64 { return p.Events }

// Rho0Sweep runs Fig 14.
func Rho0Sweep(cfg Rho0SweepConfig) []Rho0Point {
	if len(cfg.Rho0s) == 0 {
		cfg.Rho0s = []float64{0.90, 0.92, 0.94, 0.96, 0.98, 1.00}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 400 * sim.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Duration / 4
	}
	cfg.Proto = TFC
	var out []Rho0Point
	for _, rho := range cfg.Rho0s {
		tc := cfg.TopoConfig
		tc.TFC.Rho0 = rho
		tc.mintTelemetry(fmt.Sprintf("rho%.2f", rho))
		e := Testbed(tc)
		h6 := e.Hosts[5]
		bott := e.Switches[2].PortTo(h6.ID()) // NF2 -> H6
		var faucets []*faucet
		for i := 0; i < 5; i++ {
			src := e.Hosts[i]
			if src == h6 {
				continue
			}
			f := newFaucet(e.Dialer, src, h6)
			faucets = append(faucets, f)
			e.Sim.At(0, f.Start)
		}
		qs := stats.NewSampler(e.Sim, sim.Millisecond, func() float64 {
			return float64(bott.QueueBytes())
		})
		var base int64
		baseAt := func() int64 {
			var n int64
			for _, f := range faucets {
				n += f.conn.Received()
			}
			return n
		}
		e.Sim.At(cfg.Warmup, func() { base = baseAt() })
		e.Sim.RunUntil(cfg.Duration)
		span := (cfg.Duration - cfg.Warmup).Seconds()
		out = append(out, Rho0Point{
			Rho0:    rho,
			Goodput: float64(baseAt()-base) * 8 / span,
			AvgQ:    qs.Series.After(cfg.Warmup).MeanV(),
			MaxQ:    bott.MaxQueue,
			Drops:   bott.Drops,
			Events:  e.Sim.Executed(),
		})
	}
	return out
}

// FormatRho0Sweep renders Fig 14.
func FormatRho0Sweep(points []Rho0Point) string {
	t := stats.Table{
		Title:  "Fig 14 — impact of rho0 (5 flows -> H6)",
		Header: []string{"rho0", "goodput(Mbps)", "avg queue(KB)", "max queue(KB)", "drops"},
	}
	for _, p := range points {
		t.AddRow(stats.F(p.Rho0, 2), stats.Mbps(p.Goodput),
			stats.F(p.AvgQ/1024, 2), stats.F(float64(p.MaxQ)/1024, 1), fmt.Sprint(p.Drops))
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("paper shape: goodput rises ~880->940 Mbps with rho0; queue <1KB below 0.98, ~6KB at 1.00\n")
	return b.String()
}
