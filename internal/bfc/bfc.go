// Package bfc implements a Backpressure Flow Control baseline: per-hop,
// per-flow pause/resume signaling in the spirit of BFC (Goyal et al.,
// NSDI 2022). Switch ports track each flow's queue occupancy and send
// XOF (pause) control packets to the flow's source when it crosses a
// small threshold, releasing the pause with XON once the backlog drains.
// Senders run a fixed window with no congestion control of their own —
// the network, not the end host, meters admission.
//
// The reproduction is deliberately simplified relative to the real
// design: the substrate's switches have shared FIFO output queues, not
// per-flow queues, so pausing a flow cannot unblock others behind it in
// the same FIFO (no HoL isolation), and XOF targets the flow's source
// directly rather than hopping upstream one switch at a time. What it
// preserves is the control law — per-flow occupancy thresholds, pause
// timeouts against lost signals, and sub-RTT reaction at the congested
// hop — which is what the head-to-head experiments compare against TFC.
package bfc

import (
	"fmt"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/tcp"
	"tfcsim/internal/transport"
)

// Default sender knobs.
const (
	// DefaultWindow is the fixed send window: a little above the testbed
	// topologies' bandwidth-delay product, so a single unpaused flow can
	// fill a link while the per-flow backpressure stays in charge of
	// sharing.
	DefaultWindow = 16 << 10
	// DefaultPauseTimeout bounds how long a sender stays paused without a
	// refreshed XOF: a lost XON costs at most this long, after which the
	// sender probes and is re-paused if the congestion persists.
	DefaultPauseTimeout = 200 * sim.Microsecond
)

// Config parameterizes one BFC connection.
type Config struct {
	Sim   *sim.Simulator
	Local *netsim.Host // sender side
	Peer  *netsim.Host // receiver side
	Flow  netsim.FlowID

	MSS    int   // default transport.DefaultMSS
	Window int64 // fixed send window in bytes, default DefaultWindow

	MinRTO       sim.Time // default 200ms (matching the TCP baseline)
	MaxRTO       sim.Time // default 60s
	PauseTimeout sim.Time // default DefaultPauseTimeout

	// OnDrain fires every time all currently queued bytes become
	// acknowledged; OnComplete fires once on close-and-drained.
	OnDrain    func()
	OnComplete func()

	// Probe receives congestion telemetry, reusing the TCP probe shape:
	// Cwnd reports the (fixed) window, plus RTO / recovery / retransmit
	// events.
	Probe tcp.Probe
}

func (c *Config) fillDefaults() {
	if c.MSS == 0 {
		c.MSS = transport.DefaultMSS
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * sim.Second
	}
	if c.PauseTimeout == 0 {
		c.PauseTimeout = DefaultPauseTimeout
	}
}

// Sender states.
const (
	stateClosed = iota
	stateSynSent
	stateEstablished
	stateDone
)

// Sender is the sending half of a BFC connection: a fixed-window,
// ACK-clocked sender that obeys XOF/XON backpressure from switches.
// Loss recovery keeps TCP's machinery (fast retransmit on three dupacks,
// go-back-N RTO) because backpressure prevents congestion drops but not
// wire loss or link failures.
type Sender struct {
	cfg Config
	st  transport.Stats
	est *transport.RTTEstimator

	state   int
	sndUna  int64
	sndNxt  int64
	budget  int64 // total bytes handed to Send
	closing bool
	finSent bool

	dupacks int
	inFR    bool
	recover int64

	rto        *transport.RTOTimer
	rtoBackoff uint

	// Pause state: while paused the sender transmits nothing. pauseUntil
	// is the XOF expiry; an XON clears it early, a refreshed XOF extends
	// it, and the lazily re-armed pauseTimer resumes transmission when it
	// expires without either.
	paused     bool
	pauseUntil sim.Time
	pauseTimer sim.Timer

	// Pauses counts XOF signals received (sender-side stat).
	Pauses int64
}

// NewSender creates (and registers at the local host) the sending side.
func NewSender(cfg Config) *Sender {
	cfg.fillDefaults()
	s := &Sender{
		cfg: cfg,
		est: transport.NewRTTEstimator(cfg.MinRTO, cfg.MaxRTO, 0),
	}
	s.rto = transport.NewRTOTimer(cfg.Sim, s.onRTO)
	cfg.Local.Register(cfg.Flow, s)
	return s
}

// Dial creates a sender and its matching receiver (the plain cumulative-
// ACK TCP receiver — BFC needs nothing receiver-side), registering both.
func Dial(cfg Config) (*Sender, *tcp.Receiver) {
	s := NewSender(cfg)
	r := tcp.NewReceiver(cfg.Peer.Sim(), cfg.Peer, cfg.Local, cfg.Flow)
	return s, r
}

// Stats exposes the sender's statistics record.
func (s *Sender) Stats() *transport.Stats { return &s.st }

// Acked returns cumulative acknowledged bytes.
func (s *Sender) Acked() int64 { return s.sndUna }

// Queued returns cumulative bytes handed to Send.
func (s *Sender) Queued() int64 { return s.budget }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() sim.Time { return s.est.SRTT() }

// Paused reports whether the sender is currently backpressured.
func (s *Sender) Paused() bool { return s.paused }

// Open sends the SYN.
func (s *Sender) Open() {
	if s.state != stateClosed {
		return
	}
	s.state = stateSynSent
	s.st.Start = s.cfg.Sim.Now()
	s.sendSYN()
}

// Send queues n more bytes on the stream.
func (s *Sender) Send(n int64) {
	if n <= 0 || s.closing {
		return
	}
	s.budget += n
	if s.state == stateEstablished {
		s.trySend()
	}
}

// Close marks the stream finished; a FIN goes out once drained.
func (s *Sender) Close() {
	s.closing = true
	if s.state == stateEstablished && s.sndUna == s.budget {
		s.finish()
	}
}

func (s *Sender) flight() int64 { return s.sndNxt - s.sndUna }

func (s *Sender) sendSYN() {
	p := s.cfg.Local.NewPacket()
	*p = netsim.Packet{
		Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
		Flags: netsim.FlagSYN, SentAt: s.cfg.Sim.Now(), Window: netsim.WindowUnset,
	}
	s.cfg.Local.Send(p)
	s.armRTO()
}

func (s *Sender) mkData(seq int64, n int) *netsim.Packet {
	p := s.cfg.Local.NewPacket()
	*p = netsim.Packet{
		Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
		Seq: seq, Payload: n, SentAt: s.cfg.Sim.Now(), Window: netsim.WindowUnset,
	}
	return p
}

func (s *Sender) trySend() {
	if s.state != stateEstablished || s.paused {
		return
	}
	for s.sndNxt < s.budget {
		seg := int64(s.cfg.MSS)
		if rem := s.budget - s.sndNxt; rem < seg {
			seg = rem
		}
		if s.flight() > 0 && s.flight()+seg > s.cfg.Window {
			break
		}
		if s.st.FirstSend == 0 && s.st.BytesAcked == 0 {
			s.st.FirstSend = s.cfg.Sim.Now()
		}
		s.cfg.Local.Send(s.mkData(s.sndNxt, int(seg)))
		s.sndNxt += seg
	}
	if s.flight() > 0 && !s.rto.Armed() {
		s.armRTO()
	}
}

// retransmit resends one segment starting at seq without advancing sndNxt.
func (s *Sender) retransmit(seq int64) {
	seg := int64(s.cfg.MSS)
	if rem := s.budget - seq; rem < seg {
		seg = rem
	}
	if seg <= 0 {
		return
	}
	s.st.RtxBytes += seg
	if s.cfg.Probe != nil {
		s.cfg.Probe.Retransmit(s.cfg.Sim.Now(), s.cfg.Flow, seg)
	}
	s.cfg.Local.Send(s.mkData(seq, int(seg)))
}

func (s *Sender) armRTO() {
	// Clamp before shifting, exactly as the TCP sender does: a long
	// blackout's backoff must saturate at MaxRTO, not overflow.
	d := s.est.RTO()
	if d > s.cfg.MaxRTO>>s.rtoBackoff {
		d = s.cfg.MaxRTO
	} else {
		d <<= s.rtoBackoff
	}
	s.rto.Arm(d)
}

func (s *Sender) onRTO() {
	if s.state == stateDone {
		return
	}
	s.st.Timeouts++
	s.rtoBackoff++
	if s.cfg.Probe != nil {
		s.cfg.Probe.RTOFired(s.cfg.Sim.Now(), s.cfg.Flow, s.rtoBackoff)
	}
	if s.state == stateSynSent {
		s.sendSYN()
		return
	}
	if s.flight() <= 0 {
		return
	}
	// A pause riding into an RTO is stale information — the XOF refresh
	// chain is clearly broken (blackout, flushed queue) — so the timeout
	// overrides it. Without this a lost XON plus a lost retransmission
	// window could deadlock the flow.
	s.paused = false
	if s.inFR && s.cfg.Probe != nil {
		s.cfg.Probe.Recovery(s.cfg.Sim.Now(), s.cfg.Flow, false)
	}
	s.sndNxt = s.sndUna // go-back-N
	s.dupacks = 0
	s.inFR = false
	s.st.RtxBytes += minI64(int64(s.cfg.MSS), s.budget-s.sndUna)
	if s.cfg.Probe != nil {
		s.cfg.Probe.Retransmit(s.cfg.Sim.Now(), s.cfg.Flow, minI64(int64(s.cfg.MSS), s.budget-s.sndUna))
	}
	s.trySend()
	s.armRTO()
}

func (s *Sender) onXOF() {
	s.Pauses++
	s.paused = true
	s.pauseUntil = s.cfg.Sim.Now() + s.cfg.PauseTimeout
	if !s.pauseTimer.Active() {
		s.pauseTimer = s.cfg.Sim.At(s.pauseUntil, s.onPauseExpiry)
	}
	// An already-pending timer fires at or before the new deadline and
	// re-arms itself from onPauseExpiry — the RTOTimer lazy pattern.
}

func (s *Sender) onXON() {
	if !s.paused {
		return
	}
	s.paused = false
	s.trySend()
}

func (s *Sender) onPauseExpiry() {
	if !s.paused {
		return
	}
	if now := s.cfg.Sim.Now(); now < s.pauseUntil {
		s.pauseTimer = s.cfg.Sim.At(s.pauseUntil, s.onPauseExpiry)
		return
	}
	// Timeout without XON or refresh: probe onward. If the congestion is
	// still there, the first arriving packet triggers a fresh XOF.
	s.paused = false
	s.trySend()
}

// Deliver handles an incoming packet (XOF/XON, SYNACK, or ACK).
func (s *Sender) Deliver(pkt *netsim.Packet) {
	if s.state == stateDone {
		return
	}
	if pkt.Flags&netsim.FlagXOF != 0 {
		s.onXOF()
		return
	}
	if pkt.Flags&netsim.FlagXON != 0 {
		s.onXON()
		return
	}
	if pkt.Flags&netsim.FlagSYN != 0 && pkt.Flags&netsim.FlagACK != 0 {
		if s.state == stateSynSent {
			s.state = stateEstablished
			s.rtoBackoff = 0
			s.est.Observe(s.cfg.Sim.Now() - pkt.SentAt)
			s.rto.Stop()
			if s.cfg.Probe != nil {
				s.cfg.Probe.Cwnd(s.cfg.Sim.Now(), s.cfg.Flow, s.cfg.Window, s.cfg.Window)
			}
			s.trySend()
			if s.budget == 0 && s.closing {
				s.finish()
			}
		}
		return
	}
	if pkt.Flags&netsim.FlagACK == 0 {
		return
	}
	ack := pkt.Ack
	switch {
	case ack > s.sndUna:
		newly := ack - s.sndUna
		s.st.BytesAcked += newly
		s.est.Observe(s.cfg.Sim.Now() - pkt.SentAt)
		s.sndUna = ack
		if s.sndNxt < s.sndUna {
			s.sndNxt = s.sndUna
		}
		s.rtoBackoff = 0
		if s.inFR {
			if ack >= s.recover {
				s.inFR = false
				s.dupacks = 0
				if s.cfg.Probe != nil {
					s.cfg.Probe.Recovery(s.cfg.Sim.Now(), s.cfg.Flow, false)
				}
			} else {
				// Partial ACK: retransmit the next hole, stay in recovery.
				s.retransmit(s.sndUna)
			}
		} else {
			s.dupacks = 0
		}
		if s.flight() > 0 {
			s.armRTO()
		} else {
			s.rto.Stop()
		}
		s.trySend()
		if s.sndUna == s.budget {
			if s.cfg.OnDrain != nil {
				s.cfg.OnDrain()
			}
			if s.closing {
				s.finish()
			}
		}
	case ack == s.sndUna && s.flight() > 0:
		s.dupacks++
		if !s.inFR && s.dupacks == 3 {
			s.st.FastRtx++
			s.recover = s.sndNxt
			s.inFR = true
			if s.cfg.Probe != nil {
				s.cfg.Probe.Recovery(s.cfg.Sim.Now(), s.cfg.Flow, true)
			}
			s.retransmit(s.sndUna)
			s.armRTO()
		}
	}
}

func (s *Sender) finish() {
	if s.state == stateDone {
		return
	}
	s.state = stateDone
	if !s.finSent {
		s.finSent = true
		p := s.cfg.Local.NewPacket()
		*p = netsim.Packet{
			Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
			Flags: netsim.FlagFIN, Seq: s.sndNxt, SentAt: s.cfg.Sim.Now(),
			Window: netsim.WindowUnset,
		}
		s.cfg.Local.Send(p)
	}
	s.rto.Stop()
	s.st.Done = true
	s.st.Completed = s.cfg.Sim.Now()
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete()
	}
}

func (s *Sender) String() string {
	return fmt.Sprintf("bfc.Sender{flow=%d una=%d nxt=%d paused=%v}",
		s.cfg.Flow, s.sndUna, s.sndNxt, s.paused)
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
