package bfc

import (
	"testing"

	"tfcsim/internal/sim"
)

// FuzzFlowGate drives the pause/resume state machine with an arbitrary
// interleaving of arrivals, drains, pressure flips and clock advances,
// checking its documented invariants:
//
//   - occupancy never goes negative;
//   - XOF fires only at occupancy ≥ the effective threshold (Pause, or
//     Resume under pressure);
//   - XON fires only while paused, at occupancy ≤ Resume;
//   - two XOFs are never closer than RefreshGap.
func FuzzFlowGate(f *testing.F) {
	f.Add([]byte{0x10, 0x90, 0x10, 0x81, 0x41, 0x22})
	f.Add([]byte{0xff, 0xff, 0x00, 0x7f, 0x80, 0x01, 0x40})
	f.Fuzz(func(t *testing.T, ops []byte) {
		g := &FlowGate{Pause: 8 << 10, Resume: 4 << 10, RefreshGap: 50 * sim.Microsecond}
		var now sim.Time
		var lastXOF sim.Time
		sawXOF := false
		pressure := false
		for _, op := range ops {
			// Low 6 bits size the operation; the top 2 pick it.
			n := int64(op&0x3f) * 256
			switch op >> 6 {
			case 0: // advance the clock
				now += sim.Time(n) * sim.Microsecond / 16
			case 1: // flip port pressure
				pressure = !pressure
			case 2: // arrival
				occBefore := g.Occ()
				thresh := g.Pause
				if pressure && g.Resume < thresh {
					thresh = g.Resume
				}
				if g.Add(n, now, pressure) {
					if occBefore+n < thresh {
						t.Fatalf("XOF at occ %d below effective threshold %d", occBefore+n, thresh)
					}
					if sawXOF && now-lastXOF < g.RefreshGap {
						t.Fatalf("XOFs %v apart, gap %v", now-lastXOF, g.RefreshGap)
					}
					if !g.Paused() {
						t.Fatal("XOF emitted but gate not paused")
					}
					sawXOF = true
					lastXOF = now
				}
			case 3: // drain
				pausedBefore := g.Paused()
				if g.Drain(n) {
					if !pausedBefore {
						t.Fatal("XON while not paused")
					}
					if g.Occ() > g.Resume {
						t.Fatalf("XON at occ %d above Resume %d", g.Occ(), g.Resume)
					}
					if g.Paused() {
						t.Fatal("XON emitted but gate still paused")
					}
				}
			}
			if g.Occ() < 0 {
				t.Fatalf("occupancy went negative: %d", g.Occ())
			}
		}
	})
}
