package bfc

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/tcp"
)

// rig is a dumbbell with BFC attached: h1 --10G-- sw --1G-- h2, so queues
// form (and backpressure engages) at the sw->h2 bottleneck.
type rig struct {
	s      *sim.Simulator
	net    *netsim.Network
	h1, h2 *netsim.Host
	sw     *netsim.Switch
	bott   *netsim.Port
	hooks  []*Hook
}

func newRig(buf int) *rig {
	s := sim.New(42)
	net := netsim.NewNetwork(s)
	h1 := net.NewHost("h1")
	h2 := net.NewHost("h2")
	sw := net.NewSwitch("sw")
	net.Connect(h1, sw, netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 5 * sim.Microsecond})
	net.Connect(sw, h2, netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond, BufA: buf})
	net.ComputeRoutes()
	r := &rig{s: s, net: net, h1: h1, h2: h2, sw: sw}
	r.hooks = AttachSwitch(s, sw, nil)
	r.bott = sw.PortTo(h2.ID())
	return r
}

func (r *rig) conn(flow netsim.FlowID, opts ...func(*Config)) (*Sender, *tcp.Receiver) {
	cfg := Config{Sim: r.s, Local: r.h1, Peer: r.h2, Flow: flow}
	for _, o := range opts {
		o(&cfg)
	}
	return Dial(cfg)
}

func TestHandshakeAndTransfer(t *testing.T) {
	r := newRig(256 << 10)
	snd, rcv := r.conn(1)
	done := false
	snd.cfg.OnComplete = func() { done = true }
	r.s.At(0, func() {
		snd.Open()
		snd.Send(10 * 1460)
		snd.Close()
	})
	r.s.Run()
	if !done || !snd.Stats().Done {
		t.Fatal("transfer did not complete")
	}
	if rcv.Received() != 10*1460 {
		t.Fatalf("receiver got %d bytes, want %d", rcv.Received(), 10*1460)
	}
	if snd.Stats().Timeouts != 0 || snd.Stats().RtxBytes != 0 {
		t.Fatalf("clean path saw timeouts=%d rtx=%d", snd.Stats().Timeouts, snd.Stats().RtxBytes)
	}
}

func TestBulkGoodputUnderBackpressure(t *testing.T) {
	// A 10G sender into a 1G bottleneck pauses constantly, but the resume
	// threshold keeps ≥4KB of backlog at the port so it never goes idle:
	// goodput must stay at line rate even though the flow spends most of
	// its life XOF'd.
	r := newRig(256 << 10)
	const total = 20 << 20
	snd, rcv := r.conn(1)
	r.s.At(0, func() {
		snd.Open()
		snd.Send(total)
		snd.Close()
	})
	r.s.Run()
	if rcv.Received() != total {
		t.Fatalf("received %d, want %d", rcv.Received(), total)
	}
	fct := snd.Stats().FCT()
	goodput := float64(total) * 8 / fct.Seconds()
	if goodput < 0.88e9 || goodput > 0.955e9 {
		t.Fatalf("goodput = %.1f Mbps, want ~900-949", goodput/1e6)
	}
	if snd.Pauses == 0 {
		t.Fatal("rate mismatch never triggered a pause")
	}
}

func TestPauseKeepsQueueShallow(t *testing.T) {
	// Backpressure, not buffer depth, must bound the bottleneck queue:
	// with a 256KB buffer available, the standing queue stays within a
	// small multiple of the pause threshold and nothing is dropped.
	r := newRig(256 << 10)
	snd, _ := r.conn(1)
	r.s.At(0, func() { snd.Open(); snd.Send(20 << 20) })
	r.s.RunUntil(50 * sim.Millisecond)
	if r.bott.Drops != 0 {
		t.Fatalf("drops = %d, backpressure should prevent congestion loss", r.bott.Drops)
	}
	// Threshold + one window of in-flight slack: pause reaction is an
	// access-link RTT, during which at most a window more can land.
	limit := DefaultPauseBytes + DefaultWindow
	if r.bott.MaxQueue > limit {
		t.Fatalf("max queue %d bytes, want <= %d (pause threshold + window)",
			r.bott.MaxQueue, limit)
	}
	if h := r.swHook(); h.Pauses == 0 {
		t.Fatal("bottleneck hook emitted no XOFs")
	}
}

func (r *rig) swHook() *Hook {
	for _, h := range r.hooks {
		if h.Port() == r.bott {
			return h
		}
	}
	return nil
}

func TestTwoFlowSharing(t *testing.T) {
	r := newRig(256 << 10)
	const total = 50 << 20
	s1, _ := r.conn(1)
	s2, _ := r.conn(2)
	r.s.At(0, func() { s1.Open(); s1.Send(total) })
	r.s.At(0, func() { s2.Open(); s2.Send(total) })
	r.s.RunUntil(200 * sim.Millisecond)
	a1, a2 := s1.Acked(), s2.Acked()
	if a1 == 0 || a2 == 0 {
		t.Fatal("a flow starved completely")
	}
	// Per-flow thresholds pause the heavy hitter first, so sharing is much
	// tighter than drop-tail TCP's.
	ratio := float64(a1) / float64(a2)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("share ratio %.2f, want within 2x", ratio)
	}
	agg := float64(a1+a2) * 8 / r.s.Now().Seconds()
	if agg < 0.85e9 {
		t.Fatalf("aggregate %.1f Mbps, want > 850", agg/1e6)
	}
}

// xonDropper drops XON control packets while passing everything else —
// simulating a lost resume signal on the reverse path.
type xonDropper struct{ dropped int }

func (d *xonDropper) OnEnqueue(p *netsim.Packet, _ *netsim.Port) bool {
	if p.Flags&netsim.FlagXON != 0 {
		d.dropped++
		return false
	}
	return true
}

func TestPauseTimeoutRecoversLostXON(t *testing.T) {
	r := newRig(256 << 10)
	// The reverse port (sw->h1) carries only ACKs and XOF/XON — replacing
	// its BFC hook (which gates nothing there anyway) with an XON dropper
	// leaves pauses to expire by timeout alone.
	drop := &xonDropper{}
	r.sw.PortTo(r.h1.ID()).Hook = drop
	const total = 2 << 20
	snd, rcv := r.conn(1)
	done := false
	snd.cfg.OnComplete = func() { done = true }
	r.s.At(0, func() {
		snd.Open()
		snd.Send(total)
		snd.Close()
	})
	r.s.RunUntil(5 * sim.Second)
	if drop.dropped == 0 {
		t.Fatal("scenario never generated an XON to lose")
	}
	if !done || rcv.Received() != total {
		t.Fatalf("transfer stuck after lost XONs: done=%v received=%d", done, rcv.Received())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, sim.Time) {
		r := newRig(256 << 10)
		snd, _ := r.conn(1)
		r.s.At(0, func() { snd.Open(); snd.Send(5 << 20); snd.Close() })
		r.s.Run()
		return snd.Acked(), snd.Pauses, snd.Stats().Completed
	}
	a1, p1, c1 := run()
	a2, p2, c2 := run()
	if a1 != a2 || p1 != p2 || c1 != c2 {
		t.Fatalf("same-seed runs diverged: (%d,%d,%v) vs (%d,%d,%v)", a1, p1, c1, a2, p2, c2)
	}
}
