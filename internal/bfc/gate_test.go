package bfc

import (
	"testing"

	"tfcsim/internal/sim"
)

func newGate() *FlowGate {
	return &FlowGate{Pause: 8 << 10, Resume: 4 << 10, RefreshGap: 50 * sim.Microsecond}
}

func TestGatePauseAtThreshold(t *testing.T) {
	g := newGate()
	if g.Add(4<<10, 0, false) {
		t.Fatal("XOF below threshold")
	}
	if !g.Add(4<<10, 0, false) {
		t.Fatal("no XOF at threshold")
	}
	if !g.Paused() {
		t.Fatal("gate not paused after XOF")
	}
}

func TestGateRefreshGapSuppression(t *testing.T) {
	g := newGate()
	if !g.Add(8<<10, 100, false) {
		t.Fatal("no initial XOF")
	}
	// The burst right behind the pause must not re-signal within the gap...
	if g.Add(1500, 100+40*sim.Microsecond, false) {
		t.Fatal("XOF re-signaled within RefreshGap")
	}
	// ...but a refresh after the gap must go out (it defends a lost XOF).
	if !g.Add(1500, 100+60*sim.Microsecond, false) {
		t.Fatal("refresh XOF suppressed beyond RefreshGap")
	}
}

func TestGatePressureLowersThreshold(t *testing.T) {
	g := newGate()
	if g.Add(4<<10, 0, false) {
		t.Fatal("XOF at Resume occupancy without pressure")
	}
	g2 := newGate()
	if !g2.Add(4<<10, 0, true) {
		t.Fatal("no XOF at Resume occupancy under port pressure")
	}
}

func TestGateResumeAndClamp(t *testing.T) {
	g := newGate()
	g.Add(8<<10, 0, false)
	if g.Drain(2 << 10) {
		t.Fatal("XON above Resume")
	}
	if !g.Drain(2 << 10) {
		t.Fatal("no XON at Resume")
	}
	if g.Paused() {
		t.Fatal("still paused after XON")
	}
	// Duplicate drains (flushed queue) clamp at zero, never double-XON.
	if g.Drain(16 << 10) {
		t.Fatal("XON while not paused")
	}
	if g.Occ() != 0 {
		t.Fatalf("occupancy %d after over-drain, want 0", g.Occ())
	}
}
