package bfc

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// Default switch-side knobs. The pause threshold is a handful of frames —
// BFC reacts to per-flow queue build-up, not to deep standing queues —
// and the resume threshold at half of it gives the sender time to restart
// before the flow's backlog fully drains.
const (
	DefaultPauseBytes  = 8 << 10
	DefaultResumeBytes = 4 << 10
	DefaultRefreshGap  = 50 * sim.Microsecond
	// defaultPortPause is the aggregate-occupancy pressure threshold for
	// ports with unlimited buffers.
	defaultPortPause = 128 << 10
)

// SwitchKnobs configures the per-port backpressure hooks (the registry's
// Knobs payload for the "bfc" transport). Zero values select defaults.
type SwitchKnobs struct {
	PauseBytes  int64
	ResumeBytes int64
	RefreshGap  sim.Time
}

func (k *SwitchKnobs) fillDefaults() {
	if k.PauseBytes == 0 {
		k.PauseBytes = DefaultPauseBytes
	}
	if k.ResumeBytes == 0 {
		k.ResumeBytes = DefaultResumeBytes
	}
	if k.RefreshGap == 0 {
		k.RefreshGap = DefaultRefreshGap
	}
}

// PauseProbe observes pause/resume signals for the telemetry layer:
// invoked with paused=true for every XOF emitted and paused=false for
// every XON. Passed through the registry as the opaque attach probe.
type PauseProbe func(port *netsim.Port, flow netsim.FlowID, paused bool)

type flowState struct {
	gate FlowGate
	src  netsim.NodeID // flow source, the XOF/XON destination
}

// Hook implements per-flow backpressure at one switch output port. It
// tracks each flow's occupancy by counting admitted arrivals and
// predicting their departures (a FIFO at the port's current rate), and
// originates XOF/XON control packets toward flow sources through the
// switch's normal forwarding path.
//
// The substrate's ports are shared FIFOs, not the per-flow queues of the
// real BFC design, so occupancy here is bookkeeping alongside the queue
// rather than dedicated queue depth; predicted drains self-correct after
// queue flushes and rate changes because the gate clamps at zero.
type Hook struct {
	sim   *sim.Simulator
	sw    *netsim.Switch
	port  *netsim.Port
	knobs SwitchKnobs
	probe PauseProbe

	flows     map[netsim.FlowID]*flowState
	total     int64    // tracked occupancy across all flows (bytes)
	portPause int64    // aggregate pressure threshold
	drainFree sim.Time // predicted time the last counted byte leaves

	// Pauses and Resumes count emitted XOF and XON signals.
	Pauses  int64
	Resumes int64
}

// AttachSwitch installs BFC backpressure hooks on every port of sw,
// returning them in port order. Knobs may be nil for defaults.
func AttachSwitch(s *sim.Simulator, sw *netsim.Switch, knobs *SwitchKnobs) []*Hook {
	k := SwitchKnobs{}
	if knobs != nil {
		k = *knobs
	}
	k.fillDefaults()
	var hooks []*Hook
	for _, p := range sw.Ports() {
		pp := int64(defaultPortPause)
		if p.BufBytes > 0 {
			pp = int64(p.BufBytes) / 2
		}
		h := &Hook{
			sim: s, sw: sw, port: p, knobs: k,
			flows:     make(map[netsim.FlowID]*flowState),
			portPause: pp,
		}
		p.Hook = h
		hooks = append(hooks, h)
	}
	return hooks
}

// SetProbe wires a pause/resume observer into the hook.
func (h *Hook) SetProbe(p PauseProbe) { h.probe = p }

// Port returns the port this hook is attached to.
func (h *Hook) Port() *netsim.Port { return h.port }

// FlowOcc returns the tracked occupancy of one flow (0 if untracked).
func (h *Hook) FlowOcc(flow netsim.FlowID) int64 {
	if fs := h.flows[flow]; fs != nil {
		return fs.gate.Occ()
	}
	return 0
}

// OnEnqueue implements netsim.PortHook: count the arrival, signal XOF on
// threshold crossing, and schedule the predicted departure. It never
// drops — admission stays with the port's drop-tail check.
func (h *Hook) OnEnqueue(pkt *netsim.Packet, port *netsim.Port) bool {
	if pkt.Payload == 0 {
		return true // ACKs and XOF/XON control traffic are never gated
	}
	fb := pkt.FrameBytes()
	if port.BufBytes > 0 && port.QueueBytes()+fb > port.BufBytes {
		// Drop-tail will reject this packet right after the hook returns;
		// counting it would leak occupancy that never drains.
		return true
	}
	now := h.sim.Now()
	fs := h.flows[pkt.Flow]
	if fs == nil {
		fs = &flowState{gate: FlowGate{
			Pause: h.knobs.PauseBytes, Resume: h.knobs.ResumeBytes,
			RefreshGap: h.knobs.RefreshGap,
		}}
		h.flows[pkt.Flow] = fs
	}
	fs.src = pkt.Src
	h.total += int64(fb)
	if fs.gate.Add(int64(fb), now, h.total >= h.portPause) {
		h.Pauses++
		h.signal(pkt.Flow, fs.src, netsim.FlagXOF)
	}
	// Predict the departure of this frame: the counted backlog serializes
	// FIFO at the port's current rate. The prediction ignores link-down
	// intervals and mid-run rate changes; the error only shifts when the
	// drain event fires, and occupancy clamps at zero either way.
	if h.drainFree < now {
		h.drainFree = now
	}
	h.drainFree += port.Rate.TxTime(pkt.WireBytes())
	flow := pkt.Flow
	//tfcvet:allow hotalloc — per-packet drain timer closure: BFC is a comparison baseline outside the BENCH_2 alloc gate (which certifies the TFC forwarding path)
	h.sim.At(h.drainFree, func() { h.drain(flow, int64(fb)) })
	return true
}

func (h *Hook) drain(flow netsim.FlowID, fb int64) {
	h.total -= fb
	if h.total < 0 {
		h.total = 0
	}
	fs := h.flows[flow]
	if fs == nil {
		return
	}
	if fs.gate.Drain(fb) {
		h.Resumes++
		h.signal(flow, fs.src, netsim.FlagXON)
	}
	if fs.gate.Occ() == 0 && !fs.gate.Paused() {
		delete(h.flows, flow) // bound state under flow churn
	}
}

// signal originates an XOF or XON control packet at the switch, routed
// toward the flow's source like any other packet (so it shares fate with
// the reverse path: losable, delayable — the sender's pause timeout and
// the gate's refresh XOFs cover both).
func (h *Hook) signal(flow netsim.FlowID, dst netsim.NodeID, flag netsim.Flag) {
	if h.probe != nil {
		h.probe(h.port, flow, flag == netsim.FlagXOF)
	}
	p := h.port.NewPacket()
	*p = netsim.Packet{
		Flow: flow, Src: h.sw.ID(), Dst: dst,
		Flags:  flag | netsim.FlagACK,
		SentAt: h.sim.Now(), Window: netsim.WindowUnset,
	}
	h.sw.Receive(p, nil)
}
