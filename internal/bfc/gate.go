package bfc

import "tfcsim/internal/sim"

// FlowGate is the per-port, per-flow pause/resume state machine: it tracks
// the flow's occupancy at one output port and decides when to signal XOF
// (pause) upstream and when to release it with XON. It is a pure state
// machine — no timers, no packets — so the switch hook stays a thin
// adapter and the gate itself is directly fuzzable (see FuzzFlowGate).
//
// Invariants (checked by the fuzz target):
//   - occupancy never goes negative;
//   - XOF is only requested when occupancy is at or above the effective
//     pause threshold (Pause, or Resume under port pressure);
//   - XON is only requested while paused, at occupancy ≤ Resume;
//   - two XOF requests are at least RefreshGap apart.
type FlowGate struct {
	// Pause is the occupancy (bytes) at or above which an arriving packet
	// triggers an XOF toward the flow's source.
	Pause int64
	// Resume is the occupancy (bytes) at or below which a draining packet
	// releases the pause with an XON. Must satisfy 0 < Resume <= Pause.
	Resume int64
	// RefreshGap is the minimum spacing between successive XOF signals.
	// It both dedups the burst of in-flight arrivals right after a pause
	// and rate-limits the refresh XOFs that protect against a lost XOF
	// (the sender's pause times out unless refreshed).
	RefreshGap sim.Time

	occ     int64
	paused  bool
	lastXOF sim.Time
	hasXOF  bool
}

// Occ returns the flow's tracked occupancy in bytes.
func (g *FlowGate) Occ() int64 { return g.occ }

// Paused reports whether the gate has an outstanding pause.
func (g *FlowGate) Paused() bool { return g.paused }

// Add records n bytes of this flow arriving at the port at time now.
// pressure marks port-wide buffer pressure (aggregate occupancy high), in
// which case the effective pause threshold drops to Resume so that many
// small flows sharing one buffer still get paused before drop-tail does
// it for them. It returns true when an XOF should be sent to the source.
func (g *FlowGate) Add(n int64, now sim.Time, pressure bool) (xoff bool) {
	g.occ += n
	thresh := g.Pause
	if pressure && g.Resume < thresh {
		thresh = g.Resume
	}
	if g.occ < thresh {
		return false
	}
	if g.hasXOF && now-g.lastXOF < g.RefreshGap {
		// Recently signaled: either the burst right behind the pause or a
		// refresh that would be redundant. The sender's pause timeout is
		// longer than RefreshGap, so suppression cannot strand a pause.
		return false
	}
	g.paused = true
	g.hasXOF = true
	g.lastXOF = now
	return true
}

// Drain records n bytes of this flow leaving the port (clamped at zero:
// a flushed queue drops bytes whose predicted drain still fires). It
// returns true when an XON should be sent to the source.
func (g *FlowGate) Drain(n int64) (xon bool) {
	g.occ -= n
	if g.occ < 0 {
		g.occ = 0
	}
	if g.paused && g.occ <= g.Resume {
		g.paused = false
		return true
	}
	return false
}
