package bfc

import (
	"tfcsim/internal/tcp"
	"tfcsim/internal/transport"
)

// init registers BFC with the transport registry: fixed-window senders
// plus per-flow pause/resume hooks on every switch port.
func init() {
	transport.Register("bfc", transport.Factory{
		Desc:    "BFC-style per-hop backpressure: per-flow XOF/XON pause thresholds at switches",
		Compare: true,
		Dial: func(c transport.DialConfig) transport.Conn {
			probe, _ := c.Probe.(tcp.Probe)
			s, r := Dial(Config{
				Sim: c.Sim, Local: c.Local, Peer: c.Peer, Flow: c.Flow,
				MSS: c.MSS, MinRTO: c.MinRTO,
				OnDrain: c.OnDrain, OnComplete: c.OnComplete,
				Probe: probe,
			})
			return transport.Conn{Sender: s, Received: r.Received, SRTT: s.SRTT}
		},
		Attach: func(a transport.AttachConfig) any {
			knobs, _ := a.Knobs.(*SwitchKnobs)
			probe, _ := a.Probe.(PauseProbe)
			var hooks []*Hook
			for _, sw := range a.Switches {
				// Each switch's hooks run on its own shard simulator.
				for _, h := range AttachSwitch(sw.Sim(), sw, knobs) {
					h.SetProbe(probe)
					hooks = append(hooks, h)
				}
			}
			return hooks
		},
	})
}
