package trace

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tfcsim/internal/sim"
	"tfcsim/internal/stats"
)

func TestWriteTimeSeries(t *testing.T) {
	var ts stats.TimeSeries
	ts.Add(sim.Microsecond, 1.5)
	ts.Add(2*sim.Microsecond, 2.5)
	var b strings.Builder
	if err := WriteTimeSeries(&b, "queue_bytes", &ts); err != nil {
		t.Fatal(err)
	}
	want := "time_us,queue_bytes\n1.000,1.5\n2.000,2.5\n"
	if b.String() != want {
		t.Fatalf("got %q, want %q", b.String(), want)
	}
}

func TestWriteMultiSeries(t *testing.T) {
	var a, c stats.TimeSeries
	a.Add(sim.Microsecond, 1)
	a.Add(2*sim.Microsecond, 2)
	c.Add(sim.Microsecond, 10)
	var b strings.Builder
	if err := WriteMultiSeries(&b, []string{"f1", "f2"}, []*stats.TimeSeries{&a, &c}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "time_us,f1,f2" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[2] != "2.000,2," {
		t.Fatalf("padded row %q", lines[2])
	}
}

func TestWriteMultiSeriesLongestTimestamps(t *testing.T) {
	// Timestamps come from the longest series even when it is not the
	// first: no row may have an empty time_us cell.
	var short, long stats.TimeSeries
	short.Add(sim.Microsecond, 1)
	long.Add(sim.Microsecond, 10)
	long.Add(2*sim.Microsecond, 20)
	long.Add(3*sim.Microsecond, 30)
	var b strings.Builder
	if err := WriteMultiSeries(&b, []string{"f1", "f2"}, []*stats.TimeSeries{&short, &long}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[2] != "2.000,,20" || lines[3] != "3.000,,30" {
		t.Fatalf("rows past series[0] lost their timestamps: %q, %q", lines[2], lines[3])
	}
}

func TestWriteMultiSeriesDivergentTimestamps(t *testing.T) {
	var a, c stats.TimeSeries
	a.Add(sim.Microsecond, 1)
	a.Add(2*sim.Microsecond, 2)
	c.Add(sim.Microsecond, 10)
	c.Add(5*sim.Microsecond, 50) // not the shared time base
	var b strings.Builder
	err := WriteMultiSeries(&b, []string{"f1", "f2"}, []*stats.TimeSeries{&a, &c})
	if err == nil {
		t.Fatal("expected error on divergent timestamps")
	}
}

func TestWriteMultiSeriesMismatch(t *testing.T) {
	var b strings.Builder
	if err := WriteMultiSeries(&b, []string{"a"}, nil); err == nil {
		t.Fatal("expected error on name/series mismatch")
	}
}

func TestWriteCDF(t *testing.T) {
	var s stats.Sample
	s.Add(1)
	s.Add(1)
	s.Add(3)
	var b strings.Builder
	if err := WriteCDF(&b, "fct_us", &s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 || lines[1] != "1,0.6666666666666666" {
		t.Fatalf("cdf output: %v", lines)
	}
}

func TestWriteTable(t *testing.T) {
	tb := &stats.Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "2")
	var b strings.Builder
	if err := WriteTable(&b, tb); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n1,2\n" {
		t.Fatalf("table csv: %q", b.String())
	}
}

func TestSaveTo(t *testing.T) {
	dir := t.TempDir()
	err := SaveTo(filepath.Join(dir, "sub"), "x.csv", func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "sub", "x.csv"))
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back: %q %v", data, err)
	}
}
