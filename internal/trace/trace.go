// Package trace exports experiment measurements (time series, CDFs,
// tables) as CSV, so the paper's figures can be re-plotted with any
// external tool from `tfcsim run <fig> -csv <dir>` output.
package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tfcsim/internal/stats"
)

// WriteTimeSeries writes (time_us, value) rows.
func WriteTimeSeries(w io.Writer, header string, ts *stats.TimeSeries) error {
	if _, err := fmt.Fprintf(w, "time_us,%s\n", header); err != nil {
		return err
	}
	for i := range ts.T {
		if _, err := fmt.Fprintf(w, "%.3f,%g\n", ts.T[i].Micros(), ts.V[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteMultiSeries writes aligned series: every row's timestamp comes
// from the longest series, so no row ever has an empty time_us cell;
// shorter series pad their value cells. The series must genuinely share a
// time base — a series whose timestamp at some row disagrees with the
// longest series' is an error, not silently mislabeled data.
func WriteMultiSeries(w io.Writer, names []string, series []*stats.TimeSeries) error {
	if len(names) != len(series) {
		return fmt.Errorf("trace: %d names for %d series", len(names), len(series))
	}
	if _, err := fmt.Fprintf(w, "time_us,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	if len(series) == 0 {
		return nil
	}
	ref := series[0]
	for _, s := range series[1:] {
		if s.N() > ref.N() {
			ref = s
		}
	}
	for j, s := range series {
		for i := 0; i < s.N(); i++ {
			if s.T[i] != ref.T[i] {
				return fmt.Errorf("trace: series %q timestamp %v at row %d diverges from %v",
					names[j], s.T[i], i, ref.T[i])
			}
		}
	}
	for i := 0; i < ref.N(); i++ {
		var b strings.Builder
		fmt.Fprintf(&b, "%.3f", ref.T[i].Micros())
		for _, s := range series {
			b.WriteByte(',')
			if i < s.N() {
				fmt.Fprintf(&b, "%g", s.V[i])
			}
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCDF writes (value, cumulative_fraction) rows of a sample.
func WriteCDF(w io.Writer, header string, s *stats.Sample) error {
	if _, err := fmt.Fprintf(w, "%s,cdf\n", header); err != nil {
		return err
	}
	xs, fr := s.CDF()
	for i := range xs {
		if _, err := fmt.Fprintf(w, "%g,%g\n", xs[i], fr[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable writes a stats.Table as CSV (header + rows).
func WriteTable(w io.Writer, t *stats.Table) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SaveTo writes via fn into dir/name (creating dir as needed).
func SaveTo(dir, name string, fn func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}
