package obs

import (
	"fmt"
	"math"
	"sync"

	"tfcsim/internal/core"
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// The invariant watchdogs check simulation invariants on the virtual
// timeline, driven purely by probe callbacks: they never schedule
// events, never draw randomness, and never mutate simulation state, so
// enabling them cannot change any result (tfcvet's probepure analyzer
// machine-checks this — methods on *watchdog receivers are probe roots).
// A violation emits one structured stderr diagnostic plus a
// flight-recorder dump; each watchdog reports at most once per trial so
// a persistent violation cannot flood the run.

// tokenWatchdog checks TFC's token-conservation invariants at every slot
// boundary (paper §4.2–§4.4): the token value T is finite and positive
// (the slot clamp floors it at one MSS), the stamped window W never
// exceeds T (W = T / eSmooth with eSmooth >= 1), the effective flow
// count is at least 1, and the measured utilization rho is finite and
// positive (it may legitimately exceed 1: arrivals fan in from many
// input ports, and a saturated link is deliberately measured at rho >=
// 1 so the adjustment drains standing queues).
type tokenWatchdog struct {
	to      *trialObs
	mu      sync.Mutex
	tripped bool
}

func (w *tokenWatchdog) check(p *netsim.Port, info core.SlotInfo) {
	if w == nil {
		return
	}
	bad := ""
	switch {
	case math.IsNaN(info.T) || math.IsInf(info.T, 0):
		bad = fmt.Sprintf("token value not finite: T=%v", info.T)
	case info.T <= 0:
		bad = fmt.Sprintf("token pool drained below the MSS floor: T=%.1f", info.T)
	case math.IsNaN(info.W) || math.IsInf(info.W, 0):
		bad = fmt.Sprintf("window not finite: W=%v", info.W)
	case info.W > info.T*(1+1e-9)+1e-6:
		bad = fmt.Sprintf("window exceeds token pool: W=%.1f > T=%.1f", info.W, info.T)
	case info.E < 1:
		bad = fmt.Sprintf("effective flow count below 1: E=%d", info.E)
	case math.IsNaN(info.Rho) || math.IsInf(info.Rho, 0) || info.Rho <= 0:
		bad = fmt.Sprintf("measured utilization not finite-positive: rho=%v", info.Rho)
	}
	if bad == "" {
		return
	}
	w.mu.Lock()
	first := !w.tripped
	w.tripped = true
	w.mu.Unlock()
	if first {
		w.to.o.violation(w.to, "token-conservation",
			fmt.Sprintf("port=%q t=%dns %s", w.to.portLabel(p), int64(info.Time), bad))
	}
}

// zeroQueueWatchdog checks TFC's zero-queueing claim (§4.1: tokens are
// granted so that aggregate arrivals match drain rate, keeping standing
// queues near zero): a TFC-controlled port whose queue exceeds the
// configured bound at a slot boundary has lost token control. Ports are
// discovered lazily — only ports that reach a slot boundary are TFC
// ports — so the watchdog needs no topology knowledge.
type zeroQueueWatchdog struct {
	to      *trialObs
	bound   int64
	mu      sync.Mutex
	tripped bool
}

func (w *zeroQueueWatchdog) check(p *netsim.Port, info core.SlotInfo) {
	if w == nil {
		return
	}
	q := int64(p.QueueBytes())
	if q <= w.bound {
		return
	}
	w.mu.Lock()
	first := !w.tripped
	w.tripped = true
	w.mu.Unlock()
	if first {
		w.to.o.violation(w.to, "zero-queueing",
			fmt.Sprintf("port=%q t=%dns queue=%dB exceeds bound=%dB",
				w.to.portLabel(p), int64(info.Time), q, w.bound))
	}
}

// pairKey identifies one (port, flow) BFC pause channel.
type pairKey struct {
	port *netsim.Port
	flow netsim.FlowID
}

// pairWatchdog checks BFC XOF/XON pairing: a flow must not be resumed
// while running — an XON with no outstanding XOF means the per-flow
// pause bookkeeping desynchronized from the queue occupancy it mirrors.
// Repeated XOFs are legal: the gate deliberately re-signals a standing
// pause every RefreshGap so a lost XOF cannot strand the flow.
type pairWatchdog struct {
	to      *trialObs
	mu      sync.Mutex
	paused  map[pairKey]bool
	tripped bool
}

func (w *pairWatchdog) check(p *netsim.Port, flow netsim.FlowID, paused bool) {
	if w == nil {
		return
	}
	k := pairKey{p, flow}
	w.mu.Lock()
	if w.paused == nil {
		w.paused = make(map[pairKey]bool)
	}
	was := w.paused[k]
	w.paused[k] = paused
	first := !w.tripped
	bad := ""
	if !paused && !was {
		bad = "XON without XOF: flow resumed while not paused"
	}
	if bad != "" {
		w.tripped = true
	}
	w.mu.Unlock()
	if bad != "" && first {
		w.to.o.violation(w.to, "bfc-pairing",
			fmt.Sprintf("port=%q flow=%d t=%dns %s", w.to.portLabel(p), flow, int64(p.Sim().Now()), bad))
	}
}

// rtoWatchdog flags retransmission-timeout storms: a sender whose
// exponential backoff reaches the threshold has retransmitted the same
// data 2^n times without an acknowledgment — the flow is effectively
// dead and the run is burning virtual time on timer churn.
type rtoWatchdog struct {
	to        *trialObs
	threshold uint
	mu        sync.Mutex
	tripped   bool
}

func (w *rtoWatchdog) check(now sim.Time, flow netsim.FlowID, backoff uint) {
	if w == nil || backoff < w.threshold {
		return
	}
	w.mu.Lock()
	first := !w.tripped
	w.tripped = true
	w.mu.Unlock()
	if first {
		w.to.o.violation(w.to, "rto-storm",
			fmt.Sprintf("flow=%d t=%dns backoff=%d reached threshold=%d",
				flow, int64(now), backoff, w.threshold))
	}
}
