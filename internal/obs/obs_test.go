package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tfcsim/internal/core"
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/telemetry"
	"tfcsim/internal/workload"
)

// TestTokenSkewWatchdog injects a deliberate token-conservation bug
// through core.SwitchConfig.TestTokenSkew (test-only: leaks tokens out
// of the pool after every slot) and checks the watchdog catches it: a
// violation is counted and a flight-recorder dump lands on disk.
func TestTokenSkewWatchdog(t *testing.T) {
	dir := t.TempDir()
	o := New(Options{Watchdogs: true, FlightDir: dir})
	c := telemetry.NewCollector(telemetry.Options{})
	o.Attach("skew", c)

	s := sim.New(1)
	n := netsim.NewNetwork(s)
	a, b := n.NewHost("a"), n.NewHost("b")
	sw := n.NewSwitch("sw")
	n.Connect(a, sw, netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond})
	n.Connect(sw, b, netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond, BufA: 256 << 10})
	n.ComputeRoutes()

	tr := c.Trial("t0")
	tr.Bind(s)
	cfg := core.SwitchConfig{TestTokenSkew: -1e6}
	telemetry.InstrumentTFC(tr, &cfg)
	core.Attach(s, sw, cfg)
	telemetry.InstrumentNetwork(tr, n)

	d := &workload.Dialer{Sim: s, Proto: workload.TFC}
	conn := d.Dial(a, b, nil, nil)
	conn.Sender.Open()
	conn.Sender.Send(1 << 20)
	s.RunUntil(100 * sim.Millisecond)

	if o.Violations() == 0 {
		t.Fatal("token watchdog did not fire on a deliberately skewed token pool")
	}
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*-token-conservation.json"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no token-conservation flight dump written (err=%v)", err)
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Schema   string `json:"schema"`
		Trial    string `json:"trial"`
		Watchdog string `json:"watchdog"`
		Detail   string `json:"detail"`
		Recent   []any  `json:"recent"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if dump.Schema != "tfcsim-flight-v1" || dump.Watchdog != "token-conservation" || dump.Trial != "t0" {
		t.Errorf("dump header = (%q, %q, %q), want (tfcsim-flight-v1, token-conservation, t0)",
			dump.Schema, dump.Watchdog, dump.Trial)
	}
	if !strings.Contains(dump.Detail, "token pool drained") {
		t.Errorf("dump detail %q does not name the drained token pool", dump.Detail)
	}
	if len(dump.Recent) == 0 {
		t.Error("flight dump carries no recent events")
	}
}

// TestSampledFlowDeterministic checks span sampling is a pure function
// of (flow, every, seed): stable across calls, seed-sensitive, and
// roughly 1-in-every dense.
func TestSampledFlowDeterministic(t *testing.T) {
	const every, seed = 4, 7
	n, diff := 0, 0
	for f := netsim.FlowID(0); f < 1000; f++ {
		a, b := SampledFlow(f, every, seed), SampledFlow(f, every, seed)
		if a != b {
			t.Fatalf("SampledFlow(%d) not stable", f)
		}
		if a {
			n++
		}
		if a != SampledFlow(f, every, seed+1) {
			diff++
		}
	}
	if n < 100 || n > 400 {
		t.Errorf("sampled %d of 1000 flows at 1-in-4, want roughly 250", n)
	}
	if diff == 0 {
		t.Error("sampling ignores the seed")
	}
	if SampledFlow(5, 0, seed) {
		t.Error("every=0 must disable sampling")
	}
}

// TestFlightRingWrap checks the recorder ring drops oldest-first and the
// dump reports the drop count.
func TestFlightRingWrap(t *testing.T) {
	r := newFlightRing(4)
	for i := 0; i < 10; i++ {
		r.noteRaw(sim.Time(i), fkRTO, "", int64(i), 0, 0)
	}
	path := filepath.Join(t.TempDir(), "dump.json")
	if err := r.dump(path, "run", "trial", "wd", "detail"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Dropped uint64 `json:"events_dropped"`
		Recent  []struct {
			At   int64 `json:"t_ns"`
			Flow int64 `json:"flow"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Recent) != 4 || d.Dropped != 6 {
		t.Fatalf("dump has %d recent / %d dropped, want 4 / 6", len(d.Recent), d.Dropped)
	}
	for i, ev := range d.Recent {
		if ev.Flow != int64(6+i) {
			t.Fatalf("recent[%d].flow = %d, want oldest-first %d", i, ev.Flow, 6+i)
		}
	}
}

// spanTrace builds a minimal trace file around the given span events.
func spanTrace(events ...string) string {
	return `{"traceEvents":[` + strings.Join(events, ",") + `]}`
}

func spanEv(name string, ts float64, pid, tid int, seq, hop int64) string {
	b, _ := json.Marshal(map[string]any{
		"name": name, "cat": SpanCat, "ph": "X", "ts": ts, "dur": 1.0,
		"pid": pid, "tid": tid,
		"args": map[string]float64{"seq": float64(seq), "hop": float64(hop), "parent": float64(hop - 1)},
	})
	return string(b)
}

func TestValidateSpans(t *testing.T) {
	valid := spanTrace(
		spanEv("queue", 0, 0, 1, 0, 0),
		spanEv("xmit", 1, 0, 1, 0, 1),
		spanEv("wire", 2, 0, 1, 0, 2),
		spanEv("deliver", 3, 0, 1, 0, 3),
		// Second run of the same seq (retransmit after delivery): restarts
		// at hop 0 and closes with its own terminal.
		spanEv("queue", 10, 0, 1, 0, 0),
		spanEv("drop", 11, 0, 1, 0, 1),
		// Front-truncated first run of another chain (ring eviction).
		spanEv("wire", 5, 0, 2, 7, 4),
		spanEv("open", 6, 0, 2, 7, 5),
	)
	if err := ValidateSpans(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid spans rejected: %v", err)
	}

	cases := []struct {
		name, trace, want string
	}{
		{"unknown hop name",
			spanTrace(spanEv("teleport", 0, 0, 1, 0, 0)), "unknown hop name"},
		{"broken parent linkage",
			spanTrace(`{"name":"queue","cat":"span","ph":"X","ts":0,"pid":0,"tid":1,"args":{"seq":0,"hop":1,"parent":3}}`),
			"broken parent linkage"},
		{"gap between hops",
			spanTrace(spanEv("queue", 0, 0, 1, 0, 0), spanEv("deliver", 5, 0, 1, 0, 1)),
			"not contiguous"},
		{"run without terminal",
			spanTrace(spanEv("queue", 0, 0, 1, 0, 0), spanEv("xmit", 1, 0, 1, 0, 1)),
			"incomplete run"},
		{"restart not at hop 0",
			spanTrace(
				spanEv("queue", 0, 0, 1, 0, 0), spanEv("deliver", 1, 0, 1, 0, 1),
				spanEv("wire", 2, 0, 1, 0, 3), spanEv("open", 3, 0, 1, 0, 4)),
			"restarted run begins at hop 3"},
		{"terminal mid-run",
			spanTrace(
				spanEv("queue", 0, 0, 1, 0, 0), spanEv("deliver", 1, 0, 1, 0, 1),
				spanEv("open", 2, 0, 1, 0, 2)),
			"incomplete run"},
	}
	for _, tc := range cases {
		err := ValidateSpans(strings.NewReader(tc.trace))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
