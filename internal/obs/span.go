package obs

import (
	"fmt"
	"sort"
	"sync"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/telemetry"
)

// Span hop names. A sampled data packet's journey is recorded as a chain
// of parent-linked spans on its flow's track: "queue" (enqueue →
// dequeue), "xmit" (dequeue → serialization done), "wire" (serialization
// → arrival at the next hop's queue), repeated per store-and-forward
// hop, closed by exactly one terminal.
const (
	spanQueue = "queue"
	spanXmit  = "xmit"
	spanWire  = "wire"
	// Terminals.
	spanDeliver = "deliver" // reached its destination endpoint
	spanDrop    = "drop"    // tail-dropped (or lost) at a port
	spanAbort   = "abort"   // superseded by a retransmission of the same seq
	spanOpen    = "open"    // still in flight when the trial flushed
)

// spanTerminals is the set of chain-closing hop names (shared with the
// trace validator).
var spanTerminals = map[string]bool{
	spanDeliver: true, spanDrop: true, spanAbort: true, spanOpen: true,
}

// SpanCat is the trace category all packet-journey spans carry.
const SpanCat = "span"

// SpanTerminal reports whether a span hop name closes its chain
// (exported for cmd/tracecheck).
func SpanTerminal(name string) bool { return spanTerminals[name] }

// SpanHop reports whether name is any packet-journey hop name.
func SpanHop(name string) bool {
	switch name {
	case spanQueue, spanXmit, spanWire:
		return true
	}
	return spanTerminals[name]
}

// SampledFlow reports whether flow is in the 1-in-every sampled set for
// the given seed — a pure function, so the sampled set is identical at
// any -j and -shards (exported so tests can pick a sampled flow).
func SampledFlow(flow netsim.FlowID, every int, seed int64) bool {
	if every <= 0 {
		return false
	}
	return uint64(sim.SubSeed(seed, uint64(flow)))%uint64(every) == 0
}

// spanKey identifies one packet journey: data packets are keyed by
// (flow, first payload byte).
type spanKey struct {
	flow netsim.FlowID
	seq  int64
}

// spanState is an in-flight journey: the virtual time of its last
// recorded transition and the next hop index.
type spanState struct {
	last sim.Time
	hop  int
}

// spanTable is an open-addressing hash table from spanKey to spanState.
// A built-in map is the wrong tool for the live-journey set: its keys
// churn forever (every packet inserts a fresh (flow, seq) and deletes it
// a few hops later), and map churn allocates overflow buckets
// indefinitely — which would put the span tracer on the wrong side of
// the engine's zero-allocs-per-packet-hop budget. Linear probing with
// backward-shift deletion leaves no tombstones, so once the table has
// grown to the peak in-flight count it never allocates again.
type spanTable struct {
	slots []spanSlot
	n     int
}

type spanSlot struct {
	key  spanKey
	st   spanState
	live bool
}

func (t *spanTable) hash(k spanKey) uint64 {
	x := uint64(k.flow)*0x9E3779B97F4A7C15 + uint64(k.seq)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

func (t *spanTable) get(k spanKey) (spanState, bool) {
	if t.n == 0 {
		return spanState{}, false
	}
	mask := uint64(len(t.slots) - 1)
	for i := t.hash(k) & mask; t.slots[i].live; i = (i + 1) & mask {
		if t.slots[i].key == k {
			return t.slots[i].st, true
		}
	}
	return spanState{}, false
}

func (t *spanTable) put(k spanKey, st spanState) {
	if len(t.slots) == 0 || t.n+1 > len(t.slots)*3/4 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	i := t.hash(k) & mask
	for t.slots[i].live {
		if t.slots[i].key == k {
			t.slots[i].st = st
			return
		}
		i = (i + 1) & mask
	}
	t.slots[i] = spanSlot{key: k, st: st, live: true}
	t.n++
}

// del removes k, backward-shifting the probe chain so lookups never see
// a hole mid-chain and the table carries no tombstones.
func (t *spanTable) del(k spanKey) {
	if t.n == 0 {
		return
	}
	mask := uint64(len(t.slots) - 1)
	i := t.hash(k) & mask
	for t.slots[i].live {
		if t.slots[i].key == k {
			break
		}
		i = (i + 1) & mask
	}
	if !t.slots[i].live {
		return
	}
	t.n--
	j := i
	for {
		j = (j + 1) & mask
		if !t.slots[j].live {
			break
		}
		home := t.hash(t.slots[j].key) & mask
		// Shift j back into the hole at i unless j sits between its home
		// slot and i (cyclically), in which case moving it would break its
		// own probe chain.
		if (j-home)&mask >= (j-i)&mask {
			t.slots[i] = t.slots[j]
			i = j
		}
	}
	t.slots[i] = spanSlot{}
}

// warm grows the table until it can hold n entries without resizing.
func (t *spanTable) warm(n int) {
	for len(t.slots)*3/4 < n {
		t.grow()
	}
}

func (t *spanTable) grow() {
	old := t.slots
	size := 64
	if len(old) > 0 {
		size = len(old) * 2
	}
	t.slots = make([]spanSlot, size)
	t.n = 0
	for _, s := range old {
		if s.live {
			t.put(s.key, s.st)
		}
	}
}

// spanTracer records causal packet spans for sampled flows into the
// trial's telemetry recorder. It is driven purely by forwarding-path
// probe callbacks; all timestamps are virtual, all emitted events enter
// the recorder's canonical order, so the exported trace is byte-identical
// at any parallelism. The state map is guarded by its own mutex: a given
// packet's hop callbacks are causally ordered across shard goroutines,
// so per-key accesses never overlap — the lock protects cross-flow map
// mutation.
type spanTracer struct {
	t     *telemetry.Trial
	every int
	seed  int64

	mu     sync.Mutex
	live   spanTable
	tracks map[netsim.FlowID]string
}

func newSpanTracer(t *telemetry.Trial, every int, seed int64) *spanTracer {
	return &spanTracer{
		t: t, every: every, seed: seed,
		tracks: make(map[netsim.FlowID]string),
	}
}

// warm pre-sizes the live table (see Observatory.Warm).
func (tr *spanTracer) warm(n int) {
	tr.mu.Lock()
	tr.live.warm(n)
	tr.mu.Unlock()
}

// track interns the flow's span track name.
func (tr *spanTracer) track(f netsim.FlowID) string {
	if s, ok := tr.tracks[f]; ok {
		return s
	}
	s := fmt.Sprintf("span f%d", f)
	tr.tracks[f] = s
	return s
}

// emit records one hop span [start, end] for key with the given hop
// index. Args carry the journey linkage: seq identifies the chain within
// the flow track, hop orders it, parent = hop-1 names the causal
// predecessor (-1 for the chain root). Called with tr.mu held (t.Span
// takes only the trial lock; no path acquires tr.mu while holding it).
func (tr *spanTracer) emit(key spanKey, name string, start, end sim.Time, hop int) {
	tr.t.Span(SpanCat, name, tr.track(key.flow), start, end,
		telemetry.Arg{K: "seq", V: float64(key.seq)},
		telemetry.Arg{K: "hop", V: float64(hop)},
		telemetry.Arg{K: "parent", V: float64(hop - 1)})
}

// step advances key's journey: emits the [last, now] span as hop name
// and either re-arms the state (terminal=false) or closes the chain.
func (tr *spanTracer) step(key spanKey, now sim.Time, name string, terminal bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	st, ok := tr.live.get(key)
	if !ok {
		return
	}
	tr.emit(key, name, st.last, now, st.hop)
	if terminal {
		tr.live.del(key)
		return
	}
	tr.live.put(key, spanState{last: now, hop: st.hop + 1})
}

func (tr *spanTracer) portEnqueue(p *netsim.Port, pkt *netsim.Packet) {
	if !pkt.IsData() || !SampledFlow(pkt.Flow, tr.every, tr.seed) {
		return
	}
	key := spanKey{pkt.Flow, pkt.Seq}
	now := p.Sim().Now()
	if _, isHost := p.Owner.(*netsim.Host); isHost {
		// Journey root: first enqueue at the sender's NIC. A colliding live
		// chain means the sender retransmitted the same seq — close the old
		// chain as aborted and do not trace the retransmission (its hops
		// would be indistinguishable from the original's).
		tr.mu.Lock()
		if st, dup := tr.live.get(key); dup {
			tr.emit(key, spanAbort, st.last, now, st.hop)
			tr.live.del(key)
		} else {
			tr.live.put(key, spanState{last: now, hop: 0})
		}
		tr.mu.Unlock()
		return
	}
	// Switch enqueue: close the propagation leg from the previous hop.
	tr.step(key, now, spanWire, false)
}

func (tr *spanTracer) portDequeue(p *netsim.Port, pkt *netsim.Packet) {
	if !pkt.IsData() {
		return
	}
	tr.step(spanKey{pkt.Flow, pkt.Seq}, p.Sim().Now(), spanQueue, false)
}

func (tr *spanTracer) portTx(p *netsim.Port, pkt *netsim.Packet) {
	if !pkt.IsData() {
		return
	}
	tr.step(spanKey{pkt.Flow, pkt.Seq}, p.Sim().Now(), spanXmit, false)
}

func (tr *spanTracer) portDrop(p *netsim.Port, pkt *netsim.Packet) {
	if !pkt.IsData() {
		return
	}
	tr.step(spanKey{pkt.Flow, pkt.Seq}, p.Sim().Now(), spanDrop, true)
}

func (tr *spanTracer) hostDeliver(h *netsim.Host, pkt *netsim.Packet) {
	if !pkt.IsData() {
		return
	}
	tr.step(spanKey{pkt.Flow, pkt.Seq}, h.NIC().Sim().Now(), spanDeliver, true)
}

// flush closes every still-open journey at the trial's final virtual
// time, in sorted key order (table order must not reach the recorder —
// it depends on insertion history, which shard scheduling can vary).
func (tr *spanTracer) flush(now sim.Time) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	keys := make([]spanKey, 0, tr.live.n)
	for _, s := range tr.live.slots {
		if s.live {
			keys = append(keys, s.key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].flow != keys[j].flow {
			return keys[i].flow < keys[j].flow
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		st, _ := tr.live.get(k)
		tr.emit(k, spanOpen, st.last, now, st.hop)
		tr.live.del(k)
	}
}
