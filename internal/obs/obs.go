// Package obs is the runtime observatory: live introspection of a
// running simulation, engine self-profiling, causal packet spans, and
// invariant watchdogs — all layered on the telemetry probe stream
// (telemetry.TrialHooks), so the instrumented packages need no knowledge
// of it and the hot path pays nothing when it is disabled.
//
// Everything obs computes from the simulation is a pure read: spans and
// profiling go to the trial's telemetry recorder/registry (virtual-time
// stamped, canonically ordered), watchdog diagnostics go to stderr and
// flight-recorder dump files. Results, traces, and metrics therefore
// stay byte-identical with the observatory on or off, at any worker
// parallelism and shard count. The only wall-clock machinery (the HTTP
// endpoint and the shard-liveness monitor) reads lock-free per-shard
// Pulse mailboxes and atomic snapshots — it never touches simulator
// state directly.
package obs

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/telemetry"
)

// Options configures an Observatory.
type Options struct {
	// HTTPAddr, when non-empty, serves the live introspection endpoint
	// (JSON at /snapshot, auto-refreshing HTML at /) on this address.
	HTTPAddr string
	// SpanEvery samples 1-in-N flows for causal packet spans (0 disables).
	// Sampling is a pure function of (flow ID, SpanSeed), so the sampled
	// set — and the exported trace — is byte-identical at any -j/-shards.
	SpanEvery int
	// SpanSeed perturbs the span sampling hash (default 1).
	SpanSeed int64
	// Watchdogs enables the invariant watchdogs.
	Watchdogs bool
	// FlightDir is where watchdog violations write flight-recorder dumps
	// (default "."). Empty string means default; "-" disables dumps.
	FlightDir string
	// FlightCap bounds the flight recorder's event ring (default 4096).
	FlightCap int
	// ZeroQueueBytes is the zero-queueing watchdog's per-TFC-port bound:
	// a TFC-controlled port whose standing queue exceeds it at a slot
	// boundary violates the paper's zero-queueing claim grossly enough to
	// flag (default 256 KiB, one full testbed buffer).
	ZeroQueueBytes int64
	// RTOStormBackoff is the RTO-storm watchdog threshold: a sender
	// reaching this exponential-backoff stage has been dead for
	// MinRTO * 2^n and something is wedged (default 8).
	RTOStormBackoff uint
	// SampleEvery is the virtual-time cadence of the endpoint's port/flow
	// snapshot tick (default 1ms; only scheduled when HTTPAddr is set).
	SampleEvery sim.Time
	// LivenessSec is the shard-liveness watchdog's wall-clock stall
	// threshold in seconds (default 30; needs HTTPAddr and Watchdogs).
	LivenessSec int
}

func (o *Options) fill() {
	if o.SpanSeed == 0 {
		o.SpanSeed = 1
	}
	if o.FlightDir == "" {
		o.FlightDir = "."
	}
	if o.FlightCap <= 0 {
		o.FlightCap = 4096
	}
	if o.ZeroQueueBytes <= 0 {
		o.ZeroQueueBytes = 256 << 10
	}
	if o.RTOStormBackoff == 0 {
		o.RTOStormBackoff = 8
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = sim.Millisecond
	}
	if o.LivenessSec <= 0 {
		o.LivenessSec = 30
	}
}

// Observatory is the process-wide observability hub: one per tfcsim
// invocation, attached to each experiment's telemetry collector in turn.
// It implements telemetry.TrialObserver.
type Observatory struct {
	opts Options

	mu     sync.Mutex
	run    string // current experiment name
	trials []*trialObs
	byKey  map[string]*trialObs
	dumps  int // flight dumps written (names stay unique)

	violations atomic.Uint64

	srv *server
}

// New creates an Observatory with the given options (not yet serving;
// call Start).
func New(opts Options) *Observatory {
	opts.fill()
	return &Observatory{opts: opts, byKey: make(map[string]*trialObs)}
}

// Options returns the observatory's (filled) options.
func (o *Observatory) Options() Options { return o.opts }

// Violations returns the number of watchdog violations recorded so far.
func (o *Observatory) Violations() uint64 { return o.violations.Load() }

// Start brings up the HTTP endpoint (no-op when HTTPAddr is empty).
func (o *Observatory) Start() error {
	if o == nil || o.opts.HTTPAddr == "" {
		return nil
	}
	srv, err := newServer(o)
	if err != nil {
		return err
	}
	o.srv = srv
	return nil
}

// Stop shuts the HTTP endpoint down. Nil-safe, idempotent.
func (o *Observatory) Stop() {
	if o == nil || o.srv == nil {
		return
	}
	o.srv.stop()
	o.srv = nil
}

// Addr returns the endpoint's bound address ("" when not serving) —
// useful when HTTPAddr was ":0".
func (o *Observatory) Addr() string {
	if o == nil || o.srv == nil {
		return ""
	}
	return o.srv.addr()
}

// Warm pre-sizes every registered trial's live-journey table for the
// given number of concurrently in-flight sampled packets — the span
// tracer's analog of Simulator.Warm and Network.Warm. Benchmarks call it
// after the untimed pre-roll so table growth (the only allocation the
// tracer ever performs) stays out of the measured window; the tracer
// works identically without it, growing on demand. Setup context only —
// never call from a probe. Nil-safe.
func (o *Observatory) Warm(journeys int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	trials := make([]*trialObs, len(o.trials))
	copy(trials, o.trials)
	o.mu.Unlock()
	for _, to := range trials {
		if to.spans != nil {
			to.spans.warm(journeys)
		}
	}
}

// Attach registers a run and installs the observatory as the collector's
// trial observer. Call once per experiment before trials are minted.
// Nil-safe on both sides.
func (o *Observatory) Attach(run string, c *telemetry.Collector) {
	if o == nil || c == nil {
		return
	}
	o.mu.Lock()
	o.run = run
	o.mu.Unlock()
	c.SetObserver(o)
}

// ObserveTrial implements telemetry.TrialObserver: it mints the per-trial
// hook set wired to the observatory's spans, watchdogs, profiling, and
// endpoint snapshots.
func (o *Observatory) ObserveTrial(key string, t *telemetry.Trial) *telemetry.TrialHooks {
	to := &trialObs{o: o, key: key, t: t}
	if o.opts.SpanEvery > 0 {
		to.spans = newSpanTracer(t, o.opts.SpanEvery, o.opts.SpanSeed)
	}
	if o.opts.Watchdogs {
		to.flight = newFlightRing(o.opts.FlightCap)
		to.token = &tokenWatchdog{to: to}
		to.zeroq = &zeroQueueWatchdog{to: to, bound: o.opts.ZeroQueueBytes}
		to.pair = &pairWatchdog{to: to}
		to.rto = &rtoWatchdog{to: to, threshold: o.opts.RTOStormBackoff}
	}
	httpOn := o.opts.HTTPAddr != ""
	if httpOn {
		to.flows = make(map[netsim.FlowID]struct{})
	}
	o.mu.Lock()
	to.run = o.run
	o.trials = append(o.trials, to)
	o.byKey[to.run+"/"+key] = to
	o.mu.Unlock()

	hooks := &telemetry.TrialHooks{
		Bound: func(s *sim.Simulator) {
			to.pulse = &sim.Pulse{}
			s.SetPulse(to.pulse)
			to.ctl = s
			if httpOn {
				var tick func()
				tick = func() {
					to.takeSnapshot()
					s.After(o.opts.SampleEvery, tick)
				}
				s.After(o.opts.SampleEvery, tick)
			}
		},
		Instrumented: func(n *netsim.Network) { to.instrumented(n) },
		Flush: func(now sim.Time) {
			if to.spans != nil {
				to.spans.flush(now)
			}
			to.done.Store(true)
		},
	}
	if to.spans != nil || to.flight != nil || httpOn {
		hooks.Net = to
	}
	if to.token != nil {
		hooks.SlotEnd = to.slotEnd
		hooks.Pause = to.pause
		hooks.RTO = to.rtoFired
	}
	return hooks
}

// FinishRun marks every trial of the named run as done (the endpoint's
// state column and the liveness watchdog key off it). Experiments call
// it after their last trial completes; trials whose collector exports
// files are also marked individually at flush. Nil-safe.
func (o *Observatory) FinishRun(run string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	trials := make([]*trialObs, len(o.trials))
	copy(trials, o.trials)
	o.mu.Unlock()
	for _, to := range trials {
		if to.run == run {
			to.done.Store(true)
		}
	}
}

// violation records a watchdog violation: a structured stderr diagnostic
// plus (when a flight recorder is live) a dump file. Safe to call from
// probe context on shard goroutines.
func (o *Observatory) violation(to *trialObs, kind, detail string) {
	o.violations.Add(1)
	dump := ""
	if to != nil && to.flight != nil && o.opts.FlightDir != "-" {
		o.mu.Lock()
		o.dumps++
		n := o.dumps
		o.mu.Unlock()
		path := fmt.Sprintf("%s/flight-%03d-%s.json", o.opts.FlightDir, n, kind)
		if err := to.flight.dump(path, to.run, to.key, kind, detail); err != nil {
			dump = " dump-error=" + err.Error()
		} else {
			dump = " dump=" + path
		}
	}
	trial := ""
	if to != nil {
		trial = to.run + "/" + to.key
	}
	fmt.Fprintf(os.Stderr, "obs: WATCHDOG %s trial=%q %s%s\n", kind, trial, detail, dump)
}

// snapshotTrials returns the registered trials in registration order
// (stable: runner trial minting is serialized by the collector lock).
func (o *Observatory) snapshotTrials() []*trialObs {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*trialObs, len(o.trials))
	copy(out, o.trials)
	return out
}

// sortedKeys returns "run/key" identifiers of all registered trials,
// sorted (for the endpoint's stable listing).
func (o *Observatory) sortedKeys() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	keys := make([]string, 0, len(o.byKey))
	for k := range o.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
