package obs

import (
	"sync"
	"sync/atomic"

	"tfcsim/internal/core"
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/telemetry"
)

// trialObs is the observatory's per-trial state: it implements
// netsim.Probe (multiplexing to the span tracer, the flight recorder,
// and the endpoint's active-flow set) and carries the watchdogs and the
// lock-free progress mailboxes the HTTP side reads.
type trialObs struct {
	o    *Observatory
	run  string
	key  string
	t    *telemetry.Trial
	ctl  *sim.Simulator
	done atomic.Bool

	// pulse is the control simulator's progress mailbox; shardPulses are
	// the per-shard ones (nil for sequential trials). Written by the
	// engine goroutines, read lock-free by the HTTP/liveness side.
	pulse       *sim.Pulse
	shardPulses []*sim.Pulse
	group       *sim.Group

	// rate is the monitor-computed recent event throughput (events/sec
	// of wall time), read by the endpoint.
	rate atomic.Uint64

	// snap is the endpoint's latest port/flow snapshot, swapped in whole
	// by the virtual-time sampling tick (which runs on the control
	// simulator while shards are quiescent, so its port reads are safe).
	snap atomic.Pointer[TrialSnapshot]

	// ports are the instrumented network's switch ports, fixed at
	// instrumentation time; labels are interned once so snapshot/flight
	// recording never formats on the hot path.
	ports []*netsim.Port

	mu     sync.Mutex
	labels map[*netsim.Port]string
	flows  map[netsim.FlowID]struct{} // active flows (endpoint only)

	spans  *spanTracer
	flight *flightRing
	token  *tokenWatchdog
	zeroq  *zeroQueueWatchdog
	pair   *pairWatchdog
	rto    *rtoWatchdog
}

// TrialSnapshot is one trial's sampled state, served by the endpoint.
type TrialSnapshot struct {
	VirtualNs   int64      `json:"virtual_ns"`
	ActiveFlows int        `json:"active_flows"`
	Ports       []PortSnap `json:"ports"`
}

// PortSnap is one switch port's sampled queue state.
type PortSnap struct {
	Label      string `json:"label"`
	QueueBytes int64  `json:"queue_bytes"`
	QueueLen   int    `json:"queue_len"`
}

// instrumented captures the trial's topology handles once the network is
// built: switch ports for snapshots, and the shard group (if any) for
// per-shard pulses and profiling.
func (to *trialObs) instrumented(n *netsim.Network) {
	for _, node := range n.Nodes() {
		sw, ok := node.(*netsim.Switch)
		if !ok {
			continue
		}
		to.ports = append(to.ports, sw.Ports()...)
	}
	to.mu.Lock()
	if to.labels == nil {
		to.labels = make(map[*netsim.Port]string, len(to.ports))
	}
	to.mu.Unlock()
	if g := n.Group(); g != nil {
		to.group = g
		to.shardPulses = make([]*sim.Pulse, g.Shards())
		for i := range to.shardPulses {
			p := &sim.Pulse{}
			to.shardPulses[i] = p
			g.Shard(i).SetPulse(p)
		}
	}
}

// portLabel interns the port's snapshot label (owner#src-dst, matching
// telemetry's metric keys). Lookup-only map keyed by pointer.
func (to *trialObs) portLabel(p *netsim.Port) string {
	to.mu.Lock()
	defer to.mu.Unlock()
	if s, ok := to.labels[p]; ok {
		return s
	}
	if to.labels == nil {
		to.labels = make(map[*netsim.Port]string)
	}
	s := portSnapKey(p)
	to.labels[p] = s
	return s
}

// takeSnapshot samples port queues and the active-flow count into the
// endpoint's atomic snapshot slot. It runs as a control-simulator event:
// in sharded trials the shards are quiescent at control event times, so
// these reads do not race the engine.
func (to *trialObs) takeSnapshot() {
	s := &TrialSnapshot{VirtualNs: int64(to.ctl.Now())}
	to.mu.Lock()
	s.ActiveFlows = len(to.flows)
	to.mu.Unlock()
	s.Ports = make([]PortSnap, 0, len(to.ports))
	for _, p := range to.ports {
		s.Ports = append(s.Ports, PortSnap{
			Label:      to.portLabel(p),
			QueueBytes: int64(p.QueueBytes()),
			QueueLen:   p.QueueLen(),
		})
	}
	to.snap.Store(s)
}

// --- netsim.Probe (multiplexer) ---

func (to *trialObs) PortEnqueue(p *netsim.Port, pkt *netsim.Packet) {
	if to.flight != nil {
		to.flight.note(p.Sim().Now(), fkEnqueue, to.portLabel(p), pkt, int64(p.QueueBytes()))
	}
	if to.flows != nil {
		if _, isHost := p.Owner.(*netsim.Host); isHost && pkt.IsData() {
			to.mu.Lock()
			if pkt.Flags&netsim.FlagFIN != 0 {
				delete(to.flows, pkt.Flow)
			} else {
				to.flows[pkt.Flow] = struct{}{}
			}
			to.mu.Unlock()
		}
	}
	if to.spans != nil {
		to.spans.portEnqueue(p, pkt)
	}
}

func (to *trialObs) PortDequeue(p *netsim.Port, pkt *netsim.Packet) {
	if to.flight != nil {
		to.flight.note(p.Sim().Now(), fkDequeue, to.portLabel(p), pkt, int64(p.QueueBytes()))
	}
	if to.spans != nil {
		to.spans.portDequeue(p, pkt)
	}
}

func (to *trialObs) PortTx(p *netsim.Port, pkt *netsim.Packet) {
	if to.spans != nil {
		to.spans.portTx(p, pkt)
	}
}

func (to *trialObs) PortDrop(p *netsim.Port, pkt *netsim.Packet) {
	if to.flight != nil {
		to.flight.note(p.Sim().Now(), fkDrop, to.portLabel(p), pkt, int64(p.QueueBytes()))
	}
	if to.spans != nil {
		to.spans.portDrop(p, pkt)
	}
}

func (to *trialObs) HostDeliver(h *netsim.Host, pkt *netsim.Packet) {
	if to.spans != nil {
		to.spans.hostDeliver(h, pkt)
	}
}

func (to *trialObs) LinkState(p *netsim.Port, down bool) {
	if to.flight != nil {
		v := int64(0)
		if down {
			v = 1
		}
		to.flight.noteRaw(p.Sim().Now(), fkLink, to.portLabel(p), 0, v, 0)
	}
}

// --- watchdog-facing hook callbacks ---

func (to *trialObs) slotEnd(p *netsim.Port, info core.SlotInfo) {
	if to.flight != nil {
		to.flight.noteRaw(info.Time, fkSlot, to.portLabel(p), 0, int64(info.T), int64(info.E))
	}
	to.token.check(p, info)
	to.zeroq.check(p, info)
}

func (to *trialObs) pause(p *netsim.Port, flow netsim.FlowID, paused bool) {
	if to.flight != nil {
		v := int64(0)
		if paused {
			v = 1
		}
		to.flight.noteRaw(p.Sim().Now(), fkPause, to.portLabel(p), int64(flow), v, 0)
	}
	to.pair.check(p, flow, paused)
}

func (to *trialObs) rtoFired(now sim.Time, flow netsim.FlowID, backoff uint) {
	if to.flight != nil {
		to.flight.noteRaw(now, fkRTO, "", int64(flow), int64(backoff), 0)
	}
	to.rto.check(now, flow, backoff)
}
