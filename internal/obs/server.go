package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// server is the live introspection endpoint: GET /snapshot returns the
// JSON view below, GET / renders it as a minimal auto-refreshing HTML
// table. All reads go through lock-free Pulse mailboxes, atomic snapshot
// pointers, and the observatory's own locks — never into live simulator
// state — so serving requests cannot perturb or race a running trial.
// The same goroutine that computes event rates doubles as the
// shard-liveness watchdog.
type server struct {
	o     *Observatory
	ln    net.Listener
	hs    *http.Server
	stop0 chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	prev    map[*trialObs]uint64 // last sampled executed count
	stalled map[*trialObs]int    // consecutive stalled samples
	flagged map[*trialObs]bool   // liveness violation already reported
}

// SnapshotJSON is the endpoint's top-level response shape.
type SnapshotJSON struct {
	Schema     string      `json:"schema"`
	Run        string      `json:"run"`
	Violations uint64      `json:"violations"`
	Trials     []TrialJSON `json:"trials"`
}

// TrialJSON is one trial's live view.
type TrialJSON struct {
	Key          string      `json:"key"`
	Run          string      `json:"run"`
	Done         bool        `json:"done"`
	VirtualNs    int64       `json:"virtual_ns"`
	Executed     uint64      `json:"executed"`
	EventsPerSec uint64      `json:"events_per_sec"`
	ActiveFlows  int         `json:"active_flows"`
	Shards       []ShardJSON `json:"shards,omitempty"`
	Group        *GroupJSON  `json:"group,omitempty"`
	Ports        []PortSnap  `json:"ports,omitempty"`
}

// ShardJSON is one engine shard's live progress.
type ShardJSON struct {
	VirtualNs int64  `json:"virtual_ns"`
	Executed  uint64 `json:"executed"`
}

// GroupJSON is the sharded engine's self-profile, included once a trial
// finishes (the underlying counters are not synchronized mid-run).
type GroupJSON struct {
	Shards        int    `json:"shards"`
	LookaheadNs   int64  `json:"lookahead_ns"`
	Epochs        uint64 `json:"epochs"`
	Ties          uint64 `json:"ties"`
	InstantEvents uint64 `json:"instant_events"`
	MailDelivered uint64 `json:"mail_delivered"`
	MailPeak      int    `json:"mail_peak"`
	HeapDispatch  uint64 `json:"heap_dispatch"`
	LaneDispatch  uint64 `json:"lane_dispatch"`
}

func newServer(o *Observatory) (*server, error) {
	ln, err := net.Listen("tcp", o.opts.HTTPAddr)
	if err != nil {
		return nil, err
	}
	s := &server{
		o: o, ln: ln, stop0: make(chan struct{}),
		prev:    make(map[*trialObs]uint64),
		stalled: make(map[*trialObs]int),
		flagged: make(map[*trialObs]bool),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/", s.handleIndex)
	s.hs = &http.Server{Handler: mux}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.hs.Serve(ln) //nolint:errcheck — Serve always returns on Close
	}()
	go s.monitor()
	fmt.Fprintf(os.Stderr, "obs: live endpoint on http://%s/\n", ln.Addr())
	return s, nil
}

func (s *server) addr() string { return s.ln.Addr().String() }

func (s *server) stop() {
	close(s.stop0)
	s.hs.Close()
	s.wg.Wait()
}

// monitor samples every trial's progress each second: it feeds the
// endpoint's events/sec column and implements the shard-liveness
// watchdog (a started, unfinished trial whose engines execute nothing
// for LivenessSec consecutive seconds is wedged — likely a barrier
// deadlock — and is reported once).
func (s *server) monitor() {
	defer s.wg.Done()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-s.stop0:
			return
		case <-tick.C:
		}
		for _, to := range s.o.snapshotTrials() {
			_, exec := to.progress()
			s.mu.Lock()
			prev, seen := s.prev[to]
			s.prev[to] = exec
			delta := exec - prev
			if !seen {
				delta = 0
			}
			stallFlag := false
			if to.done.Load() {
				s.stalled[to] = 0
			} else if seen && delta == 0 && exec > 0 {
				s.stalled[to]++
				if s.stalled[to] >= s.o.opts.LivenessSec && !s.flagged[to] {
					s.flagged[to] = true
					stallFlag = true
				}
			} else {
				s.stalled[to] = 0
			}
			s.mu.Unlock()
			to.rate.Store(delta)
			if stallFlag && s.o.opts.Watchdogs {
				s.o.violation(to, "shard-liveness",
					fmt.Sprintf("no events executed for %ds of wall time (executed=%d)",
						s.o.opts.LivenessSec, exec))
			}
		}
	}
}

// progress reads the trial's lock-free pulse mailboxes: the control
// simulator's virtual time and the total executed event count across
// control and shards.
func (to *trialObs) progress() (virtualNs int64, executed uint64) {
	if to.pulse != nil {
		t, e := to.pulse.Load()
		virtualNs, executed = int64(t), e
	}
	for _, p := range to.shardPulses {
		_, e := p.Load()
		executed += e
	}
	return virtualNs, executed
}

// snapshot assembles the endpoint response.
func (s *server) snapshot() SnapshotJSON {
	s.o.mu.Lock()
	run := s.o.run
	s.o.mu.Unlock()
	out := SnapshotJSON{
		Schema:     "tfcsim-obs-v1",
		Run:        run,
		Violations: s.o.Violations(),
	}
	trials := s.o.snapshotTrials()
	sort.Slice(trials, func(i, j int) bool {
		if trials[i].run != trials[j].run {
			return trials[i].run < trials[j].run
		}
		return trials[i].key < trials[j].key
	})
	for _, to := range trials {
		vt, exec := to.progress()
		tj := TrialJSON{
			Key:          to.key,
			Run:          to.run,
			Done:         to.done.Load(),
			VirtualNs:    vt,
			Executed:     exec,
			EventsPerSec: to.rate.Load(),
		}
		for _, p := range to.shardPulses {
			t, e := p.Load()
			tj.Shards = append(tj.Shards, ShardJSON{VirtualNs: int64(t), Executed: e})
		}
		if snap := to.snap.Load(); snap != nil {
			tj.ActiveFlows = snap.ActiveFlows
			tj.Ports = snap.Ports
		}
		if tj.Done && to.group != nil {
			gs := to.group.Stats()
			gj := &GroupJSON{
				Shards: gs.Shards, LookaheadNs: int64(gs.Lookahead),
				Epochs: gs.Epochs, Ties: gs.Ties,
				InstantEvents: gs.InstantEvents,
				MailDelivered: gs.MailDelivered, MailPeak: gs.MailPeak,
			}
			for _, sh := range gs.PerShard {
				gj.HeapDispatch += sh.HeapDispatch
				gj.LaneDispatch += sh.LaneDispatch
			}
			tj.Group = gj
		}
		out.Trials = append(out.Trials, tj)
	}
	return out
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(s.snapshot()) //nolint:errcheck — client gone is fine
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	snap := s.snapshot()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!doctype html><html><head><meta http-equiv="refresh" content="1">
<title>tfcsim observatory</title>
<style>body{font:13px monospace;margin:1em}table{border-collapse:collapse}
td,th{border:1px solid #999;padding:2px 8px;text-align:right}
th{background:#eee}td:first-child{text-align:left}</style></head><body>
<h3>tfcsim observatory — run %s — %d watchdog violation(s)</h3>
<table><tr><th>trial</th><th>state</th><th>virtual ms</th><th>events</th>
<th>ev/s</th><th>flows</th><th>shards</th><th>max queue B</th></tr>
`, html.EscapeString(snap.Run), snap.Violations)
	for _, t := range snap.Trials {
		state := "running"
		if t.Done {
			state = "done"
		}
		var maxQ int64
		for _, p := range t.Ports {
			if p.QueueBytes > maxQ {
				maxQ = p.QueueBytes
			}
		}
		shards := 1
		if len(t.Shards) > 0 {
			shards = len(t.Shards)
		}
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%.2f</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>\n",
			html.EscapeString(t.Run+"/"+t.Key), state, float64(t.VirtualNs)/1e6,
			t.Executed, t.EventsPerSec, t.ActiveFlows, shards, maxQ)
	}
	fmt.Fprint(w, "</table></body></html>\n")
}
