package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ValidateSpans checks the causal packet-span schema in a trace-event
// JSON file: every cat="span" X event carries a known hop name and
// integer seq/hop/parent args with parent = hop-1; within each chain
// (pid, tid, seq), ordered by (ts, hop), hops advance by one with each
// hop starting where its predecessor ended (monotone, contiguous
// timestamps); and every run of hops closes with exactly one terminal
// ("deliver", "drop", "abort" or "open"). A chain may hold several runs
// — a delivered-but-retransmitted seq restarts at hop 0 — and the first
// retained run may be front-truncated when the recorder ring evicted
// its oldest events, so only runs after the first must start at hop 0.
// Used by cmd/tracecheck and the CI schema gate.
func ValidateSpans(r io.Reader) error {
	// Args decode as any: metadata events carry string args in the same
	// files.
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return fmt.Errorf("spans: not valid JSON: %w", err)
	}
	type hopEvent struct {
		name    string
		ts, dur float64
		hop     int64
	}
	type chainKey struct {
		pid, tid int
		seq      int64
	}
	chains := make(map[chainKey][]hopEvent)
	var order []chainKey // deterministic reporting order: first appearance
	for i, ev := range tf.TraceEvents {
		if ev.Ph != "X" || ev.Cat != SpanCat {
			continue
		}
		if !SpanHop(ev.Name) {
			return fmt.Errorf("spans: event %d: unknown hop name %q", i, ev.Name)
		}
		seq, ok := intArg(ev.Args, "seq")
		if !ok {
			return fmt.Errorf("spans: event %d (%s): missing integer seq arg", i, ev.Name)
		}
		hop, ok := intArg(ev.Args, "hop")
		if !ok || hop < 0 {
			return fmt.Errorf("spans: event %d (%s): missing or negative integer hop arg", i, ev.Name)
		}
		parent, ok := intArg(ev.Args, "parent")
		if !ok || parent != hop-1 {
			return fmt.Errorf("spans: event %d (%s): broken parent linkage (hop=%d parent arg=%v)",
				i, ev.Name, hop, ev.Args["parent"])
		}
		if ev.Dur < 0 {
			return fmt.Errorf("spans: event %d (%s): negative dur", i, ev.Name)
		}
		k := chainKey{ev.Pid, ev.Tid, seq}
		if _, seen := chains[k]; !seen {
			order = append(order, k)
		}
		chains[k] = append(chains[k], hopEvent{name: ev.Name, ts: ev.Ts, dur: ev.Dur, hop: hop})
	}
	// Hop starts are microseconds derived from integer nanoseconds; a
	// contiguous chain reassembles to float error only.
	const tol = 1e-3
	for _, k := range order {
		hops := chains[k]
		// File order is the recorder's canonical total order, which breaks
		// timestamp ties by event fields, not hop index — a zero-duration
		// hop and its successor share a start time. Causal order within a
		// chain is (ts, hop).
		sort.Slice(hops, func(i, j int) bool {
			if hops[i].ts != hops[j].ts {
				return hops[i].ts < hops[j].ts
			}
			return hops[i].hop < hops[j].hop
		})
		// Split the chain into runs at hop resets and check each run.
		start, firstRun := 0, true
		for j := 1; j <= len(hops); j++ {
			if j < len(hops) && hops[j].hop == hops[j-1].hop+1 {
				prev := hops[j-1]
				gap := hops[j].ts - (prev.ts + prev.dur)
				if gap > tol || gap < -tol {
					return fmt.Errorf("spans: chain pid=%d tid=%d seq=%d: hop timestamps not contiguous (%s ends at %v, %s starts at %v)",
						k.pid, k.tid, k.seq, prev.name, prev.ts+prev.dur, hops[j].name, hops[j].ts)
				}
				continue
			}
			run := hops[start:j]
			if !firstRun && run[0].hop != 0 {
				return fmt.Errorf("spans: chain pid=%d tid=%d seq=%d: restarted run begins at hop %d, want 0",
					k.pid, k.tid, k.seq, run[0].hop)
			}
			for m, h := range run {
				if SpanTerminal(h.name) != (m == len(run)-1) {
					return fmt.Errorf("spans: chain pid=%d tid=%d seq=%d: incomplete run — %q at position %d of %d",
						k.pid, k.tid, k.seq, h.name, m, len(run))
				}
			}
			start, firstRun = j, false
		}
	}
	return nil
}

// intArg extracts an integer-valued numeric arg.
func intArg(args map[string]any, key string) (int64, bool) {
	v, ok := args[key].(float64)
	if !ok || v != float64(int64(v)) {
		return 0, false
	}
	return int64(v), true
}
