package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// Flight-recorder event kinds (interned constants: ring appends never
// allocate).
const (
	fkEnqueue = "enq"
	fkDequeue = "deq"
	fkDrop    = "drop"
	fkSlot    = "slot"
	fkPause   = "pause"
	fkRTO     = "rto"
	fkLink    = "link"
)

// flightEvent is one fixed-size ring entry. A and B are kind-specific:
// enq/deq/drop carry (seq, queue bytes after), slot carries (token
// value, effective flows), pause carries (paused, 0), rto carries
// (backoff, 0), link carries (down, 0).
type flightEvent struct {
	At   sim.Time `json:"t_ns"`
	Kind string   `json:"kind"`
	Port string   `json:"port,omitempty"`
	Flow int64    `json:"flow"`
	A    int64    `json:"a"`
	B    int64    `json:"b"`
}

// portLast is the flight recorder's rolling per-port view: the last seen
// queue depth and event time, dumped as the sorted state snapshot.
type portLast struct {
	Port       string   `json:"port"`
	LastNs     sim.Time `json:"last_ns"`
	QueueBytes int64    `json:"queue_bytes"`
	Events     int64    `json:"events"`
}

// flightRing is a bounded ring of recent probe events plus a per-port
// last-state map, all trial-local and mutex-guarded: a watchdog
// violation dumps a consistent view without touching live simulation
// state from the wrong goroutine. Appends are fixed-cost and
// allocation-free after warm-up.
type flightRing struct {
	mu    sync.Mutex
	buf   []flightEvent
	next  int
	full  bool
	total uint64
	ports map[string]*portLast
}

func newFlightRing(cap int) *flightRing {
	return &flightRing{
		buf:   make([]flightEvent, cap),
		ports: make(map[string]*portLast),
	}
}

// note records a packet event (kinds enq/deq/drop).
func (r *flightRing) note(at sim.Time, kind, port string, pkt *netsim.Packet, qBytes int64) {
	r.noteRaw(at, kind, port, int64(pkt.Flow), pkt.Seq, qBytes)
}

// noteRaw records an event with kind-specific payload values.
func (r *flightRing) noteRaw(at sim.Time, kind, port string, flow, a, b int64) {
	r.mu.Lock()
	r.buf[r.next] = flightEvent{At: at, Kind: kind, Port: port, Flow: flow, A: a, B: b}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	if port != "" {
		pl := r.ports[port]
		if pl == nil {
			pl = &portLast{Port: port}
			r.ports[port] = pl
		}
		pl.LastNs = at
		pl.Events++
		switch kind {
		case fkEnqueue, fkDequeue, fkDrop:
			pl.QueueBytes = b
		}
	}
	r.mu.Unlock()
}

// flightDump is the on-disk dump shape.
type flightDump struct {
	Schema   string        `json:"schema"`
	Run      string        `json:"run"`
	Trial    string        `json:"trial"`
	Watchdog string        `json:"watchdog"`
	Detail   string        `json:"detail"`
	Dropped  uint64        `json:"events_dropped"`
	Ports    []portLast    `json:"ports"`
	Recent   []flightEvent `json:"recent"`
}

// dump writes the ring (oldest first) and the sorted per-port state
// snapshot to path as JSON.
func (r *flightRing) dump(path, run, trial, watchdog, detail string) error {
	r.mu.Lock()
	var recent []flightEvent
	if r.full {
		recent = append(recent, r.buf[r.next:]...)
		recent = append(recent, r.buf[:r.next]...)
	} else {
		recent = append(recent, r.buf[:r.next]...)
	}
	ports := make([]portLast, 0, len(r.ports))
	for _, pl := range r.ports {
		ports = append(ports, *pl)
	}
	total := r.total
	r.mu.Unlock()
	sort.Slice(ports, func(i, j int) bool { return ports[i].Port < ports[j].Port })
	dropped := uint64(0)
	if total > uint64(len(recent)) {
		dropped = total - uint64(len(recent))
	}
	d := flightDump{
		Schema: "tfcsim-flight-v1", Run: run, Trial: trial,
		Watchdog: watchdog, Detail: detail, Dropped: dropped,
		Ports: ports, Recent: recent,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// portSnapKey formats a port's unique snapshot label, matching
// telemetry's metric key shape (labels alone can collide; node IDs
// cannot).
func portSnapKey(p *netsim.Port) string {
	return fmt.Sprintf("%s#%d-%d", p.Label, p.Owner.ID(), p.Peer.ID())
}
