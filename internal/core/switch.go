// Package core implements TFC (Token Flow Control), the paper's
// contribution: switches convert link capacity into tokens every time slot
// (one delimiter-flow RTT), count effective flows from RM-marked packets,
// assign each flow W = T/E via header rewriting, and — to survive massive
// fan-in — pace sub-MSS windows with a per-port ACK delay arbiter.
package core

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/transport"
)

// SwitchConfig parameterizes TFC's switch-side behaviour. Zero fields take
// the paper's defaults (§6.1.1): ρ0 = 0.97, α = 7/8, initial rtt_b = 160 µs.
type SwitchConfig struct {
	// Rho0 is the expected link utilization target.
	Rho0 float64
	// Alpha is the EWMA weight of the historical token value (eq. 8).
	Alpha float64
	// InitRTTB is the initial base-RTT estimate before any measurement.
	InitRTTB sim.Time
	// MSS is the segment size used by the delay arbiter.
	MSS int
	// MinRTTFrame is the minimum marked-frame size used for rtt_b
	// measurement (§4.4: only frames ≥ 1500 B, so store-and-forward time
	// is comparable across samples).
	MinRTTFrame int
	// TClampFactor bounds the adjusted token value to this multiple of the
	// base BDP (robustness guard for near-idle slots).
	TClampFactor float64
	// RhoFloor bounds the measured utilization away from zero.
	RhoFloor float64
	// MaxMissK caps the delimiter-miss exponential backoff (paper: 7).
	MaxMissK int

	// Ablation switches (all false = full TFC).
	DisableDelay    bool // §4.6 ACK delay function off
	DisableAdjust   bool // §4.5 token adjustment off
	DisableDecouple bool // §4.4 decoupling off: tokens use rtt_m

	// OnSlot, if set, is invoked at the end of every time slot with the
	// slot's measurements (drives Figs 6 and 7).
	OnSlot func(port *netsim.Port, info SlotInfo)

	// Probe, if set, receives TFC control-plane telemetry (slot closes,
	// window stamps, delay-arbiter holds/grants). Disabled path is one
	// nil-check per event; implementations must not mutate sim state.
	Probe Probe

	// TestTokenSkew, when nonzero, is added to the token value after every
	// slot's clamping — a deliberately broken accounting used only by the
	// observability tests to prove the token-conservation watchdog catches
	// a real violation. Never set outside tests.
	TestTokenSkew float64
}

// Probe observes TFC's control plane for the telemetry layer
// (internal/telemetry). All callbacks are read-only observers.
type Probe interface {
	// SlotEnd runs when a time slot closes at a port, after token
	// adjustment (eqs. 7-8) and window computation.
	SlotEnd(port *netsim.Port, info SlotInfo)
	// WindowStamp runs when a passing packet's window field is stamped
	// down to the port's assignment.
	WindowStamp(port *netsim.Port, flow netsim.FlowID, window int64)
	// DelayHold runs when the ACK delay arbiter queues an RMA ACK;
	// held is the arbiter queue length including this ACK.
	DelayHold(port *netsim.Port, flow netsim.FlowID, held int)
	// DelayGrant runs when a held ACK is released; held is the queue
	// length after the release.
	DelayGrant(port *netsim.Port, flow netsim.FlowID, held int)
}

func (c *SwitchConfig) fillDefaults() {
	if c.Rho0 == 0 {
		c.Rho0 = 0.97
	}
	if c.Alpha == 0 {
		c.Alpha = 7.0 / 8
	}
	if c.InitRTTB == 0 {
		c.InitRTTB = 160 * sim.Microsecond
	}
	if c.MSS == 0 {
		c.MSS = transport.DefaultMSS
	}
	if c.MinRTTFrame == 0 {
		c.MinRTTFrame = 1500
	}
	if c.TClampFactor == 0 {
		c.TClampFactor = 16
	}
	if c.RhoFloor == 0 {
		c.RhoFloor = 1.0 / 64
	}
	if c.MaxMissK == 0 {
		c.MaxMissK = 7
	}
}

// SlotInfo reports one completed time slot at a port.
type SlotInfo struct {
	Time sim.Time // slot end
	RTTm sim.Time // instantaneous delimiter RTT (slot duration)
	RTTb sim.Time // base RTT estimate after this slot
	E    int      // effective flows counted in the slot
	Rho  float64  // measured utilization
	T    float64  // token value after adjustment (bytes)
	W    float64  // window assigned for the next slot (bytes)
}

type heldAck struct {
	pkt *netsim.Packet
	out *netsim.Port
}

// PortState is TFC's per-output-port state: token computation, effective
// flow counting, delimiter tracking, and the ACK delay arbiter. It is the
// netsim.PortHook for its port.
type PortState struct {
	cfg  *SwitchConfig
	s    *sim.Simulator
	port *netsim.Port
	bps  float64 // link rate, bytes per second

	// Token machinery.
	rttb      sim.Time
	hasDelim  bool
	delim     netsim.FlowID
	tstart    sim.Time
	slotLarge bool // the RM frame that started the slot was >= MinRTTFrame
	e         int
	a         int64 // arrived data bytes this slot
	t         float64
	w         float64
	eSmooth   float64  // EWMA of per-slot E (quantization damping)
	sumA      float64  // decayed arrival bytes (rho numerator)
	sumT      float64  // decayed seconds (rho denominator)
	aCum      int64    // cumulative arrival wire bytes (never reset)
	lastACum  int64    // aCum at the last accounted slot boundary
	lastRhoAt sim.Time // time of the last accounted slot boundary
	lastRTTm  sim.Time
	missK     int
	dTimer    sim.Timer

	// Delay arbiter (token bucket over the data direction of this port).
	counter    float64
	lastRefill sim.Time
	delayQ     []heldAck
	release    sim.Timer

	// Statistics.
	Slots       int64
	DelayedAcks int64
	Stamped     int64
}

func newPortState(s *sim.Simulator, p *netsim.Port, cfg *SwitchConfig) *PortState {
	st := &PortState{
		cfg:  cfg,
		s:    s,
		port: p,
		bps:  p.Rate.BytesPerSecond(),
		rttb: cfg.InitRTTB,
	}
	st.t = st.bps * st.rttb.Seconds() * cfg.Rho0
	st.w = st.t
	return st
}

// Window returns the window (bytes) currently assigned to passing flows.
func (st *PortState) Window() float64 { return st.w }

// Tokens returns the current token value (bytes per slot).
func (st *PortState) Tokens() float64 { return st.t }

// EffectiveFlows returns the count accumulated in the slot in progress.
func (st *PortState) EffectiveFlows() int { return st.e }

// RTTB returns the base (queueing-free) RTT estimate.
func (st *PortState) RTTB() sim.Time { return st.rttb }

// MissK returns the delimiter-miss backoff exponent (0 when slots are
// completing normally; capped at MaxMissK).
func (st *PortState) MissK() int { return st.missK }

// OnRateChange implements netsim.RateObserver: a mid-run rate change
// (fault injection) refreshes the cached line rate so token computation
// and the delay arbiter size against the degraded link from then on.
func (st *PortState) OnRateChange(p *netsim.Port) { st.bps = p.Rate.BytesPerSecond() }

// OnEnqueue implements netsim.PortHook: the TFC data path (paper Event 1).
func (st *PortState) OnEnqueue(pkt *netsim.Packet, port *netsim.Port) bool {
	if pkt.Flags&netsim.FlagACK != 0 {
		return true // reverse-direction traffic passes untouched
	}
	// Arrival accounting uses wire bytes (frame + preamble/IFG) so that a
	// saturated link measures rho = 1.0 > rho0. That gap is what lets the
	// token adjustment drain a standing queue: with rho pinned at 1, T is
	// pulled to rho0*c*rtt_b every slot until the queue empties, at which
	// point rtt_m finally exposes the true base RTT and rtt_b locks in.
	st.a += int64(pkt.WireBytes())
	st.aCum += int64(pkt.WireBytes())
	if pkt.Flags&netsim.FlagFIN != 0 {
		if st.hasDelim && pkt.Flow == st.delim {
			st.dropDelimiter()
		}
		return true
	}
	weight := int(pkt.Weight)
	if weight == 0 {
		weight = 1
	}
	if pkt.Flags&netsim.FlagRM != 0 {
		switch {
		case !st.hasDelim:
			// Any RM packet (SYN, window-acquisition probe, or data) may
			// start the slot structure. Accepting control packets here is
			// essential for cold start: a burst of new flows on an idle
			// port must complete a slot (SYN -> probe) so that the probes
			// are stamped with W = T/E *before* any data flies (§4.6).
			st.adopt(pkt)
		case pkt.Flow == st.delim:
			st.endSlot(pkt)
		default:
			// E accumulates share weights, so W below is the per-unit-
			// weight window and a weight-w flow receives w shares.
			st.e += weight
		}
	}
	// Stamp the window field down to this port's assignment. The stamp is
	// min(W, T/e) where e is the running effective-flow count of the slot
	// in progress: when a surge of new flows arrives mid-slot (e.g. a
	// synchronized fan-in of SYNs followed one RTT later by their
	// window-acquisition probes), later packets already see the tightened
	// allocation instead of waiting a full slot for W to be recomputed.
	// In steady state e reaches E just as the slot ends, so this reduces
	// to the paper's W = T/E.
	w := st.w
	if st.e > 0 {
		if we := st.t / float64(st.e); we < w {
			w = we
		}
	}
	w *= float64(weight)
	if wi := int64(w); pkt.Window > wi {
		if wi < 1 {
			wi = 1
		}
		pkt.Window = wi
		st.Stamped++
		if st.cfg.Probe != nil {
			st.cfg.Probe.WindowStamp(st.port, pkt.Flow, wi)
		}
	}
	return true
}

// adopt catches a new delimiter flow (paper Init / delimiter replacement).
func (st *PortState) adopt(pkt *netsim.Packet) {
	st.hasDelim = true
	st.delim = pkt.Flow
	st.tstart = st.s.Now()
	st.slotLarge = pkt.FrameBytes() >= st.cfg.MinRTTFrame
	st.e = int(pkt.Weight)
	if st.e == 0 {
		st.e = 1
	}
	st.a = 0
	st.armDelimTimer(st.lastRTTmOrInit())
}

func (st *PortState) lastRTTmOrInit() sim.Time {
	if st.lastRTTm > 0 {
		return st.lastRTTm
	}
	return st.cfg.InitRTTB
}

// endSlot closes the current time slot on arrival of the delimiter's RM
// data packet: measure rtt_m, update rtt_b, adjust tokens (eqs. 7–8),
// compute the next window (eq. 5), and start the next slot.
func (st *PortState) endSlot(pkt *netsim.Packet) {
	now := st.s.Now()
	rttm := now - st.tstart
	if rttm <= 0 {
		rttm = sim.Microsecond
	}

	// rtt_b uses only slots delimited by full-size frames on both ends
	// (§4.4): store-and-forward time differs per frame size, so a slot
	// started by a small control frame under-measures the base RTT.
	// All-time minimum: the monotone min is what stabilizes the control
	// loop — any windowed/forgetting variant lets queue-inflated samples
	// raise rtt_b, which raises T, which deepens the queue (positive
	// feedback). The cost is that after a delimiter change to a
	// longer-RTT flow, tokens stay sized for the old minimum; the token
	// adjustment's rho feedback absorbs that (§4.5).
	endLarge := pkt.FrameBytes() >= st.cfg.MinRTTFrame
	if endLarge && st.slotLarge && rttm < st.rttb {
		st.rttb = rttm
	}
	st.slotLarge = endLarge
	var rho float64
	if st.cfg.DisableAdjust {
		rho = st.cfg.Rho0 // neutralizes eq. 7
	} else {
		// Utilization as an exponentially-decayed ratio of sums over
		// intervals that tile the entire timeline (cumulative counters,
		// never reset at adoption or sync slots). Anything less is
		// biased: slots end exactly when the delimiter's marked packet
		// (the head of its window burst) arrives, and delimiter churn
		// discards idle stretches, so per-slot ratios overstate
		// utilization and starve the work-conserving boost.
		st.sumA = st.cfg.Alpha*st.sumA + float64(st.aCum-st.lastACum)
		st.sumT = st.cfg.Alpha*st.sumT + (now - st.lastRhoAt).Seconds()
		st.lastACum = st.aCum
		st.lastRhoAt = now
		rho = st.sumA / (st.bps * st.sumT)
		if rho < st.cfg.RhoFloor {
			rho = st.cfg.RhoFloor
		}
	}
	// Upward correction: rtt_b is "the minimum measured RTT of the
	// delimiter flow" (§4.4), so after the delimiter changes to a
	// longer-path flow, the inherited minimum undersizes the tokens
	// relative to the new slot duration and flows stall at one packet
	// per round. That regime is detectable — persistent under-utilization
	// together with slots much longer than rtt_b — and crucially is
	// distinguishable from queueing (which always shows rho ~ 1), so the
	// bounded raise below cannot couple rtt_b to the queue.
	if !st.cfg.DisableAdjust && st.rttb < st.cfg.InitRTTB && st.port.QueueBytes() == 0 {
		if rho < st.cfg.Rho0-0.03 && rttm > st.rttb*5/4 {
			st.rttb += st.rttb / 16
			if st.rttb > st.cfg.InitRTTB {
				st.rttb = st.cfg.InitRTTB
			}
		}
	}
	tokRTT := st.rttb
	if st.cfg.DisableDecouple {
		tokRTT = rttm
	}
	bdp := st.bps * tokRTT.Seconds()
	target := bdp * st.cfg.Rho0 / rho
	// Slew-limit the per-slot target: near-idle slots (e.g. during
	// handshakes) measure rho ~ 0 and would otherwise command a massive
	// one-slot boost that bursts the buffer before flows even start.
	if target > 4*st.t {
		target = 4 * st.t
	} else if target < st.t/4 {
		target = st.t / 4
	}
	st.t = st.cfg.Alpha*st.t + (1-st.cfg.Alpha)*target
	if maxT := bdp * st.cfg.TClampFactor; st.t > maxT {
		st.t = maxT
	}
	if minT := float64(st.cfg.MSS); st.t < minT {
		st.t = minT
	}
	st.t += st.cfg.TestTokenSkew
	// E is an integer count of marked packets, but its true value
	// (eq. 1: sum of t/rtt_f) is fractional; with non-integer RTT ratios
	// the per-slot count alternates (e.g. a flow with 1.5 rounds per slot
	// counts 1, then 2). Dividing raw counts into T makes W swing +-20%
	// every slot, and window-limited flows deliver the *harmonic* mean of
	// a swinging window — strictly less than the mean. A light EWMA
	// recovers the fractional value the paper's formula intends.
	if st.eSmooth == 0 {
		st.eSmooth = float64(st.e)
	} else {
		st.eSmooth = 0.75*st.eSmooth + 0.25*float64(st.e)
	}
	st.w = st.t / st.eSmooth
	st.Slots++
	if st.cfg.OnSlot != nil || st.cfg.Probe != nil {
		info := SlotInfo{
			Time: now, RTTm: rttm, RTTb: st.rttb, E: st.e,
			Rho: rho, T: st.t, W: st.w,
		}
		if st.cfg.OnSlot != nil {
			st.cfg.OnSlot(st.port, info)
		}
		if st.cfg.Probe != nil {
			st.cfg.Probe.SlotEnd(st.port, info)
		}
	}
	st.e = int(pkt.Weight)
	if st.e == 0 {
		st.e = 1
	}
	st.a = 0
	st.tstart = now
	st.lastRTTm = rttm
	st.missK = 0
	st.armDelimTimer(rttm)
}

// armDelimTimer schedules delimiter-staleness detection at 2^(k+1)·rtt_last.
func (st *PortState) armDelimTimer(rttLast sim.Time) {
	st.dTimer.Stop()
	shift := uint(st.missK + 1)
	if shift > uint(st.cfg.MaxMissK) {
		shift = uint(st.cfg.MaxMissK)
	}
	st.dTimer = st.s.After(rttLast<<shift, st.onDelimMiss)
}

func (st *PortState) onDelimMiss() {
	if st.missK < st.cfg.MaxMissK {
		st.missK++
	}
	st.hasDelim = false // catch the next RM data packet as the new delimiter
}

func (st *PortState) dropDelimiter() {
	st.hasDelim = false
	st.dTimer.Stop()
}

// --- ACK delay arbiter (paper §4.6, Event 2) ---

// paceBps is the arbiter's refill rate: rho0 of the line rate. Refilling
// at the full line rate would admit exactly as fast as the port drains,
// so a queue formed by any transient burst would persist forever; the
// rho0 margin drains it, mirroring how the token value targets rho0.
func (st *PortState) paceBps() float64 { return st.bps * st.cfg.Rho0 }

func (st *PortState) refill() {
	now := st.s.Now()
	st.counter += st.paceBps() * (now - st.lastRefill).Seconds()
	if cap := st.wireCost(float64(st.cfg.MSS)); st.counter > cap {
		st.counter = cap
	}
	st.lastRefill = now
}

func (st *PortState) floorCounter() {
	floor := -st.t
	if f2 := -4 * float64(st.cfg.MSS); f2 < floor {
		floor = f2
	}
	if st.counter < floor {
		st.counter = floor
	}
}

// wireCost converts a window of payload bytes to the wire bytes its
// packets will occupy (headers + preamble/IFG); the counter refills at
// line rate in wire bytes, so admissions must be charged likewise or the
// arbiter over-admits by the header overhead ratio (~5%) and the queue
// creeps until it overflows.
func (st *PortState) wireCost(payload float64) float64 {
	per := float64(netsim.MSS + netsim.HeaderBytes + netsim.WireOverheadBytes)
	return payload * per / float64(st.cfg.MSS)
}

// handleRMA implements Event 2 for an RMA ACK whose data direction flows
// through this port. It returns true if the ACK was queued for delayed
// release (ownership taken).
func (st *PortState) handleRMA(pkt *netsim.Packet, out *netsim.Port) bool {
	st.refill()
	mss := st.wireCost(float64(st.cfg.MSS))
	if pkt.Window >= int64(st.cfg.MSS) {
		// Large windows pass immediately, consuming their share.
		st.counter -= st.wireCost(float64(pkt.Window))
		st.floorCounter()
		return false
	}
	if len(st.delayQ) == 0 && st.counter >= mss {
		pkt.Window = int64(st.cfg.MSS)
		st.counter -= mss
		return false
	}
	//tfcvet:allow poolsafe,hotalloc — deliberate ownership transfer (returning true tells the switch the ACK is held; onRelease re-injects it), and the hold queue drains by truncation so its backing array amortizes to steady capacity
	st.delayQ = append(st.delayQ, heldAck{pkt, out})
	st.DelayedAcks++
	if st.cfg.Probe != nil {
		st.cfg.Probe.DelayHold(st.port, pkt.Flow, len(st.delayQ))
	}
	st.scheduleRelease()
	return true
}

func (st *PortState) scheduleRelease() {
	if st.release.Active() {
		return
	}
	mss := st.wireCost(float64(st.cfg.MSS))
	need := mss - st.counter
	d := sim.Time(need / st.paceBps() * float64(sim.Second))
	if d < 1 {
		d = 1
	}
	st.release = st.s.After(d, st.onRelease)
}

func (st *PortState) onRelease() {
	st.refill()
	mss := st.wireCost(float64(st.cfg.MSS))
	for len(st.delayQ) > 0 && st.counter >= mss {
		h := st.delayQ[0]
		copy(st.delayQ, st.delayQ[1:])
		st.delayQ[len(st.delayQ)-1] = heldAck{}
		st.delayQ = st.delayQ[:len(st.delayQ)-1]
		h.pkt.Window = int64(st.cfg.MSS)
		st.counter -= mss
		if st.cfg.Probe != nil {
			st.cfg.Probe.DelayGrant(st.port, h.pkt.Flow, len(st.delayQ))
		}
		h.out.Enqueue(h.pkt)
	}
	if len(st.delayQ) > 0 {
		st.scheduleRelease()
	}
}

// DelayQueueLen returns the number of ACKs currently held by the arbiter.
func (st *PortState) DelayQueueLen() int { return len(st.delayQ) }

// SwitchState binds TFC port state to every port of one switch and
// implements the netsim.Interceptor that routes RMA ACKs through the delay
// arbiter of their data-direction port.
type SwitchState struct {
	cfg    SwitchConfig
	sw     *netsim.Switch
	states map[*netsim.Port]*PortState
}

// Attach enables TFC on a switch: every port gets a PortState hook, and
// the switch gets the RMA interceptor. The SwitchConfig is copied; the
// returned SwitchState allows inspection.
func Attach(s *sim.Simulator, sw *netsim.Switch, cfg SwitchConfig) *SwitchState {
	cfg.fillDefaults()
	ss := &SwitchState{cfg: cfg, sw: sw, states: make(map[*netsim.Port]*PortState)}
	for _, p := range sw.Ports() {
		st := newPortState(s, p, &ss.cfg)
		st.lastRefill = s.Now()
		p.Hook = st
		ss.states[p] = st
	}
	sw.Interceptor = ss
	return ss
}

// PortState returns the TFC state of one of the switch's ports.
func (ss *SwitchState) PortState(p *netsim.Port) *PortState { return ss.states[p] }

// Intercept implements netsim.Interceptor: RMA ACKs consult the delay
// arbiter of the port their data traverses (the route toward the ACK's
// source, i.e. the data receiver).
func (ss *SwitchState) Intercept(pkt *netsim.Packet, out *netsim.Port, sw *netsim.Switch) bool {
	const rmaAck = netsim.FlagACK | netsim.FlagRMA
	if pkt.Flags&rmaAck != rmaAck || ss.cfg.DisableDelay {
		return false
	}
	dataPort := sw.PortFor(pkt.Flow, pkt.Src)
	st := ss.states[dataPort]
	if st == nil {
		return false
	}
	return st.handleRMA(pkt, out)
}
