package core

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/transport"
)

// init registers TFC with the transport registry so workloads and
// experiments resolve it by name ("tfc") like any other transport.
func init() {
	transport.Register("tfc", transport.Factory{
		Desc:    "Token Flow Control: switch-computed per-round windows (the paper's scheme)",
		Compare: true,
		Dial: func(c transport.DialConfig) transport.Conn {
			s, r := Dial(Config{
				Sim: c.Sim, Local: c.Local, Peer: c.Peer, Flow: c.Flow,
				MSS: c.MSS, MinRTO: c.MinRTO,
				OnDrain: c.OnDrain, OnComplete: c.OnComplete,
			})
			return transport.Conn{Sender: s, Received: r.Received, SRTT: s.SRTT}
		},
		Attach: func(a transport.AttachConfig) any {
			cfg := SwitchConfig{}
			if k, ok := a.Knobs.(*SwitchConfig); ok && k != nil {
				cfg = *k
			}
			if p, ok := a.Probe.(Probe); ok && p != nil {
				cfg.Probe = p
			}
			states := make(map[*netsim.Switch]*SwitchState, len(a.Switches))
			for _, sw := range a.Switches {
				// Each switch's state runs on its own shard simulator.
				states[sw] = Attach(sw.Sim(), sw, cfg)
			}
			return states
		},
	})
}
