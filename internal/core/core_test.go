package core

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// rig: nSenders hosts -> sw -> recv host, all 1 Gbps, 5us links, TFC on sw.
type rig struct {
	s       *sim.Simulator
	net     *netsim.Network
	senders []*netsim.Host
	recv    *netsim.Host
	sw      *netsim.Switch
	ss      *SwitchState
	bott    *netsim.Port
}

func newRig(nSenders, bufBytes int, scfg SwitchConfig) *rig {
	s := sim.New(7)
	net := netsim.NewNetwork(s)
	sw := net.NewSwitch("sw")
	recv := net.NewHost("recv")
	cfg := netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond}
	r := &rig{s: s, net: net, recv: recv, sw: sw}
	recv.ProcJitter = 10 * sim.Microsecond
	for i := 0; i < nSenders; i++ {
		h := net.NewHost("h")
		h.ProcJitter = 10 * sim.Microsecond
		net.Connect(h, sw, cfg)
		r.senders = append(r.senders, h)
	}
	net.Connect(sw, recv, netsim.LinkConfig{
		Rate: netsim.Gbps, Delay: 5 * sim.Microsecond, BufA: bufBytes,
	})
	net.ComputeRoutes()
	r.ss = Attach(s, sw, scfg)
	r.bott = sw.PortTo(recv.ID())
	return r
}

func (r *rig) conn(i int, flow netsim.FlowID, opts ...func(*Config)) (*Sender, *Receiver) {
	cfg := Config{Sim: r.s, Local: r.senders[i], Peer: r.recv, Flow: flow}
	for _, o := range opts {
		o(&cfg)
	}
	return Dial(cfg)
}

func TestSingleFlowTransfer(t *testing.T) {
	r := newRig(1, 256<<10, SwitchConfig{})
	snd, rcv := r.conn(0, 1)
	done := false
	r.s.At(0, func() {
		snd.cfg.OnComplete = func() { done = true }
		snd.Open()
		snd.Send(1 << 20)
		snd.Close()
	})
	r.s.Run()
	if !done {
		t.Fatal("transfer did not complete")
	}
	if rcv.Received() != 1<<20 {
		t.Fatalf("received %d, want %d", rcv.Received(), 1<<20)
	}
	if snd.Stats().Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0", snd.Stats().Timeouts)
	}
	if snd.RMAs == 0 {
		t.Fatal("no RMA window updates received")
	}
}

func TestWindowAcquisitionBeforeData(t *testing.T) {
	// The sender must not transmit payload until the window-acquisition
	// probe's RMA returns (paper §4.6): verify the first data packet
	// leaves only after at least one RMA was received.
	r := newRig(1, 256<<10, SwitchConfig{})
	snd, _ := r.conn(0, 1)
	r.s.At(0, func() {
		snd.Open()
		snd.Send(100 * 1460)
	})
	// Step the simulation; whenever data is in flight, an RMA must have
	// already arrived.
	for i := 0; i < 2000 && snd.Acked() < 100*1460; i++ {
		r.s.RunUntil(r.s.Now() + 10*sim.Microsecond)
		if snd.sndNxt > 0 && snd.RMAs == 0 {
			t.Fatal("data sent before window acquisition completed")
		}
	}
	if snd.RMAs == 0 {
		t.Fatal("flow never acquired a window")
	}
}

func TestGoodputNearRho0(t *testing.T) {
	r := newRig(1, 256<<10, SwitchConfig{})
	snd, _ := r.conn(0, 1)
	r.s.At(0, func() {
		snd.Open()
		snd.Send(1 << 30)
	})
	r.s.RunUntil(500 * sim.Millisecond)
	// Skip the first 100ms of convergence.
	ackedAt100 := int64(0)
	r2 := newRig(1, 256<<10, SwitchConfig{})
	snd2, _ := r2.conn(0, 1)
	r2.s.At(0, func() { snd2.Open(); snd2.Send(1 << 30) })
	r2.s.RunUntil(100 * sim.Millisecond)
	ackedAt100 = snd2.Acked()
	r2.s.RunUntil(500 * sim.Millisecond)
	goodput := float64(snd2.Acked()-ackedAt100) * 8 / 0.4 // bits/s over [100,500]ms
	// Payload goodput target: rho0 * payload efficiency ~ 0.97*0.949 = 0.921.
	if goodput < 0.85e9 || goodput > 0.96e9 {
		t.Fatalf("steady goodput = %.1f Mbps, want ~900-940", goodput/1e6)
	}
	_ = snd.Acked()
}

func TestNearZeroQueue(t *testing.T) {
	r := newRig(4, 256<<10, SwitchConfig{})
	for i := 0; i < 4; i++ {
		snd, _ := r.conn(i, netsim.FlowID(i+1))
		r.s.At(sim.Time(i)*10*sim.Millisecond, func() {
			snd.Open()
			snd.Send(1 << 30)
		})
	}
	r.s.RunUntil(200 * sim.Millisecond)
	// Paper Fig 8: TFC max queue ~9 KB (vs DCTCP 30KB, TCP 256KB).
	if r.bott.MaxQueue > 30<<10 {
		t.Fatalf("max queue = %d bytes, want near-zero (<30KB)", r.bott.MaxQueue)
	}
	if r.bott.Drops != 0 {
		t.Fatalf("drops = %d, want 0", r.bott.Drops)
	}
}

func TestTwoFlowFastConvergenceAndFairness(t *testing.T) {
	r := newRig(2, 256<<10, SwitchConfig{})
	s1, _ := r.conn(0, 1)
	s2, _ := r.conn(1, 2)
	r.s.At(0, func() { s1.Open(); s1.Send(1 << 30) })
	r.s.At(50*sim.Millisecond, func() { s2.Open(); s2.Send(1 << 30) })
	// Flow 2 should reach its fair window within a few RTTs (~100us each).
	r.s.RunUntil(52 * sim.Millisecond)
	w1, w2 := s1.Cwnd(), s2.Cwnd()
	if w2 == 0 {
		t.Fatal("flow 2 has no window 2ms after start")
	}
	ratio := float64(w1) / float64(w2)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("windows not converged 2ms after join: w1=%d w2=%d", w1, w2)
	}
	// Long-run byte fairness.
	base1, base2 := s1.Acked(), s2.Acked()
	r.s.RunUntil(152 * sim.Millisecond)
	d1, d2 := s1.Acked()-base1, s2.Acked()-base2
	fr := float64(d1) / float64(d2)
	if fr < 0.8 || fr > 1.25 {
		t.Fatalf("long-run shares unfair: %d vs %d", d1, d2)
	}
}

func TestEffectiveFlowCount(t *testing.T) {
	const n = 8
	r := newRig(n, 256<<10, SwitchConfig{})
	for i := 0; i < n; i++ {
		snd, _ := r.conn(i, netsim.FlowID(i+1))
		r.s.At(0, func() { snd.Open(); snd.Send(1 << 30) })
	}
	var lastE int
	r.ss.cfg.OnSlot = func(p *netsim.Port, info SlotInfo) {
		if p == r.bott {
			lastE = info.E
		}
	}
	r.s.RunUntil(100 * sim.Millisecond)
	// All senders share one RTT, so E should approach n.
	if lastE < n-2 || lastE > n+2 {
		t.Fatalf("measured E = %d, want ~%d", lastE, n)
	}
}

func TestInactiveFlowsExcluded(t *testing.T) {
	// 4 active + 4 flows that stop sending: E must fall back to ~4.
	const n = 8
	r := newRig(n, 256<<10, SwitchConfig{})
	var snds []*Sender
	for i := 0; i < n; i++ {
		snd, _ := r.conn(i, netsim.FlowID(i+1))
		snds = append(snds, snd)
		r.s.At(0, func() { snd.Open(); snd.Send(2 << 20) })
	}
	// Keep flows 0-3 fed forever; flows 4-7 go silent after their 2MB.
	feed := func() {
		for i := 0; i < 4; i++ {
			snds[i].Send(2 << 20)
		}
	}
	for ms := 10; ms < 300; ms += 10 {
		r.s.At(sim.Time(ms)*sim.Millisecond, feed)
	}
	var lastE int
	r.ss.cfg.OnSlot = func(p *netsim.Port, info SlotInfo) {
		if p == r.bott {
			lastE = info.E
		}
	}
	r.s.RunUntil(250 * sim.Millisecond)
	if lastE < 3 || lastE > 5 {
		t.Fatalf("E with 4 active + 4 silent flows = %d, want ~4", lastE)
	}
}

func TestRTTBConvergesToBaseRTT(t *testing.T) {
	r := newRig(2, 256<<10, SwitchConfig{})
	for i := 0; i < 2; i++ {
		snd, _ := r.conn(i, netsim.FlowID(i+1))
		r.s.At(0, func() { snd.Open(); snd.Send(1 << 30) })
	}
	r.s.RunUntil(100 * sim.Millisecond)
	st := r.ss.PortState(r.bott)
	rttb := st.RTTB()
	// Base path RTT: data 2 hops (~12.3us tx + 5us prop each) plus ACK
	// return (~0.7us+5us each) ≈ 46us. rttb must be well under the
	// initial 160us and above the pure propagation floor.
	if rttb >= 160*sim.Microsecond {
		t.Fatalf("rttb never updated from init: %v", rttb)
	}
	if rttb < 20*sim.Microsecond || rttb > 100*sim.Microsecond {
		t.Fatalf("rttb = %v, want ~30-80us for this topology", rttb)
	}
}

func TestHighFanInNoLossWithDelayArbiter(t *testing.T) {
	// 100 concurrent senders, 64KB switch buffer: fair window ~0.13 MSS.
	// The ACK delay function must pace admissions so nothing drops
	// (paper Fig 12: TFC keeps ~0 loss at 100 senders; DCTCP/TCP collapse).
	const n = 100
	r := newRig(n, 64<<10, SwitchConfig{})
	done := 0
	for i := 0; i < n; i++ {
		snd, _ := r.conn(i, netsim.FlowID(i+1), func(c *Config) {})
		snd.cfg.OnComplete = func() { done++ }
		r.s.At(0, func() {
			snd.Open()
			snd.Send(64 << 10)
			snd.Close()
		})
	}
	r.s.RunUntil(2 * sim.Second)
	if r.bott.Drops != 0 {
		t.Fatalf("drops = %d with delay arbiter, want 0", r.bott.Drops)
	}
	if done != n {
		t.Fatalf("completed %d of %d flows", done, n)
	}
	st := r.ss.PortState(r.bott)
	if st.DelayedAcks == 0 {
		t.Fatal("delay arbiter never engaged despite sub-MSS windows")
	}
}

func TestHighFanInDropsWithoutDelayArbiter(t *testing.T) {
	// Ablation A2: same scenario with the delay function disabled must
	// overwhelm the 64KB buffer (every sender keeps >=1 MSS in flight).
	const n = 100
	r := newRig(n, 64<<10, SwitchConfig{DisableDelay: true})
	for i := 0; i < n; i++ {
		snd, _ := r.conn(i, netsim.FlowID(i+1))
		r.s.At(0, func() {
			snd.Open()
			snd.Send(64 << 10)
			snd.Close()
		})
	}
	r.s.RunUntil(500 * sim.Millisecond)
	if r.bott.Drops == 0 {
		t.Fatal("expected drops without the delay function")
	}
}

func TestOnOffFlowReclaimsBandwidth(t *testing.T) {
	// One flow goes silent; the remaining flow's window should grow to
	// take over the freed capacity within a few slots (fast convergence
	// to efficiency — the D3 silent-flow problem TFC solves, §2).
	r := newRig(2, 256<<10, SwitchConfig{})
	s1, _ := r.conn(0, 1)
	s2, _ := r.conn(1, 2)
	r.s.At(0, func() { s1.Open(); s1.Send(1 << 30) })
	r.s.At(0, func() { s2.Open(); s2.Send(5 << 20) }) // finite: goes silent
	r.s.RunUntil(150 * sim.Millisecond)
	if s2.Acked() != 5<<20 {
		t.Fatalf("flow2 stalled at %d", s2.Acked())
	}
	base := s1.Acked()
	r.s.RunUntil(250 * sim.Millisecond)
	// Survivor must grow well past its former half share (~450 Mbps)
	// toward the single-flow rate (~800+ Mbps; the remaining gap to line
	// rate is the jitter-vs-rtt_b effect discussed in §4.5).
	goodput := float64(s1.Acked()-base) * 8 / 0.1
	if goodput < 0.70e9 {
		t.Fatalf("survivor goodput = %.1f Mbps, silent flow's share not reclaimed", goodput/1e6)
	}
}

func TestSlotCallbackFields(t *testing.T) {
	r := newRig(1, 256<<10, SwitchConfig{})
	var infos []SlotInfo
	r.ss.cfg.OnSlot = func(p *netsim.Port, info SlotInfo) {
		if p == r.bott {
			infos = append(infos, info)
		}
	}
	snd, _ := r.conn(0, 1)
	r.s.At(0, func() { snd.Open(); snd.Send(10 << 20) })
	r.s.RunUntil(50 * sim.Millisecond)
	if len(infos) < 10 {
		t.Fatalf("only %d slots in 50ms", len(infos))
	}
	for _, in := range infos {
		if in.RTTm <= 0 || in.RTTb <= 0 || in.E < 1 || in.T <= 0 || in.W <= 0 {
			t.Fatalf("bad slot info: %+v", in)
		}
		if in.W > in.T {
			t.Fatalf("W > T: %+v", in)
		}
	}
}

func TestDelimiterFailover(t *testing.T) {
	// The delimiter flow finishes with a FIN; slots must keep ending
	// afterwards using a new delimiter.
	r := newRig(2, 256<<10, SwitchConfig{})
	s1, _ := r.conn(0, 1)
	s2, _ := r.conn(1, 2)
	// Flow 1 starts first (becomes delimiter) and ends quickly.
	r.s.At(0, func() { s1.Open(); s1.Send(1 << 20); s1.Close() })
	r.s.At(sim.Millisecond, func() { s2.Open(); s2.Send(1 << 30) })
	st := r.ss.PortState(r.bott)
	r.s.RunUntil(50 * sim.Millisecond)
	slotsMid := st.Slots
	r.s.RunUntil(100 * sim.Millisecond)
	if st.Slots <= slotsMid {
		t.Fatal("slots stopped ending after delimiter flow finished")
	}
	if !st.hasDelim || st.delim != 2 {
		t.Fatalf("delimiter not failed over: hasDelim=%v delim=%d", st.hasDelim, st.delim)
	}
}

func TestDelimiterTimerRecoversFromSilence(t *testing.T) {
	// The delimiter goes silent without FIN (on-off). After 2^k*rtt the
	// switch must drop it and adopt the other flow.
	r := newRig(2, 256<<10, SwitchConfig{})
	s1, _ := r.conn(0, 1)
	s2, _ := r.conn(1, 2)
	r.s.At(0, func() { s1.Open(); s1.Send(1 << 20) }) // no Close: silent after 1MB
	r.s.At(sim.Millisecond, func() { s2.Open(); s2.Send(1 << 30) })
	st := r.ss.PortState(r.bott)
	r.s.RunUntil(200 * sim.Millisecond)
	if st.delim != 2 {
		t.Fatalf("delimiter = flow %d, want failover to flow 2", st.delim)
	}
	// Flow 2 should be running at (single-flow) full speed.
	base := s2.Acked()
	r.s.RunUntil(300 * sim.Millisecond)
	goodput := float64(s2.Acked()-base) * 8 / 0.1
	if goodput < 0.70e9 {
		t.Fatalf("goodput after delimiter recovery = %.1f Mbps", goodput/1e6)
	}
}

func TestDecouplingPreventsQueueFeedback(t *testing.T) {
	// Ablation A3: with rtt_m used for tokens (coupling), queueing delay
	// inflates tokens which inflates queues. Full TFC must show a smaller
	// max queue than the coupled variant.
	run := func(disable bool) float64 {
		r := newRig(4, 1<<20, SwitchConfig{DisableDecouple: disable})
		for i := 0; i < 4; i++ {
			snd, _ := r.conn(i, netsim.FlowID(i+1))
			r.s.At(0, func() { snd.Open(); snd.Send(1 << 30) })
		}
		// Compare steady state (after convergence), not cold-start spikes.
		r.s.RunUntil(150 * sim.Millisecond)
		var sum float64
		n := 0
		for r.s.Now() < 300*sim.Millisecond {
			r.s.RunUntil(r.s.Now() + 50*sim.Microsecond)
			sum += float64(r.bott.QueueBytes())
			n++
		}
		return sum / float64(n)
	}
	qFull, qCoupled := run(false), run(true)
	if qFull > qCoupled/2 {
		t.Fatalf("decoupling did not help: avg queue full=%.0f coupled=%.0f", qFull, qCoupled)
	}
}

func TestEmptyFlowCompletes(t *testing.T) {
	r := newRig(1, 256<<10, SwitchConfig{})
	snd, rcv := r.conn(0, 1)
	done := false
	r.s.At(0, func() {
		snd.cfg.OnComplete = func() { done = true }
		snd.Open()
		snd.Close()
	})
	r.s.Run()
	if !done {
		t.Fatal("zero-byte flow did not complete")
	}
	if rcv.FinAt == 0 {
		t.Fatal("FIN missing")
	}
}

func TestPersistentOnDrain(t *testing.T) {
	r := newRig(1, 256<<10, SwitchConfig{})
	drains := 0
	snd, _ := r.conn(0, 1, func(c *Config) { c.OnDrain = func() { drains++ } })
	r.s.At(0, func() { snd.Open(); snd.Send(100 * 1460) })
	r.s.At(50*sim.Millisecond, func() { snd.Send(100 * 1460) })
	r.s.RunUntil(100 * sim.Millisecond)
	if drains != 2 {
		t.Fatalf("OnDrain fired %d times, want 2", drains)
	}
}

func TestTokenAdjustmentBoostsUnderutilizedLink(t *testing.T) {
	// Work-conserving core mechanism (§4.5): a port whose sole flow is
	// bottlenecked elsewhere should raise T above BDP so other flows can
	// use the slack. Simplest check: with adjustment on, a single flow
	// achieves ~rho0; with adjustment off it still works but utilization
	// must not exceed rho0 either; so instead verify T rises above
	// c*rtt_b when the measured utilization is low.
	r := newRig(2, 256<<10, SwitchConfig{})
	// Flow with a 100 Mbps "application limit": send small chunks spaced out.
	s1, _ := r.conn(0, 1)
	r.s.At(0, func() { s1.Open() })
	for us := 0; us < 200000; us += 1000 {
		r.s.At(sim.Time(us)*sim.Microsecond, func() { s1.Send(12500) }) // 100 Mbps
	}
	r.s.RunUntil(150 * sim.Millisecond)
	st := r.ss.PortState(r.bott)
	bdp := float64(netsim.Gbps) / 8 * st.RTTB().Seconds()
	if st.Tokens() < 1.5*bdp {
		t.Fatalf("tokens = %.0f, want boosted well above BDP %.0f on underutilized link",
			st.Tokens(), bdp)
	}
}
