package core

import (
	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
	"tfcsim/internal/transport"
)

// Config parameterizes one TFC connection.
type Config struct {
	Sim   *sim.Simulator
	Local *netsim.Host // sender side
	Peer  *netsim.Host // receiver side
	Flow  netsim.FlowID

	MSS    int
	MinRTO sim.Time // default 200ms (loss is rare under TFC; kept for parity with TCP)
	MaxRTO sim.Time
	RcvWnd int64 // receiver advertised window (min'd into RMA windows)
	// Weight is the flow's share weight for TFC's weighted allocation
	// policy (paper §4.1): a weight-w flow is assigned w fair shares of
	// the token pool at every switch. Default 1; max 255.
	Weight int

	// OnDrain fires whenever all queued bytes become acknowledged.
	OnDrain func()
	// OnComplete fires once when the flow closes fully acknowledged.
	OnComplete func()
}

func (c *Config) fillDefaults() {
	if c.MSS == 0 {
		c.MSS = transport.DefaultMSS
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * sim.Second
	}
	if c.RcvWnd == 0 {
		c.RcvWnd = transport.DefaultRcvWnd
	}
	if c.Weight <= 0 {
		c.Weight = 1
	} else if c.Weight > 255 {
		c.Weight = 255
	}
}

// Sender states.
const (
	stClosed = iota
	stSynSent
	stAwaitWindow // window-acquisition phase (paper §4.6)
	stData
	stDone
)

// Sender is the sending half of a TFC connection. Its congestion window is
// entirely switch-assigned: it is whatever the last RMA ACK carried. The
// sender marks the first packet of every round with RM (one RM per RMA
// received), giving switches their effective-flow count and RTT samples.
type Sender struct {
	cfg Config
	st  transport.Stats
	est *transport.RTTEstimator

	state    int
	sndUna   int64
	sndNxt   int64
	budget   int64
	closing  bool
	finSent  bool
	cwnd     int64 // bytes; from last RMA
	markNext bool
	dupacks  int

	rto        *transport.RTOTimer
	rtoBackoff uint
	lastAckAt  sim.Time
	minRTT     sim.Time // smallest RTT sample seen (pacing-free baseline)
	tailSeq    int64    // seq of the in-flight window-limited sub-MSS segment, -1 if none

	// RMAs counts window updates received (diagnostics).
	RMAs int64
	// Probes counts window-acquisition probes sent (initial + resumes).
	Probes int64
}

// NewSender creates (and registers at the local host) a TFC sender.
func NewSender(cfg Config) *Sender {
	cfg.fillDefaults()
	s := &Sender{
		cfg:     cfg,
		est:     transport.NewRTTEstimator(cfg.MinRTO, cfg.MaxRTO, 0),
		tailSeq: -1,
	}
	s.rto = transport.NewRTOTimer(cfg.Sim, s.onRTO)
	cfg.Local.Register(cfg.Flow, s)
	return s
}

// Dial creates a TFC sender and its matching receiver. The receiver runs
// on the peer host's simulator — distinct from cfg.Sim once the network
// is partitioned across shards.
func Dial(cfg Config) (*Sender, *Receiver) {
	s := NewSender(cfg)
	r := NewReceiver(cfg.Peer.Sim(), cfg.Peer, cfg.Local, cfg.Flow, cfg.RcvWnd)
	return s, r
}

// Stats exposes the flow statistics record.
func (s *Sender) Stats() *transport.Stats { return &s.st }

// Acked returns cumulative acknowledged bytes.
func (s *Sender) Acked() int64 { return s.sndUna }

// Queued returns cumulative bytes handed to Send.
func (s *Sender) Queued() int64 { return s.budget }

// Cwnd returns the switch-assigned window in bytes.
func (s *Sender) Cwnd() int64 { return s.cwnd }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() sim.Time { return s.est.SRTT() }

// Open sends the RM-marked SYN (counted by switches, Fig 2).
func (s *Sender) Open() {
	if s.state != stClosed {
		return
	}
	s.state = stSynSent
	s.st.Start = s.cfg.Sim.Now()
	s.sendSYN()
}

// Send queues n more bytes on the stream. A flow resuming after an idle
// period re-acquires its window with a probe first: its stale window no
// longer reflects the switch's allocation (the flow was not counted in E
// while silent), and a synchronized resume — e.g. every round of a
// barrier incast — would otherwise burst one stale window per flow into
// the bottleneck. This mirrors the establishment-time window-acquisition
// phase (§4.6) applied to the on-off flows of §2.
func (s *Sender) Send(n int64) {
	if n <= 0 || s.closing {
		return
	}
	wasIdle := s.state == stData && s.sndUna == s.budget
	s.budget += n
	if s.state != stData {
		return
	}
	if wasIdle && s.cfg.Sim.Now()-s.lastAckAt > s.idleProbeAfter() {
		s.state = stAwaitWindow
		s.sendProbe()
		return
	}
	s.trySend()
}

// idleProbeAfter is the silence gap beyond which a resume re-probes. It
// is based on the minimum observed RTT, not SRTT: under the switch delay
// arbiter, RTT samples include pacing delay (up to one token-bucket cycle
// of the whole fan-in), which would push an SRTT-based threshold past the
// barrier gaps of synchronized workloads and let every round start with a
// one-packet-per-flow burst.
func (s *Sender) idleProbeAfter() sim.Time {
	if s.minRTT > 0 {
		return 2 * s.minRTT
	}
	return sim.Millisecond
}

func (s *Sender) observeRTT(rtt sim.Time) {
	s.est.Observe(rtt)
	if s.minRTT == 0 || rtt < s.minRTT {
		s.minRTT = rtt
	}
}

// Close marks the stream finished; FIN goes out once drained.
func (s *Sender) Close() {
	s.closing = true
	if (s.state == stData || s.state == stAwaitWindow) && s.sndUna == s.budget {
		s.finish()
	}
}

func (s *Sender) flight() int64 { return s.sndNxt - s.sndUna }

func (s *Sender) sendSYN() {
	p := s.cfg.Local.NewPacket()
	*p = netsim.Packet{
		Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
		Flags:  netsim.FlagSYN | netsim.FlagRM,
		SentAt: s.cfg.Sim.Now(), Window: netsim.WindowUnset,
		Weight: uint8(s.cfg.Weight),
	}
	s.cfg.Local.Send(p)
	s.armRTO()
}

// sendProbe emits the zero-payload RM packet of the window-acquisition
// phase: it is counted as an effective flow and its RMA ACK carries the
// proper window before any data is transmitted, avoiding the burst drops
// of synchronized new flows (paper §4.6).
func (s *Sender) sendProbe() {
	s.Probes++
	p := s.cfg.Local.NewPacket()
	*p = netsim.Packet{
		Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
		Flags:  netsim.FlagRM,
		Seq:    s.sndNxt,
		SentAt: s.cfg.Sim.Now(), Window: netsim.WindowUnset,
		Weight: uint8(s.cfg.Weight),
	}
	s.cfg.Local.Send(p)
	s.armRTO()
}

func (s *Sender) mkData(seq int64, n int, rm bool) *netsim.Packet {
	p := s.cfg.Local.NewPacket()
	*p = netsim.Packet{
		Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
		Seq: seq, Payload: n, SentAt: s.cfg.Sim.Now(), Window: netsim.WindowUnset,
		Weight: uint8(s.cfg.Weight),
	}
	if rm {
		p.Flags |= netsim.FlagRM
	}
	return p
}

func (s *Sender) trySend() {
	if s.state != stData {
		return
	}
	// The switch assigns byte windows that rarely land on packet
	// multiples; the sender fills the window *exactly*, emitting a final
	// sub-MSS segment when needed (as a window-limited Linux stack does).
	// Exact fill matters in both directions: systematic overshoot builds
	// a standing queue that hides the base RTT from the switch's rtt_b
	// min-filter forever, while flooring to whole packets wastes up to
	// one MSS per flow per RTT, which with few flows parks utilization
	// far below rho0. A window below one MSS degenerates to one small
	// packet per RMA — and with the switch delay arbiter active, such
	// RMAs arrive bumped to one MSS and paced (§4.6).
	mss := int64(s.cfg.MSS)
	target := s.cwnd
	if target < mss {
		target = mss // never below one packet (arbiter-disabled fallback)
	}
	for s.sndNxt < s.budget {
		rem := s.budget - s.sndNxt
		seg := mss
		if rem < seg {
			seg = rem
		}
		room := target - s.flight()
		if room <= 0 {
			break
		}
		// The round mark goes on a full-size segment: switches measure
		// rtt_b only between >=1500B marked frames (§4.4), so marking a
		// window's sub-MSS tail chunk would starve that estimator — and
		// because exact fill re-sends whatever size each ACK freed,
		// odd-sized segments perpetuate, so waiting for a naturally
		// full-size slot can starve the mark forever. A marked segment
		// therefore always ships whole, tolerating a sub-MSS transient
		// overshoot that also realigns the segment ring; unmarked
		// segments fill the window exactly. Message tails and sub-MSS
		// windows mark whatever they can send.
		rm := s.markNext && (seg == mss || rem == seg || s.cwnd < mss)
		if !rm && room < seg {
			seg = room
		}
		if seg < mss && rem > seg {
			// Window-limited sub-MSS segment. Allow at most one in flight
			// (Nagle-style): every odd-sized segment, once ACKed, frees an
			// odd-sized amount of window that would be re-sent at the same
			// odd size, so unbounded small segments fragment the window
			// into a storm of tiny packets whose header overhead consumes
			// a large share of the link. Waiting one ACK lets room grow
			// back to a full segment.
			if s.tailSeq >= 0 && s.sndUna <= s.tailSeq {
				break
			}
			s.tailSeq = s.sndNxt
		}
		if s.st.FirstSend == 0 {
			s.st.FirstSend = s.cfg.Sim.Now()
		}
		s.cfg.Local.Send(s.mkData(s.sndNxt, int(seg), rm))
		if rm {
			s.markNext = false
		}
		s.sndNxt += seg
	}
	if s.flight() > 0 && !s.rto.Armed() {
		s.armRTO()
	}
}

func (s *Sender) retransmit(seq int64) {
	seg := int64(s.cfg.MSS)
	if rem := s.budget - seq; rem < seg {
		seg = rem
	}
	if seg <= 0 {
		return
	}
	s.st.RtxBytes += seg
	s.cfg.Local.Send(s.mkData(seq, int(seg), s.markNext))
	s.markNext = false
}

func (s *Sender) armRTO() {
	// Clamp before shifting: the naive d << backoff overflows int64 for
	// backoffs past ~32 and slips past a post-shift MaxRTO check (see the
	// identical fix in internal/tcp).
	d := s.est.RTO()
	if d > s.cfg.MaxRTO>>s.rtoBackoff {
		d = s.cfg.MaxRTO
	} else {
		d <<= s.rtoBackoff
	}
	s.rto.Arm(d)
}

func (s *Sender) onRTO() {
	switch s.state {
	case stSynSent:
		s.st.Timeouts++
		s.rtoBackoff++
		s.sendSYN()
	case stAwaitWindow:
		s.st.Timeouts++
		s.rtoBackoff++
		s.sendProbe()
	case stData:
		if s.flight() <= 0 {
			return
		}
		s.st.Timeouts++
		s.rtoBackoff++
		s.sndNxt = s.sndUna // go-back-N
		s.tailSeq = -1
		s.markNext = true // re-mark so switches re-count us
		s.dupacks = 0
		s.st.RtxBytes += minI64(int64(s.cfg.MSS), s.budget-s.sndUna)
		s.trySend()
		s.armRTO()
	}
}

// Deliver processes SYNACKs and (RMA-)ACKs.
func (s *Sender) Deliver(pkt *netsim.Packet) {
	if s.state == stDone {
		return
	}
	if pkt.Flags&netsim.FlagSYN != 0 && pkt.Flags&netsim.FlagACK != 0 {
		if s.state == stSynSent {
			s.state = stAwaitWindow
			s.rtoBackoff = 0
			s.observeRTT(s.cfg.Sim.Now() - pkt.SentAt)
			s.sendProbe()
		}
		return
	}
	if pkt.Flags&netsim.FlagACK == 0 {
		return
	}
	s.lastAckAt = s.cfg.Sim.Now()
	if pkt.Flags&netsim.FlagRMA != 0 {
		s.RMAs++
		s.cwnd = pkt.Window
		s.markNext = true
		if s.state == stAwaitWindow {
			// Window acquired: enter the data phase.
			s.state = stData
			s.rtoBackoff = 0
			s.rto.Stop()
			if s.budget == 0 && s.closing {
				s.finish()
				return
			}
		}
	}
	if s.state != stData {
		return
	}
	ack := pkt.Ack
	switch {
	case ack > s.sndUna:
		s.st.BytesAcked += ack - s.sndUna
		s.observeRTT(s.cfg.Sim.Now() - pkt.SentAt)
		s.sndUna = ack
		if s.sndNxt < s.sndUna {
			s.sndNxt = s.sndUna
		}
		s.rtoBackoff = 0
		s.dupacks = 0
		if s.flight() > 0 {
			s.armRTO()
		} else {
			s.rto.Stop()
		}
		s.trySend()
		if s.sndUna == s.budget {
			if s.cfg.OnDrain != nil {
				s.cfg.OnDrain()
			}
			if s.closing {
				s.finish()
			}
		}
	case ack == s.sndUna && s.flight() > 0:
		// TFC has no loss-driven window to cut; dup-ACK-triggered
		// retransmission simply repairs the (rare) hole.
		s.dupacks++
		if s.dupacks == 3 {
			s.st.FastRtx++
			s.retransmit(s.sndUna)
			s.armRTO()
		}
	}
	s.trySend()
}

func (s *Sender) finish() {
	if s.state == stDone {
		return
	}
	s.state = stDone
	if !s.finSent {
		s.finSent = true
		p := s.cfg.Local.NewPacket()
		*p = netsim.Packet{
			Flow: s.cfg.Flow, Src: s.cfg.Local.ID(), Dst: s.cfg.Peer.ID(),
			Flags: netsim.FlagFIN, Seq: s.sndNxt,
			SentAt: s.cfg.Sim.Now(), Window: netsim.WindowUnset,
		}
		s.cfg.Local.Send(p)
	}
	s.rto.Stop()
	s.st.Done = true
	s.st.Completed = s.cfg.Sim.Now()
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete()
	}
}

// Receiver is the receiving half: per-packet cumulative ACKs; packets
// carrying RM are answered with RMA ACKs whose window field is
// min(advertised window, the window stamped by switches on the RM packet)
// — paper §5.3.
type Receiver struct {
	sim   *sim.Simulator
	host  *netsim.Host
	peer  *netsim.Host
	flow  netsim.FlowID
	awnd  int64
	reasm transport.Reassembly

	// FinAt records FIN arrival (0 if none).
	FinAt sim.Time
	// OnData fires after every in-order advance.
	OnData func(total int64)
}

// NewReceiver creates (and registers at host) a TFC receiver.
func NewReceiver(s *sim.Simulator, host, peer *netsim.Host, flow netsim.FlowID, awnd int64) *Receiver {
	if awnd == 0 {
		awnd = transport.DefaultRcvWnd
	}
	r := &Receiver{sim: s, host: host, peer: peer, flow: flow, awnd: awnd}
	host.Register(flow, r)
	return r
}

// Received returns cumulative in-order bytes.
func (r *Receiver) Received() int64 { return r.reasm.Next() }

// Deliver processes an arriving packet.
func (r *Receiver) Deliver(pkt *netsim.Packet) {
	switch {
	case pkt.Flags&netsim.FlagSYN != 0:
		p := r.host.NewPacket()
		*p = netsim.Packet{
			Flow: r.flow, Src: r.host.ID(), Dst: r.peer.ID(),
			Flags: netsim.FlagSYN | netsim.FlagACK, Ack: r.reasm.Next(),
			SentAt: pkt.SentAt, Window: netsim.WindowUnset,
		}
		r.host.Send(p)
	case pkt.Flags&netsim.FlagFIN != 0:
		r.FinAt = r.sim.Now()
	case pkt.Payload > 0 || pkt.Flags&netsim.FlagRM != 0:
		before := r.reasm.Next()
		next := before
		if pkt.Payload > 0 {
			next = r.reasm.Add(pkt.Seq, pkt.Payload)
		}
		ack := r.host.NewPacket()
		*ack = netsim.Packet{
			Flow: r.flow, Src: r.host.ID(), Dst: r.peer.ID(),
			Flags: netsim.FlagACK, Ack: next,
			SentAt: pkt.SentAt, Window: netsim.WindowUnset,
		}
		if pkt.Flags&netsim.FlagRM != 0 {
			ack.Flags |= netsim.FlagRMA
			w := pkt.Window
			if w > r.awnd {
				w = r.awnd
			}
			ack.Window = w
		}
		r.host.Send(ack)
		if next > before && r.OnData != nil {
			r.OnData(next)
		}
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
