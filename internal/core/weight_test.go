package core

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// Weighted allocation (paper §4.1: the token pool may be divided by "any
// allocation policies"): a weight-w flow receives w fair shares.

func TestWeightedAllocationTwoToOne(t *testing.T) {
	r := newRig(2, 256<<10, SwitchConfig{})
	heavy, _ := r.conn(0, 1, func(c *Config) { c.Weight = 2 })
	light, _ := r.conn(1, 2, func(c *Config) { c.Weight = 1 })
	r.s.At(0, func() { heavy.Open(); heavy.Send(1 << 30) })
	r.s.At(0, func() { light.Open(); light.Send(1 << 30) })
	// Skip convergence, then measure shares.
	r.s.RunUntil(100 * sim.Millisecond)
	b1, b2 := heavy.Acked(), light.Acked()
	r.s.RunUntil(300 * sim.Millisecond)
	d1, d2 := heavy.Acked()-b1, light.Acked()-b2
	ratio := float64(d1) / float64(d2)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("weighted share ratio = %.2f, want ~2.0 (got %d vs %d bytes)", ratio, d1, d2)
	}
	// Aggregate still near rho0 capacity, queue still near zero.
	agg := float64(d1+d2) * 8 / 0.2
	if agg < 0.8e9 {
		t.Fatalf("aggregate %.1f Mbps under weighted allocation", agg/1e6)
	}
	if r.bott.Drops != 0 {
		t.Fatal("weighted allocation caused drops")
	}
}

func TestWeightDefaultsToFair(t *testing.T) {
	// Weight 0 (unset) behaves exactly like weight 1.
	r := newRig(2, 256<<10, SwitchConfig{})
	a, _ := r.conn(0, 1) // default weight
	b, _ := r.conn(1, 2, func(c *Config) { c.Weight = 1 })
	r.s.At(0, func() { a.Open(); a.Send(1 << 30) })
	r.s.At(0, func() { b.Open(); b.Send(1 << 30) })
	r.s.RunUntil(100 * sim.Millisecond)
	b1, b2 := a.Acked(), b.Acked()
	r.s.RunUntil(250 * sim.Millisecond)
	d1, d2 := a.Acked()-b1, b.Acked()-b2
	ratio := float64(d1) / float64(d2)
	if ratio < 0.85 || ratio > 1.18 {
		t.Fatalf("default-weight shares unequal: %.2f", ratio)
	}
}

func TestWeightClamping(t *testing.T) {
	cfg := Config{Weight: -5}
	cfg.fillDefaults()
	if cfg.Weight != 1 {
		t.Fatalf("negative weight clamped to %d, want 1", cfg.Weight)
	}
	cfg = Config{Weight: 1000}
	cfg.fillDefaults()
	if cfg.Weight != 255 {
		t.Fatalf("huge weight clamped to %d, want 255", cfg.Weight)
	}
}

func TestWeightedManyFlows(t *testing.T) {
	// 1 weight-4 flow among 4 weight-1 flows: it should get ~half the link
	// (4 of 8 shares).
	r := newRig(5, 256<<10, SwitchConfig{})
	heavy, _ := r.conn(0, 1, func(c *Config) { c.Weight = 4 })
	var lights []*Sender
	for i := 1; i < 5; i++ {
		l, _ := r.conn(i, netsim.FlowID(i+1))
		lights = append(lights, l)
		r.s.At(0, func() { l.Open(); l.Send(1 << 30) })
	}
	r.s.At(0, func() { heavy.Open(); heavy.Send(1 << 30) })
	r.s.RunUntil(100 * sim.Millisecond)
	hb := heavy.Acked()
	var lb int64
	for _, l := range lights {
		lb += l.Acked()
	}
	r.s.RunUntil(300 * sim.Millisecond)
	hd := heavy.Acked() - hb
	var ld int64
	for _, l := range lights {
		ld += l.Acked()
	}
	ld -= lb
	share := float64(hd) / float64(hd+ld)
	// Ideal share is 4/8 = 50%, but at this BDP the per-unit share
	// (~700 B) is below one MSS, and the delay arbiter's one-packet floor
	// (§4.6) over-serves the weight-1 flows — weighting compresses when
	// unit shares drop under a packet. Expect clearly-more-than-fair but
	// less than ideal.
	if share < 0.33 || share > 0.62 {
		t.Fatalf("weight-4 flow got %.0f%% of the link, want in [33%%, 62%%]", share*100)
	}
	if share < 1.0/5*1.4 {
		t.Fatalf("weight-4 flow share %.0f%% not clearly above the fair 20%%", share*100)
	}
}
