package core

// Unit tests for switch-internal mechanisms that the scenario tests only
// exercise indirectly.

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// mkPort builds a standalone TFC port state on a 1 Gbps port.
func mkPort(s *sim.Simulator, cfg SwitchConfig) (*PortState, *netsim.Port) {
	net := netsim.NewNetwork(s)
	a := net.NewHost("a")
	b := net.NewHost("b")
	net.Connect(a, b, netsim.LinkConfig{Rate: netsim.Gbps, Delay: sim.Microsecond})
	cfg.fillDefaults()
	p := a.NIC()
	st := newPortState(s, p, &cfg)
	return st, p
}

func rmData(flow netsim.FlowID, payload int) *netsim.Packet {
	return &netsim.Packet{
		Flow: flow, Flags: netsim.FlagRM, Payload: payload,
		Window: netsim.WindowUnset,
	}
}

func TestUnitDelimiterAdoptionAndSlotEnd(t *testing.T) {
	s := sim.New(1)
	st, p := mkPort(s, SwitchConfig{})
	s.At(0, func() { st.OnEnqueue(rmData(1, netsim.MSS), p) })
	s.RunUntil(1)
	if !st.hasDelim || st.delim != 1 {
		t.Fatal("first RM data not adopted as delimiter")
	}
	if st.Slots != 0 {
		t.Fatal("adoption must not count as a slot")
	}
	// Second RM of the same flow one 100us "round" later ends the slot.
	s.At(100*sim.Microsecond, func() { st.OnEnqueue(rmData(1, netsim.MSS), p) })
	s.RunUntil(101 * sim.Microsecond)
	if st.Slots != 1 {
		t.Fatalf("slots = %d, want 1", st.Slots)
	}
	if st.RTTB() != 100*sim.Microsecond {
		t.Fatalf("rttb = %v, want 100us (measured slot)", st.RTTB())
	}
}

func TestUnitSmallFrameSlotsDoNotSetRTTB(t *testing.T) {
	s := sim.New(1)
	st, p := mkPort(s, SwitchConfig{})
	// Delimited by 64-byte probes: rtt_b must stay at init.
	s.At(0, func() { st.OnEnqueue(rmData(2, 0), p) })
	s.At(30*sim.Microsecond, func() { st.OnEnqueue(rmData(2, 0), p) })
	s.RunUntil(31 * sim.Microsecond)
	if st.Slots != 1 {
		t.Fatalf("slots = %d", st.Slots)
	}
	if st.RTTB() != 160*sim.Microsecond {
		t.Fatalf("rttb = %v, want init 160us (small frames excluded)", st.RTTB())
	}
}

func TestUnitMixedFrameSlotExcluded(t *testing.T) {
	s := sim.New(1)
	st, p := mkPort(s, SwitchConfig{})
	// Slot starts at a small probe and ends at a full frame: still
	// excluded (both endpoints must be >= MinRTTFrame).
	s.At(0, func() { st.OnEnqueue(rmData(3, 0), p) })
	s.At(20*sim.Microsecond, func() { st.OnEnqueue(rmData(3, netsim.MSS), p) })
	s.RunUntil(21 * sim.Microsecond)
	if st.RTTB() != 160*sim.Microsecond {
		t.Fatalf("rttb = %v, polluted by a probe-started slot", st.RTTB())
	}
	// The next slot (full->full) is eligible. Keep it within the 2*rtt_last
	// delimiter-miss timer (2*20us) so the delimiter survives.
	s.At(55*sim.Microsecond, func() { st.OnEnqueue(rmData(3, netsim.MSS), p) })
	s.RunUntil(56 * sim.Microsecond)
	if st.RTTB() != 35*sim.Microsecond {
		t.Fatalf("rttb = %v, want 35us", st.RTTB())
	}
}

func TestUnitTokenClampFloor(t *testing.T) {
	s := sim.New(1)
	st, p := mkPort(s, SwitchConfig{TClampFactor: 2})
	// End many idle slots: rho at floor would boost T; the clamp bounds it
	// to TClampFactor x BDP(rttb).
	s.At(0, func() { st.OnEnqueue(rmData(1, netsim.MSS), p) })
	for i := 1; i <= 50; i++ {
		at := sim.Time(i) * 100 * sim.Microsecond
		s.At(at, func() { st.OnEnqueue(rmData(1, netsim.MSS), p) })
	}
	s.RunUntil(6 * sim.Millisecond)
	maxT := 2 * 125e6 * st.RTTB().Seconds()
	if st.Tokens() > maxT+1 {
		t.Fatalf("T = %.0f beyond clamp %.0f", st.Tokens(), maxT)
	}
	if st.Tokens() < float64(netsim.MSS) {
		t.Fatalf("T = %.0f below one MSS floor", st.Tokens())
	}
}

func TestUnitDelimiterMissBackoff(t *testing.T) {
	s := sim.New(1)
	st, p := mkPort(s, SwitchConfig{})
	s.At(0, func() { st.OnEnqueue(rmData(1, netsim.MSS), p) })
	s.At(100*sim.Microsecond, func() { st.OnEnqueue(rmData(1, netsim.MSS), p) })
	s.RunUntil(150 * sim.Microsecond)
	if !st.hasDelim {
		t.Fatal("precondition: delimiter present")
	}
	// Silence: the 2*rtt_last timer must eventually drop the delimiter.
	s.RunUntil(400 * sim.Microsecond) // > 100us + 2*100us
	if st.hasDelim {
		t.Fatal("delimiter not dropped after 2*rtt_last of silence")
	}
	// Next RM data (any flow) is adopted.
	s.At(s.Now(), func() { st.OnEnqueue(rmData(9, netsim.MSS), p) })
	s.RunUntil(s.Now() + 1)
	if !st.hasDelim || st.delim != 9 {
		t.Fatal("new delimiter not adopted after miss")
	}
}

func TestUnitFINDropsDelimiter(t *testing.T) {
	s := sim.New(1)
	st, p := mkPort(s, SwitchConfig{})
	s.At(0, func() { st.OnEnqueue(rmData(1, netsim.MSS), p) })
	s.RunUntil(1)
	fin := &netsim.Packet{Flow: 1, Flags: netsim.FlagFIN, Window: netsim.WindowUnset}
	s.At(10*sim.Microsecond, func() { st.OnEnqueue(fin, p) })
	s.RunUntil(11 * sim.Microsecond)
	if st.hasDelim {
		t.Fatal("FIN of the delimiter flow must drop it")
	}
}

func TestUnitStampNeverBelowOneByte(t *testing.T) {
	s := sim.New(1)
	st, p := mkPort(s, SwitchConfig{})
	// Massive running count: stamp must clamp at >= 1 byte.
	for i := 0; i < 100000; i++ {
		st.e++
	}
	pkt := rmData(5, netsim.MSS)
	s.At(0, func() { st.OnEnqueue(pkt, p) })
	s.RunUntil(1)
	if pkt.Window < 1 {
		t.Fatalf("stamped window %d < 1", pkt.Window)
	}
}

func TestUnitWeightedStamp(t *testing.T) {
	s := sim.New(1)
	st, p := mkPort(s, SwitchConfig{})
	// Two packets in the same slot state, weights 1 and 3: stamps 1:3.
	a := rmData(1, netsim.MSS)
	b := rmData(2, netsim.MSS)
	b.Weight = 3
	s.At(0, func() {
		st.OnEnqueue(a, p)
		st.OnEnqueue(b, p)
	})
	s.RunUntil(1)
	// a stamped at W/e(=1); b at (T/e(now 4))*3 — just check b > a.
	if b.Window <= a.Window/2 {
		t.Fatalf("weighted stamp not larger: a=%d b=%d", a.Window, b.Window)
	}
}

func TestUnitHandleRMALargeWindowPasses(t *testing.T) {
	s := sim.New(1)
	st, p := mkPort(s, SwitchConfig{})
	st.lastRefill = s.Now()
	ack := &netsim.Packet{
		Flow: 1, Flags: netsim.FlagACK | netsim.FlagRMA, Window: 10000,
	}
	if st.handleRMA(ack, p) {
		t.Fatal("large-window RMA must pass immediately")
	}
	if ack.Window != 10000 {
		t.Fatal("large-window RMA must not be modified")
	}
}

func TestUnitHandleRMASubMSSDelayedAndBumped(t *testing.T) {
	s := sim.New(1)
	st, _ := mkPort(s, SwitchConfig{})
	st.lastRefill = s.Now()
	st.counter = 0 // no tokens: must be queued
	// Use a throwaway destination port for release.
	net2 := netsim.NewNetwork(s)
	x := net2.NewHost("x")
	y := net2.NewHost("y")
	net2.Connect(x, y, netsim.LinkConfig{Rate: netsim.Gbps, Delay: 1})
	out := x.NIC()
	ack := &netsim.Packet{
		Flow: 2, Flags: netsim.FlagACK | netsim.FlagRMA, Window: 200,
		Src: y.ID(), Dst: y.ID(),
	}
	if !st.handleRMA(ack, out) {
		t.Fatal("sub-MSS RMA with empty bucket must be held")
	}
	if st.DelayQueueLen() != 1 {
		t.Fatalf("delay queue = %d", st.DelayQueueLen())
	}
	// After ~one grant interval it must be released, bumped to one MSS.
	s.RunUntil(50 * sim.Microsecond)
	if st.DelayQueueLen() != 0 {
		t.Fatal("held RMA never released")
	}
	if ack.Window != int64(netsim.MSS) {
		t.Fatalf("released RMA window = %d, want MSS", ack.Window)
	}
}
