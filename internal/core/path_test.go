package core

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// chainRig: h1..hn -> s1 -> s2 -> recv, with the s2->recv link slower so
// that the path has two TFC switches and one true bottleneck.
type chainRig struct {
	s        *sim.Simulator
	senders  []*netsim.Host
	recv     *netsim.Host
	s1, s2   *netsim.Switch
	ss1, ss2 *SwitchState
	bott     *netsim.Port // s2 -> recv
	mid      *netsim.Port // s1 -> s2
}

func newChainRig(n int, bottRate netsim.Rate) *chainRig {
	s := sim.New(17)
	net := netsim.NewNetwork(s)
	s1 := net.NewSwitch("s1")
	s2 := net.NewSwitch("s2")
	recv := net.NewHost("recv")
	recv.ProcJitter = 10 * sim.Microsecond
	link := netsim.LinkConfig{Rate: netsim.Gbps, Delay: 5 * sim.Microsecond, BufA: 256 << 10, BufB: 256 << 10}
	r := &chainRig{s: s, recv: recv, s1: s1, s2: s2}
	for i := 0; i < n; i++ {
		h := net.NewHost("h")
		h.ProcJitter = 10 * sim.Microsecond
		net.Connect(h, s1, link)
		r.senders = append(r.senders, h)
	}
	net.Connect(s1, s2, link)
	net.Connect(s2, recv, netsim.LinkConfig{
		Rate: bottRate, Delay: 5 * sim.Microsecond, BufA: 256 << 10,
	})
	net.ComputeRoutes()
	r.ss1 = Attach(s, s1, SwitchConfig{})
	r.ss2 = Attach(s, s2, SwitchConfig{})
	r.bott = s2.PortTo(recv.ID())
	r.mid = s1.PortTo(s2.ID())
	return r
}

func TestPathMinimumWindow(t *testing.T) {
	// Two TFC switches on the path; the downstream 100 Mbps link is the
	// bottleneck. The window a sender receives must reflect the *minimum*
	// along the path, i.e. flows must settle at ~100 Mbps aggregate with
	// a near-empty bottleneck queue.
	r := newChainRig(2, 100*netsim.Mbps)
	var snds []*Sender
	for i, h := range r.senders {
		snd, _ := Dial(Config{Sim: r.s, Local: h, Peer: r.recv, Flow: netsim.FlowID(i + 1)})
		snds = append(snds, snd)
		r.s.At(0, func() { snd.Open(); snd.Send(1 << 30) })
	}
	r.s.RunUntil(200 * sim.Millisecond)
	var acked int64
	for _, snd := range snds {
		acked += snd.Acked()
	}
	// Skip first 50ms of convergence: measure [50,200].
	base := acked
	r.s.RunUntil(400 * sim.Millisecond)
	acked = 0
	for _, snd := range snds {
		acked += snd.Acked()
	}
	rate := float64(acked-base) * 8 / 0.2
	if rate < 70e6 || rate > 100e6 {
		t.Fatalf("aggregate %.1f Mbps, want ~85-97 (bottleneck is 100 Mbps)", rate/1e6)
	}
	if r.bott.Drops != 0 {
		t.Fatalf("drops = %d at the slow bottleneck", r.bott.Drops)
	}
	// The upstream (non-bottleneck) switch must not build a queue either:
	// windows are already clamped by the downstream stamp.
	if r.mid.MaxQueue > 64<<10 {
		t.Fatalf("mid-path queue grew to %d", r.mid.MaxQueue)
	}
}

func TestTFCSurvivesRandomLoss(t *testing.T) {
	// Failure injection: 0.5% random loss on the bottleneck. TFC has no
	// loss-driven window, so throughput should stay high and transfers
	// complete via dupack retransmission (and rare RTOs).
	r := newRig(2, 256<<10, SwitchConfig{})
	r.bott.LossRate = 0.005
	var snds []*Sender
	done := 0
	for i := 0; i < 2; i++ {
		snd, _ := r.conn(i, netsim.FlowID(i+1))
		snd.cfg.OnComplete = func() { done++ }
		snds = append(snds, snd)
		r.s.At(0, func() {
			snd.Open()
			snd.Send(20 << 20)
			snd.Close()
		})
	}
	r.s.RunUntil(5 * sim.Second)
	if done != 2 {
		t.Fatalf("only %d of 2 flows completed under 0.5%% loss", done)
	}
	for _, snd := range snds {
		if snd.Stats().RtxBytes == 0 {
			t.Error("loss occurred but no retransmissions recorded")
		}
	}
}

func TestResumeProbeAfterIdle(t *testing.T) {
	// A flow idle for >> minRTT must re-acquire its window via a probe
	// instead of bursting the stale one.
	r := newRig(1, 256<<10, SwitchConfig{})
	snd, _ := r.conn(0, 1)
	r.s.At(0, func() { snd.Open(); snd.Send(1 << 20) })
	r.s.RunUntil(50 * sim.Millisecond)
	if snd.Acked() != 1<<20 {
		t.Fatal("first message did not complete")
	}
	probesBefore := snd.Probes
	// Resume after 50ms of silence.
	r.s.At(r.s.Now(), func() { snd.Send(1 << 20) })
	r.s.RunUntil(100 * sim.Millisecond)
	if snd.Probes != probesBefore+1 {
		t.Fatalf("probes = %d, want %d (resume must re-acquire window)",
			snd.Probes, probesBefore+1)
	}
	if snd.Acked() != 2<<20 {
		t.Fatal("second message did not complete")
	}
}

func TestNoProbeOnHotResume(t *testing.T) {
	// Back-to-back messages (gap << minRTT) must NOT pay the probe RTT.
	r := newRig(1, 256<<10, SwitchConfig{})
	probes := int64(-1)
	var snd *Sender
	snd, _ = r.conn(0, 1, func(c *Config) {
		c.OnDrain = func() {
			if probes < 0 {
				probes = snd.Probes
			}
			if snd.Queued() < 10<<20 {
				snd.Send(1 << 20) // immediate re-feed
			}
		}
	})
	r.s.At(0, func() { snd.Open(); snd.Send(1 << 20) })
	r.s.RunUntil(200 * sim.Millisecond)
	if snd.Acked() != 10<<20 {
		t.Fatalf("acked %d, want 10MB", snd.Acked())
	}
	if snd.Probes != 1 {
		t.Fatalf("probes = %d, want 1 (hot resumes must not probe)", snd.Probes)
	}
}

func TestArbiterWireCostPacing(t *testing.T) {
	// Unit-level: with many sub-MSS windows, admissions must be paced at
	// rho0 * line rate in *wire* bytes — i.e. one grant per ~12.7us at
	// 1 Gbps with rho0 = 0.97, not one per 11.7us (payload-only).
	r := newRig(40, 256<<10, SwitchConfig{})
	for i := 0; i < 40; i++ {
		snd, _ := r.conn(i, netsim.FlowID(i+1))
		r.s.At(0, func() { snd.Open(); snd.Send(1 << 20) })
	}
	r.s.RunUntil(50 * sim.Millisecond)
	st := r.ss.PortState(r.bott)
	if st.DelayedAcks == 0 {
		t.Fatal("arbiter never engaged with 40 flows")
	}
	// Measure aggregate arrival rate over the next 50ms: must be <= rho0*c
	// (in wire bytes) with near-zero queue.
	base := r.bott.TxFrames
	r.s.RunUntil(100 * sim.Millisecond)
	frames := float64(r.bott.TxFrames-base) * (1538.0 / 1518.0) // approx wire
	rate := frames / 0.05                                       // bytes/s
	if rate > 0.99*125e6 {
		t.Fatalf("wire rate %.1f MB/s exceeds pace target", rate/1e6)
	}
	if r.bott.Drops != 0 {
		t.Fatal("paced regime must not drop")
	}
}

func TestStampTightensWithRunningCount(t *testing.T) {
	// min(W, T/e) stamping: a mid-slot surge of marked SYNs must tighten
	// subsequent stamps before the slot ends.
	r := newRig(1, 256<<10, SwitchConfig{})
	st := r.ss.PortState(r.bott)
	// Simulate a surge by feeding the port hook synthetic marked SYNs.
	wBefore := st.w
	for i := 0; i < 50; i++ {
		st.OnEnqueue(&netsim.Packet{
			Flow: netsim.FlowID(100 + i), Flags: netsim.FlagSYN | netsim.FlagRM,
			Window: netsim.WindowUnset,
		}, r.bott)
	}
	pkt := &netsim.Packet{
		Flow: 999, Payload: netsim.MSS, Window: netsim.WindowUnset,
	}
	st.OnEnqueue(pkt, r.bott)
	if float64(pkt.Window) > wBefore/10 {
		t.Fatalf("stamp %d not tightened after 50-flow surge (W was %.0f)",
			pkt.Window, wBefore)
	}
}

func TestAckDirectionUntouched(t *testing.T) {
	// Pure ACKs must pass TFC ports unmodified and uncounted.
	r := newRig(1, 256<<10, SwitchConfig{})
	st := r.ss.PortState(r.bott)
	aBefore := st.a
	ack := &netsim.Packet{Flow: 1, Flags: netsim.FlagACK, Window: 12345}
	st.OnEnqueue(ack, r.bott)
	if ack.Window != 12345 {
		t.Fatal("ACK window modified by data-path hook")
	}
	if st.a != aBefore {
		t.Fatal("ACK counted into arrival accounting")
	}
}

func TestDisableAdjustAblation(t *testing.T) {
	// A1: with adjustment off, T should pin at rho0*c*rtt_b; sanity-check
	// the flag plumbing (detailed behaviour covered by exp tests).
	r := newRig(1, 256<<10, SwitchConfig{DisableAdjust: true})
	snd, _ := r.conn(0, 1)
	r.s.At(0, func() { snd.Open(); snd.Send(10 << 20) })
	r.s.RunUntil(100 * sim.Millisecond)
	st := r.ss.PortState(r.bott)
	want := 0.97 * 125e6 * st.RTTB().Seconds()
	got := st.Tokens()
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("tokens %.0f, want pinned near rho0*BDP %.0f with adjustment off", got, want)
	}
}
