package core

// Direct test of the delimiter-miss exponential backoff (§4 robustness):
// when the delimiter flow dies mid-slot, the staleness timer re-elects a
// new delimiter at 2^(k+1)·rtt_last with k capped at MaxMissK, and a
// completed slot resets the backoff. This is the machinery the blackout
// experiment leans on — under a link failure every in-flight delimiter is
// lost, and recovery time depends on the backoff staying bounded.

import (
	"testing"

	"tfcsim/internal/netsim"
	"tfcsim/internal/sim"
)

// when is a test shorthand for the armed deadline of a timer that the
// test has already established is pending.
func when(t *testing.T, tm sim.Timer) sim.Time {
	t.Helper()
	w, ok := tm.When()
	if !ok {
		t.Fatal("timer unexpectedly stale")
	}
	return w
}

func TestUnitDelimiterMissBackoffBoundedAndRecovers(t *testing.T) {
	s := sim.New(1)
	st, p := mkPort(s, SwitchConfig{})
	const rtt = 100 * sim.Microsecond

	// Establish a delimiter with one completed slot so rtt_last = 100us.
	s.At(0, func() { st.OnEnqueue(rmData(1, netsim.MSS), p) })
	s.At(rtt, func() { st.OnEnqueue(rmData(1, netsim.MSS), p) })
	s.RunUntil(rtt + 1)
	if st.Slots != 1 || st.MissK() != 0 {
		t.Fatalf("setup: slots=%d missK=%d", st.Slots, st.MissK())
	}

	// Kill the delimiter (no more RM packets from flow 1) and let the
	// staleness timer fire repeatedly. After each miss, a fresh flow is
	// adopted as the new delimiter but also dies before completing a slot,
	// so missK keeps climbing — the armed interval must double per miss
	// and clamp at rtt << MaxMissK.
	maxK := st.cfg.MaxMissK
	for k := 1; k <= maxK+3; k++ {
		if !st.dTimer.Active() {
			t.Fatalf("miss %d: staleness timer not armed", k)
		}
		fireAt := when(t, st.dTimer)
		s.RunUntil(fireAt + 1)
		wantK := k
		if wantK > maxK {
			wantK = maxK
		}
		if st.MissK() != wantK {
			t.Fatalf("miss %d: missK = %d, want %d", k, st.MissK(), wantK)
		}
		if st.hasDelim {
			t.Fatalf("miss %d: stale delimiter not dropped", k)
		}
		// A new RM data packet is elected delimiter immediately.
		adoptAt := s.Now()
		flow := netsim.FlowID(100 + k)
		s.At(adoptAt, func() { st.OnEnqueue(rmData(flow, netsim.MSS), p) })
		s.RunUntil(adoptAt + 1)
		if !st.hasDelim || st.delim != flow {
			t.Fatalf("miss %d: new delimiter not adopted", k)
		}
		shift := uint(wantK + 1)
		if shift > uint(maxK) {
			shift = uint(maxK)
		}
		if got, want := when(t, st.dTimer)-adoptAt, rtt<<shift; got != want {
			t.Fatalf("miss %d: staleness interval %v, want %v (2^%d * rtt_last)",
				k, got, want, shift)
		}
	}
	// The interval never exceeded rtt << MaxMissK — with MaxMissK = 7 and
	// rtt_last = 100us that is 12.8ms, not minutes.
	if got, want := when(t, st.dTimer)-s.Now()+1, rtt<<uint(maxK); got > want {
		t.Fatalf("backoff escaped the clamp: %v > %v", got, want)
	}

	// Recovery: the current delimiter finally completes a slot. The
	// backoff resets and the slot cadence returns to 2*rtt_last.
	endAt := s.Now() + rtt - 1
	lastFlow := netsim.FlowID(100 + maxK + 3)
	s.At(endAt, func() { st.OnEnqueue(rmData(lastFlow, netsim.MSS), p) })
	s.RunUntil(endAt + 1)
	if st.Slots != 2 {
		t.Fatalf("slots = %d after recovery, want 2", st.Slots)
	}
	if st.MissK() != 0 {
		t.Fatalf("missK = %d after a completed slot, want 0", st.MissK())
	}
	if got := when(t, st.dTimer) - endAt; got >= rtt<<2 {
		t.Fatalf("staleness interval %v after recovery, want < %v", got, rtt<<2)
	}
}
