package tfcsim

import (
	"context"
	"fmt"
	"strings"

	"tfcsim/internal/exp"
	"tfcsim/internal/runner"
	"tfcsim/internal/sim"
)

// Claim is one of the paper's falsifiable statements, encoded as an
// executable check at quick scale. `tfcsim verify` runs them all; the test
// suite asserts them too, but the CLI form lets a reader audit the
// reproduction without reading Go.
type Claim struct {
	ID        string
	Statement string // the paper's claim, paraphrased
	// Check runs the experiment and returns (evidence, ok).
	Check func() (string, bool)
}

// claimPool fans a claim's trials across cores while keeping every trial
// on seed 1 (the pre-pool serial schedule), so the evidence numbers the
// checks assert against are unchanged by parallel execution.
func claimPool() *runner.Pool { return (&runner.Pool{BaseSeed: 1}).Paired() }

// Claims returns the paper's headline claims as executable checks.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "zero-queueing",
			Statement: "TFC keeps near-zero queues where TCP fills the buffer and DCTCP holds ~K (Fig 8)",
			Check: func() (string, bool) {
				rs, err := exp.QueueFairnessAll(context.Background(), claimPool(),
					exp.QueueFairnessConfig{StartInterval: 40 * sim.Millisecond})
				if err != nil {
					return err.Error(), false
				}
				var tfc, dctcp, tcp *exp.QueueFairnessResult
				for _, r := range rs {
					switch r.Proto {
					case exp.TFC:
						tfc = r
					case exp.DCTCP:
						dctcp = r
					case exp.TCP:
						tcp = r
					}
				}
				ev := fmt.Sprintf("avg queue: tfc=%.1fKB dctcp=%.1fKB; max queue: dctcp=%.0fKB tcp=%.0fKB (buffer 256KB)",
					tfc.AvgQueue/1024, dctcp.AvgQueue/1024,
					float64(dctcp.MaxQueue)/1024, float64(tcp.MaxQueue)/1024)
				// TFC near zero; DCTCP bounded but above TFC; TCP fills the
				// buffer (a max-queue statement: its *average* is dragged
				// down by RTO stalls at short horizons).
				return ev, tfc.AvgQueue < 15<<10 &&
					tfc.AvgQueue < dctcp.AvgQueue && tcp.MaxQueue > 200<<10
			},
		},
		{
			ID:        "fast-convergence",
			Statement: "a new TFC flow reaches its fair share within ~2 RTTs (Fig 10)",
			Check: func() (string, bool) {
				cfg := exp.QueueFairnessConfig{StartInterval: 40 * sim.Millisecond}
				cfg.Proto = exp.TFC
				r := exp.QueueFairness(cfg)
				ev := fmt.Sprintf("flow 3 converged in %v (Jain %.3f)", r.ConvergeIn, r.JainIndex)
				return ev, r.ConvergeIn > 0 && r.ConvergeIn < 5*sim.Millisecond &&
					r.JainIndex > 0.95
			},
		},
		{
			ID:        "rare-loss-incast",
			Statement: "TFC completes high fan-in incast with zero loss and zero timeouts while TCP collapses (Figs 12, 15)",
			Check: func() (string, bool) {
				cfg := exp.IncastConfig{Rounds: 3}
				cfg.Proto = exp.TFC
				cfg.Senders = 80
				tfc := exp.Incast(cfg)
				cfg.Proto = exp.TCP
				tcp := exp.Incast(cfg)
				ev := fmt.Sprintf("tfc: %.0fMbps drops=%d TO=%d; tcp: %.0fMbps drops=%d TO=%d",
					tfc.Goodput/1e6, tfc.Drops, tfc.Timeouts,
					tcp.Goodput/1e6, tcp.Drops, tcp.Timeouts)
				return ev, tfc.Drops == 0 && tfc.Timeouts == 0 &&
					tfc.Goodput > 0.7e9 && tcp.Goodput < tfc.Goodput/2
			},
		},
		{
			ID:        "work-conserving",
			Statement: "the token adjustment reclaims bandwidth stranded by multi-bottleneck clamping (Fig 11, §4.5)",
			Check: func() (string, bool) {
				full := exp.WorkConserving(exp.WorkConservingConfig{Duration: 300 * sim.Millisecond})
				abl := exp.WorkConserving(exp.WorkConservingConfig{
					Duration: 300 * sim.Millisecond, DisableAdjust: true,
				})
				ev := fmt.Sprintf("downlink: full=%.0fMbps no-adjust=%.0fMbps",
					full.DownlinkGoodput/1e6, abl.DownlinkGoodput/1e6)
				return ev, full.DownlinkGoodput > 0.85e9 &&
					full.DownlinkGoodput > abl.DownlinkGoodput
			},
		},
		{
			ID:        "query-fct-tails",
			Statement: "TFC's query-flow FCT mean and tails sit far below TCP's RTO-bound tails (Fig 13)",
			Check: func() (string, bool) {
				rs, err := exp.BenchmarkAll(context.Background(), claimPool(),
					exp.BenchmarkConfig{
						Duration: 150 * sim.Millisecond, QueryRate: 150, BgFlowRate: 250,
					}, []exp.Proto{exp.TFC, exp.TCP})
				if err != nil {
					return err.Error(), false
				}
				tfc, tcp := rs[0], rs[1]
				ev := fmt.Sprintf("mean: tfc=%.0fus tcp=%.0fus; p99.9: tfc=%.0fus tcp=%.0fus",
					tfc.QueryFCT.Mean(), tcp.QueryFCT.Mean(),
					tfc.QueryFCT.Percentile(99.9), tcp.QueryFCT.Percentile(99.9))
				return ev, tfc.QueryFCT.Mean() < tcp.QueryFCT.Mean() &&
					tfc.QueryFCT.Percentile(99.9) < tcp.QueryFCT.Percentile(99.9)
			},
		},
		{
			ID:        "rho0-knob",
			Statement: "goodput rises monotonically with rho0 while queues stay ~KB (Fig 14)",
			Check: func() (string, bool) {
				pts := exp.Rho0Sweep(exp.Rho0SweepConfig{
					Rho0s: []float64{0.90, 1.00}, Duration: 300 * sim.Millisecond,
				})
				ev := fmt.Sprintf("rho0.90=%.0fMbps rho1.00=%.0fMbps (avgQ %.1fKB)",
					pts[0].Goodput/1e6, pts[1].Goodput/1e6, pts[1].AvgQ/1024)
				return ev, pts[0].Goodput < pts[1].Goodput && pts[1].AvgQ < 8<<10 &&
					pts[0].Drops == 0 && pts[1].Drops == 0
			},
		},
		{
			ID:        "delay-function",
			Statement: "the ACK delay function is what prevents loss when fair windows fall below one MSS (§4.6, A2)",
			Check: func() (string, bool) {
				cfg := exp.IncastConfig{Rounds: 2, BufBytes: 64 << 10}
				cfg.Proto = exp.TFC
				cfg.Senders = 80
				full := exp.Incast(cfg)
				cfg.TFC.DisableDelay = true
				abl := exp.Incast(cfg)
				ev := fmt.Sprintf("drops: full=%d ablated=%d", full.Drops, abl.Drops)
				return ev, full.Drops == 0 && abl.Drops > 0
			},
		},
		{
			ID:        "decoupling",
			Statement: "computing tokens from rtt_m instead of rtt_b feeds the queue back into itself (§4.4, A3)",
			Check: func() (string, bool) {
				mk := func(disable bool) *exp.QueueFairnessResult {
					cfg := exp.QueueFairnessConfig{StartInterval: 40 * sim.Millisecond}
					cfg.Proto = exp.TFC
					cfg.TFC.DisableDecouple = disable
					return exp.QueueFairness(cfg)
				}
				full, coupled := mk(false), mk(true)
				ev := fmt.Sprintf("avg queue: decoupled=%.1fKB coupled=%.1fKB",
					full.AvgQueue/1024, coupled.AvgQueue/1024)
				return ev, full.AvgQueue*2 < coupled.AvgQueue
			},
		},
		{
			ID:        "ne-accuracy",
			Statement: "the marked-packet count tracks the effective flows and excludes silent ones (Fig 7)",
			Check: func() (string, bool) {
				r := exp.NeAccuracy(exp.NeAccuracyConfig{Interval: 30 * sim.Millisecond})
				last := r.Points[len(r.Points)-1]
				ev := fmt.Sprintf("mean |err|=%.2f flows; Ne after all n1 off=%.2f", r.MeanAbsErr, last.Measured)
				return ev, r.MeanAbsErr < 2.5 && last.Measured < 7
			},
		},
		{
			ID:        "multipath",
			Statement: "TFC's per-port allocation composes with ECMP multipath fabrics (extension)",
			Check: func() (string, bool) {
				cfg := exp.PermutationConfig{Duration: 120 * sim.Millisecond}
				cfg.Proto = exp.TFC
				r := exp.Permutation(cfg)
				ev := fmt.Sprintf("fat-tree permutation: %.1fGbps, drops=%d, max fabric queue %dKB",
					r.AggGoodput/1e9, r.Drops, r.MaxQueue>>10)
				return ev, r.Drops == 0 && r.MaxQueue < 64<<10 && r.AggGoodput > 5e9
			},
		},
	}
}

// VerifyAll runs every claim and renders a report; ok is true only if all
// claims hold.
func VerifyAll() (string, bool) {
	var b strings.Builder
	all := true
	for _, c := range Claims() {
		ev, ok := c.Check()
		status := "PASS"
		if !ok {
			status = "FAIL"
			all = false
		}
		fmt.Fprintf(&b, "[%s] %-16s %s\n%18s evidence: %s\n", status, c.ID, c.Statement, "", ev)
	}
	return b.String(), all
}
