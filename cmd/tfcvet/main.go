// Command tfcvet is the repository's custom static-analysis gate: it
// machine-checks the determinism, sim-time, pool-lifetime, shard-safety,
// zero-alloc, and probe-purity contracts every experiment result rests
// on (see DESIGN.md, "Determinism & pooling contracts"). It runs eight
// analyzers — the intra-procedural detrand, simtime, mapiter, poolsafe
// and the call-graph-backed shardsafe, rankreq, hotalloc, probepure — in
// two modes:
//
//	go vet -vettool=$(which tfcvet) ./...   # vet config protocol (CI)
//	tfcvet [-json] ./...                    # standalone, no go vet
//
// Standalone, -json renders the findings as a JSON array on stdout
// (machine consumers; the GitHub problem matcher uses the plain form).
//
// Under go vet, the go command hands tfcvet one JSON config per package
// with paths to gc export data, the same protocol
// golang.org/x/tools/go/analysis/unitchecker speaks (reimplemented here
// on the standard library because this build environment is offline and
// cannot fetch x/tools). Standalone, tfcvet parses and type-checks the
// module from source itself.
//
// Findings are suppressed case-by-case with
//
//	//tfcvet:allow <check>[,<check>] — <one-line justification>
//
// on (or directly above) the offending line. Exit status: 0 clean,
// 1 operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tfcsim/internal/analysis"
)

func main() {
	args := os.Args[1:]
	jsonOut := false
	kept := args[:0:0]
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonOut = true
			continue
		}
		kept = append(kept, a)
	}
	args = kept
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			// The go command fingerprints vet tools via -V=full and
			// caches per-package results under that identity; hashing
			// our own binary makes every rebuild a cache miss, so stale
			// analyzers can never hide fresh diagnostics.
			fmt.Printf("%s version tfcvet-1.0.0-%s\n", progName(), selfHash())
			return
		case "-flags":
			// go vet asks which analyzer flags the tool accepts.
			fmt.Println("[]")
			return
		case "help", "-h", "-help", "--help":
			usage()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheckerRun(args[0]))
	}
	os.Exit(standaloneRun(args, jsonOut))
}

func usage() {
	fmt.Printf("usage: tfcvet [-json] [package dir | ./...]...\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Printf("  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Printf("\nsuppress a finding with `//tfcvet:allow <check> — <justification>`\n")
}

func progName() string { return filepath.Base(os.Args[0]) }

// selfHash returns a short content hash of the running binary.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// printDiags renders diagnostics in the conventional file:line:col form
// go vet users expect, tagged with the originating check.
func printDiags(pkg *analysis.Package, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [tfcvet:%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Check)
	}
}
