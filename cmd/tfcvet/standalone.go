package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"tfcsim/internal/analysis"
	"tfcsim/internal/analysis/loader"
)

// jsonDiag is one finding in -json output: a flat, stable shape for
// machine consumers (CI annotations, editors).
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// standaloneRun analyzes packages without go vet: it locates the
// enclosing module, expands the argument patterns ("./..." subtrees or
// plain package directories; no arguments means everything), and
// type-checks from source via the loader. Slower than the vettool path
// (the standard library is type-checked from source once per process)
// but self-contained — handy for local runs and editor integration.
// With jsonOut, findings accumulate into one JSON array on stdout
// instead of the file:line:col lines; exit semantics are identical, so
// scripted consumers can gate on status and parse stdout.
func standaloneRun(args []string, jsonOut bool) int {
	modDir, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfcvet: %v\n", err)
		return 1
	}
	dirs, err := expandPatterns(modDir, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfcvet: %v\n", err)
		return 1
	}

	ld := loader.New(loader.Config{ModulePath: modPath, ModuleDir: modDir})
	exit := 0
	jsonDiags := []jsonDiag{}
	for _, dir := range dirs {
		rel, err := filepath.Rel(modDir, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfcvet: %v\n", err)
			return 1
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := ld.Load(importPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfcvet: %v\n", err)
			exit = 1
			continue
		}
		diags, err := analysis.Check(pkg, analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfcvet: %s: %v\n", importPath, err)
			exit = 1
			continue
		}
		if len(diags) > 0 {
			if jsonOut {
				for _, d := range diags {
					pos := pkg.Fset.Position(d.Pos)
					jsonDiags = append(jsonDiags, jsonDiag{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check: d.Check, Message: d.Message,
					})
				}
			} else {
				printDiags(pkg, diags)
			}
			if exit == 0 {
				exit = 2
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonDiags); err != nil {
			fmt.Fprintf(os.Stderr, "tfcvet: encoding json: %v\n", err)
			return 1
		}
	}
	return exit
}

// findModule walks up from the working directory to go.mod and reads
// the module path from its first `module` line.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if _, statErr := os.Stat(gomod); statErr == nil {
			f, openErr := os.Open(gomod)
			if openErr != nil {
				return "", "", openErr
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				fields := strings.Fields(sc.Text())
				if len(fields) == 2 && fields[0] == "module" {
					return dir, fields[1], nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves command-line package patterns to package
// directories. Supported: "<dir>/..." subtree walks, plain directories,
// and no arguments (the whole module).
func expandPatterns(modDir string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		if sub, isTree := strings.CutSuffix(arg, "/..."); isTree {
			root := filepath.Join(modDir, filepath.FromSlash(strings.TrimPrefix(sub, "./")))
			if sub == "." || sub == "" {
				root = modDir
			}
			err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return fs.SkipDir
				}
				if hasGoFiles(p) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := arg
		if !filepath.IsAbs(dir) {
			abs, err := filepath.Abs(dir)
			if err != nil {
				return nil, err
			}
			dir = abs
		}
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("no Go files in %s", dir)
		}
		add(dir)
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
