package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"tfcsim/internal/analysis"
)

// vetConfig is the JSON the go command writes for each package when
// invoking a -vettool — the golang.org/x/tools unitchecker wire format.
// Fields we do not consume (facts plumbing, IgnoredFiles, module info)
// are listed anyway so the struct documents the full protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheckerRun analyzes the single package described by cfgFile and
// returns the process exit code (0 clean, 1 error, 2 diagnostics).
func unitcheckerRun(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfcvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tfcvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command expects the facts file to exist even though the
	// tfcvet analyzers exchange no facts.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte("tfcvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "tfcvet: %v\n", err)
			return false
		}
		return true
	}
	if cfg.VetxOnly {
		// Dependency-only visit: facts would be computed here; we have
		// none, so just satisfy the protocol.
		if !writeVetx() {
			return 1
		}
		return 0
	}

	pkg, err := typecheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the problem with a better message.
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "tfcvet: %v\n", err)
		return 1
	}
	diags, err := analysis.Check(pkg, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfcvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if !writeVetx() {
		return 1
	}
	if len(diags) > 0 {
		printDiags(pkg, diags)
		return 2
	}
	return 0
}

// typecheckUnit parses cfg.GoFiles and type-checks them against the gc
// export data the go command supplied in cfg.PackageFile.
func typecheckUnit(cfg *vetConfig) (*analysis.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	gc := importer.ForCompiler(fset, compilerOr(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(importPath)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compilerOr(cfg.Compiler), goarch()),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{
		Path:      cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

func compilerOr(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
