// Command benchjson converts `go test -bench` text output into stable JSON
// for machine comparison across commits (the BENCH_*.json artifacts in CI).
// The output is deterministic for a given input — no timestamps or
// environment beyond what the benchmark run itself printed — so two runs
// with identical numbers produce identical files.
//
// Usage:
//
//	go test -bench=. -count=5 | go run ./cmd/benchjson -label post -o BENCH_1.json
//	go run ./cmd/benchjson -label pre < bench.txt
//
// With -prev it also prints a delta table against a previously committed
// report, and -gate (repeatable) turns a metric bound into a hard failure:
//
//	go run ./cmd/benchjson -label 2 -o BENCH_2.json \
//	    -prev BENCH_1.json \
//	    -gate 'BenchmarkEngineThroughput:allocs/pkt-hop<=0' bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark result line. Repeated lines (from -count=N) appear
// as separate entries in input order, preserving the raw distribution for
// benchstat-style analysis.
type Bench struct {
	Name string `json:"name"`
	Pkg  string `json:"pkg,omitempty"`
	// N is the iteration count the framework settled on.
	N       int64   `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds custom b.ReportMetric values (e.g. "Mevents/wallsec",
	// "allocs/pkt-hop") plus B/op and allocs/op when reported.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Label   string  `json:"label,omitempty"`
	Goos    string  `json:"goos,omitempty"`
	Goarch  string  `json:"goarch,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Benches []Bench `json:"benchmarks"`
}

// gateFlag collects repeated -gate specs.
type gateFlag []string

func (g *gateFlag) String() string { return strings.Join(*g, ",") }
func (g *gateFlag) Set(s string) error {
	*g = append(*g, s)
	return nil
}

func main() {
	label := flag.String("label", "", "label recorded in the report (e.g. commit or pre/post)")
	out := flag.String("o", "", "output file (default stdout)")
	prev := flag.String("prev", "", "previous report JSON to print a delta table against")
	var gates gateFlag
	flag.Var(&gates, "gate", "bound 'Benchmark:metric<=x' (or >=) that fails the run when unmet; repeatable")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file"))
	}

	rep, err := parse(in)
	if err != nil {
		fatal(err)
	}
	rep.Label = *label
	if len(rep.Benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}

	if *prev != "" {
		old, err := loadReport(*prev)
		if err != nil {
			fatal(err)
		}
		printDelta(os.Stdout, old, rep)
	}
	failed := false
	for _, g := range gates {
		if err := checkGate(rep, g); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: GATE FAILED:", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s\n", g)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// loadReport reads a previously written report JSON.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// means averages every metric (including ns/op) per benchmark name across
// the repeated -count entries of a report.
func means(rep *Report) map[string]map[string]float64 {
	sum := map[string]map[string]float64{}
	cnt := map[string]map[string]int{}
	add := func(name, metric string, v float64) {
		if sum[name] == nil {
			sum[name] = map[string]float64{}
			cnt[name] = map[string]int{}
		}
		sum[name][metric] += v
		cnt[name][metric]++
	}
	for _, b := range rep.Benches {
		name := strings.SplitN(b.Name, "-", 2)[0] // strip -GOMAXPROCS suffix
		add(name, "ns/op", b.NsPerOp)
		for m, v := range b.Metrics {
			add(name, m, v)
		}
	}
	for name, ms := range sum {
		for m := range ms {
			ms[m] /= float64(cnt[name][m])
		}
	}
	return sum
}

// printDelta writes a benchmark×metric table of prev vs curr means with the
// relative change, sorted by name then metric, for benchmarks present in
// both reports.
func printDelta(w io.Writer, old, cur *Report) {
	om, cm := means(old), means(cur)
	names := make([]string, 0, len(cm))
	for name := range cm {
		if om[name] != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(w, "no common benchmarks with previous report (label %q)\n", old.Label)
		return
	}
	fmt.Fprintf(w, "\ndelta vs %q:\n", old.Label)
	fmt.Fprintf(w, "%-40s %-18s %14s %14s %9s\n", "benchmark", "metric", "prev", "curr", "delta")
	for _, name := range names {
		metrics := make([]string, 0, len(cm[name]))
		for m := range cm[name] {
			if _, ok := om[name][m]; ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			p, c := om[name][m], cm[name][m]
			delta := "n/a"
			switch {
			case p == c:
				delta = "0.0%"
			case p != 0:
				delta = fmt.Sprintf("%+.1f%%", (c-p)/p*100)
			}
			fmt.Fprintf(w, "%-40s %-18s %14.4g %14.4g %9s\n", name, m, p, c, delta)
		}
	}
}

// checkGate evaluates one 'Benchmark:metric<=bound' (or '>=') spec against
// the report's per-benchmark means.
func checkGate(rep *Report, spec string) error {
	name, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("bad gate %q: want Benchmark:metric<=bound", spec)
	}
	op := "<="
	metric, boundStr, ok := strings.Cut(rest, "<=")
	if !ok {
		op = ">="
		metric, boundStr, ok = strings.Cut(rest, ">=")
	}
	if !ok {
		return fmt.Errorf("bad gate %q: no <= or >= bound", spec)
	}
	bound, err := strconv.ParseFloat(strings.TrimSpace(boundStr), 64)
	if err != nil {
		return fmt.Errorf("bad gate %q: %w", spec, err)
	}
	ms := means(rep)[name]
	if ms == nil {
		return fmt.Errorf("gate %q: benchmark %s not in report", spec, name)
	}
	v, found := ms[strings.TrimSpace(metric)]
	if !found {
		return fmt.Errorf("gate %q: metric %q not reported by %s", spec, metric, name)
	}
	if (op == "<=" && v > bound) || (op == ">=" && v < bound) {
		return fmt.Errorf("%s %s = %g, want %s %g", name, metric, v, op, bound)
	}
	return nil
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line, pkg)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			rep.Benches = append(rep.Benches, b)
		}
	}
	return rep, sc.Err()
}

// parseBench parses one result line:
//
//	BenchmarkName-8   5   123 ns/op   6.4 Mevents/simsec   96 B/op   2 allocs/op
func parseBench(line, pkg string) (Bench, error) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return Bench{}, fmt.Errorf("too few fields")
	}
	b := Bench{Name: f[0], Pkg: pkg}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, fmt.Errorf("iteration count: %w", err)
	}
	b.N = n
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Bench{}, fmt.Errorf("value %q: %w", f[i], err)
		}
		unit := f[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
