// Command benchjson converts `go test -bench` text output into stable JSON
// for machine comparison across commits (the BENCH_*.json artifacts in CI).
// The output is deterministic for a given input — no timestamps or
// environment beyond what the benchmark run itself printed — so two runs
// with identical numbers produce identical files.
//
// Usage:
//
//	go test -bench=. -count=5 | go run ./cmd/benchjson -label post -o BENCH_1.json
//	go run ./cmd/benchjson -label pre < bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result line. Repeated lines (from -count=N) appear
// as separate entries in input order, preserving the raw distribution for
// benchstat-style analysis.
type Bench struct {
	Name string `json:"name"`
	Pkg  string `json:"pkg,omitempty"`
	// N is the iteration count the framework settled on.
	N       int64   `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds custom b.ReportMetric values (e.g. "Mevents/wallsec",
	// "allocs/pkt-hop") plus B/op and allocs/op when reported.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Label   string  `json:"label,omitempty"`
	Goos    string  `json:"goos,omitempty"`
	Goarch  string  `json:"goarch,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Benches []Bench `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "label recorded in the report (e.g. commit or pre/post)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file"))
	}

	rep, err := parse(in)
	if err != nil {
		fatal(err)
	}
	rep.Label = *label
	if len(rep.Benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line, pkg)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			rep.Benches = append(rep.Benches, b)
		}
	}
	return rep, sc.Err()
}

// parseBench parses one result line:
//
//	BenchmarkName-8   5   123 ns/op   6.4 Mevents/simsec   96 B/op   2 allocs/op
func parseBench(line, pkg string) (Bench, error) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return Bench{}, fmt.Errorf("too few fields")
	}
	b := Bench{Name: f[0], Pkg: pkg}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, fmt.Errorf("iteration count: %w", err)
	}
	b.N = n
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Bench{}, fmt.Errorf("value %q: %w", f[i], err)
		}
		unit := f[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
