// Command tfctrace runs a small two-flow scenario and prints a
// tcpdump-style packet lifecycle trace, which is the quickest way to watch
// TFC's control machinery (RM-marked rounds, switch window stamping, RMA
// grants, delay-arbiter pacing) in action.
//
// Usage:
//
//	tfctrace [-proto tfc|tcp|dctcp] [-flows N] [-us N] [-max N] [-flow id]
//
// -flow 0 (the default) traces all flows; any other value restricts the
// trace to that single flow ID.
package main

import (
	"flag"
	"fmt"
	"os"

	"tfcsim"
	"tfcsim/internal/netsim"
)

func main() {
	proto := flag.String("proto", "tfc", "transport protocol: tfc, tcp or dctcp")
	flows := flag.Int("flows", 2, "number of concurrent flows")
	us := flag.Int64("us", 500, "microseconds of virtual time to trace")
	max := flag.Int("max", 200, "maximum trace lines")
	only := flag.Int64("flow", 0, "trace only this flow ID (0 = all)")
	flag.Parse()
	switch *proto {
	case "tfc", "tcp", "dctcp":
	default:
		fmt.Fprintf(os.Stderr, "tfctrace: unknown protocol %q (want tfc, tcp or dctcp)\n", *proto)
		flag.Usage()
		os.Exit(2)
	}

	s := tfcsim.NewSimulator(1)
	net := tfcsim.NewNetwork(s)
	sw := net.NewSwitch("sw")
	var senders []*tfcsim.Host
	for i := 0; i < *flows; i++ {
		h := net.NewHost(fmt.Sprintf("h%d", i+1))
		h.ProcJitter = 10 * tfcsim.Microsecond
		net.Connect(h, sw, tfcsim.LinkConfig{Rate: tfcsim.Gbps, Delay: 5 * tfcsim.Microsecond})
		senders = append(senders, h)
	}
	recv := net.NewHost("recv")
	net.Connect(sw, recv, tfcsim.LinkConfig{
		Rate: tfcsim.Gbps, Delay: 5 * tfcsim.Microsecond, BufA: 256 << 10,
	})
	net.ComputeRoutes()
	switch *proto {
	case "tfc":
		tfcsim.AttachTFC(s, sw, tfcsim.TFCConfig{})
	case "dctcp":
		tfcsim.AttachDCTCPMarking(sw, tfcsim.DCTCPThreshold(tfcsim.Gbps))
	case "tcp":
	}

	lines := 0
	net.Trace = func(ev netsim.TraceEvent, at tfcsim.Time, where string, pkt *tfcsim.Packet) {
		if lines >= *max {
			return
		}
		if *only != 0 && int64(pkt.Flow) != *only {
			return
		}
		lines++
		fmt.Printf("%10s  %-5s %-10s flow=%d seq=%-7d ack=%-7d len=%-4d w=%-6s %s\n",
			at, ev, where, pkt.Flow, pkt.Seq, pkt.Ack, pkt.Payload,
			windowStr(pkt.Window), pkt.Flags)
	}

	d := &tfcsim.Dialer{Sim: s, Proto: tfcsim.Proto(*proto)}
	for _, h := range senders {
		conn := d.Dial(h, recv, nil, nil)
		s.At(0, func() {
			conn.Sender.Open()
			conn.Sender.Send(1 << 20)
		})
	}
	s.RunUntil(tfcsim.Time(*us) * tfcsim.Microsecond)
	fmt.Printf("... traced %d events over %dus of virtual time\n", lines, *us)
}

func windowStr(w int64) string {
	if w >= netsim.WindowUnset {
		return "unset"
	}
	return fmt.Sprint(w)
}
