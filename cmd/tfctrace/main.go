// Command tfctrace runs a small two-flow scenario and prints a
// tcpdump-style packet lifecycle trace, which is the quickest way to watch
// a transport's control machinery (TFC's RM-marked rounds and window
// stamping, BFC's XOF/XON backpressure, DCTCP's CE marks) in action.
//
// Usage:
//
//	tfctrace [-proto NAME] [-flows N] [-us N] [-max N] [-flow id]
//
// -proto accepts any registered transport (see `tfcsim run` usage for the
// list). -flow 0 (the default) traces all flows; any other value
// restricts the trace to that single flow ID.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tfcsim"
	"tfcsim/internal/netsim"
)

func main() {
	proto := flag.String("proto", "tfc",
		"transport protocol: "+strings.Join(tfcsim.Protocols(), ", "))
	flows := flag.Int("flows", 2, "number of concurrent flows")
	us := flag.Int64("us", 500, "microseconds of virtual time to trace")
	max := flag.Int("max", 200, "maximum trace lines")
	only := flag.Int64("flow", 0, "trace only this flow ID (0 = all)")
	flag.Parse()
	if !tfcsim.ProtocolRegistered(*proto) {
		fmt.Fprintf(os.Stderr, "tfctrace: unknown protocol %q (registered: %s)\n",
			*proto, strings.Join(tfcsim.Protocols(), ", "))
		flag.Usage()
		os.Exit(2)
	}

	s := tfcsim.NewSimulator(1)
	net := tfcsim.NewNetwork(s)
	sw := net.NewSwitch("sw")
	var senders []*tfcsim.Host
	for i := 0; i < *flows; i++ {
		h := net.NewHost(fmt.Sprintf("h%d", i+1))
		h.ProcJitter = 10 * tfcsim.Microsecond
		net.Connect(h, sw, tfcsim.LinkConfig{Rate: tfcsim.Gbps, Delay: 5 * tfcsim.Microsecond})
		senders = append(senders, h)
	}
	recv := net.NewHost("recv")
	net.Connect(sw, recv, tfcsim.LinkConfig{
		Rate: tfcsim.Gbps, Delay: 5 * tfcsim.Microsecond, BufA: 256 << 10,
	})
	net.ComputeRoutes()
	if _, err := tfcsim.AttachTransport(s, *proto, []*tfcsim.Switch{sw}, tfcsim.Gbps); err != nil {
		fmt.Fprintln(os.Stderr, "tfctrace:", err)
		os.Exit(2)
	}

	lines := 0
	net.Trace = func(ev netsim.TraceEvent, at tfcsim.Time, where string, pkt *tfcsim.Packet) {
		if lines >= *max {
			return
		}
		if *only != 0 && int64(pkt.Flow) != *only {
			return
		}
		lines++
		fmt.Printf("%10s  %-5s %-10s flow=%d seq=%-7d ack=%-7d len=%-4d w=%-6s %s\n",
			at, ev, where, pkt.Flow, pkt.Seq, pkt.Ack, pkt.Payload,
			windowStr(pkt.Window), pkt.Flags)
	}

	d := &tfcsim.Dialer{Sim: s, Proto: tfcsim.Proto(*proto)}
	for _, h := range senders {
		conn := d.Dial(h, recv, nil, nil)
		s.At(0, func() {
			conn.Sender.Open()
			conn.Sender.Send(1 << 20)
		})
	}
	s.RunUntil(tfcsim.Time(*us) * tfcsim.Microsecond)
	fmt.Printf("... traced %d events over %dus of virtual time\n", lines, *us)
}

func windowStr(w int64) string {
	if w >= netsim.WindowUnset {
		return "unset"
	}
	return fmt.Sprint(w)
}
