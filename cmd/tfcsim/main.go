// Command tfcsim reproduces the evaluation of "TFC: Token Flow Control in
// Data Center Networks" (EuroSys 2016): every figure of the paper can be
// regenerated at quick (seconds) or paper (faithful parameters) scale.
// Independent trials of a sweep fan out across -j workers; the output is
// byte-identical at any parallelism.
//
// Usage:
//
//	tfcsim list
//	tfcsim run <experiment> [-scale quick|paper] [-proto a,b,...] [-j N] [-shards N] [-seed N] [-out FILE] [-csv DIR] [-trace FILE] [-metrics FILE] [-v]
//	tfcsim all [-scale quick|paper] [-proto a,b,...] [-j N] [-shards N] [-seed N] [-out FILE] [-csv DIR] [-trace FILE] [-metrics FILE] [-v]
//	tfcsim verify
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"tfcsim"
	"tfcsim/internal/telemetry"
)

func usage() {
	fmt.Fprintf(os.Stderr, `tfcsim — reproduction harness for TFC (EuroSys 2016)

Usage:
  tfcsim list                                  list experiments
  tfcsim run <name> [flags]                    run one experiment
  tfcsim all        [flags]                    run every experiment
  tfcsim verify                                run the paper's claims as checks

Flags for run/all:
  -scale quick|paper   experiment scale (default quick)
  -proto a,b,...       restrict protocol-matrix experiments to these
                       registered transports (registered: %s)
  -j N                 parallel trials (default GOMAXPROCS = %d; 1 = serial)
  -shards N            shards per trial for the parallel engine (default 1 =
                       sequential; 0 = auto by topology; output is byte-identical
                       at any value; fig08-10, robustness, fattree honor it)
  -seed N              base seed; trial seeds derive from (seed, trial index)
  -out FILE            also write output to this file
  -csv DIR             export raw series/CDF data as CSV (fig06, fig08-10, fig12, fig13)
  -trace FILE          write a Chrome trace-event JSON of the run (Perfetto / chrome://tracing)
  -metrics FILE        write the run's metrics snapshot JSON (counters, gauges, histograms)
  -http ADDR           serve a live introspection endpoint (JSON at /snapshot,
                       auto-refreshing HTML at /) while the run executes
  -spans N             sample 1-in-N flows for causal packet spans in the trace
                       (requires -trace; byte-identical at any -j/-shards)
  -watchdogs           enable invariant watchdogs (token conservation, zero-queueing,
                       BFC pairing, RTO storms, shard liveness); violations print a
                       diagnostic and write a flight-recorder dump
  -flightdir DIR       directory for watchdog flight-recorder dumps (default .; - disables)
  -v                   print per-trial progress to stderr
  -cpuprofile FILE     write a CPU profile of the run (go tool pprof)
  -memprofile FILE     write a heap profile taken after the run
`, strings.Join(tfcsim.Protocols(), ", "), runtime.GOMAXPROCS(0))
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, e := range tfcsim.Experiments() {
			fmt.Printf("%-18s %-22s %s\n", e.Name, e.Figure, e.Desc)
		}
	case "verify":
		report, ok := tfcsim.VerifyAll()
		fmt.Print(report)
		if !ok {
			fmt.Println("some claims FAILED")
			os.Exit(1)
		}
		fmt.Println("all claims hold")
	case "run", "all":
		fs := flag.NewFlagSet(os.Args[1], flag.ExitOnError)
		scale := fs.String("scale", "quick", "experiment scale: quick or paper")
		protoFlag := fs.String("proto", "",
			"comma-separated protocol subset for matrix experiments (empty = experiment defaults)")
		jobs := fs.Int("j", 0, "parallel trials (0 = GOMAXPROCS)")
		shards := fs.Int("shards", 1, "shards per trial (1 = sequential, 0 = auto by topology)")
		seed := fs.Int64("seed", 1, "base seed for per-trial seed derivation")
		out := fs.String("out", "", "also write output to this file")
		csv := fs.String("csv", "", "export raw series/CDF data as CSV into this directory")
		tracePath := fs.String("trace", "", "write Chrome trace-event JSON to this file")
		metricsPath := fs.String("metrics", "", "write metrics snapshot JSON to this file")
		httpAddr := fs.String("http", "", "serve the live introspection endpoint on this address")
		spansEvery := fs.Int("spans", 0, "sample 1-in-N flows for causal packet spans (0 = off)")
		watchdogs := fs.Bool("watchdogs", false, "enable invariant watchdogs")
		flightDir := fs.String("flightdir", "", "flight-recorder dump directory (default .; - disables)")
		verbose := fs.Bool("v", false, "print per-trial progress to stderr")
		cpuprofile := fs.String("cpuprofile", "", "write CPU profile to this file")
		memprofile := fs.String("memprofile", "", "write heap profile to this file")
		args := os.Args[2:]
		var name string
		if os.Args[1] == "run" {
			if len(args) == 0 || args[0] == "" || args[0][0] == '-' {
				usage()
			}
			name = args[0]
			args = args[1:]
		}
		if err := fs.Parse(args); err != nil {
			os.Exit(2)
		}
		if *cpuprofile != "" {
			f, err := os.Create(*cpuprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer func() { pprof.StopCPUProfile(); f.Close() }()
		}
		if *memprofile != "" {
			path := *memprofile
			defer func() {
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return
				}
				defer f.Close()
				runtime.GC() // settle the heap so the profile shows retained objects
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}()
		}

		// Ctrl-C cancels cleanly: in-flight trials finish, queued ones are
		// skipped, and the run reports the cancellation.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()

		opts := tfcsim.RunOptions{
			Scale:       tfcsim.Scale(*scale),
			Seed:        *seed,
			Parallelism: *jobs,
			CSVDir:      *csv,
			Shards:      *shards,
		}
		if *shards == 0 {
			opts.Shards = -1 // auto: topology's natural shard count, capped at GOMAXPROCS
		}
		if *protoFlag != "" {
			for _, p := range strings.Split(*protoFlag, ",") {
				p = strings.TrimSpace(p)
				if p == "" {
					continue
				}
				if !tfcsim.ProtocolRegistered(p) {
					fmt.Fprintf(os.Stderr, "tfcsim: unknown protocol %q (registered: %s)\n",
						p, strings.Join(tfcsim.Protocols(), ", "))
					usage()
				}
				opts.Protos = append(opts.Protos, tfcsim.Proto(p))
			}
		}
		if *httpAddr != "" || *spansEvery > 0 || *watchdogs {
			if *spansEvery > 0 && *tracePath == "" {
				fmt.Fprintln(os.Stderr, "tfcsim: -spans requires -trace (spans are recorded into the trace file)")
				os.Exit(2)
			}
			o := tfcsim.NewObservatory(tfcsim.ObsOptions{
				HTTPAddr:  *httpAddr,
				SpanEvery: *spansEvery,
				SpanSeed:  *seed,
				Watchdogs: *watchdogs,
				FlightDir: *flightDir,
			})
			if err := o.Start(); err != nil {
				fmt.Fprintln(os.Stderr, "tfcsim: obs:", err)
				os.Exit(1)
			}
			defer o.Stop()
			opts.Obs = o
		}
		if *verbose {
			opts.Progress = func(ev tfcsim.ProgressEvent) {
				fmt.Fprintf(os.Stderr, "  [%s] trial %d (seed %d): %d events, %.2fs\n",
					ev.Experiment, ev.Trial.Index, ev.Trial.Seed,
					ev.Trial.Events, ev.Trial.Wall.Seconds())
			}
		}

		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = io.MultiWriter(os.Stdout, f)
		}

		j := *jobs
		if j <= 0 {
			j = runtime.GOMAXPROCS(0)
		}
		all := os.Args[1] == "all"
		run := func(e tfcsim.Experiment) {
			o := opts
			if *tracePath != "" || *metricsPath != "" {
				o.Telemetry = &telemetry.Options{
					TracePath:   perExpPath(*tracePath, e.Name, all),
					MetricsPath: perExpPath(*metricsPath, e.Name, all),
				}
			}
			res, err := e.Run(ctx, o)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(w, "== %s (scale=%s, seed=%d, j=%d) ==\n%s", res.Name, res.Scale, res.Seed, j, res.Text)
			fmt.Fprintf(w, "-- %d trials, %d sim events, %.2fs wall --\n\n",
				len(res.Trials), res.Events, res.Wall.Seconds())
		}
		if !all {
			e, ok := tfcsim.Find(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "tfcsim: unknown experiment %q (try `tfcsim list`)\n", name)
				os.Exit(1)
			}
			run(e)
		} else {
			for _, e := range tfcsim.Experiments() {
				run(e)
			}
		}
	default:
		usage()
	}
}

// perExpPath keeps path as-is for a single-experiment run; for `all` it
// inserts the experiment name before the extension so every experiment
// writes its own trace/metrics file instead of overwriting one.
func perExpPath(path, exp string, all bool) string {
	if path == "" || !all {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-" + exp + ext
}
