// Command tfcsim reproduces the evaluation of "TFC: Token Flow Control in
// Data Center Networks" (EuroSys 2016): every figure of the paper can be
// regenerated at quick (seconds) or paper (faithful parameters) scale.
//
// Usage:
//
//	tfcsim list
//	tfcsim run <experiment> [-scale quick|paper] [-out FILE]
//	tfcsim all [-scale quick|paper] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tfcsim"
)

func usage() {
	fmt.Fprintf(os.Stderr, `tfcsim — reproduction harness for TFC (EuroSys 2016)

Usage:
  tfcsim list                                  list experiments
  tfcsim run <name> [-scale quick|paper] [-out FILE] [-csv DIR]
  tfcsim all        [-scale quick|paper] [-out FILE] [-csv DIR]
  tfcsim verify                                run the paper's claims as checks
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, e := range tfcsim.Experiments() {
			fmt.Printf("%-18s %-22s %s\n", e.Name, e.Figure, e.Desc)
		}
	case "verify":
		report, ok := tfcsim.VerifyAll()
		fmt.Print(report)
		if !ok {
			fmt.Println("some claims FAILED")
			os.Exit(1)
		}
		fmt.Println("all claims hold")
	case "run", "all":
		fs := flag.NewFlagSet(os.Args[1], flag.ExitOnError)
		scale := fs.String("scale", "quick", "experiment scale: quick or paper")
		out := fs.String("out", "", "also write output to this file")
		csv := fs.String("csv", "", "export raw series/CDF data as CSV into this directory (fig06, fig08-10)")
		args := os.Args[2:]
		var name string
		if os.Args[1] == "run" {
			if len(args) == 0 || args[0] == "" || args[0][0] == '-' {
				usage()
			}
			name = args[0]
			args = args[1:]
		}
		if err := fs.Parse(args); err != nil {
			os.Exit(2)
		}
		tfcsim.SetCSVDir(*csv)
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = io.MultiWriter(os.Stdout, f)
		}
		run := func(name string) {
			start := time.Now()
			res, err := tfcsim.RunExperiment(name, tfcsim.Scale(*scale))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(w, "== %s (scale=%s, %.1fs wall) ==\n%s\n",
				name, *scale, time.Since(start).Seconds(), res)
		}
		if os.Args[1] == "run" {
			run(name)
		} else {
			for _, e := range tfcsim.Experiments() {
				run(e.Name)
			}
		}
	default:
		usage()
	}
}
