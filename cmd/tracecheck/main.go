// Command tracecheck validates Chrome trace-event JSON files of the
// shape tfcsim emits (and Perfetto / chrome://tracing load): an object
// with a traceEvents array of well-formed M/X/i/C events. Used by CI to
// gate the telemetry output schema.
//
// Usage:
//
//	tracecheck FILE...
//
// Exits 0 when every file validates, 1 otherwise.
package main

import (
	"fmt"
	"os"

	"tfcsim/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE...")
		os.Exit(2)
	}
	ok := true
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			ok = false
			continue
		}
		err = telemetry.ValidateTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			ok = false
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if !ok {
		os.Exit(1)
	}
}
