// Command tracecheck validates Chrome trace-event JSON files of the
// shape tfcsim emits (and Perfetto / chrome://tracing load): an object
// with a traceEvents array of well-formed M/X/i/C events, trial keys
// (process_name metadata) in sorted order, and — when the trace holds
// causal packet spans (cat "span") — well-linked span chains: integer
// seq/hop/parent args with parent = hop-1, monotone hop timestamps,
// and every chain closed by a terminal hop. Used by CI to gate the
// telemetry output schema.
//
// Usage:
//
//	tracecheck FILE...
//
// Exits 0 when every file validates, 1 otherwise.
package main

import (
	"bytes"
	"fmt"
	"os"

	"tfcsim/internal/obs"
	"tfcsim/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE...")
		os.Exit(2)
	}
	ok := true
	for _, path := range os.Args[1:] {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			ok = false
			continue
		}
		if err := telemetry.ValidateTrace(bytes.NewReader(b)); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			ok = false
			continue
		}
		if err := obs.ValidateSpans(bytes.NewReader(b)); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			ok = false
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if !ok {
		os.Exit(1)
	}
}
